file(REMOVE_RECURSE
  "../bench/fig8b_gamma_sweep"
  "../bench/fig8b_gamma_sweep.pdb"
  "CMakeFiles/fig8b_gamma_sweep.dir/fig8b_gamma_sweep.cc.o"
  "CMakeFiles/fig8b_gamma_sweep.dir/fig8b_gamma_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_gamma_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
