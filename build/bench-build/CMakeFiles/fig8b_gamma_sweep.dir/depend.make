# Empty dependencies file for fig8b_gamma_sweep.
# This may be replaced when dependencies are built.
