# Empty dependencies file for ext_sliding.
# This may be replaced when dependencies are built.
