file(REMOVE_RECURSE
  "../bench/ext_sliding"
  "../bench/ext_sliding.pdb"
  "CMakeFiles/ext_sliding.dir/ext_sliding.cc.o"
  "CMakeFiles/ext_sliding.dir/ext_sliding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sliding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
