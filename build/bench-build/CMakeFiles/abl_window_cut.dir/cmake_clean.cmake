file(REMOVE_RECURSE
  "../bench/abl_window_cut"
  "../bench/abl_window_cut.pdb"
  "CMakeFiles/abl_window_cut.dir/abl_window_cut.cc.o"
  "CMakeFiles/abl_window_cut.dir/abl_window_cut.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_window_cut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
