# Empty dependencies file for abl_window_cut.
# This may be replaced when dependencies are built.
