file(REMOVE_RECURSE
  "../bench/ext_tiered"
  "../bench/ext_tiered.pdb"
  "CMakeFiles/ext_tiered.dir/ext_tiered.cc.o"
  "CMakeFiles/ext_tiered.dir/ext_tiered.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tiered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
