# Empty dependencies file for ext_tiered.
# This may be replaced when dependencies are built.
