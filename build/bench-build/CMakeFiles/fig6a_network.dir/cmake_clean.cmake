file(REMOVE_RECURSE
  "../bench/fig6a_network"
  "../bench/fig6a_network.pdb"
  "CMakeFiles/fig6a_network.dir/fig6a_network.cc.o"
  "CMakeFiles/fig6a_network.dir/fig6a_network.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
