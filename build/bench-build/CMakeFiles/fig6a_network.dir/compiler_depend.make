# Empty compiler generated dependencies file for fig6a_network.
# This may be replaced when dependencies are built.
