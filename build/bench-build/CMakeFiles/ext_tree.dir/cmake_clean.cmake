file(REMOVE_RECURSE
  "../bench/ext_tree"
  "../bench/ext_tree.pdb"
  "CMakeFiles/ext_tree.dir/ext_tree.cc.o"
  "CMakeFiles/ext_tree.dir/ext_tree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
