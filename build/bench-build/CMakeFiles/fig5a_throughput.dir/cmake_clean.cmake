file(REMOVE_RECURSE
  "../bench/fig5a_throughput"
  "../bench/fig5a_throughput.pdb"
  "CMakeFiles/fig5a_throughput.dir/fig5a_throughput.cc.o"
  "CMakeFiles/fig5a_throughput.dir/fig5a_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
