# Empty compiler generated dependencies file for fig5a_throughput.
# This may be replaced when dependencies are built.
