# Empty dependencies file for fig8a_quantiles.
# This may be replaced when dependencies are built.
