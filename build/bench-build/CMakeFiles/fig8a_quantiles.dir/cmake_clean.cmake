file(REMOVE_RECURSE
  "../bench/fig8a_quantiles"
  "../bench/fig8a_quantiles.pdb"
  "CMakeFiles/fig8a_quantiles.dir/fig8a_quantiles.cc.o"
  "CMakeFiles/fig8a_quantiles.dir/fig8a_quantiles.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_quantiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
