file(REMOVE_RECURSE
  "../bench/fig7a_scalability"
  "../bench/fig7a_scalability.pdb"
  "CMakeFiles/fig7a_scalability.dir/fig7a_scalability.cc.o"
  "CMakeFiles/fig7a_scalability.dir/fig7a_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
