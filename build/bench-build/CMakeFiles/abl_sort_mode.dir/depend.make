# Empty dependencies file for abl_sort_mode.
# This may be replaced when dependencies are built.
