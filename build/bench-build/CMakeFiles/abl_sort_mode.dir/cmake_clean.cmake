file(REMOVE_RECURSE
  "../bench/abl_sort_mode"
  "../bench/abl_sort_mode.pdb"
  "CMakeFiles/abl_sort_mode.dir/abl_sort_mode.cc.o"
  "CMakeFiles/abl_sort_mode.dir/abl_sort_mode.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sort_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
