file(REMOVE_RECURSE
  "../bench/abl_adaptive_gamma"
  "../bench/abl_adaptive_gamma.pdb"
  "CMakeFiles/abl_adaptive_gamma.dir/abl_adaptive_gamma.cc.o"
  "CMakeFiles/abl_adaptive_gamma.dir/abl_adaptive_gamma.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_adaptive_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
