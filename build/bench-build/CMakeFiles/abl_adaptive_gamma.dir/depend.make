# Empty dependencies file for abl_adaptive_gamma.
# This may be replaced when dependencies are built.
