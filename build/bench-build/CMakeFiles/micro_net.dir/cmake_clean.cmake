file(REMOVE_RECURSE
  "../bench/micro_net"
  "../bench/micro_net.pdb"
  "CMakeFiles/micro_net.dir/micro_net.cc.o"
  "CMakeFiles/micro_net.dir/micro_net.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
