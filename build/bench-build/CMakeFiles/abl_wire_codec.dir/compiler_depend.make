# Empty compiler generated dependencies file for abl_wire_codec.
# This may be replaced when dependencies are built.
