file(REMOVE_RECURSE
  "../bench/abl_wire_codec"
  "../bench/abl_wire_codec.pdb"
  "CMakeFiles/abl_wire_codec.dir/abl_wire_codec.cc.o"
  "CMakeFiles/abl_wire_codec.dir/abl_wire_codec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_wire_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
