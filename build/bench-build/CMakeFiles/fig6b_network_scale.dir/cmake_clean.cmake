file(REMOVE_RECURSE
  "../bench/fig6b_network_scale"
  "../bench/fig6b_network_scale.pdb"
  "CMakeFiles/fig6b_network_scale.dir/fig6b_network_scale.cc.o"
  "CMakeFiles/fig6b_network_scale.dir/fig6b_network_scale.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_network_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
