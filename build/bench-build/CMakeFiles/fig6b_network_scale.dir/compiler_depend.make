# Empty compiler generated dependencies file for fig6b_network_scale.
# This may be replaced when dependencies are built.
