# Empty dependencies file for fig5b_latency.
# This may be replaced when dependencies are built.
