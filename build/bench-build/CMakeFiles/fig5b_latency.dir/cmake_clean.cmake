file(REMOVE_RECURSE
  "../bench/fig5b_latency"
  "../bench/fig5b_latency.pdb"
  "CMakeFiles/fig5b_latency.dir/fig5b_latency.cc.o"
  "CMakeFiles/fig5b_latency.dir/fig5b_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
