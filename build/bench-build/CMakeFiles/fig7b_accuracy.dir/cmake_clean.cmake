file(REMOVE_RECURSE
  "../bench/fig7b_accuracy"
  "../bench/fig7b_accuracy.pdb"
  "CMakeFiles/fig7b_accuracy.dir/fig7b_accuracy.cc.o"
  "CMakeFiles/fig7b_accuracy.dir/fig7b_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
