file(REMOVE_RECURSE
  "CMakeFiles/demactl.dir/demactl.cc.o"
  "CMakeFiles/demactl.dir/demactl.cc.o.d"
  "demactl"
  "demactl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demactl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
