# Empty dependencies file for demactl.
# This may be replaced when dependencies are built.
