# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/sketch_test[1]_include.cmake")
include("/root/repo/build/tests/slice_test[1]_include.cmake")
include("/root/repo/build/tests/window_cut_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_gamma_test[1]_include.cmake")
include("/root/repo/build/tests/dema_node_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/threaded_test[1]_include.cmake")
include("/root/repo/build/tests/sliding_window_test[1]_include.cmake")
include("/root/repo/build/tests/per_node_gamma_test[1]_include.cmake")
include("/root/repo/build/tests/fault_tolerance_test[1]_include.cmake")
include("/root/repo/build/tests/sustainable_test[1]_include.cmake")
include("/root/repo/build/tests/tiered_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/lateness_test[1]_include.cmake")
include("/root/repo/build/tests/checkpoint_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
include("/root/repo/build/tests/count_window_test[1]_include.cmake")
