file(REMOVE_RECURSE
  "CMakeFiles/dema_node_test.dir/dema_node_test.cc.o"
  "CMakeFiles/dema_node_test.dir/dema_node_test.cc.o.d"
  "dema_node_test"
  "dema_node_test.pdb"
  "dema_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dema_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
