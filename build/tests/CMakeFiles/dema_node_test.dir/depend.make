# Empty dependencies file for dema_node_test.
# This may be replaced when dependencies are built.
