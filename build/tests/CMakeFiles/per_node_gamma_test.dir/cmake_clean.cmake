file(REMOVE_RECURSE
  "CMakeFiles/per_node_gamma_test.dir/per_node_gamma_test.cc.o"
  "CMakeFiles/per_node_gamma_test.dir/per_node_gamma_test.cc.o.d"
  "per_node_gamma_test"
  "per_node_gamma_test.pdb"
  "per_node_gamma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/per_node_gamma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
