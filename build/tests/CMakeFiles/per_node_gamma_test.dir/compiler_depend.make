# Empty compiler generated dependencies file for per_node_gamma_test.
# This may be replaced when dependencies are built.
