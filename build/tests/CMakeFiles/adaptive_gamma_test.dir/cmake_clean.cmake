file(REMOVE_RECURSE
  "CMakeFiles/adaptive_gamma_test.dir/adaptive_gamma_test.cc.o"
  "CMakeFiles/adaptive_gamma_test.dir/adaptive_gamma_test.cc.o.d"
  "adaptive_gamma_test"
  "adaptive_gamma_test.pdb"
  "adaptive_gamma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_gamma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
