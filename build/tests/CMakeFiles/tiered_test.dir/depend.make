# Empty dependencies file for tiered_test.
# This may be replaced when dependencies are built.
