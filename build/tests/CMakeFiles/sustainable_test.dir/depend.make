# Empty dependencies file for sustainable_test.
# This may be replaced when dependencies are built.
