file(REMOVE_RECURSE
  "CMakeFiles/sustainable_test.dir/sustainable_test.cc.o"
  "CMakeFiles/sustainable_test.dir/sustainable_test.cc.o.d"
  "sustainable_test"
  "sustainable_test.pdb"
  "sustainable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sustainable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
