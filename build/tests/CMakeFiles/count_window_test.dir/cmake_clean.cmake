file(REMOVE_RECURSE
  "CMakeFiles/count_window_test.dir/count_window_test.cc.o"
  "CMakeFiles/count_window_test.dir/count_window_test.cc.o.d"
  "count_window_test"
  "count_window_test.pdb"
  "count_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/count_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
