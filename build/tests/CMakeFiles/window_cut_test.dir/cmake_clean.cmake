file(REMOVE_RECURSE
  "CMakeFiles/window_cut_test.dir/window_cut_test.cc.o"
  "CMakeFiles/window_cut_test.dir/window_cut_test.cc.o.d"
  "window_cut_test"
  "window_cut_test.pdb"
  "window_cut_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_cut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
