file(REMOVE_RECURSE
  "libdema_gen.a"
)
