# Empty compiler generated dependencies file for dema_gen.
# This may be replaced when dependencies are built.
