
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/csv_source.cc" "src/gen/CMakeFiles/dema_gen.dir/csv_source.cc.o" "gcc" "src/gen/CMakeFiles/dema_gen.dir/csv_source.cc.o.d"
  "/root/repo/src/gen/disorder.cc" "src/gen/CMakeFiles/dema_gen.dir/disorder.cc.o" "gcc" "src/gen/CMakeFiles/dema_gen.dir/disorder.cc.o.d"
  "/root/repo/src/gen/distribution.cc" "src/gen/CMakeFiles/dema_gen.dir/distribution.cc.o" "gcc" "src/gen/CMakeFiles/dema_gen.dir/distribution.cc.o.d"
  "/root/repo/src/gen/generator.cc" "src/gen/CMakeFiles/dema_gen.dir/generator.cc.o" "gcc" "src/gen/CMakeFiles/dema_gen.dir/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dema_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
