file(REMOVE_RECURSE
  "CMakeFiles/dema_gen.dir/csv_source.cc.o"
  "CMakeFiles/dema_gen.dir/csv_source.cc.o.d"
  "CMakeFiles/dema_gen.dir/disorder.cc.o"
  "CMakeFiles/dema_gen.dir/disorder.cc.o.d"
  "CMakeFiles/dema_gen.dir/distribution.cc.o"
  "CMakeFiles/dema_gen.dir/distribution.cc.o.d"
  "CMakeFiles/dema_gen.dir/generator.cc.o"
  "CMakeFiles/dema_gen.dir/generator.cc.o.d"
  "libdema_gen.a"
  "libdema_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dema_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
