
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dema/adaptive_gamma.cc" "src/dema/CMakeFiles/dema_core.dir/adaptive_gamma.cc.o" "gcc" "src/dema/CMakeFiles/dema_core.dir/adaptive_gamma.cc.o.d"
  "/root/repo/src/dema/count_window.cc" "src/dema/CMakeFiles/dema_core.dir/count_window.cc.o" "gcc" "src/dema/CMakeFiles/dema_core.dir/count_window.cc.o.d"
  "/root/repo/src/dema/local_node.cc" "src/dema/CMakeFiles/dema_core.dir/local_node.cc.o" "gcc" "src/dema/CMakeFiles/dema_core.dir/local_node.cc.o.d"
  "/root/repo/src/dema/protocol.cc" "src/dema/CMakeFiles/dema_core.dir/protocol.cc.o" "gcc" "src/dema/CMakeFiles/dema_core.dir/protocol.cc.o.d"
  "/root/repo/src/dema/relay_node.cc" "src/dema/CMakeFiles/dema_core.dir/relay_node.cc.o" "gcc" "src/dema/CMakeFiles/dema_core.dir/relay_node.cc.o.d"
  "/root/repo/src/dema/root_node.cc" "src/dema/CMakeFiles/dema_core.dir/root_node.cc.o" "gcc" "src/dema/CMakeFiles/dema_core.dir/root_node.cc.o.d"
  "/root/repo/src/dema/slice.cc" "src/dema/CMakeFiles/dema_core.dir/slice.cc.o" "gcc" "src/dema/CMakeFiles/dema_core.dir/slice.cc.o.d"
  "/root/repo/src/dema/window_cut.cc" "src/dema/CMakeFiles/dema_core.dir/window_cut.cc.o" "gcc" "src/dema/CMakeFiles/dema_core.dir/window_cut.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dema_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dema_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/dema_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
