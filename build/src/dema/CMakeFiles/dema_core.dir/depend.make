# Empty dependencies file for dema_core.
# This may be replaced when dependencies are built.
