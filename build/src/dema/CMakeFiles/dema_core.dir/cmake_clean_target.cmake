file(REMOVE_RECURSE
  "libdema_core.a"
)
