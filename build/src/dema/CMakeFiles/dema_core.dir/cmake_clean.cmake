file(REMOVE_RECURSE
  "CMakeFiles/dema_core.dir/adaptive_gamma.cc.o"
  "CMakeFiles/dema_core.dir/adaptive_gamma.cc.o.d"
  "CMakeFiles/dema_core.dir/count_window.cc.o"
  "CMakeFiles/dema_core.dir/count_window.cc.o.d"
  "CMakeFiles/dema_core.dir/local_node.cc.o"
  "CMakeFiles/dema_core.dir/local_node.cc.o.d"
  "CMakeFiles/dema_core.dir/protocol.cc.o"
  "CMakeFiles/dema_core.dir/protocol.cc.o.d"
  "CMakeFiles/dema_core.dir/relay_node.cc.o"
  "CMakeFiles/dema_core.dir/relay_node.cc.o.d"
  "CMakeFiles/dema_core.dir/root_node.cc.o"
  "CMakeFiles/dema_core.dir/root_node.cc.o.d"
  "CMakeFiles/dema_core.dir/slice.cc.o"
  "CMakeFiles/dema_core.dir/slice.cc.o.d"
  "CMakeFiles/dema_core.dir/window_cut.cc.o"
  "CMakeFiles/dema_core.dir/window_cut.cc.o.d"
  "libdema_core.a"
  "libdema_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dema_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
