file(REMOVE_RECURSE
  "libdema_stream.a"
)
