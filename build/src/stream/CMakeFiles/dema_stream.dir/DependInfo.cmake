
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/merge.cc" "src/stream/CMakeFiles/dema_stream.dir/merge.cc.o" "gcc" "src/stream/CMakeFiles/dema_stream.dir/merge.cc.o.d"
  "/root/repo/src/stream/quantile.cc" "src/stream/CMakeFiles/dema_stream.dir/quantile.cc.o" "gcc" "src/stream/CMakeFiles/dema_stream.dir/quantile.cc.o.d"
  "/root/repo/src/stream/session.cc" "src/stream/CMakeFiles/dema_stream.dir/session.cc.o" "gcc" "src/stream/CMakeFiles/dema_stream.dir/session.cc.o.d"
  "/root/repo/src/stream/sorted_buffer.cc" "src/stream/CMakeFiles/dema_stream.dir/sorted_buffer.cc.o" "gcc" "src/stream/CMakeFiles/dema_stream.dir/sorted_buffer.cc.o.d"
  "/root/repo/src/stream/window_manager.cc" "src/stream/CMakeFiles/dema_stream.dir/window_manager.cc.o" "gcc" "src/stream/CMakeFiles/dema_stream.dir/window_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dema_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dema_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
