file(REMOVE_RECURSE
  "CMakeFiles/dema_stream.dir/merge.cc.o"
  "CMakeFiles/dema_stream.dir/merge.cc.o.d"
  "CMakeFiles/dema_stream.dir/quantile.cc.o"
  "CMakeFiles/dema_stream.dir/quantile.cc.o.d"
  "CMakeFiles/dema_stream.dir/session.cc.o"
  "CMakeFiles/dema_stream.dir/session.cc.o.d"
  "CMakeFiles/dema_stream.dir/sorted_buffer.cc.o"
  "CMakeFiles/dema_stream.dir/sorted_buffer.cc.o.d"
  "CMakeFiles/dema_stream.dir/window_manager.cc.o"
  "CMakeFiles/dema_stream.dir/window_manager.cc.o.d"
  "libdema_stream.a"
  "libdema_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dema_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
