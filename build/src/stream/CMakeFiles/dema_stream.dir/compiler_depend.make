# Empty compiler generated dependencies file for dema_stream.
# This may be replaced when dependencies are built.
