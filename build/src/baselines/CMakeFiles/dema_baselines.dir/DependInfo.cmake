
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/central_root.cc" "src/baselines/CMakeFiles/dema_baselines.dir/central_root.cc.o" "gcc" "src/baselines/CMakeFiles/dema_baselines.dir/central_root.cc.o.d"
  "/root/repo/src/baselines/forwarding_local.cc" "src/baselines/CMakeFiles/dema_baselines.dir/forwarding_local.cc.o" "gcc" "src/baselines/CMakeFiles/dema_baselines.dir/forwarding_local.cc.o.d"
  "/root/repo/src/baselines/qdigest_agg.cc" "src/baselines/CMakeFiles/dema_baselines.dir/qdigest_agg.cc.o" "gcc" "src/baselines/CMakeFiles/dema_baselines.dir/qdigest_agg.cc.o.d"
  "/root/repo/src/baselines/tdigest_agg.cc" "src/baselines/CMakeFiles/dema_baselines.dir/tdigest_agg.cc.o" "gcc" "src/baselines/CMakeFiles/dema_baselines.dir/tdigest_agg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dema_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dema_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/dema_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/dema_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
