file(REMOVE_RECURSE
  "libdema_baselines.a"
)
