file(REMOVE_RECURSE
  "CMakeFiles/dema_baselines.dir/central_root.cc.o"
  "CMakeFiles/dema_baselines.dir/central_root.cc.o.d"
  "CMakeFiles/dema_baselines.dir/forwarding_local.cc.o"
  "CMakeFiles/dema_baselines.dir/forwarding_local.cc.o.d"
  "CMakeFiles/dema_baselines.dir/qdigest_agg.cc.o"
  "CMakeFiles/dema_baselines.dir/qdigest_agg.cc.o.d"
  "CMakeFiles/dema_baselines.dir/tdigest_agg.cc.o"
  "CMakeFiles/dema_baselines.dir/tdigest_agg.cc.o.d"
  "libdema_baselines.a"
  "libdema_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dema_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
