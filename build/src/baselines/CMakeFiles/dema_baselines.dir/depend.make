# Empty dependencies file for dema_baselines.
# This may be replaced when dependencies are built.
