file(REMOVE_RECURSE
  "CMakeFiles/dema_sim.dir/driver.cc.o"
  "CMakeFiles/dema_sim.dir/driver.cc.o.d"
  "CMakeFiles/dema_sim.dir/ingest_adapter.cc.o"
  "CMakeFiles/dema_sim.dir/ingest_adapter.cc.o.d"
  "CMakeFiles/dema_sim.dir/metrics.cc.o"
  "CMakeFiles/dema_sim.dir/metrics.cc.o.d"
  "CMakeFiles/dema_sim.dir/stream_node.cc.o"
  "CMakeFiles/dema_sim.dir/stream_node.cc.o.d"
  "CMakeFiles/dema_sim.dir/sustainable.cc.o"
  "CMakeFiles/dema_sim.dir/sustainable.cc.o.d"
  "CMakeFiles/dema_sim.dir/tiered.cc.o"
  "CMakeFiles/dema_sim.dir/tiered.cc.o.d"
  "CMakeFiles/dema_sim.dir/topology.cc.o"
  "CMakeFiles/dema_sim.dir/topology.cc.o.d"
  "CMakeFiles/dema_sim.dir/tree.cc.o"
  "CMakeFiles/dema_sim.dir/tree.cc.o.d"
  "libdema_sim.a"
  "libdema_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dema_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
