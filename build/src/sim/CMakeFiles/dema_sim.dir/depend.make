# Empty dependencies file for dema_sim.
# This may be replaced when dependencies are built.
