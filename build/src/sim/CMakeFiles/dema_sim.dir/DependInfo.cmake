
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/driver.cc" "src/sim/CMakeFiles/dema_sim.dir/driver.cc.o" "gcc" "src/sim/CMakeFiles/dema_sim.dir/driver.cc.o.d"
  "/root/repo/src/sim/ingest_adapter.cc" "src/sim/CMakeFiles/dema_sim.dir/ingest_adapter.cc.o" "gcc" "src/sim/CMakeFiles/dema_sim.dir/ingest_adapter.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/dema_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/dema_sim.dir/metrics.cc.o.d"
  "/root/repo/src/sim/stream_node.cc" "src/sim/CMakeFiles/dema_sim.dir/stream_node.cc.o" "gcc" "src/sim/CMakeFiles/dema_sim.dir/stream_node.cc.o.d"
  "/root/repo/src/sim/sustainable.cc" "src/sim/CMakeFiles/dema_sim.dir/sustainable.cc.o" "gcc" "src/sim/CMakeFiles/dema_sim.dir/sustainable.cc.o.d"
  "/root/repo/src/sim/tiered.cc" "src/sim/CMakeFiles/dema_sim.dir/tiered.cc.o" "gcc" "src/sim/CMakeFiles/dema_sim.dir/tiered.cc.o.d"
  "/root/repo/src/sim/topology.cc" "src/sim/CMakeFiles/dema_sim.dir/topology.cc.o" "gcc" "src/sim/CMakeFiles/dema_sim.dir/topology.cc.o.d"
  "/root/repo/src/sim/tree.cc" "src/sim/CMakeFiles/dema_sim.dir/tree.cc.o" "gcc" "src/sim/CMakeFiles/dema_sim.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dema_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dema_net.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/dema_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/dema_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/dema_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/dema/CMakeFiles/dema_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dema_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
