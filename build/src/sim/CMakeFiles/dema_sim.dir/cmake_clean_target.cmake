file(REMOVE_RECURSE
  "libdema_sim.a"
)
