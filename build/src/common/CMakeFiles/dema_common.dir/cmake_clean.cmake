file(REMOVE_RECURSE
  "CMakeFiles/dema_common.dir/logging.cc.o"
  "CMakeFiles/dema_common.dir/logging.cc.o.d"
  "CMakeFiles/dema_common.dir/stats.cc.o"
  "CMakeFiles/dema_common.dir/stats.cc.o.d"
  "CMakeFiles/dema_common.dir/status.cc.o"
  "CMakeFiles/dema_common.dir/status.cc.o.d"
  "CMakeFiles/dema_common.dir/table.cc.o"
  "CMakeFiles/dema_common.dir/table.cc.o.d"
  "libdema_common.a"
  "libdema_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dema_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
