file(REMOVE_RECURSE
  "libdema_common.a"
)
