# Empty dependencies file for dema_common.
# This may be replaced when dependencies are built.
