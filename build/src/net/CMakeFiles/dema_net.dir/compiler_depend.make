# Empty compiler generated dependencies file for dema_net.
# This may be replaced when dependencies are built.
