file(REMOVE_RECURSE
  "CMakeFiles/dema_net.dir/channel.cc.o"
  "CMakeFiles/dema_net.dir/channel.cc.o.d"
  "CMakeFiles/dema_net.dir/codec.cc.o"
  "CMakeFiles/dema_net.dir/codec.cc.o.d"
  "CMakeFiles/dema_net.dir/message.cc.o"
  "CMakeFiles/dema_net.dir/message.cc.o.d"
  "CMakeFiles/dema_net.dir/network.cc.o"
  "CMakeFiles/dema_net.dir/network.cc.o.d"
  "CMakeFiles/dema_net.dir/serializer.cc.o"
  "CMakeFiles/dema_net.dir/serializer.cc.o.d"
  "libdema_net.a"
  "libdema_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dema_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
