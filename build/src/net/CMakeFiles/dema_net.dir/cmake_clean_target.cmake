file(REMOVE_RECURSE
  "libdema_net.a"
)
