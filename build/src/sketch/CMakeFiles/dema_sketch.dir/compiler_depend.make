# Empty compiler generated dependencies file for dema_sketch.
# This may be replaced when dependencies are built.
