
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/qdigest.cc" "src/sketch/CMakeFiles/dema_sketch.dir/qdigest.cc.o" "gcc" "src/sketch/CMakeFiles/dema_sketch.dir/qdigest.cc.o.d"
  "/root/repo/src/sketch/tdigest.cc" "src/sketch/CMakeFiles/dema_sketch.dir/tdigest.cc.o" "gcc" "src/sketch/CMakeFiles/dema_sketch.dir/tdigest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dema_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dema_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
