file(REMOVE_RECURSE
  "CMakeFiles/dema_sketch.dir/qdigest.cc.o"
  "CMakeFiles/dema_sketch.dir/qdigest.cc.o.d"
  "CMakeFiles/dema_sketch.dir/tdigest.cc.o"
  "CMakeFiles/dema_sketch.dir/tdigest.cc.o.d"
  "libdema_sketch.a"
  "libdema_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dema_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
