file(REMOVE_RECURSE
  "libdema_sketch.a"
)
