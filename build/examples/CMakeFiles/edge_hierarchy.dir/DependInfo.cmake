
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/edge_hierarchy.cpp" "examples/CMakeFiles/edge_hierarchy.dir/edge_hierarchy.cpp.o" "gcc" "examples/CMakeFiles/edge_hierarchy.dir/edge_hierarchy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dema_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/dema_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/dema/CMakeFiles/dema_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dema_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/dema_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/dema_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dema_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dema_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
