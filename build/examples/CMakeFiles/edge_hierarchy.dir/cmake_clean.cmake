file(REMOVE_RECURSE
  "CMakeFiles/edge_hierarchy.dir/edge_hierarchy.cpp.o"
  "CMakeFiles/edge_hierarchy.dir/edge_hierarchy.cpp.o.d"
  "edge_hierarchy"
  "edge_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
