# Empty compiler generated dependencies file for edge_hierarchy.
# This may be replaced when dependencies are built.
