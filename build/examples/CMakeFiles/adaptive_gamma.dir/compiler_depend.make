# Empty compiler generated dependencies file for adaptive_gamma.
# This may be replaced when dependencies are built.
