file(REMOVE_RECURSE
  "CMakeFiles/adaptive_gamma.dir/adaptive_gamma.cpp.o"
  "CMakeFiles/adaptive_gamma.dir/adaptive_gamma.cpp.o.d"
  "adaptive_gamma"
  "adaptive_gamma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
