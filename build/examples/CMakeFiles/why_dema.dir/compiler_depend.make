# Empty compiler generated dependencies file for why_dema.
# This may be replaced when dependencies are built.
