file(REMOVE_RECURSE
  "CMakeFiles/why_dema.dir/why_dema.cpp.o"
  "CMakeFiles/why_dema.dir/why_dema.cpp.o.d"
  "why_dema"
  "why_dema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/why_dema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
