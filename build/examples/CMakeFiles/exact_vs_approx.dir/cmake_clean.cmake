file(REMOVE_RECURSE
  "CMakeFiles/exact_vs_approx.dir/exact_vs_approx.cpp.o"
  "CMakeFiles/exact_vs_approx.dir/exact_vs_approx.cpp.o.d"
  "exact_vs_approx"
  "exact_vs_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_vs_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
