# Empty compiler generated dependencies file for exact_vs_approx.
# This may be replaced when dependencies are built.
