// demactl — command-line front end for the Dema library.
//
// Subcommands:
//   run          run one system over a synthetic workload and print
//                per-window results plus run metrics
//   compare      run several systems over the same workload and print a
//                side-by-side metric table
//   sustainable  binary-search the maximum sustainable throughput
//   serve        run one node (root or local) of a TCP deployment
//   cluster      run a whole cluster on this machine (--tcp forks one
//                process per local node talking TCP over loopback)
//   chaos        replay a seeded fault schedule (drops, duplicates, delays,
//                frame corruption, payload tampering, crashes, partitions)
//                and assert every window is exact against an oracle or
//                explicitly degraded with a cause
//
// Common flags:
//   --system=dema|scotty|desis|tdigest|tdigest-dec|qdigest   (run/sustainable)
//   --locals=N --windows=N --rate=EV_PER_SEC --gamma=G
//   --quantiles=0.25,0.5,0.99   --dist=uniform|normal|zipf|sensorwalk|exponential
//   --scale-rates=1,2,10        per-node value multipliers
//   --slide-ms=MS               sliding windows (Dema only)
//   --workers=N                 executor worker threads for closed-window
//                               sort+slice on Dema locals (0 = inline)
//   --adaptive --per-node-gamma --naive-selection
//   --csv=PATH                  also dump the table as CSV
//   --metrics-out=PATH          dump the run's metrics registry + per-window
//                               trace spans as JSON (run/serve/cluster)
//   --metrics-log-ms=MS         log all counters/gauges every MS milliseconds
//                               while the run is live
//
// Examples:
//   demactl run --system=dema --locals=4 --rate=100000 --quantiles=0.5,0.99
//   demactl compare --locals=2 --windows=6
//   demactl sustainable --system=scotty --locals=4

#include <iostream>
#include <memory>

#include "common/flags.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/table.h"
#include "obs/registry.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "shard/config.h"
#include "shard/serve.h"
#include "shard/sim_run.h"
#include "sim/chaos.h"
#include "sim/driver.h"
#include "sim/scenario.h"
#include "sim/sustainable.h"
#include "sim/tcp_run.h"
#include "sim/tree.h"
#include "sim/topology.h"

using namespace dema;

namespace {

int Fail(const std::string& message) {
  std::cerr << "demactl: " << message << "\n";
  return 1;
}

Result<sim::SystemKind> ParseSystem(const std::string& name) {
  if (name == "dema") return sim::SystemKind::kDema;
  if (name == "scotty" || name == "central") return sim::SystemKind::kCentralExact;
  if (name == "desis") return sim::SystemKind::kDesisMerge;
  if (name == "tdigest") return sim::SystemKind::kTDigestCentral;
  if (name == "tdigest-dec") return sim::SystemKind::kTDigestDecentral;
  if (name == "qdigest") return sim::SystemKind::kQDigest;
  return Status::InvalidArgument("unknown system: " + name);
}

Result<sim::SystemConfig> BuildConfig(const Flags& flags) {
  sim::SystemConfig config;
  DEMA_ASSIGN_OR_RETURN(config.kind,
                        ParseSystem(flags.GetString("system", "dema")));
  config.num_locals = static_cast<size_t>(flags.GetInt("locals", 2));
  config.gamma = static_cast<uint64_t>(flags.GetInt("gamma", 10'000));
  config.quantiles = flags.GetDoubleList("quantiles", {0.5});
  // Fail at flag-parse time, not mid-run: a bad quantile would otherwise only
  // surface once the system is built (or, worse, mid-deployment on the root).
  for (double q : config.quantiles) {
    if (!(q > 0.0) || q > 1.0) {
      return Status::InvalidArgument("--quantiles: " + std::to_string(q) +
                                     " outside (0, 1]");
    }
  }
  config.adaptive_gamma = flags.Has("adaptive");
  config.per_node_gamma = flags.Has("per-node-gamma");
  config.naive_selection = flags.Has("naive-selection");
  config.workers = static_cast<size_t>(flags.GetInt("workers", 0));
  if (flags.Has("slide-ms")) {
    config.window_slide_us = MillisUs(flags.GetInt("slide-ms", 1000));
  }
  config.qdigest_hi = flags.GetDouble("qdigest-hi", 1'000'000);
  return config;
}

Result<sim::WorkloadConfig> BuildWorkload(const Flags& flags,
                                          const sim::SystemConfig& config) {
  gen::DistributionParams dist;
  DEMA_ASSIGN_OR_RETURN(
      dist.kind,
      gen::DistributionKindFromString(flags.GetString("dist", "sensorwalk")));
  dist.lo = flags.GetDouble("lo", 0);
  dist.hi = flags.GetDouble("hi", 10'000);
  dist.stddev = flags.GetDouble("stddev",
                                dist.kind == gen::DistributionKind::kSensorWalk
                                    ? 25
                                    : 1'500);
  dist.mean = flags.GetDouble("mean", (dist.lo + dist.hi) / 2);
  std::vector<double> scale_rates = flags.GetDoubleList("scale-rates", {});
  sim::WorkloadConfig load = sim::MakeUniformWorkload(
      config.num_locals, static_cast<uint64_t>(flags.GetInt("windows", 5)),
      flags.GetDouble("rate", 50'000), dist, scale_rates,
      static_cast<uint64_t>(flags.GetInt("seed", 1000)));
  if (flags.Has("disorder-ms")) {
    load.max_disorder_us = MillisUs(flags.GetInt("disorder-ms", 0));
    load.allowed_lateness_us =
        MillisUs(flags.GetInt("lateness-ms", flags.GetInt("disorder-ms", 0)));
  }
  return load;
}

// --- observability plumbing -------------------------------------------------

/// Registry + tracer owned by a demactl command, wired into the system config
/// so every node, transport, and driver records into one place.
struct CommandObs {
  obs::Registry registry;
  obs::TraceRecorder tracer;
  std::unique_ptr<obs::PeriodicLogger> logger;

  /// \p enable_logger must be false when the command forks afterwards: a
  /// child forked while the logger thread holds the registry mutex would
  /// deadlock on its first instrument lookup.
  /// \p config may be null for commands (tree) that wire the registry into
  /// their own config type.
  CommandObs(sim::SystemConfig* config, const Flags& flags,
             bool enable_logger = true) {
    if (config != nullptr) {
      config->registry = &registry;
      config->tracer = &tracer;
    }
    if (!flags.Has("metrics-log-ms")) return;
    if (!enable_logger) {
      std::cerr << "demactl: --metrics-log-ms is ignored for forked runs\n";
      return;
    }
    // The periodic dump logs at Info; asking for it opts into that level
    // (the global default of Warn would silently swallow every tick).
    if (Logger::GetLevel() > LogLevel::kInfo) Logger::SetLevel(LogLevel::kInfo);
    logger = std::make_unique<obs::PeriodicLogger>(
        &registry, MillisUs(flags.GetInt("metrics-log-ms", 1000)));
  }

  /// Writes the JSON dump when --metrics-out was given; logs on failure.
  void Export(const Flags& flags) {
    logger.reset();  // final state should not race a logger tick
    std::string path = flags.GetString("metrics-out", "");
    if (path.empty()) return;
    Status st = obs::WriteObsFile(path, registry, &tracer);
    if (st.ok()) {
      std::cerr << "demactl: metrics written to " << path << "\n";
    } else {
      std::cerr << "demactl: metrics export failed: " << st << "\n";
    }
  }
};

void EmitTable(const Table& table, const Flags& flags) {
  table.Print(std::cout);
  std::string csv = flags.GetString("csv", "");
  if (!csv.empty()) {
    Status st = table.WriteCsv(csv);
    if (st.ok()) {
      std::cout << "CSV written to " << csv << "\n";
    } else {
      std::cerr << "CSV write failed: " << st << "\n";
    }
  }
}

std::vector<std::string> MetricsRow(const char* name,
                                    const sim::RunMetrics& metrics) {
  return {name,
          FmtCount(metrics.events_ingested),
          FmtRate(metrics.sim_throughput_eps),
          FmtF(metrics.latency.mean_us / 1000.0, 2) + " ms",
          FmtCount(metrics.network_total.events),
          FmtBytes(metrics.network_total.bytes),
          metrics.bottleneck};
}

int CmdRun(const Flags& flags) {
  auto config_result = BuildConfig(flags);
  if (!config_result.ok()) return Fail(config_result.status().ToString());
  sim::SystemConfig config = *config_result;
  auto load_result = BuildWorkload(flags, config);
  if (!load_result.ok()) return Fail(load_result.status().ToString());

  CommandObs command_obs(&config, flags);
  RealClock clock;
  net::Network::Options net_options;
  net_options.registry = &command_obs.registry;
  net::Network network(&clock, net_options);
  auto system_result = sim::BuildSystem(config, &network, &clock, 0);
  if (!system_result.ok()) return Fail(system_result.status().ToString());
  sim::System system = std::move(system_result).MoveValueUnsafe();
  sim::SyncDriver driver(&system, &network, &clock);
  sim::WorkloadConfig load = *load_result;
  load.window_len_us = config.window_len_us;
  load.window_slide_us = config.window_slide_us;
  Status st = driver.Run(load);
  if (!st.ok()) return Fail(st.ToString());

  std::vector<std::string> headers = {"window", "events"};
  for (double q : config.quantiles) headers.push_back("q" + FmtF(q * 100, 0));
  headers.push_back("latency ms");
  Table table(headers);
  for (const sim::WindowOutput& out : driver.outputs()) {
    std::vector<std::string> row = {std::to_string(out.window_id),
                                    FmtCount(out.global_size)};
    for (double v : out.values) row.push_back(FmtF(v, 2));
    row.push_back(FmtF(ToMillis(out.latency_us), 2));
    (void)table.AddRow(row);
  }
  EmitTable(table, flags);

  auto total = network.TotalStats();
  std::cout << "ingested " << FmtCount(driver.events_ingested()) << " events; "
            << FmtCount(total.counters.events) << " raw events / "
            << FmtBytes(total.counters.bytes) << " on the wire\n";
  obs::Histogram* latency_hist =
      command_obs.registry.GetHistogram("root.window_latency_us");
  for (const sim::WindowOutput& out : driver.outputs()) {
    latency_hist->Record(
        out.latency_us < 0 ? 0 : static_cast<uint64_t>(out.latency_us));
  }
  command_obs.Export(flags);
  return 0;
}

int CmdCompare(const Flags& flags) {
  Table table({"system", "events", "throughput", "mean latency", "wire events",
               "wire bytes", "bottleneck"});
  for (auto kind :
       {sim::SystemKind::kDema, sim::SystemKind::kCentralExact,
        sim::SystemKind::kDesisMerge, sim::SystemKind::kTDigestCentral,
        sim::SystemKind::kTDigestDecentral, sim::SystemKind::kQDigest}) {
    sim::SystemConfig config;
    auto base = BuildConfig(flags);
    if (!base.ok()) return Fail(base.status().ToString());
    config = *base;
    config.kind = kind;
    config.window_slide_us = 0;  // baselines are tumbling-only
    auto load_result = BuildWorkload(flags, config);
    if (!load_result.ok()) return Fail(load_result.status().ToString());
    auto metrics = sim::RunSync(config, *load_result);
    if (!metrics.ok()) return Fail(metrics.status().ToString());
    if (flags.Has("json")) {
      JsonWriter row;
      row.Field("system", sim::SystemKindToString(kind))
          .RawField("metrics", sim::RunMetricsToJson(*metrics));
      std::cout << row.Finish() << "\n";
    }
    (void)table.AddRow(MetricsRow(sim::SystemKindToString(kind), *metrics));
  }
  if (!flags.Has("json")) EmitTable(table, flags);
  return 0;
}

int CmdSustainable(const Flags& flags) {
  auto config_result = BuildConfig(flags);
  if (!config_result.ok()) return Fail(config_result.status().ToString());
  gen::DistributionParams dist;
  auto kind_result =
      gen::DistributionKindFromString(flags.GetString("dist", "uniform"));
  if (!kind_result.ok()) return Fail(kind_result.status().ToString());
  dist.kind = *kind_result;
  dist.lo = flags.GetDouble("lo", 0);
  dist.hi = flags.GetDouble("hi", 10'000);

  sim::SustainableSearchOptions opts;
  opts.windows = static_cast<uint64_t>(flags.GetInt("windows", 3));
  auto result = sim::FindSustainableThroughput(*config_result, dist, opts);
  if (!result.ok()) return Fail(result.status().ToString());
  std::cout << sim::SystemKindToString(config_result->kind)
            << " sustainable throughput: " << FmtRate(result->total_rate_eps)
            << " total (" << FmtRate(result->per_node_rate_eps) << " per node, "
            << result->probes << " probes)\n";
  return 0;
}

int CmdTree(const Flags& flags) {
  sim::TreeConfig config;
  config.num_relays = static_cast<size_t>(flags.GetInt("relays", 2));
  config.locals_per_relay = static_cast<size_t>(flags.GetInt("per-relay", 3));
  config.gamma = static_cast<uint64_t>(flags.GetInt("gamma", 1'000));
  config.quantiles = flags.GetDoubleList("quantiles", {0.5});
  for (double q : config.quantiles) {
    if (!(q > 0.0) || q > 1.0) {
      return Fail("--quantiles: " + std::to_string(q) + " outside (0, 1]");
    }
  }
  CommandObs command_obs(nullptr, flags);
  config.registry = &command_obs.registry;
  config.tracer = &command_obs.tracer;

  RealClock clock;
  net::Network::Options net_options;
  net_options.registry = &command_obs.registry;
  net::Network network(&clock, net_options);
  auto tree_result = sim::BuildTreeSystem(config, &network, &clock);
  if (!tree_result.ok()) return Fail(tree_result.status().ToString());
  sim::TreeSystem tree = std::move(tree_result).MoveValueUnsafe();

  gen::DistributionParams dist;
  auto kind_result =
      gen::DistributionKindFromString(flags.GetString("dist", "sensorwalk"));
  if (!kind_result.ok()) return Fail(kind_result.status().ToString());
  dist.kind = *kind_result;
  dist.lo = flags.GetDouble("lo", 0);
  dist.hi = flags.GetDouble("hi", 10'000);
  dist.stddev = flags.GetDouble("stddev", 25);
  size_t leaves = config.num_relays * config.locals_per_relay;
  sim::WorkloadConfig load = sim::MakeUniformWorkload(
      leaves, static_cast<uint64_t>(flags.GetInt("windows", 4)),
      flags.GetDouble("rate", 20'000), dist);
  load.window_len_us = config.window_len_us;
  for (size_t i = 0; i < leaves; ++i) load.generators[i].node = tree.local_ids[i];

  sim::TreeSyncDriver driver(&tree, &network, &clock);
  Status st = driver.Run(load);
  if (!st.ok()) return Fail(st.ToString());

  std::vector<std::string> headers = {"window", "events"};
  for (double q : config.quantiles) headers.push_back("q" + FmtF(q * 100, 0));
  Table table(headers);
  for (const sim::WindowOutput& out : driver.outputs()) {
    std::vector<std::string> row = {std::to_string(out.window_id),
                                    FmtCount(out.global_size)};
    for (double v : out.values) row.push_back(FmtF(v, 2));
    (void)table.AddRow(row);
  }
  EmitTable(table, flags);
  uint64_t uplink = 0;
  for (NodeId relay : tree.relay_ids) {
    uplink += network.GetLinkStats(relay, tree.root_id).counters.bytes;
  }
  std::cout << leaves << " leaves through " << config.num_relays
            << " relays; root uplink carried " << FmtBytes(uplink) << " for "
            << FmtCount(driver.events_ingested()) << " events.\n";
  auto* latency_hist =
      command_obs.registry.GetHistogram("root.window_latency_us");
  for (const sim::WindowOutput& out : driver.outputs()) {
    latency_hist->Record(
        out.latency_us < 0 ? 0 : static_cast<uint64_t>(out.latency_us));
  }
  command_obs.Export(flags);
  return 0;
}

// --- key-sharded multi-tenant deployment (src/shard) ------------------------

Result<shard::ShardedConfig> BuildShardedConfig(const Flags& flags) {
  shard::ShardedConfig sc;
  sc.num_locals = static_cast<size_t>(flags.GetInt("locals", 2));
  sc.num_shards = static_cast<uint32_t>(flags.GetInt("shards", 4));
  sc.num_keys = static_cast<uint64_t>(flags.GetInt("keys", 16));
  sc.workers = static_cast<size_t>(flags.GetInt("workers", 2));
  sc.gamma = static_cast<uint64_t>(flags.GetInt("gamma", 10'000));
  sc.quantiles = flags.GetDoubleList("quantiles", {0.5});
  for (double q : sc.quantiles) {
    if (!(q > 0.0) || q > 1.0) {
      return Status::InvalidArgument("--quantiles: " + std::to_string(q) +
                                     " outside (0, 1]");
    }
  }
  DEMA_RETURN_NOT_OK(shard::ValidateShardedConfig(sc));
  return sc;
}

Result<shard::KeyedWorkloadConfig> BuildKeyedWorkload(const Flags& flags) {
  shard::KeyedWorkloadConfig load;
  load.num_windows = static_cast<uint64_t>(flags.GetInt("windows", 3));
  load.event_rate = flags.GetDouble("rate", 1'000);
  DEMA_ASSIGN_OR_RETURN(
      load.distribution.kind,
      gen::DistributionKindFromString(flags.GetString("dist", "sensorwalk")));
  load.distribution.lo = flags.GetDouble("lo", 0);
  load.distribution.hi = flags.GetDouble("hi", 10'000);
  load.distribution.stddev = flags.GetDouble("stddev", 25);
  load.distribution.mean =
      flags.GetDouble("mean", (load.distribution.lo + load.distribution.hi) / 2);
  load.seed_base = static_cast<uint64_t>(flags.GetInt("seed", 1000));
  return load;
}

/// Keys asked on the command line: `--keys-list=0,5,9` wins, else all of
/// `--keys=K` (the service's key universe, ids 0..K-1).
std::vector<net::KeyId> QueryKeys(const Flags& flags, uint64_t num_keys) {
  std::vector<net::KeyId> keys;
  if (flags.Has("keys-list")) {
    for (double k : flags.GetDoubleList("keys-list", {})) {
      keys.push_back(static_cast<net::KeyId>(k));
    }
    return keys;
  }
  keys.reserve(num_keys);
  for (net::KeyId k = 0; k < num_keys; ++k) keys.push_back(k);
  return keys;
}

Result<std::pair<std::string, uint16_t>> ParseHostPort(const std::string& spec) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) {
    return Status::InvalidArgument("expected HOST:PORT, got '" + spec + "'");
  }
  int port = 0;
  try {
    port = std::stoi(spec.substr(colon + 1));
  } catch (...) {
    return Status::InvalidArgument("bad port in '" + spec + "'");
  }
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port out of range in '" + spec + "'");
  }
  return std::make_pair(spec.substr(0, colon), static_cast<uint16_t>(port));
}

void PrintTcpMetrics(const sim::RunMetrics& metrics, const Flags& flags) {
  if (flags.Has("json")) {
    std::cout << sim::RunMetricsToJson(metrics) << "\n";
    return;
  }
  Table table({"windows", "events", "throughput", "mean latency", "wire events",
               "wire bytes"});
  (void)table.AddRow({FmtCount(metrics.windows_emitted),
                      FmtCount(metrics.events_ingested),
                      FmtRate(metrics.throughput_eps),
                      FmtF(metrics.latency.mean_us / 1000.0, 2) + " ms",
                      FmtCount(metrics.network_total.events),
                      FmtBytes(metrics.network_total.bytes)});
  EmitTable(table, flags);
}

/// Session-resilience tuning shared by every TCP command: `--heartbeat-ms`
/// turns on idle-connection heartbeats + dead-peer detection,
/// `--heartbeat-misses` sets the silence budget, `--auto-reconnect` enables
/// background redial with acked-frame replay.
sim::TcpSessionTuning SessionTuningFromFlags(const Flags& flags) {
  sim::TcpSessionTuning tuning;
  if (flags.Has("heartbeat-ms")) {
    tuning.heartbeat_interval_us =
        MillisUs(flags.GetInt("heartbeat-ms", 0));
  }
  tuning.heartbeat_misses = static_cast<int>(flags.GetInt("heartbeat-misses", 3));
  tuning.auto_reconnect = flags.Has("auto-reconnect");
  return tuning;
}

/// Sharded (multi-tenant) serve roles, selected by `--shards=S`.
int CmdServeSharded(const Flags& flags) {
  auto sc_result = BuildShardedConfig(flags);
  if (!sc_result.ok()) return Fail(sc_result.status().ToString());
  shard::ShardedConfig sc = *sc_result;
  const DurationUs timeout_us =
      static_cast<DurationUs>(flags.GetInt("timeout-s", 120)) * kMicrosPerSecond;

  std::string role = flags.GetString("role", "");
  if (role == "root") {
    auto listen = ParseHostPort(flags.GetString("listen", "127.0.0.1:7311"));
    if (!listen.ok()) return Fail(listen.status().ToString());
    shard::ShardedServeOptions opts;
    opts.listen_host = listen->first;
    opts.listen_port = listen->second;
    opts.timeout_us = timeout_us;
    opts.expected_windows =
        static_cast<uint64_t>(flags.GetInt("windows", 3));
    opts.linger_us = static_cast<DurationUs>(flags.GetInt("linger-s", 10)) *
                     kMicrosPerSecond;
    opts.outbox_capacity =
        static_cast<size_t>(flags.GetInt("outbox-cap", 1024));
    sim::TcpSessionTuning tuning = SessionTuningFromFlags(flags);
    opts.heartbeat_interval_us = tuning.heartbeat_interval_us;
    opts.heartbeat_misses = tuning.heartbeat_misses;
    opts.on_listening = [&](uint16_t port) {
      std::cerr << "demactl: sharded root listening on " << listen->first << ":"
                << port << " (" << sc.num_shards << " shards, " << sc.num_keys
                << " keys, " << sc.num_locals << " locals)\n";
    };
    auto report = shard::RunShardedTcpRoot(sc, opts);
    if (!report.ok()) return Fail(report.status().ToString());
    std::cout << "sharded root: " << FmtCount(report->windows_emitted)
              << " per-key windows across " << sc.num_keys << " keys, "
              << FmtCount(report->queries_answered) << " queries answered in "
              << FmtF(report->wall_seconds, 2) << " s\n";
    return 0;
  }
  if (role == "local") {
    auto root = ParseHostPort(flags.GetString("root", "127.0.0.1:7311"));
    if (!root.ok()) return Fail(root.status().ToString());
    auto load_result = BuildKeyedWorkload(flags);
    if (!load_result.ok()) return Fail(load_result.status().ToString());
    NodeId id = static_cast<NodeId>(flags.GetInt("id", 1));
    shard::ShardedTcpLocalOptions opts;
    opts.root_host = root->first;
    opts.root_port = root->second;
    opts.timeout_us = timeout_us;
    opts.outbox_capacity =
        static_cast<size_t>(flags.GetInt("outbox-cap", 1024));
    sim::TcpSessionTuning tuning = SessionTuningFromFlags(flags);
    opts.heartbeat_interval_us = tuning.heartbeat_interval_us;
    opts.heartbeat_misses = tuning.heartbeat_misses;
    opts.auto_reconnect = tuning.auto_reconnect;
    auto report = shard::RunShardedTcpLocal(sc, *load_result, id, opts);
    if (!report.ok()) return Fail(report.status().ToString());
    std::cout << "keyed local " << id << ": ingested "
              << FmtCount(report->events_ingested) << " events across "
              << sc.num_keys << " keys\n";
    return 0;
  }
  return Fail("sharded serve needs --role=root or --role=local");
}

int CmdServe(const Flags& flags) {
  if (flags.Has("shards")) return CmdServeSharded(flags);
  auto config_result = BuildConfig(flags);
  if (!config_result.ok()) return Fail(config_result.status().ToString());
  sim::SystemConfig config = *config_result;
  auto load_result = BuildWorkload(flags, config);
  if (!load_result.ok()) return Fail(load_result.status().ToString());
  CommandObs command_obs(&config, flags);
  const DurationUs timeout_us =
      static_cast<DurationUs>(flags.GetInt("timeout-s", 120)) * kMicrosPerSecond;

  std::string role = flags.GetString("role", "");
  if (role == "root") {
    auto listen = ParseHostPort(flags.GetString("listen", "127.0.0.1:7311"));
    if (!listen.ok()) return Fail(listen.status().ToString());
    sim::TcpRootOptions opts;
    opts.listen_host = listen->first;
    opts.listen_port = listen->second;
    opts.timeout_us = timeout_us;
    opts.outbox_capacity =
        static_cast<size_t>(flags.GetInt("outbox-cap", 1024));
    opts.session = SessionTuningFromFlags(flags);
    opts.on_listening = [&](uint16_t port) {
      std::cerr << "demactl: root listening on " << listen->first << ":" << port
                << ", waiting for " << config.num_locals << " locals\n";
    };
    auto metrics =
        sim::RunTcpRoot(config, load_result->ExpectedWindows(), opts);
    if (!metrics.ok()) return Fail(metrics.status().ToString());
    PrintTcpMetrics(*metrics, flags);
    command_obs.Export(flags);
    return 0;
  }
  if (role == "local") {
    auto root = ParseHostPort(flags.GetString("root", "127.0.0.1:7311"));
    if (!root.ok()) return Fail(root.status().ToString());
    NodeId id = static_cast<NodeId>(flags.GetInt("id", 1));
    sim::TcpLocalOptions opts;
    opts.root_host = root->first;
    opts.root_port = root->second;
    opts.timeout_us = timeout_us;
    opts.outbox_capacity =
        static_cast<size_t>(flags.GetInt("outbox-cap", 1024));
    opts.session = SessionTuningFromFlags(flags);
    auto report = sim::RunTcpLocal(config, *load_result, id, opts);
    if (!report.ok()) return Fail(report.status().ToString());
    uint64_t sent_bytes = 0;
    for (const auto& [link, counters] : report->sent_links) {
      (void)link;
      sent_bytes += counters.bytes;
    }
    std::cout << "local " << id << ": ingested "
              << FmtCount(report->events_ingested) << " events, sent "
              << FmtBytes(sent_bytes) << " to the root\n";
    command_obs.Export(flags);
    return 0;
  }
  return Fail("serve needs --role=root or --role=local");
}

/// Field-by-field comparison of two chaos runs; returns an empty string when
/// they are identical, else a description of the first divergence.
std::string DescribeChaosDiff(const sim::ChaosReport& a,
                              const sim::ChaosReport& b) {
  if (a.windows.size() != b.windows.size()) {
    return "window counts differ (" + std::to_string(a.windows.size()) +
           " vs " + std::to_string(b.windows.size()) + ")";
  }
  for (size_t i = 0; i < a.windows.size(); ++i) {
    const sim::ChaosWindowReport& wa = a.windows[i];
    const sim::ChaosWindowReport& wb = b.windows[i];
    if (wa.emitted != wb.emitted || wa.degraded != wb.degraded ||
        wa.degrade_cause != wb.degrade_cause ||
        wa.rank_error_bound != wb.rank_error_bound ||
        wa.global_size != wb.global_size || wa.values != wb.values) {
      return "window " + std::to_string(wa.window_id) + " diverged";
    }
  }
  if (a.messages_dropped != b.messages_dropped ||
      a.duplicates_injected != b.duplicates_injected ||
      a.messages_delayed != b.messages_delayed ||
      a.messages_corrupted != b.messages_corrupted ||
      a.root_retries != b.root_retries || a.restarts != b.restarts ||
      a.rejected_payloads != b.rejected_payloads ||
      a.quarantines != b.quarantines || a.readmissions != b.readmissions) {
    return "fault-fabric counters diverged";
  }
  return "";
}

/// Connection-level chaos over the forked TCP cluster
/// (`chaos --conn-kill=N@F..U`): sockets are severed mid-window — plus
/// optional CRC-caught frame corruption and write stalls — and the session
/// layer (heartbeats, redial, acked-frame replay) must make every fault
/// invisible: the quantiles must exactly match a fault-free in-process run.
int CmdConnChaos(const Flags& flags) {
  auto plan_result = sim::ParseConnKillSpec(flags.GetString("conn-kill", ""));
  if (!plan_result.ok()) return Fail(plan_result.status().ToString());

  auto config_result = BuildConfig(flags);
  if (!config_result.ok()) return Fail(config_result.status().ToString());
  sim::SystemConfig config = *config_result;
  if (config.kind != sim::SystemKind::kDema) {
    return Fail("chaos supports --system=dema only");
  }
  if (flags.Has("deadline")) {
    config.root_deadline_ticks =
        static_cast<uint64_t>(flags.GetInt("deadline", 0));
  }
  auto load_result = BuildWorkload(flags, config);
  if (!load_result.ok()) return Fail(load_result.status().ToString());
  sim::WorkloadConfig load = *load_result;
  load.window_len_us = config.window_len_us;

  sim::TcpClusterFaultOptions fault;
  fault.conn_kill = *plan_result;
  double corrupt = flags.GetDouble("corrupt-rate", 0.0);
  if (corrupt < 0 || corrupt >= 1) {
    return Fail("--corrupt-rate must be in [0, 1)");
  }
  fault.corrupt_rate = corrupt;
  fault.corrupt_seed = static_cast<uint64_t>(flags.GetInt("corrupt-seed", 0));
  fault.session = SessionTuningFromFlags(flags);
  if (fault.session.heartbeat_interval_us <= 0) {
    // Connection chaos is pointless without liveness detection; default to a
    // tight interval so kills are noticed well inside a test window.
    fault.session.heartbeat_interval_us = MillisUs(20);
  }
  fault.session.auto_reconnect = true;
  fault.write_stall_after_frames =
      static_cast<uint64_t>(flags.GetInt("write-stall-after", 0));
  fault.write_stall_us = MillisUs(flags.GetInt("write-stall-ms", 50));

  auto report_result = sim::RunTcpConnChaos(config, load, fault);
  if (!report_result.ok()) return Fail(report_result.status().ToString());
  sim::TcpConnChaosReport report = std::move(report_result).MoveValueUnsafe();

  std::cout << "conn chaos: " << report.conn_kills << " kills injected, "
            << report.peer_down << " peer-down, " << report.reconnects
            << " redials, " << report.replayed_frames << " frames replayed, "
            << report.partial_frame_drops << " partial-frame drops\n"
            << "parity: " << report.outputs.size() << " windows vs "
            << report.reference.size() << " reference, "
            << report.degraded_windows << " degraded, "
            << report.mismatched_windows << " mismatched\n";
  if (!report.Invariant()) {
    return Fail("conn-chaos invariant violated: " + report.violation);
  }
  std::cout << "conn-chaos invariant held: every fault fired and every "
               "window is exact and identical to the fault-free run\n";
  return 0;
}

int CmdChaos(const Flags& flags) {
  if (flags.Has("conn-kill")) return CmdConnChaos(flags);
  if (!flags.Has("fault-schedule")) {
    return Fail(
        "chaos needs --fault-schedule=SPEC, e.g. "
        "--fault-schedule=drop=0.05,dup=0.02,seed=7,crash=1@2+1");
  }
  auto plan_result =
      sim::ParseFaultSchedule(flags.GetString("fault-schedule", ""));
  if (!plan_result.ok()) return Fail(plan_result.status().ToString());
  sim::FaultPlan plan = *plan_result;
  if (flags.Has("corrupt-rate")) {
    // Convenience alias for `corrupt=P` in the schedule spec: per-message
    // frame byte-flip probability, detected (and dropped) by the CRC check.
    double rate = flags.GetDouble("corrupt-rate", 0.0);
    if (rate < 0 || rate >= 1) {
      return Fail("--corrupt-rate must be in [0, 1)");
    }
    plan.corrupt_prob = rate;
  }

  auto config_result = BuildConfig(flags);
  if (!config_result.ok()) return Fail(config_result.status().ToString());
  sim::SystemConfig config = *config_result;
  if (config.kind != sim::SystemKind::kDema) {
    return Fail("chaos supports --system=dema only");
  }
  auto load_result = BuildWorkload(flags, config);
  if (!load_result.ok()) return Fail(load_result.status().ToString());
  sim::WorkloadConfig load = *load_result;
  load.window_len_us = config.window_len_us;

  auto report_result = sim::RunChaos(config, load, plan);
  if (!report_result.ok()) return Fail(report_result.status().ToString());
  sim::ChaosReport report = std::move(report_result).MoveValueUnsafe();

  std::vector<std::string> headers = {"window", "events", "status", "cause",
                                      "bound"};
  for (double q : config.quantiles) headers.push_back("q" + FmtF(q * 100, 0));
  Table table(headers);
  for (const sim::ChaosWindowReport& w : report.windows) {
    std::string status = !w.emitted          ? "MISSING"
                         : w.degraded        ? "degraded"
                         : w.matches_oracle  ? "exact"
                                             : "MISMATCH";
    std::vector<std::string> row = {std::to_string(w.window_id),
                                    FmtCount(w.global_size), status,
                                    w.degrade_cause,
                                    w.degraded ? FmtCount(w.rank_error_bound)
                                               : ""};
    for (size_t i = 0; i < config.quantiles.size(); ++i) {
      row.push_back(i < w.values.size() ? FmtF(w.values[i], 2) : "-");
    }
    (void)table.AddRow(row);
  }
  EmitTable(table, flags);
  std::cout << report.exact_windows << " exact, " << report.degraded_windows
            << " degraded, " << report.mismatched_windows << " mismatched, "
            << report.missing_windows << " missing; faults: "
            << report.messages_dropped << " dropped, "
            << report.duplicates_injected << " duplicated, "
            << report.messages_delayed << " delayed, "
            << report.messages_corrupted << " corrupted; "
            << report.root_retries << " root retries, " << report.restarts
            << " restarts; defense: " << report.rejected_payloads
            << " rejected, " << report.quarantines << " quarantined, "
            << report.readmissions << " re-admitted\n";

  if (flags.Has("verify-determinism")) {
    auto second = sim::RunChaos(config, load, plan);
    if (!second.ok()) return Fail(second.status().ToString());
    std::string diff = DescribeChaosDiff(report, *second);
    if (!diff.empty()) {
      return Fail("determinism check failed: " + diff);
    }
    std::cout << "determinism check passed: second run identical\n";
  }

  if (!report.Invariant()) {
    return Fail("chaos invariant violated: " + report.violation);
  }
  std::cout << "chaos invariant held: every window exact or explicitly "
               "degraded, root ended idle\n";
  return 0;
}

/// Splits `--topology=star,tree:fanout=4,wan:regions=4,wan-latency-us=100`
/// into topology specs. Commas separate topologies only when the next token
/// starts a known kind; otherwise they continue the previous spec's options
/// (the wan spec takes several comma-separated keys).
std::vector<std::string> SplitTopologyList(const std::string& list) {
  auto starts_kind = [](const std::string& s) {
    for (const char* kind : {"flat", "star", "tree", "fat-tree", "wan"}) {
      size_t n = std::string(kind).size();
      if (s.compare(0, n, kind) == 0 &&
          (s.size() == n || s[n] == ':')) {
        return true;
      }
    }
    return false;
  };
  std::vector<std::string> specs;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    std::string piece = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!piece.empty()) {
      if (!specs.empty() && !starts_kind(piece)) {
        specs.back() += "," + piece;
      } else {
        specs.push_back(piece);
      }
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return specs;
}

int CmdSim(const Flags& flags) {
  std::vector<std::string> topologies =
      SplitTopologyList(flags.GetString("topology", "star"));
  if (topologies.empty()) {
    return Fail("sim needs --topology=SPEC[,SPEC...], e.g. "
                "--topology=star,tree,fat-tree,wan");
  }

  sim::ScenarioOptions options;
  if (flags.Has("fault-schedule")) {
    auto plan = sim::ParseFaultSchedule(flags.GetString("fault-schedule", ""));
    if (!plan.ok()) return Fail(plan.status().ToString());
    options.faults = *plan;
  }

  auto config_result = BuildConfig(flags);
  if (!config_result.ok()) return Fail(config_result.status().ToString());
  sim::SystemConfig config = *config_result;
  auto load_result = BuildWorkload(flags, config);
  if (!load_result.ok()) return Fail(load_result.status().ToString());
  sim::WorkloadConfig load = *load_result;
  load.window_len_us = config.window_len_us;

  Table table({"topology", "locals", "events", "exact", "degraded", "ticks",
               "sim events", "queue peak", "virtual time", "events/s",
               "dropped"});
  const bool verify = flags.Has("verify-determinism");
  bool ok = true;
  for (const std::string& spec : topologies) {
    options.topology = spec;
    auto report_result = sim::RunScenario(config, load, options);
    if (!report_result.ok()) {
      return Fail(spec + ": " + report_result.status().ToString());
    }
    sim::ScenarioReport report = std::move(report_result).MoveValueUnsafe();
    if (verify) {
      auto second = sim::RunScenario(config, load, options);
      if (!second.ok()) return Fail(spec + ": " + second.status().ToString());
      std::string diff = sim::DescribeScenarioDiff(report, *second);
      if (!diff.empty()) {
        return Fail(spec + ": determinism check failed: " + diff);
      }
    }
    (void)table.AddRow({report.topology, FmtCount(report.num_locals),
                        FmtCount(report.events_ingested),
                        FmtCount(report.exact_windows),
                        FmtCount(report.degraded_windows),
                        FmtCount(report.sim_ticks),
                        FmtCount(report.sim_events),
                        FmtCount(report.event_queue_peak),
                        FmtF(report.virtual_time_us / 1000.0, 1) + " ms",
                        FmtRate(report.sim_throughput_eps),
                        FmtCount(report.messages_dropped)});
    if (!report.Invariant()) {
      std::cerr << "demactl: " << spec << ": " << report.violation << "\n";
      ok = false;
    }
  }
  EmitTable(table, flags);
  if (!ok) return Fail("scenario invariant violated");
  std::cout << "every window exact or explicitly degraded on "
            << topologies.size() << " topolog"
            << (topologies.size() == 1 ? "y" : "ies");
  if (verify) std::cout << "; determinism check passed (seeded reruns identical)";
  std::cout << "\n";
  return 0;
}

int CmdCluster(const Flags& flags) {
  auto config_result = BuildConfig(flags);
  if (!config_result.ok()) return Fail(config_result.status().ToString());
  sim::SystemConfig config = *config_result;
  auto load_result = BuildWorkload(flags, config);
  if (!load_result.ok()) return Fail(load_result.status().ToString());
  CommandObs command_obs(&config, flags, /*enable_logger=*/!flags.Has("tcp"));

  sim::TcpClusterFaultOptions cluster_opts;
  cluster_opts.session = SessionTuningFromFlags(flags);
  Result<sim::RunMetrics> metrics = flags.Has("tcp")
      // One OS process per local node plus the root, TCP over loopback.
      ? sim::RunTcpClusterForked(config, *load_result, cluster_opts,
                                 flags.GetString("host", "127.0.0.1"),
                                 static_cast<uint16_t>(flags.GetInt("port", 0)))
      // Same topology over the in-process fabric, for comparison.
      : sim::RunThreaded(config, *load_result);
  if (!metrics.ok()) return Fail(metrics.status().ToString());
  PrintTcpMetrics(*metrics, flags);
  command_obs.Export(flags);
  return 0;
}

int CmdShard(const Flags& flags) {
  auto sc_result = BuildShardedConfig(flags);
  if (!sc_result.ok()) return Fail(sc_result.status().ToString());
  shard::ShardedConfig sc = *sc_result;
  auto load_result = BuildKeyedWorkload(flags);
  if (!load_result.ok()) return Fail(load_result.status().ToString());

  shard::ShardedSimHarness harness(sc);
  if (!harness.init_status().ok()) {
    return Fail(harness.init_status().ToString());
  }
  Status st = harness.Run(*load_result);
  if (!st.ok()) return Fail(st.ToString());

  // Per-key final windows; a large universe only prints head and tail.
  std::vector<std::string> headers = {"key", "shard", "windows", "events"};
  for (double q : sc.quantiles) headers.push_back("q" + FmtF(q * 100, 0));
  Table table(headers);
  constexpr uint64_t kHeadTail = 8;
  for (net::KeyId key = 0; key < sc.num_keys; ++key) {
    if (sc.num_keys > 2 * kHeadTail && key == kHeadTail) {
      key = static_cast<net::KeyId>(sc.num_keys - kHeadTail);
      std::vector<std::string> gap(headers.size(), "...");
      (void)table.AddRow(gap);
    }
    const auto& outputs = harness.outputs_by_key()[key];
    std::vector<std::string> row = {
        std::to_string(key),
        std::to_string(shard::ShardOfKey(key, sc.num_shards)),
        FmtCount(outputs.size()),
        outputs.empty() ? "0" : FmtCount(outputs.back().global_size)};
    for (size_t i = 0; i < sc.quantiles.size(); ++i) {
      row.push_back(outputs.empty() || i >= outputs.back().values.size()
                        ? "-"
                        : FmtF(outputs.back().values[i], 2));
    }
    (void)table.AddRow(row);
  }
  EmitTable(table, flags);
  std::cout << "sharded sim: " << FmtCount(harness.events_ingested())
            << " events across " << sc.num_keys << " keys / " << sc.num_shards
            << " shards, " << FmtCount(harness.service()->windows_emitted())
            << " per-key windows emitted\n";
  return 0;
}

int CmdQuery(const Flags& flags) {
  auto root = ParseHostPort(flags.GetString("root", "127.0.0.1:7311"));
  if (!root.ok()) return Fail(root.status().ToString());

  shard::ShardQueryOptions opts;
  opts.root_host = root->first;
  opts.root_port = root->second;
  opts.id = static_cast<NodeId>(
      flags.GetInt("id", shard::kFirstQueryClientId));
  opts.keys = QueryKeys(flags, static_cast<uint64_t>(flags.GetInt("keys", 16)));
  if (opts.keys.empty()) return Fail("query needs --keys=K or --keys-list=...");
  opts.quantiles = flags.GetDoubleList("quantiles", {});
  for (double q : opts.quantiles) {
    if (!(q > 0.0) || q > 1.0) {
      return Fail("--quantiles: " + std::to_string(q) + " outside (0, 1]");
    }
  }
  opts.concurrency = static_cast<size_t>(flags.GetInt("concurrency", 4));
  opts.until_window =
      static_cast<net::WindowId>(flags.GetInt("until-window", 0));
  opts.shutdown_root = flags.Has("shutdown-root");
  opts.timeout_us =
      static_cast<DurationUs>(flags.GetInt("timeout-s", 60)) * kMicrosPerSecond;

  auto report = shard::RunShardQueryClient(opts);
  if (!report.ok()) return Fail(report.status().ToString());

  // Merge the per-session final replies (keys are split round-robin across
  // sessions) back into one table in key order.
  std::map<net::KeyId, net::KeyedAnswer> answers;
  std::vector<double> quantiles;
  for (const net::KeyedQueryReply& reply : report->final_replies) {
    if (quantiles.empty()) quantiles = reply.quantiles;
    for (const net::KeyedAnswer& a : reply.answers) answers[a.key] = a;
  }
  std::vector<std::string> headers = {"key", "window", "events"};
  for (double q : quantiles) headers.push_back("q" + FmtF(q * 100, 0));
  Table table(headers);
  for (net::KeyId key : opts.keys) {
    auto it = answers.find(key);
    if (it == answers.end() || !it->second.found) {
      std::vector<std::string> row = {std::to_string(key), "-", "-"};
      row.resize(headers.size(), "-");
      (void)table.AddRow(row);
      continue;
    }
    const net::KeyedAnswer& a = it->second;
    std::vector<std::string> row = {std::to_string(key),
                                    std::to_string(a.window_id),
                                    FmtCount(a.global_size)};
    for (size_t i = 0; i < quantiles.size(); ++i) {
      row.push_back(i < a.values.size() ? FmtF(a.values[i], 2) : "-");
    }
    (void)table.AddRow(row);
  }
  EmitTable(table, flags);
  std::cout << report->keys_found << "/" << opts.keys.size()
            << " keys answered across " << opts.concurrency << " sessions ("
            << FmtCount(report->queries_sent) << " queries sent)\n";
  return report->keys_found == opts.keys.size() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string cmd =
      flags.positional().empty() ? "help" : flags.positional().front();
  if (cmd == "run") return CmdRun(flags);
  if (cmd == "compare") return CmdCompare(flags);
  if (cmd == "sustainable") return CmdSustainable(flags);
  if (cmd == "tree") return CmdTree(flags);
  if (cmd == "serve") return CmdServe(flags);
  if (cmd == "shard") return CmdShard(flags);
  if (cmd == "query") return CmdQuery(flags);
  if (cmd == "cluster") return CmdCluster(flags);
  if (cmd == "chaos") return CmdChaos(flags);
  if (cmd == "sim") return CmdSim(flags);
  std::cout
      << "usage: demactl "
         "<run|compare|sustainable|tree|serve|shard|query|cluster|chaos|sim> "
         "[flags]\n"
         "  run          run one system and print per-window results\n"
         "  compare      run every system on the same workload\n"
         "  sustainable  search the maximum sustainable throughput\n"
         "  serve        one TCP node: --role=root --listen=H:P | "
         "--role=local --id=I --root=H:P\n"
         "               add --shards=S --keys=K for the multi-tenant\n"
         "               service (root answers `demactl query` live;\n"
         "               --windows= horizon, --linger-s= query window);\n"
         "               --outbox-cap=N bounds per-connection send\n"
         "               queues (0 = unbounded; default 1024)\n"
         "  shard        in-process multi-tenant run: --shards= --keys=\n"
         "               --locals= --workers= --windows= --rate=\n"
         "  query        concurrent queries against a sharded root:\n"
         "               --root=H:P --keys=K | --keys-list=a,b,c\n"
         "               --quantiles= --concurrency= --until-window=\n"
         "               --shutdown-root --timeout-s=\n"
         "  cluster      whole cluster on this machine; --tcp forks one\n"
         "               process per local node over loopback TCP\n"
         "  chaos        replay a seeded fault schedule and check every\n"
         "               window against an oracle; --fault-schedule=SPEC\n"
         "               (drop= dup= delay-us= corrupt= tamper-prob= seed=\n"
         "               strikes= crash=N@W+D partition=A-B@F..U\n"
         "               tamper=N@F..U), --corrupt-rate=P frame-flip\n"
         "               shorthand, --verify-determinism runs twice;\n"
         "               --conn-kill=N@F..U instead runs the forked TCP\n"
         "               cluster severing connections N times between the\n"
         "               F-th and U-th data frame (with --corrupt-rate=P,\n"
         "               --write-stall-after=N --write-stall-ms=MS) and\n"
         "               demands exact parity with a fault-free run\n"
         "  sim          tick-based discrete-event run over routed\n"
         "               topologies: --topology=SPEC[,SPEC...] with specs\n"
         "               flat star tree[:fanout=F] fat-tree[:k=K]\n"
         "               wan[:regions=R,wan-latency-us=L]; checks every\n"
         "               window against the exact oracle; optional\n"
         "               --fault-schedule=drop=,dup=,delay-us=,delay-prob=,\n"
         "               corrupt=,seed= (probabilistic subset only) and\n"
         "               --verify-determinism reruns each seeded scenario\n"
         "flags: --system= --locals= --windows= --rate= --gamma= --quantiles=\n"
         "       --dist= --scale-rates= --slide-ms= --adaptive --per-node-gamma\n"
         "       --naive-selection --csv= --metrics-out= --metrics-log-ms=\n"
         "       --heartbeat-ms= --heartbeat-misses= --auto-reconnect (TCP\n"
         "       session resilience: liveness probes, redial, frame replay)\n";
  return cmd == "help" ? 0 : 1;
}
