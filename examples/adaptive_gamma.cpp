// Adaptive slice factor in action (Section 3.3 of the paper).
//
// The workload drifts: a quiet night (5k ev/s per node) ramps into a morning
// rush (150k ev/s) and settles at a daytime plateau (40k ev/s). After every
// window the root re-optimizes gamma* = sqrt(2 l_G / m) from the observed
// window size and candidate-slice count and broadcasts it to the local
// nodes. This example drives the pipeline window-by-window and prints the
// trajectory.
//
// Build & run:  cmake --build build && ./build/examples/adaptive_gamma

#include <iostream>

#include "common/clock.h"
#include "common/table.h"
#include "dema/adaptive_gamma.h"
#include "dema/root_node.h"
#include "gen/generator.h"
#include "sim/topology.h"

using namespace dema;

namespace {

double RateForWindow(uint64_t w) {
  if (w < 4) return 5'000;    // night
  if (w < 8) return 150'000;  // rush hour
  return 40'000;              // daytime plateau
}

}  // namespace

int main() {
  const uint64_t kWindows = 12;
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = 2;
  config.gamma = 5'000;  // deliberately off; watch it converge
  config.adaptive_gamma = true;

  RealClock clock;
  net::Network network(&clock);
  auto system_result = sim::BuildSystem(config, &network, &clock);
  if (!system_result.ok()) {
    std::cerr << "setup failed: " << system_result.status() << "\n";
    return 1;
  }
  sim::System system = std::move(system_result).MoveValueUnsafe();
  auto* root = static_cast<core::DemaRootNode*>(system.root.get());

  Table table({"window", "rate/node", "l_G", "candidate slices",
               "candidate events", "gamma after window"});
  uint64_t last_candidate_slices = 0, last_candidate_events = 0;
  std::vector<sim::WindowOutput> outputs;
  root->SetResultCallback(
      [&](const sim::WindowOutput& out) { outputs.push_back(out); });

  auto pump = [&] {
    bool progress = true;
    while (progress) {
      progress = false;
      while (auto msg = network.Inbox(system.root_id)->TryPop()) {
        Status st = system.root->OnMessage(*msg);
        if (!st.ok()) std::cerr << "root: " << st << "\n";
        progress = true;
      }
      for (size_t i = 0; i < system.locals.size(); ++i) {
        while (auto msg = network.Inbox(system.local_ids[i])->TryPop()) {
          Status st = system.locals[i]->OnMessage(*msg);
          if (!st.ok()) std::cerr << "local: " << st << "\n";
          progress = true;
        }
      }
    }
  };

  for (uint64_t w = 0; w < kWindows; ++w) {
    double rate = RateForWindow(w);
    TimestampUs start = static_cast<TimestampUs>(w) * config.window_len_us;
    for (size_t i = 0; i < system.locals.size(); ++i) {
      gen::GeneratorConfig gcfg;
      gcfg.node = system.local_ids[i];
      gcfg.seed = 7 + w * 31 + i;
      gcfg.distribution.kind = gen::DistributionKind::kSensorWalk;
      gcfg.distribution.lo = 0;
      gcfg.distribution.hi = 10'000;
      gcfg.distribution.stddev = 25;
      gcfg.event_rate = rate;
      gcfg.start_time_us = start;
      auto gen_result = gen::StreamGenerator::Create(gcfg);
      if (!gen_result.ok()) {
        std::cerr << "generator: " << gen_result.status() << "\n";
        return 1;
      }
      auto gen = std::move(gen_result).MoveValueUnsafe();
      for (const Event& e : gen->GenerateWindow(start, config.window_len_us)) {
        (void)system.locals[i]->OnEvent(e);
      }
      (void)system.locals[i]->OnWatermark(start + config.window_len_us);
    }
    pump();

    const auto& stats = root->stats();
    (void)table.AddRow(
        {std::to_string(w), FmtRate(rate),
         FmtCount(outputs.empty() ? 0 : outputs.back().global_size),
         FmtCount(stats.candidate_slices - last_candidate_slices),
         FmtCount(stats.candidate_events - last_candidate_events),
         std::to_string(root->current_gamma())});
    last_candidate_slices = stats.candidate_slices;
    last_candidate_events = stats.candidate_events;
  }
  table.Print(std::cout);

  std::cout << "\nCost-model reference points (gamma* = sqrt(2 l_G / m)):\n";
  for (double rate : {5'000.0, 150'000.0, 40'000.0}) {
    uint64_t l_g = static_cast<uint64_t>(rate) * 2;
    std::cout << "  rate " << FmtRate(rate) << " per node -> l_G=" << FmtCount(l_g)
              << ", gamma*(m=2) = " << core::OptimalGamma(l_g, 2) << "\n";
  }
  return 0;
}
