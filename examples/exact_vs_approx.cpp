// Exact vs approximate: when does Dema beat a t-digest, and what does the
// approximation actually cost?
//
// Runs the same heavy-tailed workload (zipf-distributed transaction sizes)
// through Dema (exact) and the t-digest pipeline (approximate), then compares
// per-window p99 values against a full-sort oracle. Heavy tails are where
// approximate sketches earn their keep on speed and where their error
// concentrates in absolute terms — and where a billing system, for example,
// cannot tolerate being wrong.
//
// Build & run:  cmake --build build && ./build/examples/exact_vs_approx

#include <cmath>
#include <iostream>

#include "common/clock.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/driver.h"
#include "sim/topology.h"
#include "stream/quantile.h"

using namespace dema;

namespace {

struct RunOutput {
  std::vector<sim::WindowOutput> outputs;
  std::vector<std::vector<Event>> events;  // per window (recorded once)
  double root_busy_s = 0;
  double local_busy_s = 0;
};

RunOutput Run(sim::SystemKind kind, const sim::WorkloadConfig& load,
              bool record) {
  sim::SystemConfig config;
  config.kind = kind;
  config.num_locals = load.generators.size();
  config.quantiles = {0.99};
  config.gamma = 1'000;
  config.tdigest_compression = 100;

  RealClock clock;
  net::Network network(&clock);
  auto system_result = sim::BuildSystem(config, &network, &clock);
  if (!system_result.ok()) {
    std::cerr << "setup failed: " << system_result.status() << "\n";
    std::exit(1);
  }
  sim::System system = std::move(system_result).MoveValueUnsafe();
  sim::SyncDriver driver(&system, &network, &clock);
  driver.set_record_events(record);
  sim::WorkloadConfig workload = load;
  workload.window_len_us = config.window_len_us;
  Status st = driver.Run(workload);
  if (!st.ok()) {
    std::cerr << "run failed: " << st << "\n";
    std::exit(1);
  }
  RunOutput out;
  out.outputs = driver.outputs();
  out.events = driver.recorded_events();
  out.root_busy_s = driver.root_busy_seconds();
  out.local_busy_s = driver.max_local_busy_seconds();
  return out;
}

}  // namespace

int main() {
  gen::DistributionParams zipf;
  zipf.kind = gen::DistributionKind::kZipf;
  zipf.lo = 1;        // 1 cent
  zipf.hi = 100'000;  // 1000 dollar tail
  zipf.zipf_s = 1.3;
  sim::WorkloadConfig load =
      sim::MakeUniformWorkload(3, /*num_windows=*/6, /*event_rate=*/40'000, zipf);

  RunOutput dema_run = Run(sim::SystemKind::kDema, load, /*record=*/true);
  RunOutput sketch_run = Run(sim::SystemKind::kTDigestCentral, load, false);

  Table table({"window", "oracle p99", "Dema p99", "Tdigest p99",
               "Tdigest error"});
  MpeAccumulator dema_mpe, sketch_mpe;
  for (size_t w = 0; w < dema_run.outputs.size(); ++w) {
    std::vector<double> values;
    for (const Event& e : dema_run.events[w]) values.push_back(e.value);
    auto oracle = stream::ExactQuantileValues(values, 0.99);
    if (!oracle.ok()) continue;
    double exact = *oracle;
    double dema_v = dema_run.outputs[w].values[0];
    double sketch_v = sketch_run.outputs[w].values[0];
    dema_mpe.Add(exact, dema_v);
    sketch_mpe.Add(exact, sketch_v);
    (void)table.AddRow({std::to_string(w), FmtF(exact, 1), FmtF(dema_v, 1),
                        FmtF(sketch_v, 1),
                        FmtF(100.0 * std::abs(sketch_v - exact) /
                                 std::max(1.0, exact),
                             3) + "%"});
  }
  table.Print(std::cout);

  std::cout << "\nAccuracy (1 - MPE): Dema " << FmtF(dema_mpe.Accuracy() * 100, 4)
            << "%  |  Tdigest " << FmtF(sketch_mpe.Accuracy() * 100, 4) << "%\n";
  std::cout << "Busy time   (root): Dema " << FmtF(dema_run.root_busy_s, 3)
            << "s  |  Tdigest " << FmtF(sketch_run.root_busy_s, 3) << "s\n";
  std::cout << "Busy time  (local): Dema " << FmtF(dema_run.local_busy_s, 3)
            << "s  |  Tdigest " << FmtF(sketch_run.local_busy_s, 3) << "s\n";
  std::cout << "\nTakeaway: the sketch is fast and close — but only Dema "
               "returns the exact order statistic, at a comparable cost.\n";
  return 0;
}
