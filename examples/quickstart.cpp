// Quickstart: compute exact per-window medians over a decentralized topology
// in ~40 lines of library code.
//
//   1. Describe the topology (1 root + N locals) with sim::SystemConfig.
//   2. Describe each node's event stream with gen::GeneratorConfig
//      (sim::MakeUniformWorkload builds a homogeneous fleet).
//   3. Run the pipeline and read the per-window results.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "common/clock.h"
#include "common/table.h"
#include "sim/driver.h"
#include "sim/topology.h"

using namespace dema;

int main() {
  // -- 1. topology: Dema with 3 edge nodes, 1 s tumbling windows, median ----
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = 3;
  config.window_len_us = kMicrosPerSecond;
  config.quantiles = {0.5};
  config.gamma = 1'000;  // slice factor; see adaptive_gamma example

  // -- 2. workload: each node emits 50k DEBS-like sensor events per second --
  gen::DistributionParams sensor;
  sensor.kind = gen::DistributionKind::kSensorWalk;
  sensor.lo = 0;
  sensor.hi = 10'000;
  sensor.stddev = 25;
  sim::WorkloadConfig load =
      sim::MakeUniformWorkload(config.num_locals, /*num_windows=*/5,
                               /*event_rate=*/50'000, sensor);

  // -- 3. wire everything and run ------------------------------------------
  RealClock clock;
  net::Network network(&clock);
  auto system_result = sim::BuildSystem(config, &network, &clock);
  if (!system_result.ok()) {
    std::cerr << "setup failed: " << system_result.status() << "\n";
    return 1;
  }
  sim::System system = std::move(system_result).MoveValueUnsafe();

  sim::SyncDriver driver(&system, &network, &clock);
  sim::WorkloadConfig workload = load;
  workload.window_len_us = config.window_len_us;
  Status st = driver.Run(workload);
  if (!st.ok()) {
    std::cerr << "run failed: " << st << "\n";
    return 1;
  }

  // -- results ---------------------------------------------------------------
  Table table({"window", "events", "median", "latency ms"});
  for (const sim::WindowOutput& out : driver.outputs()) {
    (void)table.AddRow({std::to_string(out.window_id),
                        FmtCount(out.global_size), FmtF(out.values[0], 2),
                        FmtF(ToMillis(out.latency_us), 2)});
  }
  table.Print(std::cout);

  auto total = network.TotalStats();
  std::cout << "network: " << FmtCount(total.counters.events)
            << " raw events on the wire out of "
            << FmtCount(driver.events_ingested()) << " ingested ("
            << FmtF(100.0 * static_cast<double>(total.counters.events) /
                        static_cast<double>(driver.events_ingested()),
                    2)
            << "%), " << FmtBytes(total.counters.bytes) << " total\n";
  return 0;
}
