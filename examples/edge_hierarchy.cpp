// Campus-scale hierarchy: a facilities operator runs power-quality monitoring
// across 3 buildings, each with 4 floor gateways. The floor gateways are
// Dema local nodes; each building's switch runs a Dema relay; the campus
// server is the root. One exact median per second for the whole campus, with
// the campus uplink carrying only per-building summaries.
//
// Build & run:  cmake --build build && ./build/examples/edge_hierarchy

#include <iostream>

#include "common/clock.h"
#include "common/table.h"
#include "sim/tree.h"

using namespace dema;

int main() {
  const size_t kBuildings = 3;
  const size_t kFloorsPerBuilding = 4;
  const uint64_t kWindows = 5;

  sim::TreeConfig config;
  config.num_relays = kBuildings;
  config.locals_per_relay = kFloorsPerBuilding;
  config.gamma = 100;
  config.quantiles = {0.5, 0.95};

  RealClock clock;
  net::Network network(&clock);
  auto tree_result = sim::BuildTreeSystem(config, &network, &clock);
  if (!tree_result.ok()) {
    std::cerr << "setup failed: " << tree_result.status() << "\n";
    return 1;
  }
  sim::TreeSystem tree = std::move(tree_result).MoveValueUnsafe();

  // Voltage readings: ~230 V nominal with per-floor load variation.
  sim::WorkloadConfig load;
  load.num_windows = kWindows;
  load.window_len_us = config.window_len_us;
  for (size_t i = 0; i < kBuildings * kFloorsPerBuilding; ++i) {
    gen::GeneratorConfig gcfg;
    gcfg.node = tree.local_ids[i];
    gcfg.seed = 900 + i;
    gcfg.distribution.kind = gen::DistributionKind::kNormal;
    gcfg.distribution.mean = 228 + static_cast<double>(i % kFloorsPerBuilding);
    gcfg.distribution.stddev = 2.5;
    gcfg.event_rate = 10'000;  // one smart meter sample per 100us per floor
    load.generators.push_back(gcfg);
  }

  sim::TreeSyncDriver driver(&tree, &network, &clock);
  Status st = driver.Run(load);
  if (!st.ok()) {
    std::cerr << "run failed: " << st << "\n";
    return 1;
  }

  std::cout << "Campus power quality (" << kBuildings << " buildings x "
            << kFloorsPerBuilding << " floors, exact per-second quantiles):\n";
  Table table({"second", "samples", "median V", "p95 V"});
  for (const sim::WindowOutput& out : driver.outputs()) {
    (void)table.AddRow({std::to_string(out.window_id), FmtCount(out.global_size),
                        FmtF(out.values[0], 2), FmtF(out.values[1], 2)});
  }
  table.Print(std::cout);

  // Show what each tier of the network carried.
  uint64_t uplink_bytes = 0, uplink_msgs = 0;
  for (NodeId relay : tree.relay_ids) {
    auto stats = network.GetLinkStats(relay, tree.root_id);
    uplink_bytes += stats.counters.bytes;
    uplink_msgs += stats.counters.messages;
  }
  uint64_t floor_bytes = 0;
  for (size_t b = 0; b < kBuildings; ++b) {
    for (size_t f = 0; f < kFloorsPerBuilding; ++f) {
      NodeId leaf = tree.local_ids[b * kFloorsPerBuilding + f];
      floor_bytes += network.GetLinkStats(leaf, tree.relay_ids[b]).counters.bytes;
    }
  }
  std::cout << "Floor -> building links: " << FmtBytes(floor_bytes)
            << "; campus uplink: " << FmtBytes(uplink_bytes) << " in "
            << uplink_msgs << " messages for "
            << FmtCount(driver.events_ingested()) << " readings.\n";
  return 0;
}
