// Smart-city scenario: a fleet of air-quality gateways (one per district)
// streams particulate readings; the control center wants a per-second
// dashboard of p25 / median / p75 / p99 — exact values, because regulatory
// thresholds are hard cut-offs, not estimates.
//
// Districts differ wildly: the industrial zone produces 4x the events with
// 3x the baseline pollution of the park district. Dema answers all four
// quantiles from one identification step per window while shipping a tiny
// fraction of the raw readings to the center.
//
// Build & run:  cmake --build build && ./build/examples/iot_fleet

#include <iostream>

#include "common/clock.h"
#include "common/table.h"
#include "sim/driver.h"
#include "sim/topology.h"

using namespace dema;

namespace {

struct District {
  const char* name;
  double event_rate;   // readings per second
  double scale_rate;   // pollution baseline multiplier
};

}  // namespace

int main() {
  const District districts[] = {
      {"park", 20'000, 1.0},        {"residential-n", 40'000, 1.4},
      {"residential-s", 35'000, 1.5}, {"downtown", 60'000, 2.1},
      {"harbor", 45'000, 2.6},      {"industrial", 80'000, 3.0},
  };
  const size_t kDistricts = std::size(districts);
  const uint64_t kWindows = 6;

  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = kDistricts;
  config.window_len_us = kMicrosPerSecond;
  config.quantiles = {0.25, 0.5, 0.75, 0.99};
  config.gamma = 2'000;
  config.adaptive_gamma = true;  // let the root tune the slice factor

  // Per-district generators: different rates and pollution baselines.
  sim::WorkloadConfig load;
  load.num_windows = kWindows;
  for (size_t i = 0; i < kDistricts; ++i) {
    gen::GeneratorConfig gcfg;
    gcfg.node = static_cast<NodeId>(i + 1);
    gcfg.seed = 42 + i;
    gcfg.distribution.kind = gen::DistributionKind::kSensorWalk;
    gcfg.distribution.lo = 5;     // ug/m3 floor
    gcfg.distribution.hi = 400;   // sensor saturation
    gcfg.distribution.stddev = 2;
    gcfg.distribution.kick_prob = 0.002;  // traffic bursts
    gcfg.event_rate = districts[i].event_rate;
    gcfg.scale_rate = districts[i].scale_rate;
    load.generators.push_back(gcfg);
  }
  load.window_len_us = config.window_len_us;

  RealClock clock;
  net::Network network(&clock);
  auto system_result = sim::BuildSystem(config, &network, &clock);
  if (!system_result.ok()) {
    std::cerr << "setup failed: " << system_result.status() << "\n";
    return 1;
  }
  sim::System system = std::move(system_result).MoveValueUnsafe();
  sim::SyncDriver driver(&system, &network, &clock);
  Status st = driver.Run(load);
  if (!st.ok()) {
    std::cerr << "run failed: " << st << "\n";
    return 1;
  }

  std::cout << "Air-quality dashboard (" << kDistricts << " districts, "
            << "exact quantiles per 1s window):\n";
  Table table({"second", "readings", "p25", "median", "p75", "p99 (alert>500)"});
  for (const sim::WindowOutput& out : driver.outputs()) {
    std::string p99 = FmtF(out.values[3], 1);
    if (out.values[3] > 500) p99 += "  ** ALERT **";
    (void)table.AddRow({std::to_string(out.window_id), FmtCount(out.global_size),
                        FmtF(out.values[0], 1), FmtF(out.values[1], 1),
                        FmtF(out.values[2], 1), p99});
  }
  table.Print(std::cout);

  auto total = network.TotalStats();
  double pct = 100.0 * static_cast<double>(total.counters.events) /
               static_cast<double>(driver.events_ingested());
  std::cout << "Raw readings shipped to the control center: "
            << FmtCount(total.counters.events) << " of "
            << FmtCount(driver.events_ingested()) << " (" << FmtF(pct, 2)
            << "%) — the rest stayed at the gateways.\n";
  return 0;
}
