// Why Dema exists, in one runnable file (the paper's Sections 1-2).
//
// A fleet of edge nodes computes per-second aggregates. For DECOMPOSABLE
// functions (sum, avg, variance) each node folds its events into a
// constant-size partial and ships ~16 bytes per window — done. For the
// MEDIAN there is no such partial: correct computation needs the whole
// dataset, so the classic options are "ship everything" (Scotty) or accept
// approximation (t-digest). Dema is the third way: exact medians at a
// bandwidth within an order of magnitude of the decomposable ideal.
//
// Build & run:  cmake --build build && ./build/examples/why_dema

#include <iostream>

#include "common/clock.h"
#include "common/table.h"
#include "sim/driver.h"
#include "sim/topology.h"
#include "stream/aggregate.h"

using namespace dema;

namespace {

sim::WorkloadConfig Workload(size_t locals) {
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kSensorWalk;
  dist.lo = 0;
  dist.hi = 10'000;
  dist.stddev = 25;
  return sim::MakeUniformWorkload(locals, /*num_windows=*/4,
                                  /*event_rate=*/100'000, dist);
}

struct MedianRun {
  uint64_t wire_bytes = 0;
  double sample_result = 0;
};

MedianRun RunMedian(sim::SystemKind kind, size_t locals) {
  sim::SystemConfig config;
  config.kind = kind;
  config.num_locals = locals;
  config.gamma = 2'000;
  config.adaptive_gamma = kind == sim::SystemKind::kDema;
  auto metrics = sim::RunSync(config, Workload(locals));
  if (!metrics.ok()) {
    std::cerr << "run failed: " << metrics.status() << "\n";
    std::exit(1);
  }
  return MedianRun{metrics->network_total.bytes, 0};
}

}  // namespace

int main() {
  const size_t kLocals = 4;
  sim::WorkloadConfig load = Workload(kLocals);

  // --- the decomposable ideal: fold locally, ship one partial per window ---
  // (Simulated traffic: one 16-byte partial per node per window.)
  std::vector<stream::PartialAccumulator<stream::AverageAggregate>> nodes(kLocals);
  stream::PartialAccumulator<stream::VarianceAggregate> variance;
  uint64_t events = 0;
  for (size_t i = 0; i < kLocals; ++i) {
    auto gen_result = gen::StreamGenerator::Create(load.generators[i]);
    if (!gen_result.ok()) return 1;
    auto gen = std::move(gen_result).MoveValueUnsafe();
    for (uint64_t w = 0; w < load.num_windows; ++w) {
      for (const Event& e :
           gen->GenerateWindow(static_cast<TimestampUs>(w) * kMicrosPerSecond,
                               kMicrosPerSecond)) {
        nodes[i].Add(e);
        variance.Add(e);
        ++events;
      }
    }
  }
  stream::PartialAccumulator<stream::AverageAggregate> root;
  for (const auto& node : nodes) root.Merge(node.partial());
  uint64_t decomposable_bytes =
      kLocals * load.num_windows * (16 + 14);  // partial + envelope

  std::cout << "Fleet of " << kLocals << " edge nodes, "
            << FmtCount(events) << " events in " << load.num_windows
            << " windows.\n\n";
  std::cout << "Decomposable functions aggregate for free:\n"
            << "  avg = " << FmtF(root.Value(), 2)
            << ", variance = " << FmtF(variance.Value(), 1) << " — shipped "
            << FmtBytes(decomposable_bytes) << " total ("
            << kLocals * load.num_windows << " partials).\n\n";

  // --- the median has no partial: compare the three strategies -------------
  MedianRun scotty = RunMedian(sim::SystemKind::kCentralExact, kLocals);
  MedianRun tdigest = RunMedian(sim::SystemKind::kTDigestDecentral, kLocals);
  MedianRun dema = RunMedian(sim::SystemKind::kDema, kLocals);

  Table table({"median strategy", "wire bytes", "vs decomposable ideal",
               "exact?"});
  auto ratio = [&](uint64_t bytes) {
    return FmtF(static_cast<double>(bytes) /
                    static_cast<double>(decomposable_bytes),
                1) + "x";
  };
  (void)table.AddRow({"ship everything (Scotty)", FmtBytes(scotty.wire_bytes),
                      ratio(scotty.wire_bytes), "yes"});
  (void)table.AddRow({"sketch (t-digest, decentralized)",
                      FmtBytes(tdigest.wire_bytes), ratio(tdigest.wire_bytes),
                      "no (~99.7%)"});
  (void)table.AddRow({"Dema (synopses + candidates)", FmtBytes(dema.wire_bytes),
                      ratio(dema.wire_bytes), "yes"});
  table.Print(std::cout);
  std::cout << "\nDema delivers the exact median at a fraction of the\n"
               "ship-everything cost — the gap the paper closes. (Sketches\n"
               "remain cheaper, but give up exactness.)\n";
  return 0;
}
