// Unit and property tests for the window-cut algorithm: candidate soundness,
// rank-interval bounds, slice classification, and exact selection against a
// brute-force oracle over adversarial overlap patterns.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "dema/slice.h"
#include "dema/window_cut.h"
#include "stream/quantile.h"

namespace dema::core {
namespace {

Event Ev(double value, NodeId node = 1, uint32_t seq = 0) {
  return Event{value, 0, node, seq};
}

/// Builds a synopsis directly from endpoints (keys disambiguated by node).
SliceSynopsis Syn(NodeId node, uint32_t index, double first, double last,
                  uint64_t count) {
  SliceSynopsis s;
  s.node = node;
  s.index = index;
  s.first = Ev(first, node, index * 2);
  s.last = Ev(last, node, index * 2 + 1);
  s.count = count;
  return s;
}

TEST(WindowCut, DisjointSlicesPickExactlyOne) {
  // Three disjoint slices of 10 each; rank 15 sits in the middle one.
  std::vector<SliceSynopsis> slices = {Syn(1, 0, 0, 9, 10), Syn(1, 1, 10, 19, 10),
                                       Syn(2, 0, 20, 29, 10)};
  auto result = WindowCut::Select(slices, 30, 15);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->candidates.size(), 1u);
  EXPECT_EQ(result->candidates[0], 1u);
  EXPECT_EQ(result->selections[0].below_count, 10u);
  EXPECT_EQ(result->candidate_event_count, 10u);
}

TEST(WindowCut, BoundaryRanksStayWithinOneSlice) {
  std::vector<SliceSynopsis> slices = {Syn(1, 0, 0, 9, 10), Syn(2, 0, 20, 29, 10)};
  auto first = WindowCut::Select(slices, 20, 1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->candidates, std::vector<size_t>{0});
  auto last = WindowCut::Select(slices, 20, 20);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->candidates, std::vector<size_t>{1});
  EXPECT_EQ(last->selections[0].below_count, 10u);
}

TEST(WindowCut, OverlapForcesBothCandidates) {
  // Two interleaved slices: the median could sit in either.
  std::vector<SliceSynopsis> slices = {Syn(1, 0, 0, 100, 10), Syn(2, 0, 50, 150, 10)};
  auto result = WindowCut::Select(slices, 20, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidates.size(), 2u);
  EXPECT_EQ(result->selections[0].below_count, 0u);
}

TEST(WindowCut, CoverSliceInsideCandidateIsIncluded) {
  // A small slice fully inside the big one around the rank must be fetched;
  // its events could land anywhere inside the cover range (Section 3.2 iii).
  std::vector<SliceSynopsis> slices = {Syn(1, 0, 0, 1000, 50),
                                       Syn(2, 0, 400, 600, 10)};
  auto result = WindowCut::Select(slices, 60, 30);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidates.size(), 2u);
}

TEST(WindowCut, FarCoverSliceIsExcluded) {
  // Rank 3 resolves inside the first slice: a covered slice far to the right
  // cannot contain it even though it is covered by slice 1's value range...
  // unless its events could rank below. Layout: A=[0,10]x10, B=[100,200]x10,
  // C=[150,160]x4 (covered by B). Rank 3 must only need A.
  std::vector<SliceSynopsis> slices = {Syn(1, 0, 0, 10, 10), Syn(1, 1, 100, 200, 10),
                                       Syn(2, 0, 150, 160, 4)};
  auto result = WindowCut::Select(slices, 24, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidates, std::vector<size_t>{0});
  EXPECT_EQ(result->selections[0].below_count, 0u);
}

TEST(WindowCut, RankBoundsAreSane) {
  std::vector<SliceSynopsis> slices = {Syn(1, 0, 0, 100, 10), Syn(2, 0, 50, 150, 10),
                                       Syn(2, 1, 200, 300, 5)};
  auto bounds = WindowCut::ComputeRankBounds(slices);
  ASSERT_EQ(bounds.size(), 3u);
  // Slice 0 starts the order: min rank of its first event is 1.
  EXPECT_EQ(bounds[0].min_rank, 1u);
  // Slice 0's last (100) can at most be preceded by all of slice 0 and all of
  // slice 1 except its last event (150 > 100): 10 + 9 = 19.
  EXPECT_EQ(bounds[0].max_rank, 19u);
  // Slice 1's first (50) is definitely after slice 0's first only: min 2.
  EXPECT_EQ(bounds[1].min_rank, 2u);
  // Slice 2 is disjoint above both: min rank = 21, max = 25.
  EXPECT_EQ(bounds[2].min_rank, 21u);
  EXPECT_EQ(bounds[2].max_rank, 25u);
  for (const auto& b : bounds) EXPECT_LE(b.min_rank, b.max_rank);
}

TEST(WindowCut, MultiRankSharesCandidates) {
  std::vector<SliceSynopsis> slices = {Syn(1, 0, 0, 9, 10), Syn(1, 1, 10, 19, 10),
                                       Syn(2, 0, 20, 29, 10)};
  auto result = WindowCut::SelectMulti(slices, 30, {5, 15, 25});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidates.size(), 3u);  // one per rank here
  ASSERT_EQ(result->selections.size(), 3u);
  EXPECT_EQ(result->selections[0].rank, 5u);
  EXPECT_EQ(result->selections[0].below_count, 0u);
  EXPECT_EQ(result->selections[1].below_count, 0u);  // slice 0 is a candidate
  EXPECT_EQ(result->selections[2].below_count, 0u);
}

TEST(WindowCut, MultiRankBelowCountsSkipOnlyExcludedSlices) {
  std::vector<SliceSynopsis> slices = {Syn(1, 0, 0, 9, 10), Syn(1, 1, 10, 19, 10),
                                       Syn(2, 0, 20, 29, 10)};
  auto result = WindowCut::SelectMulti(slices, 30, {25});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidates, std::vector<size_t>{2});
  EXPECT_EQ(result->selections[0].below_count, 20u);
}

TEST(WindowCut, InputValidation) {
  std::vector<SliceSynopsis> slices = {Syn(1, 0, 0, 9, 10)};
  EXPECT_FALSE(WindowCut::Select(slices, 11, 5).ok());   // size mismatch
  EXPECT_FALSE(WindowCut::Select(slices, 10, 0).ok());   // rank below 1
  EXPECT_FALSE(WindowCut::Select(slices, 10, 11).ok());  // rank above size
  EXPECT_FALSE(WindowCut::Select({}, 0, 1).ok());        // empty window
  EXPECT_FALSE(WindowCut::SelectMulti(slices, 10, {}).ok());
  auto bad = Syn(1, 0, 9, 0, 10);  // last < first
  EXPECT_FALSE(WindowCut::Select({bad}, 10, 5).ok());
}

TEST(WindowCut, ClassifySlicesFigureFour) {
  // Approximation of the paper's Figure 4 layout on a value axis:
  //  a1 [0,10] separate
  //  a2 [20,40] + b1 [35,55] compound pair
  //  b2 [60,62], b3 [64,66] covered by a3 [58,80]; a3+b4 [75,95] compound
  //  a4 [84,90] covered by b4; b5 [100,110] separate
  std::vector<SliceSynopsis> slices = {
      Syn(1, 1, 0, 10, 5),    // a1
      Syn(1, 2, 20, 40, 5),   // a2
      Syn(2, 1, 35, 55, 5),   // b1
      Syn(1, 3, 58, 80, 5),   // a3
      Syn(2, 2, 60, 62, 5),   // b2
      Syn(2, 3, 64, 66, 5),   // b3
      Syn(2, 4, 75, 95, 5),   // b4
      Syn(1, 4, 84, 90, 5),   // a4
      Syn(2, 5, 100, 110, 5)  // b5
  };
  auto counts = WindowCut::ClassifySlices(slices);
  EXPECT_EQ(counts.cover, 3u);     // b2, b3, a4
  EXPECT_EQ(counts.compound, 4u);  // a2+b1, a3+b4
  EXPECT_EQ(counts.separate, 2u);  // a1, b5
}

TEST(WindowCut, ClassifyEmptyAndSingle) {
  EXPECT_EQ(WindowCut::ClassifySlices({}).separate, 0u);
  auto counts = WindowCut::ClassifySlices({Syn(1, 0, 0, 10, 5)});
  EXPECT_EQ(counts.separate, 1u);
  EXPECT_EQ(counts.compound, 0u);
  EXPECT_EQ(counts.cover, 0u);
}

TEST(WindowCut, NaiveSelectionIsSupersetUnderOverlap) {
  // Chain of overlapping slices: window-cut prunes, the naive closure takes
  // the whole chain.
  std::vector<SliceSynopsis> slices;
  for (uint32_t i = 0; i < 10; ++i) {
    slices.push_back(Syn(1, i, i * 10.0, i * 10.0 + 15.0, 10));
  }
  auto smart = WindowCut::Select(slices, 100, 50);
  auto naive = WindowCut::SelectNaiveOverlap(slices, 100, 50);
  ASSERT_TRUE(smart.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_GE(naive->candidate_event_count, smart->candidate_event_count);
  EXPECT_EQ(naive->candidate_event_count, 100u);  // full chain
  EXPECT_LT(smart->candidate_event_count, 100u);
}

// --- Brute-force property check --------------------------------------------

struct OracleParam {
  uint64_t seed;
  size_t num_nodes;
  uint64_t gamma;
  double spread;       // value range per node
  double node_offset;  // shifts node ranges to control overlap
  int duplicates;      // 0 = continuous values; >0 = draw from few values
};

class WindowCutOracle : public ::testing::TestWithParam<OracleParam> {};

TEST_P(WindowCutOracle, SelectionIsExactForEveryRank) {
  const auto& p = GetParam();
  Rng rng(p.seed);

  // Random local windows, one per node.
  std::vector<std::vector<Event>> windows(p.num_nodes);
  std::vector<Event> global;
  for (size_t n = 0; n < p.num_nodes; ++n) {
    size_t count = 20 + static_cast<size_t>(rng.UniformInt(0, 60));
    double base = p.node_offset * static_cast<double>(n);
    for (uint32_t i = 0; i < count; ++i) {
      double v = p.duplicates
                     ? base + static_cast<double>(rng.UniformInt(0, p.duplicates))
                     : base + rng.Uniform(0, p.spread);
      windows[n].push_back(Event{v, static_cast<TimestampUs>(i),
                                 static_cast<NodeId>(n + 1), i});
    }
    std::sort(windows[n].begin(), windows[n].end());
    global.insert(global.end(), windows[n].begin(), windows[n].end());
  }
  std::sort(global.begin(), global.end());
  uint64_t l_g = global.size();

  // Cut every window and flatten the synopses.
  std::vector<SliceSynopsis> slices;
  for (size_t n = 0; n < p.num_nodes; ++n) {
    auto cut = CutIntoSlices(windows[n], static_cast<NodeId>(n + 1), p.gamma);
    ASSERT_TRUE(cut.ok());
    slices.insert(slices.end(), cut->begin(), cut->end());
  }

  for (uint64_t rank = 1; rank <= l_g; ++rank) {
    auto result = WindowCut::Select(slices, l_g, rank);
    ASSERT_TRUE(result.ok()) << result.status();

    // Gather candidate events exactly as the root would (per-slice ranges).
    std::vector<Event> candidate_events;
    for (size_t flat : result->candidates) {
      const SliceSynopsis& s = slices[flat];
      const auto& window = windows[s.node - 1];
      auto [begin, end] = SliceEventRange(window.size(), p.gamma, s.index);
      candidate_events.insert(candidate_events.end(), window.begin() + begin,
                              window.begin() + end);
    }
    std::sort(candidate_events.begin(), candidate_events.end());
    ASSERT_EQ(candidate_events.size(), result->candidate_event_count);

    uint64_t below = result->selections[0].below_count;
    ASSERT_GE(rank, below + 1) << "rank " << rank;
    ASSERT_LE(rank - below, candidate_events.size()) << "rank " << rank;
    EXPECT_EQ(candidate_events[rank - below - 1], global[rank - 1])
        << "rank " << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OverlapPatterns, WindowCutOracle,
    ::testing::Values(
        OracleParam{101, 2, 5, 100, 0, 0},      // full overlap
        OracleParam{102, 2, 5, 100, 1000, 0},   // disjoint ranges
        OracleParam{103, 3, 7, 100, 50, 0},     // partial overlap
        OracleParam{104, 4, 3, 100, 10, 0},     // dense chains
        OracleParam{105, 2, 5, 100, 0, 5},      // heavy value duplicates
        OracleParam{106, 5, 2, 50, 25, 3},      // min gamma + duplicates
        OracleParam{107, 1, 10, 100, 0, 0},     // single node
        OracleParam{108, 6, 64, 100, 0, 0},     // gamma > window sizes
        OracleParam{109, 3, 4, 1, 0, 0},        // near-identical tiny ranges
        OracleParam{110, 4, 6, 100, 99, 1}));   // constant values per node

TEST_P(WindowCutOracle, TwoSidedScanMatchesSelect) {
  // The literal Algorithm-1 transcription must pick exactly the same
  // candidates and below counts as the rank-interval formulation.
  const auto& p = GetParam();
  Rng rng(p.seed + 9000);
  std::vector<SliceSynopsis> slices;
  uint64_t l_g = 0;
  for (size_t n = 0; n < p.num_nodes; ++n) {
    size_t count = 10 + static_cast<size_t>(rng.UniformInt(0, 30));
    std::vector<Event> window;
    double base = p.node_offset * static_cast<double>(n);
    for (uint32_t i = 0; i < count; ++i) {
      double v = p.duplicates
                     ? base + static_cast<double>(rng.UniformInt(0, p.duplicates))
                     : base + rng.Uniform(0, p.spread);
      window.push_back(Event{v, static_cast<TimestampUs>(i),
                             static_cast<NodeId>(n + 1), i});
    }
    std::sort(window.begin(), window.end());
    auto cut = CutIntoSlices(window, static_cast<NodeId>(n + 1), p.gamma);
    ASSERT_TRUE(cut.ok());
    slices.insert(slices.end(), cut->begin(), cut->end());
    l_g += count;
  }
  for (uint64_t rank = 1; rank <= l_g; rank += 3) {
    auto a = WindowCut::Select(slices, l_g, rank);
    auto b = WindowCut::SelectTwoSidedScan(slices, l_g, rank);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->candidates, b->candidates) << "rank " << rank;
    EXPECT_EQ(a->selections[0].below_count, b->selections[0].below_count)
        << "rank " << rank;
    EXPECT_EQ(a->candidate_event_count, b->candidate_event_count);
  }
}

TEST_P(WindowCutOracle, NaiveSelectionIsAlsoExact) {
  const auto& p = GetParam();
  Rng rng(p.seed + 5000);
  std::vector<std::vector<Event>> windows(p.num_nodes);
  std::vector<Event> global;
  for (size_t n = 0; n < p.num_nodes; ++n) {
    size_t count = 20 + static_cast<size_t>(rng.UniformInt(0, 40));
    double base = p.node_offset * static_cast<double>(n);
    for (uint32_t i = 0; i < count; ++i) {
      double v = p.duplicates
                     ? base + static_cast<double>(rng.UniformInt(0, p.duplicates))
                     : base + rng.Uniform(0, p.spread);
      windows[n].push_back(Event{v, static_cast<TimestampUs>(i),
                                 static_cast<NodeId>(n + 1), i});
    }
    std::sort(windows[n].begin(), windows[n].end());
    global.insert(global.end(), windows[n].begin(), windows[n].end());
  }
  std::sort(global.begin(), global.end());
  uint64_t l_g = global.size();

  std::vector<SliceSynopsis> slices;
  for (size_t n = 0; n < p.num_nodes; ++n) {
    auto cut = CutIntoSlices(windows[n], static_cast<NodeId>(n + 1), p.gamma);
    ASSERT_TRUE(cut.ok());
    slices.insert(slices.end(), cut->begin(), cut->end());
  }

  for (uint64_t rank = 1; rank <= l_g; rank += 7) {
    auto result = WindowCut::SelectNaiveOverlap(slices, l_g, rank);
    ASSERT_TRUE(result.ok()) << result.status();
    std::vector<Event> candidate_events;
    for (size_t flat : result->candidates) {
      const SliceSynopsis& s = slices[flat];
      const auto& window = windows[s.node - 1];
      auto [begin, end] = SliceEventRange(window.size(), p.gamma, s.index);
      candidate_events.insert(candidate_events.end(), window.begin() + begin,
                              window.begin() + end);
    }
    std::sort(candidate_events.begin(), candidate_events.end());
    uint64_t below = result->selections[0].below_count;
    ASSERT_GE(rank, below + 1);
    ASSERT_LE(rank - below, candidate_events.size());
    EXPECT_EQ(candidate_events[rank - below - 1], global[rank - 1])
        << "rank " << rank;
  }
}

TEST(WindowCut, NaivePivotGuardUnreachableOnValidInput) {
  // Regression for the pivot fallback: SelectNaiveOverlap used to default to
  // slice 0 when its scan "never" reached the target rank and now returns
  // Internal instead. Over valid synopses (counts summing to l_G, ranks in
  // [1, l_G]) the cumulative count reaches l_G by the last slice, so the
  // guard must never fire — exercise every rank densely over randomized
  // heavy-overlap layouts to prove it.
  Rng rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    size_t num_slices = 1 + static_cast<size_t>(rng.UniformInt(0, 11));
    std::vector<SliceSynopsis> slices;
    uint64_t l_g = 0;
    for (size_t i = 0; i < num_slices; ++i) {
      // Overlapping value intervals (shared [lo, hi) draws) with random,
      // sometimes-tiny counts; degenerate first==last slices included.
      double lo = rng.Uniform(0, 50);
      double hi = rng.UniformInt(0, 3) == 0 ? lo : lo + rng.Uniform(0, 100);
      uint64_t count = static_cast<uint64_t>(rng.UniformInt(1, 30));
      slices.push_back(Syn(static_cast<NodeId>(i % 3 + 1),
                           static_cast<uint32_t>(i), std::min(lo, hi),
                           std::max(lo, hi), count));
      l_g += count;
    }
    for (uint64_t rank = 1; rank <= l_g; ++rank) {
      auto result = WindowCut::SelectNaiveOverlap(slices, l_g, rank);
      ASSERT_TRUE(result.ok())
          << "trial " << trial << " rank " << rank << ": " << result.status();
      ASSERT_FALSE(result->candidates.empty());
    }
  }
}

}  // namespace
}  // namespace dema::core
