// Out-of-order delivery and allowed lateness: the disordered source's
// bounded-disorder guarantee, exactness when the watermark hold-back covers
// the disorder, and visible (counted) drops when it does not.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/clock.h"
#include "dema/local_node.h"
#include "gen/disorder.h"
#include "sim/driver.h"
#include "sim/topology.h"
#include "stream/quantile.h"
#include "stream/window_manager.h"

namespace dema {
namespace {

gen::GeneratorConfig BaseGen(uint64_t seed = 5) {
  gen::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.node = 1;
  cfg.distribution.kind = gen::DistributionKind::kUniform;
  cfg.distribution.lo = 0;
  cfg.distribution.hi = 1000;
  cfg.event_rate = 2000;
  return cfg;
}

TEST(DisorderedSource, ZeroDisorderIsIdentity) {
  auto plain = gen::StreamGenerator::Create(BaseGen());
  ASSERT_TRUE(plain.ok());
  auto source = gen::DisorderedSource::Create(BaseGen(), {0, 9});
  ASSERT_TRUE(source.ok());
  auto delivered = (*source)->DeliverAll(SecondsUs(1));
  ASSERT_EQ(delivered.size(), 2000u);
  for (const Event& e : delivered) {
    EXPECT_EQ(e, (*plain)->Next());
  }
}

TEST(DisorderedSource, DeliversEveryEventExactlyOnce) {
  auto source = gen::DisorderedSource::Create(BaseGen(), {MillisUs(50), 9});
  ASSERT_TRUE(source.ok());
  auto delivered = (*source)->DeliverAll(SecondsUs(2));
  auto plain = gen::StreamGenerator::Create(BaseGen());
  ASSERT_TRUE(plain.ok());
  std::vector<Event> expected = (*plain)->GenerateWindow(0, SecondsUs(2));

  ASSERT_EQ(delivered.size(), expected.size());
  auto key = [](const Event& e) { return e; };
  std::sort(delivered.begin(), delivered.end());
  std::sort(expected.begin(), expected.end());
  (void)key;
  EXPECT_EQ(delivered, expected);
}

TEST(DisorderedSource, ActuallyShufflesWithinBound) {
  const DurationUs kDisorder = MillisUs(50);
  auto source = gen::DisorderedSource::Create(BaseGen(), {kDisorder, 9});
  ASSERT_TRUE(source.ok());
  auto delivered = (*source)->DeliverAll(SecondsUs(2));

  uint64_t inversions = 0;
  TimestampUs max_seen = 0;
  for (const Event& e : delivered) {
    if (e.timestamp < max_seen) {
      ++inversions;
      // Bounded disorder: nothing is overtaken by more than the bound.
      EXPECT_LE(max_seen - e.timestamp, kDisorder);
    }
    max_seen = std::max(max_seen, e.timestamp);
  }
  EXPECT_GT(inversions, delivered.size() / 10);  // it really is out of order
}

TEST(AllowedLateness, DemaStaysExactWhenLatenessCoversDisorder) {
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = 3;
  config.gamma = 64;
  sim::WorkloadConfig load = sim::MakeUniformWorkload(
      3, /*num_windows=*/5, /*event_rate=*/2000, BaseGen().distribution);
  load.window_len_us = config.window_len_us;
  load.max_disorder_us = MillisUs(80);
  load.allowed_lateness_us = MillisUs(80);

  RealClock clock;
  net::Network network(&clock);
  auto system_result = sim::BuildSystem(config, &network, &clock, 0);
  ASSERT_TRUE(system_result.ok());
  sim::System system = std::move(system_result).MoveValueUnsafe();
  sim::SyncDriver driver(&system, &network, &clock);
  driver.set_record_events(true);
  Status st = driver.Run(load);
  ASSERT_TRUE(st.ok()) << st;

  ASSERT_EQ(driver.outputs().size(), 5u);
  for (const auto& out : driver.outputs()) {
    std::vector<double> values;
    for (const Event& e : driver.recorded_events()[out.window_id]) {
      values.push_back(e.value);
    }
    ASSERT_EQ(out.global_size, values.size()) << "window " << out.window_id;
    auto oracle = stream::ExactQuantileValues(values, 0.5);
    ASSERT_TRUE(oracle.ok());
    EXPECT_DOUBLE_EQ(out.values[0], *oracle) << "window " << out.window_id;
  }
}

TEST(AllowedLateness, ExactForOtherSystemsToo) {
  for (auto kind : {sim::SystemKind::kCentralExact, sim::SystemKind::kDesisMerge}) {
    sim::SystemConfig config;
    config.kind = kind;
    config.num_locals = 2;
    sim::WorkloadConfig load = sim::MakeUniformWorkload(
        2, /*num_windows=*/4, /*event_rate=*/2000, BaseGen().distribution);
    load.window_len_us = config.window_len_us;
    load.max_disorder_us = MillisUs(40);
    load.allowed_lateness_us = MillisUs(40);
    RealClock clock;
    net::Network network(&clock);
    auto system_result = sim::BuildSystem(config, &network, &clock, 0);
    ASSERT_TRUE(system_result.ok());
    sim::System system = std::move(system_result).MoveValueUnsafe();
    sim::SyncDriver driver(&system, &network, &clock);
    driver.set_record_events(true);
    ASSERT_TRUE(driver.Run(load).ok());
    for (const auto& out : driver.outputs()) {
      std::vector<double> values;
      for (const Event& e : driver.recorded_events()[out.window_id]) {
        values.push_back(e.value);
      }
      auto oracle = stream::ExactQuantileValues(values, 0.5);
      ASSERT_TRUE(oracle.ok());
      EXPECT_DOUBLE_EQ(out.values[0], *oracle);
    }
  }
}

TEST(AllowedLateness, InsufficientLatenessDropsButCompletes) {
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = 2;
  config.gamma = 64;
  sim::WorkloadConfig load = sim::MakeUniformWorkload(
      2, /*num_windows=*/4, /*event_rate=*/2000, BaseGen().distribution);
  load.window_len_us = config.window_len_us;
  load.max_disorder_us = MillisUs(100);
  load.allowed_lateness_us = 0;  // aggressive watermark: some drops expected

  RealClock clock;
  net::Network network(&clock);
  auto system_result = sim::BuildSystem(config, &network, &clock, 0);
  ASSERT_TRUE(system_result.ok());
  sim::System system = std::move(system_result).MoveValueUnsafe();
  sim::SyncDriver driver(&system, &network, &clock);
  Status st = driver.Run(load);
  ASSERT_TRUE(st.ok()) << st;  // drops must not wedge the pipeline
  ASSERT_EQ(driver.outputs().size(), 4u);
  uint64_t total_in_windows = 0;
  for (const auto& out : driver.outputs()) total_in_windows += out.global_size;
  EXPECT_LT(total_in_windows, driver.events_ingested());  // something dropped
  EXPECT_GT(total_in_windows, driver.events_ingested() * 8 / 10);  // not much
}

TEST(WindowManagerLateness, HeldBackWatermarkAdmitsStragglers) {
  stream::WindowManager wm(SecondsUs(1));
  wm.OnEvent(Event{1, 100, 1, 0});
  // Watermark held back: although we saw t=1.2s, only advance to 1.2s - 0.3s.
  wm.AdvanceWatermark(SecondsUs(1) + MillisUs(200) - MillisUs(300));
  // A straggler from 0.95s is still admissible.
  EXPECT_TRUE(wm.OnEvent(Event{2, SecondsUs(1) - MillisUs(50), 1, 1}));
  EXPECT_EQ(wm.late_events(), 0u);
  auto closed = wm.AdvanceWatermark(SecondsUs(1) + MillisUs(1));
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].sorted_events.size(), 2u);
}

}  // namespace
}  // namespace dema
