// Tests for the adaptive slice-factor controller and its cost model.

#include <gtest/gtest.h>

#include <cstdint>

#include "dema/adaptive_gamma.h"

namespace dema::core {
namespace {

TEST(CostModel, MatchesPaperFormula) {
  // Cost = 2 * l_G / gamma + m * (gamma - 2).
  EXPECT_DOUBLE_EQ(GammaCostModel(10'000, 3, 100), 2.0 * 10'000 / 100 + 3 * 98);
  EXPECT_DOUBLE_EQ(GammaCostModel(0, 5, 10), 5 * 8.0);
}

TEST(CostModel, GammaTwoShipsEverythingTwice) {
  // At gamma = 2 every event travels as a synopsis endpoint; the calculation
  // term vanishes.
  EXPECT_DOUBLE_EQ(GammaCostModel(1'000, 7, 2), 1'000.0);
}

TEST(CostModel, ClampsGammaBelowTwo) {
  EXPECT_DOUBLE_EQ(GammaCostModel(100, 1, 0), GammaCostModel(100, 1, 2));
}

TEST(OptimalGamma, IsArgMinOverBruteForce) {
  for (uint64_t l_g : {100u, 5'000u, 100'000u}) {
    for (uint64_t m : {1u, 3u, 20u}) {
      uint64_t best = OptimalGamma(l_g, m);
      double best_cost = GammaCostModel(l_g, m, best);
      for (uint64_t g = 2; g <= l_g; g = g < 64 ? g + 1 : g + g / 13) {
        EXPECT_LE(best_cost, GammaCostModel(l_g, m, g) + 1e-9)
            << "l_G=" << l_g << " m=" << m << " gamma=" << g;
      }
    }
  }
}

TEST(OptimalGamma, ClosedFormNeighborhood) {
  // gamma* ~ sqrt(2 l_G / m): for l_G = 20000, m = 1 -> 200.
  uint64_t g = OptimalGamma(20'000, 1);
  EXPECT_NEAR(static_cast<double>(g), 200.0, 1.0);
}

TEST(OptimalGamma, DegenerateInputs) {
  EXPECT_EQ(OptimalGamma(0, 5), 2u);
  EXPECT_GE(OptimalGamma(10, 0), 2u);  // m treated as >= 1
  EXPECT_GE(OptimalGamma(1, 100), 2u);
}

TEST(Controller, JumpsToOptimumWithFullSmoothing) {
  GammaControllerOptions opts;
  opts.smoothing = 1.0;
  AdaptiveGammaController ctl(10'000, opts);
  uint64_t g = ctl.Observe(20'000, 1);
  EXPECT_NEAR(static_cast<double>(g), 200.0, 1.0);
  EXPECT_EQ(ctl.current(), g);
}

TEST(Controller, SmoothingDampsJumps) {
  GammaControllerOptions opts;
  opts.smoothing = 0.5;
  AdaptiveGammaController ctl(1'000, opts);
  uint64_t g = ctl.Observe(20'000, 1);  // optimum ~200
  EXPECT_GT(g, 200u);   // did not jump all the way down
  EXPECT_LT(g, 1'000u);  // but moved toward it
}

TEST(Controller, ConvergesUnderStableWorkload) {
  GammaControllerOptions opts;
  opts.smoothing = 0.5;
  AdaptiveGammaController ctl(100'000, opts);
  uint64_t optimum = OptimalGamma(50'000, 2);
  for (int i = 0; i < 50; ++i) ctl.Observe(50'000, 2);
  EXPECT_NEAR(static_cast<double>(ctl.current()), static_cast<double>(optimum),
              2.0);
}

TEST(Controller, RespectsBounds) {
  GammaControllerOptions opts;
  opts.min_gamma = 50;
  opts.max_gamma = 500;
  opts.smoothing = 1.0;
  AdaptiveGammaController ctl(100, opts);
  ctl.Observe(10, 1);  // optimum would be tiny
  EXPECT_EQ(ctl.current(), 50u);
  ctl.Observe(100'000'000, 1);  // optimum would be huge
  EXPECT_EQ(ctl.current(), 500u);
}

TEST(Controller, NeverGoesBelowTwo) {
  GammaControllerOptions opts;
  opts.min_gamma = 0;  // sanitized to 2
  opts.smoothing = 1.0;
  AdaptiveGammaController ctl(2, opts);
  ctl.Observe(4, 100);
  EXPECT_GE(ctl.current(), 2u);
}

TEST(Controller, IgnoresEmptyWindows) {
  GammaControllerOptions opts;
  opts.smoothing = 1.0;
  AdaptiveGammaController ctl(123, opts);
  EXPECT_EQ(ctl.Observe(0, 0), 123u);
}

TEST(Controller, AdaptsWhenWorkloadDrifts) {
  GammaControllerOptions opts;
  opts.smoothing = 0.7;
  AdaptiveGammaController ctl(500, opts);
  for (int i = 0; i < 30; ++i) ctl.Observe(2'000, 1);
  uint64_t small_rate_gamma = ctl.current();
  for (int i = 0; i < 30; ++i) ctl.Observe(2'000'000, 1);
  uint64_t big_rate_gamma = ctl.current();
  // Bigger windows ask for bigger slices (gamma* grows with sqrt(l_G)).
  EXPECT_GT(big_rate_gamma, small_rate_gamma * 10);
}

TEST(Controller, SmallSmoothingStillReachesExactOptimum) {
  // Regression: with heavy damping the blended value used to round back to
  // the current gamma once the gap got small, parking the controller one or
  // more steps away from the optimum forever. Observe must always make at
  // least one unit of progress toward the target.
  GammaControllerOptions opts;
  opts.smoothing = 0.05;
  AdaptiveGammaController ctl(10'000, opts);
  uint64_t optimum = OptimalGamma(50'000, 2);
  uint64_t previous = ctl.current();
  for (int i = 0; i < 20'000 && ctl.current() != optimum; ++i) {
    uint64_t g = ctl.Observe(50'000, 2);
    ASSERT_NE(g, previous) << "controller parked at " << g << " after " << i
                           << " observations (optimum " << optimum << ")";
    previous = g;
  }
  EXPECT_EQ(ctl.current(), optimum);
}

TEST(Controller, LastStepClosesUnitGapInBothDirections) {
  GammaControllerOptions opts;
  opts.smoothing = 0.01;  // blended ~ current; rounding alone would stall
  uint64_t optimum = OptimalGamma(20'000, 1);
  AdaptiveGammaController from_above(optimum + 1, opts);
  EXPECT_EQ(from_above.Observe(20'000, 1), optimum);
  AdaptiveGammaController from_below(optimum - 1, opts);
  EXPECT_EQ(from_below.Observe(20'000, 1), optimum);
}

TEST(Controller, StepFixStaysWithinBounds) {
  // The forced unit step must never escape [min_gamma, max_gamma]: the
  // target is clamped first, so a downward step has room to move.
  GammaControllerOptions opts;
  opts.min_gamma = 100;
  opts.max_gamma = 120;
  opts.smoothing = 0.01;
  AdaptiveGammaController ctl(101, opts);
  for (int i = 0; i < 10; ++i) ctl.Observe(10, 1);  // clamped optimum: 100
  EXPECT_EQ(ctl.current(), 100u);
  for (int i = 0; i < 200; ++i) ctl.Observe(100'000'000, 1);  // optimum: 120
  EXPECT_EQ(ctl.current(), 120u);
}

TEST(Controller, StableAtOptimumDoesNotOscillate) {
  GammaControllerOptions opts;
  opts.smoothing = 0.05;
  uint64_t optimum = OptimalGamma(50'000, 2);
  AdaptiveGammaController ctl(optimum, opts);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(ctl.Observe(50'000, 2), optimum);
  }
}

}  // namespace
}  // namespace dema::core
