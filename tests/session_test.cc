// Tests for session windows (Section 2.1 window type iii): gap-based
// sessionization, watermark-driven closing, and out-of-order merge semantics.

#include <gtest/gtest.h>

#include "stream/session.h"

namespace dema::stream {
namespace {

Event Ev(double v, TimestampUs t, uint32_t seq = 0) { return Event{v, t, 1, seq}; }

TEST(SessionWindows, GroupsByActivityGap) {
  SessionWindowManager sm(MillisUs(100));
  // Burst 1: t=0, 50, 90. Burst 2: t=300, 310.
  sm.OnEvent(Ev(1, 0, 0));
  sm.OnEvent(Ev(2, MillisUs(50), 1));
  sm.OnEvent(Ev(3, MillisUs(90), 2));
  sm.OnEvent(Ev(4, MillisUs(300), 3));
  sm.OnEvent(Ev(5, MillisUs(310), 4));
  EXPECT_EQ(sm.open_sessions(), 2u);

  auto closed = sm.AdvanceWatermark(MillisUs(250));
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].start_us, 0);
  EXPECT_EQ(closed[0].last_us, MillisUs(90));
  EXPECT_EQ(closed[0].sorted_events.size(), 3u);

  closed = sm.AdvanceWatermark(MillisUs(500));
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].sorted_events.size(), 2u);
  EXPECT_EQ(sm.open_sessions(), 0u);
}

TEST(SessionWindows, ExactGapBoundary) {
  SessionWindowManager sm(MillisUs(100));
  sm.OnEvent(Ev(1, 0, 0));
  // Exactly gap later: still the same session (touching ranges merge).
  sm.OnEvent(Ev(2, MillisUs(100), 1));
  EXPECT_EQ(sm.open_sessions(), 1u);
  // Gap + 1: a new session.
  sm.OnEvent(Ev(3, MillisUs(200) + 1, 2));
  EXPECT_EQ(sm.open_sessions(), 2u);
}

TEST(SessionWindows, EventsSortedWithinSession) {
  SessionWindowManager sm(MillisUs(100));
  sm.OnEvent(Ev(30, 0, 0));
  sm.OnEvent(Ev(10, MillisUs(10), 1));
  sm.OnEvent(Ev(20, MillisUs(20), 2));
  auto closed = sm.Flush();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].sorted_events[0].value, 10);
  EXPECT_EQ(closed[0].sorted_events[1].value, 20);
  EXPECT_EQ(closed[0].sorted_events[2].value, 30);
}

TEST(SessionWindows, LateEventBridgesTwoSessions) {
  SessionWindowManager sm(MillisUs(100));
  sm.OnEvent(Ev(1, 0, 0));
  sm.OnEvent(Ev(2, MillisUs(200), 1));
  EXPECT_EQ(sm.open_sessions(), 2u);
  // An out-of-order event at t=100 is within the gap of both sessions
  // (0 -> 100 and 100 -> 200 are both exactly one gap).
  sm.OnEvent(Ev(3, MillisUs(100), 2));
  EXPECT_EQ(sm.open_sessions(), 1u);
  auto closed = sm.Flush();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].start_us, 0);
  EXPECT_EQ(closed[0].last_us, MillisUs(200));
  EXPECT_EQ(closed[0].sorted_events.size(), 3u);
}

TEST(SessionWindows, NearMissDoesNotBridge) {
  SessionWindowManager sm(MillisUs(100));
  sm.OnEvent(Ev(1, 0, 0));
  sm.OnEvent(Ev(2, MillisUs(250), 1));
  // t=150 touches only the later session (150ms from the first > gap).
  sm.OnEvent(Ev(3, MillisUs(150), 2));
  EXPECT_EQ(sm.open_sessions(), 2u);
  auto closed = sm.Flush();
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].sorted_events.size(), 1u);
  EXPECT_EQ(closed[1].start_us, MillisUs(150));
  EXPECT_EQ(closed[1].sorted_events.size(), 2u);
}

TEST(SessionWindows, BridgingChainMergesMany) {
  SessionWindowManager sm(MillisUs(10));
  // Five isolated sessions 100ms apart.
  for (uint32_t i = 0; i < 5; ++i) {
    sm.OnEvent(Ev(i, MillisUs(100) * i, i));
  }
  EXPECT_EQ(sm.open_sessions(), 5u);
  // A burst that touches everything merges them into one.
  SessionWindowManager chain(MillisUs(120));
  for (uint32_t i = 0; i < 5; ++i) {
    chain.OnEvent(Ev(i, MillisUs(100) * i, i));
  }
  EXPECT_EQ(chain.open_sessions(), 1u);
}

TEST(SessionWindows, WatermarkDropsLateEvents) {
  SessionWindowManager sm(MillisUs(100));
  sm.AdvanceWatermark(MillisUs(500));
  EXPECT_FALSE(sm.OnEvent(Ev(1, MillisUs(400), 0)));
  EXPECT_EQ(sm.late_events(), 1u);
  EXPECT_TRUE(sm.OnEvent(Ev(1, MillisUs(600), 1)));
}

TEST(SessionWindows, OpenSessionSurvivesWatermarkInsideGap) {
  SessionWindowManager sm(MillisUs(100));
  sm.OnEvent(Ev(1, MillisUs(100), 0));
  // Watermark inside the quiet period: session must stay open.
  auto closed = sm.AdvanceWatermark(MillisUs(150));
  EXPECT_TRUE(closed.empty());
  EXPECT_EQ(sm.open_sessions(), 1u);
  // Another event keeps extending it.
  sm.OnEvent(Ev(2, MillisUs(180), 1));
  closed = sm.AdvanceWatermark(MillisUs(279));
  EXPECT_TRUE(closed.empty());
  closed = sm.AdvanceWatermark(MillisUs(280));
  EXPECT_EQ(closed.size(), 1u);
}

TEST(SessionWindows, FlushReturnsAllInStartOrder) {
  SessionWindowManager sm(MillisUs(10));
  sm.OnEvent(Ev(2, MillisUs(500), 0));
  sm.OnEvent(Ev(1, MillisUs(100), 1));
  auto closed = sm.Flush();
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].start_us, MillisUs(100));
  EXPECT_EQ(closed[1].start_us, MillisUs(500));
}

}  // namespace
}  // namespace dema::stream
