// Wire-format and configuration tests for the keyed sharding layer: keyed
// envelope round-trips, the strict outer<->inner type mapping, the shard
// routing fast path, and the fail-fast config validation (shard/worker
// counts of 0 must be rejected, never silently clamped).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/keyed.h"
#include "net/message.h"
#include "net/serializer.h"
#include "shard/config.h"
#include "shard/key.h"
#include "sim/topology.h"

namespace dema {
namespace {

using net::KeyedAnswer;
using net::KeyedBatch;
using net::KeyedEntry;
using net::KeyedQuery;
using net::KeyedQueryReply;
using net::MessageType;
using net::Reader;
using net::Writer;

TEST(KeyedBatchWire, RoundTrip) {
  KeyedBatch batch;
  batch.shard = 7;
  batch.event_count = 12345;
  batch.entries.push_back(KeyedEntry{42, {1, 2, 3, 4}});
  batch.entries.push_back(KeyedEntry{~0ull - 5, {}});
  batch.entries.push_back(KeyedEntry{0, {0xff}});

  Writer w;
  batch.SerializeTo(&w);
  Reader r(w.buffer());
  auto out = KeyedBatch::Deserialize(&r);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->shard, 7u);
  // event_count is envelope metadata (carried by net::Message), never
  // serialized into the payload itself.
  EXPECT_EQ(out->event_count, 0u);
  ASSERT_EQ(out->entries.size(), 3u);
  EXPECT_EQ(out->entries[0].key, 42u);
  EXPECT_EQ(out->entries[0].payload, (std::vector<uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(out->entries[1].key, ~0ull - 5);
  EXPECT_TRUE(out->entries[1].payload.empty());
  EXPECT_EQ(out->entries[2].payload, (std::vector<uint8_t>{0xff}));
}

TEST(KeyedBatchWire, PeekShardMatchesFullDecode) {
  KeyedBatch batch;
  batch.shard = 31;
  batch.entries.push_back(KeyedEntry{9, {5, 6}});
  Writer w;
  batch.SerializeTo(&w);
  auto peeked = KeyedBatch::PeekShard(w.buffer());
  ASSERT_TRUE(peeked.ok()) << peeked.status();
  EXPECT_EQ(*peeked, 31u);
}

TEST(KeyedBatchWire, PeekShardRejectsTruncatedPayload) {
  std::vector<uint8_t> tiny{1, 2};
  EXPECT_FALSE(KeyedBatch::PeekShard(tiny).ok());
}

TEST(KeyedBatchWire, DeserializeRejectsTruncatedEntry) {
  KeyedBatch batch;
  batch.shard = 1;
  batch.entries.push_back(KeyedEntry{3, {9, 9, 9, 9}});
  Writer w;
  batch.SerializeTo(&w);
  std::vector<uint8_t> cut(w.buffer().begin(), w.buffer().end() - 2);
  Reader r(cut);
  EXPECT_FALSE(KeyedBatch::Deserialize(&r).ok());
}

TEST(KeyedBatchWire, FirstPayloadOffsetIsWhereTheInnerBytesStart) {
  KeyedBatch batch;
  batch.shard = 3;
  batch.entries.push_back(KeyedEntry{77, {0xAB, 0xCD}});
  Writer w;
  batch.SerializeTo(&w);
  ASSERT_GT(w.buffer().size(), net::kKeyedFirstPayloadOffset + 1);
  EXPECT_EQ(w.buffer()[net::kKeyedFirstPayloadOffset], 0xAB);
  EXPECT_EQ(w.buffer()[net::kKeyedFirstPayloadOffset + 1], 0xCD);
}

TEST(KeyedTypeMapping, OuterAndInnerAreStrictInverses) {
  const std::pair<MessageType, MessageType> pairs[] = {
      {MessageType::kShardSynopsisBatch, MessageType::kSynopsisBatch},
      {MessageType::kShardCandidateRequest, MessageType::kCandidateRequest},
      {MessageType::kShardCandidateReply, MessageType::kCandidateReply},
      {MessageType::kShardGammaUpdate, MessageType::kGammaUpdate},
  };
  for (auto [outer, inner] : pairs) {
    auto got_inner = net::KeyedInnerType(outer);
    ASSERT_TRUE(got_inner.ok()) << got_inner.status();
    EXPECT_EQ(*got_inner, inner);
    auto got_outer = net::KeyedOuterType(inner);
    ASSERT_TRUE(got_outer.ok()) << got_outer.status();
    EXPECT_EQ(*got_outer, outer);
  }
  // Non-keyed / non-batchable types must be rejected, not defaulted.
  EXPECT_FALSE(net::KeyedInnerType(MessageType::kSynopsisBatch).ok());
  EXPECT_FALSE(net::KeyedInnerType(MessageType::kShardQuery).ok());
  EXPECT_FALSE(net::KeyedOuterType(MessageType::kShardSynopsisBatch).ok());
  EXPECT_FALSE(net::KeyedOuterType(MessageType::kShutdown).ok());
}

TEST(KeyedQueryWire, RoundTrip) {
  KeyedQuery q;
  q.query_id = 0xDEADBEEF;
  q.keys = {5, 0, 5, 99999};
  q.quantiles = {0.5, 0.99};
  Writer w;
  q.SerializeTo(&w);
  Reader r(w.buffer());
  auto out = KeyedQuery::Deserialize(&r);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->query_id, 0xDEADBEEFu);
  EXPECT_EQ(out->keys, q.keys);
  EXPECT_EQ(out->quantiles, q.quantiles);
}

TEST(KeyedQueryReplyWire, RoundTrip) {
  KeyedQueryReply reply;
  reply.query_id = 17;
  reply.quantiles = {0.5};
  KeyedAnswer a;
  a.key = 12;
  a.found = true;
  a.window_id = 4;
  a.global_size = 4000;
  a.degraded = true;
  a.rank_error_bound = 37;
  a.values = {123.25};
  reply.answers.push_back(a);
  KeyedAnswer missing;
  missing.key = 13;
  reply.answers.push_back(missing);

  Writer w;
  reply.SerializeTo(&w);
  Reader r(w.buffer());
  auto out = KeyedQueryReply::Deserialize(&r);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->query_id, 17u);
  EXPECT_TRUE(out->error.empty());
  ASSERT_EQ(out->answers.size(), 2u);
  EXPECT_TRUE(out->answers[0].found);
  EXPECT_EQ(out->answers[0].window_id, 4u);
  EXPECT_EQ(out->answers[0].global_size, 4000u);
  EXPECT_TRUE(out->answers[0].degraded);
  EXPECT_EQ(out->answers[0].rank_error_bound, 37u);
  EXPECT_EQ(out->answers[0].values, std::vector<double>{123.25});
  EXPECT_FALSE(out->answers[1].found);
}

TEST(KeyedQueryReplyWire, ErrorRoundTrip) {
  KeyedQueryReply reply;
  reply.query_id = 3;
  reply.error = "unknown key 999";
  Writer w;
  reply.SerializeTo(&w);
  Reader r(w.buffer());
  auto out = KeyedQueryReply::Deserialize(&r);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->error, "unknown key 999");
  EXPECT_TRUE(out->answers.empty());
}

TEST(ShardOfKey, StableAndInRange) {
  for (uint32_t shards : {1u, 2u, 4u, 16u}) {
    for (net::KeyId key = 0; key < 1000; ++key) {
      uint32_t s = shard::ShardOfKey(key, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, shard::ShardOfKey(key, shards)) << "must be deterministic";
    }
  }
}

TEST(ShardOfKey, SpreadsDenseKeysAcrossShards) {
  // Dense ids 0..K-1 must not collapse onto one shard (a plain `key % n`
  // would pass too, but the mixer must at least not do worse).
  constexpr uint32_t kShards = 8;
  std::vector<uint64_t> per_shard(kShards, 0);
  for (net::KeyId key = 0; key < 10000; ++key) {
    per_shard[shard::ShardOfKey(key, kShards)]++;
  }
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_GT(per_shard[s], 10000 / kShards / 2)
        << "shard " << s << " is starved";
  }
}

// --- fail-fast config validation (satellite: no silent fallbacks) ---

TEST(ShardedConfigValidation, RejectsZeroShards) {
  shard::ShardedConfig config;
  config.num_shards = 0;
  Status st = shard::ValidateShardedConfig(config);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("shard count"), std::string::npos) << st;
}

TEST(ShardedConfigValidation, RejectsZeroWorkersWithoutExecutor) {
  shard::ShardedConfig config;
  config.workers = 0;
  Status st = shard::ValidateShardedConfig(config);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("worker count"), std::string::npos) << st;
}

TEST(ShardedConfigValidation, RejectsZeroKeysAndZeroLocals) {
  shard::ShardedConfig keys0;
  keys0.num_keys = 0;
  EXPECT_EQ(shard::ValidateShardedConfig(keys0).code(),
            StatusCode::kInvalidArgument);
  shard::ShardedConfig locals0;
  locals0.num_locals = 0;
  EXPECT_EQ(shard::ValidateShardedConfig(locals0).code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedConfigValidation, AcceptsDefaults) {
  shard::ShardedConfig config;
  EXPECT_TRUE(shard::ValidateShardedConfig(config).ok());
}

TEST(SystemConfigValidation, RejectsZeroShardsAndZeroKeys) {
  sim::SystemConfig shards0;
  shards0.shards = 0;
  Status st = sim::ValidateSystemConfig(shards0);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  sim::SystemConfig keys0;
  keys0.keys = 0;
  st = sim::ValidateSystemConfig(keys0);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dema
