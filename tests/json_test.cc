// Tests for the JSON writer, flag parser extensions, and metrics dump.

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/json.h"
#include "sim/metrics.h"

namespace dema {
namespace {

TEST(JsonWriter, BasicObject) {
  JsonWriter w;
  w.Field("name", "dema").Field("n", uint64_t{42}).Field("x", 1.5).Field("ok", true);
  EXPECT_EQ(w.Finish(), R"({"name":"dema","n":42,"x":1.5,"ok":true})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.Field("s", "a\"b\\c\nd");
  EXPECT_EQ(w.Finish(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, ArraysAndNesting) {
  JsonWriter inner;
  inner.Field("k", uint64_t{1});
  JsonWriter w;
  w.Field("values", std::vector<double>{0.25, 0.5}).RawField("inner", inner.Finish());
  EXPECT_EQ(w.Finish(), R"({"values":[0.25,0.5],"inner":{"k":1}})");
}

TEST(JsonWriter, EmptyObject) {
  JsonWriter w;
  EXPECT_EQ(w.Finish(), "{}");
}

TEST(RunMetricsJson, RoundShape) {
  sim::RunMetrics metrics;
  metrics.events_ingested = 100;
  metrics.windows_emitted = 5;
  metrics.sim_throughput_eps = 123.5;
  metrics.bottleneck = "root";
  std::string json = sim::RunMetricsToJson(metrics);
  EXPECT_NE(json.find("\"events_ingested\":100"), std::string::npos);
  EXPECT_NE(json.find("\"bottleneck\":\"root\""), std::string::npos);
  EXPECT_NE(json.find("\"latency\":{"), std::string::npos);
  EXPECT_NE(json.find("\"dema\":{"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Flags, ParsesKeyValueAndBare) {
  const char* argv[] = {"prog", "run", "--rate=5000", "--adaptive",
                        "--name=test"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("rate", 0), 5000);
  EXPECT_TRUE(flags.Has("adaptive"));
  EXPECT_EQ(flags.GetString("name", ""), "test");
  EXPECT_EQ(flags.GetDouble("missing", 2.5), 2.5);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "run");
}

TEST(Flags, ParsesDoubleLists) {
  const char* argv[] = {"prog", "--quantiles=0.25,0.5,0.99"};
  Flags flags(2, const_cast<char**>(argv));
  auto qs = flags.GetDoubleList("quantiles", {});
  ASSERT_EQ(qs.size(), 3u);
  EXPECT_DOUBLE_EQ(qs[0], 0.25);
  EXPECT_DOUBLE_EQ(qs[2], 0.99);
  auto def = flags.GetDoubleList("other", {1.0});
  ASSERT_EQ(def.size(), 1u);
}

}  // namespace
}  // namespace dema
