// Hierarchical-aggregation tests: Dema through relay tiers must stay exact,
// cut root fan-in, propagate gamma downward, and compose to deeper trees.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/clock.h"
#include "common/rng.h"
#include "sim/tree.h"
#include "stream/quantile.h"

namespace dema::sim {
namespace {

gen::DistributionParams Uniform01k() {
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kUniform;
  dist.lo = 0;
  dist.hi = 1000;
  return dist;
}

struct TreeRun {
  std::vector<WindowOutput> outputs;
  std::vector<std::vector<double>> oracle;  // [window] -> values
  uint64_t events = 0;
};

TreeRun RunTree(const TreeConfig& config, uint64_t windows, double rate) {
  RealClock clock;
  net::Network network(&clock);
  auto tree = BuildTreeSystem(config, &network, &clock);
  EXPECT_TRUE(tree.ok()) << tree.status();

  size_t leaves = config.num_relays * config.locals_per_relay;
  WorkloadConfig load =
      MakeUniformWorkload(leaves, windows, rate, Uniform01k());
  load.window_len_us = config.window_len_us;
  // MakeUniformWorkload numbers nodes 1..N; renumber to the leaf ids.
  for (size_t i = 0; i < leaves; ++i) {
    load.generators[i].node = tree->local_ids[i];
  }

  // Oracle from identical generators.
  TreeRun run;
  run.oracle.assign(windows, {});
  std::vector<std::vector<double>> per_window(windows);
  for (const auto& gcfg : load.generators) {
    auto gen = gen::StreamGenerator::Create(gcfg);
    EXPECT_TRUE(gen.ok());
    for (uint64_t w = 0; w < windows; ++w) {
      for (const Event& e : (*gen)->GenerateWindow(
               static_cast<TimestampUs>(w) * config.window_len_us,
               config.window_len_us)) {
        per_window[w].push_back(e.value);
      }
    }
  }
  for (uint64_t w = 0; w < windows; ++w) {
    for (double q : config.quantiles) {
      auto oracle = stream::ExactQuantileValues(per_window[w], q);
      EXPECT_TRUE(oracle.ok());
      run.oracle[w].push_back(*oracle);
    }
  }

  TreeSyncDriver driver(&*tree, &network, &clock);
  Status st = driver.Run(load);
  EXPECT_TRUE(st.ok()) << st;
  run.outputs = driver.outputs();
  run.events = driver.events_ingested();
  return run;
}

TEST(TreeTopology, BuilderValidates) {
  RealClock clock;
  net::Network network(&clock);
  TreeConfig config;
  config.num_relays = 0;
  EXPECT_FALSE(BuildTreeSystem(config, &network, &clock).ok());
}

TEST(TreeTopology, ExactThroughOneRelayTier) {
  TreeConfig config;
  config.num_relays = 2;
  config.locals_per_relay = 3;
  config.gamma = 64;
  TreeRun run = RunTree(config, /*windows=*/4, /*rate=*/2000);
  ASSERT_EQ(run.outputs.size(), 4u);
  for (const auto& out : run.outputs) {
    EXPECT_DOUBLE_EQ(out.values[0], run.oracle[out.window_id][0])
        << "window " << out.window_id;
  }
}

TEST(TreeTopology, ExactWithMultiQuantileAndSkew) {
  TreeConfig config;
  config.num_relays = 3;
  config.locals_per_relay = 2;
  config.gamma = 32;
  config.quantiles = {0.25, 0.5, 0.9};
  TreeRun run = RunTree(config, /*windows=*/3, /*rate=*/1500);
  for (const auto& out : run.outputs) {
    for (size_t qi = 0; qi < config.quantiles.size(); ++qi) {
      EXPECT_DOUBLE_EQ(out.values[qi], run.oracle[out.window_id][qi]);
    }
  }
}

TEST(TreeTopology, RelayCutsRootFanIn) {
  RealClock clock;
  net::Network network(&clock);
  TreeConfig config;
  config.num_relays = 2;
  config.locals_per_relay = 4;
  config.gamma = 100;
  auto tree = BuildTreeSystem(config, &network, &clock);
  ASSERT_TRUE(tree.ok());
  WorkloadConfig load = MakeUniformWorkload(8, 3, 2000, Uniform01k());
  load.window_len_us = config.window_len_us;
  for (size_t i = 0; i < 8; ++i) load.generators[i].node = tree->local_ids[i];
  TreeSyncDriver driver(&*tree, &network, &clock);
  ASSERT_TRUE(driver.Run(load).ok());

  // The root receives exactly one synopsis batch per relay per window,
  // regardless of leaf count.
  auto by_type = network.StatsByType();
  uint64_t synopsis_msgs = by_type[net::MessageType::kSynopsisBatch].messages;
  // 8 leaves x 3 windows at the relay tier + 2 relays x 3 windows upward.
  EXPECT_EQ(synopsis_msgs, 8u * 3 + 2u * 3);
  uint64_t root_inbound = 0;
  for (NodeId relay : tree->relay_ids) {
    root_inbound += network.GetLinkStats(relay, 0).counters.messages;
  }
  // Root link carries only relay traffic: 3 synopses + <=3 replies per relay.
  EXPECT_LE(root_inbound, 2u * 3 * 2);
}

TEST(TreeTopology, GammaUpdatePropagatesToLeaves) {
  RealClock clock;
  net::Network network(&clock);
  TreeConfig config;
  config.num_relays = 2;
  config.locals_per_relay = 2;
  auto tree = BuildTreeSystem(config, &network, &clock);
  ASSERT_TRUE(tree.ok());

  // Inject a gamma update at a relay as the root would.
  core::GammaUpdate update;
  update.effective_from = 0;
  update.gamma = 7;
  auto msg =
      net::MakeMessage(net::MessageType::kGammaUpdate, 0, tree->relay_ids[0], update);
  ASSERT_TRUE(tree->relays[0]->OnMessage(msg).ok());
  // Both of relay 0's leaves got it.
  for (size_t leaf = 0; leaf < 2; ++leaf) {
    auto forwarded = network.Inbox(tree->local_ids[leaf])->TryPop();
    ASSERT_TRUE(forwarded.has_value());
    EXPECT_EQ(forwarded->type, net::MessageType::kGammaUpdate);
    ASSERT_TRUE(tree->locals[leaf]->OnMessage(*forwarded).ok());
    EXPECT_EQ(tree->locals[leaf]->GammaForWindow(0), 7u);
  }
}

TEST(TreeTopology, ThreeLevelTreeComposes) {
  // Hand-built: root <- relay A <- {relay B, leaf L3}; relay B <- {L1, L2}.
  RealClock clock;
  net::Network network(&clock);
  for (NodeId id : {0u, 1u, 2u, 3u, 4u, 5u}) {
    ASSERT_TRUE(network.RegisterNode(id).ok());
  }
  core::DemaRootNodeOptions root_opts;
  root_opts.id = 0;
  root_opts.locals = {1};
  root_opts.initial_gamma = 8;
  // Hand-built tree: like BuildTreeSystem, the root must accept relay-combined
  // batches, which the strict flat-topology validation rules reject.
  root_opts.strict_validation = false;
  core::DemaRootNode root(root_opts, &network, &clock);

  core::DemaRelayNodeOptions a_opts;
  a_opts.id = 1;
  a_opts.parent = 0;
  a_opts.children = {2, 3};
  core::DemaRelayNode relay_a(a_opts, &network, &clock);

  core::DemaRelayNodeOptions b_opts;
  b_opts.id = 2;
  b_opts.parent = 1;
  b_opts.children = {4, 5};
  core::DemaRelayNode relay_b(b_opts, &network, &clock);

  auto make_leaf = [&](NodeId id, NodeId parent) {
    core::DemaLocalNodeOptions opts;
    opts.id = id;
    opts.root_id = parent;
    opts.initial_gamma = 8;
    return std::make_unique<core::DemaLocalNode>(opts, &network, &clock);
  };
  auto leaf3 = make_leaf(3, 1);
  auto leaf4 = make_leaf(4, 2);
  auto leaf5 = make_leaf(5, 2);

  std::vector<WindowOutput> outputs;
  root.SetResultCallback(
      [&](const WindowOutput& out) { outputs.push_back(out); });

  // Feed one window of events to every leaf.
  Rng rng(3);
  std::vector<double> all_values;
  uint32_t seq = 0;
  auto feed = [&](core::DemaLocalNode* leaf, NodeId node) {
    for (int i = 0; i < 30; ++i) {
      double v = rng.Uniform(0, 1000);
      all_values.push_back(v);
      ASSERT_TRUE(
          leaf->OnEvent(Event{v, static_cast<TimestampUs>(1000 + i), node, seq++})
              .ok());
    }
    ASSERT_TRUE(leaf->OnWatermark(SecondsUs(1)).ok());
  };
  feed(leaf3.get(), 3);
  feed(leaf4.get(), 4);
  feed(leaf5.get(), 5);

  // Pump all tiers until quiescent.
  bool progress = true;
  core::DemaLocalNode* leaves[] = {leaf3.get(), leaf4.get(), leaf5.get()};
  NodeId leaf_ids[] = {3, 4, 5};
  while (progress) {
    progress = false;
    while (auto m = network.Inbox(0)->TryPop()) {
      ASSERT_TRUE(root.OnMessage(*m).ok());
      progress = true;
    }
    while (auto m = network.Inbox(1)->TryPop()) {
      ASSERT_TRUE(relay_a.OnMessage(*m).ok());
      progress = true;
    }
    while (auto m = network.Inbox(2)->TryPop()) {
      ASSERT_TRUE(relay_b.OnMessage(*m).ok());
      progress = true;
    }
    for (int i = 0; i < 3; ++i) {
      while (auto m = network.Inbox(leaf_ids[i])->TryPop()) {
        ASSERT_TRUE(leaves[i]->OnMessage(*m).ok());
        progress = true;
      }
    }
  }

  ASSERT_EQ(outputs.size(), 1u);
  auto oracle = stream::ExactQuantileValues(all_values, 0.5);
  ASSERT_TRUE(oracle.ok());
  EXPECT_DOUBLE_EQ(outputs[0].values[0], *oracle);
  EXPECT_EQ(outputs[0].global_size, 90u);
}

}  // namespace
}  // namespace dema::sim
