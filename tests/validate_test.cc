// Corruption-defense tests: the dema::Validate* rules (one per rejection
// reason slug), the root's reject-and-count behaviour, the misbehaving-local
// quarantine lifecycle (strike -> quarantine -> probation -> re-admission),
// and the honest-subset exactness property — a rejected corrupt synopsis
// never shifts the quantile computed over the remaining honest nodes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/clock.h"
#include "dema/protocol.h"
#include "dema/root_node.h"
#include "dema/slice.h"
#include "dema/validate.h"
#include "net/network.h"
#include "stream/quantile.h"

namespace dema::core {
namespace {

Event Ev(double v, NodeId node, uint32_t seq) {
  return Event{v, static_cast<TimestampUs>(seq), node, seq};
}

/// A structurally valid batch: `n` sorted events cut at `gamma`, as an
/// honest local would build it.
SynopsisBatch ValidBatch(NodeId node, uint64_t n, uint64_t gamma) {
  SynopsisBatch batch;
  batch.window_id = 0;
  batch.node = node;
  batch.gamma_used = static_cast<uint32_t>(gamma);
  batch.local_window_size = n;
  std::vector<Event> events;
  for (uint32_t i = 0; i < n; ++i) events.push_back(Ev(i * 10.0, node, i));
  if (n > 0) {
    auto slices = CutIntoSlices(events, node, gamma);
    EXPECT_TRUE(slices.ok());
    batch.slices = *slices;
  }
  return batch;
}

TEST(ValidateSynopsis, AcceptsHonestBatches) {
  for (uint64_t n : {0u, 1u, 3u, 4u, 9u}) {
    SynopsisBatch batch = ValidBatch(7, n, 4);
    EXPECT_EQ(ValidateSynopsisBatch(batch, 7, /*strict=*/true), nullptr)
        << "n=" << n;
    EXPECT_EQ(ValidateSynopsisBatch(batch, 7, /*strict=*/false), nullptr);
  }
}

TEST(ValidateSynopsis, EachTamperedFieldMapsToItsReason) {
  const NodeId src = 7;
  {
    SynopsisBatch b = ValidBatch(src, 8, 4);
    b.node = 8;  // claims to be someone else
    EXPECT_STREQ(ValidateSynopsisBatch(b, src, true), "node_mismatch");
  }
  {
    SynopsisBatch b = ValidBatch(src, 8, 4);
    b.slices[1].node = 9;  // inner slice forged for another node
    EXPECT_STREQ(ValidateSynopsisBatch(b, src, true), "node_mismatch");
  }
  {
    SynopsisBatch b = ValidBatch(src, 8, 4);
    b.gamma_used = 1;  // below the paper's minimum slice factor
    EXPECT_STREQ(ValidateSynopsisBatch(b, src, true), "bad_gamma");
  }
  {
    SynopsisBatch b = ValidBatch(src, 8, 4);
    b.slices.pop_back();  // claims 8 events but only one gamma-4 slice
    EXPECT_STREQ(ValidateSynopsisBatch(b, src, true), "slice_count");
  }
  {
    SynopsisBatch b = ValidBatch(src, 8, 4);
    std::swap(b.slices[0].index, b.slices[1].index);
    EXPECT_STREQ(ValidateSynopsisBatch(b, src, true), "slice_index");
  }
  {
    SynopsisBatch b = ValidBatch(src, 8, 4);
    b.slices[0].count = 0;
    EXPECT_STREQ(ValidateSynopsisBatch(b, src, true), "empty_slice");
  }
  {
    SynopsisBatch b = ValidBatch(src, 8, 4);
    b.slices[1].last.value = std::numeric_limits<double>::quiet_NaN();
    EXPECT_STREQ(ValidateSynopsisBatch(b, src, true), "bad_value");
  }
  {
    SynopsisBatch b = ValidBatch(src, 8, 4);
    std::swap(b.slices[0].first, b.slices[0].last);  // inverted bounds
    EXPECT_STREQ(ValidateSynopsisBatch(b, src, true), "slice_bounds");
  }
  {
    SynopsisBatch b = ValidBatch(src, 9, 4);  // slices of 4, 4, 1
    b.slices[0].count = 3;
    b.slices[1].count = 5;  // sum still 9, but the gamma-cut shape is broken
    EXPECT_STREQ(ValidateSynopsisBatch(b, src, true), "slice_size");
  }
  {
    SynopsisBatch b = ValidBatch(src, 8, 4);
    b.slices[1].first = b.slices[0].first;  // ranges overlap across the cut
    EXPECT_STREQ(ValidateSynopsisBatch(b, src, true), "slice_overlap");
  }
  {
    // Strict mode derives every expected count from the claimed size, so an
    // inflated claim trips the arity formula first; the structural sum rule
    // is what catches it in non-strict (tree) mode.
    SynopsisBatch b = ValidBatch(src, 8, 4);
    b.local_window_size = 80;  // inflated claim vs the slice sum
    EXPECT_STREQ(ValidateSynopsisBatch(b, src, true), "slice_count");
    EXPECT_STREQ(ValidateSynopsisBatch(b, src, false), "size_mismatch");
  }
}

TEST(ValidateSynopsis, NonStrictKeepsStructuralRulesOnly) {
  const NodeId relay = 5;
  // A relay-style combined batch: re-indexed slices from two children with
  // interleaved value ranges and mixed sizes. Strict rejects the shape;
  // structural validation accepts it.
  SynopsisBatch b;
  b.window_id = 0;
  b.node = relay;
  b.gamma_used = 4;
  b.local_window_size = 7;
  b.slices.push_back(SliceSynopsis{relay, 0, Ev(0, relay, 0), Ev(30, relay, 3), 4});
  b.slices.push_back(SliceSynopsis{relay, 1, Ev(5, relay, 4), Ev(25, relay, 6), 3});
  EXPECT_NE(ValidateSynopsisBatch(b, relay, /*strict=*/true), nullptr);
  EXPECT_EQ(ValidateSynopsisBatch(b, relay, /*strict=*/false), nullptr);
  // Structural corruption still rejects in non-strict mode.
  SynopsisBatch bad = b;
  bad.local_window_size = 70;
  EXPECT_STREQ(ValidateSynopsisBatch(bad, relay, false), "size_mismatch");
}

TEST(ValidateReply, AcceptsHonestAndRejectsTamperedRuns) {
  const NodeId src = 3;
  SynopsisBatch batch = ValidBatch(src, 8, 4);
  const std::vector<SliceSynopsis>& requested = batch.slices;
  CandidateReply reply;
  reply.window_id = 0;
  reply.node = src;
  for (uint32_t i = 0; i < 8; ++i) reply.events.push_back(Ev(i * 10.0, src, i));
  EXPECT_EQ(ValidateCandidateReply(reply, src, requested, true), nullptr);

  {
    CandidateReply r = reply;
    r.node = 4;
    EXPECT_STREQ(ValidateCandidateReply(r, src, requested, true),
                 "node_mismatch");
  }
  {
    CandidateReply r = reply;
    r.events.pop_back();  // short run vs the requested slice counts
    EXPECT_STREQ(ValidateCandidateReply(r, src, requested, true), "run_size");
  }
  {
    CandidateReply r = reply;
    r.events[3].value = std::numeric_limits<double>::infinity();
    EXPECT_STREQ(ValidateCandidateReply(r, src, requested, true), "bad_value");
  }
  {
    CandidateReply r = reply;
    std::swap(r.events[2], r.events[5]);
    EXPECT_STREQ(ValidateCandidateReply(r, src, requested, true),
                 "unsorted_run");
  }
  {
    // Sorted and the right size, but the values disagree with the synopsis
    // bounds the window-cut used — exactly the tampering that would shift
    // ranks silently.
    CandidateReply r = reply;
    for (Event& e : r.events) e.value += 1;
    std::sort(r.events.begin(), r.events.end());
    EXPECT_STREQ(ValidateCandidateReply(r, src, requested, true),
                 "bounds_mismatch");
    // A relay's merged run has no per-slice segmentation; only strict mode
    // holds the segments to the synopsis bounds.
    EXPECT_EQ(ValidateCandidateReply(r, src, requested, false), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Root-level defense: rejection counters, quarantine lifecycle, and the
// honest-subset exactness property.
// ---------------------------------------------------------------------------

class QuarantineRootTest : public ::testing::Test {
 protected:
  void Init(uint32_t strikes, uint64_t probation_windows,
            uint32_t probation_clean) {
    network_ = std::make_unique<net::Network>(&clock_);
    for (NodeId id : {0u, 1u, 2u, 3u}) {
      ASSERT_TRUE(network_->RegisterNode(id).ok());
    }
    DemaRootNodeOptions opts;
    opts.id = 0;
    opts.locals = {1, 2, 3};
    opts.quantiles = {0.5};
    opts.initial_gamma = 4;
    opts.quarantine_strikes = strikes;
    opts.probation_windows = probation_windows;
    opts.probation_clean_windows = probation_clean;
    root_ = std::make_unique<DemaRootNode>(opts, network_.get(), &clock_);
    root_->SetResultCallback(
        [this](const sim::WindowOutput& out) { outputs_.push_back(out); });
  }

  /// Builds and delivers an honest synopsis batch for sorted values.
  void SendWindow(NodeId node, net::WindowId wid,
                  const std::vector<double>& sorted_values) {
    SynopsisBatch batch;
    batch.window_id = wid;
    batch.node = node;
    batch.local_window_size = sorted_values.size();
    batch.gamma_used = 4;
    batch.close_time_us = clock_.NowUs();
    std::vector<Event> events;
    for (uint32_t i = 0; i < sorted_values.size(); ++i) {
      events.push_back(Ev(sorted_values[i], node, i));
    }
    if (!events.empty()) {
      auto slices = CutIntoSlices(events, node, 4);
      ASSERT_TRUE(slices.ok());
      batch.slices = *slices;
    }
    stored_[{node, wid}] = events;
    auto msg = net::MakeMessage(net::MessageType::kSynopsisBatch, node, 0, batch);
    ASSERT_TRUE(root_->OnMessage(msg).ok());
  }

  /// Delivers a tampered synopsis (forged node field) that strict
  /// validation rejects with `node_mismatch`.
  void SendCorruptWindow(NodeId node, net::WindowId wid, uint64_t claimed) {
    SynopsisBatch batch = ValidBatch(node, claimed, 4);
    batch.window_id = wid;
    batch.slices[0].node = node + 10;
    auto msg = net::MakeMessage(net::MessageType::kSynopsisBatch, node, 0, batch);
    ASSERT_TRUE(root_->OnMessage(msg).ok());
  }

  /// Serves every outstanding candidate request like honest locals would.
  void ServeRequests() {
    for (NodeId node : {1u, 2u, 3u}) {
      while (auto msg = network_->Inbox(node)->TryPop()) {
        if (msg->type != net::MessageType::kCandidateRequest) continue;
        net::Reader r(msg->payload);
        auto req = CandidateRequest::Deserialize(&r);
        ASSERT_TRUE(req.ok());
        if (req->slice_indices.empty()) continue;
        const auto& events = stored_[{node, req->window_id}];
        CandidateReply reply;
        reply.window_id = req->window_id;
        reply.node = node;
        for (uint32_t idx : req->slice_indices) {
          auto [b, e] = SliceEventRange(events.size(), 4, idx);
          reply.events.insert(reply.events.end(), events.begin() + b,
                              events.begin() + e);
        }
        auto reply_msg =
            net::MakeMessage(net::MessageType::kCandidateReply, node, 0, reply);
        ASSERT_TRUE(root_->OnMessage(reply_msg).ok());
      }
    }
  }

  double Oracle(std::vector<double> values, double q = 0.5) {
    auto result = stream::ExactQuantileValues(values, q);
    EXPECT_TRUE(result.ok());
    return *result;
  }

  RealClock clock_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<DemaRootNode> root_;
  std::vector<sim::WindowOutput> outputs_;
  std::map<std::pair<NodeId, net::WindowId>, std::vector<Event>> stored_;
};

TEST_F(QuarantineRootTest, RejectionsCountWithoutQuarantineWhenDisabled) {
  Init(/*strikes=*/0, 8, 2);
  for (int i = 0; i < 5; ++i) SendCorruptWindow(3, 0, /*claimed=*/4);
  EXPECT_EQ(root_->stats().rejected_payloads, 5u);
  EXPECT_EQ(root_->stats().quarantines, 0u);
  EXPECT_EQ(
      root_->registry()->GetCounter("dema.rejected{reason=node_mismatch}")->Value(),
      5u);
  // The window still completes from every local — including the offender,
  // whose honest retransmission is welcome without quarantine.
  SendWindow(1, 0, {1, 2});
  SendWindow(2, 0, {3, 4});
  SendWindow(3, 0, {5, 6});
  ServeRequests();
  ASSERT_EQ(outputs_.size(), 1u);
  EXPECT_FALSE(outputs_[0].degraded);
  EXPECT_EQ(outputs_[0].values[0], Oracle({1, 2, 3, 4, 5, 6}));
}

TEST_F(QuarantineRootTest, CorruptSynopsisLeavesHonestQuantileExact) {
  // The honest-subset exactness property: a corrupt synopsis is rejected
  // (and its sender quarantined), and the emitted quantile equals the
  // oracle over the remaining honest nodes' events exactly — corruption
  // shifts nothing, it only shrinks the answered population.
  Init(/*strikes=*/1, 8, 2);
  const std::vector<double> n1 = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> n2 = {11, 12, 13, 14, 15, 16, 17, 18};
  SendWindow(1, 0, n1);
  SendWindow(2, 0, n2);
  SendCorruptWindow(3, 0, /*claimed=*/20);
  EXPECT_EQ(root_->stats().quarantines, 1u);
  ServeRequests();

  ASSERT_EQ(outputs_.size(), 1u);
  const sim::WindowOutput& out = outputs_[0];
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.degrade_cause, "quarantine");
  // Exact over the honest union; the bound charges the offender's claim.
  std::vector<double> honest = n1;
  honest.insert(honest.end(), n2.begin(), n2.end());
  EXPECT_EQ(out.values[0], Oracle(honest));
  EXPECT_EQ(out.global_size, honest.size());
  EXPECT_EQ(out.rank_error_bound, 20u);
}

TEST_F(QuarantineRootTest, QuarantinedLocalIsReleasedAndItsBatchesDropped) {
  Init(/*strikes=*/1, /*probation_windows=*/4, 2);
  SendCorruptWindow(3, 0, 4);
  ASSERT_EQ(root_->stats().quarantines, 1u);
  // A quarantined local's (even well-formed) batch is dropped, counted, and
  // answered with a release so it does not retain the window forever.
  SendWindow(1, 1, {1, 2});
  SendWindow(2, 1, {3, 4});
  SynopsisBatch batch = ValidBatch(3, 4, 4);
  batch.window_id = 1;
  auto msg = net::MakeMessage(net::MessageType::kSynopsisBatch, 3, 0, batch);
  ASSERT_TRUE(root_->OnMessage(msg).ok());
  EXPECT_EQ(
      root_->registry()->GetCounter("dema.rejected{reason=quarantined}")->Value(),
      1u);
  bool released = false;
  while (auto m = network_->Inbox(3)->TryPop()) {
    if (m->type != net::MessageType::kCandidateRequest) continue;
    net::Reader r(m->payload);
    auto req = CandidateRequest::Deserialize(&r);
    ASSERT_TRUE(req.ok());
    if (req->window_id == 1 && req->slice_indices.empty()) released = true;
  }
  EXPECT_TRUE(released);
  ServeRequests();
  ASSERT_EQ(outputs_.size(), 1u);
  EXPECT_TRUE(outputs_[0].degraded);
  EXPECT_EQ(outputs_[0].degrade_cause, "quarantine");
  EXPECT_EQ(outputs_[0].values[0], Oracle({1, 2, 3, 4}));
}

TEST_F(QuarantineRootTest, StripsAcceptedSlicesWhenQuarantineLandsMidWindow) {
  // Node 3's window-0 synopsis was *accepted* before its strikes ran out
  // (on a later window's payloads); the sweep must strip its contribution
  // from the still-collecting window and complete over the honest rest.
  Init(/*strikes=*/2, 8, 2);
  SendWindow(3, 0, {100, 200});
  SendWindow(1, 0, {1, 2, 3});
  SendCorruptWindow(3, 1, 2);
  SendCorruptWindow(3, 1, 2);  // second strike -> quarantine
  EXPECT_EQ(root_->stats().quarantines, 1u);
  SendWindow(2, 0, {4, 5, 6});
  ServeRequests();
  ASSERT_EQ(outputs_.size(), 1u);
  EXPECT_TRUE(outputs_[0].degraded);
  EXPECT_EQ(outputs_[0].degrade_cause, "quarantine");
  // Exact over the honest six events; the stripped contribution is charged
  // at its exact accepted size.
  EXPECT_EQ(outputs_[0].values[0], Oracle({1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(outputs_[0].global_size, 6u);
  EXPECT_EQ(outputs_[0].rank_error_bound, 2u);
}

TEST_F(QuarantineRootTest, TamperedReplyDegradesInFlightWindow) {
  // Identification already ran when the tampering shows: the corrupt reply
  // is rejected, the sender quarantined, and the in-flight window emits
  // degraded from the honest replies instead of waiting forever.
  Init(/*strikes=*/1, 8, 2);
  // Interleaved ranges: every node's slices straddle the median rank, so
  // the window-cut requests candidates from all three nodes.
  SendWindow(1, 0, {1, 4, 7, 10, 13});
  SendWindow(2, 0, {2, 5, 8, 11, 14});
  SendWindow(3, 0, {3, 6, 9, 12, 15});
  // Serve nodes 1 and 2 honestly; node 3 replies with a forged node field.
  for (NodeId node : {1u, 2u}) {
    while (auto m = network_->Inbox(node)->TryPop()) {
      if (m->type != net::MessageType::kCandidateRequest) continue;
      net::Reader r(m->payload);
      auto req = CandidateRequest::Deserialize(&r);
      ASSERT_TRUE(req.ok());
      if (req->slice_indices.empty()) continue;
      const auto& events = stored_[{node, req->window_id}];
      CandidateReply reply;
      reply.window_id = req->window_id;
      reply.node = node;
      for (uint32_t idx : req->slice_indices) {
        auto [b, e] = SliceEventRange(events.size(), 4, idx);
        reply.events.insert(reply.events.end(), events.begin() + b,
                            events.begin() + e);
      }
      ASSERT_TRUE(root_
                      ->OnMessage(net::MakeMessage(
                          net::MessageType::kCandidateReply, node, 0, reply))
                      .ok());
    }
  }
  ASSERT_TRUE(outputs_.empty());  // still waiting on node 3
  CandidateReply forged;
  forged.window_id = 0;
  forged.node = 2;  // claims to be node 2
  ASSERT_TRUE(
      root_
          ->OnMessage(net::MakeMessage(net::MessageType::kCandidateReply, 3, 0,
                                       forged))
          .ok());
  EXPECT_EQ(root_->stats().quarantines, 1u);
  ASSERT_EQ(outputs_.size(), 1u);
  EXPECT_TRUE(outputs_[0].degraded);
  EXPECT_EQ(outputs_[0].degrade_cause, "quarantine");
  EXPECT_TRUE(root_->idle());
}

TEST_F(QuarantineRootTest, ProbationReadmitsCleanLocalAndRelapsesOffender) {
  Init(/*strikes=*/1, /*probation_windows=*/1, /*probation_clean=*/1);
  // Window 0: node 3 tampers -> quarantined; honest pair completes.
  SendCorruptWindow(3, 0, 2);
  EXPECT_EQ(root_->stats().quarantines, 1u);
  SendWindow(1, 0, {1, 2});
  SendWindow(2, 0, {3, 4});
  ServeRequests();
  ASSERT_EQ(outputs_.size(), 1u);
  EXPECT_TRUE(outputs_[0].degraded);

  // Window 0 emitted -> the one-window quarantine term is served; node 3 is
  // on probation and its window-1 contribution is accepted again.
  SendWindow(1, 1, {1, 2});
  SendWindow(2, 1, {3, 4});
  SendWindow(3, 1, {5, 6});
  ServeRequests();
  ASSERT_EQ(outputs_.size(), 2u);
  EXPECT_FALSE(outputs_[1].degraded);
  EXPECT_EQ(outputs_[1].values[0], Oracle({1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(outputs_[1].global_size, 6u);
  // One clean window was all probation required: fully re-admitted.
  EXPECT_EQ(root_->stats().readmissions, 1u);

  // A re-admitted local that relapses is quarantined again, and a
  // *probation* local re-quarantines on its first strike.
  SendCorruptWindow(3, 2, 2);
  EXPECT_EQ(root_->stats().quarantines, 2u);
  SendWindow(1, 2, {1, 2});
  SendWindow(2, 2, {3, 4});
  ServeRequests();
  ASSERT_EQ(outputs_.size(), 3u);
  EXPECT_TRUE(outputs_[2].degraded);
  SendCorruptWindow(3, 3, 2);  // strike while on probation
  EXPECT_EQ(root_->stats().quarantines, 3u);
  EXPECT_EQ(root_->stats().readmissions, 1u);
}

}  // namespace
}  // namespace dema::core
