// Unit tests for the worker-pool executor: future plumbing, bounded-queue
// backpressure, drain-on-shutdown semantics, and the exec.* instruments.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "obs/registry.h"

namespace dema::exec {
namespace {

TEST(Executor, FuturesCarryResults) {
  Executor pool(ExecutorOptions{.workers = 2});
  auto a = pool.Submit([] { return 40 + 2; });
  auto b = pool.Submit([] { return std::string("sorted"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "sorted");
}

TEST(Executor, VoidTasksComplete) {
  Executor pool(ExecutorOptions{.workers = 1});
  std::atomic<int> ran{0};
  auto f = pool.Submit([&ran] { ran.fetch_add(1); });
  f.get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(Executor, ManyTasksAllComplete) {
  obs::Registry registry;
  Executor pool(ExecutorOptions{.workers = 4, .registry = &registry});
  constexpr int kTasks = 500;
  std::atomic<uint64_t> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), uint64_t{kTasks} * (kTasks - 1) / 2);
  EXPECT_EQ(registry.FindCounter("exec.tasks_submitted")->Value(),
            uint64_t{kTasks});
  EXPECT_EQ(registry.FindCounter("exec.tasks_completed")->Value(),
            uint64_t{kTasks});
  EXPECT_EQ(registry.FindHistogram("exec.task_run_us")->Count(),
            uint64_t{kTasks});
}

TEST(Executor, ClampsDegenerateOptions) {
  obs::Registry registry;
  Executor pool(ExecutorOptions{
      .workers = 0, .queue_capacity = 0, .registry = &registry});
  EXPECT_EQ(pool.workers(), 1u);
  EXPECT_EQ(registry.FindGauge("exec.workers")->Value(), 1);
  auto f = pool.Submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(Executor, BoundedQueueBackpressuresSubmitters) {
  obs::Registry registry;
  // One worker, one queue slot: parking the worker on a latch forces every
  // further Submit past the second to wait for room.
  Executor pool(ExecutorOptions{
      .workers = 1, .queue_capacity = 1, .registry = &registry});
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  auto blocker = pool.Submit([gate] { gate.wait(); });

  constexpr int kTasks = 4;
  std::atomic<int> ran{0};
  std::thread submitter([&] {
    std::vector<std::future<void>> futures;
    for (int i = 0; i < kTasks; ++i) {
      futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
  });

  // Give the submitter time to hit the full queue, then open the gate.
  while (registry.FindCounter("exec.queue_full_blocks")->Value() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.set_value();
  submitter.join();
  blocker.get();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_GE(registry.FindCounter("exec.queue_full_blocks")->Value(), 1u);
}

TEST(Executor, ShutdownDrainsQueuedTasks) {
  obs::Registry registry;
  Executor pool(ExecutorOptions{
      .workers = 1, .queue_capacity = 64, .registry = &registry});
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([&ran] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ran.fetch_add(1);
    }));
  }
  pool.Shutdown();  // must not abandon queued work
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 20);
  EXPECT_EQ(registry.FindCounter("exec.tasks_completed")->Value(), 20u);
  pool.Shutdown();  // idempotent
}

TEST(Executor, SubmitAfterShutdownRunsInline) {
  Executor pool(ExecutorOptions{.workers = 2});
  pool.Shutdown();
  auto f = pool.Submit([] { return 11; });
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(f.get(), 11);
}

TEST(Executor, OwnsPrivateRegistryWhenNoneGiven) {
  Executor pool(ExecutorOptions{.workers = 3});
  ASSERT_NE(pool.registry(), nullptr);
  EXPECT_EQ(pool.registry()->FindGauge("exec.workers")->Value(), 3);
  pool.Submit([] {}).get();
  EXPECT_GE(pool.registry()->FindCounter("exec.tasks_submitted")->Value(), 1u);
}

TEST(Executor, ConcurrentSubmittersAreSafe) {
  obs::Registry registry;
  Executor pool(ExecutorOptions{
      .workers = 3, .queue_capacity = 8, .registry = &registry});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::atomic<int> ran{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &ran] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < kPerThread; ++i) {
        futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ran.load(), kThreads * kPerThread);
  EXPECT_EQ(registry.FindCounter("exec.tasks_completed")->Value(),
            uint64_t{kThreads} * kPerThread);
}

}  // namespace
}  // namespace dema::exec
