// Threaded-driver tests: every system runs a real thread-per-node pipeline
// with backpressure; results, metrics, and failure paths are checked.

#include <gtest/gtest.h>

#include "sim/driver.h"
#include "sim/topology.h"

namespace dema {
namespace {

using sim::SystemConfig;
using sim::SystemKind;
using sim::WorkloadConfig;

WorkloadConfig SmallWorkload(size_t locals, uint64_t windows = 4,
                             double event_rate = 20'000) {
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kSensorWalk;
  dist.lo = 0;
  dist.hi = 1000;
  dist.stddev = 5;
  return sim::MakeUniformWorkload(locals, windows, event_rate, dist);
}

class ThreadedSystems : public ::testing::TestWithParam<SystemKind> {};

TEST_P(ThreadedSystems, CompletesAndReportsMetrics) {
  SystemConfig config;
  config.kind = GetParam();
  config.num_locals = 2;
  config.gamma = 500;
  WorkloadConfig load = SmallWorkload(2);

  auto metrics = sim::RunThreaded(config, load, /*root_inbox_capacity=*/64);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->windows_emitted, 4u);
  EXPECT_EQ(metrics->events_ingested, 2u * 4u * 20'000u);
  EXPECT_GT(metrics->throughput_eps, 0);
  EXPECT_EQ(metrics->latency.count, 4u);
  EXPECT_GT(metrics->network_total.messages, 0u);
  EXPECT_GT(metrics->network_total.bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, ThreadedSystems,
    ::testing::Values(SystemKind::kDema, SystemKind::kCentralExact,
                      SystemKind::kDesisMerge, SystemKind::kTDigestCentral,
                      SystemKind::kTDigestDecentral, SystemKind::kQDigest),
    [](const auto& info) {
      return std::string(sim::SystemKindToString(info.param)) == "Tdigest-dec"
                 ? "TdigestDec"
                 : sim::SystemKindToString(info.param);
    });

TEST(ThreadedDriver, DemaSendsFarFewerEventsThanCentral) {
  WorkloadConfig load = SmallWorkload(2, /*windows=*/3);

  SystemConfig dema_cfg;
  dema_cfg.kind = SystemKind::kDema;
  dema_cfg.num_locals = 2;
  dema_cfg.gamma = 500;
  auto dema_metrics = sim::RunThreaded(dema_cfg, load, 64);
  ASSERT_TRUE(dema_metrics.ok()) << dema_metrics.status();

  SystemConfig central_cfg;
  central_cfg.kind = SystemKind::kCentralExact;
  central_cfg.num_locals = 2;
  auto central_metrics = sim::RunThreaded(central_cfg, load, 64);
  ASSERT_TRUE(central_metrics.ok()) << central_metrics.status();

  // Central ships every event; Dema ships synopses + candidates only.
  EXPECT_EQ(central_metrics->network_total.events,
            central_metrics->events_ingested);
  EXPECT_LT(dema_metrics->network_total.events,
            central_metrics->network_total.events / 5);
  EXPECT_LT(dema_metrics->network_total.bytes,
            central_metrics->network_total.bytes);
}

TEST(ThreadedDriver, AdaptiveGammaRunsToCompletion) {
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = 3;
  config.gamma = 10'000;  // far from optimal; the controller must adapt
  config.adaptive_gamma = true;
  WorkloadConfig load = SmallWorkload(3, /*windows=*/8);
  auto metrics = sim::RunThreaded(config, load, 64);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->windows_emitted, 8u);
  EXPECT_GE(metrics->dema.gamma_updates_sent, 1u);
}

TEST(ThreadedDriver, MismatchedGeneratorCountFails) {
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = 2;
  WorkloadConfig load = SmallWorkload(3);  // 3 generators for 2 locals
  auto metrics = sim::RunThreaded(config, load, 64);
  EXPECT_EQ(metrics.status().code(), StatusCode::kInvalidArgument);
}

TEST(ThreadedDriver, DemaStatsArePopulated) {
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = 2;
  config.gamma = 1000;
  auto metrics = sim::RunThreaded(config, SmallWorkload(2), 64);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->dema.windows, 4u);
  EXPECT_GT(metrics->dema.synopsis_slices, 0u);
  EXPECT_GT(metrics->dema.candidate_events, 0u);
  EXPECT_EQ(metrics->dema.global_events, metrics->events_ingested);
}

TEST(ThreadedDriver, PerTypeTrafficBreakdown) {
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = 2;
  config.gamma = 1000;
  auto metrics = sim::RunThreaded(config, SmallWorkload(2), 64);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_GT(metrics->by_type[net::MessageType::kSynopsisBatch].messages, 0u);
  EXPECT_GT(metrics->by_type[net::MessageType::kCandidateRequest].messages, 0u);
  EXPECT_GT(metrics->by_type[net::MessageType::kCandidateReply].events, 0u);
  // Raw events travel only in candidate replies for Dema.
  EXPECT_EQ(metrics->by_type[net::MessageType::kEventBatch].messages, 0u);
}

}  // namespace
}  // namespace dema
