// Unit and property tests for the quantile sketches: t-digest (merging
// variant, k1 scale) and q-digest.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "net/serializer.h"
#include "sketch/qdigest.h"
#include "sketch/tdigest.h"
#include "stream/quantile.h"

namespace dema::sketch {
namespace {

double OracleQuantile(std::vector<double> values, double q) {
  auto r = stream::ExactQuantileValues(std::move(values), q);
  EXPECT_TRUE(r.ok());
  return *r;
}

TEST(TDigest, EmptyDigestRejectsQueries) {
  TDigest d;
  EXPECT_TRUE(d.empty());
  EXPECT_FALSE(d.Quantile(0.5).ok());
  EXPECT_FALSE(d.Cdf(1.0).ok());
}

TEST(TDigest, SingleValue) {
  TDigest d;
  d.Add(42.0);
  auto q = d.Quantile(0.5);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(*q, 42.0);
  EXPECT_EQ(d.min(), 42.0);
  EXPECT_EQ(d.max(), 42.0);
}

TEST(TDigest, RejectsInvalidQuantile) {
  TDigest d;
  d.Add(1.0);
  EXPECT_FALSE(d.Quantile(-0.1).ok());
  EXPECT_FALSE(d.Quantile(1.1).ok());
}

TEST(TDigest, ExtremesAreExact) {
  TDigest d(100);
  Rng rng(3);
  double lo = 1e18, hi = -1e18;
  for (int i = 0; i < 50'000; ++i) {
    double x = rng.Normal(0, 100);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    d.Add(x);
  }
  auto q0 = d.Quantile(0.0);
  auto q1 = d.Quantile(1.0);
  ASSERT_TRUE(q0.ok());
  ASSERT_TRUE(q1.ok());
  EXPECT_DOUBLE_EQ(*q0, lo);
  EXPECT_DOUBLE_EQ(*q1, hi);
}

TEST(TDigest, CentroidCountStaysBounded) {
  TDigest d(100);
  Rng rng(5);
  for (int i = 0; i < 200'000; ++i) d.Add(rng.Uniform(0, 1));
  d.Compress();
  // The k1 scale function bounds the compressed size to ~delta centroids.
  EXPECT_LE(d.num_centroids(), 200u);
  EXPECT_DOUBLE_EQ(d.total_weight(), 200'000);
}

struct AccuracyParam {
  double compression;
  double q;
  double rank_tolerance;  // allowed |cdf(estimate) - q|
  const char* name;
};

class TDigestAccuracy : public ::testing::TestWithParam<AccuracyParam> {};

TEST_P(TDigestAccuracy, RankErrorWithinTolerance) {
  const auto& p = GetParam();
  TDigest d(p.compression);
  Rng rng(17);
  std::vector<double> values;
  for (int i = 0; i < 100'000; ++i) {
    double x = rng.Exponential(0.1);
    values.push_back(x);
    d.Add(x);
  }
  auto est = d.Quantile(p.q);
  ASSERT_TRUE(est.ok());
  // Rank error: what fraction of the data is below the estimate vs q.
  std::sort(values.begin(), values.end());
  double below = static_cast<double>(
                     std::lower_bound(values.begin(), values.end(), *est) -
                     values.begin()) /
                 static_cast<double>(values.size());
  EXPECT_NEAR(below, p.q, p.rank_tolerance) << "estimate " << *est;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TDigestAccuracy,
    ::testing::Values(AccuracyParam{100, 0.5, 0.02, "mid_c100"},
                      AccuracyParam{100, 0.01, 0.005, "tail_lo_c100"},
                      AccuracyParam{100, 0.99, 0.005, "tail_hi_c100"},
                      AccuracyParam{500, 0.5, 0.005, "mid_c500"},
                      AccuracyParam{50, 0.5, 0.05, "mid_c50"}),
    [](const auto& info) { return info.param.name; });

TEST(TDigest, MergePreservesAccuracy) {
  Rng rng(23);
  TDigest whole(100), a(100), b(100);
  std::vector<double> values;
  for (int i = 0; i < 60'000; ++i) {
    double x = rng.Normal(100, 25);
    values.push_back(x);
    whole.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), whole.total_weight());
  double exact = OracleQuantile(values, 0.5);
  auto merged_est = a.Quantile(0.5);
  ASSERT_TRUE(merged_est.ok());
  EXPECT_NEAR(*merged_est, exact, 2.0);  // stddev 25 -> tight at the median
}

TEST(TDigest, SerializationRoundTripPreservesQueries) {
  TDigest d(100);
  Rng rng(31);
  for (int i = 0; i < 10'000; ++i) d.Add(rng.Uniform(-50, 50));
  net::Writer w;
  d.SerializeTo(&w);
  net::Reader r(w.buffer());
  auto restored = TDigest::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->total_weight(), d.total_weight());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(*restored->Quantile(q), *d.Quantile(q));
  }
}

TEST(TDigest, DeserializeRejectsCorruptBuffers) {
  net::Writer w;
  w.PutDouble(100);  // compression only, then truncation
  net::Reader r(w.buffer());
  EXPECT_FALSE(TDigest::Deserialize(&r).ok());
}

TEST(TDigest, CdfIsMonotone) {
  TDigest d(100);
  Rng rng(37);
  for (int i = 0; i < 20'000; ++i) d.Add(rng.Normal(0, 10));
  double prev = -1;
  for (double x = -40; x <= 40; x += 1) {
    auto c = d.Cdf(x);
    ASSERT_TRUE(c.ok());
    EXPECT_GE(*c, prev - 1e-12);
    EXPECT_GE(*c, 0.0);
    EXPECT_LE(*c, 1.0);
    prev = *c;
  }
  EXPECT_DOUBLE_EQ(*d.Cdf(-1000), 0.0);
  EXPECT_DOUBLE_EQ(*d.Cdf(1000), 1.0);
}

TEST(TDigest, WeightedAdds) {
  TDigest d(100);
  d.Add(1.0, 99);
  d.Add(100.0, 1);
  EXPECT_DOUBLE_EQ(d.total_weight(), 100);
  auto q = d.Quantile(0.5);
  ASSERT_TRUE(q.ok());
  EXPECT_LT(*q, 10.0);  // mass concentrates at 1.0
}

// --- q-digest ---------------------------------------------------------------

TEST(ValueQuantizer, RoundTripsWithinResolution) {
  ValueQuantizer quant(0, 1000, 16);
  for (double v : {0.0, 1.0, 499.5, 999.9}) {
    uint64_t b = quant.ToBucket(v);
    double back = quant.FromBucket(b);
    EXPECT_NEAR(back, v, 1000.0 / (1 << 16) + 1e-9);
  }
  EXPECT_EQ(quant.ToBucket(-5), 0u);                       // clamps low
  EXPECT_EQ(quant.ToBucket(2000), quant.universe() - 1);   // clamps high
}

TEST(QDigest, EmptyRejectsQueries) {
  QDigest d(ValueQuantizer(0, 100, 10), 32);
  EXPECT_TRUE(d.empty());
  EXPECT_FALSE(d.Quantile(0.5).ok());
}

TEST(QDigest, CompressionBoundsNodeCount) {
  QDigest d(ValueQuantizer(0, 1000, 16), 64);
  Rng rng(41);
  for (int i = 0; i < 100'000; ++i) d.Add(rng.Uniform(0, 1000));
  d.Compress();
  // Digest property keeps O(k * log(universe)) nodes: 64 * 16 * small const.
  EXPECT_LE(d.num_nodes(), 3u * 64 * 16);
  EXPECT_EQ(d.total_weight(), 100'000u);
}

TEST(QDigest, RankErrorWithinGuarantee) {
  constexpr uint64_t kK = 100;
  constexpr uint32_t kBits = 16;
  QDigest d(ValueQuantizer(0, 1000, kBits), kK);
  Rng rng(43);
  std::vector<double> values;
  for (int i = 0; i < 50'000; ++i) {
    double x = rng.Uniform(0, 1000);
    values.push_back(x);
    d.Add(x);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    auto est = d.Quantile(q);
    ASSERT_TRUE(est.ok());
    double below = static_cast<double>(
                       std::lower_bound(values.begin(), values.end(), *est) -
                       values.begin()) /
                   static_cast<double>(values.size());
    // Guarantee: rank error <= bits / k (plus quantization slack).
    double bound = static_cast<double>(kBits) / kK + 0.01;
    EXPECT_LE(std::abs(below - q), bound) << "q=" << q;
  }
}

TEST(QDigest, MergeMatchesCombinedStream) {
  QDigest a(ValueQuantizer(0, 1000, 14), 64);
  QDigest b(ValueQuantizer(0, 1000, 14), 64);
  QDigest whole(ValueQuantizer(0, 1000, 14), 64);
  Rng rng(47);
  for (int i = 0; i < 20'000; ++i) {
    double x = rng.Normal(500, 120);
    whole.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.total_weight(), whole.total_weight());
  auto qa = a.Quantile(0.5);
  auto qw = whole.Quantile(0.5);
  ASSERT_TRUE(qa.ok());
  ASSERT_TRUE(qw.ok());
  EXPECT_NEAR(*qa, *qw, 25.0);
}

TEST(QDigest, MergeRejectsDifferentUniverse) {
  QDigest a(ValueQuantizer(0, 1000, 14), 64);
  QDigest b(ValueQuantizer(0, 1000, 12), 64);
  a.Add(1);
  b.Add(1);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(QDigest, SerializationRoundTrip) {
  QDigest d(ValueQuantizer(-100, 100, 12), 32);
  Rng rng(53);
  for (int i = 0; i < 5'000; ++i) d.Add(rng.Uniform(-100, 100));
  net::Writer w;
  d.SerializeTo(&w);
  net::Reader r(w.buffer());
  auto restored = QDigest::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->total_weight(), d.total_weight());
  EXPECT_EQ(restored->num_nodes(), d.num_nodes());
  EXPECT_DOUBLE_EQ(*restored->Quantile(0.5), *d.Quantile(0.5));
}

TEST(QDigest, DeserializeValidatesWeights) {
  QDigest d(ValueQuantizer(0, 10, 8), 16);
  d.Add(5);
  net::Writer w;
  d.SerializeTo(&w);
  std::vector<uint8_t> bytes = w.TakeBuffer();
  // Corrupt the total count field (offset: lo(8) + hi(8) + bits(4) + k(8)).
  bytes[8 + 8 + 4 + 8] ^= 0xFF;
  net::Reader r(bytes);
  EXPECT_FALSE(QDigest::Deserialize(&r).ok());
}

}  // namespace
}  // namespace dema::sketch
