// Unit tests for the network substrate: serialization, message framing,
// channels (including concurrency and backpressure), and the network fabric's
// traffic accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <thread>

#include "common/clock.h"
#include "common/time.h"
#include "net/channel.h"
#include "net/dedup.h"
#include "net/message.h"
#include "net/network.h"
#include "net/serializer.h"
#include "obs/registry.h"

namespace dema::net {
namespace {

TEST(Serializer, PrimitiveRoundTrip) {
  Writer w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutDouble(3.14159);
  w.PutString("hello");

  Reader r(w.buffer());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU16(&u16).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serializer, EventRoundTrip) {
  Writer w;
  Event e{123.456, 789, 3, 17};
  w.PutEvent(e);
  Reader r(w.buffer());
  Event out;
  ASSERT_TRUE(r.GetEvent(&out).ok());
  EXPECT_EQ(out, e);
}

TEST(Serializer, EventVectorRoundTrip) {
  Writer w;
  std::vector<Event> events;
  for (uint32_t i = 0; i < 100; ++i) {
    events.push_back(Event{static_cast<double>(i), i * 10, 1, i});
  }
  w.PutEvents(events);
  Reader r(w.buffer());
  std::vector<Event> out;
  ASSERT_TRUE(r.GetEvents(&out).ok());
  EXPECT_EQ(out, events);
}

TEST(Serializer, TruncatedBufferFails) {
  Writer w;
  w.PutU64(7);
  Reader r(w.buffer().data(), 4);  // half the u64
  uint64_t v;
  Status st = r.GetU64(&v);
  EXPECT_EQ(st.code(), StatusCode::kSerializationError);
}

TEST(Serializer, OversizedStringLengthFails) {
  Writer w;
  w.PutU32(1'000'000);  // claims a huge string with no bytes behind it
  Reader r(w.buffer());
  std::string s;
  EXPECT_EQ(r.GetString(&s).code(), StatusCode::kSerializationError);
}

TEST(Serializer, OversizedEventCountFails) {
  Writer w;
  w.PutU32(1'000'000);  // claims a million events
  Reader r(w.buffer());
  std::vector<Event> out;
  EXPECT_EQ(r.GetEvents(&out).code(), StatusCode::kSerializationError);
}

TEST(Message, EventBatchRoundTrip) {
  EventBatch batch;
  batch.window_id = 9;
  batch.sorted = true;
  batch.last_batch = true;
  batch.events = {{1, 2, 3, 4}, {5, 6, 7, 8}};

  Message m = MakeMessage(MessageType::kEventBatch, 1, 0, batch);
  EXPECT_EQ(m.event_count, 2u);
  EXPECT_EQ(m.WireBytes(), kEnvelopeWireBytes + m.payload.size());

  Reader r(m.payload);
  auto out = EventBatch::Deserialize(&r);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->window_id, 9u);
  EXPECT_TRUE(out->sorted);
  EXPECT_TRUE(out->last_batch);
  EXPECT_EQ(out->events, batch.events);
}

TEST(Message, WindowEndRoundTrip) {
  WindowEnd end{5, 1234, 999};
  Message m = MakeMessage(MessageType::kWindowEnd, 2, 0, end);
  EXPECT_EQ(m.event_count, 0u);  // markers carry no raw events
  Reader r(m.payload);
  auto out = WindowEnd::Deserialize(&r);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->window_id, 5u);
  EXPECT_EQ(out->local_window_size, 1234u);
  EXPECT_EQ(out->close_time_us, 999);
}

TEST(Message, TypeNames) {
  EXPECT_STREQ(MessageTypeToString(MessageType::kEventBatch), "EventBatch");
  EXPECT_STREQ(MessageTypeToString(MessageType::kSynopsisBatch), "SynopsisBatch");
  EXPECT_STREQ(MessageTypeToString(MessageType::kShutdown), "Shutdown");
}

Message TestMessage(uint64_t events = 0, size_t payload_bytes = 8) {
  Message m;
  m.type = MessageType::kEventBatch;
  m.src = 1;
  m.dst = 0;
  m.payload.assign(payload_bytes, 0);
  m.event_count = events;
  return m;
}

TEST(Channel, FifoOrder) {
  Channel ch;
  for (int i = 0; i < 10; ++i) {
    Message m = TestMessage();
    m.payload[0] = static_cast<uint8_t>(i);
    ASSERT_TRUE(ch.Push(std::move(m)));
  }
  for (int i = 0; i < 10; ++i) {
    auto m = ch.TryPop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->payload[0], i);
  }
  EXPECT_FALSE(ch.TryPop().has_value());
}

TEST(Channel, CountsTraffic) {
  Channel ch;
  ASSERT_TRUE(ch.Push(TestMessage(5, 100)));
  ASSERT_TRUE(ch.Push(TestMessage(3, 50)));
  auto c = ch.counters();
  EXPECT_EQ(c.messages, 2u);
  EXPECT_EQ(c.events, 8u);
  EXPECT_EQ(c.bytes, 2 * kEnvelopeWireBytes + 150);
}

TEST(Channel, CloseDrainsThenEnds) {
  Channel ch;
  ASSERT_TRUE(ch.Push(TestMessage()));
  ch.Close();
  EXPECT_FALSE(ch.Push(TestMessage()));  // producers fail after close
  EXPECT_TRUE(ch.Pop().has_value());     // consumer drains the queue
  EXPECT_FALSE(ch.Pop().has_value());    // then sees end-of-stream
}

TEST(Channel, TryPushRespectsCapacity) {
  Channel ch(2);
  EXPECT_TRUE(ch.TryPush(TestMessage()));
  EXPECT_TRUE(ch.TryPush(TestMessage()));
  EXPECT_FALSE(ch.TryPush(TestMessage()));
  ch.TryPop();
  EXPECT_TRUE(ch.TryPush(TestMessage()));
}

TEST(Channel, PopForTimesOut) {
  Channel ch;
  auto m = ch.PopFor(MillisUs(5));
  EXPECT_FALSE(m.has_value());
}

TEST(Channel, BoundedPushBlocksUntilSpace) {
  Channel ch(1);
  ASSERT_TRUE(ch.Push(TestMessage()));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ch.Push(TestMessage());
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still blocked on the full channel
  ch.TryPop();
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(Channel, ConcurrentProducersDeliverEverything) {
  Channel ch(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ch.Push(TestMessage(1)));
      }
    });
  }
  uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    if (ch.Pop().has_value()) ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.counters().messages, static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(ch.size(), 0u);
}

TEST(Network, RegisterAndSend) {
  RealClock clock;
  Network net(&clock);
  ASSERT_TRUE(net.RegisterNode(0).ok());
  ASSERT_TRUE(net.RegisterNode(1).ok());
  EXPECT_EQ(net.RegisterNode(1).code(), StatusCode::kAlreadyExists);

  ASSERT_TRUE(net.Send(TestMessage(4, 32)).ok());
  auto stats = net.GetLinkStats(1, 0);
  EXPECT_EQ(stats.counters.messages, 1u);
  EXPECT_EQ(stats.counters.events, 4u);
  EXPECT_GT(stats.simulated_transfer_us, 0.0);

  auto msg = net.Inbox(0)->TryPop();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->src, 1u);
}

TEST(Network, ExtremeNodeIdsKeepLinksDistinct) {
  // Regression: link stats were keyed by the packed integer
  // (src << 32) | dst, which silently collides distinct links as soon as
  // NodeId outgrows 32 bits. The key is now the (src, dst) pair itself,
  // which stays collision-free for any NodeId width. Exercise the extreme
  // ends of the current id range in both directions.
  RealClock clock;
  Network net(&clock);
  const NodeId kMax = std::numeric_limits<NodeId>::max();
  ASSERT_TRUE(net.RegisterNode(0).ok());
  ASSERT_TRUE(net.RegisterNode(1).ok());
  ASSERT_TRUE(net.RegisterNode(kMax).ok());

  auto send = [&](NodeId src, NodeId dst, size_t payload_bytes) {
    Message m = TestMessage(/*events=*/1, payload_bytes);
    m.src = src;
    m.dst = dst;
    ASSERT_TRUE(net.Send(std::move(m)).ok());
  };
  send(kMax, 0, 10);
  send(0, kMax, 20);
  send(kMax, 1, 30);
  send(1, kMax, 40);

  // Four distinct directed links, none aliased onto another.
  EXPECT_EQ(net.GetLinkStats(kMax, 0).counters.bytes, kEnvelopeWireBytes + 10);
  EXPECT_EQ(net.GetLinkStats(0, kMax).counters.bytes, kEnvelopeWireBytes + 20);
  EXPECT_EQ(net.GetLinkStats(kMax, 1).counters.bytes, kEnvelopeWireBytes + 30);
  EXPECT_EQ(net.GetLinkStats(1, kMax).counters.bytes, kEnvelopeWireBytes + 40);
  EXPECT_EQ(net.AllLinks().size(), 4u);
  EXPECT_EQ(net.GetLinkStats(1, 0).counters.messages, 0u);
}

TEST(Network, SendToUnknownNodeFails) {
  RealClock clock;
  Network net(&clock);
  ASSERT_TRUE(net.RegisterNode(0).ok());
  Message m = TestMessage();
  m.dst = 99;
  EXPECT_EQ(net.Send(std::move(m)).code(), StatusCode::kNotFound);
}

TEST(Network, TotalAndPerTypeStats) {
  RealClock clock;
  Network net(&clock);
  ASSERT_TRUE(net.RegisterNode(0).ok());
  ASSERT_TRUE(net.RegisterNode(1).ok());
  ASSERT_TRUE(net.RegisterNode(2).ok());

  Message a = TestMessage(2, 16);
  a.src = 1;
  ASSERT_TRUE(net.Send(std::move(a)).ok());
  Message b = TestMessage(0, 8);
  b.src = 2;
  b.type = MessageType::kWindowEnd;
  ASSERT_TRUE(net.Send(std::move(b)).ok());

  auto total = net.TotalStats();
  EXPECT_EQ(total.counters.messages, 2u);
  EXPECT_EQ(total.counters.events, 2u);

  auto by_type = net.StatsByType();
  EXPECT_EQ(by_type[MessageType::kEventBatch].messages, 1u);
  EXPECT_EQ(by_type[MessageType::kWindowEnd].messages, 1u);
}

TEST(Network, LinkModelTransferTime) {
  LinkModel model;
  model.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s
  model.base_latency_us = 100;
  EXPECT_DOUBLE_EQ(model.TransferTimeUs(1'000'000), 100 + 1e6);
  EXPECT_DOUBLE_EQ(model.TransferTimeUs(0), 100);
}

TEST(Network, CloseAllStopsProducers) {
  RealClock clock;
  Network net(&clock);
  ASSERT_TRUE(net.RegisterNode(0).ok());
  net.CloseAll();
  EXPECT_EQ(net.Send(TestMessage()).code(), StatusCode::kNetworkError);
}

TEST(Channel, CloseUnblocksBlockedPush) {
  Channel ch(1);
  ASSERT_TRUE(ch.Push(TestMessage()));
  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  std::thread pusher([&] {
    push_result = ch.Push(TestMessage());  // channel full: blocks
    push_returned = true;
  });
  // Nothing pops, so the push can only be sitting in the full-channel wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(push_returned.load());
  ch.Close();
  pusher.join();
  EXPECT_TRUE(push_returned.load());
  EXPECT_FALSE(push_result.load());
}

// --- fault fabric -----------------------------------------------------------

TEST(FaultFabric, LossDropsDeliveryButChargesTheWire) {
  // Regression: the loss branch used to count the drop but still deliver the
  // message, making every "lossy" run secretly lossless.
  RealClock clock;
  obs::Registry registry;
  Network::Options opts;
  opts.drop_prob = 1.0;
  opts.registry = &registry;
  Network net(&clock, opts);
  ASSERT_TRUE(net.RegisterNode(0).ok());
  ASSERT_TRUE(net.RegisterNode(1).ok());
  ASSERT_TRUE(net.Send(TestMessage(4, 100)).ok());  // loss looks like success
  EXPECT_FALSE(net.Inbox(0)->TryPop().has_value());
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(registry.CounterValues().at("net.dropped{cause=loss}"), 1u);
  // The message travelled before it was lost: the wire is charged.
  EXPECT_EQ(net.GetLinkStats(1, 0).counters.messages, 1u);
}

TEST(FaultFabric, PartitionBlocksDirectedLinkUntilHealed) {
  RealClock clock;
  obs::Registry registry;
  Network::Options opts;
  opts.registry = &registry;
  Network net(&clock, opts);
  ASSERT_TRUE(net.RegisterNode(0).ok());
  ASSERT_TRUE(net.RegisterNode(1).ok());
  net.Partition(1, 0);
  ASSERT_TRUE(net.Send(TestMessage()).ok());
  EXPECT_FALSE(net.Inbox(0)->TryPop().has_value());
  EXPECT_EQ(registry.CounterValues().at("net.dropped{cause=partition}"), 1u);
  // A partitioned send never leaves the sender, so the wire is not charged.
  EXPECT_EQ(net.GetLinkStats(1, 0).counters.messages, 0u);
  // Directed: the reverse link still works.
  Message reverse = TestMessage();
  reverse.src = 0;
  reverse.dst = 1;
  ASSERT_TRUE(net.Send(std::move(reverse)).ok());
  EXPECT_TRUE(net.Inbox(1)->TryPop().has_value());
  net.Heal(1, 0);
  ASSERT_TRUE(net.Send(TestMessage()).ok());
  EXPECT_TRUE(net.Inbox(0)->TryPop().has_value());
}

TEST(FaultFabric, DownNodeDropsTrafficBothDirections) {
  RealClock clock;
  obs::Registry registry;
  Network::Options opts;
  opts.registry = &registry;
  Network net(&clock, opts);
  ASSERT_TRUE(net.RegisterNode(0).ok());
  ASSERT_TRUE(net.RegisterNode(1).ok());
  net.SetNodeDown(1, true);
  ASSERT_TRUE(net.Send(TestMessage()).ok());  // src down
  Message to_down = TestMessage();
  to_down.src = 0;
  to_down.dst = 1;
  ASSERT_TRUE(net.Send(std::move(to_down)).ok());  // dst down
  EXPECT_FALSE(net.Inbox(0)->TryPop().has_value());
  EXPECT_FALSE(net.Inbox(1)->TryPop().has_value());
  EXPECT_EQ(registry.CounterValues().at("net.dropped{cause=node_down}"), 2u);
  net.SetNodeDown(1, false);
  ASSERT_TRUE(net.Send(TestMessage()).ok());
  EXPECT_TRUE(net.Inbox(0)->TryPop().has_value());
}

TEST(FaultFabric, DelayedMessageRedeliversOnFlush) {
  RealClock clock;
  Network::Options opts;
  opts.delay_us_max = SecondsUs(10);  // far past the per-send clock advance
  opts.delay_prob = 1.0;
  Network net(&clock, opts);
  ASSERT_TRUE(net.RegisterNode(0).ok());
  ASSERT_TRUE(net.RegisterNode(1).ok());
  ASSERT_TRUE(net.Send(TestMessage()).ok());
  EXPECT_FALSE(net.Inbox(0)->TryPop().has_value());
  EXPECT_EQ(net.messages_delayed(), 1u);
  EXPECT_EQ(net.delayed_in_flight(), 1u);
  EXPECT_EQ(net.FlushDelayed(), 1u);
  EXPECT_EQ(net.delayed_in_flight(), 0u);
  EXPECT_TRUE(net.Inbox(0)->TryPop().has_value());
}

TEST(FaultFabric, DelayedMessageDropsWhenNodeDiesInFlight) {
  RealClock clock;
  obs::Registry registry;
  Network::Options opts;
  opts.delay_us_max = SecondsUs(10);
  opts.delay_prob = 1.0;
  opts.registry = &registry;
  Network net(&clock, opts);
  ASSERT_TRUE(net.RegisterNode(0).ok());
  ASSERT_TRUE(net.RegisterNode(1).ok());
  ASSERT_TRUE(net.Send(TestMessage()).ok());
  net.SetNodeDown(1, true);  // sender dies while its message is in flight
  EXPECT_EQ(net.FlushDelayed(), 0u);
  EXPECT_FALSE(net.Inbox(0)->TryPop().has_value());
  EXPECT_EQ(registry.CounterValues().at("net.dropped{cause=node_down}"), 1u);
}

TEST(FaultFabric, InjectedDuplicatesTaggedInPerLinkCounters) {
  RealClock clock;
  obs::Registry registry;
  Network::Options opts;
  opts.duplicate_prob = 1.0;
  opts.registry = &registry;
  Network net(&clock, opts);
  ASSERT_TRUE(net.RegisterNode(0).ok());
  ASSERT_TRUE(net.RegisterNode(1).ok());
  ASSERT_TRUE(net.Send(TestMessage(4, 100)).ok());
  auto counters = registry.CounterValues();
  // The duplicate is charged to the normal link totals AND tagged separately,
  // so parity checks can subtract injected traffic.
  EXPECT_EQ(counters.at("transport.sent.messages{link=1->0}"), 2u);
  EXPECT_EQ(counters.at("net.duplicates.messages{link=1->0}"), 1u);
  EXPECT_EQ(counters.at("net.duplicates.events{link=1->0}"), 4u);
}

TEST(SeqDedup, FlagsRepeatsAndPassesFreshSeqs) {
  SeqDedup dedup;
  EXPECT_FALSE(dedup.IsDuplicate(1, 1));
  EXPECT_FALSE(dedup.IsDuplicate(1, 2));
  EXPECT_TRUE(dedup.IsDuplicate(1, 2));
  EXPECT_FALSE(dedup.IsDuplicate(2, 2));  // per-source streams are independent
  EXPECT_FALSE(dedup.IsDuplicate(1, 3));
  EXPECT_EQ(dedup.duplicates_seen(), 1u);
}

TEST(SeqDedup, SerialComparisonOrdersAcrossWraparound) {
  EXPECT_TRUE(SeqDedup::SeqNewer(1, 0xFFFFFFFFu));
  EXPECT_FALSE(SeqDedup::SeqNewer(0xFFFFFFFFu, 1));
  EXPECT_TRUE(SeqDedup::SeqNewer(0x80000000u, 1));
  EXPECT_FALSE(SeqDedup::SeqNewer(5, 5));
}

// Regression: with raw uint32_t comparison, every post-wrap seq compared
// below max_seq, so the horizon froze and late traffic on a long-lived
// connection was silently treated as duplicate-window history.
TEST(SeqDedup, SurvivesSequenceWraparound) {
  const uint32_t window = 64;
  SeqDedup dedup(window);
  // March a stream across the 2^32 boundary.
  const uint32_t start = 0xFFFFFFFFu - 100;
  for (uint32_t i = 0; i < 200; ++i) {
    const uint32_t seq = start + i;  // wraps past 0xFFFFFFFF
    if (seq == 0) continue;          // 0 is the unsequenced marker
    EXPECT_FALSE(dedup.IsDuplicate(7, seq)) << "seq=" << seq;
  }
  // Post-wrap seqs still dedup as duplicates when replayed...
  EXPECT_TRUE(dedup.IsDuplicate(7, start + 150));
  // ...and fresh seqs after the wrap keep passing.
  EXPECT_FALSE(dedup.IsDuplicate(7, start + 200));
  EXPECT_EQ(dedup.duplicates_seen(), 1u);
}

TEST(SeqDedup, PrunesAcrossWrapWithoutReflaggingRecent) {
  const uint32_t window = 16;
  SeqDedup dedup(window);
  // Fill well past the window across the wrap; the seen-set must stay
  // bounded (pruning keeps working) and recent seqs must still be known.
  const uint32_t start = 0xFFFFFFF0u;
  uint32_t last = 0;
  for (uint32_t i = 0; i < 64; ++i) {
    const uint32_t seq = start + i;
    if (seq == 0) continue;
    ASSERT_FALSE(dedup.IsDuplicate(3, seq));
    last = seq;
  }
  EXPECT_TRUE(dedup.IsDuplicate(3, last));
  EXPECT_TRUE(dedup.IsDuplicate(3, last - window / 2));
}

TEST(SeqDedup, LateJoinStartsFromFirstObservedSeq) {
  // A receiver that first hears a stream near the top of the sequence space
  // must adopt that seq as its horizon anchor, not compare against 0.
  SeqDedup dedup(32);
  EXPECT_FALSE(dedup.IsDuplicate(9, 0xFFFFFF00u));
  EXPECT_TRUE(dedup.IsDuplicate(9, 0xFFFFFF00u));
  EXPECT_FALSE(dedup.IsDuplicate(9, 0xFFFFFF01u));
  EXPECT_TRUE(dedup.IsDuplicate(9, 0xFFFFFF01u));
}

TEST(FaultFabric, SendStampsPerLinkSequenceNumbers) {
  RealClock clock;
  Network net(&clock);
  ASSERT_TRUE(net.RegisterNode(0).ok());
  ASSERT_TRUE(net.RegisterNode(1).ok());
  ASSERT_TRUE(net.Send(TestMessage()).ok());
  ASSERT_TRUE(net.Send(TestMessage()).ok());
  auto first = net.Inbox(0)->TryPop();
  auto second = net.Inbox(0)->TryPop();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->seq, 1u);
  EXPECT_EQ(second->seq, 2u);
}

TEST(FaultFabric, DelayedMessageToUnregisteredDestCountsUnknownDest) {
  // Regression: a due delayed message whose destination inbox had been
  // unregistered was silently discarded — no counter, no drop cause.
  RealClock clock;
  Network::Options opts;
  opts.delay_us_max = 1;
  opts.delay_prob = 1.0;
  Network net(&clock, opts);
  ASSERT_TRUE(net.RegisterNode(0).ok());
  ASSERT_TRUE(net.RegisterNode(1).ok());
  ASSERT_TRUE(net.RegisterNode(2).ok());

  Message m = TestMessage();
  m.dst = 2;
  ASSERT_TRUE(net.Send(std::move(m)).ok());
  ASSERT_EQ(net.delayed_in_flight(), 1u);
  ASSERT_TRUE(net.UnregisterNode(2).ok());
  EXPECT_EQ(net.UnregisterNode(2).code(), StatusCode::kNotFound);

  EXPECT_EQ(net.FlushDelayed(), 0u);
  EXPECT_EQ(net.delayed_in_flight(), 0u);
  EXPECT_EQ(net.messages_dropped(), 1u);
  auto counters = net.registry()->CounterValues();
  EXPECT_EQ(counters.at("net.dropped{cause=unknown_dest}"), 1u);
}

TEST(FaultFabric, DueBatchSurvivesOneClosedInbox) {
  // Regression: Send returned NetworkError as soon as one due-batch Push
  // failed, destroying the remaining collected messages bound for other,
  // healthy inboxes. The rest of the batch must be delivered first.
  // Every send advances the virtual clock by one tick (base_latency_us = 1),
  // so two messages only share a due batch when the first draws a 2-tick
  // delay and the second a 1-tick delay. The draws are seeded-random in
  // [1, delay_us_max]; probe seeds until one lines them up.
  RealClock clock;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    Network::Options opts;
    opts.link_model.base_latency_us = 1;
    opts.delay_us_max = 2;
    opts.delay_prob = 1.0;
    opts.fault_seed = seed;
    Network net(&clock, opts);
    for (NodeId id = 0; id < 4; ++id) ASSERT_TRUE(net.RegisterNode(id).ok());

    // The first due message targets node 2 (whose inbox we close), the
    // second targets healthy node 3.
    Message a = TestMessage();
    a.dst = 2;
    ASSERT_TRUE(net.Send(std::move(a)).ok());
    Message b = TestMessage();
    b.dst = 3;
    ASSERT_TRUE(net.Send(std::move(b)).ok());
    if (net.delayed_in_flight() != 2) continue;  // a came due during send b
    net.Inbox(2)->Close();

    // This send advances the clock past both due times and collects the
    // batch: node 2's push fails, node 3's must still arrive.
    Message c = TestMessage();
    c.dst = 0;
    Status sent = net.Send(std::move(c));
    if (net.delayed_in_flight() != 1) continue;  // batch wasn't both a and b
    EXPECT_EQ(sent.code(), StatusCode::kNetworkError);
    auto delivered = net.Inbox(3)->TryPop();
    ASSERT_TRUE(delivered.has_value());
    EXPECT_EQ(delivered->dst, 3u);
    return;
  }
  FAIL() << "no seed in [0, 64) produced a two-message due batch";
}

namespace {
/// A clock that advances one microsecond per reading, so any two NowUs calls
/// observably differ — the stamping-point probe below depends on that.
class SteppingClock : public Clock {
 public:
  TimestampUs NowUs() const override { return ++now_us_; }

 private:
  mutable TimestampUs now_us_ = 0;
};
}  // namespace

TEST(FaultFabric, SendTimeStampedOnceForAllDeliveryPaths) {
  // Regression: the delayed path stamped send_time_us inside the lock while
  // the inline path stamped after it, so a message that was both duplicated
  // and delayed carried two different stamps. All copies share one stamping
  // point now.
  SteppingClock clock;
  Network::Options opts;
  opts.duplicate_prob = 1.0;
  opts.delay_us_max = 1;
  opts.delay_prob = 1.0;
  Network net(&clock, opts);
  ASSERT_TRUE(net.RegisterNode(0).ok());
  ASSERT_TRUE(net.RegisterNode(1).ok());

  ASSERT_TRUE(net.Send(TestMessage()).ok());
  // The undelayed duplicate arrives first; the delayed original follows.
  auto dup = net.Inbox(0)->TryPop();
  ASSERT_TRUE(dup.has_value());
  ASSERT_EQ(net.FlushDelayed(), 1u);
  auto orig = net.Inbox(0)->TryPop();
  ASSERT_TRUE(orig.has_value());
  EXPECT_GT(orig->send_time_us, 0);
  EXPECT_EQ(dup->send_time_us, orig->send_time_us);
}

}  // namespace
}  // namespace dema::net
