// Connection-level chaos over the forked TCP cluster: real OS processes,
// scheduled mid-window socket severances (plus optional CRC-dropped frames),
// and the acceptance bar of the resilience work — the faulted run's
// quantiles must be byte-identical to a fault-free in-process run of the
// same seeded workload, with zero degraded windows, while the counters
// prove the faults actually fired.
//
// Kept in its own binary: RunTcpConnChaos forks, which must happen before
// the process creates any threads, and mixes badly with sanitizer runtimes
// (excluded from DEMA_SANITIZE / DEMA_TSAN builds).

#include <gtest/gtest.h>

#include "sim/chaos.h"
#include "sim/driver.h"
#include "sim/tcp_run.h"
#include "sim/topology.h"

namespace dema {
namespace {

sim::SystemConfig ChaosConfig(size_t locals) {
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = locals;
  config.gamma = 500;
  config.quantiles = {0.25, 0.5, 0.99};
  // Wire traffic must be a pure function of the seeded data for exact
  // parity (see LoopbackClusterMatchesSimulationExactly).
  config.adaptive_gamma = false;
  return config;
}

sim::WorkloadConfig ChaosWorkload(const sim::SystemConfig& config,
                                  uint64_t windows, uint64_t rate) {
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kSensorWalk;
  dist.lo = 0;
  dist.hi = 10'000;
  dist.stddev = 25;
  sim::WorkloadConfig workload = sim::MakeUniformWorkload(
      config.num_locals, windows, rate, dist);
  workload.window_len_us = config.window_len_us;
  return workload;
}

TEST(TcpConnChaos, RepeatedMidWindowKillsYieldExactQuantiles) {
  sim::SystemConfig config = ChaosConfig(3);
  sim::WorkloadConfig workload =
      ChaosWorkload(config, /*windows=*/4, /*rate=*/5'000);

  sim::TcpClusterFaultOptions fault;
  auto plan = sim::ParseConnKillSpec("2@2..10");
  ASSERT_TRUE(plan.ok()) << plan.status();
  fault.conn_kill = *plan;
  fault.session.heartbeat_interval_us = MillisUs(20);
  fault.session.auto_reconnect = true;

  auto report = sim::RunTcpConnChaos(config, workload, fault);
  ASSERT_TRUE(report.ok()) << report.status();

  // The invariant is the whole point: faults fired AND results are exact.
  EXPECT_TRUE(report->Invariant()) << report->violation;
  EXPECT_GT(report->conn_kills, 0u);
  EXPECT_GT(report->peer_down, 0u);
  EXPECT_GT(report->reconnects, 0u);
  EXPECT_GT(report->replayed_frames, 0u);
  EXPECT_EQ(report->degraded_windows, 0u);
  EXPECT_EQ(report->mismatched_windows, 0u);
  EXPECT_EQ(report->outputs.size(), workload.ExpectedWindows());
  EXPECT_EQ(report->metrics.windows_emitted, workload.ExpectedWindows());
}

TEST(TcpConnChaos, KillsPlusFrameCorruptionStillExact) {
  // Stack two independent failure modes: severed sockets (recovered by
  // redial + session replay) and CRC-dropped frames (recovered by the
  // retransmit timeout). Both must stay invisible in the results.
  sim::SystemConfig config = ChaosConfig(3);
  sim::WorkloadConfig workload =
      ChaosWorkload(config, /*windows=*/4, /*rate=*/5'000);

  sim::TcpClusterFaultOptions fault;
  auto plan = sim::ParseConnKillSpec("1@3..8");
  ASSERT_TRUE(plan.ok()) << plan.status();
  fault.conn_kill = *plan;
  fault.corrupt_rate = 0.02;
  fault.corrupt_seed = 7;
  fault.session.heartbeat_interval_us = MillisUs(20);
  fault.session.auto_reconnect = true;

  auto report = sim::RunTcpConnChaos(config, workload, fault);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->Invariant()) << report->violation;
  EXPECT_GT(report->conn_kills, 0u);
  EXPECT_GT(report->replayed_frames, 0u);
  EXPECT_EQ(report->degraded_windows, 0u);
  EXPECT_EQ(report->mismatched_windows, 0u);
}

TEST(TcpConnChaos, RejectsFaultFreeAndMisconfiguredRuns) {
  sim::SystemConfig config = ChaosConfig(2);
  sim::WorkloadConfig workload =
      ChaosWorkload(config, /*windows=*/2, /*rate=*/500);

  // No fault at all: a "chaos" run that injects nothing is a config error.
  sim::TcpClusterFaultOptions none;
  EXPECT_FALSE(sim::RunTcpConnChaos(config, workload, none).ok());

  // Conn kills without the resilience knobs could never recover; the
  // harness must refuse up front instead of hanging the cluster.
  sim::TcpClusterFaultOptions no_heartbeat;
  no_heartbeat.conn_kill = *sim::ParseConnKillSpec("1@2..4");
  no_heartbeat.session.auto_reconnect = true;
  EXPECT_FALSE(sim::RunTcpConnChaos(config, workload, no_heartbeat).ok());

  sim::TcpClusterFaultOptions no_redial;
  no_redial.conn_kill = *sim::ParseConnKillSpec("1@2..4");
  no_redial.session.heartbeat_interval_us = MillisUs(20);
  EXPECT_FALSE(sim::RunTcpConnChaos(config, workload, no_redial).ok());
}

TEST(ConnChaosPlan, ParseAndScheduleAreDeterministic) {
  auto plan = sim::ParseConnKillSpec("3@50..400");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->kills, 3u);
  EXPECT_EQ(plan->from_frame, 50u);
  EXPECT_EQ(plan->until_frame, 400u);

  // Single-frame shorthand pins the window to exactly that frame.
  auto pinned = sim::ParseConnKillSpec("1@7");
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->from_frame, 7u);
  EXPECT_EQ(pinned->until_frame, 8u);

  EXPECT_FALSE(sim::ParseConnKillSpec("0@1..5").ok());
  EXPECT_FALSE(sim::ParseConnKillSpec("2@9..3").ok());
  EXPECT_FALSE(sim::ParseConnKillSpec("nonsense").ok());

  // Same plan + same salt => same schedule; different salts de-synchronize
  // the locals so kills do not land in lockstep.
  auto a = sim::BuildKillSchedule(*plan, /*salt=*/1);
  auto b = sim::BuildKillSchedule(*plan, /*salt=*/1);
  auto c = sim::BuildKillSchedule(*plan, /*salt=*/2);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  for (size_t i = 1; i < a.size(); ++i) EXPECT_GT(a[i], a[i - 1]);
  for (uint64_t frame : a) {
    EXPECT_GE(frame, plan->from_frame);
    EXPECT_LT(frame, plan->until_frame);
  }
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace dema
