// Node-level protocol tests: DemaLocalNode and DemaRootNode driven directly
// through a network fabric, message by message.

#include <gtest/gtest.h>

#include "common/clock.h"
#include "dema/local_node.h"
#include "dema/protocol.h"
#include "dema/root_node.h"
#include "net/network.h"

namespace dema::core {
namespace {

class DemaLocalNodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::Network>(&clock_);
    ASSERT_TRUE(network_->RegisterNode(0).ok());
    ASSERT_TRUE(network_->RegisterNode(1).ok());
    DemaLocalNodeOptions opts;
    opts.id = 1;
    opts.root_id = 0;
    opts.window_len_us = SecondsUs(1);
    opts.initial_gamma = 4;
    node_ = std::make_unique<DemaLocalNode>(opts, network_.get(), &clock_);
  }

  /// Pops the next message addressed to the root and parses it as a
  /// synopsis batch.
  SynopsisBatch PopSynopsis() {
    auto msg = network_->Inbox(0)->TryPop();
    EXPECT_TRUE(msg.has_value());
    EXPECT_EQ(msg->type, net::MessageType::kSynopsisBatch);
    net::Reader r(msg->payload);
    auto batch = SynopsisBatch::Deserialize(&r);
    EXPECT_TRUE(batch.ok());
    return std::move(batch).MoveValueUnsafe();
  }

  Event Ev(double v, TimestampUs t, uint32_t seq) { return Event{v, t, 1, seq}; }

  RealClock clock_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<DemaLocalNode> node_;
};

TEST_F(DemaLocalNodeTest, EmitsSortedSlicesOnWindowClose) {
  ASSERT_TRUE(node_->OnEvent(Ev(30, 100, 0)).ok());
  ASSERT_TRUE(node_->OnEvent(Ev(10, 200, 1)).ok());
  ASSERT_TRUE(node_->OnEvent(Ev(20, 300, 2)).ok());
  ASSERT_TRUE(node_->OnEvent(Ev(40, 400, 3)).ok());
  ASSERT_TRUE(node_->OnEvent(Ev(50, 500, 4)).ok());
  ASSERT_TRUE(node_->OnWatermark(SecondsUs(1)).ok());

  SynopsisBatch batch = PopSynopsis();
  EXPECT_EQ(batch.window_id, 0u);
  EXPECT_EQ(batch.node, 1u);
  EXPECT_EQ(batch.local_window_size, 5u);
  ASSERT_EQ(batch.slices.size(), 2u);  // gamma 4: [10,20,30,40] + [50]
  EXPECT_EQ(batch.slices[0].first.value, 10);
  EXPECT_EQ(batch.slices[0].last.value, 40);
  EXPECT_EQ(batch.slices[0].count, 4u);
  EXPECT_EQ(batch.slices[1].count, 1u);
  EXPECT_EQ(node_->retained_windows(), 1u);
}

TEST_F(DemaLocalNodeTest, EmitsEmptyWindowsToKeepRootAligned) {
  // No events at all; the watermark jumps three windows.
  ASSERT_TRUE(node_->OnWatermark(SecondsUs(3)).ok());
  for (net::WindowId id = 0; id < 3; ++id) {
    SynopsisBatch batch = PopSynopsis();
    EXPECT_EQ(batch.window_id, id);
    EXPECT_EQ(batch.local_window_size, 0u);
    EXPECT_TRUE(batch.slices.empty());
  }
  EXPECT_EQ(node_->retained_windows(), 0u);
  EXPECT_FALSE(network_->Inbox(0)->TryPop().has_value());
}

TEST_F(DemaLocalNodeTest, ServesCandidateRequestAndReleases) {
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(node_->OnEvent(Ev(i * 10.0, 100 + i, i)).ok());
  }
  ASSERT_TRUE(node_->OnWatermark(SecondsUs(1)).ok());
  PopSynopsis();

  CandidateRequest req;
  req.window_id = 0;
  req.slice_indices = {1};  // events 4..7 (values 40..70)
  auto msg = net::MakeMessage(net::MessageType::kCandidateRequest, 0, 1, req);
  ASSERT_TRUE(node_->OnMessage(msg).ok());

  auto reply_msg = network_->Inbox(0)->TryPop();
  ASSERT_TRUE(reply_msg.has_value());
  EXPECT_EQ(reply_msg->type, net::MessageType::kCandidateReply);
  net::Reader r(reply_msg->payload);
  auto reply = CandidateReply::Deserialize(&r);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->events.size(), 4u);
  EXPECT_EQ(reply->events[0].value, 40);
  EXPECT_EQ(reply->events[3].value, 70);
  EXPECT_EQ(node_->retained_windows(), 0u);  // released after reply
}

TEST_F(DemaLocalNodeTest, EmptyRequestJustReleases) {
  ASSERT_TRUE(node_->OnEvent(Ev(1, 100, 0)).ok());
  ASSERT_TRUE(node_->OnEvent(Ev(2, 200, 1)).ok());
  ASSERT_TRUE(node_->OnWatermark(SecondsUs(1)).ok());
  PopSynopsis();

  CandidateRequest req;
  req.window_id = 0;
  auto msg = net::MakeMessage(net::MessageType::kCandidateRequest, 0, 1, req);
  ASSERT_TRUE(node_->OnMessage(msg).ok());
  EXPECT_EQ(node_->retained_windows(), 0u);
  EXPECT_FALSE(network_->Inbox(0)->TryPop().has_value());  // no reply
}

TEST_F(DemaLocalNodeTest, RequestForUnknownWindowFails) {
  CandidateRequest req;
  req.window_id = 42;
  req.slice_indices = {0};
  auto msg = net::MakeMessage(net::MessageType::kCandidateRequest, 0, 1, req);
  EXPECT_EQ(node_->OnMessage(msg).code(), StatusCode::kNotFound);
}

TEST_F(DemaLocalNodeTest, GammaUpdateAppliesToFutureWindows) {
  GammaUpdate update;
  update.effective_from = 1;
  update.gamma = 2;
  auto msg = net::MakeMessage(net::MessageType::kGammaUpdate, 0, 1, update);
  ASSERT_TRUE(node_->OnMessage(msg).ok());
  EXPECT_EQ(node_->GammaForWindow(0), 4u);  // initial gamma still applies
  EXPECT_EQ(node_->GammaForWindow(1), 2u);
  EXPECT_EQ(node_->GammaForWindow(5), 2u);

  // Window 0 closes with gamma 4; window 1 with gamma 2.
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(node_->OnEvent(Ev(i, 100 + i, i)).ok());
  }
  ASSERT_TRUE(node_->OnWatermark(SecondsUs(1)).ok());
  EXPECT_EQ(PopSynopsis().slices.size(), 1u);
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(node_->OnEvent(Ev(i, SecondsUs(1) + i, 10 + i)).ok());
  }
  ASSERT_TRUE(node_->OnWatermark(SecondsUs(2)).ok());
  EXPECT_EQ(PopSynopsis().slices.size(), 2u);
}

TEST_F(DemaLocalNodeTest, StaleGammaUpdateCannotRewriteShippedWindows) {
  ASSERT_TRUE(node_->OnEvent(Ev(1, 100, 0)).ok());
  ASSERT_TRUE(node_->OnEvent(Ev(2, 150, 1)).ok());
  ASSERT_TRUE(node_->OnWatermark(SecondsUs(1)).ok());
  PopSynopsis();  // window 0 shipped with gamma 4

  GammaUpdate update;
  update.effective_from = 0;  // stale: window 0 already shipped
  update.gamma = 2;
  auto msg = net::MakeMessage(net::MessageType::kGammaUpdate, 0, 1, update);
  ASSERT_TRUE(node_->OnMessage(msg).ok());

  // A candidate request for window 0 must still use gamma 4 slice ranges.
  CandidateRequest req;
  req.window_id = 0;
  req.slice_indices = {0};
  auto req_msg = net::MakeMessage(net::MessageType::kCandidateRequest, 0, 1, req);
  ASSERT_TRUE(node_->OnMessage(req_msg).ok());
  auto reply_msg = network_->Inbox(0)->TryPop();
  ASSERT_TRUE(reply_msg.has_value());
  net::Reader r(reply_msg->payload);
  auto reply = CandidateReply::Deserialize(&r);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->events.size(), 2u);  // whole window = slice 0 under gamma 4
}

class DemaRootNodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::Network>(&clock_);
    ASSERT_TRUE(network_->RegisterNode(0).ok());
    ASSERT_TRUE(network_->RegisterNode(1).ok());
    ASSERT_TRUE(network_->RegisterNode(2).ok());
    DemaRootNodeOptions opts;
    opts.id = 0;
    opts.locals = {1, 2};
    opts.quantiles = {0.5};
    opts.initial_gamma = 4;
    opts.tolerate_duplicates = false;  // strict mode: protocol violations fail
    root_ = std::make_unique<DemaRootNode>(opts, network_.get(), &clock_);
    root_->SetResultCallback(
        [this](const sim::WindowOutput& out) { outputs_.push_back(out); });
  }

  /// Builds and delivers a synopsis batch for a sorted run of values.
  void SendWindow(NodeId node, net::WindowId wid,
                  const std::vector<double>& sorted_values, uint64_t gamma = 4) {
    SynopsisBatch batch;
    batch.window_id = wid;
    batch.node = node;
    batch.local_window_size = sorted_values.size();
    batch.gamma_used = static_cast<uint32_t>(gamma);
    batch.close_time_us = clock_.NowUs();
    std::vector<Event> events;
    for (uint32_t i = 0; i < sorted_values.size(); ++i) {
      events.push_back(Event{sorted_values[i], 0, node, i});
    }
    if (!events.empty()) {
      auto slices = CutIntoSlices(events, node, gamma);
      ASSERT_TRUE(slices.ok());
      batch.slices = *slices;
    }
    stored_[{node, wid}] = events;
    auto msg = net::MakeMessage(net::MessageType::kSynopsisBatch, node, 0, batch);
    ASSERT_TRUE(root_->OnMessage(msg).ok());
  }

  /// Serves every outstanding candidate request like a local node would.
  void ServeRequests(uint64_t gamma = 4) {
    for (NodeId node : {1u, 2u}) {
      while (auto msg = network_->Inbox(node)->TryPop()) {
        if (msg->type != net::MessageType::kCandidateRequest) continue;
        net::Reader r(msg->payload);
        auto req = CandidateRequest::Deserialize(&r);
        ASSERT_TRUE(req.ok());
        if (req->slice_indices.empty()) continue;
        const auto& events = stored_[{node, req->window_id}];
        CandidateReply reply;
        reply.window_id = req->window_id;
        reply.node = node;
        for (uint32_t idx : req->slice_indices) {
          auto [b, e] = SliceEventRange(events.size(), gamma, idx);
          reply.events.insert(reply.events.end(), events.begin() + b,
                              events.begin() + e);
        }
        auto reply_msg =
            net::MakeMessage(net::MessageType::kCandidateReply, node, 0, reply);
        ASSERT_TRUE(root_->OnMessage(reply_msg).ok());
      }
    }
  }

  RealClock clock_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<DemaRootNode> root_;
  std::vector<sim::WindowOutput> outputs_;
  std::map<std::pair<NodeId, net::WindowId>, std::vector<Event>> stored_;
};

TEST_F(DemaRootNodeTest, WaitsForAllLocalsBeforeIdentification) {
  SendWindow(1, 0, {1, 2, 3, 4});
  EXPECT_FALSE(root_->idle());
  EXPECT_TRUE(outputs_.empty());
  // No candidate requests yet.
  EXPECT_FALSE(network_->Inbox(1)->TryPop().has_value());
  SendWindow(2, 0, {5, 6, 7, 8});
  // Now identification ran and requests are pending.
  ServeRequests();
  ASSERT_EQ(outputs_.size(), 1u);
  EXPECT_EQ(outputs_[0].global_size, 8u);
  EXPECT_EQ(outputs_[0].values[0], 4);  // rank ceil(0.5*8)=4 -> value 4
}

TEST_F(DemaRootNodeTest, EmptyGlobalWindowEmitsImmediately) {
  SendWindow(1, 0, {});
  SendWindow(2, 0, {});
  ASSERT_EQ(outputs_.size(), 1u);
  EXPECT_EQ(outputs_[0].global_size, 0u);
  EXPECT_TRUE(root_->idle());
}

TEST_F(DemaRootNodeTest, OneEmptyLocalStillWorks) {
  SendWindow(1, 0, {10, 20, 30});
  SendWindow(2, 0, {});
  ServeRequests();
  ASSERT_EQ(outputs_.size(), 1u);
  EXPECT_EQ(outputs_[0].values[0], 20);  // rank 2 of {10,20,30}
}

TEST_F(DemaRootNodeTest, WindowsCompleteOutOfOrder) {
  SendWindow(1, 0, {1, 2});
  SendWindow(1, 1, {3, 4});
  SendWindow(2, 1, {5, 6});  // window 1 complete first
  ServeRequests();
  ASSERT_EQ(outputs_.size(), 1u);
  EXPECT_EQ(outputs_[0].window_id, 1u);
  SendWindow(2, 0, {7, 8});
  ServeRequests();
  ASSERT_EQ(outputs_.size(), 2u);
  EXPECT_EQ(outputs_[1].window_id, 0u);
  EXPECT_TRUE(root_->idle());
}

TEST_F(DemaRootNodeTest, DuplicateSynopsisRejected) {
  SendWindow(1, 0, {1, 2});
  SynopsisBatch dup;
  dup.window_id = 0;
  dup.node = 1;
  dup.local_window_size = 0;
  dup.gamma_used = 4;  // structurally valid, so the duplicate check decides
  auto msg = net::MakeMessage(net::MessageType::kSynopsisBatch, 1, 0, dup);
  EXPECT_EQ(root_->OnMessage(msg).code(), StatusCode::kAlreadyExists);
}

TEST_F(DemaRootNodeTest, SynopsisFromUnknownNodeRejected) {
  // An unknown sender is dropped and counted, never a root failure: the
  // window must stay alive for the real locals.
  SynopsisBatch batch;
  batch.window_id = 0;
  batch.node = 99;
  batch.gamma_used = 4;
  auto msg = net::MakeMessage(net::MessageType::kSynopsisBatch, 99, 0, batch);
  EXPECT_TRUE(root_->OnMessage(msg).ok());
  EXPECT_EQ(root_->stats().rejected_payloads, 1u);
  EXPECT_EQ(
      root_->registry()->GetCounter("dema.rejected{reason=unknown_node}")->Value(),
      1u);
  // The run is intact: the same window still completes from the real locals.
  SendWindow(1, 0, {1, 2});
  SendWindow(2, 0, {3, 4});
  ServeRequests();
  ASSERT_EQ(outputs_.size(), 1u);
  EXPECT_FALSE(outputs_[0].degraded);
}

TEST_F(DemaRootNodeTest, ReplyForUnknownWindowRejected) {
  CandidateReply reply;
  reply.window_id = 9;
  reply.node = 1;
  auto msg = net::MakeMessage(net::MessageType::kCandidateReply, 1, 0, reply);
  EXPECT_EQ(root_->OnMessage(msg).code(), StatusCode::kNotFound);
}

TEST_F(DemaRootNodeTest, StatsAccumulate) {
  SendWindow(1, 0, {1, 2, 3, 4, 5, 6, 7, 8});
  SendWindow(2, 0, {11, 12, 13, 14});
  ServeRequests();
  const DemaRootStats& stats = root_->stats();
  EXPECT_EQ(stats.windows, 1u);
  EXPECT_EQ(stats.global_events, 12u);
  EXPECT_EQ(stats.synopsis_slices, 3u);  // 2 + 1
  EXPECT_GE(stats.candidate_slices, 1u);
  EXPECT_GE(stats.candidate_events, 1u);
}

TEST_F(DemaRootNodeTest, StatsMirrorRegistryCounters) {
  SendWindow(1, 0, {1, 2, 3, 4});
  SendWindow(2, 0, {5, 6, 7, 8});
  ServeRequests();
  auto counters = root_->registry()->CounterValues();
  const DemaRootStats stats = root_->stats();
  EXPECT_EQ(counters.at("dema.windows"), stats.windows);
  EXPECT_EQ(counters.at("dema.global_events"), stats.global_events);
  EXPECT_EQ(counters.at("dema.synopsis_slices"), stats.synopsis_slices);
  EXPECT_EQ(counters.at("dema.candidate_slices"), stats.candidate_slices);
  EXPECT_EQ(counters.at("dema.candidate_events"), stats.candidate_events);
}

TEST_F(DemaRootNodeTest, GammaBroadcastCountsOneUpdatePerLocal) {
  // Regression: BroadcastGamma bumped gamma_updates_sent once per broadcast
  // while the per-node path counts individual messages. Both must count
  // messages, so with two locals one broadcast costs two updates.
  DemaRootNodeOptions opts;
  opts.id = 0;
  opts.locals = {1, 2};
  opts.quantiles = {0.5};
  opts.initial_gamma = 4;
  opts.adaptive_gamma = true;
  root_ = std::make_unique<DemaRootNode>(opts, network_.get(), &clock_);

  // A completed 800-event window moves the controller far from gamma 4
  // (optimum ~ sqrt(2 * 800 / m)), forcing exactly one broadcast.
  std::vector<double> run1, run2;
  for (int i = 0; i < 400; ++i) run1.push_back(i);
  for (int i = 0; i < 400; ++i) run2.push_back(1000 + i);
  SendWindow(1, 0, run1);
  SendWindow(2, 0, run2);
  ServeRequests();

  EXPECT_EQ(root_->stats().windows, 1u);
  EXPECT_EQ(root_->stats().gamma_updates_sent, opts.locals.size());
}

TEST(DemaRootNodeClock, PeerCloseAheadClampsLatencyToZero) {
  // A local's close stamp can run ahead of the root's clock (distinct
  // machines under RealClock). Regression: the latency subtraction used to
  // wrap negative; it must clamp to 0 and count the skewed window.
  VirtualClock clock(1'000);
  net::Network network(&clock);
  ASSERT_TRUE(network.RegisterNode(0).ok());
  ASSERT_TRUE(network.RegisterNode(1).ok());
  DemaRootNodeOptions opts;
  opts.locals = {1};
  opts.quantiles = {0.5};
  DemaRootNode root(opts, &network, &clock);
  std::vector<sim::WindowOutput> outputs;
  root.SetResultCallback(
      [&](const sim::WindowOutput& out) { outputs.push_back(out); });

  SynopsisBatch batch;
  batch.window_id = 0;
  batch.node = 1;
  batch.local_window_size = 0;
  batch.gamma_used = 4;
  batch.close_time_us = 5'000;  // 4ms ahead of the root's clock
  auto msg = net::MakeMessage(net::MessageType::kSynopsisBatch, 1, 0, batch);
  ASSERT_TRUE(root.OnMessage(msg).ok());

  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].latency_us, 0);
  EXPECT_EQ(root.stats().clock_skew_windows, 1u);

  // A window closed behind the clock keeps its real latency and does not
  // count as skewed.
  clock.SetUs(10'000);
  SynopsisBatch ok_batch;
  ok_batch.window_id = 1;
  ok_batch.node = 1;
  ok_batch.local_window_size = 0;
  ok_batch.gamma_used = 4;
  ok_batch.close_time_us = 8'000;
  auto ok_msg =
      net::MakeMessage(net::MessageType::kSynopsisBatch, 1, 0, ok_batch);
  ASSERT_TRUE(root.OnMessage(ok_msg).ok());
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(outputs[1].latency_us, 2'000);
  EXPECT_EQ(root.stats().clock_skew_windows, 1u);
}

TEST(DemaRootNodeValidation, BadQuantilesFailAtConstruction) {
  // Regression: quantiles were validated per window inside RunIdentification,
  // so a bad value only surfaced after deployment, mid-protocol. The
  // constructor must arm the node with a sticky error instead.
  RealClock clock;
  net::Network network(&clock);
  ASSERT_TRUE(network.RegisterNode(0).ok());
  ASSERT_TRUE(network.RegisterNode(1).ok());

  auto first_message_status = [&](DemaRootNodeOptions opts) {
    opts.id = 0;
    opts.locals = {1};
    DemaRootNode root(opts, &network, &clock);
    SynopsisBatch batch;
    batch.window_id = 0;
    batch.node = 1;
    batch.local_window_size = 0;
    auto msg = net::MakeMessage(net::MessageType::kSynopsisBatch, 1, 0, batch);
    EXPECT_EQ(root.init_status().code(), root.OnMessage(msg).code());
    return root.OnMessage(msg);
  };

  DemaRootNodeOptions too_big;
  too_big.quantiles = {0.5, 1.5};
  EXPECT_EQ(first_message_status(too_big).code(), StatusCode::kInvalidArgument);

  DemaRootNodeOptions zero;
  zero.quantiles = {0.0};
  EXPECT_EQ(first_message_status(zero).code(), StatusCode::kInvalidArgument);

  DemaRootNodeOptions none;
  none.quantiles = {};
  EXPECT_EQ(first_message_status(none).code(), StatusCode::kInvalidArgument);

  DemaRootNodeOptions naive_multi;
  naive_multi.quantiles = {0.5, 0.9};
  naive_multi.use_naive_selection = true;
  EXPECT_EQ(first_message_status(naive_multi).code(),
            StatusCode::kInvalidArgument);

  // The boundary q = 1.0 (the maximum) stays valid.
  DemaRootNodeOptions max_q;
  max_q.quantiles = {1.0};
  EXPECT_TRUE(first_message_status(max_q).ok());
}

}  // namespace
}  // namespace dema::core
