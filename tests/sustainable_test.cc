// Tests for the maximum-sustainable-throughput search (the paper's
// throughput metric, after Karimov et al.).

#include <gtest/gtest.h>

#include "sim/sustainable.h"

namespace dema::sim {
namespace {

gen::DistributionParams Uniform01k() {
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kUniform;
  dist.lo = 0;
  dist.hi = 1000;
  return dist;
}

TEST(Sustainable, RejectsBadInterval) {
  SystemConfig config;
  SustainableSearchOptions opts;
  opts.lo_rate = 0;
  EXPECT_FALSE(FindSustainableThroughput(config, Uniform01k(), opts).ok());
  opts.lo_rate = 100;
  opts.hi_rate = 50;
  EXPECT_FALSE(FindSustainableThroughput(config, Uniform01k(), opts).ok());
}

TEST(Sustainable, FindsACrossoverWithinBracket) {
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = 2;
  config.gamma = 1'000;
  SustainableSearchOptions opts;
  opts.lo_rate = 1'000;
  opts.hi_rate = 100'000'000;  // absurdly high so the search must bisect
  opts.windows = 2;
  auto result = FindSustainableThroughput(config, Uniform01k(), opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->per_node_rate_eps, opts.lo_rate);
  EXPECT_LT(result->per_node_rate_eps, opts.hi_rate);
  EXPECT_GT(result->probes, 2);
  EXPECT_DOUBLE_EQ(result->total_rate_eps, result->per_node_rate_eps * 2);
}

TEST(Sustainable, DemaSustainsMoreThanScotty) {
  SustainableSearchOptions opts;
  opts.lo_rate = 10'000;
  opts.hi_rate = 64'000'000;
  opts.windows = 2;
  opts.tolerance = 0.2;

  SystemConfig dema_cfg;
  dema_cfg.kind = SystemKind::kDema;
  dema_cfg.num_locals = 4;
  dema_cfg.gamma = 10'000;
  auto dema_result = FindSustainableThroughput(dema_cfg, Uniform01k(), opts);
  ASSERT_TRUE(dema_result.ok()) << dema_result.status();

  SystemConfig scotty_cfg;
  scotty_cfg.kind = SystemKind::kCentralExact;
  scotty_cfg.num_locals = 4;
  auto scotty_result = FindSustainableThroughput(scotty_cfg, Uniform01k(), opts);
  ASSERT_TRUE(scotty_result.ok()) << scotty_result.status();

  EXPECT_GT(dema_result->total_rate_eps, scotty_result->total_rate_eps * 1.5);
}

}  // namespace
}  // namespace dema::sim
