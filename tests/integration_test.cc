// End-to-end pipeline tests: every system runs the same deterministic
// workload through the synchronous driver and must agree with a full-sort
// oracle (exact systems bit-for-bit, sketch systems within error bounds).

#include <gtest/gtest.h>

#include <cmath>

#include "common/clock.h"
#include "sim/driver.h"
#include "sim/topology.h"
#include "stream/quantile.h"

namespace dema {
namespace {

using sim::SystemConfig;
using sim::SystemKind;
using sim::WorkloadConfig;

/// Runs one system over the workload with event recording and returns the
/// outputs plus oracle values per window.
struct RunResult {
  std::vector<sim::WindowOutput> outputs;
  std::vector<std::vector<double>> oracle;  // [window][quantile]
  uint64_t events = 0;
};

RunResult RunWithOracle(const SystemConfig& config, const WorkloadConfig& load) {
  RealClock clock;
  net::Network network(&clock);
  auto system_result = sim::BuildSystem(config, &network, &clock, 0);
  EXPECT_TRUE(system_result.ok()) << system_result.status();
  sim::System system = std::move(system_result).MoveValueUnsafe();

  WorkloadConfig workload = load;
  workload.window_len_us = config.window_len_us;
  sim::SyncDriver driver(&system, &network, &clock);
  driver.set_record_events(true);
  Status st = driver.Run(workload);
  EXPECT_TRUE(st.ok()) << st;

  RunResult result;
  result.outputs = driver.outputs();
  result.events = driver.events_ingested();
  for (const auto& window_events : driver.recorded_events()) {
    std::vector<double> values;
    values.reserve(window_events.size());
    for (const Event& e : window_events) values.push_back(e.value);
    std::vector<double> per_q;
    for (double q : config.quantiles) {
      if (values.empty()) {
        per_q.push_back(0.0);
      } else {
        auto oracle = stream::ExactQuantileValues(values, q);
        EXPECT_TRUE(oracle.ok());
        per_q.push_back(*oracle);
      }
    }
    result.oracle.push_back(per_q);
  }
  return result;
}

WorkloadConfig DefaultWorkload(size_t locals, uint64_t windows = 5,
                               double event_rate = 5000) {
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kSensorWalk;
  dist.lo = 0;
  dist.hi = 1000;
  dist.stddev = 5;
  return sim::MakeUniformWorkload(locals, windows, event_rate, dist);
}

void ExpectExact(const RunResult& run, size_t num_windows, size_t num_quantiles) {
  ASSERT_EQ(run.outputs.size(), num_windows);
  ASSERT_EQ(run.oracle.size(), num_windows);
  for (const auto& out : run.outputs) {
    ASSERT_LT(out.window_id, num_windows);
    ASSERT_EQ(out.values.size(), num_quantiles);
    for (size_t qi = 0; qi < num_quantiles; ++qi) {
      EXPECT_DOUBLE_EQ(out.values[qi], run.oracle[out.window_id][qi])
          << "window " << out.window_id << " quantile index " << qi;
    }
  }
}

TEST(Integration, DemaMatchesOracleMedian) {
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = 2;
  config.gamma = 100;
  auto run = RunWithOracle(config, DefaultWorkload(2));
  ExpectExact(run, 5, 1);
}

TEST(Integration, CentralExactMatchesOracle) {
  SystemConfig config;
  config.kind = SystemKind::kCentralExact;
  config.num_locals = 2;
  auto run = RunWithOracle(config, DefaultWorkload(2));
  ExpectExact(run, 5, 1);
}

TEST(Integration, DesisMatchesOracle) {
  SystemConfig config;
  config.kind = SystemKind::kDesisMerge;
  config.num_locals = 2;
  auto run = RunWithOracle(config, DefaultWorkload(2));
  ExpectExact(run, 5, 1);
}

TEST(Integration, TDigestCentralIsClose) {
  SystemConfig config;
  config.kind = SystemKind::kTDigestCentral;
  config.num_locals = 2;
  config.tdigest_compression = 200;
  auto run = RunWithOracle(config, DefaultWorkload(2));
  ASSERT_EQ(run.outputs.size(), 5u);
  for (const auto& out : run.outputs) {
    double exact = run.oracle[out.window_id][0];
    // Median over [0, 1000]-ranged values: within 5% of the value range.
    EXPECT_NEAR(out.values[0], exact, 50.0) << "window " << out.window_id;
  }
}

TEST(Integration, TDigestDecentralIsClose) {
  SystemConfig config;
  config.kind = SystemKind::kTDigestDecentral;
  config.num_locals = 3;
  config.tdigest_compression = 200;
  auto run = RunWithOracle(config, DefaultWorkload(3));
  ASSERT_EQ(run.outputs.size(), 5u);
  for (const auto& out : run.outputs) {
    double exact = run.oracle[out.window_id][0];
    EXPECT_NEAR(out.values[0], exact, 50.0) << "window " << out.window_id;
  }
}

TEST(Integration, QDigestIsCloseWithinUniverseBound) {
  SystemConfig config;
  config.kind = SystemKind::kQDigest;
  config.num_locals = 3;
  config.qdigest_lo = 0;
  config.qdigest_hi = 1000;  // matches the workload domain
  config.qdigest_bits = 16;
  config.qdigest_k = 256;
  auto run = RunWithOracle(config, DefaultWorkload(3));
  ASSERT_EQ(run.outputs.size(), 5u);
  for (const auto& out : run.outputs) {
    double exact = run.oracle[out.window_id][0];
    // q-digest rank error <= bits/k = 6.25%; sensorwalk medians sit in a
    // dense region, so 10% of the value range is a generous envelope.
    EXPECT_NEAR(out.values[0], exact, 100.0) << "window " << out.window_id;
  }
}

TEST(Integration, DemaIncrementalSortModeMatchesOracle) {
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = 2;
  config.gamma = 100;
  config.sort_mode = stream::SortMode::kIncremental;
  auto run = RunWithOracle(config, DefaultWorkload(2));
  ExpectExact(run, 5, 1);
}

TEST(Integration, CompactWireCodecStaysExactEverywhere) {
  for (auto kind : {SystemKind::kDema, SystemKind::kCentralExact,
                    SystemKind::kDesisMerge}) {
    SystemConfig config;
    config.kind = kind;
    config.num_locals = 2;
    config.gamma = 100;
    config.wire_codec = net::EventCodec::kCompact;
    auto run = RunWithOracle(config, DefaultWorkload(2));
    ExpectExact(run, 5, 1);
  }
}

TEST(Integration, DemaMultiQuantile) {
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = 3;
  config.gamma = 64;
  config.quantiles = {0.25, 0.5, 0.75};
  auto run = RunWithOracle(config, DefaultWorkload(3));
  ExpectExact(run, 5, 3);
}

TEST(Integration, DemaAdaptiveGammaStaysExact) {
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = 2;
  config.gamma = 1000;
  config.adaptive_gamma = true;
  auto run = RunWithOracle(config, DefaultWorkload(2, /*windows=*/10));
  ExpectExact(run, 10, 1);
}

TEST(Integration, DemaNaiveSelectionStaysExact) {
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = 2;
  config.gamma = 100;
  config.naive_selection = true;
  auto run = RunWithOracle(config, DefaultWorkload(2));
  ExpectExact(run, 5, 1);
}

// --- Property sweep: Dema exactness across distributions, gamma, node
// counts, quantiles, and scale-rate overlap patterns. -----------------------

struct SweepParam {
  gen::DistributionKind dist;
  size_t locals;
  uint64_t gamma;
  double quantile;
  std::vector<double> scale_rates;
  const char* name;
};

class DemaExactnessSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DemaExactnessSweep, MatchesOracle) {
  const SweepParam& p = GetParam();
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = p.locals;
  config.gamma = p.gamma;
  config.quantiles = {p.quantile};

  gen::DistributionParams dist;
  dist.kind = p.dist;
  dist.lo = 0;
  dist.hi = 1000;
  dist.mean = 500;
  dist.stddev = p.dist == gen::DistributionKind::kSensorWalk ? 5 : 150;
  dist.lambda = 0.01;
  WorkloadConfig load =
      sim::MakeUniformWorkload(p.locals, /*windows=*/4, /*event_rate=*/3000,
                               dist, p.scale_rates);
  auto run = RunWithOracle(config, load);
  ExpectExact(run, 4, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, DemaExactnessSweep,
    ::testing::Values(
        SweepParam{gen::DistributionKind::kUniform, 2, 50, 0.5, {}, "uniform"},
        SweepParam{gen::DistributionKind::kNormal, 2, 50, 0.5, {}, "normal"},
        SweepParam{gen::DistributionKind::kExponential, 2, 50, 0.5, {}, "exp"},
        SweepParam{gen::DistributionKind::kZipf, 2, 50, 0.5, {}, "zipf"},
        SweepParam{gen::DistributionKind::kSensorWalk, 2, 50, 0.5, {}, "walk"}),
    [](const auto& info) { return info.param.name; });

INSTANTIATE_TEST_SUITE_P(
    GammaAndTopology, DemaExactnessSweep,
    ::testing::Values(
        SweepParam{gen::DistributionKind::kUniform, 2, 2, 0.5, {}, "gamma2"},
        SweepParam{gen::DistributionKind::kUniform, 2, 3, 0.5, {}, "gamma3"},
        SweepParam{gen::DistributionKind::kUniform, 2, 100000, 0.5, {}, "gammaHuge"},
        SweepParam{gen::DistributionKind::kUniform, 1, 64, 0.5, {}, "oneLocal"},
        SweepParam{gen::DistributionKind::kUniform, 7, 64, 0.5, {}, "sevenLocals"},
        SweepParam{gen::DistributionKind::kNormal, 5, 17, 0.5, {}, "oddGamma"}),
    [](const auto& info) { return info.param.name; });

INSTANTIATE_TEST_SUITE_P(
    Quantiles, DemaExactnessSweep,
    ::testing::Values(
        SweepParam{gen::DistributionKind::kUniform, 3, 64, 0.01, {}, "q01"},
        SweepParam{gen::DistributionKind::kUniform, 3, 64, 0.25, {}, "q25"},
        SweepParam{gen::DistributionKind::kUniform, 3, 64, 0.30, {}, "q30"},
        SweepParam{gen::DistributionKind::kUniform, 3, 64, 0.75, {}, "q75"},
        SweepParam{gen::DistributionKind::kUniform, 3, 64, 0.99, {}, "q99"},
        SweepParam{gen::DistributionKind::kUniform, 3, 64, 1.0, {}, "q100"}),
    [](const auto& info) { return info.param.name; });

INSTANTIATE_TEST_SUITE_P(
    ScaleRates, DemaExactnessSweep,
    ::testing::Values(
        SweepParam{
            gen::DistributionKind::kSensorWalk, 2, 64, 0.3, {1, 2}, "skew2"},
        SweepParam{
            gen::DistributionKind::kSensorWalk, 2, 64, 0.3, {1, 10}, "skew10"},
        SweepParam{gen::DistributionKind::kUniform, 4, 64, 0.5,
                   {1, 1, 5, 5}, "twoClusters"},
        SweepParam{gen::DistributionKind::kUniform, 3, 64, 0.5,
                   {1, 100, 10000}, "disjointRanges"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace dema
