// Unit tests for the data generators: distributions, the DEBS-like stream
// generator (scale rate, event rate, determinism), and CSV replay.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gen/csv_source.h"
#include "gen/distribution.h"
#include "gen/generator.h"

namespace dema::gen {
namespace {

TEST(Distribution, KindNamesRoundTrip) {
  for (auto kind :
       {DistributionKind::kUniform, DistributionKind::kNormal,
        DistributionKind::kExponential, DistributionKind::kZipf,
        DistributionKind::kSensorWalk}) {
    auto parsed = DistributionKindFromString(DistributionKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(DistributionKindFromString("gaussian").ok());
}

TEST(Distribution, UniformStaysInRange) {
  DistributionParams p;
  p.kind = DistributionKind::kUniform;
  p.lo = 10;
  p.hi = 20;
  auto dist = ValueDistribution::Create(p);
  ASSERT_TRUE(dist.ok());
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    double v = (*dist)->Next(&rng);
    EXPECT_GE(v, 10);
    EXPECT_LT(v, 20);
  }
}

TEST(Distribution, SensorWalkStaysInRangeAndMovesSmoothly) {
  DistributionParams p;
  p.kind = DistributionKind::kSensorWalk;
  p.lo = 0;
  p.hi = 100;
  p.stddev = 1;
  p.kick_prob = 0;
  auto dist = ValueDistribution::Create(p);
  ASSERT_TRUE(dist.ok());
  Rng rng(5);
  double prev = (*dist)->Next(&rng);
  int big_jumps = 0;
  for (int i = 0; i < 5000; ++i) {
    double v = (*dist)->Next(&rng);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 100);
    if (std::abs(v - prev) > 10) ++big_jumps;
    prev = v;
  }
  EXPECT_EQ(big_jumps, 0);  // without kicks, steps stay small
}

TEST(Distribution, ZipfIsHeadHeavy) {
  DistributionParams p;
  p.kind = DistributionKind::kZipf;
  p.lo = 0;
  p.hi = 1000;
  p.zipf_s = 1.2;
  p.zipf_n = 1000;
  auto dist = ValueDistribution::Create(p);
  ASSERT_TRUE(dist.ok());
  Rng rng(11);
  int in_head = 0;
  constexpr int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    double v = (*dist)->Next(&rng);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1000);
    if (v < 100) ++in_head;  // bottom 10% of the value range
  }
  // A 1.2-skewed Zipf puts far more than 10% of mass in the head.
  EXPECT_GT(in_head, kDraws / 2);
}

TEST(Distribution, NormalRoughlyCentered) {
  DistributionParams p;
  p.kind = DistributionKind::kNormal;
  p.mean = 50;
  p.stddev = 5;
  auto dist = ValueDistribution::Create(p);
  ASSERT_TRUE(dist.ok());
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += (*dist)->Next(&rng);
  EXPECT_NEAR(sum / 10000, 50, 0.5);
}

TEST(Distribution, InvalidParamsRejected) {
  DistributionParams p;
  p.kind = DistributionKind::kUniform;
  p.lo = 5;
  p.hi = 5;
  EXPECT_FALSE(ValueDistribution::Create(p).ok());
  p.kind = DistributionKind::kNormal;
  p.stddev = 0;
  EXPECT_FALSE(ValueDistribution::Create(p).ok());
  p.kind = DistributionKind::kExponential;
  p.lambda = -1;
  EXPECT_FALSE(ValueDistribution::Create(p).ok());
  p.kind = DistributionKind::kZipf;
  p.lo = 0;
  p.hi = 10;
  p.zipf_s = 0;
  EXPECT_FALSE(ValueDistribution::Create(p).ok());
}

GeneratorConfig BaseConfig() {
  GeneratorConfig cfg;
  cfg.node = 3;
  cfg.seed = 77;
  cfg.distribution.kind = DistributionKind::kUniform;
  cfg.distribution.lo = 0;
  cfg.distribution.hi = 1;
  cfg.event_rate = 1000;  // 1 event per millisecond
  return cfg;
}

TEST(Generator, StampsNodeAndMonotoneSeq) {
  auto gen = StreamGenerator::Create(BaseConfig());
  ASSERT_TRUE(gen.ok());
  for (uint32_t i = 0; i < 100; ++i) {
    Event e = (*gen)->Next();
    EXPECT_EQ(e.node, 3u);
    EXPECT_EQ(e.seq, i);
  }
}

TEST(Generator, EventTimeAdvancesAtEventRate) {
  auto gen = StreamGenerator::Create(BaseConfig());
  ASSERT_TRUE(gen.ok());
  Event first = (*gen)->Next();
  EXPECT_EQ(first.timestamp, 0);
  Event second = (*gen)->Next();
  EXPECT_EQ(second.timestamp, 1000);  // 1/event_rate seconds
}

TEST(Generator, ScaleRateMultipliesValues) {
  GeneratorConfig cfg = BaseConfig();
  auto base = StreamGenerator::Create(cfg);
  cfg.scale_rate = 10;
  auto scaled = StreamGenerator::Create(cfg);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(scaled.ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ((*scaled)->Next().value, (*base)->Next().value * 10);
  }
}

TEST(Generator, DeterministicPerSeed) {
  auto a = StreamGenerator::Create(BaseConfig());
  auto b = StreamGenerator::Create(BaseConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ((*a)->Next(), (*b)->Next());
  }
}

TEST(Generator, GenerateWindowRespectsBounds) {
  auto gen = StreamGenerator::Create(BaseConfig());
  ASSERT_TRUE(gen.ok());
  auto events = (*gen)->GenerateWindow(0, SecondsUs(1));
  EXPECT_EQ(events.size(), 1000u);  // event_rate * window length
  for (const Event& e : events) {
    EXPECT_GE(e.timestamp, 0);
    EXPECT_LT(e.timestamp, SecondsUs(1));
  }
  auto next = (*gen)->GenerateWindow(SecondsUs(1), SecondsUs(1));
  EXPECT_EQ(next.size(), 1000u);
  EXPECT_GE(next.front().timestamp, SecondsUs(1));
}

TEST(Generator, JitterKeepsTimesIncreasing) {
  GeneratorConfig cfg = BaseConfig();
  cfg.time_jitter = 0.5;
  auto gen = StreamGenerator::Create(cfg);
  ASSERT_TRUE(gen.ok());
  TimestampUs prev = -1;
  for (int i = 0; i < 1000; ++i) {
    Event e = (*gen)->Next();
    EXPECT_GT(e.timestamp, prev);
    prev = e.timestamp;
  }
}

TEST(Generator, InvalidConfigRejected) {
  GeneratorConfig cfg = BaseConfig();
  cfg.event_rate = 0;
  EXPECT_FALSE(StreamGenerator::Create(cfg).ok());
  cfg = BaseConfig();
  cfg.time_jitter = 1.5;
  EXPECT_FALSE(StreamGenerator::Create(cfg).ok());
  cfg = BaseConfig();
  cfg.scale_rate = 0;
  EXPECT_FALSE(StreamGenerator::Create(cfg).ok());
}

TEST(CsvSource, ParsesValueTimestampRows) {
  auto src = CsvReplaySource::FromString(
      "# comment\n"
      "1.5,100\n"
      "2.5,200\n"
      "\n"
      "3.5,300\n",
      {});
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->size(), 3u);
  Event e = src->Next();
  EXPECT_DOUBLE_EQ(e.value, 1.5);
  EXPECT_EQ(e.timestamp, 0);  // rebased
  e = src->Next();
  EXPECT_DOUBLE_EQ(e.value, 2.5);
  EXPECT_EQ(e.timestamp, 100);
}

TEST(CsvSource, ThirdColumnIgnored) {
  auto src = CsvReplaySource::FromString("7.0,50,sensor-12\n", {});
  ASSERT_TRUE(src.ok());
  EXPECT_DOUBLE_EQ(src->Next().value, 7.0);
}

TEST(CsvSource, RejectsMalformedRows) {
  EXPECT_FALSE(CsvReplaySource::FromString("no-comma\n", {}).ok());
  EXPECT_FALSE(CsvReplaySource::FromString("abc,100\n", {}).ok());
  EXPECT_FALSE(CsvReplaySource::FromString("1.0,xyz\n", {}).ok());
  EXPECT_FALSE(CsvReplaySource::FromString("", {}).ok());
}

TEST(CsvSource, StartOffsetReplaysFromDifferentPosition) {
  CsvReplaySource::Options opts;
  opts.start_offset = 1;
  auto src = CsvReplaySource::FromString("1.0,0\n2.0,10\n3.0,20\n", opts);
  ASSERT_TRUE(src.ok());
  EXPECT_DOUBLE_EQ(src->Next().value, 2.0);
  EXPECT_DOUBLE_EQ(src->Next().value, 3.0);
  EXPECT_DOUBLE_EQ(src->Next().value, 1.0);  // wrapped
}

TEST(CsvSource, WrapAroundKeepsTimeMonotone) {
  auto src = CsvReplaySource::FromString("1.0,0\n2.0,10\n", {});
  ASSERT_TRUE(src.ok());
  TimestampUs prev = -1;
  for (int i = 0; i < 10; ++i) {
    Event e = src->Next();
    EXPECT_GT(e.timestamp, prev);
    prev = e.timestamp;
  }
}

TEST(CsvSource, ScaleRateApplied) {
  CsvReplaySource::Options opts;
  opts.scale_rate = 4;
  auto src = CsvReplaySource::FromString("2.0,0\n", opts);
  ASSERT_TRUE(src.ok());
  EXPECT_DOUBLE_EQ(src->Next().value, 8.0);
}

TEST(CsvSource, OpenMissingFileFails) {
  auto src = CsvReplaySource::Open("/nonexistent/file.csv", {});
  EXPECT_EQ(src.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dema::gen
