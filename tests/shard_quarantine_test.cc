// Shard-aware quarantine: a tampering local's corruption lands in exactly
// one key's entry per keyed frame (the fabric flips the first entry's
// declared node id, CRC stays valid). The affected per-key roots must strike
// and quarantine the local under their own shard's `{shard=S}` instruments,
// while every other key — including keys sharing the very same frames and
// keys on other shards — keeps emitting byte-identical exact results.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/clock.h"
#include "net/network.h"
#include "obs/registry.h"
#include "shard/config.h"
#include "shard/key.h"
#include "shard/sim_run.h"
#include "sim/driver.h"
#include "sim/topology.h"

namespace dema {
namespace {

gen::DistributionParams TestDistribution() {
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kSensorWalk;
  dist.lo = 0;
  dist.hi = 1000;
  dist.stddev = 5;
  return dist;
}

std::vector<sim::WindowOutput> BaselineForKey(const shard::ShardedConfig& sc,
                                              net::KeyId key,
                                              const shard::KeyedWorkloadConfig& load) {
  sim::SystemConfig config;
  config.num_locals = sc.num_locals;
  config.window_len_us = sc.window_len_us;
  config.quantiles = sc.quantiles;
  config.gamma = sc.gamma;
  config.sort_mode = sc.sort_mode;
  // Baseline runs on an honest fabric: no quarantine knobs needed.
  RealClock clock;
  net::Network network(&clock);
  auto system_result = sim::BuildSystem(config, &network, &clock, 0);
  EXPECT_TRUE(system_result.ok()) << system_result.status();
  sim::System system = std::move(system_result).MoveValueUnsafe();
  sim::WorkloadConfig workload = sim::MakeUniformWorkload(
      config.num_locals, load.num_windows, load.event_rate, load.distribution,
      {}, load.seed_base + key * shard::kKeySeedStride);
  workload.window_len_us = config.window_len_us;
  sim::SyncDriver driver(&system, &network, &clock);
  Status st = driver.Run(workload);
  EXPECT_TRUE(st.ok()) << st;
  return driver.outputs();
}

/// True when `outputs` is bit-for-bit the honest single-key run: same
/// windows, same sizes, same values, never degraded, zero rank error.
bool MatchesBaseline(const std::vector<sim::WindowOutput>& outputs,
                     const std::vector<sim::WindowOutput>& baseline) {
  if (outputs.size() != baseline.size()) return false;
  for (size_t w = 0; w < baseline.size(); ++w) {
    const auto& got = outputs[w];
    const auto& want = baseline[w];
    if (got.window_id != want.window_id) return false;
    if (got.global_size != want.global_size) return false;
    if (got.degraded || got.rank_error_bound != 0) return false;
    if (got.values != want.values) return false;
  }
  return true;
}

TEST(ShardQuarantine, TamperedKeyStruckPerShardOthersStayExact) {
  shard::ShardedConfig sc;
  sc.num_locals = 3;
  sc.num_shards = 4;
  sc.num_keys = 16;
  sc.workers = 2;
  sc.quantiles = {0.5};
  sc.gamma = 32;
  sc.root_quarantine_strikes = 1;  // first bad payload quarantines

  shard::ShardedSimHarness harness(sc);
  ASSERT_TRUE(harness.init_status().ok()) << harness.init_status();

  const NodeId tamperer = 2;
  harness.network()->SetNodeTamper(tamperer, true);

  shard::KeyedWorkloadConfig load;
  load.num_windows = 3;
  load.event_rate = 500;
  load.distribution = TestDistribution();
  load.seed_base = 31337;
  Status st = harness.Run(load);
  ASSERT_TRUE(st.ok()) << st;
  // Quarantine sweeps pending windows, so every key still emits every
  // window (victims emit best-effort results excluding the tamperer).
  EXPECT_EQ(harness.service()->windows_emitted(),
            load.num_windows * sc.num_keys);

  // The deterministic synopsis victim of shard s is its lowest-owned key:
  // the local batches per-shard frames in ascending key order and the
  // fabric tampers each frame's first entry.
  std::vector<net::KeyId> synopsis_victim(sc.num_shards, ~0ull);
  for (net::KeyId key = 0; key < sc.num_keys; ++key) {
    uint32_t s = shard::ShardOfKey(key, sc.num_shards);
    if (synopsis_victim[s] == ~0ull) synopsis_victim[s] = key;
  }

  obs::Registry* reg = harness.registry();
  std::vector<std::set<net::KeyId>> affected(sc.num_shards);
  for (net::KeyId key = 0; key < sc.num_keys; ++key) {
    auto baseline = BaselineForKey(sc, key, load);
    if (!MatchesBaseline(harness.outputs_by_key()[key], baseline)) {
      affected[shard::ShardOfKey(key, sc.num_shards)].insert(key);
    }
  }

  for (uint32_t s = 0; s < sc.num_shards; ++s) {
    const std::string label = "{" + shard::ShardLabel(s) + "}";
    // Every shard struck and quarantined the tamperer under its own label.
    const obs::Counter* rejected = reg->FindCounter("dema.rejected" + label);
    ASSERT_NE(rejected, nullptr) << "shard " << s;
    EXPECT_GE(rejected->Value(), 1u) << "shard " << s;
    const obs::Counter* quarantined =
        reg->FindCounter("dema.quarantined" + label);
    ASSERT_NE(quarantined, nullptr) << "shard " << s;
    EXPECT_GE(quarantined->Value(), 1u) << "shard " << s;

    // The synopsis victim is always hit...
    EXPECT_TRUE(affected[s].count(synopsis_victim[s]))
        << "shard " << s << " lowest key " << synopsis_victim[s]
        << " should have lost the tamperer's contribution";
    // ...and the blast radius is bounded: one synopsis victim plus at most
    // one candidate-reply victim per window. Everything else is exact.
    EXPECT_LE(affected[s].size(), 1 + load.num_windows)
        << "shard " << s << " quarantine leaked across keys";
  }

  // Per-shard isolation of the instruments themselves: strikes recorded
  // under one shard's label never bleed into another registry family.
  uint64_t total_quarantines = 0;
  for (uint32_t s = 0; s < sc.num_shards; ++s) {
    const obs::Counter* c =
        reg->FindCounter("dema.quarantined{" + shard::ShardLabel(s) + "}");
    if (c != nullptr) total_quarantines += c->Value();
  }
  uint64_t total_affected = 0;
  for (const auto& keys : affected) total_affected += keys.size();
  EXPECT_GE(total_quarantines, total_affected)
      << "every affected key's root must have quarantined the tamperer";
}

TEST(ShardQuarantine, HonestFabricHasNoStrikes) {
  shard::ShardedConfig sc;
  sc.num_locals = 2;
  sc.num_shards = 2;
  sc.num_keys = 4;
  sc.workers = 2;
  sc.root_quarantine_strikes = 2;

  shard::ShardedSimHarness harness(sc);
  ASSERT_TRUE(harness.init_status().ok()) << harness.init_status();
  shard::KeyedWorkloadConfig load;
  load.num_windows = 2;
  load.event_rate = 300;
  load.distribution = TestDistribution();
  ASSERT_TRUE(harness.Run(load).ok());

  for (uint32_t s = 0; s < sc.num_shards; ++s) {
    const std::string label = "{" + shard::ShardLabel(s) + "}";
    const obs::Counter* rejected =
        harness.registry()->FindCounter("dema.rejected" + label);
    if (rejected != nullptr) {
      EXPECT_EQ(rejected->Value(), 0u);
    }
    const obs::Counter* quarantined =
        harness.registry()->FindCounter("dema.quarantined" + label);
    if (quarantined != nullptr) {
      EXPECT_EQ(quarantined->Value(), 0u);
    }
  }
}

}  // namespace
}  // namespace dema
