// Session-resilience tests for the TCP transport: heartbeat liveness and
// RTT probing, silent-peer detection, chaos-injected connection kills with
// auto-reconnect + acked-frame replay (exactly-once delivery), and loopback
// cluster parity with the whole resilience layer switched on — control
// traffic must stay invisible to the byte-parity accounting.
//
// Thread-based only (no forking), so this binary runs under the sanitizer
// and TSan lanes; the forked connection-chaos parity run lives in
// tcp_conn_chaos_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "gen/generator.h"
#include "net/message.h"
#include "net/network.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/driver.h"
#include "sim/tcp_run.h"
#include "sim/topology.h"
#include "transport/tcp.h"

namespace dema::transport {
namespace {

net::Message TestMessage(NodeId src, NodeId dst, size_t payload_bytes) {
  net::Message m;
  m.type = net::MessageType::kEventBatch;
  m.src = src;
  m.dst = dst;
  m.payload.assign(payload_bytes, 0xAB);
  return m;
}

/// Polls \p pred every 10ms for up to \p deadline_ms; true when it held.
bool WaitFor(const std::function<bool()>& pred, int deadline_ms = 5000) {
  for (int waited = 0; waited < deadline_ms; waited += 10) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

TEST(TcpResilience, HeartbeatsMeasureRttAndStayOffTheBooks) {
  TcpTransportOptions sopts;
  sopts.heartbeat_interval_us = MillisUs(10);
  TcpTransport server(sopts);
  ASSERT_TRUE(server.AddLocalNode(0).ok());
  ASSERT_TRUE(server.Start().ok());

  TcpTransportOptions copts;
  copts.listen = false;
  copts.heartbeat_interval_us = MillisUs(10);
  TcpTransport client(copts);
  ASSERT_TRUE(client.AddLocalNode(1).ok());
  ASSERT_TRUE(client.AddPeer(0, "127.0.0.1", server.bound_port()).ok());
  ASSERT_TRUE(client.Start().ok());

  net::Message m = TestMessage(1, 0, 32);
  const uint64_t wire = m.WireBytes();
  ASSERT_TRUE(client.Send(std::move(m)).ok());
  ASSERT_TRUE(server.Inbox(0)->PopFor(5 * kMicrosPerSecond).has_value());

  // The connection idles; pings flow both ways and each side reads the RTT
  // off its own pong echo (monotonic clock, no clock sharing).
  EXPECT_TRUE(WaitFor([&] {
    return client.registry()->GetCounter("net.heartbeats")->Value() >= 2 &&
           server.registry()->GetCounter("net.heartbeats")->Value() >= 2 &&
           client.registry()->GetGauge("net.peer_rtt_us{peer=0}")->Value() > 0 &&
           server.registry()->GetGauge("net.peer_rtt_us{peer=1}")->Value() > 0;
  })) << "heartbeats never probed the idle connection";

  client.Shutdown();
  server.Shutdown();

  // Control frames (heartbeats, acks) are transport-internal: the per-link
  // accounting both parity checks build on must only see the data frame.
  const std::pair<NodeId, NodeId> up{1, 0};
  auto client_sent = client.LinkTraffic();
  ASSERT_EQ(client_sent.count(up), 1u);
  EXPECT_EQ(client_sent[up].bytes, wire);
  EXPECT_EQ(client_sent[up].messages, 1u);
  auto server_recv = server.ReceivedTraffic();
  ASSERT_EQ(server_recv.count(up), 1u);
  EXPECT_EQ(server_recv[up].bytes, wire);
  EXPECT_EQ(server_recv[up].messages, 1u);
}

TEST(TcpResilience, SilentPeerIsDeclaredDownAfterMissedHeartbeats) {
  TcpTransport server;
  ASSERT_TRUE(server.AddLocalNode(0).ok());
  ASSERT_TRUE(server.Start().ok());

  TcpTransportOptions copts;
  copts.listen = false;
  copts.heartbeat_interval_us = MillisUs(5);
  copts.heartbeat_misses = 3;
  TcpTransport client(copts);
  ASSERT_TRUE(client.AddLocalNode(1).ok());
  ASSERT_TRUE(client.AddPeer(0, "127.0.0.1", server.bound_port()).ok());
  ASSERT_TRUE(client.Start().ok());

  ASSERT_TRUE(client.Send(TestMessage(1, 0, 16)).ok());
  ASSERT_TRUE(server.Inbox(0)->PopFor(5 * kMicrosPerSecond).has_value());

  // Freeze the server's I/O loop: its socket stays open (the kernel still
  // ACKs at the TCP level) but nothing ever answers — the failure mode of a
  // wedged process, which a plain closed-socket check can never see.
  server.StopLoopForTest();

  EXPECT_TRUE(WaitFor([&] {
    return client.registry()->GetCounter("net.peer_down")->Value() >= 1;
  })) << "silent peer was never declared dead";
  // auto_reconnect is off: detection must not imply redial.
  EXPECT_EQ(client.registry()->GetCounter("net.reconnects")->Value(), 0u);

  client.Shutdown();
  server.Shutdown();
}

TEST(TcpResilience, InjectedConnKillsDeliverEveryMessageExactlyOnce) {
  // Chaos: the client's connection is severed while the stream is in full
  // flight, three times. Auto-reconnect plus the acked-frame replay window
  // must deliver every message exactly once — replayed frames cover the
  // tail the kill swallowed, receiver dedup swallows any double sends.
  TcpTransport server;
  ASSERT_TRUE(server.AddLocalNode(0).ok());
  ASSERT_TRUE(server.Start().ok());

  TcpTransportOptions copts;
  copts.listen = false;
  copts.heartbeat_interval_us = MillisUs(5);
  copts.auto_reconnect = true;
  copts.kill_conn_schedule = {4, 9, 15};
  copts.connect_backoff_initial_us = MillisUs(2);
  copts.connect_backoff_max_us = MillisUs(20);
  TcpTransport client(copts);
  ASSERT_TRUE(client.AddLocalNode(1).ok());
  ASSERT_TRUE(client.AddPeer(0, "127.0.0.1", server.bound_port()).ok());
  ASSERT_TRUE(client.Start().ok());

  // Payload size is the message identity: every size must arrive once.
  constexpr size_t kMessages = 150;
  for (size_t i = 1; i <= kMessages; ++i) {
    ASSERT_TRUE(client.Send(TestMessage(1, 0, i)).ok()) << "send " << i;
  }

  std::set<size_t> seen;
  for (size_t i = 0; i < kMessages; ++i) {
    auto msg = server.Inbox(0)->PopFor(10 * kMicrosPerSecond);
    ASSERT_TRUE(msg.has_value()) << "lost a message after " << seen.size()
                                 << " deliveries";
    EXPECT_EQ(msg->src, 1u);
    auto [_, first] = seen.insert(msg->payload_size());
    EXPECT_TRUE(first) << "duplicate delivery of size " << msg->payload_size();
  }
  EXPECT_EQ(seen.size(), kMessages);
  EXPECT_EQ(*seen.begin(), 1u);
  EXPECT_EQ(*seen.rbegin(), kMessages);
  // Nothing extra arrives after the stream: dedup ate the retransmits.
  EXPECT_FALSE(server.Inbox(0)->PopFor(MillisUs(200)).has_value());

  obs::Registry* creg = client.registry();
  EXPECT_EQ(creg->GetCounter("net.conn_kills{layer=inject}")->Value(), 3u);
  EXPECT_GE(creg->GetCounter("net.reconnects")->Value(), 1u);
  EXPECT_GE(creg->GetCounter("net.replayed_frames")->Value(), 1u);

  client.Shutdown();
  server.Shutdown();
}

TEST(TcpResilience, LoopbackClusterParityHoldsWithHeartbeatsOn) {
  // The whole resilience layer on (heartbeats, acks, redial armed) over a
  // fault-free loopback cluster: quantiles, per-link bytes, and the dema.*
  // protocol counters must still match the deterministic in-process run
  // bit for bit — control traffic is invisible to the accounting.
  constexpr size_t kLocals = 2;
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = kLocals;
  config.gamma = 500;
  config.quantiles = {0.25, 0.5, 0.99};
  config.adaptive_gamma = false;

  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kSensorWalk;
  dist.lo = 0;
  dist.hi = 10'000;
  dist.stddev = 25;
  sim::WorkloadConfig workload = sim::MakeUniformWorkload(
      kLocals, /*num_windows=*/3, /*event_rate=*/3'000, dist);
  workload.window_len_us = config.window_len_us;

  // --- reference: deterministic in-process run ---
  RealClock clock;
  obs::Registry sim_registry;
  obs::TraceRecorder sim_tracer;
  config.registry = &sim_registry;
  config.tracer = &sim_tracer;
  net::Network network(&clock);
  auto system = sim::BuildSystem(config, &network, &clock, 0);
  ASSERT_TRUE(system.ok());
  sim::SyncDriver sync_driver(&*system, &network, &clock);
  ASSERT_TRUE(sync_driver.Run(workload).ok());
  const std::vector<sim::WindowOutput> expected = sync_driver.outputs();
  ASSERT_EQ(expected.size(), workload.ExpectedWindows());
  const LinkTrafficMap sim_links = network.LinkTraffic();
  config.registry = nullptr;
  config.tracer = nullptr;

  // --- TCP run with session resilience on everywhere ---
  sim::TcpSessionTuning session;
  session.heartbeat_interval_us = MillisUs(5);
  session.auto_reconnect = true;

  std::vector<sim::WindowOutput> tcp_outputs;
  uint16_t port = 0;
  std::mutex port_mu;
  std::condition_variable port_cv;

  Result<sim::RunMetrics> root_metrics = Status::Internal("root never ran");
  std::thread root_thread([&] {
    sim::TcpRootOptions opts;
    opts.listen_port = 0;
    opts.session = session;
    opts.on_listening = [&](uint16_t p) {
      std::lock_guard<std::mutex> lock(port_mu);
      port = p;
      port_cv.notify_all();
    };
    opts.on_result = [&](const sim::WindowOutput& out) {
      tcp_outputs.push_back(out);
    };
    root_metrics = sim::RunTcpRoot(config, workload.ExpectedWindows(), opts);
  });
  {
    std::unique_lock<std::mutex> lock(port_mu);
    port_cv.wait(lock, [&] { return port != 0; });
  }

  std::vector<Result<sim::TcpLocalReport>> reports(
      kLocals, Status::Internal("local never ran"));
  std::vector<std::thread> local_threads;
  for (size_t i = 0; i < kLocals; ++i) {
    local_threads.emplace_back([&, i] {
      sim::TcpLocalOptions opts;
      opts.root_port = port;
      opts.session = session;
      reports[i] = sim::RunTcpLocal(config, workload,
                                    static_cast<NodeId>(i + 1), opts);
    });
  }
  root_thread.join();
  for (auto& t : local_threads) t.join();

  ASSERT_TRUE(root_metrics.ok()) << root_metrics.status();
  for (size_t i = 0; i < kLocals; ++i) {
    ASSERT_TRUE(reports[i].ok()) << "local " << i + 1 << ": "
                                 << reports[i].status();
  }

  // Exact quantile parity, window by window.
  ASSERT_EQ(tcp_outputs.size(), expected.size());
  for (size_t w = 0; w < expected.size(); ++w) {
    EXPECT_EQ(tcp_outputs[w].window_id, expected[w].window_id);
    EXPECT_EQ(tcp_outputs[w].global_size, expected[w].global_size);
    ASSERT_EQ(tcp_outputs[w].values.size(), expected[w].values.size());
    for (size_t q = 0; q < expected[w].values.size(); ++q) {
      EXPECT_EQ(tcp_outputs[w].values[q], expected[w].values[q])
          << "window " << w << " quantile " << config.quantiles[q];
    }
  }

  // Per-link byte parity: heartbeat pings, pongs, and cumulative acks all
  // crossed these sockets, and none of them may appear in the accounting.
  for (size_t i = 0; i < kLocals; ++i) {
    const NodeId id = static_cast<NodeId>(i + 1);
    auto sim_it = sim_links.find({id, 0});
    auto tcp_it = reports[i]->sent_links.find({id, 0});
    ASSERT_NE(sim_it, sim_links.end());
    ASSERT_NE(tcp_it, reports[i]->sent_links.end());
    EXPECT_EQ(tcp_it->second.bytes, sim_it->second.bytes)
        << "local " << id << " -> root byte mismatch with heartbeats on";
    EXPECT_EQ(tcp_it->second.messages, sim_it->second.messages);
  }

  // dema.* protocol counter parity.
  ASSERT_NE(root_metrics->registry, nullptr);
  std::map<std::string, uint64_t> sim_dema, tcp_dema;
  for (const auto& [name, value] : sim_registry.CounterValues()) {
    if (name.rfind("dema.", 0) == 0) sim_dema[name] = value;
  }
  for (const auto& [name, value] : root_metrics->registry->CounterValues()) {
    if (name.rfind("dema.", 0) == 0) tcp_dema[name] = value;
  }
  EXPECT_FALSE(sim_dema.empty());
  EXPECT_EQ(sim_dema, tcp_dema);

  // Control frames really crossed these sockets during the run (the root
  // acks every read pass; heartbeats additionally fire on idle gaps), so
  // the parity above proves they stayed off the books rather than holding
  // vacuously.
  EXPECT_GT(root_metrics->registry->GetCounter("net.acks")->Value(), 0u);
}

}  // namespace
}  // namespace dema::transport
