// Unit tests for the common runtime: Status/Result, statistics, RNG, clocks,
// table formatting.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>

#include "common/clock.h"
#include "common/event.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"

namespace dema {
namespace {

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("gamma must be >= 2");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.ToString(), "InvalidArgument: gamma must be >= 2");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    DEMA_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, AssignOrReturnMacro) {
  auto make = [](bool ok) -> Result<std::string> {
    if (ok) return std::string("value");
    return Status::Internal("nope");
  };
  auto use = [&](bool ok) -> Status {
    DEMA_ASSIGN_OR_RETURN(std::string s, make(ok));
    EXPECT_EQ(s, "value");
    return Status::OK();
  };
  EXPECT_TRUE(use(true).ok());
  EXPECT_EQ(use(false).code(), StatusCode::kInternal);
}

TEST(Event, TotalOrderBreaksTiesDeterministically) {
  Event a{1.0, 10, 1, 0};
  Event b{1.0, 10, 1, 1};
  Event c{1.0, 10, 2, 0};
  Event d{1.0, 11, 1, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, d);
  EXPECT_LT(c, d);  // timestamp compares before node
  Event e{0.5, 99, 9, 9};
  EXPECT_LT(e, a);  // value dominates
}

TEST(OnlineStats, WelfordMatchesDirectComputation) {
  OnlineStats stats;
  std::vector<double> xs = {1, 2, 3, 4, 5, 100, -7};
  double sum = 0;
  for (double x : xs) {
    stats.Add(x);
    sum += x;
  }
  double mean = sum / xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), var, 1e-9);
  EXPECT_EQ(stats.min(), -7);
  EXPECT_EQ(stats.max(), 100);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(7);
  OnlineStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Normal(5, 3);
    whole.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a, empty;
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  OnlineStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 3.0);
}

TEST(PercentileTracker, ExactOrderStatistics) {
  PercentileTracker t;
  for (int i = 100; i >= 1; --i) t.Add(i);
  EXPECT_EQ(t.Percentile(0.0), 1);
  EXPECT_EQ(t.Percentile(1.0), 100);
  EXPECT_NEAR(t.Percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(t.Mean(), 50.5, 1e-9);
}

TEST(PercentileTracker, EmptyIsZero) {
  PercentileTracker t;
  EXPECT_EQ(t.Percentile(0.5), 0.0);
  EXPECT_EQ(t.Mean(), 0.0);
}

TEST(LatencyRecorder, SummaryPercentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.Record(i * 1000);
  auto s = rec.Summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.p50_us, 50500, 1000);
  EXPECT_NEAR(s.p99_us, 99010, 1000);
  EXPECT_EQ(s.max_us, 100000);
}

TEST(MpeAccumulator, AccuracyDefinition) {
  MpeAccumulator acc;
  acc.Add(100, 100);  // exact
  acc.Add(100, 90);   // 10% error
  EXPECT_NEAR(acc.Mpe(), 0.05, 1e-12);
  EXPECT_NEAR(acc.Accuracy(), 0.95, 1e-12);
}

TEST(MpeAccumulator, ZeroReferenceFallsBackToAbsolute) {
  MpeAccumulator acc;
  acc.Add(0, 0.25);
  EXPECT_NEAR(acc.Mpe(), 0.25, 1e-12);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1'000'000), b.UniformInt(0, 1'000'000));
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.UniformInt(0, 1'000'000) != c.UniformInt(0, 1'000'000)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(VirtualClock, AdvancesManually) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.NowUs(), 100);
  clock.AdvanceUs(50);
  EXPECT_EQ(clock.NowUs(), 150);
  clock.SetUs(10);
  EXPECT_EQ(clock.NowUs(), 10);
}

TEST(RealClock, MonotoneNonDecreasing) {
  RealClock clock;
  TimestampUs a = clock.NowUs();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  TimestampUs b = clock.NowUs();
  EXPECT_GE(b, a + 1000);
}

TEST(TimeHelpers, Conversions) {
  EXPECT_EQ(SecondsUs(2), 2'000'000);
  EXPECT_EQ(MillisUs(3), 3'000);
  EXPECT_DOUBLE_EQ(ToSeconds(1'500'000), 1.5);
  EXPECT_DOUBLE_EQ(ToMillis(1'500), 1.5);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_TRUE(t.AddRow({"1", "2"}).ok());
  EXPECT_FALSE(t.AddRow({"1"}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, PrintsAlignedAscii) {
  Table t({"name", "value"});
  ASSERT_TRUE(t.AddRow({"alpha", "1"}).ok());
  ASSERT_TRUE(t.AddRow({"b", "12345"}).ok());
  std::ostringstream os;
  t.Print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 12345 |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"x"});
  ASSERT_TRUE(t.AddRow({"has,comma"}).ok());
  ASSERT_TRUE(t.AddRow({"has\"quote"}).ok());
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(Format, Helpers) {
  EXPECT_EQ(FmtF(3.14159, 2), "3.14");
  EXPECT_EQ(FmtCount(1234567), "1,234,567");
  EXPECT_EQ(FmtCount(12), "12");
  EXPECT_EQ(FmtBytes(512), "512 B");
  EXPECT_EQ(FmtBytes(1536), "1.50 KiB");
  EXPECT_EQ(FmtRate(2'500'000), "2.50M ev/s");
  EXPECT_EQ(FmtRate(2'500), "2.50K ev/s");
}

}  // namespace
}  // namespace dema
