// Unit tests for slice construction and synopsis serialization.

#include <gtest/gtest.h>

#include "dema/slice.h"
#include "net/serializer.h"

namespace dema::core {
namespace {

std::vector<Event> MakeSorted(size_t n) {
  std::vector<Event> events;
  for (uint32_t i = 0; i < n; ++i) {
    events.push_back(Event{static_cast<double>(i), static_cast<TimestampUs>(i), 1, i});
  }
  return events;
}

TEST(CutIntoSlices, PaperExample) {
  // l = 1000, gamma = 150 -> 7 slices: 6 x 150 + 1 x 100 (Section 3.1).
  auto slices = CutIntoSlices(MakeSorted(1000), 7, 150);
  ASSERT_TRUE(slices.ok());
  ASSERT_EQ(slices->size(), 7u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ((*slices)[i].count, 150u);
    EXPECT_EQ((*slices)[i].index, i);
    EXPECT_EQ((*slices)[i].node, 7u);
  }
  EXPECT_EQ((*slices)[6].count, 100u);
}

TEST(CutIntoSlices, ExactMultiple) {
  auto slices = CutIntoSlices(MakeSorted(300), 1, 100);
  ASSERT_TRUE(slices.ok());
  ASSERT_EQ(slices->size(), 3u);
  for (const auto& s : *slices) EXPECT_EQ(s.count, 100u);
}

TEST(CutIntoSlices, FirstLastMatchBoundaries) {
  auto events = MakeSorted(10);
  auto slices = CutIntoSlices(events, 1, 4);
  ASSERT_TRUE(slices.ok());
  ASSERT_EQ(slices->size(), 3u);
  EXPECT_EQ((*slices)[0].first, events[0]);
  EXPECT_EQ((*slices)[0].last, events[3]);
  EXPECT_EQ((*slices)[1].first, events[4]);
  EXPECT_EQ((*slices)[2].first, events[8]);
  EXPECT_EQ((*slices)[2].last, events[9]);
  EXPECT_EQ((*slices)[2].count, 2u);
}

TEST(CutIntoSlices, SingleTrailingEventAllowed) {
  auto slices = CutIntoSlices(MakeSorted(5), 1, 2);
  ASSERT_TRUE(slices.ok());
  ASSERT_EQ(slices->size(), 3u);
  EXPECT_EQ(slices->back().count, 1u);
  EXPECT_EQ(slices->back().first, slices->back().last);
}

TEST(CutIntoSlices, EmptyWindowYieldsNoSlices) {
  auto slices = CutIntoSlices({}, 1, 10);
  ASSERT_TRUE(slices.ok());
  EXPECT_TRUE(slices->empty());
}

TEST(CutIntoSlices, GammaBelowTwoRejected) {
  EXPECT_FALSE(CutIntoSlices(MakeSorted(10), 1, 1).ok());
  EXPECT_FALSE(CutIntoSlices(MakeSorted(10), 1, 0).ok());
  EXPECT_TRUE(CutIntoSlices(MakeSorted(10), 1, 2).ok());
}

TEST(SliceEventRange, MatchesCutBoundaries) {
  // Window of 10 with gamma 4: [0,4) [4,8) [8,10).
  EXPECT_EQ(SliceEventRange(10, 4, 0), (std::pair<uint64_t, uint64_t>{0, 4}));
  EXPECT_EQ(SliceEventRange(10, 4, 1), (std::pair<uint64_t, uint64_t>{4, 8}));
  EXPECT_EQ(SliceEventRange(10, 4, 2), (std::pair<uint64_t, uint64_t>{8, 10}));
  // Out-of-range index gives an empty range.
  auto [b, e] = SliceEventRange(10, 4, 5);
  EXPECT_GE(b, e);
}

TEST(SliceSynopsis, SerializationRoundTrip) {
  SliceSynopsis s;
  s.node = 3;
  s.index = 7;
  s.first = Event{1.5, 10, 3, 0};
  s.last = Event{9.5, 20, 3, 99};
  s.count = 100;
  net::Writer w;
  s.SerializeTo(&w);
  net::Reader r(w.buffer());
  SliceSynopsis out;
  ASSERT_TRUE(SliceSynopsis::DeserializeInto(&r, &out).ok());
  EXPECT_EQ(out.node, s.node);
  EXPECT_EQ(out.index, s.index);
  EXPECT_EQ(out.first, s.first);
  EXPECT_EQ(out.last, s.last);
  EXPECT_EQ(out.count, s.count);
}

TEST(SliceSynopsis, ZeroCountRejectedOnDeserialize) {
  SliceSynopsis s;
  s.count = 0;
  net::Writer w;
  s.SerializeTo(&w);
  net::Reader r(w.buffer());
  SliceSynopsis out;
  EXPECT_FALSE(SliceSynopsis::DeserializeInto(&r, &out).ok());
}

TEST(SliceSynopsis, WireSizeIsCompact) {
  // A synopsis stands in for up to gamma events; its wire size must be a
  // small constant (2 events + ids + count).
  SliceSynopsis s;
  s.count = 1;
  net::Writer w;
  s.SerializeTo(&w);
  EXPECT_LE(w.size(), 2 * kEventWireBytes + 16);
}

}  // namespace
}  // namespace dema::core
