// Edge-node checkpoint/restore tests: a local node snapshotted mid-stream
// and restored on a "restarted device" must resume the protocol without
// losing exactness, retained windows, or its gamma schedule.

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/rng.h"
#include "dema/local_node.h"
#include "dema/protocol.h"
#include "net/network.h"
#include "net/serializer.h"

namespace dema::core {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::Network>(&clock_);
    ASSERT_TRUE(network_->RegisterNode(0).ok());
    ASSERT_TRUE(network_->RegisterNode(1).ok());
  }

  DemaLocalNodeOptions Options() {
    DemaLocalNodeOptions opts;
    opts.id = 1;
    opts.root_id = 0;
    opts.window_len_us = SecondsUs(1);
    opts.initial_gamma = 4;
    return opts;
  }

  Event Ev(double v, TimestampUs t, uint32_t seq) { return Event{v, t, 1, seq}; }

  /// Drains and parses all synopsis batches queued at the root.
  std::vector<SynopsisBatch> DrainSynopses() {
    std::vector<SynopsisBatch> out;
    while (auto msg = network_->Inbox(0)->TryPop()) {
      if (msg->type != net::MessageType::kSynopsisBatch) continue;
      net::Reader r(msg->payload);
      auto batch = SynopsisBatch::Deserialize(&r);
      EXPECT_TRUE(batch.ok());
      out.push_back(std::move(batch).MoveValueUnsafe());
    }
    return out;
  }

  RealClock clock_;
  std::unique_ptr<net::Network> network_;
};

TEST_F(CheckpointTest, RoundTripPreservesAllState) {
  DemaLocalNode node(Options(), network_.get(), &clock_);
  // Window 0 shipped and retained; window 1 still open; gamma update pending.
  for (uint32_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(node.OnEvent(Ev(i * 10.0, 100 + i, i)).ok());
  }
  ASSERT_TRUE(node.OnWatermark(SecondsUs(1)).ok());
  for (uint32_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(node.OnEvent(Ev(500 + i, SecondsUs(1) + i, 10 + i)).ok());
  }
  GammaUpdate update;
  update.effective_from = 2;
  update.gamma = 2;
  ASSERT_TRUE(
      node.OnMessage(net::MakeMessage(net::MessageType::kGammaUpdate, 0, 1, update))
          .ok());
  DrainSynopses();

  net::Writer w;
  node.Checkpoint(&w);

  // "Restart": a fresh node restored from the snapshot.
  DemaLocalNode restored(Options(), network_.get(), &clock_);
  net::Reader r(w.buffer());
  ASSERT_TRUE(restored.Restore(&r).ok());
  EXPECT_EQ(restored.retained_windows(), 1u);
  EXPECT_EQ(restored.events_ingested(), 9u);
  EXPECT_EQ(restored.GammaForWindow(1), 4u);
  EXPECT_EQ(restored.GammaForWindow(2), 2u);

  // The restored node serves a candidate request for the retained window 0.
  CandidateRequest req;
  req.window_id = 0;
  req.slice_indices = {0};
  ASSERT_TRUE(restored
                  .OnMessage(net::MakeMessage(net::MessageType::kCandidateRequest,
                                              0, 1, req))
                  .ok());
  auto reply_msg = network_->Inbox(0)->TryPop();
  ASSERT_TRUE(reply_msg.has_value());
  net::Reader rr(reply_msg->payload);
  auto reply = CandidateReply::Deserialize(&rr);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->events.size(), 4u);  // slice 0 under gamma 4
  EXPECT_EQ(reply->events[0].value, 0);

  // And it closes the still-open window 1 with the buffered events intact.
  ASSERT_TRUE(restored.OnWatermark(SecondsUs(2)).ok());
  auto synopses = DrainSynopses();
  ASSERT_EQ(synopses.size(), 1u);
  EXPECT_EQ(synopses[0].window_id, 1u);
  EXPECT_EQ(synopses[0].local_window_size, 3u);
}

TEST_F(CheckpointTest, RestoredNodeContinuesIdenticallyToUninterrupted) {
  // Run A: no restart. Run B: checkpoint + restore mid-stream. Both must
  // ship byte-identical synopsis batches afterwards.
  auto feed_phase1 = [&](DemaLocalNode* node) {
    for (uint32_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(node->OnEvent(Ev(100 - i * 3.0, 50 + i, i)).ok());
    }
  };
  auto feed_phase2 = [&](DemaLocalNode* node) {
    for (uint32_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(node->OnEvent(Ev(i * 7.0, 200 + i, 100 + i)).ok());
    }
    ASSERT_TRUE(node->OnWatermark(SecondsUs(1)).ok());
  };

  DemaLocalNode uninterrupted(Options(), network_.get(), &clock_);
  feed_phase1(&uninterrupted);
  feed_phase2(&uninterrupted);
  auto expected = DrainSynopses();

  DemaLocalNode original(Options(), network_.get(), &clock_);
  feed_phase1(&original);
  net::Writer w;
  original.Checkpoint(&w);
  DemaLocalNode restored(Options(), network_.get(), &clock_);
  net::Reader r(w.buffer());
  ASSERT_TRUE(restored.Restore(&r).ok());
  feed_phase2(&restored);
  auto actual = DrainSynopses();

  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].window_id, expected[i].window_id);
    EXPECT_EQ(actual[i].local_window_size, expected[i].local_window_size);
    ASSERT_EQ(actual[i].slices.size(), expected[i].slices.size());
    for (size_t j = 0; j < actual[i].slices.size(); ++j) {
      EXPECT_EQ(actual[i].slices[j].first, expected[i].slices[j].first);
      EXPECT_EQ(actual[i].slices[j].last, expected[i].slices[j].last);
      EXPECT_EQ(actual[i].slices[j].count, expected[i].slices[j].count);
    }
  }
}

TEST_F(CheckpointTest, HistoricWindowsUseOldestKnownGammaAfterPruning) {
  // Regression: once the emit frontier prunes the initial schedule entry,
  // GammaForWindow on a historic id found no entry with effective_from <= id
  // and answered with the *next* (future) entry's gamma. It must fall back
  // to the oldest gamma the node has ever used.
  DemaLocalNode node(Options(), network_.get(), &clock_);  // initial gamma 4
  GammaUpdate update;
  update.effective_from = 5;
  update.gamma = 50;
  ASSERT_TRUE(
      node.OnMessage(net::MakeMessage(net::MessageType::kGammaUpdate, 0, 1, update))
          .ok());
  // Close windows 0..5 so pruning drops the {0 -> 4} entry.
  ASSERT_TRUE(node.OnWatermark(SecondsUs(6)).ok());
  DrainSynopses();
  EXPECT_EQ(node.GammaForWindow(1), 4u);  // pre-fix: 50
  EXPECT_EQ(node.GammaForWindow(7), 50u);

  // The fallback must survive checkpoint/restore (snapshot format v2 carries
  // the oldest-known gamma alongside the pruned schedule). Restore into a
  // node configured with a *different* initial gamma to prove the value
  // comes from the snapshot, not the restored node's own options.
  net::Writer w;
  node.Checkpoint(&w);
  DemaLocalNodeOptions other = Options();
  other.initial_gamma = 8;
  DemaLocalNode restored(other, network_.get(), &clock_);
  net::Reader r(w.buffer());
  ASSERT_TRUE(restored.Restore(&r).ok());
  EXPECT_EQ(restored.GammaForWindow(1), 4u);
  EXPECT_EQ(restored.GammaForWindow(7), 50u);
}

TEST_F(CheckpointTest, GammaScheduleSurvivesRestoreUnderRandomPruning) {
  // Property-style: whatever mix of gamma updates and watermark advances
  // (which prune the schedule) a node has seen, GammaForWindow must answer
  // identically after a checkpoint/restore round trip — including the
  // oldest-known fallback for historic windows whose entries were pruned.
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    DemaLocalNode node(Options(), network_.get(), &clock_);
    net::WindowId frontier = 0;
    for (int step = 0; step < 30; ++step) {
      if (rng.Bernoulli(0.5)) {
        GammaUpdate update;
        update.effective_from =
            frontier + static_cast<net::WindowId>(rng.UniformInt(0, 10));
        update.gamma = static_cast<uint64_t>(2 + rng.UniformInt(0, 100));
        ASSERT_TRUE(node.OnMessage(net::MakeMessage(
                            net::MessageType::kGammaUpdate, 0, 1, update))
                        .ok());
      } else {
        frontier += static_cast<net::WindowId>(rng.UniformInt(0, 3));
        ASSERT_TRUE(
            node.OnWatermark(static_cast<TimestampUs>(frontier) * SecondsUs(1))
                .ok());
      }
    }
    DrainSynopses();

    std::vector<uint64_t> expected;
    for (net::WindowId wid = 0; wid <= 60; ++wid) {
      expected.push_back(node.GammaForWindow(wid));
    }
    net::Writer w;
    node.Checkpoint(&w);
    // A different configured gamma must not leak into restored answers.
    DemaLocalNodeOptions other = Options();
    other.initial_gamma = 97;
    DemaLocalNode restored(other, network_.get(), &clock_);
    net::Reader r(w.buffer());
    ASSERT_TRUE(restored.Restore(&r).ok());
    for (net::WindowId wid = 0; wid <= 60; ++wid) {
      EXPECT_EQ(restored.GammaForWindow(wid), expected[wid])
          << "seed=" << seed << " window=" << wid;
    }
  }
}

TEST_F(CheckpointTest, RejectsForeignBlobs) {
  DemaLocalNode node(Options(), network_.get(), &clock_);
  std::vector<uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8};
  net::Reader r(garbage);
  EXPECT_EQ(node.Restore(&r).code(), StatusCode::kSerializationError);
}

TEST_F(CheckpointTest, RejectsWrongNodeId) {
  DemaLocalNode node(Options(), network_.get(), &clock_);
  net::Writer w;
  node.Checkpoint(&w);

  DemaLocalNodeOptions other = Options();
  other.id = 1;  // registered id; but pretend a different node's snapshot
  DemaLocalNode other_node(other, network_.get(), &clock_);
  // Tamper: rewrite the node-id field (offset 4+1).
  std::vector<uint8_t> bytes = w.TakeBuffer();
  bytes[5] = 42;
  net::Reader r(bytes);
  EXPECT_EQ(other_node.Restore(&r).code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointTest, TruncatedSnapshotsErrorCleanly) {
  DemaLocalNode node(Options(), network_.get(), &clock_);
  for (uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(node.OnEvent(Ev(i, 100 + i, i)).ok());
  }
  ASSERT_TRUE(node.OnWatermark(SecondsUs(1)).ok());
  DrainSynopses();
  net::Writer w;
  node.Checkpoint(&w);
  const auto& full = w.buffer();
  DemaLocalNode target(Options(), network_.get(), &clock_);
  for (size_t cut = 0; cut < full.size(); cut += 5) {
    net::Reader r(full.data(), cut);
    EXPECT_FALSE(target.Restore(&r).ok()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace dema::core
