// Coverage for smaller API surfaces: TimeAdvance payloads, per-link
// enumeration, window-id peeking, file-backed CSV paths, and window-manager
// snapshots in isolation.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/clock.h"
#include "common/table.h"
#include "gen/csv_source.h"
#include "net/message.h"
#include "net/network.h"
#include "stream/window_manager.h"

namespace dema {
namespace {

TEST(TimeAdvance, RoundTrip) {
  net::TimeAdvance advance;
  advance.watermark_us = 123456;
  advance.final_marker = true;
  net::Writer w;
  advance.SerializeTo(&w);
  net::Reader r(w.buffer());
  auto out = net::TimeAdvance::Deserialize(&r);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->watermark_us, 123456);
  EXPECT_TRUE(out->final_marker);
}

TEST(PeekWindowId, ReadsHeaderOnly) {
  net::EventBatch batch;
  batch.window_id = 77;
  batch.events = {Event{1, 2, 3, 4}};
  net::Message m = net::MakeMessage(net::MessageType::kEventBatch, 1, 0, batch);
  auto id = net::EventBatch::PeekWindowId(m.payload);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 77u);
  std::vector<uint8_t> tiny = {1, 2};
  EXPECT_FALSE(net::EventBatch::PeekWindowId(tiny).ok());
}

TEST(NetworkAllLinks, EnumeratesDirectedLinks) {
  RealClock clock;
  net::Network network(&clock);
  ASSERT_TRUE(network.RegisterNode(0).ok());
  ASSERT_TRUE(network.RegisterNode(1).ok());
  ASSERT_TRUE(network.RegisterNode(2).ok());
  auto send = [&](NodeId src, NodeId dst) {
    net::Message m;
    m.type = net::MessageType::kWindowEnd;
    m.src = src;
    m.dst = dst;
    m.payload.resize(8);
    ASSERT_TRUE(network.Send(std::move(m)).ok());
  };
  send(1, 0);
  send(1, 0);
  send(2, 0);
  send(0, 2);
  auto links = network.AllLinks();
  ASSERT_EQ(links.size(), 3u);
  auto messages_on = [&](NodeId src, NodeId dst) {
    return links[std::make_pair(src, dst)].counters.messages;
  };
  EXPECT_EQ(messages_on(1, 0), 2u);
  EXPECT_EQ(messages_on(2, 0), 1u);
  EXPECT_EQ(messages_on(0, 2), 1u);
}

TEST(TableFile, WriteCsvCreatesReadableFile) {
  Table t({"a", "b"});
  ASSERT_TRUE(t.AddRow({"1", "x,y"}).ok());
  std::string path = ::testing::TempDir() + "/dema_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,\"x,y\"");
  std::remove(path.c_str());
  EXPECT_FALSE(t.WriteCsv("/nonexistent-dir/x.csv").ok());
}

TEST(CsvSourceFile, OpensFromDisk) {
  std::string path = ::testing::TempDir() + "/dema_replay_test.csv";
  {
    std::ofstream out(path);
    out << "# header comment\n1.5,1000\n2.5,2000\n";
  }
  auto src = gen::CsvReplaySource::Open(path, {});
  ASSERT_TRUE(src.ok()) << src.status();
  EXPECT_EQ(src->size(), 2u);
  EXPECT_DOUBLE_EQ(src->Next().value, 1.5);
  std::remove(path.c_str());
}

TEST(WindowManagerSnapshot, RoundTripPreservesBufferedEvents) {
  stream::WindowManager wm(SecondsUs(1));
  wm.OnEvent(Event{5, 100, 1, 0});
  wm.OnEvent(Event{3, SecondsUs(1) + 10, 1, 1});
  wm.AdvanceWatermark(MillisUs(500));

  net::Writer w;
  wm.SerializeTo(&w);

  stream::WindowManager restored(SecondsUs(1));
  net::Reader r(w.buffer());
  ASSERT_TRUE(restored.RestoreFrom(&r).ok());
  EXPECT_EQ(restored.watermark_us(), MillisUs(500));
  EXPECT_EQ(restored.open_windows(), 2u);
  EXPECT_EQ(restored.buffered_events(), 2u);
  auto closed = restored.AdvanceWatermark(SecondsUs(2));
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].sorted_events[0].value, 5);
  EXPECT_EQ(closed[1].sorted_events[0].value, 3);
}

TEST(WindowManagerSnapshot, RejectsTruncation) {
  stream::WindowManager wm(SecondsUs(1));
  wm.OnEvent(Event{1, 10, 1, 0});
  net::Writer w;
  wm.SerializeTo(&w);
  stream::WindowManager restored(SecondsUs(1));
  net::Reader r(w.buffer().data(), w.size() - 3);
  EXPECT_FALSE(restored.RestoreFrom(&r).ok());
}

}  // namespace
}  // namespace dema
