// Randomized end-to-end soak: seeded configuration matrix across every Dema
// feature axis — topology size, gamma, quantile sets, sliding windows, wire
// codec, adaptive / per-node gamma, duplicate injection, bounded disorder —
// every combination must produce oracle-exact results.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/clock.h"
#include "common/rng.h"
#include "sim/driver.h"
#include "sim/topology.h"
#include "stream/quantile.h"
#include "stream/window.h"

namespace dema {
namespace {

struct SoakCase {
  uint64_t seed;
  sim::SystemConfig config;
  sim::WorkloadConfig load;
  std::string description;
};

/// Draws one full configuration from the seed.
SoakCase DrawCase(uint64_t seed) {
  Rng rng(seed);
  SoakCase c;
  c.seed = seed;
  c.config.kind = sim::SystemKind::kDema;
  c.config.num_locals = static_cast<size_t>(rng.UniformInt(1, 6));
  c.config.gamma = static_cast<uint64_t>(rng.UniformInt(2, 2000));

  size_t num_quantiles = static_cast<size_t>(rng.UniformInt(1, 3));
  c.config.quantiles.clear();
  for (size_t i = 0; i < num_quantiles; ++i) {
    c.config.quantiles.push_back(rng.Uniform(0.01, 1.0));
  }
  bool sliding = rng.Bernoulli(0.3);
  if (sliding) {
    c.config.window_slide_us = kMicrosPerSecond / rng.UniformInt(2, 4);
  }
  c.config.wire_codec =
      rng.Bernoulli(0.5) ? net::EventCodec::kCompact : net::EventCodec::kFixed;
  c.config.adaptive_gamma = rng.Bernoulli(0.5);
  c.config.per_node_gamma = c.config.adaptive_gamma && rng.Bernoulli(0.5);

  gen::DistributionParams dist;
  switch (rng.UniformInt(0, 3)) {
    case 0:
      dist.kind = gen::DistributionKind::kUniform;
      break;
    case 1:
      dist.kind = gen::DistributionKind::kNormal;
      break;
    case 2:
      dist.kind = gen::DistributionKind::kZipf;
      break;
    default:
      dist.kind = gen::DistributionKind::kSensorWalk;
      dist.stddev = 10;
      break;
  }
  dist.lo = 0;
  dist.hi = 1000;
  std::vector<double> scale_rates;
  for (size_t i = 0; i < c.config.num_locals; ++i) {
    scale_rates.push_back(rng.Bernoulli(0.3) ? rng.Uniform(1, 10) : 1.0);
  }
  c.load = sim::MakeUniformWorkload(
      c.config.num_locals, /*num_windows=*/static_cast<uint64_t>(rng.UniformInt(2, 5)),
      /*event_rate=*/static_cast<double>(rng.UniformInt(500, 4000)), dist,
      scale_rates, /*seed_base=*/seed * 31);
  c.load.window_len_us = c.config.window_len_us;
  c.load.window_slide_us = c.config.window_slide_us;
  if (rng.Bernoulli(0.3)) {
    // Disorder composes with every other axis, including sliding windows.
    c.load.max_disorder_us = MillisUs(rng.UniformInt(10, 80));
    c.load.allowed_lateness_us = c.load.max_disorder_us;
  }

  c.description = "locals=" + std::to_string(c.config.num_locals) +
                  " gamma=" + std::to_string(c.config.gamma) +
                  " q=" + std::to_string(num_quantiles) +
                  (sliding ? " sliding" : "") +
                  (c.config.adaptive_gamma ? " adaptive" : "") +
                  (c.config.per_node_gamma ? " per-node" : "") +
                  (c.load.max_disorder_us ? " disordered" : "") +
                  (c.config.wire_codec == net::EventCodec::kCompact ? " compact"
                                                                    : "");
  return c;
}

class DemaSoak : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DemaSoak, OracleExactUnderRandomConfig) {
  SoakCase c = DrawCase(GetParam());
  SCOPED_TRACE(c.description);

  RealClock clock;
  net::Network::Options net_opts;
  if (c.seed % 3 == 0) {
    net_opts.duplicate_prob = 0.2;  // at-least-once delivery on a third of runs
    net_opts.fault_seed = c.seed;
  }
  net::Network network(&clock, net_opts);
  auto system_result = sim::BuildSystem(c.config, &network, &clock, 0);
  ASSERT_TRUE(system_result.ok()) << system_result.status();
  sim::System system = std::move(system_result).MoveValueUnsafe();
  sim::SyncDriver driver(&system, &network, &clock);
  driver.set_record_events(true);
  Status st = driver.Run(c.load);
  ASSERT_TRUE(st.ok()) << st;
  ASSERT_EQ(driver.outputs().size(), c.load.ExpectedWindows());

  // Oracle per emitted window id over the recorded events.
  stream::SlidingWindowAssigner assigner(
      stream::WindowSpec{c.load.window_len_us, c.load.window_slide_us});
  std::vector<Event> all;
  for (const auto& chunk : driver.recorded_events()) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  for (const sim::WindowOutput& out : driver.outputs()) {
    std::vector<double> values;
    for (const Event& e : all) {
      if (e.timestamp >= assigner.WindowStart(out.window_id) &&
          e.timestamp < assigner.WindowEnd(out.window_id)) {
        values.push_back(e.value);
      }
    }
    ASSERT_EQ(values.size(), out.global_size) << "window " << out.window_id;
    if (values.empty()) continue;
    for (size_t qi = 0; qi < c.config.quantiles.size(); ++qi) {
      auto oracle = stream::ExactQuantileValues(values, c.config.quantiles[qi]);
      ASSERT_TRUE(oracle.ok());
      EXPECT_DOUBLE_EQ(out.values[qi], *oracle)
          << "window " << out.window_id << " q=" << c.config.quantiles[qi];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DemaSoak, ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace dema
