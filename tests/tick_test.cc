// Discrete-event sim core tests: the tick queue's FIFO tie-break, routed
// topology validity, event-driven delivery on the fabric, workload window
// accounting, and the scenario runner's determinism + oracle guarantees.

#include <gtest/gtest.h>

#include <set>

#include "common/clock.h"
#include "net/network.h"
#include "sim/driver.h"
#include "sim/scenario.h"
#include "sim/tick/tick_queue.h"
#include "sim/tick/topology.h"

namespace dema {
namespace {

// --- tick queue -------------------------------------------------------------

TEST(TickQueue, PopsInDueOrderWithFifoTieBreak) {
  tick::TickQueue<int> q;
  q.Push(30, 1);
  q.Push(10, 2);
  q.Push(20, 3);
  q.Push(10, 4);  // same due time as entry 2: FIFO says 2 pops first
  q.Push(10, 5);

  ASSERT_EQ(q.size(), 5u);
  EXPECT_EQ(q.NextDue(), 10u);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 4);
  EXPECT_EQ(q.Pop(), 5);
  EXPECT_EQ(q.NextDue(), 20u);
  EXPECT_EQ(q.Pop(), 3);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_TRUE(q.empty());
}

TEST(TickQueue, TracksPushPopAndPeakStats) {
  tick::TickQueue<int> q;
  for (int i = 0; i < 8; ++i) q.Push(static_cast<uint64_t>(i), i);
  for (int i = 0; i < 3; ++i) q.Pop();
  q.Push(100, 9);
  EXPECT_EQ(q.pushed(), 9u);
  EXPECT_EQ(q.popped(), 3u);
  EXPECT_EQ(q.peak_size(), 8u);
}

// --- topologies -------------------------------------------------------------

/// Walks \p path from \p src: every link must continue from the previous
/// vertex, no vertex may repeat, and the walk must end at \p dst.
void CheckPath(const tick::Topology& topo, NodeId src, NodeId dst,
               const std::vector<uint32_t>& path) {
  ASSERT_FALSE(path.empty());
  ASSERT_LE(path.size(), topo.max_hops());
  uint32_t cur = src;
  std::set<uint32_t> visited{cur};
  for (uint32_t id : path) {
    ASSERT_LT(id, topo.num_links());
    const tick::Link& link = topo.link(id);
    uint32_t next = link.a == cur ? link.b : link.a;
    ASSERT_TRUE(link.a == cur || link.b == cur)
        << "link " << id << " does not continue from vertex " << cur;
    ASSERT_TRUE(visited.insert(next).second) << "route loops at " << next;
    cur = next;
  }
  EXPECT_EQ(cur, dst);
}

TEST(Topology, AllKindsRouteEveryPairValidly) {
  const size_t kEndpoints = 37;  // deliberately not a power/multiple of k
  for (const char* spec : {"star", "tree:fanout=4", "fat-tree", "wan",
                           "wan:regions=7", "fat-tree:k=8", "tree:fanout=2"}) {
    auto topo = tick::Topology::Build(spec, kEndpoints);
    ASSERT_TRUE(topo.ok()) << spec << ": " << topo.status();
    std::vector<uint32_t> path;
    for (NodeId src = 0; src < kEndpoints; ++src) {
      for (NodeId dst = 0; dst < kEndpoints; ++dst) {
        if (src == dst) continue;
        ASSERT_TRUE((*topo)->Route(src, dst, &path).ok()) << spec;
        CheckPath(**topo, src, dst, path);
      }
    }
  }
}

TEST(Topology, RoutesAreDeterministic) {
  auto topo = tick::Topology::Build("fat-tree", 100);
  ASSERT_TRUE(topo.ok());
  std::vector<uint32_t> first, again;
  ASSERT_TRUE((*topo)->Route(3, 97, &first).ok());
  ASSERT_TRUE((*topo)->Route(3, 97, &again).ok());
  EXPECT_EQ(first, again);
}

TEST(Topology, FatTreePicksSmallestSufficientK) {
  auto small = tick::Topology::Build("fat-tree", 16);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ((*small)->name(), "fat-tree:k=4");  // 4^3/4 = 16
  auto big = tick::Topology::Build("fat-tree", 1001);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ((*big)->name(), "fat-tree:k=16");  // 16^3/4 = 1024
}

TEST(Topology, WanCrossRegionRoutesUseAWanLink) {
  auto topo = tick::Topology::Build("wan:regions=4", 9);
  ASSERT_TRUE(topo.ok());
  // Locals 1 and 5 share region 0 with the root; local 2 lives in region 1.
  std::vector<uint32_t> path;
  ASSERT_TRUE((*topo)->Route(0, 5, &path).ok());
  for (uint32_t id : path) {
    EXPECT_NE((*topo)->link(id).tier, tick::LinkTier::kWan);
  }
  ASSERT_TRUE((*topo)->Route(0, 2, &path).ok());
  size_t wan_hops = 0;
  for (uint32_t id : path) {
    if ((*topo)->link(id).tier == tick::LinkTier::kWan) ++wan_hops;
  }
  EXPECT_EQ(wan_hops, 1u);
}

TEST(Topology, RejectsBadSpecs) {
  EXPECT_FALSE(tick::Topology::Build("ring", 8).ok());
  EXPECT_FALSE(tick::Topology::Build("fat-tree:k=3", 8).ok());   // odd k
  EXPECT_FALSE(tick::Topology::Build("fat-tree:k=2", 100).ok()); // too small
  EXPECT_FALSE(tick::Topology::Build("star:fanout=4", 8).ok());  // wrong key
  EXPECT_FALSE(tick::Topology::Build("wan:regions=1", 8).ok());
  EXPECT_FALSE(tick::Topology::Build("tree:fanout=", 8).ok());
  EXPECT_FALSE(tick::Topology::Build("star", 1).ok());
  ASSERT_FALSE(tick::Topology::Build("fat-tree", 0).ok());
}

// --- event-driven delivery --------------------------------------------------

net::Message EventMessage(NodeId src, NodeId dst, size_t payload_bytes = 8) {
  net::Message m;
  m.type = net::MessageType::kEventBatch;
  m.src = src;
  m.dst = dst;
  m.payload.assign(payload_bytes, 0);
  return m;
}

TEST(EventDelivery, NothingArrivesUntilEventsAdvance) {
  RealClock clock;
  net::Network::Options opts;
  opts.delivery = net::Network::DeliveryMode::kEvent;
  net::Network net(&clock, opts);
  ASSERT_TRUE(net.RegisterNode(0).ok());
  ASSERT_TRUE(net.RegisterNode(1).ok());

  ASSERT_TRUE(net.Send(EventMessage(1, 0)).ok());
  EXPECT_FALSE(net.Inbox(0)->TryPop().has_value());
  EXPECT_EQ(net.pending_events(), 1u);
  EXPECT_EQ(net.AdvanceEvents(), 1u);
  EXPECT_TRUE(net.Inbox(0)->TryPop().has_value());
  EXPECT_EQ(net.AdvanceEvents(), 0u);  // idle queue
}

TEST(EventDelivery, VirtualTimeOrdersArrivalsByTransferTime) {
  // A big message sent first arrives after a small message sent second: the
  // event queue models per-byte serialization delay, not call order.
  RealClock clock;
  net::Network::Options opts;
  opts.delivery = net::Network::DeliveryMode::kEvent;
  opts.link_model.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s: 1 us per byte
  net::Network net(&clock, opts);
  for (NodeId id = 0; id < 3; ++id) ASSERT_TRUE(net.RegisterNode(id).ok());

  ASSERT_TRUE(net.Send(EventMessage(1, 0, 10'000)).ok());
  ASSERT_TRUE(net.Send(EventMessage(2, 0, 10)).ok());
  while (net.pending_events() > 0) net.AdvanceEvents();
  auto first = net.Inbox(0)->TryPop();
  auto second = net.Inbox(0)->TryPop();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->src, 2u);
  EXPECT_EQ(second->src, 1u);
  EXPECT_GT(net.virtual_now_us(), 10'000u);
}

TEST(EventDelivery, RoutedHopsRecordPerTierLatencies) {
  RealClock clock;
  auto topo = tick::Topology::Build("fat-tree:k=4", 16);
  ASSERT_TRUE(topo.ok());
  net::Network::Options opts;
  opts.delivery = net::Network::DeliveryMode::kEvent;
  opts.topology = *topo;
  net::Network net(&clock, opts);
  for (NodeId id = 0; id < 16; ++id) ASSERT_TRUE(net.RegisterNode(id).ok());

  // 0 and 15 are in different pods: the route crosses access, agg, and core.
  ASSERT_TRUE(net.Send(EventMessage(15, 0)).ok());
  uint64_t hop_events = 0;
  while (net.pending_events() > 0) hop_events += net.AdvanceEvents();
  EXPECT_EQ(hop_events, 6u);
  EXPECT_TRUE(net.Inbox(0)->TryPop().has_value());
  auto counters = net.registry()->CounterValues();
  EXPECT_EQ(counters.at("sim.events"), 6u);
  EXPECT_EQ(counters.at("sim.ticks"), 6u);
  for (const char* tier : {"access", "agg", "core"}) {
    auto* hist = net.registry()->FindHistogram(
        std::string("sim.hop_latency_us{tier=") + tier + "}");
    ASSERT_NE(hist, nullptr) << tier;
    EXPECT_GT(hist->Summarize().count, 0u) << tier;
  }
}

TEST(EventDelivery, FinalHopDropsToUnregisteredDestination) {
  // The delivery-time state decides: a destination unregistered while the
  // message was in flight is a counted unknown_dest drop, not a crash or a
  // silent vanish.
  RealClock clock;
  net::Network::Options opts;
  opts.delivery = net::Network::DeliveryMode::kEvent;
  net::Network net(&clock, opts);
  ASSERT_TRUE(net.RegisterNode(0).ok());
  ASSERT_TRUE(net.RegisterNode(1).ok());
  ASSERT_TRUE(net.Send(EventMessage(1, 0)).ok());
  ASSERT_TRUE(net.UnregisterNode(0).ok());
  EXPECT_EQ(net.AdvanceEvents(), 1u);
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.registry()->CounterValues().at("net.dropped{cause=unknown_dest}"),
            1u);
}

// --- workload window accounting ---------------------------------------------

TEST(WorkloadConfigTest, ExpectedWindowsTumbling) {
  sim::WorkloadConfig load;
  load.num_windows = 7;
  load.window_len_us = kMicrosPerSecond;
  load.window_slide_us = 0;  // tumbling
  EXPECT_EQ(load.ExpectedWindows(), 7u);
  load.num_windows = 0;
  EXPECT_EQ(load.ExpectedWindows(), 0u);
}

TEST(WorkloadConfigTest, ExpectedWindowsSliding) {
  // len 1s, slide 250ms, horizon 2 window-lengths = 2s of event time:
  // windows end at 1.0, 1.25, 1.5, 1.75, 2.0 s -> 5 closed windows.
  sim::WorkloadConfig load;
  load.num_windows = 2;
  load.window_len_us = kMicrosPerSecond;
  load.window_slide_us = kMicrosPerSecond / 4;
  EXPECT_EQ(load.ExpectedWindows(), 5u);
  // Slide == length degenerates to tumbling.
  load.window_slide_us = kMicrosPerSecond;
  EXPECT_EQ(load.ExpectedWindows(), 2u);
  // Horizon shorter than one window: nothing ever closes.
  load.num_windows = 0;
  load.window_slide_us = kMicrosPerSecond / 4;
  EXPECT_EQ(load.ExpectedWindows(), 0u);
}

// --- scenarios --------------------------------------------------------------

sim::SystemConfig ScenarioConfig(size_t locals) {
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = locals;
  config.gamma = 64;
  config.quantiles = {0.5, 0.99};
  return config;
}

sim::WorkloadConfig ScenarioWorkload(const sim::SystemConfig& config,
                                     uint64_t windows = 3, double rate = 400) {
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kUniform;
  dist.lo = 0;
  dist.hi = 1000;
  sim::WorkloadConfig load =
      sim::MakeUniformWorkload(config.num_locals, windows, rate, dist);
  load.window_len_us = config.window_len_us;
  return load;
}

TEST(Scenario, FaultFreeRunsMatchFlatOracleOnEveryTopology) {
  sim::SystemConfig config = ScenarioConfig(24);
  sim::WorkloadConfig load = ScenarioWorkload(config);
  for (const char* topology : {"flat", "star", "tree:fanout=4", "fat-tree",
                               "wan:regions=3"}) {
    sim::ScenarioOptions options;
    options.topology = topology;
    auto report = sim::RunScenario(config, load, options);
    ASSERT_TRUE(report.ok()) << topology << ": " << report.status();
    EXPECT_TRUE(report->Invariant()) << topology << ": " << report->violation;
    EXPECT_EQ(report->exact_windows, load.num_windows) << topology;
    EXPECT_EQ(report->degraded_windows, 0u) << topology;
    EXPECT_GT(report->sim_events, 0u) << topology;
    EXPECT_GT(report->sim_ticks, 0u) << topology;
  }
}

TEST(Scenario, RoutedRunEmitsSameQuantilesAsFlatInlineRun) {
  // The topology adds hops and latency but must never change the answer:
  // a fat-tree scenario and the flat inline-delivery driver agree bit-for-bit.
  sim::SystemConfig config = ScenarioConfig(8);
  sim::WorkloadConfig load = ScenarioWorkload(config);
  auto flat = sim::RunSync(config, load);
  ASSERT_TRUE(flat.ok()) << flat.status();

  sim::ScenarioOptions options;
  options.topology = "fat-tree";
  auto routed = sim::RunScenario(config, load, options);
  ASSERT_TRUE(routed.ok()) << routed.status();
  ASSERT_EQ(routed->outputs.size(), load.num_windows);
  // RunSync checked itself against window count; compare values via oracle
  // verdicts: every routed window is exact, so equal to the flat answers.
  EXPECT_EQ(routed->exact_windows, load.num_windows);
  EXPECT_EQ(routed->network_total.messages, flat->network_total.messages);
  EXPECT_EQ(routed->network_total.bytes, flat->network_total.bytes);
}

TEST(Scenario, SameSeedIsByteIdenticalAcrossRunsEvenUnderChaos) {
  sim::SystemConfig config = ScenarioConfig(16);
  sim::WorkloadConfig load = ScenarioWorkload(config);
  sim::ScenarioOptions options;
  options.topology = "fat-tree";
  auto plan = sim::ParseFaultSchedule(
      "drop=0.02,dup=0.03,delay-us=300,delay-prob=0.3,corrupt=0.01,seed=11");
  ASSERT_TRUE(plan.ok()) << plan.status();
  options.faults = *plan;

  auto first = sim::RunScenario(config, load, options);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = sim::RunScenario(config, load, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(first->Invariant()) << first->violation;
  EXPECT_GT(first->messages_dropped + first->duplicates_injected +
                first->messages_delayed,
            0u);
  EXPECT_EQ(sim::DescribeScenarioDiff(*first, *second), "");

  // A different seed must visibly change the fault schedule.
  options.faults.seed = 12;
  auto reseeded = sim::RunScenario(config, load, options);
  ASSERT_TRUE(reseeded.ok()) << reseeded.status();
  EXPECT_NE(sim::DescribeScenarioDiff(*first, *reseeded), "");
}

TEST(Scenario, RejectsScheduledFaultsAndThreadedDrivers) {
  sim::SystemConfig config = ScenarioConfig(2);
  sim::WorkloadConfig load = ScenarioWorkload(config, 1);
  sim::ScenarioOptions options;
  options.faults.crashes.push_back(sim::CrashEvent{1, 0, 1});
  EXPECT_EQ(sim::RunScenario(config, load, options).status().code(),
            StatusCode::kInvalidArgument);

  // The threaded driver cannot advance virtual time deterministically.
  RealClock clock;
  net::Network::Options net_options;
  net_options.delivery = net::Network::DeliveryMode::kEvent;
  net::Network network(&clock, net_options);
  auto system = sim::BuildSystem(config, &network, &clock, 0);
  ASSERT_TRUE(system.ok()) << system.status();
  sim::ThreadedDriver driver(&*system, &network, &clock);
  EXPECT_EQ(driver.Run(load).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dema
