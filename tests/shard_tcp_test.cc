// TCP deployment of the sharded service: a real socket run (root process
// loop + keyed locals + concurrent query client) must answer every key with
// exactly the values the in-process sim fabric computes for the same seeds
// — which shard_parity_test in turn pins to independent single-key runs.

#include <gtest/gtest.h>

#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "net/keyed.h"
#include "shard/config.h"
#include "shard/serve.h"
#include "shard/sim_run.h"

namespace dema {
namespace {

gen::DistributionParams TestDistribution() {
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kSensorWalk;
  dist.lo = 0;
  dist.hi = 1000;
  dist.stddev = 5;
  return dist;
}

TEST(ShardTcp, ShardedServeAnswersConcurrentQueriesWithSimParity) {
  shard::ShardedConfig sc;
  sc.num_locals = 2;
  sc.num_shards = 4;
  sc.num_keys = 12;
  sc.workers = 2;
  sc.quantiles = {0.5, 0.9};
  sc.gamma = 32;

  shard::KeyedWorkloadConfig load;
  load.num_windows = 3;
  load.event_rate = 400;
  load.distribution = TestDistribution();
  load.seed_base = 8086;

  // Reference: the same deployment on the sim fabric.
  shard::ShardedSimHarness harness(sc);
  ASSERT_TRUE(harness.init_status().ok()) << harness.init_status();
  ASSERT_TRUE(harness.Run(load).ok());

  // --- TCP run ---
  uint16_t port = 0;
  std::mutex port_mu;
  std::condition_variable port_cv;
  Result<shard::ShardedServeReport> root_report =
      Status::Internal("root never ran");
  std::thread root_thread([&] {
    shard::ShardedServeOptions opts;
    opts.listen_port = 0;
    opts.expected_windows = load.num_windows;
    opts.linger_us = 30 * kMicrosPerSecond;  // hold for the query client
    opts.on_listening = [&](uint16_t p) {
      std::lock_guard<std::mutex> lock(port_mu);
      port = p;
      port_cv.notify_all();
    };
    root_report = shard::RunShardedTcpRoot(sc, opts);
  });
  {
    std::unique_lock<std::mutex> lock(port_mu);
    port_cv.wait(lock, [&] { return port != 0; });
  }

  std::vector<Result<shard::ShardedTcpLocalReport>> local_reports(
      sc.num_locals, Status::Internal("local never ran"));
  std::vector<std::thread> local_threads;
  for (size_t i = 0; i < sc.num_locals; ++i) {
    local_threads.emplace_back([&, i] {
      shard::ShardedTcpLocalOptions opts;
      opts.root_port = port;
      local_reports[i] = shard::RunShardedTcpLocal(
          sc, load, static_cast<NodeId>(i + 1), opts);
    });
  }

  // Concurrent query sessions poll until every key reaches the final
  // window, then release the root.
  shard::ShardQueryOptions qopts;
  qopts.root_port = port;
  for (net::KeyId key = 0; key < sc.num_keys; ++key) qopts.keys.push_back(key);
  qopts.concurrency = 4;
  qopts.until_window = load.num_windows - 1;
  qopts.shutdown_root = true;
  Result<shard::ShardQueryReport> query_report =
      shard::RunShardQueryClient(qopts);

  root_thread.join();
  for (auto& t : local_threads) t.join();

  ASSERT_TRUE(query_report.ok()) << query_report.status();
  ASSERT_TRUE(root_report.ok()) << root_report.status();
  for (size_t i = 0; i < sc.num_locals; ++i) {
    ASSERT_TRUE(local_reports[i].ok())
        << "local " << i + 1 << ": " << local_reports[i].status();
  }

  EXPECT_EQ(root_report->windows_emitted, load.num_windows * sc.num_keys);
  EXPECT_EQ(query_report->keys_found, sc.num_keys);
  EXPECT_GE(query_report->queries_sent, 1u);

  // Every key's final answer over TCP == the sim fabric's last window.
  std::map<net::KeyId, net::KeyedAnswer> final_answers;
  for (const auto& reply : query_report->final_replies) {
    ASSERT_TRUE(reply.error.empty()) << reply.error;
    EXPECT_EQ(reply.quantiles, sc.quantiles);
    for (const auto& a : reply.answers) final_answers[a.key] = a;
  }
  ASSERT_EQ(final_answers.size(), sc.num_keys);
  for (net::KeyId key = 0; key < sc.num_keys; ++key) {
    const net::KeyedAnswer& a = final_answers[key];
    ASSERT_TRUE(a.found) << "key " << key;
    EXPECT_EQ(a.window_id, load.num_windows - 1) << "key " << key;
    EXPECT_FALSE(a.degraded) << "key " << key;
    const auto& want = harness.outputs_by_key()[key].back();
    EXPECT_EQ(a.global_size, want.global_size) << "key " << key;
    ASSERT_EQ(a.values.size(), want.values.size());
    for (size_t q = 0; q < want.values.size(); ++q) {
      EXPECT_EQ(a.values[q], want.values[q])
          << "key " << key << " quantile " << sc.quantiles[q]
          << " must match the sim fabric exactly over TCP";
    }
  }

  // The keyed wire really batches: per-key synopsis traffic travels as
  // kShardSynopsisBatch frames, never as bare kSynopsisBatch frames.
  EXPECT_TRUE(root_report->by_type.count(net::MessageType::kShardSynopsisBatch));
  EXPECT_FALSE(root_report->by_type.count(net::MessageType::kSynopsisBatch));
}

TEST(ShardTcp, QueryClientRejectsBadQuantile) {
  shard::ShardedConfig sc;
  sc.num_locals = 2;
  sc.num_shards = 2;
  sc.num_keys = 4;
  sc.workers = 2;
  sc.quantiles = {0.5};

  shard::KeyedWorkloadConfig load;
  load.num_windows = 2;
  load.event_rate = 200;
  load.distribution = TestDistribution();

  uint16_t port = 0;
  std::mutex port_mu;
  std::condition_variable port_cv;
  Result<shard::ShardedServeReport> root_report =
      Status::Internal("root never ran");
  std::thread root_thread([&] {
    shard::ShardedServeOptions opts;
    opts.listen_port = 0;
    opts.expected_windows = load.num_windows;
    opts.linger_us = 30 * kMicrosPerSecond;
    opts.on_listening = [&](uint16_t p) {
      std::lock_guard<std::mutex> lock(port_mu);
      port = p;
      port_cv.notify_all();
    };
    root_report = shard::RunShardedTcpRoot(sc, opts);
  });
  {
    std::unique_lock<std::mutex> lock(port_mu);
    port_cv.wait(lock, [&] { return port != 0; });
  }
  std::vector<std::thread> local_threads;
  std::vector<Result<shard::ShardedTcpLocalReport>> local_reports(
      sc.num_locals, Status::Internal("local never ran"));
  for (size_t i = 0; i < sc.num_locals; ++i) {
    local_threads.emplace_back([&, i] {
      shard::ShardedTcpLocalOptions opts;
      opts.root_port = port;
      local_reports[i] = shard::RunShardedTcpLocal(
          sc, load, static_cast<NodeId>(i + 1), opts);
    });
  }

  // An unconfigured quantile must fail the query with the service's error.
  shard::ShardQueryOptions bad;
  bad.root_port = port;
  bad.keys = {0, 1};
  bad.quantiles = {0.25};
  bad.concurrency = 1;
  Result<shard::ShardQueryReport> bad_report = shard::RunShardQueryClient(bad);
  ASSERT_FALSE(bad_report.ok());
  EXPECT_EQ(bad_report.status().code(), StatusCode::kInvalidArgument)
      << bad_report.status();

  // A good query still works afterwards, and releases the cluster. It
  // deliberately reuses the default id base: a client reconnecting under the
  // same node id restarts its seq counter, and queries must not be swallowed
  // by the root's exactly-once filter.
  shard::ShardQueryOptions good;
  good.root_port = port;
  for (net::KeyId key = 0; key < sc.num_keys; ++key) good.keys.push_back(key);
  good.concurrency = 2;
  good.until_window = load.num_windows - 1;
  good.shutdown_root = true;
  Result<shard::ShardQueryReport> good_report =
      shard::RunShardQueryClient(good);
  root_thread.join();
  for (auto& t : local_threads) t.join();
  ASSERT_TRUE(root_report.ok()) << root_report.status();
  ASSERT_TRUE(good_report.ok()) << good_report.status();
  EXPECT_EQ(good_report->keys_found, sc.num_keys);
  for (auto& r : local_reports) ASSERT_TRUE(r.ok()) << r.status();
}

}  // namespace
}  // namespace dema
