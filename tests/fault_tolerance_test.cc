// Fault-injection tests: at-least-once delivery (duplicate messages) must
// not change Dema's results or crash any node, and malformed payloads must
// surface as clean error statuses rather than undefined behaviour.

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/rng.h"
#include "dema/local_node.h"
#include "dema/protocol.h"
#include "dema/root_node.h"
#include "sim/driver.h"
#include "sim/topology.h"
#include "stream/quantile.h"
#include "transport/transport.h"

namespace dema {
namespace {

// --- duplicate delivery -----------------------------------------------------

struct DupParam {
  double duplicate_prob;
  uint64_t seed;
  const char* name;
};

class DuplicateDelivery : public ::testing::TestWithParam<DupParam> {};

TEST_P(DuplicateDelivery, DemaStaysExactUnderRetransmission) {
  const DupParam& p = GetParam();
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = 3;
  config.gamma = 64;
  config.adaptive_gamma = true;  // gamma updates get duplicated too

  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kUniform;
  dist.lo = 0;
  dist.hi = 1000;
  sim::WorkloadConfig load =
      sim::MakeUniformWorkload(3, /*num_windows=*/6, /*event_rate=*/3000, dist);
  load.window_len_us = config.window_len_us;

  RealClock clock;
  net::Network::Options net_opts;
  net_opts.duplicate_prob = p.duplicate_prob;
  net_opts.fault_seed = p.seed;
  net::Network network(&clock, net_opts);
  auto system_result = sim::BuildSystem(config, &network, &clock, 0);
  ASSERT_TRUE(system_result.ok()) << system_result.status();
  sim::System system = std::move(system_result).MoveValueUnsafe();
  sim::SyncDriver driver(&system, &network, &clock);
  driver.set_record_events(true);
  Status st = driver.Run(load);
  ASSERT_TRUE(st.ok()) << st;

  // Results identical to the oracle despite duplicated protocol messages.
  ASSERT_EQ(driver.outputs().size(), 6u);
  for (const auto& out : driver.outputs()) {
    std::vector<double> values;
    for (const Event& e : driver.recorded_events()[out.window_id]) {
      values.push_back(e.value);
    }
    auto oracle = stream::ExactQuantileValues(values, 0.5);
    ASSERT_TRUE(oracle.ok());
    EXPECT_DOUBLE_EQ(out.values[0], *oracle) << "window " << out.window_id;
  }

  if (p.duplicate_prob > 0) {
    EXPECT_GT(network.duplicates_injected(), 0u);
    auto* root = static_cast<core::DemaRootNode*>(system.root.get());
    // Some duplicates land on the root (synopses/replies) — they must have
    // been absorbed, not processed twice.
    EXPECT_GE(network.duplicates_injected(), root->stats().duplicates_ignored);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rates, DuplicateDelivery,
    ::testing::Values(DupParam{0.0, 1, "none"}, DupParam{0.1, 2, "ten_pct"},
                      DupParam{0.5, 3, "half"}, DupParam{1.0, 4, "every_msg"}),
    [](const auto& info) { return info.param.name; });

TEST(DuplicateDelivery, DuplicatesAreChargedToTheWire) {
  RealClock clock;
  net::Network::Options opts;
  opts.duplicate_prob = 1.0;  // every message doubled
  net::Network network(&clock, opts);
  ASSERT_TRUE(network.RegisterNode(0).ok());
  ASSERT_TRUE(network.RegisterNode(1).ok());
  net::Message m;
  m.type = net::MessageType::kEventBatch;
  m.src = 1;
  m.dst = 0;
  m.payload.assign(100, 0);
  m.event_count = 4;
  ASSERT_TRUE(network.Send(std::move(m)).ok());
  auto stats = network.GetLinkStats(1, 0);
  EXPECT_EQ(stats.counters.messages, 2u);
  EXPECT_EQ(stats.counters.events, 8u);
  EXPECT_EQ(network.duplicates_injected(), 1u);
  // Both copies are actually delivered.
  EXPECT_TRUE(network.Inbox(0)->TryPop().has_value());
  EXPECT_TRUE(network.Inbox(0)->TryPop().has_value());
  EXPECT_FALSE(network.Inbox(0)->TryPop().has_value());
}

// --- send failures ----------------------------------------------------------

/// Transport decorator that fails the next N sends of one message type,
/// modelling a connection reset mid-protocol.
class FlakyTransport : public transport::Transport {
 public:
  explicit FlakyTransport(transport::Transport* inner) : inner_(inner) {}

  void FailNext(net::MessageType type, int times) {
    fail_type_ = type;
    failures_left_ = times;
  }

  Status Send(net::Message m) override {
    if (failures_left_ > 0 && m.type == fail_type_) {
      --failures_left_;
      return Status::NetworkError("injected send failure");
    }
    return inner_->Send(std::move(m));
  }
  net::Channel* Inbox(NodeId id) override { return inner_->Inbox(id); }
  transport::LinkTrafficMap LinkTraffic() const override {
    return inner_->LinkTraffic();
  }
  std::map<net::MessageType, net::TrafficCounters> TrafficByType()
      const override {
    return inner_->TrafficByType();
  }
  void Shutdown() override { inner_->Shutdown(); }

 private:
  transport::Transport* inner_;
  net::MessageType fail_type_ = net::MessageType::kCandidateReply;
  int failures_left_ = 0;
};

TEST(SendFailure, RetainedWindowSurvivesFailedCandidateReply) {
  // Regression: HandleCandidateRequest erased the retained window *before*
  // sending the reply, so a transport failure dropped the only copy of the
  // candidate events and a root retry could never succeed.
  RealClock clock;
  net::Network network(&clock);
  ASSERT_TRUE(network.RegisterNode(0).ok());
  ASSERT_TRUE(network.RegisterNode(1).ok());
  FlakyTransport flaky(&network);

  core::DemaLocalNodeOptions opts;
  opts.id = 1;
  opts.root_id = 0;
  opts.window_len_us = SecondsUs(1);
  opts.initial_gamma = 4;
  core::DemaLocalNode local(opts, &flaky, &clock);
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(local.OnEvent(Event{i * 10.0, 100 + i, 1, i}).ok());
  }
  ASSERT_TRUE(local.OnWatermark(SecondsUs(1)).ok());
  ASSERT_TRUE(network.Inbox(0)->TryPop().has_value());  // the synopsis
  ASSERT_EQ(local.retained_windows(), 1u);

  core::CandidateRequest req;
  req.window_id = 0;
  req.slice_indices = {0};
  auto msg = net::MakeMessage(net::MessageType::kCandidateRequest, 0, 1, req);

  flaky.FailNext(net::MessageType::kCandidateReply, 1);
  EXPECT_EQ(local.OnMessage(msg).code(), StatusCode::kNetworkError);
  // The window must still be retained, and the failure accounted.
  EXPECT_EQ(local.retained_windows(), 1u);
  EXPECT_EQ(local.registry()->CounterValues().at("local.send_failures{node=1}"),
            1u);

  // The root's retry now succeeds and releases the window.
  ASSERT_TRUE(local.OnMessage(msg).ok());
  auto reply_msg = network.Inbox(0)->TryPop();
  ASSERT_TRUE(reply_msg.has_value());
  EXPECT_EQ(reply_msg->type, net::MessageType::kCandidateReply);
  net::Reader r(reply_msg->payload);
  auto reply = core::CandidateReply::Deserialize(&r);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->events.size(), 4u);
  EXPECT_EQ(local.retained_windows(), 0u);
}

// --- root deadlines: retry and degradation ----------------------------------

/// Pumps one root + one local by hand so individual protocol messages can be
/// dropped at exact points. Returns the popped message, if any.
std::optional<net::Message> PopFrom(net::Network* net, NodeId id) {
  return net->Inbox(id)->TryPop();
}

struct DeadlineRig {
  RealClock clock;
  net::Network network;
  core::DemaRootNode root;
  core::DemaLocalNode local;
  std::vector<sim::WindowOutput> outputs;

  DeadlineRig(uint64_t deadline_ticks, uint32_t max_retries)
      : network(&clock),
        root(MakeRootOpts(deadline_ticks, max_retries), &network, &clock),
        local(MakeLocalOpts(), &network, &clock) {
    EXPECT_TRUE(network.RegisterNode(0).ok());
    EXPECT_TRUE(network.RegisterNode(1).ok());
    root.SetResultCallback([this](const sim::WindowOutput& out) {
      outputs.push_back(out);
    });
  }

  static core::DemaRootNodeOptions MakeRootOpts(uint64_t deadline_ticks,
                                                uint32_t max_retries) {
    core::DemaRootNodeOptions o;
    o.locals = {1};
    o.quantiles = {0.5};
    o.deadline_ticks = deadline_ticks;
    o.max_retries = max_retries;
    return o;
  }

  static core::DemaLocalNodeOptions MakeLocalOpts() {
    core::DemaLocalNodeOptions o;
    o.id = 1;
    o.root_id = 0;
    o.window_len_us = SecondsUs(1);
    o.initial_gamma = 4;
    return o;
  }

  /// Ingests 4 events into window 0 and closes it (synopsis goes to node 0).
  void FillWindowZero() {
    for (uint32_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(local.OnEvent(Event{i * 10.0, 100 + i, 1, i}).ok());
    }
    ASSERT_TRUE(local.OnWatermark(SecondsUs(1)).ok());
  }
};

TEST(RootDeadlines, RetriesCandidateRequestAfterLostReply) {
  DeadlineRig rig(/*deadline_ticks=*/1, /*max_retries=*/3);
  rig.FillWindowZero();

  auto synopsis = PopFrom(&rig.network, 0);
  ASSERT_TRUE(synopsis.has_value());
  ASSERT_TRUE(rig.root.OnMessage(*synopsis).ok());  // root sends the request

  auto request = PopFrom(&rig.network, 1);
  ASSERT_TRUE(request.has_value());
  ASSERT_TRUE(rig.local.OnMessage(*request).ok());  // local replies
  auto lost_reply = PopFrom(&rig.network, 0);       // ...and we drop the reply
  ASSERT_TRUE(lost_reply.has_value());
  EXPECT_EQ(lost_reply->type, net::MessageType::kCandidateReply);

  // The deadline passes: the root must resend the request, not stall.
  ASSERT_TRUE(rig.root.Tick().ok());
  ASSERT_TRUE(rig.root.Tick().ok());
  auto retry = PopFrom(&rig.network, 1);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->type, net::MessageType::kCandidateRequest);
  EXPECT_EQ(rig.root.stats().retries, 1u);

  // The local re-serves the window (it kept a served copy), and the window
  // completes exactly.
  ASSERT_TRUE(rig.local.OnMessage(*retry).ok());
  auto reply = PopFrom(&rig.network, 0);
  ASSERT_TRUE(reply.has_value());
  ASSERT_TRUE(rig.root.OnMessage(*reply).ok());
  ASSERT_EQ(rig.outputs.size(), 1u);
  EXPECT_FALSE(rig.outputs[0].degraded);
  EXPECT_EQ(rig.outputs[0].global_size, 4u);
  EXPECT_DOUBLE_EQ(rig.outputs[0].values[0], 10.0);  // median of {0,10,20,30}
  EXPECT_EQ(rig.root.stats().degraded_windows, 0u);
}

TEST(RootDeadlines, ExhaustedRetriesDegradeWithCauseAndBound) {
  DeadlineRig rig(/*deadline_ticks=*/1, /*max_retries=*/1);
  rig.FillWindowZero();

  auto synopsis = PopFrom(&rig.network, 0);
  ASSERT_TRUE(synopsis.has_value());
  ASSERT_TRUE(rig.root.OnMessage(*synopsis).ok());

  // Swallow the original request and every retry: the local never replies.
  uint64_t swallowed = 0;
  for (int tick = 0; tick < 10 && rig.outputs.empty(); ++tick) {
    while (PopFrom(&rig.network, 1).has_value()) ++swallowed;
    ASSERT_TRUE(rig.root.Tick().ok());
  }
  EXPECT_GE(swallowed, 2u);  // original + at least one retry

  // The window must be emitted best-effort, never silently stalled.
  ASSERT_EQ(rig.outputs.size(), 1u);
  const sim::WindowOutput& out = rig.outputs[0];
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.degrade_cause, "replies_lost");
  EXPECT_GE(out.rank_error_bound, 1u);
  ASSERT_EQ(out.values.size(), 1u);
  // The synopsis-only estimate still lands inside the observed value range.
  EXPECT_GE(out.values[0], 0.0);
  EXPECT_LE(out.values[0], 30.0);
  EXPECT_EQ(rig.root.stats().degraded_windows, 1u);
}

TEST(RootDeadlines, GammaResyncRepliesWithCurrentGamma) {
  DeadlineRig rig(/*deadline_ticks=*/1, /*max_retries=*/1);
  // A restarted local asks the root for the current slice factor.
  ASSERT_TRUE(rig.local.ResyncGamma().ok());
  auto sync = PopFrom(&rig.network, 0);
  ASSERT_TRUE(sync.has_value());
  EXPECT_EQ(sync->type, net::MessageType::kGammaSyncRequest);
  ASSERT_TRUE(rig.root.OnMessage(*sync).ok());
  auto update = PopFrom(&rig.network, 1);
  ASSERT_TRUE(update.has_value());
  EXPECT_EQ(update->type, net::MessageType::kGammaUpdate);
  net::Reader r(update->payload);
  auto parsed = core::GammaUpdate::Deserialize(&r);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->effective_from, 0u);
  EXPECT_GE(parsed->gamma, 2u);
  // The restarted local applies it without error.
  EXPECT_TRUE(rig.local.OnMessage(*update).ok());
}

// --- malformed payloads -----------------------------------------------------

net::Message Corrupt(net::Message m, size_t truncate_to) {
  if (truncate_to < m.payload.size()) m.payload.resize(truncate_to);
  return m;
}

TEST(MalformedPayloads, RootRejectsTruncatedSynopsis) {
  RealClock clock;
  net::Network network(&clock);
  ASSERT_TRUE(network.RegisterNode(0).ok());
  ASSERT_TRUE(network.RegisterNode(1).ok());
  core::DemaRootNodeOptions opts;
  opts.locals = {1};
  core::DemaRootNode root(opts, &network, &clock);

  core::SynopsisBatch batch;
  batch.window_id = 0;
  batch.node = 1;
  batch.local_window_size = 2;
  batch.gamma_used = 2;
  core::SliceSynopsis s;
  s.node = 1;
  s.count = 2;
  batch.slices.push_back(s);
  auto msg = net::MakeMessage(net::MessageType::kSynopsisBatch, 1, 0, batch);
  // Truncated payloads are dropped and counted, never fatal to the root.
  uint64_t rejected = 0;
  for (size_t cut : {0u, 4u, 12u, 30u}) {
    EXPECT_TRUE(root.OnMessage(Corrupt(msg, cut)).ok()) << "cut=" << cut;
    EXPECT_EQ(root.stats().rejected_payloads, ++rejected) << "cut=" << cut;
  }
  EXPECT_EQ(root.registry()->GetCounter("dema.rejected{reason=decode}")->Value(),
            rejected);
  // The intact message still works.
  EXPECT_TRUE(root.OnMessage(msg).ok());
  EXPECT_EQ(root.stats().rejected_payloads, rejected);
}

TEST(MalformedPayloads, RootRejectsInconsistentSliceCounts) {
  RealClock clock;
  net::Network network(&clock);
  ASSERT_TRUE(network.RegisterNode(0).ok());
  core::DemaRootNodeOptions opts;
  opts.locals = {1};
  core::DemaRootNode root(opts, &network, &clock);

  core::SynopsisBatch batch;
  batch.window_id = 0;
  batch.node = 1;
  batch.local_window_size = 99;  // does not match the slice sum (2)
  batch.gamma_used = 2;
  core::SliceSynopsis s;
  s.node = 1;
  s.count = 2;
  batch.slices.push_back(s);
  auto msg = net::MakeMessage(net::MessageType::kSynopsisBatch, 1, 0, batch);
  // The inconsistent batch is dropped and counted instead of poisoning the run.
  EXPECT_TRUE(root.OnMessage(msg).ok());
  EXPECT_GE(root.stats().rejected_payloads, 1u);
}

TEST(MalformedPayloads, LocalRejectsGarbageRequests) {
  RealClock clock;
  net::Network network(&clock);
  ASSERT_TRUE(network.RegisterNode(0).ok());
  ASSERT_TRUE(network.RegisterNode(1).ok());
  core::DemaLocalNodeOptions opts;
  opts.id = 1;
  core::DemaLocalNode local(opts, &network, &clock);

  net::Message garbage;
  garbage.type = net::MessageType::kCandidateRequest;
  garbage.src = 0;
  garbage.dst = 1;
  garbage.payload = {0x01, 0x02, 0x03};
  EXPECT_EQ(local.OnMessage(garbage).code(), StatusCode::kSerializationError);

  net::Message wrong_type;
  wrong_type.type = net::MessageType::kEventBatch;
  EXPECT_EQ(local.OnMessage(wrong_type).code(), StatusCode::kInternal);
}

TEST(MalformedPayloads, RandomBytesNeverCrashNodes) {
  RealClock clock;
  net::Network network(&clock);
  ASSERT_TRUE(network.RegisterNode(0).ok());
  ASSERT_TRUE(network.RegisterNode(1).ok());
  core::DemaRootNodeOptions root_opts;
  root_opts.locals = {1};
  core::DemaRootNode root(root_opts, &network, &clock);
  core::DemaLocalNodeOptions local_opts;
  local_opts.id = 1;
  core::DemaLocalNode local(local_opts, &network, &clock);

  Rng rng(99);
  const net::MessageType types[] = {
      net::MessageType::kSynopsisBatch, net::MessageType::kCandidateRequest,
      net::MessageType::kCandidateReply, net::MessageType::kGammaUpdate};
  for (int trial = 0; trial < 500; ++trial) {
    net::Message m;
    m.type = types[rng.UniformInt(0, 3)];
    m.src = 1;
    m.dst = 0;
    size_t len = static_cast<size_t>(rng.UniformInt(0, 64));
    m.payload.resize(len);
    for (auto& b : m.payload) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    // Either node may reject with any error status; it must not crash.
    (void)root.OnMessage(m);
    (void)local.OnMessage(m);
  }
  SUCCEED();
}

}  // namespace
}  // namespace dema
