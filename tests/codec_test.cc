// Tests for the wire codec: varint/zigzag primitives, fixed vs compact event
// encodings, the bit-delta value mode for sorted runs, size guarantees, the
// value-streaming fast path, and decode robustness.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "baselines/tdigest_agg.h"
#include "common/rng.h"
#include "dema/protocol.h"
#include "net/codec.h"
#include "net/message.h"
#include "net/serializer.h"
#include "transport/frame.h"

namespace dema::net {
namespace {

TEST(Varint, RoundTripBoundaries) {
  Writer w;
  const uint64_t values[] = {0,       1,          127,        128,
                             16383,   16384,      UINT32_MAX, uint64_t{1} << 62,
                             UINT64_MAX};
  for (uint64_t v : values) w.PutVarint(v);
  Reader r(w.buffer());
  for (uint64_t v : values) {
    uint64_t out = 0;
    ASSERT_TRUE(r.GetVarint(&out).ok());
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(Varint, SmallValuesUseOneByte) {
  Writer w;
  w.PutVarint(0);
  w.PutVarint(127);
  EXPECT_EQ(w.size(), 2u);
  w.PutVarint(128);
  EXPECT_EQ(w.size(), 4u);  // two bytes for 128
}

TEST(Varint, OverlongEncodingRejected) {
  std::vector<uint8_t> bytes(11, 0x80);  // never terminates within 64 bits
  Reader r(bytes);
  uint64_t out;
  EXPECT_EQ(r.GetVarint(&out).code(), StatusCode::kSerializationError);
}

TEST(Zigzag, RoundTripSignedValues) {
  Writer w;
  const int64_t values[] = {0, -1, 1, -2, 2, INT64_MAX, INT64_MIN, -123456789};
  for (int64_t v : values) w.PutZigzag(v);
  Reader r(w.buffer());
  for (int64_t v : values) {
    int64_t out = 0;
    ASSERT_TRUE(r.GetZigzag(&out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(Zigzag, SmallMagnitudesStaySmall) {
  Writer w;
  w.PutZigzag(-1);
  w.PutZigzag(1);
  w.PutZigzag(-64);
  EXPECT_EQ(w.size(), 3u);  // one byte each
}

std::vector<Event> RandomEvents(size_t n, uint64_t seed, bool sorted) {
  Rng rng(seed);
  std::vector<Event> events;
  TimestampUs t = 0;
  for (uint32_t i = 0; i < n; ++i) {
    t += rng.UniformInt(1, 2000);
    events.push_back(Event{rng.Uniform(0, 1e6), t, 3, i});
  }
  if (sorted) std::sort(events.begin(), events.end());
  return events;
}

class CodecRoundTrip : public ::testing::TestWithParam<EventCodec> {};

TEST_P(CodecRoundTrip, PreservesEveryField) {
  for (bool sorted : {false, true}) {
    auto events = RandomEvents(500, 7, sorted);
    Writer w;
    EncodeEvents(&w, events, GetParam(), sorted);
    Reader r(w.buffer());
    std::vector<Event> out;
    ASSERT_TRUE(DecodeEvents(&r, &out).ok());
    EXPECT_EQ(out, events) << "sorted=" << sorted;
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST_P(CodecRoundTrip, EmptyAndSingleton) {
  for (size_t n : {size_t{0}, size_t{1}}) {
    auto events = RandomEvents(n, 11, false);
    Writer w;
    EncodeEvents(&w, events, GetParam());
    Reader r(w.buffer());
    std::vector<Event> out;
    ASSERT_TRUE(DecodeEvents(&r, &out).ok());
    EXPECT_EQ(out, events);
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecRoundTrip,
                         ::testing::Values(EventCodec::kFixed,
                                           EventCodec::kCompact),
                         [](const auto& info) {
                           return info.param == EventCodec::kFixed ? "Fixed"
                                                                   : "Compact";
                         });

TEST(CompactCodec, NegativeValuesFallBackToRawAndStayCorrect) {
  Rng rng(13);
  std::vector<Event> events;
  for (uint32_t i = 0; i < 200; ++i) {
    events.push_back(Event{rng.Normal(0, 100), static_cast<TimestampUs>(i), 1, i});
  }
  std::sort(events.begin(), events.end());
  Writer w;
  EncodeEvents(&w, events, EventCodec::kCompact, /*sorted_hint=*/true);
  Reader r(w.buffer());
  std::vector<Event> out;
  ASSERT_TRUE(DecodeEvents(&r, &out).ok());
  EXPECT_EQ(out, events);
}

TEST(CompactCodec, SortedRunsCompressWell) {
  auto events = RandomEvents(10'000, 17, /*sorted=*/true);
  Writer fixed, compact;
  EncodeEvents(&fixed, events, EventCodec::kFixed);
  EncodeEvents(&compact, events, EventCodec::kCompact, /*sorted_hint=*/true);
  // Sorted positive values use bit deltas; expect at least 40% savings.
  EXPECT_LT(compact.size(), fixed.size() * 6 / 10)
      << "fixed=" << fixed.size() << " compact=" << compact.size();
}

TEST(CompactCodec, TimeOrderedStreamsCompress) {
  auto events = RandomEvents(10'000, 19, /*sorted=*/false);  // time-ordered
  Writer fixed, compact;
  EncodeEvents(&fixed, events, EventCodec::kFixed);
  EncodeEvents(&compact, events, EventCodec::kCompact);
  // Raw 8-byte values + small deltas: still a solid win over 24 B/event.
  EXPECT_LT(compact.size(), fixed.size() * 7 / 10);
}

TEST(CodecFastPath, StreamsValuesForBothCodecs) {
  for (EventCodec codec : {EventCodec::kFixed, EventCodec::kCompact}) {
    auto events = RandomEvents(300, 23, /*sorted=*/true);
    EventBatch batch;
    batch.window_id = 5;
    batch.sorted = true;
    batch.codec = codec;
    batch.events = events;
    Message m = MakeMessage(MessageType::kEventBatch, 1, 0, batch);

    std::vector<double> seen;
    auto count = EventBatch::ForEachValue(
        m.payload, [&](double v) { seen.push_back(v); });
    ASSERT_TRUE(count.ok()) << count.status();
    EXPECT_EQ(*count, events.size());
    ASSERT_EQ(seen.size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
      EXPECT_DOUBLE_EQ(seen[i], events[i].value);
    }
  }
}

TEST(CodecRobustness, TruncationsErrorCleanly) {
  auto events = RandomEvents(50, 29, true);
  for (EventCodec codec : {EventCodec::kFixed, EventCodec::kCompact}) {
    Writer w;
    EncodeEvents(&w, events, codec, true);
    const auto& full = w.buffer();
    for (size_t cut = 0; cut < full.size(); cut += 7) {
      Reader r(full.data(), cut);
      std::vector<Event> out;
      Status st = DecodeEvents(&r, &out);
      EXPECT_FALSE(st.ok()) << "cut=" << cut;
    }
  }
}

TEST(CodecRobustness, UnknownTagRejected) {
  std::vector<uint8_t> bytes = {0x07, 0x00};
  Reader r(bytes);
  std::vector<Event> out;
  EXPECT_EQ(DecodeEvents(&r, &out).code(), StatusCode::kSerializationError);
}

TEST(CodecRobustness, HugeCountRejectedBeforeAllocation) {
  Writer w;
  w.PutU8(static_cast<uint8_t>(EventCodec::kCompact));
  w.PutVarint(uint64_t{1} << 40);  // absurd count, no data behind it
  w.PutU8(0);
  Reader r(w.buffer());
  std::vector<Event> out;
  EXPECT_EQ(DecodeEvents(&r, &out).code(), StatusCode::kSerializationError);
}

// ---------------------------------------------------------------------------
// Fuzz-style robustness: a valid payload for every message type, then every
// strict truncation and every single-byte corruption fed to the matching
// decoder. Decoders must return a clean Status — never crash, never trip
// UB, never allocate absurd buffers off a corrupt count.
// ---------------------------------------------------------------------------

struct PayloadCase {
  MessageType type;
  const char* name;
  std::vector<uint8_t> payload;
  std::function<Status(Reader*)> decode;
};

template <typename P>
std::vector<uint8_t> Serialized(const P& p) {
  Writer w;
  p.SerializeTo(&w);
  return w.TakeBuffer();
}

std::vector<PayloadCase> AllPayloadCases() {
  std::vector<PayloadCase> cases;

  for (EventCodec codec : {EventCodec::kFixed, EventCodec::kCompact}) {
    EventBatch batch;
    batch.window_id = 4;
    batch.sorted = true;
    batch.last_batch = true;
    batch.codec = codec;
    batch.events = RandomEvents(25, 11, /*sorted=*/true);
    cases.push_back({MessageType::kEventBatch,
                     codec == EventCodec::kFixed ? "EventBatch/fixed"
                                                 : "EventBatch/compact",
                     Serialized(batch),
                     [](Reader* r) { return EventBatch::Deserialize(r).status(); }});
  }

  WindowEnd end;
  end.window_id = 7;
  end.local_window_size = 123;
  end.close_time_us = 99'000;
  cases.push_back({MessageType::kWindowEnd, "WindowEnd", Serialized(end),
                   [](Reader* r) { return WindowEnd::Deserialize(r).status(); }});

  TimeAdvance advance;
  advance.watermark_us = 5'000'000;
  advance.final_marker = true;
  cases.push_back({MessageType::kTimeAdvance, "TimeAdvance", Serialized(advance),
                   [](Reader* r) { return TimeAdvance::Deserialize(r).status(); }});

  core::SynopsisBatch synopses;
  synopses.window_id = 3;
  synopses.node = 2;
  synopses.gamma_used = 3;
  synopses.close_time_us = 1'000;
  auto events = RandomEvents(5, 13, /*sorted=*/true);
  core::SliceSynopsis s0{2, 0, events[0], events[2], 3};
  core::SliceSynopsis s1{2, 1, events[3], events[4], 2};
  synopses.slices = {s0, s1};
  synopses.local_window_size = 5;
  cases.push_back({MessageType::kSynopsisBatch, "SynopsisBatch",
                   Serialized(synopses), [](Reader* r) {
                     return core::SynopsisBatch::Deserialize(r).status();
                   }});

  core::CandidateRequest request;
  request.window_id = 3;
  request.slice_indices = {0, 1, 5, 9};
  cases.push_back({MessageType::kCandidateRequest, "CandidateRequest",
                   Serialized(request), [](Reader* r) {
                     return core::CandidateRequest::Deserialize(r).status();
                   }});

  for (EventCodec codec : {EventCodec::kFixed, EventCodec::kCompact}) {
    core::CandidateReply reply;
    reply.window_id = 3;
    reply.node = 2;
    reply.codec = codec;
    reply.events = RandomEvents(30, 17, /*sorted=*/true);
    cases.push_back({MessageType::kCandidateReply,
                     codec == EventCodec::kFixed ? "CandidateReply/fixed"
                                                 : "CandidateReply/compact",
                     Serialized(reply), [](Reader* r) {
                       return core::CandidateReply::Deserialize(r).status();
                     }});
  }

  core::GammaUpdate gamma;
  gamma.effective_from = 8;
  gamma.gamma = 512;
  cases.push_back({MessageType::kGammaUpdate, "GammaUpdate", Serialized(gamma),
                   [](Reader* r) {
                     return core::GammaUpdate::Deserialize(r).status();
                   }});

  core::WindowResult result;
  result.window_id = 6;
  result.q = 0.99;
  result.result = Event{42.5, 1'000, 1, 7};
  result.global_size = 10'000;
  result.latency_us = 1'234;
  cases.push_back({MessageType::kResult, "WindowResult", Serialized(result),
                   [](Reader* r) {
                     return core::WindowResult::Deserialize(r).status();
                   }});

  baselines::SketchSummary sketch;
  sketch.window_id = 2;
  sketch.node = 1;
  sketch.local_window_size = 77;
  sketch.close_time_us = 3'000;
  sketch.digest = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  cases.push_back({MessageType::kSketchSummary, "SketchSummary",
                   Serialized(sketch), [](Reader* r) {
                     return baselines::SketchSummary::Deserialize(r).status();
                   }});

  // kShutdown carries no payload — nothing to decode, nothing to fuzz.
  return cases;
}

TEST(PayloadRobustness, EveryStrictTruncationFailsCleanly) {
  for (const PayloadCase& c : AllPayloadCases()) {
    ASSERT_FALSE(c.payload.empty()) << c.name;
    for (size_t cut = 0; cut < c.payload.size(); ++cut) {
      Reader r(c.payload.data(), cut);
      Status st = c.decode(&r);
      EXPECT_FALSE(st.ok()) << c.name << " decoded a " << cut << "/"
                            << c.payload.size() << "-byte prefix";
    }
    // The untouched payload must still decode (guards the case builders).
    Reader r(c.payload);
    EXPECT_TRUE(c.decode(&r).ok()) << c.name;
  }
}

TEST(PayloadRobustness, EverySingleByteCorruptionIsHandled) {
  // A flipped byte may still decode to a (different) valid payload; the
  // invariant is no crash, no UB, no unbounded allocation — under the CI
  // sanitizer build this covers the memory-safety half.
  for (const PayloadCase& c : AllPayloadCases()) {
    for (size_t i = 0; i < c.payload.size(); ++i) {
      std::vector<uint8_t> corrupt = c.payload;
      corrupt[i] ^= 0xFF;
      Reader r(corrupt);
      Status st = c.decode(&r);
      (void)st;
    }
  }
}

TEST(PayloadRobustness, SeededRandomByteFlipsAreHandled) {
  // Beyond the exhaustive single-byte sweep: bursts of random byte flips at
  // random offsets, seeded so failures reproduce. The decode must return a
  // clean Status or a plausibly-sized result — never crash and never size a
  // buffer off a corrupt count (every encoded event costs at least one
  // payload byte, so a successful decode can't claim more events than
  // bytes).
  Rng rng(0xC0DEC);
  for (const PayloadCase& c : AllPayloadCases()) {
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<uint8_t> corrupt = c.payload;
      const int flips = static_cast<int>(rng.UniformInt(1, 8));
      for (int f = 0; f < flips; ++f) {
        size_t at = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(corrupt.size()) - 1));
        corrupt[at] ^= static_cast<uint8_t>(rng.UniformInt(1, 255));
      }
      Reader r(corrupt);
      if (c.type == MessageType::kEventBatch) {
        auto out = EventBatch::Deserialize(&r);
        if (out.ok()) {
          EXPECT_LE(out->events.size(), corrupt.size()) << c.name;
        }
      } else if (c.type == MessageType::kCandidateReply) {
        auto out = core::CandidateReply::Deserialize(&r);
        if (out.ok()) {
          EXPECT_LE(out->events.size(), corrupt.size()) << c.name;
        }
      } else {
        (void)c.decode(&r);
      }
    }
  }
}

TEST(FrameCrc, DetectsEverySingleByteFlip) {
  net::Message m;
  m.type = MessageType::kCandidateReply;
  m.src = 2;
  m.dst = 0;
  m.seq = 9;
  m.payload = {10, 20, 30, 40, 50, 60};
  std::vector<uint8_t> frame;
  transport::EncodeFrame(m, &frame);
  ASSERT_EQ(frame.size(), m.WireBytes());
  const size_t payload_at = transport::kFrameHeaderBytes;
  const size_t trailer_at = payload_at + m.payload.size();
  ASSERT_TRUE(transport::VerifyFrameCrc(frame.data(), payload_at,
                                        frame.data() + payload_at,
                                        m.payload.size(),
                                        frame.data() + trailer_at)
                  .ok());
  // CRC32C catches every single-bit (and single-byte) error, whether it
  // lands in the header, the payload, or the trailer itself.
  for (size_t i = 0; i < frame.size(); ++i) {
    for (uint8_t bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bad = frame;
      bad[i] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(transport::VerifyFrameCrc(bad.data(), payload_at,
                                             bad.data() + payload_at,
                                             m.payload.size(),
                                             bad.data() + trailer_at)
                       .ok())
          << "flip at byte " << i << " bit " << int(bit) << " went undetected";
    }
  }
}

TEST(FrameCrc, DetectsSeededRandomBursts) {
  core::SynopsisBatch synopses;
  synopses.window_id = 12;
  synopses.node = 4;
  synopses.gamma_used = 8;
  synopses.local_window_size = 16;
  auto events = RandomEvents(16, 37, /*sorted=*/true);
  synopses.slices.push_back(core::SliceSynopsis{4, 0, events[0], events[7], 8});
  synopses.slices.push_back(core::SliceSynopsis{4, 1, events[8], events[15], 8});
  net::Message m = MakeMessage(MessageType::kSynopsisBatch, 4, 0, synopses);
  std::vector<uint8_t> frame;
  transport::EncodeFrame(m, &frame);
  const size_t payload_at = transport::kFrameHeaderBytes;
  const size_t trailer_at = payload_at + m.payload.size();

  Rng rng(0xCCCC);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> bad = frame;
    const int flips = static_cast<int>(rng.UniformInt(1, 6));
    for (int f = 0; f < flips; ++f) {
      size_t at = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bad.size()) - 1));
      bad[at] ^= static_cast<uint8_t>(rng.UniformInt(1, 255));
    }
    if (bad == frame) continue;  // flips cancelled out
    EXPECT_FALSE(transport::VerifyFrameCrc(bad.data(), payload_at,
                                           bad.data() + payload_at,
                                           m.payload.size(),
                                           bad.data() + trailer_at)
                     .ok())
        << "trial " << trial;
  }
}

TEST(PeekEventCountCheck, CrossChecksDeclaredCountAgainstStream) {
  EventBatch batch;
  batch.window_id = 4;
  batch.sorted = true;
  batch.codec = EventCodec::kFixed;
  batch.events = RandomEvents(25, 41, /*sorted=*/true);
  std::vector<uint8_t> payload = Serialized(batch);

  auto count = transport::PeekEventCount(MessageType::kEventBatch, payload);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 25u);

  // Non-event-carrying types report zero without touching the payload.
  auto none = transport::PeekEventCount(MessageType::kWindowEnd, payload);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0u);

  // The count varint sits after u64 window_id + sorted + last_batch bytes
  // and the codec tag. Inflate it: the stream now holds fewer events than
  // declared, which must fail instead of sizing a buffer for the lie.
  const size_t count_at = sizeof(uint64_t) + 2 + 1;
  ASSERT_EQ(payload[count_at], 25u);
  std::vector<uint8_t> inflated = payload;
  inflated[count_at] = 26;
  EXPECT_FALSE(
      transport::PeekEventCount(MessageType::kEventBatch, inflated).ok());

  // Deflate it: the stream holds more bytes than the declared count
  // explains, equally a lie.
  std::vector<uint8_t> deflated = payload;
  deflated[count_at] = 24;
  EXPECT_FALSE(
      transport::PeekEventCount(MessageType::kEventBatch, deflated).ok());

  // CandidateReply is the other event-carrying type.
  core::CandidateReply reply;
  reply.window_id = 3;
  reply.node = 2;
  reply.codec = EventCodec::kCompact;
  reply.events = RandomEvents(30, 43, /*sorted=*/true);
  auto reply_count = transport::PeekEventCount(MessageType::kCandidateReply,
                                               Serialized(reply));
  ASSERT_TRUE(reply_count.ok());
  EXPECT_EQ(*reply_count, 30u);
}

TEST(PayloadRobustness, CorruptFrameHeadersRejected) {
  net::Message m;
  m.type = MessageType::kWindowEnd;
  m.src = 3;
  m.dst = 0;
  m.payload = {1, 2, 3, 4};
  std::vector<uint8_t> frame;
  transport::EncodeFrame(m, &frame);
  ASSERT_EQ(frame.size(), m.WireBytes());

  transport::FrameHeader header;
  // Every strict truncation of the fixed header fails.
  for (size_t cut = 0; cut < transport::kFrameHeaderBytes; ++cut) {
    EXPECT_FALSE(
        transport::DecodeFrameHeader(frame.data(), cut, 1 << 20, &header).ok());
  }
  // Unknown message type: corrupt the type field.
  std::vector<uint8_t> bad_type = frame;
  bad_type[0] = 0xEE;
  bad_type[1] = 0xEE;
  EXPECT_FALSE(transport::DecodeFrameHeader(bad_type.data(), bad_type.size(),
                                            1 << 20, &header)
                   .ok());
  // A corrupt length prefix must not drive a huge allocation. The length is
  // the last header field, directly before the payload.
  std::vector<uint8_t> bad_len = frame;
  const size_t len_off = transport::kFrameHeaderBytes - sizeof(uint32_t);
  for (size_t i = 0; i < sizeof(uint32_t); ++i) bad_len[len_off + i] = 0xFF;
  EXPECT_FALSE(transport::DecodeFrameHeader(bad_len.data(), bad_len.size(),
                                            1 << 20, &header)
                   .ok());
  // The untouched frame still parses and echoes the envelope.
  ASSERT_TRUE(transport::DecodeFrameHeader(frame.data(), frame.size(), 1 << 20,
                                           &header)
                  .ok());
  EXPECT_EQ(header.type, MessageType::kWindowEnd);
  EXPECT_EQ(header.src, 3u);
  EXPECT_EQ(header.payload_size, 4u);
}

TEST(CandidateReplyCodec, CompactRoundTripThroughProtocol) {
  core::CandidateReply reply;
  reply.window_id = 3;
  reply.node = 2;
  reply.codec = EventCodec::kCompact;
  reply.events = RandomEvents(400, 31, /*sorted=*/true);
  Writer w;
  reply.SerializeTo(&w);
  Reader r(w.buffer());
  auto out = core::CandidateReply::Deserialize(&r);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->events, reply.events);
  EXPECT_EQ(out->node, 2u);
}

}  // namespace
}  // namespace dema::net
