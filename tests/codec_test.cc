// Tests for the wire codec: varint/zigzag primitives, fixed vs compact event
// encodings, the bit-delta value mode for sorted runs, size guarantees, the
// value-streaming fast path, and decode robustness.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "dema/protocol.h"
#include "net/codec.h"
#include "net/message.h"
#include "net/serializer.h"

namespace dema::net {
namespace {

TEST(Varint, RoundTripBoundaries) {
  Writer w;
  const uint64_t values[] = {0,       1,          127,        128,
                             16383,   16384,      UINT32_MAX, uint64_t{1} << 62,
                             UINT64_MAX};
  for (uint64_t v : values) w.PutVarint(v);
  Reader r(w.buffer());
  for (uint64_t v : values) {
    uint64_t out = 0;
    ASSERT_TRUE(r.GetVarint(&out).ok());
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(Varint, SmallValuesUseOneByte) {
  Writer w;
  w.PutVarint(0);
  w.PutVarint(127);
  EXPECT_EQ(w.size(), 2u);
  w.PutVarint(128);
  EXPECT_EQ(w.size(), 4u);  // two bytes for 128
}

TEST(Varint, OverlongEncodingRejected) {
  std::vector<uint8_t> bytes(11, 0x80);  // never terminates within 64 bits
  Reader r(bytes);
  uint64_t out;
  EXPECT_EQ(r.GetVarint(&out).code(), StatusCode::kSerializationError);
}

TEST(Zigzag, RoundTripSignedValues) {
  Writer w;
  const int64_t values[] = {0, -1, 1, -2, 2, INT64_MAX, INT64_MIN, -123456789};
  for (int64_t v : values) w.PutZigzag(v);
  Reader r(w.buffer());
  for (int64_t v : values) {
    int64_t out = 0;
    ASSERT_TRUE(r.GetZigzag(&out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(Zigzag, SmallMagnitudesStaySmall) {
  Writer w;
  w.PutZigzag(-1);
  w.PutZigzag(1);
  w.PutZigzag(-64);
  EXPECT_EQ(w.size(), 3u);  // one byte each
}

std::vector<Event> RandomEvents(size_t n, uint64_t seed, bool sorted) {
  Rng rng(seed);
  std::vector<Event> events;
  TimestampUs t = 0;
  for (uint32_t i = 0; i < n; ++i) {
    t += rng.UniformInt(1, 2000);
    events.push_back(Event{rng.Uniform(0, 1e6), t, 3, i});
  }
  if (sorted) std::sort(events.begin(), events.end());
  return events;
}

class CodecRoundTrip : public ::testing::TestWithParam<EventCodec> {};

TEST_P(CodecRoundTrip, PreservesEveryField) {
  for (bool sorted : {false, true}) {
    auto events = RandomEvents(500, 7, sorted);
    Writer w;
    EncodeEvents(&w, events, GetParam(), sorted);
    Reader r(w.buffer());
    std::vector<Event> out;
    ASSERT_TRUE(DecodeEvents(&r, &out).ok());
    EXPECT_EQ(out, events) << "sorted=" << sorted;
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST_P(CodecRoundTrip, EmptyAndSingleton) {
  for (size_t n : {size_t{0}, size_t{1}}) {
    auto events = RandomEvents(n, 11, false);
    Writer w;
    EncodeEvents(&w, events, GetParam());
    Reader r(w.buffer());
    std::vector<Event> out;
    ASSERT_TRUE(DecodeEvents(&r, &out).ok());
    EXPECT_EQ(out, events);
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecRoundTrip,
                         ::testing::Values(EventCodec::kFixed,
                                           EventCodec::kCompact),
                         [](const auto& info) {
                           return info.param == EventCodec::kFixed ? "Fixed"
                                                                   : "Compact";
                         });

TEST(CompactCodec, NegativeValuesFallBackToRawAndStayCorrect) {
  Rng rng(13);
  std::vector<Event> events;
  for (uint32_t i = 0; i < 200; ++i) {
    events.push_back(Event{rng.Normal(0, 100), static_cast<TimestampUs>(i), 1, i});
  }
  std::sort(events.begin(), events.end());
  Writer w;
  EncodeEvents(&w, events, EventCodec::kCompact, /*sorted_hint=*/true);
  Reader r(w.buffer());
  std::vector<Event> out;
  ASSERT_TRUE(DecodeEvents(&r, &out).ok());
  EXPECT_EQ(out, events);
}

TEST(CompactCodec, SortedRunsCompressWell) {
  auto events = RandomEvents(10'000, 17, /*sorted=*/true);
  Writer fixed, compact;
  EncodeEvents(&fixed, events, EventCodec::kFixed);
  EncodeEvents(&compact, events, EventCodec::kCompact, /*sorted_hint=*/true);
  // Sorted positive values use bit deltas; expect at least 40% savings.
  EXPECT_LT(compact.size(), fixed.size() * 6 / 10)
      << "fixed=" << fixed.size() << " compact=" << compact.size();
}

TEST(CompactCodec, TimeOrderedStreamsCompress) {
  auto events = RandomEvents(10'000, 19, /*sorted=*/false);  // time-ordered
  Writer fixed, compact;
  EncodeEvents(&fixed, events, EventCodec::kFixed);
  EncodeEvents(&compact, events, EventCodec::kCompact);
  // Raw 8-byte values + small deltas: still a solid win over 24 B/event.
  EXPECT_LT(compact.size(), fixed.size() * 7 / 10);
}

TEST(CodecFastPath, StreamsValuesForBothCodecs) {
  for (EventCodec codec : {EventCodec::kFixed, EventCodec::kCompact}) {
    auto events = RandomEvents(300, 23, /*sorted=*/true);
    EventBatch batch;
    batch.window_id = 5;
    batch.sorted = true;
    batch.codec = codec;
    batch.events = events;
    Message m = MakeMessage(MessageType::kEventBatch, 1, 0, batch);

    std::vector<double> seen;
    auto count = EventBatch::ForEachValue(
        m.payload, [&](double v) { seen.push_back(v); });
    ASSERT_TRUE(count.ok()) << count.status();
    EXPECT_EQ(*count, events.size());
    ASSERT_EQ(seen.size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
      EXPECT_DOUBLE_EQ(seen[i], events[i].value);
    }
  }
}

TEST(CodecRobustness, TruncationsErrorCleanly) {
  auto events = RandomEvents(50, 29, true);
  for (EventCodec codec : {EventCodec::kFixed, EventCodec::kCompact}) {
    Writer w;
    EncodeEvents(&w, events, codec, true);
    const auto& full = w.buffer();
    for (size_t cut = 0; cut < full.size(); cut += 7) {
      Reader r(full.data(), cut);
      std::vector<Event> out;
      Status st = DecodeEvents(&r, &out);
      EXPECT_FALSE(st.ok()) << "cut=" << cut;
    }
  }
}

TEST(CodecRobustness, UnknownTagRejected) {
  std::vector<uint8_t> bytes = {0x07, 0x00};
  Reader r(bytes);
  std::vector<Event> out;
  EXPECT_EQ(DecodeEvents(&r, &out).code(), StatusCode::kSerializationError);
}

TEST(CodecRobustness, HugeCountRejectedBeforeAllocation) {
  Writer w;
  w.PutU8(static_cast<uint8_t>(EventCodec::kCompact));
  w.PutVarint(uint64_t{1} << 40);  // absurd count, no data behind it
  w.PutU8(0);
  Reader r(w.buffer());
  std::vector<Event> out;
  EXPECT_EQ(DecodeEvents(&r, &out).code(), StatusCode::kSerializationError);
}

TEST(CandidateReplyCodec, CompactRoundTripThroughProtocol) {
  core::CandidateReply reply;
  reply.window_id = 3;
  reply.node = 2;
  reply.codec = EventCodec::kCompact;
  reply.events = RandomEvents(400, 31, /*sorted=*/true);
  Writer w;
  reply.SerializeTo(&w);
  Reader r(w.buffer());
  auto out = core::CandidateReply::Deserialize(&r);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->events, reply.events);
  EXPECT_EQ(out->node, 2u);
}

}  // namespace
}  // namespace dema::net
