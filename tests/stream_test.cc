// Unit tests for the streaming substrate: window assignment, quantile ranks,
// sorted window buffers, the window manager, and the loser-tree merger.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "stream/merge.h"
#include "stream/quantile.h"
#include "stream/sorted_buffer.h"
#include "stream/window.h"
#include "stream/window_manager.h"

namespace dema::stream {
namespace {

TEST(WindowAssigner, MapsTimesToWindows) {
  TumblingWindowAssigner a(SecondsUs(1));
  EXPECT_EQ(a.AssignWindow(0), 0u);
  EXPECT_EQ(a.AssignWindow(999'999), 0u);
  EXPECT_EQ(a.AssignWindow(1'000'000), 1u);
  EXPECT_EQ(a.WindowStart(3), 3'000'000);
  EXPECT_EQ(a.WindowEnd(3), 4'000'000);
}

TEST(QuantileRank, PaperDefinition) {
  // Pos(q) = ceil(q * n), clamped to [1, n].
  EXPECT_EQ(QuantileRank(0.5, 10), 5u);
  EXPECT_EQ(QuantileRank(0.5, 11), 6u);
  EXPECT_EQ(QuantileRank(0.25, 4), 1u);
  EXPECT_EQ(QuantileRank(1.0, 7), 7u);
  EXPECT_EQ(QuantileRank(0.001, 10), 1u);
  EXPECT_EQ(QuantileRank(0.5, 0), 0u);
}

TEST(ExactQuantile, SortedEventsSelection) {
  std::vector<Event> sorted;
  for (int i = 1; i <= 100; ++i) {
    sorted.push_back(Event{static_cast<double>(i), 0, 1, static_cast<uint32_t>(i)});
  }
  auto median = ExactQuantileSorted(sorted, 0.5);
  ASSERT_TRUE(median.ok());
  EXPECT_DOUBLE_EQ(median->value, 50);
  auto max = ExactQuantileSorted(sorted, 1.0);
  ASSERT_TRUE(max.ok());
  EXPECT_DOUBLE_EQ(max->value, 100);
}

TEST(ExactQuantile, RejectsBadInput) {
  EXPECT_FALSE(ExactQuantileSorted({}, 0.5).ok());
  std::vector<Event> one = {Event{1, 0, 0, 0}};
  EXPECT_FALSE(ExactQuantileSorted(one, 0.0).ok());
  EXPECT_FALSE(ExactQuantileSorted(one, 1.5).ok());
  EXPECT_FALSE(ExactQuantileValues({}, 0.5).ok());
}

TEST(ExactQuantile, ValuesMatchesFullSort) {
  Rng rng(9);
  std::vector<double> values;
  for (int i = 0; i < 999; ++i) values.push_back(rng.Uniform(0, 1000));
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.01, 0.25, 0.5, 0.77, 1.0}) {
    auto got = ExactQuantileValues(values, q);
    ASSERT_TRUE(got.ok());
    EXPECT_DOUBLE_EQ(*got, sorted[QuantileRank(q, sorted.size()) - 1]);
  }
}

TEST(SortedBuffer, BothModesYieldIdenticalOrder) {
  Rng rng(4);
  SortedWindowBuffer on_close(SortMode::kSortOnClose);
  SortedWindowBuffer incremental(SortMode::kIncremental);
  std::vector<Event> events;
  for (uint32_t i = 0; i < 500; ++i) {
    Event e{rng.Uniform(0, 100), static_cast<TimestampUs>(i), 1, i};
    events.push_back(e);
    on_close.Add(e);
    incremental.Add(e);
  }
  EXPECT_EQ(on_close.size(), 500u);
  EXPECT_EQ(incremental.size(), 500u);
  auto a = on_close.TakeSorted();
  auto b = incremental.TakeSorted();
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  // Buffers are reusable after TakeSorted.
  EXPECT_TRUE(on_close.empty());
  EXPECT_TRUE(incremental.empty());
}

TEST(WindowManager, ClosesWindowsInOrder) {
  WindowManager wm(SecondsUs(1));
  wm.OnEvent(Event{1, 100, 1, 0});
  wm.OnEvent(Event{2, SecondsUs(1) + 5, 1, 1});
  wm.OnEvent(Event{3, SecondsUs(2) + 5, 1, 2});
  EXPECT_EQ(wm.open_windows(), 3u);
  EXPECT_EQ(wm.buffered_events(), 3u);

  auto closed = wm.AdvanceWatermark(SecondsUs(2));
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].id, 0u);
  EXPECT_EQ(closed[1].id, 1u);
  EXPECT_EQ(closed[0].sorted_events.size(), 1u);
  EXPECT_EQ(wm.open_windows(), 1u);
}

TEST(WindowManager, DropsLateEvents) {
  WindowManager wm(SecondsUs(1));
  wm.AdvanceWatermark(SecondsUs(5));
  EXPECT_FALSE(wm.OnEvent(Event{1, 100, 1, 0}));
  EXPECT_EQ(wm.late_events(), 1u);
  EXPECT_TRUE(wm.OnEvent(Event{1, SecondsUs(5) + 1, 1, 1}));
}

TEST(WindowManager, WatermarkNeverRegresses) {
  WindowManager wm(SecondsUs(1));
  wm.AdvanceWatermark(SecondsUs(3));
  auto closed = wm.AdvanceWatermark(SecondsUs(2));
  EXPECT_TRUE(closed.empty());
  EXPECT_EQ(wm.watermark_us(), SecondsUs(3));
}

TEST(WindowManager, FlushClosesEverything) {
  WindowManager wm(SecondsUs(1));
  wm.OnEvent(Event{5, 10, 1, 0});
  wm.OnEvent(Event{1, 20, 1, 1});
  auto closed = wm.Flush();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].sorted_events[0].value, 1);
  EXPECT_EQ(closed[0].sorted_events[1].value, 5);
  EXPECT_EQ(wm.open_windows(), 0u);
}

std::vector<Event> RandomSortedRun(Rng* rng, uint32_t node, size_t n) {
  std::vector<Event> run;
  for (uint32_t i = 0; i < n; ++i) {
    run.push_back(Event{rng->Uniform(0, 1000), static_cast<TimestampUs>(i), node, i});
  }
  std::sort(run.begin(), run.end());
  return run;
}

TEST(LoserTree, MergesLikeGlobalSort) {
  Rng rng(42);
  std::vector<std::vector<Event>> runs;
  std::vector<Event> all;
  for (uint32_t n = 0; n < 5; ++n) {
    auto run = RandomSortedRun(&rng, n, 200 + n * 37);
    all.insert(all.end(), run.begin(), run.end());
    runs.push_back(std::move(run));
  }
  std::sort(all.begin(), all.end());
  auto merged = MergeSortedRuns(std::move(runs));
  EXPECT_EQ(merged, all);
}

TEST(LoserTree, HandlesEmptyAndSingletonRuns) {
  std::vector<std::vector<Event>> runs(4);
  runs[1].push_back(Event{2, 0, 1, 0});
  runs[3].push_back(Event{1, 0, 3, 0});
  auto merged = MergeSortedRuns(std::move(runs));
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].value, 1);
  EXPECT_EQ(merged[1].value, 2);
}

TEST(LoserTree, NoRunsMeansNothing) {
  LoserTreeMerger merger({});
  EXPECT_FALSE(merger.HasNext());
  EXPECT_EQ(merger.remaining(), 0u);
}

TEST(LoserTree, SingleRunPassesThrough) {
  Rng rng(1);
  auto run = RandomSortedRun(&rng, 0, 100);
  auto expected = run;
  std::vector<std::vector<Event>> runs;
  runs.push_back(std::move(run));
  auto merged = MergeSortedRuns(std::move(runs));
  EXPECT_EQ(merged, expected);
}

TEST(LoserTree, ManyRunsNonPowerOfTwo) {
  Rng rng(7);
  std::vector<std::vector<Event>> runs;
  std::vector<Event> all;
  for (uint32_t n = 0; n < 13; ++n) {  // pads to 16 leaves internally
    auto run = RandomSortedRun(&rng, n, (n * 53) % 97);
    all.insert(all.end(), run.begin(), run.end());
    runs.push_back(std::move(run));
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(MergeSortedRuns(std::move(runs)), all);
}

TEST(LoserTree, StreamingInterface) {
  std::vector<std::vector<Event>> runs;
  runs.push_back({Event{1, 0, 0, 0}, Event{3, 0, 0, 1}});
  runs.push_back({Event{2, 0, 1, 0}});
  LoserTreeMerger merger(std::move(runs));
  EXPECT_EQ(merger.remaining(), 3u);
  EXPECT_EQ(merger.Next().value, 1);
  EXPECT_EQ(merger.Next().value, 2);
  EXPECT_TRUE(merger.HasNext());
  EXPECT_EQ(merger.Next().value, 3);
  EXPECT_FALSE(merger.HasNext());
}

// The merger documents that the global event order is strict across honest
// runs, but callers can feed it runs that break the contract (replayed or
// duplicated events). The tiebreak must keep the merge deterministic and
// rank-select must still agree with a plain sort oracle.
TEST(LoserTree, DuplicateEventsAcrossRunsMatchSortOracle) {
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t num_runs = static_cast<size_t>(rng.UniformInt(2, 12));
    std::vector<std::vector<Event>> runs(num_runs);
    std::vector<Event> all;
    for (size_t n = 0; n < num_runs; ++n) {
      const size_t len = static_cast<size_t>(rng.UniformInt(0, 40));
      for (size_t i = 0; i < len; ++i) {
        // Tiny alphabet everywhere: values, timestamps, node ids and seqs
        // all collide, so runs share exactly-equal event tuples.
        Event e{static_cast<double>(rng.UniformInt(0, 4)),
                static_cast<TimestampUs>(rng.UniformInt(0, 2)),
                static_cast<NodeId>(rng.UniformInt(0, 2)),
                static_cast<uint32_t>(rng.UniformInt(0, 2))};
        runs[n].push_back(e);
        all.push_back(e);
        // Sometimes mirror the identical event into a second run too.
        if (rng.UniformInt(0, 3) == 0) {
          runs[(n + 1) % num_runs].push_back(e);
          all.push_back(e);
        }
      }
    }
    for (auto& run : runs) std::sort(run.begin(), run.end());
    std::sort(all.begin(), all.end());
    auto runs_copy = runs;
    EXPECT_EQ(MergeSortedRuns(std::move(runs_copy)), all) << "trial " << trial;

    if (all.empty()) continue;
    std::vector<uint64_t> ranks = {1, static_cast<uint64_t>(all.size())};
    for (int i = 0; i < 5; ++i) {
      ranks.push_back(static_cast<uint64_t>(
          rng.UniformInt(1, static_cast<int64_t>(all.size()))));
    }
    auto picked = SelectRanksFromRuns(std::move(runs), ranks);
    ASSERT_TRUE(picked.ok()) << picked.status();
    for (size_t i = 0; i < ranks.size(); ++i) {
      EXPECT_EQ((*picked)[i], all[ranks[i] - 1])
          << "trial " << trial << " rank " << ranks[i];
    }
  }
}

TEST(LoserTree, SkipMatchesRepeatedNext) {
  Rng rng(5150);
  for (size_t num_runs : {1u, 3u, 9u}) {  // covers flat and tree engines
    std::vector<std::vector<Event>> runs;
    for (uint32_t n = 0; n < num_runs; ++n) {
      runs.push_back(RandomSortedRun(&rng, n, 120));
    }
    auto runs_copy = runs;
    LoserTreeMerger stepper(std::move(runs_copy));
    LoserTreeMerger skipper(std::move(runs));
    uint64_t left = stepper.remaining();
    while (left > 0) {
      const uint64_t gap =
          std::min<uint64_t>(left - 1, static_cast<uint64_t>(rng.UniformInt(0, 17)));
      for (uint64_t i = 0; i < gap; ++i) stepper.Next();
      skipper.Skip(gap);
      ASSERT_EQ(stepper.remaining(), skipper.remaining());
      ASSERT_EQ(stepper.Next(), skipper.Next());
      left -= gap + 1;
    }
    EXPECT_FALSE(skipper.HasNext());
  }
}

/// Oracle for SelectRanksFromRuns: materialize the full merge and index.
std::vector<Event> SelectByFullMerge(std::vector<std::vector<Event>> runs,
                                     const std::vector<uint64_t>& ranks) {
  auto merged = MergeSortedRuns(std::move(runs));
  std::vector<Event> out;
  out.reserve(ranks.size());
  for (uint64_t r : ranks) out.push_back(merged[r - 1]);
  return out;
}

TEST(SelectRanks, MatchesFullMergeOracleOnRandomRuns) {
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    size_t num_runs = static_cast<size_t>(rng.UniformInt(1, 8));
    std::vector<std::vector<Event>> runs;
    uint64_t total = 0;
    for (size_t n = 0; n < num_runs; ++n) {
      size_t len = static_cast<size_t>(rng.UniformInt(0, 60));
      runs.push_back(RandomSortedRun(&rng, static_cast<uint32_t>(n), len));
      total += len;
    }
    if (total == 0) continue;
    // Unsorted, possibly duplicated rank list, always including both ends.
    std::vector<uint64_t> ranks = {total, 1};
    size_t extra = static_cast<size_t>(rng.UniformInt(0, 6));
    for (size_t i = 0; i < extra; ++i) {
      ranks.push_back(static_cast<uint64_t>(rng.UniformInt(1, static_cast<int64_t>(total))));
    }
    auto oracle = SelectByFullMerge(runs, ranks);
    auto picked = SelectRanksFromRuns(std::move(runs), ranks);
    ASSERT_TRUE(picked.ok()) << picked.status();
    ASSERT_EQ(picked->size(), ranks.size());
    for (size_t i = 0; i < ranks.size(); ++i) {
      EXPECT_EQ((*picked)[i], oracle[i])
          << "trial " << trial << " rank " << ranks[i];
    }
  }
}

TEST(SelectRanks, SingleRunIsDirectIndexing) {
  Rng rng(9);
  auto run = RandomSortedRun(&rng, 0, 40);
  std::vector<std::vector<Event>> runs;
  runs.push_back(run);
  std::vector<uint64_t> ranks = {1, 20, 40};
  auto picked = SelectRanksFromRuns(std::move(runs), ranks);
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ((*picked)[0], run[0]);
  EXPECT_EQ((*picked)[1], run[19]);
  EXPECT_EQ((*picked)[2], run[39]);
}

TEST(SelectRanks, EmptyRankListReturnsNothing) {
  std::vector<std::vector<Event>> runs;
  runs.push_back({Event{1, 0, 0, 0}});
  auto picked = SelectRanksFromRuns(std::move(runs), {});
  ASSERT_TRUE(picked.ok());
  EXPECT_TRUE(picked->empty());
}

TEST(SelectRanks, DuplicateRanksReuseOneAdvance) {
  std::vector<std::vector<Event>> runs;
  runs.push_back({Event{1, 0, 0, 0}, Event{3, 0, 0, 1}});
  runs.push_back({Event{2, 0, 1, 0}});
  auto picked = SelectRanksFromRuns(std::move(runs), {2, 2, 2});
  ASSERT_TRUE(picked.ok());
  for (const Event& e : *picked) EXPECT_EQ(e.value, 2);
}

TEST(SelectRanks, RejectsOutOfRangeRanks) {
  std::vector<std::vector<Event>> runs;
  runs.push_back({Event{1, 0, 0, 0}, Event{2, 0, 0, 1}});
  EXPECT_FALSE(SelectRanksFromRuns(runs, {0}).ok());
  EXPECT_FALSE(SelectRanksFromRuns(runs, {3}).ok());
  EXPECT_FALSE(SelectRanksFromRuns({}, {1}).ok());
}

TEST(SelectRanks, EmptyRunsAmongRealOnes) {
  std::vector<std::vector<Event>> runs(5);
  runs[1] = {Event{10, 0, 1, 0}, Event{30, 0, 1, 1}};
  runs[3] = {Event{20, 0, 3, 0}};
  auto picked = SelectRanksFromRuns(std::move(runs), {1, 2, 3});
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ((*picked)[0].value, 10);
  EXPECT_EQ((*picked)[1].value, 20);
  EXPECT_EQ((*picked)[2].value, 30);
}

}  // namespace
}  // namespace dema::stream
