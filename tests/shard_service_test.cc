// Scale and concurrency tests for the sharded root service: a 10k-key run
// across 4 shards must match 10k independent single-key runs exactly, and
// the query API must answer concurrent multi-key reads while windows close.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "net/network.h"
#include "shard/config.h"
#include "shard/key.h"
#include "shard/result_store.h"
#include "shard/sim_run.h"
#include "sim/driver.h"
#include "sim/topology.h"

namespace dema {
namespace {

gen::DistributionParams TestDistribution() {
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kSensorWalk;
  dist.lo = 0;
  dist.hi = 1000;
  dist.stddev = 5;
  return dist;
}

TEST(ResultStore, OutOfOrderPublishKeepsNewestWindow) {
  // Windows complete out of order when an older window's candidate round is
  // still in flight while a newer one needs fewer locals. The store must
  // never let the late, older result clobber the newer one (regression: a
  // query would then report the key stuck at the old window forever).
  shard::ResultStore store(/*num_shards=*/2, /*num_keys=*/4, {0.5});
  const net::KeyId key = 3;
  const uint32_t s = shard::ShardOfKey(key, 2);

  sim::WindowOutput w1;
  w1.window_id = 1;
  w1.global_size = 400;
  w1.values = {42.0};
  store.Publish(s, key, w1);

  sim::WindowOutput w0;
  w0.window_id = 0;
  w0.global_size = 300;
  w0.values = {17.0};
  store.Publish(s, key, w0);  // late arrival of the older window

  auto latest = store.Latest(key);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->window_id, 1u);
  EXPECT_EQ(latest->global_size, 400u);
  EXPECT_EQ(latest->values, std::vector<double>{42.0});
  EXPECT_EQ(store.published_windows(), 2u);

  net::KeyedQuery query;
  query.query_id = 9;
  query.keys = {key};
  net::KeyedQueryReply reply = store.Query(query);
  ASSERT_TRUE(reply.error.empty()) << reply.error;
  ASSERT_EQ(reply.answers.size(), 1u);
  EXPECT_EQ(reply.answers[0].window_id, 1u);
}

TEST(ShardScale, TenThousandKeysAcrossFourShardsMatchSingleKeyRuns) {
  shard::ShardedConfig sc;
  sc.num_locals = 2;
  sc.num_shards = 4;
  sc.num_keys = 10'000;
  sc.workers = 4;
  sc.quantiles = {0.5};
  sc.gamma = 16;

  shard::ShardedSimHarness harness(sc);
  ASSERT_TRUE(harness.init_status().ok()) << harness.init_status();

  shard::KeyedWorkloadConfig load;
  load.num_windows = 1;
  load.event_rate = 50;  // small per-key streams: 10k keys is the point
  load.distribution = TestDistribution();
  load.seed_base = 60000;
  Status st = harness.Run(load);
  ASSERT_TRUE(st.ok()) << st;
  ASSERT_EQ(harness.service()->windows_emitted(), sc.num_keys);

  // Baseline config: the identical single-key pipeline.
  sim::SystemConfig base;
  base.num_locals = sc.num_locals;
  base.window_len_us = sc.window_len_us;
  base.quantiles = sc.quantiles;
  base.gamma = sc.gamma;
  base.sort_mode = sc.sort_mode;

  uint64_t mismatches = 0;
  for (net::KeyId key = 0; key < sc.num_keys; ++key) {
    RealClock clock;
    net::Network network(&clock);
    auto system_result = sim::BuildSystem(base, &network, &clock, 0);
    ASSERT_TRUE(system_result.ok()) << system_result.status();
    sim::System system = std::move(system_result).MoveValueUnsafe();
    sim::WorkloadConfig workload = sim::MakeUniformWorkload(
        base.num_locals, load.num_windows, load.event_rate,
        load.distribution, {}, load.seed_base + key * shard::kKeySeedStride);
    workload.window_len_us = base.window_len_us;
    sim::SyncDriver driver(&system, &network, &clock);
    ASSERT_TRUE(driver.Run(workload).ok()) << "key " << key;

    const auto& got = harness.outputs_by_key()[key];
    const auto& want = driver.outputs();
    ASSERT_EQ(got.size(), want.size()) << "key " << key;
    for (size_t w = 0; w < want.size(); ++w) {
      if (got[w].global_size != want[w].global_size ||
          got[w].values != want[w].values || got[w].degraded) {
        ++mismatches;
      }
    }
  }
  EXPECT_EQ(mismatches, 0u)
      << "sharded run diverged from independent single-key runs";

  // All four shards actually own keys (the mixer spreads a dense universe).
  for (uint32_t s = 0; s < sc.num_shards; ++s) {
    uint64_t owned = 0;
    for (net::KeyId key = 0; key < sc.num_keys; ++key) {
      if (shard::ShardOfKey(key, sc.num_shards) == s) ++owned;
    }
    EXPECT_GT(owned, sc.num_keys / sc.num_shards / 2) << "shard " << s;
  }
}

TEST(ShardConcurrent, QueriesRaceWindowCloseAndStaySnapshotConsistent) {
  constexpr uint64_t kKeys = 128;  // >= 100 concurrently queried keys
  shard::ShardedConfig sc;
  sc.num_locals = 2;
  sc.num_shards = 4;
  sc.num_keys = kKeys;
  sc.workers = 4;
  sc.quantiles = {0.5, 0.9};
  sc.gamma = 16;

  shard::ShardedSimHarness harness(sc);
  ASSERT_TRUE(harness.init_status().ok()) << harness.init_status();

  shard::KeyedWorkloadConfig load;
  load.num_windows = 6;
  load.event_rate = 400;
  load.distribution = TestDistribution();
  load.seed_base = 2026;

  // Query threads hammer the service for all keys while the driver closes
  // windows underneath them. Every reply must be internally consistent:
  // resolved quantiles, per-key window ids that never move backwards, and
  // value vectors matching the resolved quantile count.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> violations{0};
  constexpr size_t kThreads = 4;
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      std::vector<net::WindowId> last_window(kKeys, 0);
      std::vector<bool> seen(kKeys, false);
      net::KeyedQuery query;
      query.query_id = t;
      for (net::KeyId key = 0; key < kKeys; ++key) query.keys.push_back(key);
      while (!stop.load(std::memory_order_relaxed)) {
        net::KeyedQueryReply reply = harness.service()->Query(query);
        queries.fetch_add(1, std::memory_order_relaxed);
        if (!reply.error.empty() || reply.answers.size() != kKeys ||
            reply.quantiles != sc.quantiles) {
          violations.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (size_t i = 0; i < reply.answers.size(); ++i) {
          const net::KeyedAnswer& a = reply.answers[i];
          if (a.key != query.keys[i]) {
            violations.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (!a.found) continue;  // key has not emitted yet: fine early on
          if (a.values.size() != sc.quantiles.size() || a.degraded ||
              (seen[a.key] && a.window_id < last_window[a.key])) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
          seen[a.key] = true;
          last_window[a.key] = a.window_id;
        }
      }
    });
  }

  Status st = harness.Run(load);
  stop.store(true);
  for (auto& th : readers) th.join();
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(queries.load(), 0u);

  // After the run, one final query per key matches the emitted outputs.
  net::KeyedQuery final_query;
  for (net::KeyId key = 0; key < kKeys; ++key) final_query.keys.push_back(key);
  net::KeyedQueryReply reply = harness.service()->Query(final_query);
  ASSERT_TRUE(reply.error.empty()) << reply.error;
  ASSERT_EQ(reply.answers.size(), kKeys);
  for (net::KeyId key = 0; key < kKeys; ++key) {
    const net::KeyedAnswer& a = reply.answers[key];
    ASSERT_TRUE(a.found) << "key " << key;
    EXPECT_EQ(a.window_id, load.num_windows - 1);
    const auto& last = harness.outputs_by_key()[key].back();
    EXPECT_EQ(a.global_size, last.global_size);
    EXPECT_EQ(a.values, last.values);
  }
}

}  // namespace
}  // namespace dema
