// Tests for the three-tier topology (paper Figure 1): data-stream nodes ship
// raw events over the network to ingest-adapted edge nodes; watermarks are
// coordinated across sensors; results stay exact; tier traffic splits.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/clock.h"
#include "sim/ingest_adapter.h"
#include "sim/tiered.h"
#include "stream/quantile.h"
#include "stream/window_manager.h"

namespace dema::sim {
namespace {

gen::DistributionParams Uniform01k() {
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kUniform;
  dist.lo = 0;
  dist.hi = 1000;
  return dist;
}

TieredConfig BaseConfig(SystemKind kind, size_t locals = 2, size_t sensors = 3) {
  TieredConfig config;
  config.system.kind = kind;
  config.system.num_locals = locals;
  config.system.gamma = 64;
  config.sensors_per_local = sensors;
  MakeTieredWorkload(&config, /*node_event_rate=*/3000, Uniform01k());
  return config;
}

TEST(TieredTopology, BuilderValidatesGeneratorCount) {
  TieredConfig config = BaseConfig(SystemKind::kDema);
  config.sensor_generators.pop_back();
  RealClock clock;
  net::Network network(&clock);
  auto result = BuildTieredSystem(config, &network, &clock);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TieredTopology, SensorIdsAreDisjointFromAggregationTier) {
  TieredConfig config = BaseConfig(SystemKind::kDema, 3, 4);
  RealClock clock;
  net::Network network(&clock);
  auto tiered = BuildTieredSystem(config, &network, &clock);
  ASSERT_TRUE(tiered.ok()) << tiered.status();
  ASSERT_EQ(tiered->sensors.size(), 12u);
  ASSERT_EQ(tiered->sensor_ids.size(), 3u);
  for (const auto& ids : tiered->sensor_ids) {
    for (NodeId id : ids) EXPECT_GT(id, 3u);
  }
}

class TieredExactness : public ::testing::TestWithParam<SystemKind> {};

TEST_P(TieredExactness, MatchesFlatOracleSemantics) {
  TieredConfig config = BaseConfig(GetParam());
  const uint64_t kWindows = 4;

  RealClock clock;
  net::Network network(&clock);
  auto tiered = BuildTieredSystem(config, &network, &clock);
  ASSERT_TRUE(tiered.ok()) << tiered.status();

  // Reference: generate the same sensor streams directly and compute the
  // oracle per window.
  std::vector<std::vector<double>> oracle_values(kWindows);
  for (const auto& gcfg : config.sensor_generators) {
    auto gen = gen::StreamGenerator::Create(gcfg);
    ASSERT_TRUE(gen.ok());
    for (uint64_t w = 0; w < kWindows; ++w) {
      for (const Event& e : (*gen)->GenerateWindow(
               static_cast<TimestampUs>(w) * kMicrosPerSecond, kMicrosPerSecond)) {
        oracle_values[w].push_back(e.value);
      }
    }
  }

  TieredSyncDriver driver(&*tiered, &network, &clock);
  ASSERT_TRUE(driver.Run(kWindows, kMicrosPerSecond).ok());
  ASSERT_EQ(driver.outputs().size(), kWindows);
  for (const WindowOutput& out : driver.outputs()) {
    ASSERT_EQ(out.global_size, oracle_values[out.window_id].size());
    auto oracle = stream::ExactQuantileValues(oracle_values[out.window_id], 0.5);
    ASSERT_TRUE(oracle.ok());
    bool exact = GetParam() == SystemKind::kDema ||
                 GetParam() == SystemKind::kCentralExact ||
                 GetParam() == SystemKind::kDesisMerge;
    if (exact) {
      EXPECT_DOUBLE_EQ(out.values[0], *oracle) << "window " << out.window_id;
    } else {
      EXPECT_NEAR(out.values[0], *oracle, 50.0) << "window " << out.window_id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Systems, TieredExactness,
                         ::testing::Values(SystemKind::kDema,
                                           SystemKind::kCentralExact,
                                           SystemKind::kDesisMerge,
                                           SystemKind::kTDigestDecentral),
                         [](const auto& info) {
                           std::string name =
                               SystemKindToString(info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(TieredTopology, TierTrafficSplitsCorrectly) {
  TieredConfig dema_config = BaseConfig(SystemKind::kDema);
  auto dema_metrics = RunTiered(dema_config, 3);
  ASSERT_TRUE(dema_metrics.ok()) << dema_metrics.status();

  TieredConfig central_config = BaseConfig(SystemKind::kCentralExact);
  auto central_metrics = RunTiered(central_config, 3);
  ASSERT_TRUE(central_metrics.ok()) << central_metrics.status();

  // The sensor tier carries every raw event regardless of the system.
  EXPECT_EQ(dema_metrics->sensor_tier.events, dema_metrics->events_produced);
  EXPECT_EQ(central_metrics->sensor_tier.events,
            central_metrics->events_produced);
  EXPECT_EQ(dema_metrics->sensor_tier.bytes, central_metrics->sensor_tier.bytes);

  // The aggregation tier is where Dema wins.
  EXPECT_EQ(central_metrics->aggregation_tier.events,
            central_metrics->events_produced);
  EXPECT_LT(dema_metrics->aggregation_tier.events,
            central_metrics->aggregation_tier.events / 2);
}

TEST(IngestAdapter, WatermarkIsMinAcrossSensors) {
  // Wrap a plain window manager probe to observe watermark forwarding.
  struct Probe final : LocalNodeLogic {
    TimestampUs last_watermark = -1;
    uint64_t events = 0;
    Status OnEvent(const Event&) override {
      ++events;
      return Status::OK();
    }
    Status OnWatermark(TimestampUs t) override {
      last_watermark = t;
      return Status::OK();
    }
    Status OnFinish(TimestampUs) override { return Status::OK(); }
    Status OnMessage(const net::Message&) override { return Status::OK(); }
  };

  auto probe = std::make_unique<Probe>();
  Probe* probe_ptr = probe.get();
  IngestAdapter adapter(std::move(probe), {10, 11});

  auto advance = [&](NodeId src, TimestampUs wm) {
    net::TimeAdvance t;
    t.watermark_us = wm;
    auto msg = net::MakeMessage(net::MessageType::kTimeAdvance, src, 1, t);
    ASSERT_TRUE(adapter.OnMessage(msg).ok());
  };

  advance(10, 1000);
  EXPECT_EQ(probe_ptr->last_watermark, 0);  // sensor 11 still at 0
  advance(11, 500);
  EXPECT_EQ(probe_ptr->last_watermark, 500);  // min(1000, 500)
  advance(11, 2000);
  EXPECT_EQ(probe_ptr->last_watermark, 1000);  // min(1000, 2000)
}

TEST(IngestAdapter, RejectsUnregisteredSensors) {
  struct Probe final : LocalNodeLogic {
    Status OnEvent(const Event&) override { return Status::OK(); }
    Status OnWatermark(TimestampUs) override { return Status::OK(); }
    Status OnFinish(TimestampUs) override { return Status::OK(); }
    Status OnMessage(const net::Message&) override { return Status::OK(); }
  };
  IngestAdapter adapter(std::make_unique<Probe>(), {10});
  net::EventBatch batch;
  batch.events = {Event{1, 0, 99, 0}};
  auto msg = net::MakeMessage(net::MessageType::kEventBatch, 99, 1, batch);
  EXPECT_EQ(adapter.OnMessage(msg).code(), StatusCode::kInvalidArgument);
}

TEST(StreamNode, ProducesBatchesAndMarkers) {
  RealClock clock;
  net::Network network(&clock);
  ASSERT_TRUE(network.RegisterNode(1).ok());  // parent
  StreamNodeOptions opts;
  opts.id = 7;
  opts.parent = 1;
  opts.batch_size = 100;
  opts.generator.distribution = Uniform01k();
  opts.generator.event_rate = 1000;
  auto sensor = StreamNode::Create(opts, &network);
  ASSERT_TRUE(sensor.ok()) << sensor.status();
  ASSERT_TRUE((*sensor)->PumpInterval(0, SecondsUs(1)).ok());
  EXPECT_EQ((*sensor)->events_produced(), 1000u);

  // 10 full batches + 1 time-advance marker.
  net::Channel* inbox = network.Inbox(1);
  size_t batches = 0, markers = 0;
  uint64_t events = 0;
  while (auto msg = inbox->TryPop()) {
    if (msg->type == net::MessageType::kEventBatch) {
      ++batches;
      events += msg->event_count;
      EXPECT_EQ(msg->src, 7u);
    } else if (msg->type == net::MessageType::kTimeAdvance) {
      ++markers;
      net::Reader r(msg->payload);
      auto advance = net::TimeAdvance::Deserialize(&r);
      ASSERT_TRUE(advance.ok());
      EXPECT_EQ(advance->watermark_us, SecondsUs(1));
      EXPECT_FALSE(advance->final_marker);
    }
  }
  EXPECT_EQ(batches, 10u);
  EXPECT_EQ(markers, 1u);
  EXPECT_EQ(events, 1000u);
}

}  // namespace
}  // namespace dema::sim
