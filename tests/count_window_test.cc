// Count-based window boundary discovery: Dema's rank selection on the time
// axis pins every boundary event exactly, with only candidate slices fetched.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "dema/count_window.h"
#include "dema/slice.h"

namespace dema::core {
namespace {

/// Builds per-node time-ordered streams, time-keyed synopses, and the global
/// time order for oracle checks.
struct Fixture {
  std::vector<std::vector<Event>> node_streams;  // time-keyed, per node
  std::vector<SliceSynopsis> slices;
  std::vector<Event> global;  // time-keyed, globally sorted
  uint64_t total = 0;

  static Fixture Make(uint64_t seed, size_t nodes, uint64_t gamma) {
    Fixture f;
    Rng rng(seed);
    for (size_t n = 0; n < nodes; ++n) {
      std::vector<Event> stream;
      TimestampUs t = rng.UniformInt(0, 500);
      size_t count = 40 + static_cast<size_t>(rng.UniformInt(0, 80));
      for (uint32_t i = 0; i < count; ++i) {
        t += rng.UniformInt(1, 300);
        Event e{rng.Uniform(0, 1000), t, static_cast<NodeId>(n + 1), i};
        stream.push_back(CountWindowPlanner::TimeKeyed(e));
      }
      // Streams are already time-ordered; time-keyed events sort the same.
      auto cut = CutIntoSlices(stream, static_cast<NodeId>(n + 1), gamma);
      EXPECT_TRUE(cut.ok());
      f.slices.insert(f.slices.end(), cut->begin(), cut->end());
      f.global.insert(f.global.end(), stream.begin(), stream.end());
      f.total += stream.size();
      f.node_streams.push_back(std::move(stream));
    }
    std::sort(f.global.begin(), f.global.end());
    return f;
  }

  /// Events of the candidate slices, as a fetch would return them.
  std::vector<Event> FetchCandidates(const std::vector<size_t>& candidates,
                                     uint64_t gamma) const {
    std::vector<Event> out;
    for (size_t flat : candidates) {
      const SliceSynopsis& s = slices[flat];
      const auto& stream = node_streams[s.node - 1];
      auto [b, e] = SliceEventRange(stream.size(), gamma, s.index);
      out.insert(out.end(), stream.begin() + b, stream.begin() + e);
    }
    return out;
  }
};

TEST(CountWindows, BoundariesMatchGlobalTimeOrder) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    const uint64_t kGamma = 8;
    Fixture f = Fixture::Make(seed, /*nodes=*/3, kGamma);
    const uint64_t kN = 50;
    CountWindowPlanner planner(kN);
    auto candidates = planner.PlanCandidates(f.slices, f.total);
    ASSERT_TRUE(candidates.ok()) << candidates.status();
    auto boundaries =
        planner.ResolveBoundaries(f.FetchCandidates(*candidates, kGamma));
    ASSERT_TRUE(boundaries.ok()) << boundaries.status();

    ASSERT_EQ(boundaries->size(), f.total / kN);
    for (const auto& b : *boundaries) {
      EXPECT_EQ(b.boundary_event, f.global[b.rank - 1])
          << "seed " << seed << " rank " << b.rank;
    }
  }
}

TEST(CountWindows, FetchesOnlyASubsetUnderLargeGamma) {
  Fixture f = Fixture::Make(7, /*nodes=*/4, /*gamma=*/8);
  CountWindowPlanner planner(/*window_size=*/60);
  auto candidates = planner.PlanCandidates(f.slices, f.total);
  ASSERT_TRUE(candidates.ok());
  uint64_t candidate_events = 0;
  for (size_t flat : *candidates) candidate_events += f.slices[flat].count;
  // Boundary discovery should not need the whole dataset.
  EXPECT_LT(candidate_events, f.total);
  EXPECT_GT(candidate_events, 0u);
}

TEST(CountWindows, NoBoundariesWhenWindowExceedsData) {
  Fixture f = Fixture::Make(9, 2, 8);
  CountWindowPlanner planner(f.total + 1);
  auto candidates = planner.PlanCandidates(f.slices, f.total);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE(candidates->empty());
  EXPECT_TRUE(planner.planned_ranks().empty());
  auto boundaries = planner.ResolveBoundaries({});
  ASSERT_TRUE(boundaries.ok());
  EXPECT_TRUE(boundaries->empty());
}

TEST(CountWindows, RejectsZeroWindowSize) {
  Fixture f = Fixture::Make(11, 2, 8);
  CountWindowPlanner planner(0);
  EXPECT_FALSE(planner.PlanCandidates(f.slices, f.total).ok());
}

TEST(CountWindows, ExactWindowMultipleGetsFinalBoundary) {
  // total divisible by N: the last boundary is the very last event.
  const uint64_t kGamma = 4;
  Fixture f = Fixture::Make(13, 2, kGamma);
  uint64_t n = f.total / 2;
  CountWindowPlanner planner(n);
  auto candidates = planner.PlanCandidates(f.slices, f.total);
  ASSERT_TRUE(candidates.ok());
  auto boundaries =
      planner.ResolveBoundaries(f.FetchCandidates(*candidates, kGamma));
  ASSERT_TRUE(boundaries.ok());
  ASSERT_EQ(boundaries->size(), 2u);
  EXPECT_EQ(boundaries->back().boundary_event, f.global[2 * n - 1]);
  if (f.total % 2 == 0) {
    EXPECT_EQ(boundaries->back().boundary_event, f.global.back());
  }
}

}  // namespace
}  // namespace dema::core
