// Tests for the decomposable-aggregation substrate (Section 2.2 taxonomy):
// lift/combine/lower correctness vs brute force, combine-order invariance,
// and the partial-accumulator workflow that local nodes use.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "stream/aggregate.h"

namespace dema::stream {
namespace {

std::vector<Event> RandomEvents(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> events;
  for (uint32_t i = 0; i < n; ++i) {
    events.push_back(Event{rng.Normal(50, 20), static_cast<TimestampUs>(i), 1, i});
  }
  return events;
}

template <typename Agg>
double FoldAll(const std::vector<Event>& events) {
  PartialAccumulator<Agg> acc;
  for (const Event& e : events) acc.Add(e);
  return acc.Value();
}

/// Splits events across `parts` accumulators and combines at "the root".
template <typename Agg>
double FoldDistributed(const std::vector<Event>& events, size_t parts) {
  std::vector<PartialAccumulator<Agg>> nodes(parts);
  for (size_t i = 0; i < events.size(); ++i) {
    nodes[i % parts].Add(events[i]);
  }
  PartialAccumulator<Agg> root;
  for (const auto& node : nodes) root.Merge(node.partial());
  return root.Value();
}

TEST(Aggregates, SumMatchesBruteForce) {
  auto events = RandomEvents(1000, 1);
  double expected = 0;
  for (const Event& e : events) expected += e.value;
  EXPECT_NEAR(FoldAll<SumAggregate>(events), expected, 1e-9);
  EXPECT_NEAR(FoldDistributed<SumAggregate>(events, 7), expected, 1e-9);
}

TEST(Aggregates, CountIsExact) {
  auto events = RandomEvents(537, 2);
  EXPECT_EQ(FoldAll<CountAggregate>(events), 537);
  EXPECT_EQ(FoldDistributed<CountAggregate>(events, 4), 537);
}

TEST(Aggregates, MinMaxRange) {
  auto events = RandomEvents(400, 3);
  double lo = events[0].value, hi = events[0].value;
  for (const Event& e : events) {
    lo = std::min(lo, e.value);
    hi = std::max(hi, e.value);
  }
  EXPECT_DOUBLE_EQ(FoldAll<MinAggregate>(events), lo);
  EXPECT_DOUBLE_EQ(FoldAll<MaxAggregate>(events), hi);
  EXPECT_DOUBLE_EQ(FoldDistributed<RangeAggregate>(events, 5), hi - lo);
}

TEST(Aggregates, AverageMatchesBruteForce) {
  auto events = RandomEvents(999, 4);
  double sum = 0;
  for (const Event& e : events) sum += e.value;
  double expected = sum / 999;
  EXPECT_NEAR(FoldAll<AverageAggregate>(events), expected, 1e-9);
  EXPECT_NEAR(FoldDistributed<AverageAggregate>(events, 13), expected, 1e-9);
}

TEST(Aggregates, VarianceMatchesTwoPass) {
  auto events = RandomEvents(2000, 5);
  double mean = 0;
  for (const Event& e : events) mean += e.value;
  mean /= events.size();
  double var = 0;
  for (const Event& e : events) var += (e.value - mean) * (e.value - mean);
  var /= events.size();
  EXPECT_NEAR(FoldAll<VarianceAggregate>(events), var, 1e-6);
  EXPECT_NEAR(FoldDistributed<VarianceAggregate>(events, 9), var, 1e-6);
}

TEST(Aggregates, CombineIsOrderInvariant) {
  // Decomposability means any combine tree gives the same answer: compare
  // left fold, right fold, and balanced merge for variance (the trickiest).
  auto events = RandomEvents(256, 6);
  std::vector<VarianceAggregate::Partial> parts;
  for (const Event& e : events) parts.push_back(VarianceAggregate::Lift(e));

  auto left = VarianceAggregate::Identity();
  for (const auto& p : parts) left = VarianceAggregate::Combine(left, p);

  auto right = VarianceAggregate::Identity();
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    right = VarianceAggregate::Combine(*it, right);
  }

  std::vector<VarianceAggregate::Partial> level = parts;
  while (level.size() > 1) {
    std::vector<VarianceAggregate::Partial> next;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(VarianceAggregate::Combine(level[i], level[i + 1]));
    }
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
  }

  EXPECT_NEAR(VarianceAggregate::Lower(left), VarianceAggregate::Lower(right),
              1e-9);
  EXPECT_NEAR(VarianceAggregate::Lower(left), VarianceAggregate::Lower(level[0]),
              1e-9);
}

TEST(Aggregates, IdentityIsNeutral) {
  Event e{3.5, 0, 1, 0};
  auto p = AverageAggregate::Lift(e);
  auto combined =
      AverageAggregate::Combine(p, AverageAggregate::Identity());
  EXPECT_DOUBLE_EQ(AverageAggregate::Lower(combined), 3.5);
  auto flipped =
      AverageAggregate::Combine(AverageAggregate::Identity(), p);
  EXPECT_DOUBLE_EQ(AverageAggregate::Lower(flipped), 3.5);
}

TEST(Aggregates, AccumulatorResetReuses) {
  PartialAccumulator<SumAggregate> acc;
  acc.Add(Event{2, 0, 1, 0});
  EXPECT_DOUBLE_EQ(acc.Value(), 2);
  EXPECT_EQ(acc.count(), 1u);
  acc.Reset();
  EXPECT_DOUBLE_EQ(acc.Value(), 0);
  EXPECT_EQ(acc.count(), 0u);
}

TEST(Aggregates, EmptyLowerIsDefined) {
  EXPECT_DOUBLE_EQ(FoldAll<AverageAggregate>({}), 0);
  EXPECT_DOUBLE_EQ(FoldAll<VarianceAggregate>({}), 0);
  EXPECT_DOUBLE_EQ(FoldAll<RangeAggregate>({}), 0);
}

}  // namespace
}  // namespace dema::stream
