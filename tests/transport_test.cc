// Tests for the transport subsystem: wire framing, hello preambles, the
// POSIX TCP transport (routing, counters, retry/backoff, shutdown), and the
// TCP loopback integration run whose exact quantiles and measured per-link
// byte counts must match the in-process simulation on the same workload.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "gen/generator.h"
#include "net/message.h"
#include "net/network.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/driver.h"
#include "sim/tcp_run.h"
#include "sim/topology.h"
#include "transport/frame.h"
#include "transport/tcp.h"
#include "transport/transport.h"

namespace dema::transport {
namespace {

net::Message TestMessage(NodeId src, NodeId dst, size_t payload_bytes,
                         uint64_t events = 0) {
  net::Message m;
  m.type = net::MessageType::kEventBatch;
  m.src = src;
  m.dst = dst;
  m.payload.assign(payload_bytes, 0xAB);
  m.event_count = events;
  return m;
}

TEST(Frame, RoundTripMatchesWireBytes) {
  net::Message m = TestMessage(3, 0, 37);
  m.type = net::MessageType::kCandidateRequest;
  std::vector<uint8_t> frame;
  EncodeFrame(m, &frame);
  ASSERT_EQ(frame.size(), m.WireBytes());
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 37 + kFrameTrailerBytes);
  // The trailer carries the CRC32C over header + payload.
  EXPECT_TRUE(VerifyFrameCrc(frame.data(), kFrameHeaderBytes,
                             frame.data() + kFrameHeaderBytes, 37,
                             frame.data() + kFrameHeaderBytes + 37)
                  .ok());

  FrameHeader header;
  ASSERT_TRUE(
      DecodeFrameHeader(frame.data(), frame.size(), 1 << 20, &header).ok());
  EXPECT_EQ(header.type, net::MessageType::kCandidateRequest);
  EXPECT_EQ(header.src, 3u);
  EXPECT_EQ(header.dst, 0u);
  EXPECT_EQ(header.payload_size, 37u);
}

TEST(Frame, RejectsUnknownTypeAndOversizedPayload) {
  net::Message m = TestMessage(1, 0, 8);
  std::vector<uint8_t> frame;
  EncodeFrame(m, &frame);

  FrameHeader header;
  std::vector<uint8_t> bad = frame;
  bad[0] = 0x77;  // no such MessageType
  EXPECT_FALSE(DecodeFrameHeader(bad.data(), bad.size(), 1 << 20, &header).ok());

  EXPECT_FALSE(
      DecodeFrameHeader(frame.data(), frame.size(), /*max_payload=*/4, &header)
          .ok());
}

TEST(Frame, HelloRoundTrip) {
  std::vector<NodeId> nodes = {1, 7, 42};
  std::vector<uint8_t> bytes;
  EncodeHello(nodes, &bytes);
  ASSERT_EQ(bytes.size(), kHelloPrefixBytes + nodes.size() * sizeof(uint32_t));

  auto count = DecodeHelloPrefix(bytes.data(), kHelloPrefixBytes);
  ASSERT_TRUE(count.ok());
  ASSERT_EQ(*count, nodes.size());
  auto decoded = DecodeHelloNodes(bytes.data() + kHelloPrefixBytes,
                                  bytes.size() - kHelloPrefixBytes, *count);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, nodes);

  std::vector<uint8_t> bad = bytes;
  bad[0] ^= 0xFF;  // corrupt the magic
  EXPECT_FALSE(DecodeHelloPrefix(bad.data(), kHelloPrefixBytes).ok());
}

TEST(Frame, HelloRejectsProtocolVersionMismatch) {
  // A well-formed v2 hello announcing the wrong version is refused with a
  // version error, before any frame is parsed.
  net::Writer wrong;
  wrong.PutU32(kHelloMagic);
  wrong.PutU32(kProtocolVersion + 1);
  wrong.PutU32(1);
  auto st = DecodeHelloPrefix(wrong.buffer().data(), kHelloPrefixBytes);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.status().message().find("version"), std::string::npos);

  // A v1 dialer's hello had no version field (magic | count | ids), so its
  // node count lands in the version slot — it must fail the same clean way
  // instead of desynchronizing the frame stream on the missing CRC trailers.
  net::Writer v1;
  v1.PutU32(kHelloMagic);
  v1.PutU32(1);  // v1 node count, read as a version (v3+ never goes back)
  v1.PutU32(7);  // first node id, read as a count
  auto v1_st = DecodeHelloPrefix(v1.buffer().data(), kHelloPrefixBytes);
  ASSERT_FALSE(v1_st.ok());
  EXPECT_NE(v1_st.status().message().find("version"), std::string::npos);

  // An absurd node count is bounded even when magic and version check out.
  net::Writer huge;
  huge.PutU32(kHelloMagic);
  huge.PutU32(kProtocolVersion);
  huge.PutU32(kMaxHelloNodes + 1);
  EXPECT_FALSE(DecodeHelloPrefix(huge.buffer().data(), kHelloPrefixBytes).ok());
}

TEST(Frame, PeekEventCountMatchesMetadata) {
  net::EventBatch batch;
  batch.window_id = 5;
  batch.sorted = true;
  batch.last_batch = true;
  for (uint32_t i = 0; i < 200; ++i) {
    batch.events.push_back(Event{static_cast<double>(i), i, 1, i});
  }
  net::Message m =
      net::MakeMessage(net::MessageType::kEventBatch, 1, 0, batch);
  ASSERT_EQ(m.event_count, 200u);
  auto peeked = PeekEventCount(m.type, m.payload);
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(*peeked, m.event_count);

  // Non-event-carrying types report zero.
  auto none = PeekEventCount(net::MessageType::kWindowEnd, m.payload);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0u);
}

// --- TCP transport basics --------------------------------------------------

TEST(TcpTransport, SendReceiveAndCountersMatchWireBytes) {
  TcpTransport server;
  ASSERT_TRUE(server.AddLocalNode(0).ok());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.bound_port(), 0);

  TcpTransportOptions copts;
  copts.listen = false;
  TcpTransport client(copts);
  ASSERT_TRUE(client.AddLocalNode(1).ok());
  ASSERT_TRUE(client.AddPeer(0, "127.0.0.1", server.bound_port()).ok());
  ASSERT_TRUE(client.Start().ok());

  uint64_t sent_bytes = 0;
  for (size_t size : {10, 500, 0}) {
    net::Message m = TestMessage(1, 0, size, /*events=*/size);
    sent_bytes += m.WireBytes();
    ASSERT_TRUE(client.Send(std::move(m)).ok());
  }
  for (size_t size : {10, 500, 0}) {
    auto msg = server.Inbox(0)->PopFor(5 * kMicrosPerSecond);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->src, 1u);
    EXPECT_EQ(msg->payload_size(), size);
  }

  // Reply over the hello-learned route: the server never dialed anyone.
  ASSERT_TRUE(server.Send(TestMessage(0, 1, 25)).ok());
  auto reply = client.Inbox(1)->PopFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->src, 0u);

  client.Shutdown();
  server.Shutdown();

  // Sent counters are charged from the bytes actually written, which the
  // frame format guarantees equal WireBytes(); receive side agrees.
  const std::pair<NodeId, NodeId> up{1, 0};
  const std::pair<NodeId, NodeId> down{0, 1};
  auto client_sent = client.LinkTraffic();
  ASSERT_EQ(client_sent.count(up), 1u);
  EXPECT_EQ(client_sent[up].bytes, sent_bytes);
  EXPECT_EQ(client_sent[up].messages, 3u);
  EXPECT_EQ(client_sent[up].events, 510u);

  auto server_recv = server.ReceivedTraffic();
  ASSERT_EQ(server_recv.count(up), 1u);
  EXPECT_EQ(server_recv[up].bytes, sent_bytes);
  EXPECT_EQ(server_recv[up].messages, 3u);

  auto server_sent = server.LinkTraffic();
  EXPECT_EQ(server_sent[down].bytes, net::kEnvelopeWireBytes + 25);
}

TEST(TcpTransport, LoopbackToHostedNodeSkipsSockets) {
  TcpTransportOptions opts;
  opts.listen = false;
  TcpTransport t(opts);
  ASSERT_TRUE(t.AddLocalNode(1).ok());
  ASSERT_TRUE(t.AddLocalNode(2).ok());
  ASSERT_TRUE(t.Start().ok());

  net::Message m = TestMessage(1, 2, 16, /*events=*/4);
  const uint64_t wire = m.WireBytes();
  ASSERT_TRUE(t.Send(std::move(m)).ok());
  auto got = t.Inbox(2)->TryPop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, 1u);
  EXPECT_EQ(got->event_count, 4u);

  auto sent = t.LinkTraffic();
  const std::pair<NodeId, NodeId> link{1, 2};
  EXPECT_EQ(sent[link].bytes, wire);
  t.Shutdown();
}

TEST(TcpTransport, SendToUnknownNodeFails) {
  TcpTransportOptions opts;
  opts.listen = false;
  TcpTransport t(opts);
  ASSERT_TRUE(t.AddLocalNode(1).ok());
  ASSERT_TRUE(t.Start().ok());
  EXPECT_EQ(t.Send(TestMessage(1, 9, 4)).code(), StatusCode::kNotFound);
  t.Shutdown();
  EXPECT_EQ(t.Send(TestMessage(1, 9, 4)).code(), StatusCode::kNetworkError);
}

TEST(TcpTransport, DialRetriesUntilListenerAppears) {
  // Reserve a port, then release it so the first connect attempts fail with
  // nobody listening; the dialer's bounded backoff must carry the send until
  // the listener comes up.
  uint16_t port = 0;
  {
    auto probe = BindListenSocket("127.0.0.1", 0);
    ASSERT_TRUE(probe.ok());
    auto probe_port = ListenSocketPort(*probe);
    ASSERT_TRUE(probe_port.ok());
    port = *probe_port;
    ::close(*probe);
  }

  TcpTransportOptions copts;
  copts.listen = false;
  copts.connect_attempts = 100;
  copts.connect_backoff_initial_us = MillisUs(5);
  copts.connect_backoff_max_us = MillisUs(50);
  TcpTransport client(copts);
  ASSERT_TRUE(client.AddLocalNode(1).ok());
  ASSERT_TRUE(client.AddPeer(0, "127.0.0.1", port).ok());
  ASSERT_TRUE(client.Start().ok());

  std::thread sender([&] {
    // Send() dials lazily; it blocks in the retry loop until the listener
    // exists, then succeeds.
    EXPECT_TRUE(client.Send(TestMessage(1, 0, 11)).ok());
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  TcpTransportOptions sopts;
  sopts.listen_port = port;
  TcpTransport server(sopts);
  ASSERT_TRUE(server.AddLocalNode(0).ok());
  ASSERT_TRUE(server.Start().ok());

  auto msg = server.Inbox(0)->PopFor(10 * kMicrosPerSecond);
  sender.join();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload_size(), 11u);

  client.Shutdown();
  server.Shutdown();
}

TEST(TcpTransport, DialGivesUpAfterBoundedAttempts) {
  uint16_t dead_port = 0;
  {
    auto probe = BindListenSocket("127.0.0.1", 0);
    ASSERT_TRUE(probe.ok());
    dead_port = *ListenSocketPort(*probe);
    ::close(*probe);
  }
  TcpTransportOptions opts;
  opts.listen = false;
  opts.connect_attempts = 3;
  opts.connect_backoff_initial_us = MillisUs(1);
  opts.connect_backoff_max_us = MillisUs(2);
  TcpTransport t(opts);
  ASSERT_TRUE(t.AddLocalNode(1).ok());
  ASSERT_TRUE(t.AddPeer(0, "127.0.0.1", dead_port).ok());
  ASSERT_TRUE(t.Start().ok());
  EXPECT_EQ(t.Send(TestMessage(1, 0, 4)).code(), StatusCode::kNetworkError);
  t.Shutdown();
}

TEST(TcpTransport, CorruptRateInjectorIsCaughtByReceiverChecksum) {
  // The seeded byte-flip injector corrupts outbound frames past the header;
  // every flip must be caught by the receiver's CRC check and dropped as
  // exactly one frame (the connection survives), with the injection and
  // detection counters agreeing frame for frame.
  TcpTransport server;
  ASSERT_TRUE(server.AddLocalNode(0).ok());
  ASSERT_TRUE(server.Start().ok());

  TcpTransportOptions copts;
  copts.listen = false;
  copts.corrupt_rate = 0.5;
  copts.corrupt_seed = 99;
  TcpTransport client(copts);
  ASSERT_TRUE(client.AddLocalNode(1).ok());
  ASSERT_TRUE(client.AddPeer(0, "127.0.0.1", server.bound_port()).ok());
  ASSERT_TRUE(client.Start().ok());

  constexpr int kSent = 60;
  for (int i = 0; i < kSent; ++i) {
    ASSERT_TRUE(client.Send(TestMessage(1, 0, 32)).ok());
  }
  client.Shutdown();  // flushes the outbox before closing

  int received = 0;
  while (server.Inbox(0)->PopFor(kMicrosPerSecond).has_value()) ++received;
  server.Shutdown();

  const uint64_t injected =
      client.registry()->GetCounter("net.corrupted{layer=inject}")->Value();
  const uint64_t detected =
      server.registry()->GetCounter("net.corrupted{layer=tcp}")->Value();
  EXPECT_GT(injected, 0u);
  EXPECT_LT(injected, static_cast<uint64_t>(kSent));  // rate 0.5, not 1.0
  // Single-byte flips never slip past CRC32C: every injected corruption is
  // detected, and only those frames are lost.
  EXPECT_EQ(detected, injected);
  EXPECT_EQ(static_cast<uint64_t>(received), kSent - injected);
  EXPECT_EQ(server.registry()->GetCounter("net.corrupted")->Value(), detected);
}

TEST(TcpTransport, ListenerSurvivesHardAcceptErrors) {
  // Regression: a hard accept() failure (EMFILE, ECONNABORTED burst) used to
  // return from the accept loop, silently killing the listener for the rest
  // of the process lifetime. The loop must instead count the error, back
  // off, and keep accepting. The injection hook fails the first N accepted
  // connections through the real error path.
  TcpTransportOptions sopts;
  sopts.inject_accept_failures = 3;
  sopts.accept_backoff_us = MillisUs(1);
  TcpTransport server(sopts);
  ASSERT_TRUE(server.AddLocalNode(0).ok());
  ASSERT_TRUE(server.Start().ok());

  TcpTransportOptions copts;
  copts.listen = false;
  copts.connect_attempts = 50;
  copts.connect_backoff_initial_us = MillisUs(2);
  copts.connect_backoff_max_us = MillisUs(20);
  TcpTransport client(copts);
  ASSERT_TRUE(client.AddLocalNode(1).ok());
  ASSERT_TRUE(client.AddPeer(0, "127.0.0.1", server.bound_port()).ok());
  ASSERT_TRUE(client.Start().ok());

  // Early connections are torn down by the induced failures and any frame
  // on them is lost (at-least-once is the application layer's job), so keep
  // sending until one arrives over a post-recovery connection.
  bool delivered = false;
  for (int attempt = 0; attempt < 100 && !delivered; ++attempt) {
    (void)client.Send(TestMessage(1, 0, 13));  // may fail while conns churn
    delivered = server.Inbox(0)->PopFor(MillisUs(100)).has_value();
  }
  EXPECT_TRUE(delivered) << "listener never recovered from accept errors";
  EXPECT_GE(server.registry()->GetCounter("net.accept_errors")->Value(), 3u);

  client.Shutdown();
  server.Shutdown();
}

TEST(TcpTransport, FullOutboxSurfacesBackpressureInsteadOfGrowing) {
  // Regression: per-connection outboxes were created unbounded, so a stalled
  // peer let the sender queue frames until OOM. With a bound and
  // outbox_block=false the send path must surface the stall as NetworkError
  // and count it; memory stays bounded.
  auto listener = BindListenSocket("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  auto port = ListenSocketPort(*listener);
  ASSERT_TRUE(port.ok());
  // The peer never accepts or reads: the kernel completes the handshake via
  // the backlog, then its receive window closes against our writes.

  TcpTransportOptions copts;
  copts.listen = false;
  copts.outbox_capacity = 4;
  copts.outbox_block = false;
  copts.connect_attempts = 3;
  TcpTransport client(copts);
  ASSERT_TRUE(client.AddLocalNode(1).ok());
  ASSERT_TRUE(client.AddPeer(0, "127.0.0.1", *port).ok());
  ASSERT_TRUE(client.Start().ok());

  // Socket buffers plus the loop's in-flight high-water mark absorb a finite
  // number of frames; past that the bounded outbox must reject.
  Status full = Status::OK();
  for (int i = 0; i < 200 && full.ok(); ++i) {
    full = client.Send(TestMessage(1, 0, 256 << 10));
  }
  ASSERT_FALSE(full.ok()) << "bounded outbox never pushed back";
  EXPECT_EQ(full.code(), StatusCode::kNetworkError);
  EXPECT_GT(client.registry()->GetCounter("net.outbox_full")->Value(), 0u);
  // The bound held: the outbox never exceeded its capacity.
  EXPECT_NE(full.message().find("outbox"), std::string::npos);

  client.Shutdown();  // abandons the stalled frames after the drain grace
  ::close(*listener);
}

TEST(TcpTransport, BlockedSendFailsWhenLoopDiesInsteadOfHangingForever) {
  // Regression: with outbox_block=true (the default) a sender blocked on a
  // full outbox parked on a condition variable only the I/O loop signalled.
  // If the loop thread died, the send waited forever. The bounded-slice wait
  // must notice the dead loop and surface a NetworkError instead.
  auto listener = BindListenSocket("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  auto port = ListenSocketPort(*listener);
  ASSERT_TRUE(port.ok());
  // The peer never accepts or reads; the backlog completes the handshake and
  // then the stalled receive window backs pressure up into the outbox.

  TcpTransportOptions copts;
  copts.listen = false;
  copts.outbox_capacity = 2;
  copts.connect_attempts = 3;
  TcpTransport client(copts);
  ASSERT_TRUE(client.AddLocalNode(1).ok());
  ASSERT_TRUE(client.AddPeer(0, "127.0.0.1", *port).ok());
  ASSERT_TRUE(client.Start().ok());

  std::atomic<bool> send_returned{false};
  Status blocked = Status::OK();
  std::thread sender([&] {
    for (int i = 0; i < 200; ++i) {
      Status st = client.Send(TestMessage(1, 0, 256 << 10));
      if (!st.ok()) {
        blocked = st;
        break;
      }
    }
    send_returned.store(true);
  });

  // Wait until the sender is actually parked on the full outbox (the
  // backpressure counter fires on the first full push attempt).
  auto* full = client.registry()->GetCounter("net.outbox_full");
  for (int i = 0; i < 500 && full->Value() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GT(full->Value(), 0u) << "sender never hit the outbox bound";
  EXPECT_FALSE(send_returned.load());

  client.StopLoopForTest();  // the loop dies with the sender still blocked
  sender.join();
  ASSERT_TRUE(send_returned.load());
  EXPECT_EQ(blocked.code(), StatusCode::kNetworkError);
  EXPECT_NE(blocked.message().find("I/O loop exited"), std::string::npos)
      << blocked.message();

  client.Shutdown();
  ::close(*listener);
}

TEST(TcpTransport, PartialFrameLostToPeerDeathIsCounted) {
  // A peer dying mid-frame used to vanish silently: the fragment sat in the
  // receive arena and was freed with the connection. The loss is real (that
  // frame never reaches an inbox), so it must show up next to the link
  // metrics as net.partial_frame_drops.
  TcpTransport server;
  ASSERT_TRUE(server.AddLocalNode(0).ok());
  ASSERT_TRUE(server.Start().ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.bound_port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // A complete hello, then a frame cut short of its CRC trailer.
  std::vector<uint8_t> hello;
  EncodeHello({7}, &hello);
  ASSERT_EQ(::write(fd, hello.data(), hello.size()),
            static_cast<ssize_t>(hello.size()));
  std::vector<uint8_t> frame;
  EncodeFrame(TestMessage(7, 0, 64), &frame);
  const size_t partial = frame.size() - 10;
  ASSERT_EQ(::write(fd, frame.data(), partial), static_cast<ssize_t>(partial));
  // Let the loop ingest the fragment before the "crash".
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ::close(fd);

  auto* drops = server.registry()->GetCounter("net.partial_frame_drops");
  for (int i = 0; i < 500 && drops->Value() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(drops->Value(), 1u);
  // The truncated frame never surfaced as a message.
  EXPECT_FALSE(server.Inbox(0)->TryPop().has_value());
  server.Shutdown();
}

TEST(TcpTransport, ShutdownFlushesPendingSends) {
  TcpTransport server;
  ASSERT_TRUE(server.AddLocalNode(0).ok());
  ASSERT_TRUE(server.Start().ok());

  TcpTransportOptions copts;
  copts.listen = false;
  TcpTransport client(copts);
  ASSERT_TRUE(client.AddLocalNode(1).ok());
  ASSERT_TRUE(client.AddPeer(0, "127.0.0.1", server.bound_port()).ok());
  ASSERT_TRUE(client.Start().ok());

  // The graceful-shutdown contract: everything accepted by Send() before
  // Shutdown() reaches the peer, including a final kShutdown notice.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.Send(TestMessage(1, 0, 1000)).ok());
  }
  net::Message bye;
  bye.type = net::MessageType::kShutdown;
  bye.src = 1;
  bye.dst = 0;
  ASSERT_TRUE(client.Send(std::move(bye)).ok());
  client.Shutdown();

  for (int i = 0; i < 50; ++i) {
    auto msg = server.Inbox(0)->PopFor(5 * kMicrosPerSecond);
    ASSERT_TRUE(msg.has_value()) << "message " << i << " lost in shutdown";
    EXPECT_EQ(msg->type, net::MessageType::kEventBatch);
  }
  auto last = server.Inbox(0)->PopFor(5 * kMicrosPerSecond);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->type, net::MessageType::kShutdown);
  server.Shutdown();
}

// --- the in-process fabric behind the same interface -----------------------

TEST(TransportInterface, NetworkFabricImplementsTransport) {
  RealClock clock;
  net::Network network(&clock);
  ASSERT_TRUE(network.RegisterNode(0).ok());
  ASSERT_TRUE(network.RegisterNode(1).ok());

  Transport* transport = &network;  // the simulation fabric is a Transport
  ASSERT_TRUE(transport->Send(TestMessage(1, 0, 12, /*events=*/3)).ok());
  auto msg = transport->Inbox(0)->TryPop();
  ASSERT_TRUE(msg.has_value());

  auto links = transport->LinkTraffic();
  const std::pair<NodeId, NodeId> up{1, 0};
  ASSERT_EQ(links.count(up), 1u);
  EXPECT_EQ(links[up].bytes, net::kEnvelopeWireBytes + 12);
  EXPECT_EQ(links[up].events, 3u);
  transport->Shutdown();
  EXPECT_FALSE(transport->Send(TestMessage(1, 0, 1)).ok());
}

// --- TCP loopback integration: parity with the simulation ------------------

// Runs root + kLocals local nodes as real TcpTransports (one per "process",
// threads here) against the same seeded workload as a deterministic
// in-process SyncDriver run, then checks that (a) every emitted quantile
// value is bit-identical and (b) the bytes measured on the TCP sockets per
// link equal the simulated fabric's per-link accounting.
TEST(TcpIntegration, LoopbackClusterMatchesSimulationExactly) {
  constexpr size_t kLocals = 3;
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = kLocals;
  config.gamma = 500;
  config.quantiles = {0.25, 0.5, 0.99};
  // Adaptive gamma reacts to arrival timing, which differs between TCP and
  // the simulated fabric; with it off, the protocol's wire traffic is a
  // pure function of the (seeded) data, so byte counts must match exactly.
  config.adaptive_gamma = false;

  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kSensorWalk;
  dist.lo = 0;
  dist.hi = 10'000;
  dist.stddev = 25;
  sim::WorkloadConfig workload = sim::MakeUniformWorkload(
      kLocals, /*num_windows=*/4, /*event_rate=*/5'000, dist);
  workload.window_len_us = config.window_len_us;

  // --- reference: deterministic in-process run ---
  RealClock clock;
  obs::Registry sim_registry;
  obs::TraceRecorder sim_tracer;
  config.registry = &sim_registry;
  config.tracer = &sim_tracer;
  net::Network network(&clock);
  auto system = sim::BuildSystem(config, &network, &clock, 0);
  ASSERT_TRUE(system.ok());
  sim::SyncDriver sync_driver(&*system, &network, &clock);
  ASSERT_TRUE(sync_driver.Run(workload).ok());
  const std::vector<sim::WindowOutput> expected = sync_driver.outputs();
  ASSERT_EQ(expected.size(), workload.ExpectedWindows());
  const LinkTrafficMap sim_links = network.LinkTraffic();

  // The TCP run must build its own instruments so the registries stay
  // comparable but independent.
  config.registry = nullptr;
  config.tracer = nullptr;

  // --- TCP run: one transport per node role, loopback sockets ---
  std::vector<sim::WindowOutput> tcp_outputs;
  uint16_t port = 0;
  std::mutex port_mu;
  std::condition_variable port_cv;

  Result<sim::RunMetrics> root_metrics = Status::Internal("root never ran");
  std::thread root_thread([&] {
    sim::TcpRootOptions opts;
    opts.listen_port = 0;
    opts.on_listening = [&](uint16_t p) {
      std::lock_guard<std::mutex> lock(port_mu);
      port = p;
      port_cv.notify_all();
    };
    opts.on_result = [&](const sim::WindowOutput& out) {
      tcp_outputs.push_back(out);
    };
    root_metrics = sim::RunTcpRoot(config, workload.ExpectedWindows(), opts);
  });
  {
    std::unique_lock<std::mutex> lock(port_mu);
    port_cv.wait(lock, [&] { return port != 0; });
  }

  std::vector<Result<sim::TcpLocalReport>> reports(
      kLocals, Status::Internal("local never ran"));
  std::vector<std::thread> local_threads;
  for (size_t i = 0; i < kLocals; ++i) {
    local_threads.emplace_back([&, i] {
      sim::TcpLocalOptions opts;
      opts.root_port = port;
      reports[i] = sim::RunTcpLocal(config, workload,
                                    static_cast<NodeId>(i + 1), opts);
    });
  }
  root_thread.join();
  for (auto& t : local_threads) t.join();

  ASSERT_TRUE(root_metrics.ok()) << root_metrics.status();
  for (size_t i = 0; i < kLocals; ++i) {
    ASSERT_TRUE(reports[i].ok()) << "local " << i + 1 << ": "
                                 << reports[i].status();
  }

  // (a) Exact quantile parity, window by window, value by value.
  ASSERT_EQ(tcp_outputs.size(), expected.size());
  for (size_t w = 0; w < expected.size(); ++w) {
    EXPECT_EQ(tcp_outputs[w].window_id, expected[w].window_id);
    EXPECT_EQ(tcp_outputs[w].global_size, expected[w].global_size);
    ASSERT_EQ(tcp_outputs[w].values.size(), expected[w].values.size());
    for (size_t q = 0; q < expected[w].values.size(); ++q) {
      EXPECT_EQ(tcp_outputs[w].values[q], expected[w].values[q])
          << "window " << w << " quantile " << config.quantiles[q];
    }
  }

  // (b) Byte parity per link: TCP socket bytes == simulated accounting.
  // local -> root links, measured where the bytes were written.
  uint64_t tcp_events_total = 0;
  for (size_t i = 0; i < kLocals; ++i) {
    const NodeId id = static_cast<NodeId>(i + 1);
    const auto& sent = reports[i]->sent_links;
    auto sim_it = sim_links.find({id, 0});
    auto tcp_it = sent.find({id, 0});
    ASSERT_NE(sim_it, sim_links.end());
    ASSERT_NE(tcp_it, sent.end());
    EXPECT_EQ(tcp_it->second.bytes, sim_it->second.bytes)
        << "local " << id << " -> root byte mismatch";
    EXPECT_EQ(tcp_it->second.messages, sim_it->second.messages);
    EXPECT_EQ(tcp_it->second.events, sim_it->second.events);
    tcp_events_total += reports[i]->events_ingested;
  }
  EXPECT_EQ(tcp_events_total, sync_driver.events_ingested());

  // Cluster-wide totals as the root measured them (recv + sent sockets)
  // equal the simulation's all-links totals.
  uint64_t sim_bytes = 0, sim_msgs = 0, sim_events = 0;
  for (const auto& [link, counters] : sim_links) {
    (void)link;
    sim_bytes += counters.bytes;
    sim_msgs += counters.messages;
    sim_events += counters.events;
  }
  // The TCP run additionally carries one kShutdown frame per local
  // (root -> local), absent from the simulated run's accounting.
  const uint64_t shutdown_bytes = kLocals * net::kEnvelopeWireBytes;
  EXPECT_EQ(root_metrics->network_total.bytes, sim_bytes + shutdown_bytes);
  EXPECT_EQ(root_metrics->network_total.messages, sim_msgs + kLocals);
  EXPECT_EQ(root_metrics->network_total.events, sim_events);
  EXPECT_EQ(root_metrics->windows_emitted, workload.ExpectedWindows());

  // (c) Registry parity: every `dema.*` protocol counter the root records
  // must be identical across the two transports — the protocol's accounting
  // is a pure function of the seeded data, not of the wire.
  ASSERT_NE(root_metrics->registry, nullptr);
  std::map<std::string, uint64_t> sim_dema, tcp_dema;
  for (const auto& [name, value] : sim_registry.CounterValues()) {
    if (name.rfind("dema.", 0) == 0) sim_dema[name] = value;
  }
  for (const auto& [name, value] : root_metrics->registry->CounterValues()) {
    if (name.rfind("dema.", 0) == 0) tcp_dema[name] = value;
  }
  EXPECT_FALSE(sim_dema.empty());
  EXPECT_EQ(sim_dema, tcp_dema);

  // (d) Both runs traced one span per emitted window, and the sim spans'
  // totals agree with the protocol counters.
  ASSERT_NE(root_metrics->tracer, nullptr);
  EXPECT_EQ(root_metrics->tracer->total_recorded(), expected.size());
  EXPECT_EQ(sim_tracer.total_recorded(), expected.size());
  uint64_t span_events = 0;
  for (const obs::WindowTrace& span : sim_tracer.Snapshot()) {
    span_events += span.global_size;
  }
  EXPECT_EQ(span_events, sim_dema.at("dema.global_events"));
}

}  // namespace
}  // namespace dema::transport
