// Unit tests for the observability library: instrument registry, log2
// histogram, per-window trace ring, and the JSON/logging sinks.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/time.h"
#include "obs/registry.h"
#include "obs/sink.h"
#include "obs/trace.h"

namespace dema::obs {
namespace {

TEST(Registry, GetReturnsStablePointers) {
  Registry reg;
  Counter* a = reg.GetCounter("dema.windows");
  Counter* b = reg.GetCounter("dema.windows");
  EXPECT_EQ(a, b);
  a->Increment();
  a->Increment(4);
  EXPECT_EQ(b->Value(), 5u);
  EXPECT_EQ(reg.CounterValues().at("dema.windows"), 5u);
}

TEST(Registry, GaugesGoUpAndDown) {
  Registry reg;
  Gauge* g = reg.GetGauge("local.retained_windows{node=1}");
  g->Set(3);
  g->Add(-2);
  EXPECT_EQ(g->Value(), 1);
  EXPECT_EQ(reg.GaugeValues().at("local.retained_windows{node=1}"), 1);
}

TEST(Registry, FindNeverCreates) {
  Registry reg;
  EXPECT_EQ(reg.FindCounter("missing"), nullptr);
  EXPECT_EQ(reg.FindGauge("missing"), nullptr);
  EXPECT_EQ(reg.FindHistogram("missing"), nullptr);
  reg.GetCounter("present");
  EXPECT_NE(reg.FindCounter("present"), nullptr);
  EXPECT_TRUE(reg.GaugeValues().empty());
}

TEST(Registry, SameNameDifferentKindsCoexist) {
  Registry reg;
  reg.GetCounter("x")->Increment();
  reg.GetGauge("x")->Set(-7);
  reg.GetHistogram("x")->Record(9);
  EXPECT_EQ(reg.CounterValues().at("x"), 1u);
  EXPECT_EQ(reg.GaugeValues().at("x"), -7);
  EXPECT_EQ(reg.HistogramSummaries().at("x").count, 1u);
}

TEST(Histogram, BucketBoundsTileTheRange) {
  EXPECT_EQ(Histogram::BucketLo(0), 0u);
  EXPECT_EQ(Histogram::BucketHi(0), 0u);
  for (size_t b = 1; b < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketLo(b), Histogram::BucketHi(b - 1) + 1)
        << "gap between buckets " << b - 1 << " and " << b;
  }
  EXPECT_EQ(Histogram::BucketHi(Histogram::kNumBuckets - 1), UINT64_MAX);
}

TEST(Histogram, ExactCountSumMinMax) {
  Histogram h;
  for (uint64_t v : {0u, 1u, 7u, 100u, 100u}) h.Record(v);
  Histogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 208u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 208.0 / 5);
}

TEST(Histogram, SingleRepeatedValueHasExactPercentiles) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(42);
  Histogram::Summary s = h.Summarize();
  // min == max clamps the interpolation to the exact value.
  EXPECT_DOUBLE_EQ(s.p50, 42.0);
  EXPECT_DOUBLE_EQ(s.p99, 42.0);
}

TEST(Histogram, PercentilesAreOrderedAndBounded) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  Histogram::Summary s = h.Summarize();
  EXPECT_LE(static_cast<double>(s.min), s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, static_cast<double>(s.max));
  // Log2 buckets bound the per-sample error by a factor of 2.
  EXPECT_GE(s.p50, 250.0);
  EXPECT_LE(s.p50, 1000.0);
}

TEST(Histogram, EmptySummaryIsAllZero) {
  Histogram h;
  Histogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
}

TEST(Histogram, ConcurrentRecordsLoseNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  Histogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, static_cast<uint64_t>(kThreads * kPerThread - 1));
}

TEST(Trace, RingKeepsTheMostRecentSpans) {
  TraceRecorder rec(/*capacity=*/4);
  for (uint64_t id = 0; id < 6; ++id) {
    WindowTrace t;
    t.window_id = id;
    rec.Record(t);
  }
  EXPECT_EQ(rec.total_recorded(), 6u);
  std::vector<WindowTrace> spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].window_id, i + 2) << "oldest-first order";
  }
}

TEST(Trace, JsonListsEverySpan) {
  TraceRecorder rec(8);
  WindowTrace t;
  t.window_id = 7;
  t.global_size = 123;
  t.clock_skew = true;
  rec.Record(t);
  std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"window_id\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"global_size\":123"), std::string::npos) << json;
  EXPECT_NE(json.find("\"clock_skew\":true"), std::string::npos) << json;
}

TEST(Sink, ObsToJsonCombinesMetricsAndSpans) {
  Registry reg;
  reg.GetCounter("dema.windows")->Increment(2);
  reg.GetHistogram("root.window_latency_us")->Record(100);
  TraceRecorder rec(4);
  WindowTrace t;
  t.window_id = 1;
  rec.Record(t);
  std::string json = ObsToJson(reg, &rec);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"dema.windows\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("root.window_latency_us"), std::string::npos);
  // Null tracer still yields a valid document with an empty span list.
  std::string no_spans = ObsToJson(reg, nullptr);
  EXPECT_NE(no_spans.find("\"spans\":[]"), std::string::npos) << no_spans;
}

TEST(Sink, WriteObsFileRoundTrips) {
  Registry reg;
  reg.GetCounter("transport.sent.bytes{link=1->0}")->Increment(512);
  TraceRecorder rec(4);
  std::string path =
      ::testing::TempDir() + "/obs_sink_test_" +
      std::to_string(::getpid()) + ".json";
  ASSERT_TRUE(WriteObsFile(path, reg, &rec).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), ObsToJson(reg, &rec));
  std::remove(path.c_str());
}

TEST(Sink, WriteObsFileFailsOnBadPath) {
  Registry reg;
  EXPECT_FALSE(WriteObsFile("/nonexistent-dir/x/y.json", reg, nullptr).ok());
}

TEST(Sink, PeriodicLoggerTicksAndStops) {
  Registry reg;
  reg.GetCounter("dema.windows")->Increment();
  PeriodicLogger logger(&reg, /*interval_us=*/MillisUs(2));
  // Wait for at least one dump without assuming scheduler timing.
  for (int i = 0; i < 500 && logger.ticks() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(logger.ticks(), 1u);
  logger.Stop();
  uint64_t after_stop = logger.ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(logger.ticks(), after_stop);
}

}  // namespace
}  // namespace dema::obs
