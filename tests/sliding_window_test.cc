// Tests for the sliding-window extension: assigner arithmetic, the window
// manager with overlapping windows, and Dema computing exact quantiles over
// sliding windows end-to-end.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/clock.h"
#include "sim/driver.h"
#include "sim/topology.h"
#include "stream/quantile.h"
#include "stream/window.h"
#include "stream/window_manager.h"

namespace dema {
namespace {

using stream::SlidingWindowAssigner;
using stream::WindowSpec;

TEST(WindowSpec, NormalizesSlide) {
  EXPECT_TRUE((WindowSpec{1000, 0}).IsTumbling());
  EXPECT_TRUE((WindowSpec{1000, 1000}).IsTumbling());
  EXPECT_TRUE((WindowSpec{1000, 2000}).IsTumbling());  // slide > len clamps
  EXPECT_FALSE((WindowSpec{1000, 500}).IsTumbling());
  EXPECT_EQ((WindowSpec{1000, 500}).slide(), 500);
}

TEST(SlidingAssigner, TumblingDegeneratesToOneWindow) {
  SlidingWindowAssigner a(WindowSpec{1000, 0});
  std::vector<net::WindowId> ids;
  a.AssignWindows(1500, &ids);
  EXPECT_EQ(ids, std::vector<net::WindowId>{1});
}

TEST(SlidingAssigner, OverlapAssignsAllCoveringWindows) {
  // length 1000, slide 250: a point belongs to up to 4 windows.
  SlidingWindowAssigner a(WindowSpec{1000, 250});
  std::vector<net::WindowId> ids;
  a.AssignWindows(1000, &ids);
  // Windows starting at 250, 500, 750, 1000 cover t=1000 (window 0 covers
  // [0, 1000) and just misses it).
  EXPECT_EQ(ids, (std::vector<net::WindowId>{1, 2, 3, 4}));

  ids.clear();
  a.AssignWindows(0, &ids);
  EXPECT_EQ(ids, std::vector<net::WindowId>{0});

  ids.clear();
  a.AssignWindows(999, &ids);
  EXPECT_EQ(ids, (std::vector<net::WindowId>{0, 1, 2, 3}));
}

TEST(SlidingAssigner, WindowBoundsAndClosing) {
  SlidingWindowAssigner a(WindowSpec{1000, 250});
  EXPECT_EQ(a.WindowStart(4), 1000);
  EXPECT_EQ(a.WindowEnd(4), 2000);
  EXPECT_EQ(a.ClosedUpTo(999), 0u);
  EXPECT_EQ(a.ClosedUpTo(1000), 1u);   // window 0 ([0,1000)) closed
  EXPECT_EQ(a.ClosedUpTo(1250), 2u);   // window 1 ([250,1250)) closed too
  EXPECT_EQ(a.ClosedUpTo(2000), 5u);
}

TEST(SlidingAssigner, EveryAssignedWindowActuallyCoversThePoint) {
  for (DurationUs slide : {100, 250, 333, 1000}) {
    SlidingWindowAssigner a(WindowSpec{1000, slide});
    for (TimestampUs t = 0; t < 5000; t += 37) {
      std::vector<net::WindowId> ids;
      a.AssignWindows(t, &ids);
      ASSERT_FALSE(ids.empty());
      for (net::WindowId id : ids) {
        EXPECT_GE(t, a.WindowStart(id));
        EXPECT_LT(t, a.WindowEnd(id));
      }
      // Completeness: the windows just outside the returned range miss t.
      if (ids.front() > 0) {
        EXPECT_GE(t, a.WindowEnd(ids.front() - 1));
      }
      EXPECT_LT(t, a.WindowStart(ids.back() + 1));
    }
  }
}

TEST(SlidingWindowManager, EventsLandInAllCoveringWindows) {
  stream::WindowManager wm(WindowSpec{1000, 500});
  wm.OnEvent(Event{1.0, 750, 1, 0});  // covered by windows 0 ([0,1000)) and 1
  EXPECT_EQ(wm.open_windows(), 2u);
  EXPECT_EQ(wm.buffered_events(), 2u);
  auto closed = wm.AdvanceWatermark(1400);  // closes window 0 ([0,1000)) only
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].id, 0u);
  ASSERT_EQ(closed[0].sorted_events.size(), 1u);
  auto rest = wm.AdvanceWatermark(1500);  // window 1 ([500,1500)) ends here
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].sorted_events.size(), 1u);
}

// End-to-end: Dema over sliding windows matches a per-window oracle.
TEST(SlidingDema, ExactQuantilesOverOverlappingWindows) {
  const DurationUs kLen = kMicrosPerSecond;
  const DurationUs kSlide = kMicrosPerSecond / 4;

  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = 3;
  config.window_len_us = kLen;
  config.window_slide_us = kSlide;
  config.gamma = 64;
  config.quantiles = {0.5};

  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kUniform;
  dist.lo = 0;
  dist.hi = 1000;
  sim::WorkloadConfig load =
      sim::MakeUniformWorkload(3, /*num_windows=*/3, /*event_rate=*/2000, dist);
  load.window_len_us = kLen;
  load.window_slide_us = kSlide;

  RealClock clock;
  net::Network network(&clock);
  auto system_result = sim::BuildSystem(config, &network, &clock, 0);
  ASSERT_TRUE(system_result.ok()) << system_result.status();
  sim::System system = std::move(system_result).MoveValueUnsafe();
  sim::SyncDriver driver(&system, &network, &clock);
  driver.set_record_events(true);
  ASSERT_TRUE(driver.Run(load).ok());

  // 3 seconds of events, windows every 250ms closing up to t=3s: ids 0..8.
  ASSERT_EQ(driver.outputs().size(), load.ExpectedWindows());
  EXPECT_EQ(load.ExpectedWindows(), 9u);

  // Rebuild the full event set and compute the oracle per window id.
  std::vector<Event> all;
  for (const auto& chunk : driver.recorded_events()) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  stream::SlidingWindowAssigner assigner(WindowSpec{kLen, kSlide});
  for (const sim::WindowOutput& out : driver.outputs()) {
    std::vector<double> values;
    for (const Event& e : all) {
      if (e.timestamp >= assigner.WindowStart(out.window_id) &&
          e.timestamp < assigner.WindowEnd(out.window_id)) {
        values.push_back(e.value);
      }
    }
    ASSERT_EQ(values.size(), out.global_size) << "window " << out.window_id;
    auto oracle = stream::ExactQuantileValues(values, 0.5);
    ASSERT_TRUE(oracle.ok());
    EXPECT_DOUBLE_EQ(out.values[0], *oracle) << "window " << out.window_id;
  }
}

TEST(SlidingDema, BaselinesRejectSlidingWindows) {
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kCentralExact;
  config.window_slide_us = config.window_len_us / 2;
  RealClock clock;
  net::Network network(&clock);
  auto result = sim::BuildSystem(config, &network, &clock, 0);
  EXPECT_EQ(result.status().code(), StatusCode::kNotImplemented);
}

}  // namespace
}  // namespace dema
