// TCP crash/relaunch test: a forked local process is killed mid-run at a
// window boundary and relaunched from its checkpoint. The cluster must still
// emit every window without degradation and account for every event.
//
// Kept in its own binary: RunTcpClusterForked forks, which must happen before
// the process creates any threads, and mixes badly with sanitizer runtimes
// (this test is excluded from DEMA_SANITIZE / DEMA_TSAN builds).

#include <gtest/gtest.h>

#include "sim/driver.h"
#include "sim/tcp_run.h"
#include "sim/topology.h"

namespace dema {
namespace {

TEST(TcpCrashRestart, ForkedClusterSurvivesKillAndRelaunch) {
  constexpr size_t kLocals = 3;
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = kLocals;
  config.gamma = 500;
  config.quantiles = {0.5, 0.99};
  config.adaptive_gamma = false;
  // The root must retry candidate requests that died with the crashed
  // process; ticks fire on the root's idle beats (~2ms apart).
  config.root_deadline_ticks = 100;
  config.root_max_retries = 6;

  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kSensorWalk;
  dist.lo = 0;
  dist.hi = 10'000;
  dist.stddev = 25;
  sim::WorkloadConfig workload = sim::MakeUniformWorkload(
      kLocals, /*num_windows=*/5, /*event_rate=*/5'000, dist);
  workload.window_len_us = config.window_len_us;

  // Fault-free reference for the event total (the relaunched process refeeds
  // the crash window from its checkpoint cutoff, so nothing may be lost).
  auto reference = sim::RunSync(config, workload);
  ASSERT_TRUE(reference.ok()) << reference.status();

  sim::TcpClusterFaultOptions fault;
  fault.crash_node = 2;
  fault.crash_at_window = 2;
  fault.checkpoint_dir = ::testing::TempDir();

  auto metrics = sim::RunTcpClusterForked(config, workload, fault);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->windows_emitted, workload.ExpectedWindows());
  EXPECT_EQ(metrics->events_ingested, reference->events_ingested);
  // Recovery, not degradation: every window completed exactly.
  EXPECT_EQ(metrics->dema.degraded_windows, 0u);
}

TEST(TcpCrashRestart, CrashNeedsDeadlinesAndCheckpointDir) {
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = 2;
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kUniform;
  sim::WorkloadConfig workload =
      sim::MakeUniformWorkload(2, /*num_windows=*/2, /*event_rate=*/100, dist);
  workload.window_len_us = config.window_len_us;

  sim::TcpClusterFaultOptions fault;
  fault.crash_node = 1;
  fault.crash_at_window = 1;
  fault.checkpoint_dir = ::testing::TempDir();
  // Without deadlines the root would stall forever on the dead process.
  config.root_deadline_ticks = 0;
  EXPECT_FALSE(sim::RunTcpClusterForked(config, workload, fault).ok());

  config.root_deadline_ticks = 10;
  fault.checkpoint_dir.clear();
  EXPECT_FALSE(sim::RunTcpClusterForked(config, workload, fault).ok());
}

}  // namespace
}  // namespace dema
