// Tests for the per-node adaptive gamma extension (the paper's Section 3.3
// future work): heterogeneous nodes converge to different slice factors,
// results stay exact, and the per-node cost beats the global compromise.

#include <gtest/gtest.h>

#include "common/clock.h"
#include "dema/adaptive_gamma.h"
#include "dema/root_node.h"
#include "sim/driver.h"
#include "sim/topology.h"
#include "stream/quantile.h"

namespace dema {
namespace {

struct HeteroRun {
  std::vector<sim::WindowOutput> outputs;
  std::vector<std::vector<Event>> recorded;
  uint64_t gamma_small = 0;  // final gamma at the low-rate node
  uint64_t gamma_big = 0;    // final gamma at the high-rate node
  uint64_t candidate_events = 0;
  uint64_t synopsis_slices = 0;
};

/// Two locals with a 50x rate gap.
HeteroRun RunHetero(bool per_node, uint64_t windows) {
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = 2;
  config.gamma = 1'000;
  config.adaptive_gamma = true;
  config.per_node_gamma = per_node;

  sim::WorkloadConfig load;
  load.num_windows = windows;
  load.window_len_us = config.window_len_us;
  for (size_t i = 0; i < 2; ++i) {
    gen::GeneratorConfig cfg;
    cfg.node = static_cast<NodeId>(i + 1);
    cfg.seed = 500 + i;
    cfg.distribution.kind = gen::DistributionKind::kUniform;
    cfg.distribution.lo = 0;
    cfg.distribution.hi = 1000;
    cfg.event_rate = i == 0 ? 2'000 : 100'000;  // 50x heterogeneity
    load.generators.push_back(cfg);
  }

  RealClock clock;
  net::Network network(&clock);
  auto system_result = sim::BuildSystem(config, &network, &clock, 0);
  EXPECT_TRUE(system_result.ok()) << system_result.status();
  sim::System system = std::move(system_result).MoveValueUnsafe();
  sim::SyncDriver driver(&system, &network, &clock);
  driver.set_record_events(true);
  Status st = driver.Run(load);
  EXPECT_TRUE(st.ok()) << st;

  auto* root = static_cast<core::DemaRootNode*>(system.root.get());
  HeteroRun run;
  run.outputs = driver.outputs();
  run.recorded = driver.recorded_events();
  run.gamma_small = root->current_gamma_for(1);
  run.gamma_big = root->current_gamma_for(2);
  run.candidate_events = root->stats().candidate_events;
  run.synopsis_slices = root->stats().synopsis_slices;
  return run;
}

TEST(PerNodeGamma, NodesConvergeToDifferentFactors) {
  HeteroRun run = RunHetero(/*per_node=*/true, /*windows=*/12);
  // gamma* grows with sqrt(l_i): the 50x-rate node should settle well above
  // the low-rate node.
  EXPECT_GT(run.gamma_big, run.gamma_small * 3)
      << "small=" << run.gamma_small << " big=" << run.gamma_big;
}

TEST(PerNodeGamma, GlobalModeKeepsOneFactor) {
  HeteroRun run = RunHetero(/*per_node=*/false, /*windows=*/12);
  EXPECT_EQ(run.gamma_small, run.gamma_big);
}

TEST(PerNodeGamma, ResultsStayExact) {
  HeteroRun run = RunHetero(/*per_node=*/true, /*windows=*/8);
  ASSERT_EQ(run.outputs.size(), 8u);
  for (const auto& out : run.outputs) {
    std::vector<double> values;
    for (const Event& e : run.recorded[out.window_id]) values.push_back(e.value);
    auto oracle = stream::ExactQuantileValues(values, 0.5);
    ASSERT_TRUE(oracle.ok());
    EXPECT_DOUBLE_EQ(out.values[0], *oracle) << "window " << out.window_id;
  }
}

TEST(PerNodeGamma, BeatsGlobalCompromiseOnModelCost) {
  HeteroRun per_node = RunHetero(/*per_node=*/true, /*windows=*/16);
  HeteroRun global = RunHetero(/*per_node=*/false, /*windows=*/16);
  uint64_t per_node_cost = 2 * per_node.synopsis_slices + per_node.candidate_events;
  uint64_t global_cost = 2 * global.synopsis_slices + global.candidate_events;
  // Under 50x rate heterogeneity the per-node factors should not lose to the
  // single global factor on the paper's cost metric (allow 5% slack for
  // adaptation transients on a short run).
  EXPECT_LT(per_node_cost, global_cost + global_cost / 20)
      << "per-node=" << per_node_cost << " global=" << global_cost;
}

TEST(PerNodeGamma, CurrentGammaForUnknownNodeFallsBack) {
  RealClock clock;
  net::Network network(&clock);
  core::DemaRootNodeOptions opts;
  opts.locals = {1, 2};
  opts.initial_gamma = 777;
  opts.adaptive_gamma = true;
  opts.per_node_gamma = true;
  ASSERT_TRUE(network.RegisterNode(0).ok());
  core::DemaRootNode root(opts, &network, &clock);
  EXPECT_EQ(root.current_gamma_for(99), 777u);  // unknown node -> global
  EXPECT_EQ(root.current_gamma_for(1), 777u);   // before any observation
}

}  // namespace
}  // namespace dema
