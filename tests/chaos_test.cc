// Chaos-harness tests: a seeded fault schedule must replay deterministically,
// and every window of a faulty run must either match the oracle exactly or be
// explicitly degraded with a cause — never silently wrong or missing.

#include <gtest/gtest.h>

#include "sim/chaos.h"
#include "sim/driver.h"
#include "sim/topology.h"

namespace dema::sim {
namespace {

SystemConfig ChaosConfig(size_t locals = 2) {
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = locals;
  config.gamma = 64;
  config.quantiles = {0.5, 0.9};
  return config;
}

WorkloadConfig ChaosWorkload(const SystemConfig& config, uint64_t windows = 5,
                             double rate = 2000) {
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kUniform;
  dist.lo = 0;
  dist.hi = 1000;
  WorkloadConfig load =
      MakeUniformWorkload(config.num_locals, windows, rate, dist);
  load.window_len_us = config.window_len_us;
  return load;
}

// --- spec parsing -----------------------------------------------------------

TEST(FaultScheduleSpec, ParsesEveryKey) {
  auto plan = ParseFaultSchedule(
      "drop=0.03,dup=0.05,delay-us=1500,delay-prob=0.4,seed=7,deadline=2,"
      "retries=5,crash=2@3+2,partition=1-0@2..4");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_DOUBLE_EQ(plan->drop_prob, 0.03);
  EXPECT_DOUBLE_EQ(plan->duplicate_prob, 0.05);
  EXPECT_EQ(plan->delay_us_max, 1500);
  EXPECT_DOUBLE_EQ(plan->delay_prob, 0.4);
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_EQ(plan->deadline_ticks, 2u);
  EXPECT_EQ(plan->max_retries, 5u);
  ASSERT_EQ(plan->crashes.size(), 1u);
  EXPECT_EQ(plan->crashes[0].node, 2u);
  EXPECT_EQ(plan->crashes[0].at_window, 3u);
  EXPECT_EQ(plan->crashes[0].down_windows, 2u);
  ASSERT_EQ(plan->partitions.size(), 1u);
  EXPECT_EQ(plan->partitions[0].a, 1u);
  EXPECT_EQ(plan->partitions[0].b, 0u);
  EXPECT_EQ(plan->partitions[0].from_window, 2u);
  EXPECT_EQ(plan->partitions[0].until_window, 4u);
}

TEST(FaultScheduleSpec, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFaultSchedule("bogus=1").ok());
  EXPECT_FALSE(ParseFaultSchedule("drop=1.5").ok());   // probability >= 1
  EXPECT_FALSE(ParseFaultSchedule("drop=nope").ok());
  EXPECT_FALSE(ParseFaultSchedule("crash=1").ok());    // missing @WINDOW
  EXPECT_FALSE(ParseFaultSchedule("crash=1@2+0").ok());  // zero downtime
  EXPECT_FALSE(ParseFaultSchedule("partition=1-0@4..2").ok());  // until<=from
  EXPECT_FALSE(ParseFaultSchedule("corrupt=1.0").ok());  // probability >= 1
  EXPECT_FALSE(ParseFaultSchedule("tamper=1").ok());     // missing @FROM..UNTIL
  EXPECT_FALSE(ParseFaultSchedule("tamper=1@4..2").ok());  // until<=from
}

TEST(FaultScheduleSpec, ParsesCorruptionKeys) {
  auto plan = ParseFaultSchedule(
      "corrupt=0.07,tamper-prob=0.5,strikes=2,tamper=1@2..5,seed=9");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_DOUBLE_EQ(plan->corrupt_prob, 0.07);
  EXPECT_DOUBLE_EQ(plan->tamper_prob, 0.5);
  EXPECT_EQ(plan->quarantine_strikes, 2u);
  ASSERT_EQ(plan->tampers.size(), 1u);
  EXPECT_EQ(plan->tampers[0].node, 1u);
  EXPECT_EQ(plan->tampers[0].from_window, 2u);
  EXPECT_EQ(plan->tampers[0].until_window, 5u);
}

// --- invariants -------------------------------------------------------------

TEST(Chaos, FaultFreeRunIsAllExact) {
  SystemConfig config = ChaosConfig();
  FaultPlan plan;  // no probabilistic faults, no crashes
  auto report = RunChaos(config, ChaosWorkload(config), plan);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->Invariant()) << report->violation;
  EXPECT_EQ(report->exact_windows, 5u);
  EXPECT_EQ(report->degraded_windows, 0u);
  EXPECT_EQ(report->messages_dropped, 0u);
}

TEST(Chaos, SeededScheduleReplaysIdentically) {
  SystemConfig config = ChaosConfig(3);
  auto plan = ParseFaultSchedule(
      "drop=0.05,dup=0.05,delay-us=2000,seed=11,crash=1@2+1,partition=2-0@3..4");
  ASSERT_TRUE(plan.ok()) << plan.status();
  WorkloadConfig load = ChaosWorkload(config, /*windows=*/6);

  auto first = RunChaos(config, load, *plan);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->Invariant()) << first->violation;
  EXPECT_EQ(first->restarts, 1u);

  auto second = RunChaos(config, load, *plan);
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_EQ(first->windows.size(), second->windows.size());
  for (size_t i = 0; i < first->windows.size(); ++i) {
    const ChaosWindowReport& a = first->windows[i];
    const ChaosWindowReport& b = second->windows[i];
    EXPECT_EQ(a.emitted, b.emitted) << "window " << a.window_id;
    EXPECT_EQ(a.degraded, b.degraded) << "window " << a.window_id;
    EXPECT_EQ(a.degrade_cause, b.degrade_cause) << "window " << a.window_id;
    EXPECT_EQ(a.rank_error_bound, b.rank_error_bound) << "window " << a.window_id;
    EXPECT_EQ(a.global_size, b.global_size) << "window " << a.window_id;
    EXPECT_EQ(a.values, b.values) << "window " << a.window_id;
  }
  EXPECT_EQ(first->messages_dropped, second->messages_dropped);
  EXPECT_EQ(first->duplicates_injected, second->duplicates_injected);
  EXPECT_EQ(first->messages_delayed, second->messages_delayed);
  EXPECT_EQ(first->root_retries, second->root_retries);
}

TEST(Chaos, HeavyLossDegradesExplicitlyInsteadOfStalling) {
  SystemConfig config = ChaosConfig();
  auto plan = ParseFaultSchedule("drop=0.3,seed=3,deadline=2,retries=3");
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto report = RunChaos(config, ChaosWorkload(config), *plan);
  ASSERT_TRUE(report.ok()) << report.status();
  // The contract under loss: no silent stalls, no wrong answers.
  EXPECT_TRUE(report->Invariant()) << report->violation;
  EXPECT_EQ(report->missing_windows, 0u);
  EXPECT_EQ(report->mismatched_windows, 0u);
  EXPECT_GT(report->messages_dropped, 0u);
  // With this seed, synopsis losses are unrecoverable: windows degrade, each
  // carrying a cause and a rank-error bound.
  EXPECT_GT(report->degraded_windows, 0u);
  for (const ChaosWindowReport& w : report->windows) {
    if (!w.degraded) continue;
    EXPECT_FALSE(w.degrade_cause.empty()) << "window " << w.window_id;
    EXPECT_GT(w.rank_error_bound, 0u) << "window " << w.window_id;
  }
}

TEST(Chaos, CrashedNodeRecoversFromCheckpoint) {
  SystemConfig config = ChaosConfig(3);
  auto plan = ParseFaultSchedule("crash=2@2+2,seed=5");
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto report = RunChaos(config, ChaosWorkload(config, /*windows=*/6), *plan);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->Invariant()) << report->violation;
  EXPECT_EQ(report->restarts, 1u);
  // The oracle covers only fed events, so windows during the outage compare
  // against the two surviving nodes — every window must still be exact (no
  // messages were lost, only a node's source stream).
  EXPECT_EQ(report->exact_windows, 6u);
}

TEST(Chaos, CorruptFramesAreDetectedNeverSilentlyWrong) {
  // Mixed loss + frame corruption: every corrupted frame must be caught by
  // the CRC trailer and handled like a loss — recovered by retries or
  // explicitly degraded, never a crashed run and never a wrong quantile.
  SystemConfig config = ChaosConfig(3);
  auto plan = ParseFaultSchedule(
      "corrupt=0.05,drop=0.02,dup=0.03,seed=21,deadline=2,retries=3");
  ASSERT_TRUE(plan.ok()) << plan.status();
  WorkloadConfig load = ChaosWorkload(config, /*windows=*/6);
  auto report = RunChaos(config, load, *plan);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->Invariant()) << report->violation;
  EXPECT_EQ(report->mismatched_windows, 0u);
  EXPECT_EQ(report->missing_windows, 0u);
  EXPECT_GT(report->messages_corrupted, 0u);
  // Honest traffic is never rejected by validation: the CRC layer catches
  // wire corruption before the payloads reach the root.
  EXPECT_EQ(report->rejected_payloads, 0u);
  EXPECT_EQ(report->quarantines, 0u);

  // The corruption schedule replays deterministically.
  auto replay = RunChaos(config, load, *plan);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(report->messages_corrupted, replay->messages_corrupted);
  ASSERT_EQ(report->windows.size(), replay->windows.size());
  for (size_t i = 0; i < report->windows.size(); ++i) {
    EXPECT_EQ(report->windows[i].values, replay->windows[i].values);
    EXPECT_EQ(report->windows[i].degraded, replay->windows[i].degraded);
  }
}

TEST(Chaos, TamperingLocalIsQuarantinedThenReadmitted) {
  // Node 2 field-tampers (valid CRC) during windows 1..3: only the root's
  // validation layer can catch it. The strike budget quarantines the node,
  // affected windows degrade with cause=quarantine, probation begins once
  // the term is served, and clean windows re-admit it — the final windows
  // are exact over all locals again.
  SystemConfig config = ChaosConfig(3);
  auto plan = ParseFaultSchedule("tamper=2@1..3,strikes=2,seed=13,deadline=2");
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto report = RunChaos(config, ChaosWorkload(config, /*windows=*/10), *plan);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->Invariant()) << report->violation;
  EXPECT_GT(report->messages_corrupted, 0u);
  EXPECT_GT(report->rejected_payloads, 0u);
  EXPECT_GE(report->quarantines, 1u);
  EXPECT_GE(report->readmissions, 1u);
  bool saw_quarantine_cause = false;
  for (const ChaosWindowReport& w : report->windows) {
    if (w.degrade_cause == "quarantine") saw_quarantine_cause = true;
  }
  EXPECT_TRUE(saw_quarantine_cause);
  // After re-admission the cluster answers exactly again.
  const ChaosWindowReport& last = report->windows.back();
  EXPECT_TRUE(last.emitted);
  EXPECT_FALSE(last.degraded);
  EXPECT_TRUE(last.matches_oracle);
}

TEST(Chaos, TamperScheduleRequiresQuarantine) {
  // Tampered payloads are indistinguishable from honest ones below the
  // validation layer; with quarantine disabled the run could only stall or
  // lie, so the harness refuses the combination up front.
  SystemConfig config = ChaosConfig(3);
  auto plan = ParseFaultSchedule("tamper=2@1..3,strikes=0");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(RunChaos(config, ChaosWorkload(config), *plan).ok());
}

TEST(Chaos, RejectsNonDemaSystems) {
  SystemConfig config = ChaosConfig();
  config.kind = SystemKind::kCentralExact;
  FaultPlan plan;
  EXPECT_FALSE(RunChaos(config, ChaosWorkload(config), plan).ok());
}

}  // namespace
}  // namespace dema::sim
