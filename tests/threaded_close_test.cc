// Equality tests for the executor-backed window-close path: a sim run with
// --workers >= 2 must produce byte-identical window outputs to the inline
// run on the same seed (window ids, global sizes, and quantile values; only
// wall-clock latency may differ).

#include <gtest/gtest.h>

#include <vector>

#include "common/clock.h"
#include "obs/registry.h"
#include "sim/driver.h"
#include "sim/topology.h"

namespace dema {
namespace {

using sim::SystemConfig;
using sim::SystemKind;
using sim::WorkloadConfig;

WorkloadConfig Workload(size_t locals, uint64_t windows, double rate,
                        uint64_t seed_base = 1000) {
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kSensorWalk;
  dist.lo = 0;
  dist.hi = 10'000;
  dist.stddev = 25;
  return sim::MakeUniformWorkload(locals, windows, rate, dist, {}, seed_base);
}

std::vector<sim::WindowOutput> RunOnce(SystemConfig config,
                                       const WorkloadConfig& load,
                                       obs::Registry* registry = nullptr) {
  RealClock clock;
  net::Network network(&clock);
  config.registry = registry;
  auto system = sim::BuildSystem(config, &network, &clock, 0);
  EXPECT_TRUE(system.ok()) << system.status();
  sim::System sys = std::move(system).MoveValueUnsafe();
  if (config.workers > 0) {
    EXPECT_NE(sys.executor, nullptr);
    EXPECT_EQ(sys.executor->workers(), config.workers);
  } else {
    EXPECT_EQ(sys.executor, nullptr);
  }

  WorkloadConfig workload = load;
  workload.window_len_us = config.window_len_us;
  workload.window_slide_us = config.window_slide_us;
  sim::SyncDriver driver(&sys, &network, &clock);
  Status st = driver.Run(workload);
  EXPECT_TRUE(st.ok()) << st;
  return driver.outputs();
}

/// Asserts deterministic equality: everything except wall-clock latency.
void ExpectSameOutputs(const std::vector<sim::WindowOutput>& inline_out,
                       const std::vector<sim::WindowOutput>& threaded_out) {
  ASSERT_EQ(inline_out.size(), threaded_out.size());
  for (size_t i = 0; i < inline_out.size(); ++i) {
    const auto& a = inline_out[i];
    const auto& b = threaded_out[i];
    EXPECT_EQ(a.window_id, b.window_id) << "window " << i;
    EXPECT_EQ(a.global_size, b.global_size) << "window " << i;
    EXPECT_EQ(a.degraded, b.degraded) << "window " << i;
    ASSERT_EQ(a.quantiles, b.quantiles) << "window " << i;
    ASSERT_EQ(a.values.size(), b.values.size()) << "window " << i;
    for (size_t q = 0; q < a.values.size(); ++q) {
      // Bit-identical, not approximately equal: both paths must select the
      // exact same event.
      EXPECT_EQ(a.values[q], b.values[q])
          << "window " << i << " quantile " << a.quantiles[q];
    }
  }
}

TEST(ThreadedClose, MatchesInlineBitForBit) {
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = 4;
  config.quantiles = {0.25, 0.5, 0.99};
  config.gamma = 500;

  WorkloadConfig load = Workload(config.num_locals, 6, 8'000);

  config.workers = 0;
  auto inline_out = RunOnce(config, load);
  config.workers = 3;
  auto threaded_out = RunOnce(config, load);
  ASSERT_FALSE(inline_out.empty());
  ExpectSameOutputs(inline_out, threaded_out);
}

TEST(ThreadedClose, MatchesInlineWithAdaptiveGamma) {
  // γ is resolved at submission time, so the adaptive controller must see the
  // same schedule (and cut identical slices) whether closes run inline or on
  // the pool.
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = 3;
  config.quantiles = {0.5, 0.9};
  config.gamma = 1'000;
  config.adaptive_gamma = true;

  WorkloadConfig load = Workload(config.num_locals, 8, 5'000, 77);

  config.workers = 0;
  auto inline_out = RunOnce(config, load);
  config.workers = 2;
  auto threaded_out = RunOnce(config, load);
  ASSERT_FALSE(inline_out.empty());
  ExpectSameOutputs(inline_out, threaded_out);
}

TEST(ThreadedClose, MatchesInlineWithSlidingWindows) {
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = 3;
  config.quantiles = {0.5};
  config.gamma = 400;
  config.window_slide_us = config.window_len_us / 4;

  WorkloadConfig load = Workload(config.num_locals, 5, 4'000, 5);

  config.workers = 0;
  auto inline_out = RunOnce(config, load);
  config.workers = 4;
  auto threaded_out = RunOnce(config, load);
  ASSERT_GT(inline_out.size(), 5u);  // sliding: more closes than horizons
  ExpectSameOutputs(inline_out, threaded_out);
}

TEST(ThreadedClose, ExecutorMetricsAccountEveryWindow) {
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = 2;
  config.quantiles = {0.5};
  config.gamma = 300;
  config.workers = 2;

  constexpr uint64_t kWindows = 4;
  WorkloadConfig load = Workload(config.num_locals, kWindows, 2'000);

  obs::Registry registry;
  auto outputs = RunOnce(config, load, &registry);
  ASSERT_EQ(outputs.size(), kWindows);

  // One close task per non-empty (node, window) pair.
  const obs::Counter* submitted = registry.FindCounter("exec.tasks_submitted");
  const obs::Counter* completed = registry.FindCounter("exec.tasks_completed");
  ASSERT_NE(submitted, nullptr);
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(submitted->Value(), config.num_locals * kWindows);
  EXPECT_EQ(completed->Value(), submitted->Value());
  EXPECT_EQ(registry.FindGauge("exec.workers")->Value(), 2);

  // Retained-event accounting drains back to zero once all windows are
  // served, and the peak gauge saw at least one retained window.
  int64_t peak = 0;
  for (const auto& [name, value] : registry.GaugeValues()) {
    if (name.rfind("local.retained_events_peak{", 0) == 0) {
      peak = std::max(peak, value);
    }
    if (name.rfind("local.retained_events{", 0) == 0) {
      EXPECT_EQ(value, 0) << name;
    }
  }
  EXPECT_GT(peak, 0);
}

TEST(ThreadedClose, CallerOwnedExecutorIsShared) {
  exec::Executor pool(exec::ExecutorOptions{.workers = 2});
  SystemConfig config;
  config.kind = SystemKind::kDema;
  config.num_locals = 2;
  config.quantiles = {0.5};
  config.gamma = 300;
  config.executor = &pool;  // overrides `workers`; System owns no pool

  WorkloadConfig load = Workload(config.num_locals, 3, 2'000);

  RealClock clock;
  net::Network network(&clock);
  auto system = sim::BuildSystem(config, &network, &clock, 0);
  ASSERT_TRUE(system.ok()) << system.status();
  sim::System sys = std::move(system).MoveValueUnsafe();
  ASSERT_EQ(sys.executor, nullptr);

  WorkloadConfig workload = load;
  workload.window_len_us = config.window_len_us;
  sim::SyncDriver driver(&sys, &network, &clock);
  ASSERT_TRUE(driver.Run(workload).ok());
  EXPECT_EQ(driver.outputs().size(), 3u);
  EXPECT_GT(pool.registry()->FindCounter("exec.tasks_submitted")->Value(), 0u);
}

}  // namespace
}  // namespace dema
