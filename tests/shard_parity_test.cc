// Multi-key parity: a K-key sharded run must produce byte-identical per-key
// quantiles to K independent single-key runs with the same seeds. This is
// the sharding layer's core correctness property — batching, demuxing, and
// strand scheduling must never change what any key computes.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/clock.h"
#include "net/network.h"
#include "shard/config.h"
#include "shard/sim_run.h"
#include "sim/driver.h"
#include "sim/topology.h"

namespace dema {
namespace {

gen::DistributionParams TestDistribution() {
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kSensorWalk;
  dist.lo = 0;
  dist.hi = 1000;
  dist.stddev = 5;
  return dist;
}

/// Single-key baseline for key `key`: the plain unsharded Dema pipeline on
/// the same fabric, seeded with the sharded run's per-key seed base.
std::vector<sim::WindowOutput> BaselineForKey(const shard::ShardedConfig& sc,
                                              net::KeyId key,
                                              uint64_t num_windows,
                                              double event_rate,
                                              uint64_t seed_base) {
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = sc.num_locals;
  config.window_len_us = sc.window_len_us;
  config.quantiles = sc.quantiles;
  config.gamma = sc.gamma;
  config.adaptive_gamma = sc.adaptive_gamma;
  config.sort_mode = sc.sort_mode;
  config.wire_codec = sc.wire_codec;
  config.root_deadline_ticks = sc.root_deadline_ticks;
  config.root_max_retries = sc.root_max_retries;
  config.root_quarantine_strikes = sc.root_quarantine_strikes;
  config.root_probation_windows = sc.root_probation_windows;
  config.root_probation_clean_windows = sc.root_probation_clean_windows;

  RealClock clock;
  net::Network network(&clock);
  auto system_result = sim::BuildSystem(config, &network, &clock, 0);
  EXPECT_TRUE(system_result.ok()) << system_result.status();
  sim::System system = std::move(system_result).MoveValueUnsafe();

  sim::WorkloadConfig workload = sim::MakeUniformWorkload(
      config.num_locals, num_windows, event_rate, TestDistribution(), {},
      seed_base + key * shard::kKeySeedStride);
  workload.window_len_us = config.window_len_us;

  sim::SyncDriver driver(&system, &network, &clock);
  Status st = driver.Run(workload);
  EXPECT_TRUE(st.ok()) << st;
  return driver.outputs();
}

/// Asserts the sharded run's per-key outputs match the per-key baselines
/// exactly (values bit-for-bit; latency is timing, not compared).
void ExpectKeyParity(const shard::ShardedConfig& sc,
                     const shard::ShardedSimHarness& harness,
                     uint64_t num_windows, double event_rate,
                     uint64_t seed_base) {
  const auto& by_key = harness.outputs_by_key();
  ASSERT_EQ(by_key.size(), sc.num_keys);
  for (net::KeyId key = 0; key < sc.num_keys; ++key) {
    std::vector<sim::WindowOutput> baseline =
        BaselineForKey(sc, key, num_windows, event_rate, seed_base);
    ASSERT_EQ(by_key[key].size(), baseline.size()) << "key " << key;
    for (size_t w = 0; w < baseline.size(); ++w) {
      const sim::WindowOutput& got = by_key[key][w];
      const sim::WindowOutput& want = baseline[w];
      EXPECT_EQ(got.window_id, want.window_id) << "key " << key;
      EXPECT_EQ(got.global_size, want.global_size)
          << "key " << key << " window " << w;
      EXPECT_EQ(got.degraded, want.degraded) << "key " << key;
      ASSERT_EQ(got.values.size(), want.values.size()) << "key " << key;
      for (size_t q = 0; q < want.values.size(); ++q) {
        EXPECT_EQ(got.values[q], want.values[q])
            << "key " << key << " window " << w << " quantile " << q
            << " must be byte-identical to the single-key run";
      }
    }
  }
}

TEST(ShardParity, MultiKeyMatchesIndependentSingleKeyRuns) {
  shard::ShardedConfig sc;
  sc.num_locals = 3;
  sc.num_shards = 4;
  sc.num_keys = 11;  // not a multiple of shards: exercises uneven ownership
  sc.workers = 2;
  sc.quantiles = {0.25, 0.5, 0.95};
  sc.gamma = 64;

  shard::ShardedSimHarness harness(sc);
  ASSERT_TRUE(harness.init_status().ok()) << harness.init_status();

  shard::KeyedWorkloadConfig load;
  load.num_windows = 4;
  load.event_rate = 600;
  load.distribution = TestDistribution();
  load.seed_base = 4242;
  Status st = harness.Run(load);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(harness.service()->windows_emitted(),
            load.num_windows * sc.num_keys);

  ExpectKeyParity(sc, harness, load.num_windows, load.event_rate,
                  load.seed_base);
}

TEST(ShardParity, SingleShardSingleWorkerAlsoMatches) {
  // Degenerate deployment: 1 shard, 1 worker — the strand machinery must be
  // a no-op for correctness.
  shard::ShardedConfig sc;
  sc.num_locals = 2;
  sc.num_shards = 1;
  sc.num_keys = 3;
  sc.workers = 1;
  sc.quantiles = {0.5};

  shard::ShardedSimHarness harness(sc);
  ASSERT_TRUE(harness.init_status().ok()) << harness.init_status();
  shard::KeyedWorkloadConfig load;
  load.num_windows = 3;
  load.event_rate = 500;
  load.distribution = TestDistribution();
  load.seed_base = 77;
  Status st = harness.Run(load);
  ASSERT_TRUE(st.ok()) << st;
  ExpectKeyParity(sc, harness, load.num_windows, load.event_rate,
                  load.seed_base);
}

TEST(ShardParity, DeadlinesEnabledStillExact) {
  // With the PR 4 deadline machinery armed on every per-key root, a healthy
  // fabric must still produce exact, non-degraded parity.
  shard::ShardedConfig sc;
  sc.num_locals = 2;
  sc.num_shards = 2;
  sc.num_keys = 5;
  sc.workers = 2;
  sc.quantiles = {0.5, 0.9};
  sc.root_deadline_ticks = 4;

  shard::ShardedSimHarness harness(sc);
  ASSERT_TRUE(harness.init_status().ok()) << harness.init_status();
  shard::KeyedWorkloadConfig load;
  load.num_windows = 3;
  load.event_rate = 400;
  load.distribution = TestDistribution();
  load.seed_base = 910;
  Status st = harness.Run(load);
  ASSERT_TRUE(st.ok()) << st;
  for (const auto& outputs : harness.outputs_by_key()) {
    for (const auto& out : outputs) {
      EXPECT_FALSE(out.degraded);
    }
  }
  ExpectKeyParity(sc, harness, load.num_windows, load.event_rate,
                  load.seed_base);
}

TEST(ShardParity, QueryStoreServesLatestWindowPerKey) {
  shard::ShardedConfig sc;
  sc.num_locals = 2;
  sc.num_shards = 2;
  sc.num_keys = 6;
  sc.workers = 2;
  sc.quantiles = {0.5, 0.9};

  shard::ShardedSimHarness harness(sc);
  ASSERT_TRUE(harness.init_status().ok()) << harness.init_status();
  shard::KeyedWorkloadConfig load;
  load.num_windows = 3;
  load.event_rate = 500;
  load.distribution = TestDistribution();
  load.seed_base = 5150;
  ASSERT_TRUE(harness.Run(load).ok());

  net::KeyedQuery query;
  query.query_id = 9;
  for (net::KeyId key = 0; key < sc.num_keys; ++key) query.keys.push_back(key);
  net::KeyedQueryReply reply = harness.service()->Query(query);
  ASSERT_TRUE(reply.error.empty()) << reply.error;
  EXPECT_EQ(reply.query_id, 9u);
  EXPECT_EQ(reply.quantiles, sc.quantiles);
  ASSERT_EQ(reply.answers.size(), sc.num_keys);
  for (net::KeyId key = 0; key < sc.num_keys; ++key) {
    const net::KeyedAnswer& a = reply.answers[key];
    EXPECT_EQ(a.key, key);
    ASSERT_TRUE(a.found);
    EXPECT_EQ(a.window_id, load.num_windows - 1) << "latest window per key";
    const auto& last = harness.outputs_by_key()[key].back();
    EXPECT_EQ(a.global_size, last.global_size);
    ASSERT_EQ(a.values.size(), last.values.size());
    for (size_t q = 0; q < a.values.size(); ++q) {
      EXPECT_EQ(a.values[q], last.values[q]);
    }
  }

  // Quantile subset + rejection paths.
  net::KeyedQuery subset;
  subset.keys = {0};
  subset.quantiles = {0.9};
  net::KeyedQueryReply sub_reply = harness.service()->Query(subset);
  ASSERT_TRUE(sub_reply.error.empty()) << sub_reply.error;
  ASSERT_EQ(sub_reply.answers.size(), 1u);
  ASSERT_EQ(sub_reply.answers[0].values.size(), 1u);
  EXPECT_EQ(sub_reply.answers[0].values[0],
            harness.outputs_by_key()[0].back().values[1]);

  net::KeyedQuery bad_key;
  bad_key.keys = {sc.num_keys + 5};
  EXPECT_FALSE(harness.service()->Query(bad_key).error.empty());

  net::KeyedQuery bad_q;
  bad_q.keys = {0};
  bad_q.quantiles = {0.123456};  // not configured
  EXPECT_FALSE(harness.service()->Query(bad_q).error.empty());
}

}  // namespace
}  // namespace dema
