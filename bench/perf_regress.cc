// Perf-regression harness: one pinned workload, run inline (workers=0) and
// threaded (workers=2), with the numbers CI tracks written to
// BENCH_dema.json. No pass/fail thresholds here — CI only checks that the
// run completes and the JSON parses; humans (and future tooling) diff the
// uploaded artifacts across commits.
//
//   perf_regress [--locals=4] [--windows=8] [--rate=50000] [--gamma=2000]
//                [--workers=2] [--out=BENCH_dema.json]
//
// Reported per mode: ingest events/s (wall and simulated-parallel), root
// rank-selection time (root.select_us: total + p99), p99 window latency, and
// peak retained events across local nodes (candidate-buffer memory bound).

#include <algorithm>
#include <map>
#include <string>

#include "common/json.h"
#include "harness.h"

using namespace dema;

namespace {

struct ModeResult {
  std::string mode;
  sim::RunMetrics metrics;
  uint64_t select_us_total = 0;
  uint64_t select_count = 0;
  double select_us_p99 = 0;
  int64_t peak_retained_events = 0;
};

ModeResult RunMode(const std::string& mode, size_t workers,
                   const sim::SystemConfig& base,
                   const sim::WorkloadConfig& load) {
  sim::SystemConfig config = base;
  config.workers = workers;
  ModeResult result;
  result.mode = mode;
  result.metrics = bench::Unwrap(sim::RunSync(config, load), mode.c_str());

  const obs::Registry& registry = *result.metrics.registry;
  if (const obs::Histogram* h = registry.FindHistogram("root.select_us")) {
    auto s = h->Summarize();
    result.select_us_total = s.sum;
    result.select_count = s.count;
    result.select_us_p99 = s.p99;
  }
  for (const auto& [name, value] : registry.GaugeValues()) {
    if (name.rfind("local.retained_events_peak{", 0) == 0) {
      result.peak_retained_events = std::max(result.peak_retained_events, value);
    }
  }
  return result;
}

std::string ModeJson(const ModeResult& r) {
  JsonWriter w;
  w.Field("events", r.metrics.events_ingested)
      .Field("windows", r.metrics.windows_emitted)
      .Field("throughput_eps", r.metrics.throughput_eps)
      .Field("sim_throughput_eps", r.metrics.sim_throughput_eps)
      .Field("bottleneck", r.metrics.bottleneck)
      .Field("root_select_us_total", r.select_us_total)
      .Field("root_select_count", r.select_count)
      .Field("root_select_us_p99", r.select_us_p99)
      .Field("window_latency_us_p99", r.metrics.latency_hist.p99)
      .Field("peak_retained_events", r.peak_retained_events);
  return w.Finish();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const size_t locals = static_cast<size_t>(flags.GetInt("locals", 4));
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 8));
  const double rate = flags.GetDouble("rate", 50'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 2'000));
  const size_t workers = static_cast<size_t>(flags.GetInt("workers", 2));
  const std::string out = flags.GetString("out", "BENCH_dema.json");

  std::cout << "=== Perf regression: Dema, 1 root + " << locals
            << " locals, " << windows << " windows, rate=" << rate
            << ", gamma=" << gamma << " ===\n";

  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = locals;
  config.gamma = gamma;
  config.quantiles = {0.5, 0.99};

  sim::WorkloadConfig load = sim::MakeUniformWorkload(
      locals, windows, rate, bench::SensorDistribution());

  ModeResult inline_run = RunMode("inline", 0, config, load);
  ModeResult threaded_run = RunMode("threaded", workers, config, load);

  Table table({"mode", "events", "events/s (wall)", "events/s (sim)",
               "select total ms", "select p99 us", "win p99 ms",
               "peak retained"});
  for (const ModeResult* r : {&inline_run, &threaded_run}) {
    bench::UnwrapStatus(
        table.AddRow({r->mode, FmtCount(r->metrics.events_ingested),
                      FmtF(r->metrics.throughput_eps, 0),
                      FmtF(r->metrics.sim_throughput_eps, 0),
                      FmtF(static_cast<double>(r->select_us_total) / 1e3, 3),
                      FmtF(r->select_us_p99, 1),
                      FmtF(r->metrics.latency_hist.p99 / 1e3, 3),
                      FmtCount(static_cast<uint64_t>(
                          r->peak_retained_events))}),
        "table row");
  }
  bench::EmitTable(table, flags);

  JsonWriter w;
  w.Field("bench", "dema_perf_regress")
      .Field("locals", static_cast<uint64_t>(locals))
      .Field("windows", windows)
      .Field("rate", rate)
      .Field("gamma", gamma)
      .Field("threaded_workers", static_cast<uint64_t>(workers))
      .RawField("inline", ModeJson(inline_run))
      .RawField("threaded", ModeJson(threaded_run));
  bench::WriteJsonFile(out, w.Finish());
  return 0;
}
