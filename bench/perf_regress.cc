// Perf-regression harness: one pinned workload, run inline (workers=0),
// threaded (workers=2), and over the epoll TCP transport on loopback
// sockets, with the numbers CI tracks written to BENCH_dema.json. No
// pass/fail thresholds here — CI compares the recorded events/s fields
// against the committed baseline (>20% regression fails the perf-smoke job)
// and uploads the artifact for humans to diff across commits.
//
//   perf_regress [--locals=4] [--windows=8] [--rate=50000] [--gamma=2000]
//                [--workers=2] [--out=BENCH_dema.json]
//
// Reported per mode: ingest events/s (wall and simulated-parallel), root
// rank-selection time (root.select_us: total + p99), p99 window latency,
// peak retained events across local nodes (candidate-buffer memory bound),
// and wire bytes touched per ingested event (socket bytes on the TCP mode).
//
// A second, keyed section runs the multi-tenant sharded service across key
// counts 1 / 1k / 100k with a fixed total event budget (--keyed-events,
// split evenly across keys) and reports ingest events/s and wire
// bytes-per-window — the per-tenant batching overhead CI tracks.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/json.h"
#include "harness.h"
#include "shard/sim_run.h"
#include "sim/scenario.h"
#include "sim/tcp_run.h"

using namespace dema;

namespace {

struct ModeResult {
  std::string mode;
  sim::RunMetrics metrics;
  uint64_t select_us_total = 0;
  uint64_t select_count = 0;
  double select_us_p99 = 0;
  int64_t peak_retained_events = 0;

  /// Wire bytes the run moved per ingested event (protocol overhead per
  /// datum; on the TCP mode these are bytes actually written to sockets).
  double BytesPerEvent() const {
    return metrics.events_ingested > 0
               ? static_cast<double>(metrics.network_total.bytes) /
                     static_cast<double>(metrics.events_ingested)
               : 0;
  }
};

ModeResult RunMode(const std::string& mode, size_t workers,
                   const sim::SystemConfig& base,
                   const sim::WorkloadConfig& load) {
  sim::SystemConfig config = base;
  config.workers = workers;
  ModeResult result;
  result.mode = mode;
  result.metrics = bench::Unwrap(sim::RunSync(config, load), mode.c_str());

  const obs::Registry& registry = *result.metrics.registry;
  if (const obs::Histogram* h = registry.FindHistogram("root.select_us")) {
    auto s = h->Summarize();
    result.select_us_total = s.sum;
    result.select_count = s.count;
    result.select_us_p99 = s.p99;
  }
  for (const auto& [name, value] : registry.GaugeValues()) {
    if (name.rfind("local.retained_events_peak{", 0) == 0) {
      result.peak_retained_events = std::max(result.peak_retained_events, value);
    }
  }
  return result;
}

std::string ModeJson(const ModeResult& r) {
  JsonWriter w;
  w.Field("events", r.metrics.events_ingested)
      .Field("windows", r.metrics.windows_emitted)
      .Field("throughput_eps", r.metrics.throughput_eps)
      .Field("sim_throughput_eps", r.metrics.sim_throughput_eps)
      .Field("bottleneck", r.metrics.bottleneck)
      .Field("root_select_us_total", r.select_us_total)
      .Field("root_select_count", r.select_count)
      .Field("root_select_us_p99", r.select_us_p99)
      .Field("window_latency_us_p99", r.metrics.latency_hist.p99)
      .Field("peak_retained_events", r.peak_retained_events)
      .Field("bytes_per_event", r.BytesPerEvent());
  return w.Finish();
}

/// The same pinned workload over the epoll TCP transport: a root thread plus
/// one thread per local, loopback sockets, zero-copy receive path. Measures
/// the transport end to end — framing, writev coalescing, CRC verify, arena
/// decode — with `network_total` counted from bytes actually on the sockets.
/// With \p session tuning enabled the run additionally carries the whole
/// resilience layer (heartbeat pings/pongs, cumulative acks, the per-session
/// retention window) so CI can gate its overhead against the bare transport.
ModeResult RunTcpMode(const std::string& mode, const sim::SystemConfig& base,
                      const sim::WorkloadConfig& load,
                      const sim::TcpSessionTuning& session =
                          sim::TcpSessionTuning()) {
  sim::SystemConfig config = base;
  ModeResult result;
  result.mode = mode;

  uint16_t port = 0;
  std::mutex port_mu;
  std::condition_variable port_cv;
  Result<sim::RunMetrics> root_metrics = Status::Internal("root never ran");
  std::thread root_thread([&] {
    sim::TcpRootOptions opts;
    opts.listen_port = 0;
    opts.session = session;
    opts.on_listening = [&](uint16_t p) {
      std::lock_guard<std::mutex> lock(port_mu);
      port = p;
      port_cv.notify_all();
    };
    root_metrics = sim::RunTcpRoot(config, load.ExpectedWindows(), opts);
  });
  {
    std::unique_lock<std::mutex> lock(port_mu);
    port_cv.wait(lock, [&] { return port != 0; });
  }

  std::vector<Result<sim::TcpLocalReport>> reports(
      config.num_locals, Status::Internal("local never ran"));
  std::vector<std::thread> locals;
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < config.num_locals; ++i) {
    locals.emplace_back([&, i] {
      sim::TcpLocalOptions opts;
      opts.root_port = port;
      opts.session = session;
      reports[i] =
          sim::RunTcpLocal(config, load, static_cast<NodeId>(i + 1), opts);
    });
  }
  root_thread.join();
  for (auto& t : locals) t.join();
  double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  result.metrics = bench::Unwrap(std::move(root_metrics), "tcp root");
  for (size_t i = 0; i < config.num_locals; ++i) {
    auto report = bench::Unwrap(std::move(reports[i]), "tcp local");
    result.metrics.events_ingested += report.events_ingested;
  }
  result.metrics.throughput_eps =
      wall_s > 0
          ? static_cast<double>(result.metrics.events_ingested) / wall_s
          : 0;
  return result;
}

struct KeyedResult {
  uint64_t keys = 0;
  uint64_t events = 0;
  uint64_t windows = 0;
  double throughput_eps = 0;
  uint64_t wire_bytes = 0;
  double bytes_per_window = 0;
};

KeyedResult RunKeyed(uint64_t keys, uint64_t shards, size_t workers,
                     uint64_t events_budget, uint64_t gamma) {
  shard::ShardedConfig sc;
  sc.num_locals = 2;
  sc.num_shards = static_cast<uint32_t>(std::min<uint64_t>(shards, keys));
  sc.num_keys = keys;
  sc.workers = workers;
  sc.quantiles = {0.5, 0.99};
  sc.gamma = gamma;

  shard::KeyedWorkloadConfig load;
  load.num_windows = 1;
  // Fixed total event budget, split across every (key, local) stream, so the
  // three key counts compare per-tenant overhead at equal ingest volume.
  load.event_rate = std::max(
      1.0, static_cast<double>(events_budget) /
               static_cast<double>(keys * sc.num_locals));
  load.distribution = bench::SensorDistribution();
  load.seed_base = 7000;

  shard::ShardedSimHarness harness(sc);
  bench::UnwrapStatus(harness.init_status(), "keyed harness");
  auto start = std::chrono::steady_clock::now();
  bench::UnwrapStatus(harness.Run(load), "keyed run");
  double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  KeyedResult result;
  result.keys = keys;
  result.events = harness.events_ingested();
  result.windows = harness.service()->windows_emitted();
  result.throughput_eps =
      wall_s > 0 ? static_cast<double>(result.events) / wall_s : 0;
  result.wire_bytes = harness.network()->TotalStats().counters.bytes;
  result.bytes_per_window =
      result.windows > 0
          ? static_cast<double>(result.wire_bytes) / result.windows
          : 0;
  return result;
}

/// The discrete-event simulator at scale: 1000 locals over a routed
/// fat-tree, one deterministic event-driven run. CI gates the simulator's
/// events/s (how fast virtual time advances per wall second) so tick-queue
/// or routing regressions show up next to the transport numbers.
struct SimResult {
  sim::ScenarioReport report;
};

SimResult RunSimAtScale(size_t locals, uint64_t windows, double rate,
                        uint64_t gamma) {
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = locals;
  config.gamma = gamma;
  config.quantiles = {0.5, 0.99};
  sim::WorkloadConfig load = sim::MakeUniformWorkload(
      locals, windows, rate, bench::SensorDistribution());
  sim::ScenarioOptions options;
  options.topology = "fat-tree";
  SimResult result;
  result.report = bench::Unwrap(sim::RunScenario(config, load, options),
                                "sim at scale");
  return result;
}

std::string SimJson(const SimResult& r) {
  JsonWriter w;
  w.Field("topology", r.report.topology)
      .Field("locals", r.report.num_locals)
      .Field("events", r.report.events_ingested)
      .Field("exact_windows", r.report.exact_windows)
      .Field("sim_ticks", r.report.sim_ticks)
      .Field("sim_events", r.report.sim_events)
      .Field("event_queue_peak", r.report.event_queue_peak)
      .Field("virtual_time_us", r.report.virtual_time_us)
      .Field("throughput_eps", r.report.throughput_eps)
      .Field("sim_throughput_eps", r.report.sim_throughput_eps);
  return w.Finish();
}

std::string KeyedJson(const KeyedResult& r) {
  JsonWriter w;
  w.Field("keys", r.keys)
      .Field("events", r.events)
      .Field("windows", r.windows)
      .Field("throughput_eps", r.throughput_eps)
      .Field("wire_bytes", r.wire_bytes)
      .Field("bytes_per_window", r.bytes_per_window);
  return w.Finish();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const size_t locals = static_cast<size_t>(flags.GetInt("locals", 4));
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 8));
  const double rate = flags.GetDouble("rate", 50'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 2'000));
  const size_t workers = static_cast<size_t>(flags.GetInt("workers", 2));
  const std::string out = flags.GetString("out", "BENCH_dema.json");

  std::cout << "=== Perf regression: Dema, 1 root + " << locals
            << " locals, " << windows << " windows, rate=" << rate
            << ", gamma=" << gamma << " ===\n";

  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = locals;
  config.gamma = gamma;
  config.quantiles = {0.5, 0.99};

  sim::WorkloadConfig load = sim::MakeUniformWorkload(
      locals, windows, rate, bench::SensorDistribution());

  ModeResult inline_run = RunMode("inline", 0, config, load);
  ModeResult threaded_run = RunMode("threaded", workers, config, load);
  ModeResult tcp_run = RunTcpMode("tcp", config, load);
  // The resilient TCP path: heartbeats probing every connection, cumulative
  // acks per read pass, every data frame retained until acked. Its events/s
  // is gated against the baseline like the bare transport's, so ack and
  // retention overhead cannot creep past the regression bar unnoticed.
  sim::TcpSessionTuning session;
  session.heartbeat_interval_us = MillisUs(5);
  session.auto_reconnect = true;
  ModeResult tcp_hb_run = RunTcpMode("tcp_resilient", config, load, session);

  Table table({"mode", "events", "events/s (wall)", "events/s (sim)",
               "select total ms", "select p99 us", "win p99 ms",
               "peak retained", "bytes/event"});
  for (const ModeResult* r :
       {&inline_run, &threaded_run, &tcp_run, &tcp_hb_run}) {
    bench::UnwrapStatus(
        table.AddRow({r->mode, FmtCount(r->metrics.events_ingested),
                      FmtF(r->metrics.throughput_eps, 0),
                      FmtF(r->metrics.sim_throughput_eps, 0),
                      FmtF(static_cast<double>(r->select_us_total) / 1e3, 3),
                      FmtF(r->select_us_p99, 1),
                      FmtF(r->metrics.latency_hist.p99 / 1e3, 3),
                      FmtCount(static_cast<uint64_t>(r->peak_retained_events)),
                      FmtF(r->BytesPerEvent(), 2)}),
        "table row");
  }
  bench::EmitTable(table, flags);

  const uint64_t keyed_events =
      static_cast<uint64_t>(flags.GetInt("keyed-events", 200'000));
  const uint64_t keyed_max =
      static_cast<uint64_t>(flags.GetInt("keyed-max-keys", 100'000));
  std::cout << "=== Keyed (multi-tenant) section: 4 shards, 2 locals, "
            << keyed_events << "-event budget per key count ===\n";
  std::vector<KeyedResult> keyed;
  for (uint64_t keys : {uint64_t{1}, uint64_t{1'000}, uint64_t{100'000}}) {
    if (keys > keyed_max) continue;  // CI can scale down with --keyed-max-keys
    keyed.push_back(RunKeyed(keys, /*shards=*/4, workers, keyed_events, gamma));
  }
  Table keyed_table(
      {"keys", "events", "windows", "events/s (wall)", "bytes/window"});
  for (const KeyedResult& r : keyed) {
    bench::UnwrapStatus(
        keyed_table.AddRow({FmtCount(r.keys), FmtCount(r.events),
                            FmtCount(r.windows), FmtF(r.throughput_eps, 0),
                            FmtF(r.bytes_per_window, 1)}),
        "keyed table row");
  }
  bench::EmitTable(keyed_table, flags);

  const size_t sim_locals =
      static_cast<size_t>(flags.GetInt("sim-locals", 1'000));
  const uint64_t sim_windows =
      static_cast<uint64_t>(flags.GetInt("sim-windows", 2));
  const double sim_rate = flags.GetDouble("sim-rate", 100);
  std::cout << "=== Simulator section: " << sim_locals
            << " locals over a routed fat-tree, event-driven delivery ===\n";
  SimResult sim_run = RunSimAtScale(sim_locals, sim_windows, sim_rate, gamma);
  Table sim_table({"topology", "locals", "events", "exact", "sim events",
                   "queue peak", "events/s (wall)"});
  bench::UnwrapStatus(
      sim_table.AddRow({sim_run.report.topology,
                        FmtCount(sim_run.report.num_locals),
                        FmtCount(sim_run.report.events_ingested),
                        FmtCount(sim_run.report.exact_windows),
                        FmtCount(sim_run.report.sim_events),
                        FmtCount(sim_run.report.event_queue_peak),
                        FmtF(sim_run.report.throughput_eps, 0)}),
      "sim table row");
  bench::EmitTable(sim_table, flags);

  JsonWriter w;
  w.Field("bench", "dema_perf_regress")
      .Field("locals", static_cast<uint64_t>(locals))
      .Field("windows", windows)
      .Field("rate", rate)
      .Field("gamma", gamma)
      .Field("threaded_workers", static_cast<uint64_t>(workers))
      .RawField("inline", ModeJson(inline_run))
      .RawField("threaded", ModeJson(threaded_run))
      .RawField("tcp", ModeJson(tcp_run))
      .RawField("tcp_resilient", ModeJson(tcp_hb_run));
  for (const KeyedResult& r : keyed) {
    w.RawField("keyed_" + std::to_string(r.keys), KeyedJson(r));
  }
  w.RawField("sim_1000", SimJson(sim_run));
  bench::WriteJsonFile(out, w.Finish());
  return 0;
}
