// Figure 5b: window-result latency of Dema vs Scotty, Desis, and Tdigest.
// Latency = time from the last local-window close to the root emitting the
// final aggregate (network transfer time excluded, as in Section 4.2 —
// message delivery is in-process; the simulated wire time is reported by the
// network-cost experiments instead).
//
// Expected shape (paper): Dema lowest, Desis middle, Scotty highest.

#include "harness.h"

using namespace dema;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const size_t locals = static_cast<size_t>(flags.GetInt("locals", 2));
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 10));
  const double rate = flags.GetDouble("rate", 200'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 10'000));

  std::cout << "=== Figure 5b: latency (1 root + " << locals
            << " locals, 1s windows, median, gamma=" << gamma << ") ===\n";

  sim::WorkloadConfig load = sim::MakeUniformWorkload(
      locals, windows, rate, bench::SensorDistribution());

  Table table({"system", "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms"});
  for (auto kind :
       {sim::SystemKind::kDema, sim::SystemKind::kCentralExact,
        sim::SystemKind::kDesisMerge, sim::SystemKind::kTDigestCentral}) {
    sim::SystemConfig config;
    config.kind = kind;
    config.num_locals = locals;
    config.gamma = gamma;
    auto metrics = bench::Unwrap(sim::RunSync(config, load), "sync run");
    // Figures report the registry histogram (`root.window_latency_us`) — the
    // same instrument `--metrics-out` exports — so the paper numbers and live
    // observability can never disagree.
    const auto& lat = metrics.latency_hist;
    bench::UnwrapStatus(
        table.AddRow({sim::SystemKindToString(kind),
                      FmtF(lat.mean / 1000.0, 2), FmtF(lat.p50 / 1000.0, 2),
                      FmtF(lat.p95 / 1000.0, 2), FmtF(lat.p99 / 1000.0, 2),
                      FmtF(static_cast<double>(lat.max) / 1000.0, 2)}),
        "table row");
  }
  bench::EmitTable(table, flags);
  return 0;
}
