// Microbenchmarks (google-benchmark) for the hot paths: local window sorting,
// loser-tree merging, slice cutting, window-cut selection, sketch updates,
// and wire serialization.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.h"
#include "dema/slice.h"
#include "dema/window_cut.h"
#include "net/message.h"
#include "sketch/qdigest.h"
#include "sketch/tdigest.h"
#include "stream/merge.h"
#include "stream/sorted_buffer.h"

namespace dema {
namespace {

std::vector<Event> RandomEvents(size_t n, uint64_t seed, NodeId node = 1) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    events.push_back(
        Event{rng.Uniform(0, 1e6), static_cast<TimestampUs>(i), node, i});
  }
  return events;
}

void BM_SortWindow(benchmark::State& state) {
  auto events = RandomEvents(state.range(0), 11);
  for (auto _ : state) {
    auto copy = events;
    std::sort(copy.begin(), copy.end());
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortWindow)->Arg(1'000)->Arg(100'000)->Arg(1'000'000);

void BM_IncrementalSortedInsert(benchmark::State& state) {
  auto events = RandomEvents(state.range(0), 13);
  for (auto _ : state) {
    stream::SortedWindowBuffer buf(stream::SortMode::kIncremental);
    for (const Event& e : events) buf.Add(e);
    auto sorted = buf.TakeSorted();
    benchmark::DoNotOptimize(sorted.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IncrementalSortedInsert)->Arg(1'000)->Arg(100'000);

void BM_LoserTreeMerge(benchmark::State& state) {
  const size_t k = state.range(0);
  const size_t per_run = 100'000 / k;
  std::vector<std::vector<Event>> runs;
  for (size_t i = 0; i < k; ++i) {
    auto run = RandomEvents(per_run, 17 + i, static_cast<NodeId>(i));
    std::sort(run.begin(), run.end());
    runs.push_back(std::move(run));
  }
  for (auto _ : state) {
    auto copy = runs;
    auto merged = stream::MergeSortedRuns(std::move(copy));
    benchmark::DoNotOptimize(merged.data());
  }
  state.SetItemsProcessed(state.iterations() * k * per_run);
}
BENCHMARK(BM_LoserTreeMerge)->Arg(2)->Arg(8)->Arg(64);

void BM_CutIntoSlices(benchmark::State& state) {
  auto events = RandomEvents(1'000'000, 23);
  std::sort(events.begin(), events.end());
  for (auto _ : state) {
    auto slices = core::CutIntoSlices(events, 1, state.range(0));
    benchmark::DoNotOptimize(&slices);
  }
  state.SetItemsProcessed(state.iterations() * events.size());
}
BENCHMARK(BM_CutIntoSlices)->Arg(100)->Arg(10'000);

void BM_WindowCutSelect(benchmark::State& state) {
  // m overlapping slices across 4 nodes.
  const size_t m = state.range(0);
  Rng rng(29);
  std::vector<core::SliceSynopsis> slices;
  uint64_t total = 0;
  for (size_t i = 0; i < m; ++i) {
    core::SliceSynopsis s;
    s.node = static_cast<NodeId>(1 + i % 4);
    s.index = static_cast<uint32_t>(i / 4);
    double lo = rng.Uniform(0, 1e6);
    double hi = lo + rng.Uniform(1, 1e5);
    s.first = Event{lo, 0, s.node, s.index * 2};
    s.last = Event{hi, 0, s.node, s.index * 2 + 1};
    s.count = 1000;
    total += s.count;
    slices.push_back(s);
  }
  for (auto _ : state) {
    auto result = core::WindowCut::Select(slices, total, total / 2);
    benchmark::DoNotOptimize(&result);
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_WindowCutSelect)->Arg(100)->Arg(10'000);

void BM_WindowCutTwoSidedScan(benchmark::State& state) {
  const size_t m = state.range(0);
  Rng rng(31);
  std::vector<core::SliceSynopsis> slices;
  uint64_t total = 0;
  for (size_t i = 0; i < m; ++i) {
    core::SliceSynopsis s;
    s.node = static_cast<NodeId>(1 + i % 4);
    s.index = static_cast<uint32_t>(i / 4);
    double lo = rng.Uniform(0, 1e6);
    double hi = lo + rng.Uniform(1, 1e5);
    s.first = Event{lo, 0, s.node, s.index * 2};
    s.last = Event{hi, 0, s.node, s.index * 2 + 1};
    s.count = 1000;
    total += s.count;
    slices.push_back(s);
  }
  for (auto _ : state) {
    auto result = core::WindowCut::SelectTwoSidedScan(slices, total, total / 2);
    benchmark::DoNotOptimize(&result);
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_WindowCutTwoSidedScan)->Arg(10'000);

void BM_ClassifySlices(benchmark::State& state) {
  const size_t m = state.range(0);
  Rng rng(37);
  std::vector<core::SliceSynopsis> slices;
  for (size_t i = 0; i < m; ++i) {
    core::SliceSynopsis s;
    s.node = 1;
    s.index = static_cast<uint32_t>(i);
    double lo = rng.Uniform(0, 1e6);
    double hi = lo + rng.Uniform(1, 2e5);
    s.first = Event{lo, 0, 1, s.index * 2};
    s.last = Event{hi, 0, 1, s.index * 2 + 1};
    s.count = 100;
    slices.push_back(s);
  }
  for (auto _ : state) {
    auto counts = core::WindowCut::ClassifySlices(slices);
    benchmark::DoNotOptimize(&counts);
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_ClassifySlices)->Arg(10'000);

void BM_TDigestAdd(benchmark::State& state) {
  Rng rng(31);
  std::vector<double> values(100'000);
  for (double& v : values) v = rng.Normal(0, 100);
  for (auto _ : state) {
    sketch::TDigest digest(state.range(0));
    for (double v : values) digest.Add(v);
    digest.Compress();
    benchmark::DoNotOptimize(&digest);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_TDigestAdd)->Arg(100)->Arg(500);

void BM_TDigestMerge(benchmark::State& state) {
  Rng rng(37);
  sketch::TDigest a(100), b(100);
  for (int i = 0; i < 100'000; ++i) {
    a.Add(rng.Normal(0, 50));
    b.Add(rng.Normal(100, 50));
  }
  a.Compress();
  b.Compress();
  for (auto _ : state) {
    sketch::TDigest merged = a;
    merged.Merge(b);
    benchmark::DoNotOptimize(&merged);
  }
}
BENCHMARK(BM_TDigestMerge);

void BM_QDigestAdd(benchmark::State& state) {
  Rng rng(41);
  std::vector<double> values(100'000);
  for (double& v : values) v = rng.Uniform(0, 1e6);
  for (auto _ : state) {
    sketch::QDigest digest(sketch::ValueQuantizer(0, 1e6, 16), 128);
    for (double v : values) digest.Add(v);
    benchmark::DoNotOptimize(&digest);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_QDigestAdd);

void BM_EventBatchSerialize(benchmark::State& state) {
  net::EventBatch batch;
  batch.window_id = 1;
  batch.events = RandomEvents(state.range(0), 43);
  for (auto _ : state) {
    net::Writer w;
    batch.SerializeTo(&w);
    benchmark::DoNotOptimize(w.buffer().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventBatchSerialize)->Arg(1'000)->Arg(100'000);

void BM_EventBatchDeserialize(benchmark::State& state) {
  net::EventBatch batch;
  batch.window_id = 1;
  batch.events = RandomEvents(state.range(0), 47);
  net::Writer w;
  batch.SerializeTo(&w);
  for (auto _ : state) {
    net::Reader r(w.buffer());
    auto out = net::EventBatch::Deserialize(&r);
    benchmark::DoNotOptimize(&out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventBatchDeserialize)->Arg(1'000)->Arg(100'000);

}  // namespace
}  // namespace dema

BENCHMARK_MAIN();
