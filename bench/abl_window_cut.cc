// Ablation: the window-cut algorithm vs naive transitive-overlap candidate
// selection (Section 3.2). Both are exact; the question is how many
// candidate events cross the network when local value ranges overlap.
//
// Expected: with identical scale rates (full overlap) naive selection ships
// nearly the whole window while window-cut ships ~gamma-sized candidates.

#include "harness.h"

using namespace dema;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 4));
  const double rate = flags.GetDouble("rate", 50'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 1'000));

  std::cout << "=== Ablation: window-cut vs naive overlap selection (gamma="
            << gamma << ") ===\n";

  struct Overlap {
    const char* name;
    std::vector<double> scale_rates;
  };
  const Overlap overlaps[] = {{"full overlap (1,1,1,1)", {1, 1, 1, 1}},
                              {"partial overlap (1,1.1,1.2,1.3)", {1, 1.1, 1.2, 1.3}},
                              {"disjoint (1,100,10000,1000000)",
                               {1, 100, 10'000, 1'000'000}}};

  Table table({"distribution", "selector", "candidate events", "wire events",
               "wire bytes", "cand. slices"});
  for (const Overlap& overlap : overlaps) {
    sim::WorkloadConfig load = sim::MakeUniformWorkload(
        4, windows, rate, bench::SensorDistribution(), overlap.scale_rates);
    for (bool naive : {false, true}) {
      sim::SystemConfig config;
      config.kind = sim::SystemKind::kDema;
      config.num_locals = 4;
      config.gamma = gamma;
      config.naive_selection = naive;
      config.quantiles = {0.5};
      auto metrics = bench::Unwrap(sim::RunSync(config, load), "sync run");
      bench::UnwrapStatus(
          table.AddRow({overlap.name, naive ? "naive" : "window-cut",
                        FmtCount(metrics.dema.candidate_events),
                        FmtCount(metrics.network_total.events),
                        FmtBytes(metrics.network_total.bytes),
                        FmtCount(metrics.dema.candidate_slices)}),
          "table row");
    }
  }
  bench::EmitTable(table, flags);
  return 0;
}
