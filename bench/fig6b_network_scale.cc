// Figure 6b: network cost as local nodes are added (fixed gamma, similar
// distributions and event rates per node). Deterministic synchronous runs.
//
// Expected shape (paper): all systems grow linearly with node count; Dema
// stays far below Scotty/Desis at every size.

#include "harness.h"

using namespace dema;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 4));
  const double rate = flags.GetDouble("rate", 50'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 10'000));
  const size_t max_locals = static_cast<size_t>(flags.GetInt("max_locals", 8));

  std::cout << "=== Figure 6b: network cost vs #local nodes (gamma=" << gamma
            << ", " << windows << " windows x " << FmtRate(rate)
            << " per node) ===\n";

  Table table({"locals", "system", "ingested", "wire events", "wire bytes"});
  for (size_t locals = 2; locals <= max_locals; locals += 2) {
    sim::WorkloadConfig load = sim::MakeUniformWorkload(
        locals, windows, rate, bench::SensorDistribution());
    for (auto kind : {sim::SystemKind::kDema, sim::SystemKind::kCentralExact,
                      sim::SystemKind::kDesisMerge}) {
      sim::SystemConfig config;
      config.kind = kind;
      config.num_locals = locals;
      config.gamma = gamma;
      auto metrics = bench::Unwrap(sim::RunSync(config, load), "sync run");
      bench::UnwrapStatus(
          table.AddRow({std::to_string(locals), sim::SystemKindToString(kind),
                        FmtCount(metrics.events_ingested),
                        FmtCount(metrics.network_total.events),
                        FmtBytes(metrics.network_total.bytes)}),
          "table row");
    }
  }
  bench::EmitTable(table, flags);
  return 0;
}
