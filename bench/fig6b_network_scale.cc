// Figure 6b: network cost as local nodes are added (fixed gamma, similar
// distributions and event rates per node). Deterministic synchronous runs
// by default; `--topology=` switches to event-driven delivery over a routed
// topology (`--locals-list=` picks explicit sizes, enabling 1000+ locals).
//
// Expected shape (paper): all systems grow linearly with node count; Dema
// stays far below Scotty/Desis at every size. Wire accounting is
// endpoint-to-endpoint, so routed runs report the same events/bytes as the
// flat fabric.

#include "harness.h"
#include "sim/scenario.h"

using namespace dema;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 4));
  const double rate = flags.GetDouble("rate", 50'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 10'000));
  const size_t max_locals = static_cast<size_t>(flags.GetInt("max_locals", 8));
  const std::string topology = flags.GetString("topology", "flat");
  const bool routed = topology != "flat";

  std::vector<size_t> sizes;
  for (double v : flags.GetDoubleList("locals-list", {})) {
    sizes.push_back(static_cast<size_t>(v));
  }
  if (sizes.empty()) {
    for (size_t locals = 2; locals <= max_locals; locals += 2) {
      sizes.push_back(locals);
    }
  }

  std::cout << "=== Figure 6b: network cost vs #local nodes (gamma=" << gamma
            << ", " << windows << " windows x " << FmtRate(rate)
            << " per node, topology=" << topology << ") ===\n";

  Table table({"locals", "system", "ingested", "wire events", "wire bytes"});
  for (size_t locals : sizes) {
    sim::WorkloadConfig load = sim::MakeUniformWorkload(
        locals, windows, rate, bench::SensorDistribution());
    for (auto kind : {sim::SystemKind::kDema, sim::SystemKind::kCentralExact,
                      sim::SystemKind::kDesisMerge}) {
      sim::SystemConfig config;
      config.kind = kind;
      config.num_locals = locals;
      config.gamma = gamma;
      uint64_t ingested = 0, wire_events = 0, wire_bytes = 0;
      if (routed) {
        sim::ScenarioOptions options;
        options.topology = topology;
        auto report =
            bench::Unwrap(sim::RunScenario(config, load, options), "scenario");
        ingested = report.events_ingested;
        wire_events = report.network_total.events;
        wire_bytes = report.network_total.bytes;
      } else {
        auto metrics = bench::Unwrap(sim::RunSync(config, load), "sync run");
        ingested = metrics.events_ingested;
        wire_events = metrics.network_total.events;
        wire_bytes = metrics.network_total.bytes;
      }
      bench::UnwrapStatus(
          table.AddRow({std::to_string(locals), sim::SystemKindToString(kind),
                        FmtCount(ingested), FmtCount(wire_events),
                        FmtBytes(wire_bytes)}),
          "table row");
    }
  }
  bench::EmitTable(table, flags);
  return 0;
}
