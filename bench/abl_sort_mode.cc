// Ablation: local-window sorting strategy. The paper's implementation sorts
// incrementally as events arrive; this repo defaults to sort-on-close (one
// std::sort when the window ends). The choice moves Dema's local-node
// bottleneck — and explains why our Fig. 5a shows Dema ~tied with Tdigest
// where the paper shows Tdigest ahead (see EXPERIMENTS.md).

#include "harness.h"

using namespace dema;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const size_t locals = static_cast<size_t>(flags.GetInt("locals", 2));
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 6));
  const double rate = flags.GetDouble("rate", 150'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 10'000));

  std::cout << "=== Ablation: Dema local sorting strategy (gamma=" << gamma
            << ", " << windows << " windows x " << FmtRate(rate)
            << " per node) ===\n";

  sim::WorkloadConfig load = sim::MakeUniformWorkload(
      locals, windows, rate, bench::SensorDistribution());

  Table table({"sort mode", "throughput", "events/s", "local busy s",
               "root busy s"});
  struct Mode {
    const char* name;
    stream::SortMode mode;
  };
  for (Mode m : {Mode{"sort-on-close (ours)", stream::SortMode::kSortOnClose},
                 Mode{"incremental (paper)", stream::SortMode::kIncremental}}) {
    sim::SystemConfig config;
    config.kind = sim::SystemKind::kDema;
    config.num_locals = locals;
    config.gamma = gamma;
    config.sort_mode = m.mode;
    auto metrics = bench::Unwrap(sim::RunSync(config, load), "sync run");
    bench::UnwrapStatus(
        table.AddRow({m.name, FmtRate(metrics.sim_throughput_eps),
                      FmtF(metrics.sim_throughput_eps, 0),
                      FmtF(metrics.max_local_busy_seconds, 3),
                      FmtF(metrics.root_busy_seconds, 3)}),
        "table row");
  }
  bench::EmitTable(table, flags);
  return 0;
}
