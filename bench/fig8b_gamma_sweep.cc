// Figure 8b: Dema throughput across gamma values for three scale-rate
// configurations — Dema #1 (scale rates 1,1), Dema #2 (1,2), and Dema #10
// (1,10) — computing the 30% quantile (the result sits on the denser side).
//
// Expected shape (paper): ∩-shaped curves — tiny gamma ships everything as
// synopses and re-processes it, huge gamma ships huge candidate slices; the
// instances order Dema #1 >= #2 >= #10 with small gaps thanks to window-cut.

#include "harness.h"

using namespace dema;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 4));
  const double rate = flags.GetDouble("rate", 100'000);

  std::cout << "=== Figure 8b: Dema throughput vs gamma (30% quantile) ===\n";

  struct Instance {
    const char* name;
    std::vector<double> scale_rates;
  };
  const Instance instances[] = {{"Dema #1", {1, 1}},
                                {"Dema #2", {1, 2}},
                                {"Dema #10", {1, 10}}};
  std::vector<uint64_t> gammas = {2, 10, 100, 1'000, 10'000, 100'000};
  if (flags.Has("gamma")) {
    gammas = {static_cast<uint64_t>(flags.GetInt("gamma", 10'000))};
  }

  Table table({"gamma", "instance", "throughput", "events/s",
               "candidate events", "wire events"});
  for (uint64_t gamma : gammas) {
    for (const Instance& inst : instances) {
      sim::WorkloadConfig load = sim::MakeUniformWorkload(
          2, windows, rate, bench::SensorDistribution(), inst.scale_rates);
      sim::SystemConfig config;
      config.kind = sim::SystemKind::kDema;
      config.num_locals = 2;
      config.gamma = gamma;
      config.quantiles = {0.30};
      auto metrics = bench::Unwrap(sim::RunSync(config, load), "sync run");
      bench::UnwrapStatus(
          table.AddRow({std::to_string(gamma), inst.name,
                        FmtRate(metrics.sim_throughput_eps),
                        FmtF(metrics.sim_throughput_eps, 0),
                        FmtCount(metrics.dema.candidate_events),
                        FmtCount(metrics.network_total.events)}),
          "table row");
    }
  }
  bench::EmitTable(table, flags);
  return 0;
}
