// Figure 7a: throughput scalability as local nodes are added (Dema, Scotty,
// Desis; 1 s tumbling windows, median, gamma = 10,000). Uses the
// simulated-parallel throughput model (see fig5a_throughput.cc): the
// pipeline rate is bounded by the busiest node's measured busy time.
//
// Expected shape (paper): Dema grows near-linearly (slightly sublinear from
// extra slices/overlaps); Desis grows less and plateaus; Scotty bottlenecks
// at the root earliest.

#include "harness.h"

using namespace dema;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 6));
  const double rate = flags.GetDouble("rate", 150'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 10'000));
  const size_t max_locals = static_cast<size_t>(flags.GetInt("max_locals", 8));

  std::cout << "=== Figure 7a: scalability (throughput vs #locals, gamma="
            << gamma << ") ===\n";

  Table table({"locals", "system", "throughput", "events/s", "bottleneck"});
  for (size_t locals = 2; locals <= max_locals; locals += 2) {
    sim::WorkloadConfig load = sim::MakeUniformWorkload(
        locals, windows, rate, bench::SensorDistribution());
    for (auto kind : {sim::SystemKind::kDema, sim::SystemKind::kCentralExact,
                      sim::SystemKind::kDesisMerge}) {
      sim::SystemConfig config;
      config.kind = kind;
      config.num_locals = locals;
      config.gamma = gamma;
      auto metrics = bench::Unwrap(sim::RunSync(config, load), "sync run");
      bench::UnwrapStatus(
          table.AddRow({std::to_string(locals), sim::SystemKindToString(kind),
                        FmtRate(metrics.sim_throughput_eps),
                        FmtF(metrics.sim_throughput_eps, 0),
                        metrics.bottleneck}),
          "table row");
    }
  }
  bench::EmitTable(table, flags);
  return 0;
}
