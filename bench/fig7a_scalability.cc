// Figure 7a: throughput scalability as local nodes are added (Dema, Scotty,
// Desis; 1 s tumbling windows, median, gamma = 10,000). Uses the
// simulated-parallel throughput model (see fig5a_throughput.cc): the
// pipeline rate is bounded by the busiest node's measured busy time.
// `--topology=` switches to event-driven delivery over a routed topology and
// `--locals-list=` picks explicit sizes (enabling 1000+ locals).
//
// Expected shape (paper): Dema grows near-linearly (slightly sublinear from
// extra slices/overlaps); Desis grows less and plateaus; Scotty bottlenecks
// at the root earliest.

#include "harness.h"
#include "sim/scenario.h"

using namespace dema;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 6));
  const double rate = flags.GetDouble("rate", 150'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 10'000));
  const size_t max_locals = static_cast<size_t>(flags.GetInt("max_locals", 8));
  const std::string topology = flags.GetString("topology", "flat");
  const bool routed = topology != "flat";

  std::vector<size_t> sizes;
  for (double v : flags.GetDoubleList("locals-list", {})) {
    sizes.push_back(static_cast<size_t>(v));
  }
  if (sizes.empty()) {
    for (size_t locals = 2; locals <= max_locals; locals += 2) {
      sizes.push_back(locals);
    }
  }

  std::cout << "=== Figure 7a: scalability (throughput vs #locals, gamma="
            << gamma << ", topology=" << topology << ") ===\n";

  Table table({"locals", "system", "throughput", "events/s", "bottleneck"});
  for (size_t locals : sizes) {
    sim::WorkloadConfig load = sim::MakeUniformWorkload(
        locals, windows, rate, bench::SensorDistribution());
    for (auto kind : {sim::SystemKind::kDema, sim::SystemKind::kCentralExact,
                      sim::SystemKind::kDesisMerge}) {
      sim::SystemConfig config;
      config.kind = kind;
      config.num_locals = locals;
      config.gamma = gamma;
      double throughput = 0;
      std::string bottleneck;
      if (routed) {
        sim::ScenarioOptions options;
        options.topology = topology;
        auto report =
            bench::Unwrap(sim::RunScenario(config, load, options), "scenario");
        throughput = report.sim_throughput_eps;
        bottleneck = report.root_busy_seconds >= report.max_local_busy_seconds
                         ? "root"
                         : "local";
      } else {
        auto metrics = bench::Unwrap(sim::RunSync(config, load), "sync run");
        throughput = metrics.sim_throughput_eps;
        bottleneck = metrics.bottleneck;
      }
      bench::UnwrapStatus(
          table.AddRow({std::to_string(locals), sim::SystemKindToString(kind),
                        FmtRate(throughput), FmtF(throughput, 0), bottleneck}),
          "table row");
    }
  }
  bench::EmitTable(table, flags);
  return 0;
}
