#pragma once

// Shared helpers for the figure-reproduction harnesses: a tiny --key=value
// flag parser, standard workload builders, and result-table plumbing. Every
// fig*_ binary runs with sensible scaled-down defaults (seconds, not the
// paper's cluster-hours) and accepts flags to scale up, e.g.
//   fig5a_throughput --windows=20 --rate=500000 --csv=fig5a.csv

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "gen/distribution.h"
#include "sim/driver.h"
#include "sim/topology.h"

namespace dema::bench {

using dema::Flags;

/// \brief The DEBS-like sensor distribution every experiment defaults to.
inline gen::DistributionParams SensorDistribution() {
  gen::DistributionParams dist;
  dist.kind = gen::DistributionKind::kSensorWalk;
  dist.lo = 0;
  dist.hi = 10'000;
  dist.stddev = 25;
  dist.kick_prob = 0.001;
  return dist;
}

/// \brief Prints the table, optionally also writing CSV to --csv=<path>.
inline void EmitTable(const Table& table, const Flags& flags) {
  table.Print(std::cout);
  std::string csv = flags.GetString("csv", "");
  if (!csv.empty()) {
    Status st = table.WriteCsv(csv);
    if (!st.ok()) {
      std::cerr << "CSV write failed: " << st << "\n";
    } else {
      std::cout << "CSV written to " << csv << "\n";
    }
  }
}

/// \brief Writes already-rendered JSON text to \p path (plus a trailing
/// newline), aborting the harness on I/O failure. Pair with `JsonWriter` for
/// machine-readable result files like the perf-regression harness's
/// `BENCH_dema.json`.
inline void WriteJsonFile(const std::string& path, const std::string& json) {
  std::ofstream out(path, std::ios::trunc);
  out << json << "\n";
  out.flush();
  if (!out) {
    std::cerr << "failed to write " << path << "\n";
    std::exit(1);
  }
  std::cout << "JSON written to " << path << "\n";
}

/// \brief Aborts the harness with a readable message on error results.
template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::cerr << what << " failed: " << result.status() << "\n";
    std::exit(1);
  }
  return std::move(result).MoveValueUnsafe();
}

inline void UnwrapStatus(const Status& st, const char* what) {
  if (!st.ok()) {
    std::cerr << what << " failed: " << st << "\n";
    std::exit(1);
  }
}

}  // namespace dema::bench
