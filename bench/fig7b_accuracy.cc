// Figure 7b: accuracy of Dema and Tdigest with Scotty as ground truth, on
// identical per-window inputs (same generator seeds). Accuracy = 1 - MPE
// where MPE is the mean percentage error over windows (Section 4.5).
//
// Expected shape (paper): Dema exactly 100%; Tdigest close to but below 100%.

#include "harness.h"

#include "common/stats.h"

using namespace dema;

namespace {

std::vector<std::vector<double>> RunMedians(sim::SystemKind kind, size_t locals,
                                            const sim::WorkloadConfig& load,
                                            double compression) {
  sim::SystemConfig config;
  config.kind = kind;
  config.num_locals = locals;
  config.gamma = 10'000;
  config.tdigest_compression = compression;
  config.qdigest_lo = 0;
  config.qdigest_hi = 10'000;  // the sensor distribution's domain
  config.qdigest_bits = 20;
  config.qdigest_k = 2048;

  RealClock clock;
  net::Network network(&clock);
  auto system =
      bench::Unwrap(sim::BuildSystem(config, &network, &clock, 0), "build");
  sim::WorkloadConfig workload = load;
  workload.window_len_us = config.window_len_us;
  sim::SyncDriver driver(&system, &network, &clock);
  bench::UnwrapStatus(driver.Run(workload), "sync run");

  std::vector<std::vector<double>> per_window(workload.num_windows);
  for (const auto& out : driver.outputs()) {
    per_window[out.window_id] = out.values;
  }
  return per_window;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const size_t locals = static_cast<size_t>(flags.GetInt("locals", 2));
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 12));
  const double rate = flags.GetDouble("rate", 100'000);
  const double compression = flags.GetDouble("compression", 100);

  std::cout << "=== Figure 7b: accuracy vs Scotty ground truth (" << windows
            << " windows x " << FmtRate(rate) << " per node) ===\n";

  sim::WorkloadConfig load = sim::MakeUniformWorkload(
      locals, windows, rate, bench::SensorDistribution());

  auto truth = RunMedians(sim::SystemKind::kCentralExact, locals, load, compression);
  struct Candidate {
    const char* name;
    sim::SystemKind kind;
  };
  Table table({"system", "windows", "MPE", "accuracy"});
  bench::UnwrapStatus(table.AddRow({"Scotty (truth)", std::to_string(windows),
                                    "0.000000", "100.0000%"}),
                      "table row");
  for (Candidate c : {Candidate{"Dema", sim::SystemKind::kDema},
                      Candidate{"Tdigest", sim::SystemKind::kTDigestCentral},
                      Candidate{"Tdigest-dec", sim::SystemKind::kTDigestDecentral},
                      Candidate{"Qdigest", sim::SystemKind::kQDigest}}) {
    auto result = RunMedians(c.kind, locals, load, compression);
    MpeAccumulator mpe;
    for (uint64_t w = 0; w < windows; ++w) {
      mpe.Add(truth[w][0], result[w][0]);
    }
    bench::UnwrapStatus(
        table.AddRow({c.name, std::to_string(windows), FmtF(mpe.Mpe(), 6),
                      FmtF(mpe.Accuracy() * 100.0, 4) + "%"}),
        "table row");
  }
  bench::EmitTable(table, flags);
  return 0;
}
