// Extension: the full three-tier topology of the paper's Figure 1 — sensors
// -> edge nodes -> root. The sensor tier carries every raw reading no matter
// what; the aggregation tier (edge <-> root) is what the choice of system
// changes. This harness shows the per-tier split: with Dema the expensive
// backhaul link carries ~1% of the data while the cheap last-hop sensor
// links are unchanged — the deployment argument of the paper's introduction.

#include "harness.h"

#include "sim/tiered.h"

using namespace dema;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const size_t locals = static_cast<size_t>(flags.GetInt("locals", 3));
  const size_t sensors = static_cast<size_t>(flags.GetInt("sensors", 4));
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 4));
  const double rate = flags.GetDouble("rate", 100'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 5'000));

  std::cout << "=== Extension: three-tier topology (" << locals << " edges x "
            << sensors << " sensors, " << FmtRate(rate)
            << " per edge, gamma=" << gamma << ") ===\n";

  Table table({"system", "sensor-tier bytes", "backhaul bytes",
               "backhaul events", "backhaul vs Scotty"});
  uint64_t scotty_backhaul = 0;
  struct Row {
    const char* name;
    sim::TieredRunMetrics metrics;
  };
  std::vector<Row> rows;
  for (auto kind : {sim::SystemKind::kDema, sim::SystemKind::kCentralExact,
                    sim::SystemKind::kDesisMerge,
                    sim::SystemKind::kTDigestDecentral}) {
    sim::TieredConfig config;
    config.system.kind = kind;
    config.system.num_locals = locals;
    config.system.gamma = gamma;
    config.sensors_per_local = sensors;
    sim::MakeTieredWorkload(&config, rate, bench::SensorDistribution());
    auto metrics = bench::Unwrap(sim::RunTiered(config, windows), "tiered run");
    if (kind == sim::SystemKind::kCentralExact) {
      scotty_backhaul = metrics.aggregation_tier.bytes;
    }
    rows.push_back({sim::SystemKindToString(kind), std::move(metrics)});
  }
  for (const Row& row : rows) {
    double saving =
        scotty_backhaul
            ? 100.0 * (1.0 - static_cast<double>(row.metrics.aggregation_tier.bytes) /
                                 static_cast<double>(scotty_backhaul))
            : 0.0;
    bench::UnwrapStatus(
        table.AddRow({row.name, FmtBytes(row.metrics.sensor_tier.bytes),
                      FmtBytes(row.metrics.aggregation_tier.bytes),
                      FmtCount(row.metrics.aggregation_tier.events),
                      "-" + FmtF(saving, 1) + "%"}),
        "table row");
  }
  bench::EmitTable(table, flags);
  return 0;
}
