// Extension: hierarchical aggregation through Dema relays. Relays re-index
// child synopses into one combined batch upward and split candidate requests
// downward, so Dema's protocol composes through arbitrary tree depths. This
// harness compares a flat 1-root/N-local topology against root -> R relays
// -> N locals: root fan-in (messages at the root) drops by ~N/R while
// results stay exact and event traffic stays the same order.

#include "harness.h"

#include "sim/tree.h"

using namespace dema;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 4));
  const double rate = flags.GetDouble("rate", 20'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 1'000));
  const size_t relays = static_cast<size_t>(flags.GetInt("relays", 3));
  const size_t per_relay = static_cast<size_t>(flags.GetInt("per_relay", 4));
  const size_t leaves = relays * per_relay;

  std::cout << "=== Extension: hierarchical Dema (" << relays << " relays x "
            << per_relay << " locals vs flat " << leaves << " locals) ===\n";

  Table table({"topology", "root msgs in", "root bytes in", "total wire bytes",
               "median (win 0)"});

  // Flat topology.
  {
    RealClock clock;
    net::Network network(&clock);
    sim::SystemConfig config;
    config.kind = sim::SystemKind::kDema;
    config.num_locals = leaves;
    config.gamma = gamma;
    auto system =
        bench::Unwrap(sim::BuildSystem(config, &network, &clock, 0), "build");
    sim::WorkloadConfig load = sim::MakeUniformWorkload(
        leaves, windows, rate, bench::SensorDistribution());
    load.window_len_us = config.window_len_us;
    sim::SyncDriver driver(&system, &network, &clock);
    bench::UnwrapStatus(driver.Run(load), "flat run");

    uint64_t root_msgs = 0, root_bytes = 0;
    for (NodeId local : system.local_ids) {
      auto stats = network.GetLinkStats(local, system.root_id);
      root_msgs += stats.counters.messages;
      root_bytes += stats.counters.bytes;
    }
    bench::UnwrapStatus(
        table.AddRow({"flat", FmtCount(root_msgs), FmtBytes(root_bytes),
                      FmtBytes(network.TotalStats().counters.bytes),
                      FmtF(driver.outputs().front().values[0], 2)}),
        "table row");
  }

  // Tree topology with the same leaves and workload.
  {
    RealClock clock;
    net::Network network(&clock);
    sim::TreeConfig config;
    config.num_relays = relays;
    config.locals_per_relay = per_relay;
    config.gamma = gamma;
    auto tree = bench::Unwrap(sim::BuildTreeSystem(config, &network, &clock),
                              "tree build");
    sim::WorkloadConfig load = sim::MakeUniformWorkload(
        leaves, windows, rate, bench::SensorDistribution());
    load.window_len_us = config.window_len_us;
    for (size_t i = 0; i < leaves; ++i) {
      load.generators[i].node = tree.local_ids[i];
    }
    sim::TreeSyncDriver driver(&tree, &network, &clock);
    bench::UnwrapStatus(driver.Run(load), "tree run");

    uint64_t root_msgs = 0, root_bytes = 0;
    for (NodeId relay : tree.relay_ids) {
      auto stats = network.GetLinkStats(relay, tree.root_id);
      root_msgs += stats.counters.messages;
      root_bytes += stats.counters.bytes;
    }
    bench::UnwrapStatus(
        table.AddRow({std::to_string(relays) + " relays", FmtCount(root_msgs),
                      FmtBytes(root_bytes),
                      FmtBytes(network.TotalStats().counters.bytes),
                      FmtF(driver.outputs().front().values[0], 2)}),
        "table row");
  }
  bench::EmitTable(table, flags);
  return 0;
}
