// Figure 6a: network utilization of Dema vs Scotty, Desis, and Tdigest over
// the same ingested volume. Runs the deterministic synchronous driver so the
// byte counts are exact and repeatable; reports events on the wire, wire
// bytes, and the reduction relative to the centralized baseline.
//
// Expected shape (paper): Dema cuts network cost by ~99% vs Scotty/Desis.

#include "harness.h"

using namespace dema;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const size_t locals = static_cast<size_t>(flags.GetInt("locals", 2));
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 5));
  const double rate = flags.GetDouble("rate", 1'000'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 10'000));

  std::cout << "=== Figure 6a: network utilization (1 root + " << locals
            << " locals, " << windows << " windows x " << FmtRate(rate)
            << ", gamma=" << gamma << ") ===\n";

  sim::WorkloadConfig load = sim::MakeUniformWorkload(
      locals, windows, rate, bench::SensorDistribution());

  struct Row {
    const char* name;
    sim::RunMetrics metrics;
  };
  std::vector<Row> rows;
  for (auto kind :
       {sim::SystemKind::kDema, sim::SystemKind::kCentralExact,
        sim::SystemKind::kDesisMerge, sim::SystemKind::kTDigestCentral,
        sim::SystemKind::kTDigestDecentral, sim::SystemKind::kQDigest}) {
    sim::SystemConfig config;
    config.kind = kind;
    config.num_locals = locals;
    config.gamma = gamma;
    config.qdigest_hi = 10'000;  // the sensor distribution's domain
    auto metrics = bench::Unwrap(sim::RunSync(config, load), "sync run");
    rows.push_back({sim::SystemKindToString(kind), std::move(metrics)});
  }

  uint64_t central_bytes = 0;
  for (const Row& row : rows) {
    if (std::string(row.name) == "Scotty") central_bytes = row.metrics.network_total.bytes;
  }

  Table table({"system", "ingested", "wire events", "wire bytes", "msgs",
               "vs Scotty", "sim transfer ms"});
  for (const Row& row : rows) {
    const auto& net_total = row.metrics.network_total;
    double saving =
        central_bytes
            ? 100.0 * (1.0 - static_cast<double>(net_total.bytes) /
                                 static_cast<double>(central_bytes))
            : 0.0;
    bench::UnwrapStatus(
        table.AddRow({row.name, FmtCount(row.metrics.events_ingested),
                      FmtCount(net_total.events), FmtBytes(net_total.bytes),
                      FmtCount(net_total.messages),
                      (saving >= 0 ? "-" : "+") + FmtF(std::abs(saving), 1) + "%",
                      FmtF(row.metrics.simulated_transfer_us / 1000.0, 2)}),
        "table row");
  }
  bench::EmitTable(table, flags);
  return 0;
}
