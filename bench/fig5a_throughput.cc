// Figure 5a: maximum sustainable throughput of Dema vs Scotty (centralized
// exact), Desis (decentralized sort + central merge), and Tdigest
// (centralized approximate). Topology: 1 root + 2 locals, 1 s tumbling
// windows, median, scale rate 1, gamma = 10,000 — as in Section 4.1.
//
// Throughput uses the simulated-parallel model: each node's busy time is
// measured separately and the pipeline rate is bounded by the busiest node,
// exactly as on the paper's one-machine-per-node cluster (this harness runs
// on a single core, so thread wall time cannot express node parallelism).
//
// Expected shape (paper): Tdigest > Dema >> Desis > Scotty.

#include "harness.h"

using namespace dema;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const size_t locals = static_cast<size_t>(flags.GetInt("locals", 2));
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 8));
  const double rate = flags.GetDouble("rate", 300'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 10'000));

  std::cout << "=== Figure 5a: throughput (1 root + " << locals
            << " locals, 1s windows, median, gamma=" << gamma << ") ===\n";

  sim::WorkloadConfig load = sim::MakeUniformWorkload(
      locals, windows, rate, bench::SensorDistribution());

  Table table({"system", "events", "throughput", "events/s", "bottleneck",
               "root busy s", "local busy s"});
  for (auto kind :
       {sim::SystemKind::kDema, sim::SystemKind::kCentralExact,
        sim::SystemKind::kDesisMerge, sim::SystemKind::kTDigestCentral}) {
    sim::SystemConfig config;
    config.kind = kind;
    config.num_locals = locals;
    config.gamma = gamma;
    auto metrics = bench::Unwrap(sim::RunSync(config, load), "sync run");
    bench::UnwrapStatus(
        table.AddRow({sim::SystemKindToString(kind),
                      FmtCount(metrics.events_ingested),
                      FmtRate(metrics.sim_throughput_eps),
                      FmtF(metrics.sim_throughput_eps, 0), metrics.bottleneck,
                      FmtF(metrics.root_busy_seconds, 3),
                      FmtF(metrics.max_local_busy_seconds, 3)}),
        "table row");
  }
  bench::EmitTable(table, flags);
  return 0;
}
