// Ablation: fixed-width vs compact (delta/varint) wire encoding. The compact
// codec shrinks every raw-event payload — candidate replies, forwarded
// batches, sensor streams — at a small encode/decode CPU cost. Reported per
// system so the byte columns of the network experiments can be read under
// either encoding.

#include "harness.h"

using namespace dema;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const size_t locals = static_cast<size_t>(flags.GetInt("locals", 2));
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 4));
  const double rate = flags.GetDouble("rate", 100'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 5'000));

  std::cout << "=== Ablation: wire codec (fixed vs compact), " << windows
            << " windows x " << FmtRate(rate) << " per node ===\n";

  sim::WorkloadConfig load = sim::MakeUniformWorkload(
      locals, windows, rate, bench::SensorDistribution());

  Table table({"system", "codec", "wire bytes", "bytes/event", "throughput"});
  for (auto kind : {sim::SystemKind::kDema, sim::SystemKind::kCentralExact,
                    sim::SystemKind::kDesisMerge}) {
    for (auto codec : {net::EventCodec::kFixed, net::EventCodec::kCompact}) {
      sim::SystemConfig config;
      config.kind = kind;
      config.num_locals = locals;
      config.gamma = gamma;
      config.wire_codec = codec;
      auto metrics = bench::Unwrap(sim::RunSync(config, load), "sync run");
      double bytes_per_event =
          metrics.network_total.events
              ? static_cast<double>(metrics.network_total.bytes) /
                    static_cast<double>(metrics.network_total.events)
              : 0;
      bench::UnwrapStatus(
          table.AddRow({sim::SystemKindToString(kind),
                        codec == net::EventCodec::kFixed ? "fixed" : "compact",
                        FmtBytes(metrics.network_total.bytes),
                        bytes_per_event ? FmtF(bytes_per_event, 1) : "-",
                        FmtRate(metrics.sim_throughput_eps)}),
          "table row");
    }
  }
  bench::EmitTable(table, flags);
  return 0;
}
