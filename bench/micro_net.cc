// Microbenchmarks for the network substrate: wire codecs (encode/decode for
// fixed and compact, plus the value-streaming fast path), channel push/pop,
// and fabric send overhead.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/clock.h"
#include "common/rng.h"
#include "net/channel.h"
#include "net/codec.h"
#include "net/message.h"
#include "net/network.h"

namespace dema::net {
namespace {

std::vector<Event> MakeEvents(size_t n, bool sorted) {
  Rng rng(5);
  std::vector<Event> events;
  TimestampUs t = 0;
  for (uint32_t i = 0; i < n; ++i) {
    t += rng.UniformInt(1, 50);
    events.push_back(Event{rng.Uniform(0, 1e6), t, 2, i});
  }
  if (sorted) std::sort(events.begin(), events.end());
  return events;
}

void BM_EncodeFixed(benchmark::State& state) {
  auto events = MakeEvents(state.range(0), false);
  for (auto _ : state) {
    Writer w;
    EncodeEvents(&w, events, EventCodec::kFixed);
    benchmark::DoNotOptimize(w.buffer().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeFixed)->Arg(10'000);

void BM_EncodeCompactSorted(benchmark::State& state) {
  auto events = MakeEvents(state.range(0), true);
  for (auto _ : state) {
    Writer w;
    EncodeEvents(&w, events, EventCodec::kCompact, /*sorted_hint=*/true);
    benchmark::DoNotOptimize(w.buffer().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeCompactSorted)->Arg(10'000);

void BM_DecodeCompactSorted(benchmark::State& state) {
  auto events = MakeEvents(state.range(0), true);
  Writer w;
  EncodeEvents(&w, events, EventCodec::kCompact, true);
  for (auto _ : state) {
    Reader r(w.buffer());
    std::vector<Event> out;
    benchmark::DoNotOptimize(DecodeEvents(&r, &out).ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeCompactSorted)->Arg(10'000);

void BM_ValueStreamFixed(benchmark::State& state) {
  EventBatch batch;
  batch.events = MakeEvents(state.range(0), false);
  Message m = MakeMessage(MessageType::kEventBatch, 1, 0, batch);
  for (auto _ : state) {
    double sum = 0;
    auto count = EventBatch::ForEachValue(m.payload, [&](double v) { sum += v; });
    benchmark::DoNotOptimize(count.ok());
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ValueStreamFixed)->Arg(10'000);

void BM_ValueStreamCompact(benchmark::State& state) {
  EventBatch batch;
  batch.sorted = true;
  batch.codec = EventCodec::kCompact;
  batch.events = MakeEvents(state.range(0), true);
  Message m = MakeMessage(MessageType::kEventBatch, 1, 0, batch);
  for (auto _ : state) {
    double sum = 0;
    auto count = EventBatch::ForEachValue(m.payload, [&](double v) { sum += v; });
    benchmark::DoNotOptimize(count.ok());
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ValueStreamCompact)->Arg(10'000);

void BM_ChannelPushPop(benchmark::State& state) {
  Channel ch;
  for (auto _ : state) {
    Message m;
    m.type = MessageType::kEventBatch;
    m.payload.resize(64);
    ch.Push(std::move(m));
    benchmark::DoNotOptimize(ch.TryPop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChannelPushPop);

void BM_NetworkSend(benchmark::State& state) {
  RealClock clock;
  Network network(&clock);
  (void)network.RegisterNode(0);
  (void)network.RegisterNode(1);
  Channel* inbox = network.Inbox(0);
  for (auto _ : state) {
    Message m;
    m.type = MessageType::kEventBatch;
    m.src = 1;
    m.dst = 0;
    m.payload.resize(64);
    benchmark::DoNotOptimize(network.Send(std::move(m)).ok());
    benchmark::DoNotOptimize(inbox->TryPop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSend);

}  // namespace
}  // namespace dema::net

BENCHMARK_MAIN();
