// Ablation: adaptive gamma (Section 3.3) vs fixed gamma under a drifting
// workload. Event rates swing across phases; the controller should track
// gamma* = sqrt(2 l_G / m) and beat any single fixed gamma on total network
// cost across the whole drift.

#include "harness.h"

#include "common/clock.h"
#include "dema/adaptive_gamma.h"
#include "dema/root_node.h"

using namespace dema;

namespace {

struct DriftResult {
  uint64_t wire_events = 0;
  uint64_t wire_bytes = 0;
  uint64_t final_gamma = 0;
  /// The paper's cost metric: 2 synopsis events per slice + candidate events.
  uint64_t model_cost = 0;
};

/// Drives a Dema topology window-by-window with an event rate that drifts
/// between phases (something MakeUniformWorkload cannot express).
DriftResult RunDrift(bool adaptive, uint64_t fixed_gamma, uint64_t windows,
                     const std::vector<double>& phase_rates) {
  RealClock clock;
  net::Network network(&clock);
  sim::SystemConfig config;
  config.kind = sim::SystemKind::kDema;
  config.num_locals = 2;
  config.gamma = fixed_gamma;
  config.adaptive_gamma = adaptive;
  auto system =
      bench::Unwrap(sim::BuildSystem(config, &network, &clock, 0), "build");
  system.root->SetResultCallback([](const sim::WindowOutput&) {});

  auto pump = [&] {
    bool progress = true;
    while (progress) {
      progress = false;
      while (auto msg = network.Inbox(system.root_id)->TryPop()) {
        bench::UnwrapStatus(system.root->OnMessage(*msg), "root message");
        progress = true;
      }
      for (size_t i = 0; i < system.locals.size(); ++i) {
        while (auto msg = network.Inbox(system.local_ids[i])->TryPop()) {
          bench::UnwrapStatus(system.locals[i]->OnMessage(*msg), "local message");
          progress = true;
        }
      }
    }
  };

  for (uint64_t w = 0; w < windows; ++w) {
    double rate = phase_rates[(w * phase_rates.size()) / windows];
    TimestampUs start = static_cast<TimestampUs>(w) * config.window_len_us;
    for (size_t i = 0; i < system.locals.size(); ++i) {
      gen::GeneratorConfig gcfg;
      gcfg.node = system.local_ids[i];
      gcfg.seed = 100 + w * 17 + i;
      gcfg.distribution = bench::SensorDistribution();
      gcfg.event_rate = rate;
      gcfg.start_time_us = start;
      auto gen = bench::Unwrap(gen::StreamGenerator::Create(gcfg), "generator");
      for (const Event& e : gen->GenerateWindow(start, config.window_len_us)) {
        bench::UnwrapStatus(system.locals[i]->OnEvent(e), "ingest");
      }
      bench::UnwrapStatus(
          system.locals[i]->OnWatermark(start + config.window_len_us), "watermark");
    }
    pump();
  }

  DriftResult result;
  auto total = network.TotalStats();
  result.wire_events = total.counters.events;
  result.wire_bytes = total.counters.bytes;
  auto* root = static_cast<core::DemaRootNode*>(system.root.get());
  result.final_gamma = root->current_gamma();
  result.model_cost = 2 * root->stats().synopsis_slices + root->stats().candidate_events;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 12));
  // Event rate drifts 5k -> 200k -> 20k events/s per node across the run.
  const std::vector<double> phase_rates = {5'000, 200'000, 20'000};

  std::cout << "=== Ablation: adaptive vs fixed gamma under rate drift "
            << "(5k -> 200k -> 20k ev/s per node, " << windows
            << " windows) ===\n";

  Table table({"policy", "model cost (events)", "wire bytes", "final gamma"});
  for (uint64_t fixed : {uint64_t{10}, uint64_t{1'000}, uint64_t{100'000}}) {
    auto r = RunDrift(/*adaptive=*/false, fixed, windows, phase_rates);
    bench::UnwrapStatus(
        table.AddRow({"fixed gamma=" + std::to_string(fixed),
                      FmtCount(r.model_cost), FmtBytes(r.wire_bytes),
                      std::to_string(r.final_gamma)}),
        "table row");
  }
  auto adaptive = RunDrift(/*adaptive=*/true, 1'000, windows, phase_rates);
  bench::UnwrapStatus(
      table.AddRow({"adaptive (start 1000)", FmtCount(adaptive.model_cost),
                    FmtBytes(adaptive.wire_bytes),
                    std::to_string(adaptive.final_gamma)}),
      "table row");
  bench::EmitTable(table, flags);
  return 0;
}
