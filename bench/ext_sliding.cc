// Extension: Dema over sliding windows. Each overlapping window runs the
// identification + calculation protocol independently (non-decomposable
// functions cannot share slices across windows — the very premise of the
// paper), so cost scales with the overlap factor length/slide. This harness
// quantifies that scaling and confirms exactness-preserving behaviour.

#include "harness.h"

using namespace dema;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const size_t locals = static_cast<size_t>(flags.GetInt("locals", 2));
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 6));
  const double rate = flags.GetDouble("rate", 50'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 1'000));

  std::cout << "=== Extension: Dema with sliding windows (gamma=" << gamma
            << ", " << windows << "s of events x " << FmtRate(rate)
            << " per node) ===\n";

  Table table({"slide", "overlap", "windows emitted", "wire events",
               "wire bytes", "throughput"});
  for (int divisor : {1, 2, 4, 8}) {
    sim::SystemConfig config;
    config.kind = sim::SystemKind::kDema;
    config.num_locals = locals;
    config.gamma = gamma;
    config.window_len_us = kMicrosPerSecond;
    config.window_slide_us = kMicrosPerSecond / divisor;
    sim::WorkloadConfig load = sim::MakeUniformWorkload(
        locals, windows, rate, bench::SensorDistribution());
    auto metrics = bench::Unwrap(sim::RunSync(config, load), "sync run");
    bench::UnwrapStatus(
        table.AddRow({FmtF(1000.0 / divisor, 0) + " ms",
                      std::to_string(divisor) + "x",
                      FmtCount(metrics.windows_emitted),
                      FmtCount(metrics.network_total.events),
                      FmtBytes(metrics.network_total.bytes),
                      FmtRate(metrics.sim_throughput_eps)}),
        "table row");
  }
  bench::EmitTable(table, flags);
  return 0;
}
