// Figure 8a: Dema throughput for the 25%, 50% (median), and 75% quantile
// functions on a 3-node cluster with similar data distributions per node.
//
// Expected shape (paper): throughput is essentially flat across quantile
// choices — the identification step dominates and is rank-agnostic.

#include "harness.h"

using namespace dema;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const size_t locals = static_cast<size_t>(flags.GetInt("locals", 2));
  const uint64_t windows = static_cast<uint64_t>(flags.GetInt("windows", 8));
  const double rate = flags.GetDouble("rate", 300'000);
  const uint64_t gamma = static_cast<uint64_t>(flags.GetInt("gamma", 10'000));

  std::cout << "=== Figure 8a: Dema throughput per quantile function (gamma="
            << gamma << ") ===\n";

  sim::WorkloadConfig load = sim::MakeUniformWorkload(
      locals, windows, rate, bench::SensorDistribution());

  Table table({"quantile", "throughput", "events/s", "candidate events"});
  for (double q : {0.25, 0.5, 0.75}) {
    sim::SystemConfig config;
    config.kind = sim::SystemKind::kDema;
    config.num_locals = locals;
    config.gamma = gamma;
    config.quantiles = {q};
    auto metrics = bench::Unwrap(sim::RunSync(config, load), "sync run");
    bench::UnwrapStatus(
        table.AddRow({FmtF(q * 100, 0) + "%",
                      FmtRate(metrics.sim_throughput_eps),
                      FmtF(metrics.sim_throughput_eps, 0),
                      FmtCount(metrics.dema.candidate_events)}),
        "table row");
  }
  bench::EmitTable(table, flags);
  return 0;
}
