#include "baselines/tdigest_agg.h"

#include <algorithm>

namespace dema::baselines {

void SketchSummary::SerializeTo(net::Writer* w) const {
  w->PutU64(window_id);
  w->PutU32(node);
  w->PutU64(local_window_size);
  w->PutI64(close_time_us);
  w->PutU32(static_cast<uint32_t>(digest.size()));
  for (uint8_t b : digest) w->PutU8(b);
}

Result<SketchSummary> SketchSummary::Deserialize(net::Reader* r) {
  SketchSummary s;
  DEMA_RETURN_NOT_OK(r->GetU64(&s.window_id));
  DEMA_RETURN_NOT_OK(r->GetU32(&s.node));
  DEMA_RETURN_NOT_OK(r->GetU64(&s.local_window_size));
  DEMA_RETURN_NOT_OK(r->GetI64(&s.close_time_us));
  uint32_t n = 0;
  DEMA_RETURN_NOT_OK(r->GetU32(&n));
  if (n > r->remaining()) {
    return Status::SerializationError("digest length exceeds buffer");
  }
  s.digest.resize(n);
  for (uint32_t i = 0; i < n; ++i) DEMA_RETURN_NOT_OK(r->GetU8(&s.digest[i]));
  return s;
}

TDigestLocalNode::TDigestLocalNode(TDigestOptions options, transport::Transport* transport,
                                   const Clock* clock)
    : options_(std::move(options)),
      transport_(transport),
      clock_(clock),
      assigner_(options_.window_len_us) {}

Status TDigestLocalNode::OnEvent(const Event& e) {
  net::WindowId id = assigner_.AssignWindow(e.timestamp);
  auto it = open_.find(id);
  if (it == open_.end()) {
    it = open_
             .emplace(id, std::make_pair(sketch::TDigest(options_.compression),
                                         uint64_t{0}))
             .first;
  }
  it->second.first.Add(e.value);
  it->second.second += 1;
  return Status::OK();
}

Status TDigestLocalNode::EmitWindow(net::WindowId id) {
  SketchSummary summary;
  summary.window_id = id;
  summary.node = options_.id;
  summary.close_time_us = clock_->NowUs();
  auto it = open_.find(id);
  if (it != open_.end()) {
    summary.local_window_size = it->second.second;
    net::Writer w;
    it->second.first.SerializeTo(&w);
    summary.digest = w.TakeBuffer();
    open_.erase(it);
  }
  return transport_->Send(net::MakeMessage(net::MessageType::kSketchSummary,
                                         options_.id, options_.root_id, summary));
}

Status TDigestLocalNode::OnWatermark(TimestampUs watermark_us) {
  net::WindowId up_to =
      assigner_.AssignWindow(std::max<TimestampUs>(0, watermark_us));
  while (next_window_to_emit_ < up_to) {
    DEMA_RETURN_NOT_OK(EmitWindow(next_window_to_emit_++));
  }
  return Status::OK();
}

Status TDigestLocalNode::OnFinish(TimestampUs final_watermark_us) {
  return OnWatermark(final_watermark_us);
}

Status TDigestLocalNode::OnMessage(const net::Message& msg) {
  if (msg.type == net::MessageType::kShutdown) return Status::OK();
  return Status::Internal(std::string("tdigest local got unexpected ") +
                          net::MessageTypeToString(msg.type));
}

TDigestRootNode::TDigestRootNode(TDigestOptions options, transport::Transport* transport,
                                 const Clock* clock)
    : options_(std::move(options)), transport_(transport), clock_(clock) {
  (void)transport_;
}

Status TDigestRootNode::OnMessage(const net::Message& msg) {
  net::Reader r(msg.payload_bytes());
  switch (msg.type) {
    case net::MessageType::kEventBatch: {
      if (options_.mode != TDigestMode::kCentralized) {
        return Status::Internal("raw events in decentralized sketch mode");
      }
      // Lazy deserialization: the sketch only needs values, so stride over
      // the payload instead of materializing Event objects.
      DEMA_ASSIGN_OR_RETURN(net::WindowId wid,
                            net::EventBatch::PeekWindowId(msg.payload_bytes()));
      auto it = pending_.try_emplace(wid, options_.compression).first;
      sketch::TDigest& digest = it->second.digest;
      DEMA_ASSIGN_OR_RETURN(
          uint64_t count,
          net::EventBatch::ForEachValue(msg.payload_bytes(),
                                        [&digest](double v) { digest.Add(v); }));
      it->second.received_events += count;
      return MaybeFinalize(wid, &it->second);
    }
    case net::MessageType::kWindowEnd: {
      DEMA_ASSIGN_OR_RETURN(auto end, net::WindowEnd::Deserialize(&r));
      auto it = pending_.try_emplace(end.window_id, options_.compression).first;
      PendingWindow& w = it->second;
      ++w.ends_received;
      w.expected_events += end.local_window_size;
      w.last_close_time_us = std::max(w.last_close_time_us, end.close_time_us);
      return MaybeFinalize(end.window_id, &w);
    }
    case net::MessageType::kSketchSummary: {
      if (options_.mode != TDigestMode::kDecentralized) {
        return Status::Internal("sketch summary in centralized mode");
      }
      DEMA_ASSIGN_OR_RETURN(auto summary, SketchSummary::Deserialize(&r));
      auto it =
          pending_.try_emplace(summary.window_id, options_.compression).first;
      PendingWindow& w = it->second;
      if (!summary.digest.empty()) {
        net::Reader dr(summary.digest);
        DEMA_ASSIGN_OR_RETURN(auto digest, sketch::TDigest::Deserialize(&dr));
        w.digest.Merge(digest);
      }
      ++w.ends_received;
      w.expected_events += summary.local_window_size;
      w.received_events += summary.local_window_size;
      w.last_close_time_us = std::max(w.last_close_time_us, summary.close_time_us);
      return MaybeFinalize(summary.window_id, &w);
    }
    case net::MessageType::kShutdown:
      return Status::OK();
    default:
      return Status::Internal(std::string("tdigest root got unexpected ") +
                              net::MessageTypeToString(msg.type));
  }
}

Status TDigestRootNode::MaybeFinalize(net::WindowId id, PendingWindow* w) {
  if (w->ends_received < options_.locals.size()) return Status::OK();
  if (w->received_events < w->expected_events) return Status::OK();

  sim::WindowOutput out;
  out.window_id = id;
  out.global_size = w->expected_events;
  out.quantiles = options_.quantiles;
  if (w->expected_events == 0) {
    out.values.assign(options_.quantiles.size(), 0.0);
  } else {
    for (double q : options_.quantiles) {
      DEMA_ASSIGN_OR_RETURN(double v, w->digest.Quantile(q));
      out.values.push_back(v);
    }
  }
  out.latency_us = clock_->NowUs() - w->last_close_time_us;
  pending_.erase(id);
  ++windows_emitted_;
  if (callback_) callback_(out);
  return Status::OK();
}

}  // namespace dema::baselines
