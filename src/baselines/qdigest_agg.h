#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/clock.h"
#include "transport/transport.h"
#include "sim/node.h"
#include "sketch/qdigest.h"
#include "stream/window.h"

namespace dema::baselines {

/// \brief Configuration of the q-digest pipeline (Shrivastava et al., the
/// paper's second related-work sketch).
///
/// q-digest is inherently decentralized: every local node summarizes its
/// window over a shared bounded integer universe and the root merges the
/// digests — the classic sensor-network design the paper contrasts Dema
/// against. Requires the value domain [lo, hi] up front (a real limitation
/// of q-digest that t-digest and Dema do not have).
struct QDigestOptions {
  NodeId id = 0;
  NodeId root_id = 0;
  std::vector<NodeId> locals;
  std::vector<double> quantiles = {0.5};
  DurationUs window_len_us = kMicrosPerSecond;
  /// Value domain the quantizer maps onto the integer universe.
  double domain_lo = 0;
  double domain_hi = 1'000'000;
  /// Universe bits (quantization resolution), in [1, 31].
  uint32_t universe_bits = 20;
  /// Compression factor k: rank error <= n * bits / k.
  uint64_t k = 256;
};

/// \brief Local node: builds a per-window q-digest and ships one summary.
class QDigestLocalNode final : public sim::LocalNodeLogic {
 public:
  QDigestLocalNode(QDigestOptions options, transport::Transport* transport,
                   const Clock* clock);

  Status OnEvent(const Event& e) override;
  Status OnWatermark(TimestampUs watermark_us) override;
  Status OnFinish(TimestampUs final_watermark_us) override;
  Status OnMessage(const net::Message& msg) override;

 private:
  Status EmitWindow(net::WindowId id);

  QDigestOptions options_;
  transport::Transport* transport_;
  const Clock* clock_;
  stream::TumblingWindowAssigner assigner_;
  std::map<net::WindowId, std::pair<sketch::QDigest, uint64_t>> open_;
  net::WindowId next_window_to_emit_ = 0;
};

/// \brief Root node: merges per-node q-digests and answers quantiles.
class QDigestRootNode final : public sim::RootNodeLogic {
 public:
  QDigestRootNode(QDigestOptions options, transport::Transport* transport,
                  const Clock* clock);

  Status OnMessage(const net::Message& msg) override;
  void SetResultCallback(sim::ResultCallback cb) override { callback_ = std::move(cb); }
  uint64_t windows_emitted() const override { return windows_emitted_; }
  bool idle() const override { return pending_.empty(); }

 private:
  struct PendingWindow {
    sketch::QDigest digest;
    size_t summaries_received = 0;
    uint64_t expected_events = 0;
    TimestampUs last_close_time_us = 0;

    explicit PendingWindow(const QDigestOptions& options)
        : digest(sketch::ValueQuantizer(options.domain_lo, options.domain_hi,
                                        options.universe_bits),
                 options.k) {}
  };

  Status MaybeFinalize(net::WindowId id, PendingWindow* w);

  QDigestOptions options_;
  transport::Transport* transport_;
  const Clock* clock_;
  std::map<net::WindowId, PendingWindow> pending_;
  sim::ResultCallback callback_;
  uint64_t windows_emitted_ = 0;
};

}  // namespace dema::baselines
