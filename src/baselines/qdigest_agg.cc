#include "baselines/qdigest_agg.h"

#include <algorithm>

#include "baselines/tdigest_agg.h"  // reuses the SketchSummary payload

namespace dema::baselines {

QDigestLocalNode::QDigestLocalNode(QDigestOptions options, transport::Transport* transport,
                                   const Clock* clock)
    : options_(std::move(options)),
      transport_(transport),
      clock_(clock),
      assigner_(options_.window_len_us) {}

Status QDigestLocalNode::OnEvent(const Event& e) {
  net::WindowId id = assigner_.AssignWindow(e.timestamp);
  auto it = open_.find(id);
  if (it == open_.end()) {
    sketch::QDigest digest(
        sketch::ValueQuantizer(options_.domain_lo, options_.domain_hi,
                               options_.universe_bits),
        options_.k);
    it = open_.emplace(id, std::make_pair(std::move(digest), uint64_t{0})).first;
  }
  it->second.first.Add(e.value);
  it->second.second += 1;
  return Status::OK();
}

Status QDigestLocalNode::EmitWindow(net::WindowId id) {
  SketchSummary summary;
  summary.window_id = id;
  summary.node = options_.id;
  summary.close_time_us = clock_->NowUs();
  auto it = open_.find(id);
  if (it != open_.end()) {
    summary.local_window_size = it->second.second;
    net::Writer w;
    it->second.first.SerializeTo(&w);
    summary.digest = w.TakeBuffer();
    open_.erase(it);
  }
  return transport_->Send(net::MakeMessage(net::MessageType::kSketchSummary,
                                         options_.id, options_.root_id, summary));
}

Status QDigestLocalNode::OnWatermark(TimestampUs watermark_us) {
  net::WindowId up_to =
      assigner_.AssignWindow(std::max<TimestampUs>(0, watermark_us));
  while (next_window_to_emit_ < up_to) {
    DEMA_RETURN_NOT_OK(EmitWindow(next_window_to_emit_++));
  }
  return Status::OK();
}

Status QDigestLocalNode::OnFinish(TimestampUs final_watermark_us) {
  return OnWatermark(final_watermark_us);
}

Status QDigestLocalNode::OnMessage(const net::Message& msg) {
  if (msg.type == net::MessageType::kShutdown) return Status::OK();
  return Status::Internal(std::string("qdigest local got unexpected ") +
                          net::MessageTypeToString(msg.type));
}

QDigestRootNode::QDigestRootNode(QDigestOptions options, transport::Transport* transport,
                                 const Clock* clock)
    : options_(std::move(options)), transport_(transport), clock_(clock) {
  (void)transport_;
}

Status QDigestRootNode::OnMessage(const net::Message& msg) {
  net::Reader r(msg.payload_bytes());
  switch (msg.type) {
    case net::MessageType::kSketchSummary: {
      DEMA_ASSIGN_OR_RETURN(auto summary, SketchSummary::Deserialize(&r));
      auto it = pending_.find(summary.window_id);
      if (it == pending_.end()) {
        it = pending_.emplace(summary.window_id, PendingWindow(options_)).first;
      }
      PendingWindow& w = it->second;
      if (!summary.digest.empty()) {
        net::Reader dr(summary.digest);
        DEMA_ASSIGN_OR_RETURN(auto digest, sketch::QDigest::Deserialize(&dr));
        DEMA_RETURN_NOT_OK(w.digest.Merge(digest));
      }
      ++w.summaries_received;
      w.expected_events += summary.local_window_size;
      w.last_close_time_us = std::max(w.last_close_time_us, summary.close_time_us);
      return MaybeFinalize(summary.window_id, &w);
    }
    case net::MessageType::kShutdown:
      return Status::OK();
    default:
      return Status::Internal(std::string("qdigest root got unexpected ") +
                              net::MessageTypeToString(msg.type));
  }
}

Status QDigestRootNode::MaybeFinalize(net::WindowId id, PendingWindow* w) {
  if (w->summaries_received < options_.locals.size()) return Status::OK();

  sim::WindowOutput out;
  out.window_id = id;
  out.global_size = w->expected_events;
  out.quantiles = options_.quantiles;
  if (w->expected_events == 0) {
    out.values.assign(options_.quantiles.size(), 0.0);
  } else {
    for (double q : options_.quantiles) {
      DEMA_ASSIGN_OR_RETURN(double v, w->digest.Quantile(q));
      out.values.push_back(v);
    }
  }
  out.latency_us = clock_->NowUs() - w->last_close_time_us;
  pending_.erase(id);
  ++windows_emitted_;
  if (callback_) callback_(out);
  return Status::OK();
}

}  // namespace dema::baselines
