#include "baselines/forwarding_local.h"

#include <algorithm>

namespace dema::baselines {

ForwardingLocalNode::ForwardingLocalNode(ForwardingLocalNodeOptions options,
                                         transport::Transport* transport, const Clock* clock)
    : options_(options),
      transport_(transport),
      clock_(clock),
      assigner_(options.window_len_us),
      windows_(options.window_len_us) {
  if (options_.batch_size == 0) options_.batch_size = 1;
}

Status ForwardingLocalNode::OnEvent(const Event& e) {
  ++events_ingested_;
  if (options_.sort_locally) {
    windows_.OnEvent(e);
    return Status::OK();
  }
  net::WindowId wid = assigner_.AssignWindow(e.timestamp);
  if (!partial_batch_.empty() && wid != partial_batch_window_) {
    DEMA_RETURN_NOT_OK(FlushPartialBatch());
  }
  partial_batch_window_ = wid;
  partial_batch_.push_back(e);
  forwarded_counts_[wid] += 1;
  if (partial_batch_.size() >= options_.batch_size) {
    DEMA_RETURN_NOT_OK(FlushPartialBatch());
  }
  return Status::OK();
}

Status ForwardingLocalNode::FlushPartialBatch() {
  if (partial_batch_.empty()) return Status::OK();
  net::EventBatch batch;
  batch.window_id = partial_batch_window_;
  batch.sorted = false;
  batch.last_batch = false;
  batch.codec = options_.codec;
  batch.events = std::move(partial_batch_);
  partial_batch_.clear();
  return transport_->Send(net::MakeMessage(net::MessageType::kEventBatch,
                                         options_.id, options_.root_id, batch));
}

Status ForwardingLocalNode::SendChunked(net::WindowId id,
                                        const std::vector<Event>& events,
                                        bool sorted) {
  for (size_t begin = 0; begin < events.size(); begin += options_.batch_size) {
    size_t end = std::min(events.size(), begin + options_.batch_size);
    net::EventBatch batch;
    batch.window_id = id;
    batch.sorted = sorted;
    batch.last_batch = end == events.size();
    batch.codec = options_.codec;
    batch.events.assign(events.begin() + begin, events.begin() + end);
    DEMA_RETURN_NOT_OK(transport_->Send(net::MakeMessage(
        net::MessageType::kEventBatch, options_.id, options_.root_id, batch)));
  }
  return Status::OK();
}

Status ForwardingLocalNode::EmitEndedWindows(TimestampUs watermark_us) {
  net::WindowId up_to =
      assigner_.AssignWindow(std::max<TimestampUs>(0, watermark_us));
  if (options_.sort_locally) {
    auto closed = windows_.AdvanceWatermark(watermark_us);
    size_t next_closed = 0;
    while (next_window_to_end_ < up_to) {
      net::WindowId id = next_window_to_end_++;
      uint64_t size = 0;
      if (next_closed < closed.size() && closed[next_closed].id == id) {
        const std::vector<Event>& sorted = closed[next_closed].sorted_events;
        size = sorted.size();
        DEMA_RETURN_NOT_OK(SendChunked(id, sorted, /*sorted=*/true));
        ++next_closed;
      }
      net::WindowEnd end_msg{id, size, clock_->NowUs()};
      DEMA_RETURN_NOT_OK(transport_->Send(net::MakeMessage(
          net::MessageType::kWindowEnd, options_.id, options_.root_id, end_msg)));
    }
    return Status::OK();
  }

  while (next_window_to_end_ < up_to) {
    net::WindowId id = next_window_to_end_++;
    if (!partial_batch_.empty() && partial_batch_window_ == id) {
      DEMA_RETURN_NOT_OK(FlushPartialBatch());
    }
    uint64_t size = 0;
    auto it = forwarded_counts_.find(id);
    if (it != forwarded_counts_.end()) {
      size = it->second;
      forwarded_counts_.erase(it);
    }
    net::WindowEnd end_msg{id, size, clock_->NowUs()};
    DEMA_RETURN_NOT_OK(transport_->Send(net::MakeMessage(
        net::MessageType::kWindowEnd, options_.id, options_.root_id, end_msg)));
  }
  return Status::OK();
}

Status ForwardingLocalNode::OnWatermark(TimestampUs watermark_us) {
  return EmitEndedWindows(watermark_us);
}

Status ForwardingLocalNode::OnFinish(TimestampUs final_watermark_us) {
  return OnWatermark(final_watermark_us);
}

Status ForwardingLocalNode::OnMessage(const net::Message& msg) {
  if (msg.type == net::MessageType::kShutdown) return Status::OK();
  return Status::Internal(std::string("forwarding local got unexpected ") +
                          net::MessageTypeToString(msg.type));
}

}  // namespace dema::baselines
