#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/clock.h"
#include "transport/transport.h"
#include "sim/node.h"

namespace dema::baselines {

/// \brief Configuration shared by the collecting root nodes.
struct CollectingRootOptions {
  NodeId id = 0;
  std::vector<NodeId> locals;
  std::vector<double> quantiles = {0.5};
};

/// \brief Scotty-style centralized root (Section 4, "Baselines").
///
/// Receives every raw event from every local node, buffers them per global
/// window, and — once all locals ended the window — sorts the full dataset
/// and reads the quantiles off by rank. Exact, but all data crosses the
/// network and all sorting happens here: the paper's upper bound on network
/// cost and root load.
class CentralExactRootNode final : public sim::RootNodeLogic {
 public:
  CentralExactRootNode(CollectingRootOptions options, transport::Transport* transport,
                       const Clock* clock);

  Status OnMessage(const net::Message& msg) override;
  void SetResultCallback(sim::ResultCallback cb) override { callback_ = std::move(cb); }
  uint64_t windows_emitted() const override { return windows_emitted_; }
  bool idle() const override { return pending_.empty(); }

 private:
  struct PendingWindow {
    std::vector<Event> events;
    size_t ends_received = 0;
    uint64_t expected_events = 0;
    TimestampUs last_close_time_us = 0;
  };

  Status MaybeFinalize(net::WindowId id, PendingWindow* w);

  CollectingRootOptions options_;
  transport::Transport* transport_;
  const Clock* clock_;
  std::map<net::WindowId, PendingWindow> pending_;
  sim::ResultCallback callback_;
  uint64_t windows_emitted_ = 0;
};

/// \brief Modified-Desis root (Section 4, "Baselines").
///
/// Local nodes ship fully sorted windows; this root only k-way merges the
/// runs (loser tree) up to the highest requested rank and reads the
/// quantiles off during the merge. Exact; same network volume as the
/// centralized baseline but much less root CPU.
class DesisMergeRootNode final : public sim::RootNodeLogic {
 public:
  DesisMergeRootNode(CollectingRootOptions options, transport::Transport* transport,
                     const Clock* clock);

  Status OnMessage(const net::Message& msg) override;
  void SetResultCallback(sim::ResultCallback cb) override { callback_ = std::move(cb); }
  uint64_t windows_emitted() const override { return windows_emitted_; }
  bool idle() const override { return pending_.empty(); }

 private:
  struct PendingWindow {
    /// One sorted run per local index (chunks concatenate in FIFO order).
    std::vector<std::vector<Event>> runs;
    size_t ends_received = 0;
    uint64_t expected_events = 0;
    uint64_t received_events = 0;
    TimestampUs last_close_time_us = 0;
  };

  Status MaybeFinalize(net::WindowId id, PendingWindow* w);

  CollectingRootOptions options_;
  transport::Transport* transport_;
  const Clock* clock_;
  std::map<NodeId, size_t> local_index_;
  std::map<net::WindowId, PendingWindow> pending_;
  sim::ResultCallback callback_;
  uint64_t windows_emitted_ = 0;
};

}  // namespace dema::baselines
