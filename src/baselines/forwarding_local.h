#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/clock.h"
#include "net/codec.h"
#include "transport/transport.h"
#include "sim/node.h"
#include "stream/window_manager.h"

namespace dema::baselines {

/// \brief Configuration of a baseline local node that ships raw events.
struct ForwardingLocalNodeOptions {
  NodeId id = 1;
  NodeId root_id = 0;
  DurationUs window_len_us = kMicrosPerSecond;
  /// Events per EventBatch message.
  size_t batch_size = 8192;
  /// When true (the modified-Desis mode), the node sorts each window before
  /// shipping it; when false (Scotty / centralized mode) events stream
  /// through unsorted as they arrive.
  bool sort_locally = false;
  /// Wire encoding for shipped event batches.
  net::EventCodec codec = net::EventCodec::kFixed;
};

/// \brief Local side of the centralized baselines (Section 4, "Baselines").
///
/// Scotty mode (`sort_locally = false`): forwards every event to the root in
/// arrival order, batched for framing efficiency — the root does all window
/// work. Modified-Desis mode (`sort_locally = true`): sorts each local
/// window and ships it as sorted runs, offloading the sort but still
/// transferring every event. Both modes close each window with a `WindowEnd`
/// marker carrying the local window size.
class ForwardingLocalNode final : public sim::LocalNodeLogic {
 public:
  /// \p transport and \p clock must outlive the node.
  ForwardingLocalNode(ForwardingLocalNodeOptions options, transport::Transport* transport,
                      const Clock* clock);

  Status OnEvent(const Event& e) override;
  Status OnWatermark(TimestampUs watermark_us) override;
  Status OnFinish(TimestampUs final_watermark_us) override;
  Status OnMessage(const net::Message& msg) override;

  /// Events ingested so far.
  uint64_t events_ingested() const { return events_ingested_; }

 private:
  /// Sends the pending unsorted batch for the window being filled.
  Status FlushPartialBatch();
  /// Emits WindowEnd (and, in sorted mode, the sorted run) for every window
  /// id in [next_window_to_end_, up_to_exclusive).
  Status EmitEndedWindows(TimestampUs watermark_us);
  /// Ships \p events for \p id in batch_size chunks.
  Status SendChunked(net::WindowId id, const std::vector<Event>& events,
                     bool sorted);

  ForwardingLocalNodeOptions options_;
  transport::Transport* transport_;
  const Clock* clock_;
  stream::TumblingWindowAssigner assigner_;
  /// Sorted mode: full window buffers.
  stream::WindowManager windows_;
  /// Unsorted mode: the batch currently being filled and per-window counts.
  std::vector<Event> partial_batch_;
  net::WindowId partial_batch_window_ = 0;
  std::map<net::WindowId, uint64_t> forwarded_counts_;
  net::WindowId next_window_to_end_ = 0;
  uint64_t events_ingested_ = 0;
};

}  // namespace dema::baselines
