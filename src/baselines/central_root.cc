#include "baselines/central_root.h"

#include <algorithm>

#include "stream/merge.h"
#include "stream/quantile.h"

namespace dema::baselines {

namespace {

Status ValidateQuantiles(const std::vector<double>& quantiles) {
  if (quantiles.empty()) return Status::InvalidArgument("no quantiles configured");
  for (double q : quantiles) {
    if (!(q > 0.0) || q > 1.0) {
      return Status::InvalidArgument("quantile outside (0, 1]");
    }
  }
  return Status::OK();
}

}  // namespace

CentralExactRootNode::CentralExactRootNode(CollectingRootOptions options,
                                           transport::Transport* transport,
                                           const Clock* clock)
    : options_(std::move(options)), transport_(transport), clock_(clock) {
  (void)transport_;
}

Status CentralExactRootNode::OnMessage(const net::Message& msg) {
  net::Reader r(msg.payload_bytes());
  switch (msg.type) {
    case net::MessageType::kEventBatch: {
      DEMA_ASSIGN_OR_RETURN(auto batch, net::EventBatch::Deserialize(&r));
      PendingWindow& w = pending_[batch.window_id];
      w.events.insert(w.events.end(), batch.events.begin(), batch.events.end());
      return MaybeFinalize(batch.window_id, &w);
    }
    case net::MessageType::kWindowEnd: {
      DEMA_ASSIGN_OR_RETURN(auto end, net::WindowEnd::Deserialize(&r));
      PendingWindow& w = pending_[end.window_id];
      ++w.ends_received;
      w.expected_events += end.local_window_size;
      w.last_close_time_us = std::max(w.last_close_time_us, end.close_time_us);
      return MaybeFinalize(end.window_id, &w);
    }
    case net::MessageType::kShutdown:
      return Status::OK();
    default:
      return Status::Internal(std::string("central root got unexpected ") +
                              net::MessageTypeToString(msg.type));
  }
}

Status CentralExactRootNode::MaybeFinalize(net::WindowId id, PendingWindow* w) {
  if (w->ends_received < options_.locals.size()) return Status::OK();
  if (w->events.size() < w->expected_events) return Status::OK();
  if (w->events.size() > w->expected_events) {
    return Status::Internal("window " + std::to_string(id) + " received " +
                            std::to_string(w->events.size()) + " events, expected " +
                            std::to_string(w->expected_events));
  }
  DEMA_RETURN_NOT_OK(ValidateQuantiles(options_.quantiles));

  sim::WindowOutput out;
  out.window_id = id;
  out.global_size = w->events.size();
  out.quantiles = options_.quantiles;
  if (w->events.empty()) {
    out.values.assign(options_.quantiles.size(), 0.0);
  } else {
    // The Scotty path: one big sort at the root, then direct rank reads.
    std::sort(w->events.begin(), w->events.end());
    for (double q : options_.quantiles) {
      uint64_t rank = stream::QuantileRank(q, w->events.size());
      out.values.push_back(w->events[rank - 1].value);
    }
  }
  out.latency_us = clock_->NowUs() - w->last_close_time_us;
  pending_.erase(id);
  ++windows_emitted_;
  if (callback_) callback_(out);
  return Status::OK();
}

DesisMergeRootNode::DesisMergeRootNode(CollectingRootOptions options,
                                       transport::Transport* transport, const Clock* clock)
    : options_(std::move(options)), transport_(transport), clock_(clock) {
  (void)transport_;
  for (size_t i = 0; i < options_.locals.size(); ++i) {
    local_index_[options_.locals[i]] = i;
  }
}

Status DesisMergeRootNode::OnMessage(const net::Message& msg) {
  net::Reader r(msg.payload_bytes());
  switch (msg.type) {
    case net::MessageType::kEventBatch: {
      DEMA_ASSIGN_OR_RETURN(auto batch, net::EventBatch::Deserialize(&r));
      auto idx = local_index_.find(msg.src);
      if (idx == local_index_.end()) {
        return Status::InvalidArgument("batch from unknown node");
      }
      if (!batch.sorted) {
        return Status::InvalidArgument("Desis root requires sorted runs");
      }
      PendingWindow& w = pending_[batch.window_id];
      if (w.runs.empty()) w.runs.resize(options_.locals.size());
      auto& run = w.runs[idx->second];
      run.insert(run.end(), batch.events.begin(), batch.events.end());
      w.received_events += batch.events.size();
      return MaybeFinalize(batch.window_id, &w);
    }
    case net::MessageType::kWindowEnd: {
      DEMA_ASSIGN_OR_RETURN(auto end, net::WindowEnd::Deserialize(&r));
      PendingWindow& w = pending_[end.window_id];
      if (w.runs.empty()) w.runs.resize(options_.locals.size());
      ++w.ends_received;
      w.expected_events += end.local_window_size;
      w.last_close_time_us = std::max(w.last_close_time_us, end.close_time_us);
      return MaybeFinalize(end.window_id, &w);
    }
    case net::MessageType::kShutdown:
      return Status::OK();
    default:
      return Status::Internal(std::string("Desis root got unexpected ") +
                              net::MessageTypeToString(msg.type));
  }
}

Status DesisMergeRootNode::MaybeFinalize(net::WindowId id, PendingWindow* w) {
  if (w->ends_received < options_.locals.size()) return Status::OK();
  if (w->received_events < w->expected_events) return Status::OK();
  if (w->received_events > w->expected_events) {
    return Status::Internal("window received more events than announced");
  }
  DEMA_RETURN_NOT_OK(ValidateQuantiles(options_.quantiles));

  sim::WindowOutput out;
  out.window_id = id;
  out.global_size = w->expected_events;
  out.quantiles = options_.quantiles;
  if (w->expected_events == 0) {
    out.values.assign(options_.quantiles.size(), 0.0);
  } else {
    // Ranks in ascending order; merge only as far as the largest one.
    std::vector<std::pair<uint64_t, size_t>> ranks;  // (rank, quantile idx)
    for (size_t i = 0; i < options_.quantiles.size(); ++i) {
      ranks.emplace_back(
          stream::QuantileRank(options_.quantiles[i], w->expected_events), i);
    }
    std::sort(ranks.begin(), ranks.end());
    out.values.assign(options_.quantiles.size(), 0.0);
    stream::LoserTreeMerger merger(std::move(w->runs));
    uint64_t produced = 0;
    size_t next_rank = 0;
    while (next_rank < ranks.size() && merger.HasNext()) {
      Event e = merger.Next();
      ++produced;
      while (next_rank < ranks.size() && ranks[next_rank].first == produced) {
        out.values[ranks[next_rank].second] = e.value;
        ++next_rank;
      }
    }
  }
  out.latency_us = clock_->NowUs() - w->last_close_time_us;
  pending_.erase(id);
  ++windows_emitted_;
  if (callback_) callback_(out);
  return Status::OK();
}

}  // namespace dema::baselines
