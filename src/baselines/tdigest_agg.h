#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/clock.h"
#include "transport/transport.h"
#include "sim/node.h"
#include "sketch/tdigest.h"
#include "stream/window.h"

namespace dema::baselines {

/// \brief Where the t-digest is built.
enum class TDigestMode {
  /// The paper's Tdigest baseline: locals forward raw events; the root feeds
  /// them into one digest per window (fast, approximate, centralized).
  kCentralized,
  /// Extension (the paper expects this to win as well): locals sketch their
  /// own windows and ship only digest summaries; the root merges digests.
  kDecentralized,
};

/// \brief Payload: one local window's serialized t-digest.
struct SketchSummary {
  net::WindowId window_id = 0;
  NodeId node = 0;
  uint64_t local_window_size = 0;
  TimestampUs close_time_us = 0;
  /// Serialized digest bytes (empty for an empty window).
  std::vector<uint8_t> digest;

  void SerializeTo(net::Writer* w) const;
  static Result<SketchSummary> Deserialize(net::Reader* r);
};

/// \brief Configuration of the t-digest pipeline.
struct TDigestOptions {
  NodeId id = 0;
  NodeId root_id = 0;
  std::vector<NodeId> locals;
  std::vector<double> quantiles = {0.5};
  DurationUs window_len_us = kMicrosPerSecond;
  double compression = 100.0;
  TDigestMode mode = TDigestMode::kCentralized;
};

/// \brief Decentralized-mode local node: sketches each window locally and
/// ships one `SketchSummary` per window (centralized mode reuses
/// `ForwardingLocalNode` instead).
class TDigestLocalNode final : public sim::LocalNodeLogic {
 public:
  TDigestLocalNode(TDigestOptions options, transport::Transport* transport,
                   const Clock* clock);

  Status OnEvent(const Event& e) override;
  Status OnWatermark(TimestampUs watermark_us) override;
  Status OnFinish(TimestampUs final_watermark_us) override;
  Status OnMessage(const net::Message& msg) override;

 private:
  Status EmitWindow(net::WindowId id);

  TDigestOptions options_;
  transport::Transport* transport_;
  const Clock* clock_;
  stream::TumblingWindowAssigner assigner_;
  std::map<net::WindowId, std::pair<sketch::TDigest, uint64_t>> open_;
  net::WindowId next_window_to_emit_ = 0;
};

/// \brief Root of the t-digest baseline: approximate quantiles per window.
///
/// Centralized mode consumes raw EventBatch/WindowEnd traffic and sketches
/// at the root; decentralized mode merges incoming `SketchSummary` digests.
class TDigestRootNode final : public sim::RootNodeLogic {
 public:
  TDigestRootNode(TDigestOptions options, transport::Transport* transport,
                  const Clock* clock);

  Status OnMessage(const net::Message& msg) override;
  void SetResultCallback(sim::ResultCallback cb) override { callback_ = std::move(cb); }
  uint64_t windows_emitted() const override { return windows_emitted_; }
  bool idle() const override { return pending_.empty(); }

 private:
  struct PendingWindow {
    sketch::TDigest digest;
    size_t ends_received = 0;
    uint64_t expected_events = 0;
    uint64_t received_events = 0;
    TimestampUs last_close_time_us = 0;

    explicit PendingWindow(double compression) : digest(compression) {}
  };

  Status MaybeFinalize(net::WindowId id, PendingWindow* w);

  TDigestOptions options_;
  transport::Transport* transport_;
  const Clock* clock_;
  std::map<net::WindowId, PendingWindow> pending_;
  sim::ResultCallback callback_;
  uint64_t windows_emitted_ = 0;
};

}  // namespace dema::baselines
