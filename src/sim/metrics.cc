#include "sim/metrics.h"

#include "common/json.h"

namespace dema::sim {

std::string RunMetricsToJson(const RunMetrics& metrics) {
  JsonWriter latency;
  latency.Field("count", metrics.latency.count)
      .Field("mean_us", metrics.latency.mean_us)
      .Field("p50_us", metrics.latency.p50_us)
      .Field("p95_us", metrics.latency.p95_us)
      .Field("p99_us", metrics.latency.p99_us)
      .Field("max_us", metrics.latency.max_us);

  JsonWriter latency_hist;
  latency_hist.Field("count", metrics.latency_hist.count)
      .Field("mean_us", metrics.latency_hist.mean)
      .Field("p50_us", metrics.latency_hist.p50)
      .Field("p95_us", metrics.latency_hist.p95)
      .Field("p99_us", metrics.latency_hist.p99)
      .Field("max_us", metrics.latency_hist.max);

  JsonWriter network;
  network.Field("messages", metrics.network_total.messages)
      .Field("bytes", metrics.network_total.bytes)
      .Field("events", metrics.network_total.events)
      .Field("simulated_transfer_us", metrics.simulated_transfer_us);

  JsonWriter dema_stats;
  dema_stats.Field("windows", metrics.dema.windows)
      .Field("synopsis_slices", metrics.dema.synopsis_slices)
      .Field("candidate_slices", metrics.dema.candidate_slices)
      .Field("candidate_events", metrics.dema.candidate_events)
      .Field("global_events", metrics.dema.global_events)
      .Field("gamma_updates_sent", metrics.dema.gamma_updates_sent)
      .Field("duplicates_ignored", metrics.dema.duplicates_ignored)
      .Field("clock_skew_windows", metrics.dema.clock_skew_windows);

  JsonWriter root;
  root.Field("events_ingested", metrics.events_ingested)
      .Field("windows_emitted", metrics.windows_emitted)
      .Field("wall_seconds", metrics.wall_seconds)
      .Field("throughput_eps", metrics.throughput_eps)
      .Field("sim_throughput_eps", metrics.sim_throughput_eps)
      .Field("root_busy_seconds", metrics.root_busy_seconds)
      .Field("max_local_busy_seconds", metrics.max_local_busy_seconds)
      .Field("bottleneck", metrics.bottleneck)
      .RawField("latency", latency.Finish())
      .RawField("latency_hist", latency_hist.Finish())
      .RawField("network", network.Finish())
      .RawField("dema", dema_stats.Finish());
  return root.Finish();
}

}  // namespace dema::sim
