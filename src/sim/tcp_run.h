#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/result.h"
#include "common/time.h"
#include "gen/generator.h"
#include "sim/driver.h"
#include "sim/metrics.h"
#include "sim/topology.h"
#include "transport/tcp.h"

namespace dema::sim {

/// \brief Options for a TCP root process / thread.
struct TcpRootOptions {
  /// Listener address (ignored when adopting a pre-bound socket).
  std::string listen_host = "127.0.0.1";
  /// Listener port; 0 binds ephemeral (observable via `on_listening`).
  uint16_t listen_port = 0;
  /// Pre-bound, already-listening socket to adopt; -1 = bind fresh. The
  /// forked cluster runner binds before forking so children dial a port
  /// that is guaranteed to be accepting.
  int adopted_listen_fd = -1;
  /// Abort when the run has not completed within this wall time.
  DurationUs timeout_us = 120 * kMicrosPerSecond;
  /// Root inbox bound; full inboxes backpressure the TCP readers and in
  /// turn the senders, exactly like the in-process fabric.
  size_t root_inbox_capacity = 1024;
  /// Per-connection outbox bound in messages (0 = unbounded); a full outbox
  /// blocks `Send` until the peer catches up (`demactl --outbox-cap`).
  size_t outbox_capacity = 1024;
  /// Invoked with the bound port once the listener is up (threaded tests
  /// bind port 0 and hand the result to the locals).
  std::function<void(uint16_t)> on_listening;
  /// Invoked with every emitted window result, in emission order (tests
  /// compare the values against an in-process run of the same workload).
  std::function<void(const WindowOutput&)> on_result;
};

/// \brief Exit code of a TCP local process that crashed on schedule
/// (`TcpLocalOptions::crash_at_window`). The supervisor distinguishes it
/// from real failures before relaunching.
inline constexpr int kTcpCrashExitCode = 61;

/// \brief Options for a TCP local-node process / thread.
struct TcpLocalOptions {
  /// Root address to dial.
  std::string root_host = "127.0.0.1";
  uint16_t root_port = 0;
  /// Abort when no shutdown arrived within this wall time after finishing.
  DurationUs timeout_us = 120 * kMicrosPerSecond;
  /// Hand watermarks to the logic every this many events.
  size_t watermark_every = 4096;
  /// When non-empty (Dema only): write a checkpoint snapshot of the node
  /// state to this path at every window boundary (atomic rename).
  std::string checkpoint_path;
  /// When non-empty (Dema only): restore the node from this checkpoint
  /// before streaming, re-sync γ with the root, and skip regenerated events
  /// the previous life already ingested.
  std::string restore_path;
  /// When > 0: simulate a process crash at the boundary of this window id —
  /// flush the transport (synopses already queued still reach the root) and
  /// `_exit(kTcpCrashExitCode)` without any cleanup.
  net::WindowId crash_at_window = 0;
  /// Sequence-number epoch for the transport; a relaunched process must use
  /// a fresh epoch so the root's dedup window does not swallow its stream.
  uint32_t seq_epoch = 0;
  /// Per-connection outbox bound in messages (0 = unbounded).
  size_t outbox_capacity = 1024;
};

/// \brief What a local node measured during a TCP run.
struct TcpLocalReport {
  uint64_t events_ingested = 0;
  /// Bytes/messages/events actually written to the socket, per link.
  transport::LinkTrafficMap sent_links;
  std::map<net::MessageType, net::TrafficCounters> sent_by_type;
};

/// \brief Runs the root role over TCP: hosts node 0, accepts local
/// connections, aggregates until \p expected_windows results are emitted,
/// then broadcasts `kShutdown` to every local and returns the metrics.
///
/// `RunMetrics::network_total` covers the whole star topology because all
/// traffic passes the root: received bytes (local->root) plus sent bytes
/// (root->local), both measured on the socket. `events_ingested` stays 0
/// here — locals count ingestion; the cluster runner merges their reports.
Result<RunMetrics> RunTcpRoot(const SystemConfig& config,
                              uint64_t expected_windows,
                              const TcpRootOptions& options);

/// \brief Runs one local node over TCP: dials the root, streams the
/// generated workload through the node logic, serves candidate requests,
/// and returns after the root's `kShutdown` arrives.
Result<TcpLocalReport> RunTcpLocal(const SystemConfig& config,
                                   const WorkloadConfig& workload, NodeId id,
                                   const TcpLocalOptions& options);

/// \brief Runs a whole cluster on this machine as real OS processes: binds
/// the root listener, forks one child per local node (each running
/// `RunTcpLocal` against loopback), runs the root in this process, and
/// merges the children's reports into the returned metrics.
///
/// Must be called before this process creates any threads (it forks).
Result<RunMetrics> RunTcpClusterForked(const SystemConfig& config,
                                       const WorkloadConfig& workload,
                                       const std::string& host = "127.0.0.1",
                                       uint16_t port = 0);

/// \brief Fault injection for `RunTcpClusterForked`: kill one local process
/// mid-run and relaunch it from its checkpoint.
struct TcpClusterFaultOptions {
  /// Local node to crash (0 = no crash).
  NodeId crash_node = 0;
  /// Window boundary at which the victim `_exit`s.
  net::WindowId crash_at_window = 0;
  /// Directory for the victim's checkpoint file (must exist).
  std::string checkpoint_dir;
};

/// \brief Like `RunTcpClusterForked`, but the victim's child is a
/// single-threaded supervisor that forks generation 1 (checkpointing, crashes
/// at the scheduled window), reaps it, and relaunches generation 2 from the
/// checkpoint with a fresh sequence epoch. The root needs
/// `root_deadline_ticks` > 0 to retry candidate requests that died with
/// generation 1.
Result<RunMetrics> RunTcpClusterForked(const SystemConfig& config,
                                       const WorkloadConfig& workload,
                                       const TcpClusterFaultOptions& fault,
                                       const std::string& host = "127.0.0.1",
                                       uint16_t port = 0);

}  // namespace dema::sim
