#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/result.h"
#include "common/time.h"
#include "gen/generator.h"
#include "sim/chaos.h"
#include "sim/driver.h"
#include "sim/metrics.h"
#include "sim/topology.h"
#include "transport/tcp.h"

namespace dema::sim {

/// \brief Session-resilience knobs shared by the root and local runners,
/// mapped 1:1 onto `TcpTransportOptions` (see those docs). The default —
/// interval 0 — leaves heartbeats, dead-peer detection, redial, and replay
/// off, preserving the historical transport behaviour.
struct TcpSessionTuning {
  DurationUs heartbeat_interval_us = 0;
  int heartbeat_misses = 3;
  bool auto_reconnect = false;
  DurationUs retransmit_timeout_us = 0;  ///< 0 derives 4x interval.
};

/// \brief Options for a TCP root process / thread.
struct TcpRootOptions {
  /// Listener address (ignored when adopting a pre-bound socket).
  std::string listen_host = "127.0.0.1";
  /// Listener port; 0 binds ephemeral (observable via `on_listening`).
  uint16_t listen_port = 0;
  /// Pre-bound, already-listening socket to adopt; -1 = bind fresh. The
  /// forked cluster runner binds before forking so children dial a port
  /// that is guaranteed to be accepting.
  int adopted_listen_fd = -1;
  /// Abort when the run has not completed within this wall time.
  DurationUs timeout_us = 120 * kMicrosPerSecond;
  /// Root inbox bound; full inboxes backpressure the TCP readers and in
  /// turn the senders, exactly like the in-process fabric.
  size_t root_inbox_capacity = 1024;
  /// Per-connection outbox bound in messages (0 = unbounded); a full outbox
  /// blocks `Send` until the peer catches up (`demactl --outbox-cap`).
  size_t outbox_capacity = 1024;
  /// Heartbeat / reconnect / replay knobs for the root's transport.
  TcpSessionTuning session;
  /// Invoked with the bound port once the listener is up (threaded tests
  /// bind port 0 and hand the result to the locals).
  std::function<void(uint16_t)> on_listening;
  /// Invoked with every emitted window result, in emission order (tests
  /// compare the values against an in-process run of the same workload).
  std::function<void(const WindowOutput&)> on_result;
};

/// \brief Exit code of a TCP local process that crashed on schedule
/// (`TcpLocalOptions::crash_at_window`). The supervisor distinguishes it
/// from real failures before relaunching.
inline constexpr int kTcpCrashExitCode = 61;

/// \brief Options for a TCP local-node process / thread.
struct TcpLocalOptions {
  /// Root address to dial.
  std::string root_host = "127.0.0.1";
  uint16_t root_port = 0;
  /// Abort when no shutdown arrived within this wall time after finishing.
  DurationUs timeout_us = 120 * kMicrosPerSecond;
  /// Hand watermarks to the logic every this many events.
  size_t watermark_every = 4096;
  /// When non-empty (Dema only): write a checkpoint snapshot of the node
  /// state to this path at every window boundary (atomic rename).
  std::string checkpoint_path;
  /// When non-empty (Dema only): restore the node from this checkpoint
  /// before streaming, re-sync γ with the root, and skip regenerated events
  /// the previous life already ingested.
  std::string restore_path;
  /// When > 0: simulate a process crash at the boundary of this window id —
  /// flush the transport (synopses already queued still reach the root) and
  /// `_exit(kTcpCrashExitCode)` without any cleanup.
  net::WindowId crash_at_window = 0;
  /// Sequence-number epoch for the transport; a relaunched process must use
  /// a fresh epoch so the root's dedup window does not swallow its stream.
  uint32_t seq_epoch = 0;
  /// Per-connection outbox bound in messages (0 = unbounded).
  size_t outbox_capacity = 1024;
  /// Heartbeat / reconnect / replay knobs for this local's transport.
  TcpSessionTuning session;
  /// Chaos: sever the connection carrying the Nth data frame written, per
  /// entry (sorted; see `TcpTransportOptions::kill_conn_schedule`). Needs
  /// `session.auto_reconnect` to recover.
  std::vector<uint64_t> kill_conn_frames;
  /// Chaos: stall all writes for `write_stall_us` after this many data
  /// frames (0 disables).
  uint64_t write_stall_after_frames = 0;
  DurationUs write_stall_us = 0;
  /// Chaos: per-frame byte-flip probability on send; the receiver's CRC
  /// drops the frame and the retransmit path must recover it.
  double corrupt_rate = 0;
  uint64_t corrupt_seed = 0;
};

/// \brief What a local node measured during a TCP run.
struct TcpLocalReport {
  uint64_t events_ingested = 0;
  /// Bytes/messages/events actually written to the socket, per link.
  transport::LinkTrafficMap sent_links;
  std::map<net::MessageType, net::TrafficCounters> sent_by_type;
  /// Session-resilience accounting from this local's transport registry:
  /// injected severances, unclean peer losses, successful redials, frames
  /// replayed onto resumed sessions, and mid-frame bytes dropped by kills.
  uint64_t conn_kills = 0;
  uint64_t peer_down = 0;
  uint64_t reconnects = 0;
  uint64_t replayed_frames = 0;
  uint64_t partial_frame_drops = 0;
};

/// \brief Runs the root role over TCP: hosts node 0, accepts local
/// connections, aggregates until \p expected_windows results are emitted,
/// then broadcasts `kShutdown` to every local and returns the metrics.
///
/// `RunMetrics::network_total` covers the whole star topology because all
/// traffic passes the root: received bytes (local->root) plus sent bytes
/// (root->local), both measured on the socket. `events_ingested` stays 0
/// here — locals count ingestion; the cluster runner merges their reports.
Result<RunMetrics> RunTcpRoot(const SystemConfig& config,
                              uint64_t expected_windows,
                              const TcpRootOptions& options);

/// \brief Runs one local node over TCP: dials the root, streams the
/// generated workload through the node logic, serves candidate requests,
/// and returns after the root's `kShutdown` arrives.
Result<TcpLocalReport> RunTcpLocal(const SystemConfig& config,
                                   const WorkloadConfig& workload, NodeId id,
                                   const TcpLocalOptions& options);

/// \brief Runs a whole cluster on this machine as real OS processes: binds
/// the root listener, forks one child per local node (each running
/// `RunTcpLocal` against loopback), runs the root in this process, and
/// merges the children's reports into the returned metrics.
///
/// Must be called before this process creates any threads (it forks).
Result<RunMetrics> RunTcpClusterForked(const SystemConfig& config,
                                       const WorkloadConfig& workload,
                                       const std::string& host = "127.0.0.1",
                                       uint16_t port = 0);

/// \brief Fault injection for `RunTcpClusterForked`: kill one local process
/// mid-run and relaunch it from its checkpoint.
struct TcpClusterFaultOptions {
  /// Local node to crash (0 = no crash).
  NodeId crash_node = 0;
  /// Window boundary at which the victim `_exit`s.
  net::WindowId crash_at_window = 0;
  /// Directory for the victim's checkpoint file (must exist).
  std::string checkpoint_dir;
  /// Connection-level chaos: every local severs its root link on this plan
  /// (salted by node id so kills do not land in lockstep). Requires
  /// `session.heartbeat_interval_us` > 0 and `session.auto_reconnect`.
  ConnChaosPlan conn_kill;
  /// Per-local frame corruption rate; receiver CRC drops the frame and the
  /// ack/retransmit machinery must recover it (unlike crash recovery this
  /// needs no root deadline — the frame is replayed, not regenerated).
  double corrupt_rate = 0;
  uint64_t corrupt_seed = 0;
  /// Chaos: every local stalls its socket writes once, for `write_stall_us`,
  /// after this many data frames (0 disables). A stall longer than the
  /// dead-peer budget escalates into a kill + redial; a shorter one just
  /// builds backpressure.
  uint64_t write_stall_after_frames = 0;
  DurationUs write_stall_us = 0;
  /// Session tuning applied to the root and every local.
  TcpSessionTuning session;
  /// Invoked in this (the root's) process with every emitted window result.
  std::function<void(const WindowOutput&)> on_result;
};

/// \brief Like `RunTcpClusterForked`, but the victim's child is a
/// single-threaded supervisor that forks generation 1 (checkpointing, crashes
/// at the scheduled window), reaps it, and relaunches generation 2 from the
/// checkpoint with a fresh sequence epoch. The root needs
/// `root_deadline_ticks` > 0 to retry candidate requests that died with
/// generation 1.
Result<RunMetrics> RunTcpClusterForked(const SystemConfig& config,
                                       const WorkloadConfig& workload,
                                       const TcpClusterFaultOptions& fault,
                                       const std::string& host = "127.0.0.1",
                                       uint16_t port = 0);

/// \brief Outcome of a connection-chaos parity run (`RunTcpConnChaos`).
struct TcpConnChaosReport {
  /// Metrics of the faulted forked run (children's resilience counters are
  /// merged into `metrics.registry`'s `net.*` counters).
  RunMetrics metrics;
  /// Window results of the faulted run, in emission order.
  std::vector<WindowOutput> outputs;
  /// Reference results from a fault-free in-process run of the same workload.
  std::vector<WindowOutput> reference;
  /// Cluster-wide resilience accounting (root + all locals).
  uint64_t conn_kills = 0;
  uint64_t peer_down = 0;
  uint64_t reconnects = 0;
  uint64_t replayed_frames = 0;
  uint64_t partial_frame_drops = 0;
  uint64_t degraded_windows = 0;
  uint64_t mismatched_windows = 0;
  /// First contract violation; empty when the run held the invariant:
  /// the scheduled faults actually fired AND every window emitted exact,
  /// non-degraded, byte-identical results versus the fault-free reference.
  std::string violation;

  bool Invariant() const { return violation.empty(); }
};

/// \brief Runs the forked TCP cluster under connection-level chaos
/// (`fault.conn_kill`, `fault.corrupt_rate`) with session resilience on,
/// then replays the same workload through the deterministic in-process
/// fabric and demands *exact* quantile parity: severed sockets, replayed
/// frames, and CRC-dropped frames must be invisible in the results.
///
/// Must be called before this process creates any threads (it forks). The
/// reference run executes after the forked run completes.
Result<TcpConnChaosReport> RunTcpConnChaos(const SystemConfig& config,
                                           const WorkloadConfig& workload,
                                           const TcpClusterFaultOptions& fault,
                                           const std::string& host = "127.0.0.1",
                                           uint16_t port = 0);

}  // namespace dema::sim
