#include "sim/ingest_adapter.h"

#include <algorithm>
#include <limits>

#include "net/serializer.h"

namespace dema::sim {

IngestAdapter::IngestAdapter(std::unique_ptr<LocalNodeLogic> inner,
                             std::vector<NodeId> children)
    : inner_(std::move(inner)) {
  for (NodeId child : children) child_watermarks_[child] = 0;
}

TimestampUs IngestAdapter::MinChildWatermark() const {
  TimestampUs min_wm = std::numeric_limits<TimestampUs>::max();
  for (const auto& [child, wm] : child_watermarks_) {
    (void)child;
    min_wm = std::min(min_wm, wm);
  }
  return child_watermarks_.empty() ? 0 : min_wm;
}

Status IngestAdapter::OnMessage(const net::Message& msg) {
  switch (msg.type) {
    case net::MessageType::kEventBatch: {
      auto it = child_watermarks_.find(msg.src);
      if (it == child_watermarks_.end()) {
        return Status::InvalidArgument("event batch from unregistered sensor " +
                                       std::to_string(msg.src));
      }
      net::Reader r(msg.payload_bytes());
      DEMA_ASSIGN_OR_RETURN(auto batch, net::EventBatch::Deserialize(&r));
      for (const Event& e : batch.events) {
        DEMA_RETURN_NOT_OK(inner_->OnEvent(e));
      }
      events_ingested_ += batch.events.size();
      return Status::OK();
    }
    case net::MessageType::kTimeAdvance: {
      auto it = child_watermarks_.find(msg.src);
      if (it == child_watermarks_.end()) {
        return Status::InvalidArgument("time advance from unregistered sensor " +
                                       std::to_string(msg.src));
      }
      net::Reader r(msg.payload_bytes());
      DEMA_ASSIGN_OR_RETURN(auto advance, net::TimeAdvance::Deserialize(&r));
      it->second = std::max(it->second, advance.watermark_us);
      if (advance.final_marker) ++children_finished_;
      // The edge's clock only moves when its slowest sensor moves.
      return inner_->OnWatermark(MinChildWatermark());
    }
    default:
      return inner_->OnMessage(msg);
  }
}

Status IngestAdapter::OnFinish(TimestampUs final_watermark_us) {
  return inner_->OnFinish(final_watermark_us);
}

}  // namespace dema::sim
