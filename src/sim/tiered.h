#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "net/network.h"
#include "sim/driver.h"
#include "sim/metrics.h"
#include "sim/stream_node.h"
#include "sim/topology.h"

namespace dema::sim {

/// \brief Configuration of the full three-tier topology of the paper's
/// Figure 1: data-stream nodes -> local (edge) nodes -> root.
struct TieredConfig {
  /// The aggregation system running on the edge/root tiers.
  SystemConfig system;
  /// Sensors attached to each local node.
  size_t sensors_per_local = 4;
  /// Generator configs, one per sensor, local-major order (sensor j of local
  /// i at index i * sensors_per_local + j). Node ids are assigned by the
  /// builder. When empty, `MakeTieredWorkload` fills homogeneous sensors.
  std::vector<gen::GeneratorConfig> sensor_generators;
  /// Events per sensor -> edge message.
  size_t sensor_batch_size = 256;
};

/// \brief A built three-tier topology.
///
/// Node id scheme: root = 0, locals = 1..N, sensor j of local i =
/// N + i*S + j + 1 (so any id above N belongs to the sensor tier).
struct TieredSystem {
  System system;  // root + adapted locals, registered on the network
  std::vector<std::unique_ptr<StreamNode>> sensors;
  /// sensors_per_local ids per local, aligned with system.local_ids.
  std::vector<std::vector<NodeId>> sensor_ids;
};

/// \brief Fills `TieredConfig::sensor_generators` with homogeneous sensors
/// (distinct seeds; per-sensor rate = node_rate / sensors_per_local so a
/// local node sees `event_rate` in total, matching the flat setup).
void MakeTieredWorkload(TieredConfig* config, double node_event_rate,
                        const gen::DistributionParams& distribution,
                        uint64_t seed_base = 5000);

/// \brief Builds the three-tier topology on \p network: stream nodes ship
/// raw events to IngestAdapter-wrapped edge nodes.
Result<TieredSystem> BuildTieredSystem(const TieredConfig& config,
                                       net::Network* network, const Clock* clock,
                                       size_t root_inbox_capacity = 0);

/// \brief Run metrics extended with per-tier network accounting.
struct TieredRunMetrics {
  RunMetrics run;
  /// Sensor -> edge traffic (identical across aggregation systems).
  net::TrafficCounters sensor_tier;
  /// Edge <-> root traffic (what the aggregation system determines).
  net::TrafficCounters aggregation_tier;
  /// Events generated across all sensors.
  uint64_t events_produced = 0;
};

/// \brief Deterministic driver for the three-tier topology: pumps every
/// sensor interval-by-interval, dispatches messages until quiescent, and
/// verifies the root emitted every window.
class TieredSyncDriver {
 public:
  TieredSyncDriver(TieredSystem* tiered, net::Network* network, const Clock* clock);

  /// Runs \p num_windows window-lengths of event time.
  Status Run(uint64_t num_windows, DurationUs window_len_us,
             DurationUs window_slide_us = 0);

  /// Outputs emitted by the root, in emission order.
  const std::vector<WindowOutput>& outputs() const { return outputs_; }
  /// Events generated across all sensors.
  uint64_t events_produced() const;
  /// Busy seconds of the busiest edge node.
  double max_local_busy_seconds() const;
  /// Busy seconds of the root.
  double root_busy_seconds() const { return root_busy_us_ / 1e6; }

 private:
  Status PumpMessages();

  TieredSystem* tiered_;
  net::Network* network_;
  const Clock* clock_;
  std::vector<WindowOutput> outputs_;
  std::vector<double> local_busy_us_;
  double root_busy_us_ = 0;
};

/// \brief Convenience: builds the tiered topology, runs the driver, and
/// returns metrics with the per-tier traffic split.
Result<TieredRunMetrics> RunTiered(const TieredConfig& config,
                                   uint64_t num_windows);

}  // namespace dema::sim
