#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/chaos.h"
#include "sim/driver.h"
#include "sim/topology.h"

namespace dema::sim {

/// \brief One topology-scale scenario: an event-driven-delivery run over a
/// routed multi-hop topology (or the flat fabric), optionally under the
/// probabilistic subset of a fault plan.
struct ScenarioOptions {
  /// Topology spec (`star`, `tree[:fanout=F]`, `fat-tree[:k=K]`,
  /// `wan[:regions=R]` — see `tick::Topology`), or `flat` for event-driven
  /// delivery over the single-hop link model.
  std::string topology = "flat";
  /// Probabilistic faults (drop / duplicate / delay / corrupt) plus the
  /// root's deadline/retry knobs. Scheduled crashes, partitions, and tampers
  /// are not supported here — that is `RunChaos`'s job on the flat fabric.
  FaultPlan faults;
  /// Check every non-degraded window against the exact oracle over the fed
  /// events (the flat-topology ground truth).
  bool check_oracle = true;
};

/// \brief Outcome of one scenario run. Everything except the wall/busy
/// timings is deterministic for a fixed (workload, options) pair —
/// `DescribeScenarioDiff` compares exactly that deterministic surface.
struct ScenarioReport {
  /// Canonical topology name, e.g. "fat-tree:k=16".
  std::string topology;
  uint64_t num_locals = 0;
  uint64_t events_ingested = 0;
  /// Root outputs in emission order.
  std::vector<WindowOutput> outputs;
  uint64_t exact_windows = 0;
  uint64_t degraded_windows = 0;
  uint64_t mismatched_windows = 0;
  uint64_t missing_windows = 0;
  bool root_idle = false;
  /// Discrete-event accounting.
  uint64_t sim_ticks = 0;
  uint64_t sim_events = 0;
  uint64_t event_queue_peak = 0;
  uint64_t virtual_time_us = 0;
  /// Fault-fabric accounting.
  uint64_t messages_dropped = 0;
  uint64_t duplicates_injected = 0;
  uint64_t messages_delayed = 0;
  uint64_t messages_corrupted = 0;
  /// Wire accounting (endpoint-to-endpoint, identical to a flat run).
  net::TrafficCounters network_total;
  double simulated_transfer_us = 0;
  /// Full registry counter snapshot (for determinism comparison).
  std::map<std::string, uint64_t> counters;
  /// Timings (not part of the deterministic surface).
  double wall_seconds = 0;
  double throughput_eps = 0;
  double root_busy_seconds = 0;
  double max_local_busy_seconds = 0;
  double sim_throughput_eps = 0;
  /// First invariant violation; empty when every window emitted exactly
  /// (matching the oracle) or explicitly degraded, and the root ended idle.
  std::string violation;

  bool Invariant() const { return violation.empty(); }
};

/// \brief Runs \p system_config / \p workload with event-driven delivery
/// over \p options.topology. Fault runs (any probability > 0) require the
/// Dema system with deadline_ticks > 0; fault-free runs accept any system
/// kind. Tumbling windows only.
Result<ScenarioReport> RunScenario(const SystemConfig& system_config,
                                   const WorkloadConfig& workload,
                                   const ScenarioOptions& options);

/// \brief Human-readable first difference between two scenario reports'
/// deterministic surfaces (outputs, verdict counts, sim.* accounting, and
/// the full counter snapshot); empty when byte-identical.
std::string DescribeScenarioDiff(const ScenarioReport& a,
                                 const ScenarioReport& b);

}  // namespace dema::sim
