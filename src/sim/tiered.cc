#include "sim/tiered.h"

#include <algorithm>
#include <chrono>

#include "sim/ingest_adapter.h"

namespace dema::sim {

void MakeTieredWorkload(TieredConfig* config, double node_event_rate,
                        const gen::DistributionParams& distribution,
                        uint64_t seed_base) {
  config->sensor_generators.clear();
  size_t total =
      config->system.num_locals * std::max<size_t>(1, config->sensors_per_local);
  double per_sensor_rate =
      node_event_rate / static_cast<double>(config->sensors_per_local);
  for (size_t i = 0; i < total; ++i) {
    gen::GeneratorConfig cfg;
    cfg.seed = seed_base + i * 6151;
    cfg.distribution = distribution;
    cfg.event_rate = per_sensor_rate;
    config->sensor_generators.push_back(cfg);
  }
}

Result<TieredSystem> BuildTieredSystem(const TieredConfig& config,
                                       net::Network* network, const Clock* clock,
                                       size_t root_inbox_capacity) {
  if (config.sensors_per_local == 0) {
    return Status::InvalidArgument("need at least one sensor per local node");
  }
  size_t expected =
      config.system.num_locals * config.sensors_per_local;
  if (config.sensor_generators.size() != expected) {
    return Status::InvalidArgument(
        "sensor_generators size " + std::to_string(config.sensor_generators.size()) +
        " != locals x sensors_per_local = " + std::to_string(expected));
  }

  TieredSystem tiered;
  DEMA_ASSIGN_OR_RETURN(
      tiered.system,
      BuildSystem(config.system, network, clock, root_inbox_capacity));

  // Wrap every local in an ingest adapter fed by its sensors.
  NodeId next_sensor = static_cast<NodeId>(config.system.num_locals + 1);
  for (size_t i = 0; i < tiered.system.locals.size(); ++i) {
    std::vector<NodeId> children;
    for (size_t j = 0; j < config.sensors_per_local; ++j) {
      NodeId sensor_id = next_sensor++;
      DEMA_RETURN_NOT_OK(network->RegisterNode(sensor_id, /*inbox_capacity=*/0));
      children.push_back(sensor_id);

      StreamNodeOptions opts;
      opts.id = sensor_id;
      opts.parent = tiered.system.local_ids[i];
      opts.batch_size = config.sensor_batch_size;
      opts.codec = config.system.wire_codec;
      opts.generator =
          config.sensor_generators[i * config.sensors_per_local + j];
      DEMA_ASSIGN_OR_RETURN(auto sensor, StreamNode::Create(opts, network));
      tiered.sensors.push_back(std::move(sensor));
    }
    tiered.sensor_ids.push_back(children);
    tiered.system.locals[i] = std::make_unique<IngestAdapter>(
        std::move(tiered.system.locals[i]), children);
  }
  return tiered;
}

TieredSyncDriver::TieredSyncDriver(TieredSystem* tiered, net::Network* network,
                                   const Clock* clock)
    : tiered_(tiered), network_(network), clock_(clock) {
  (void)clock_;
}

namespace {
template <typename Fn>
double TimedUs(Fn&& fn, Status* st) {
  auto start = std::chrono::steady_clock::now();
  *st = fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count();
}
}  // namespace

Status TieredSyncDriver::PumpMessages() {
  System& system = tiered_->system;
  bool progress = true;
  while (progress) {
    progress = false;
    net::Channel* root_inbox = network_->Inbox(system.root_id);
    while (auto msg = root_inbox->TryPop()) {
      Status st;
      root_busy_us_ += TimedUs([&] { return system.root->OnMessage(*msg); }, &st);
      DEMA_RETURN_NOT_OK(st);
      progress = true;
    }
    for (size_t i = 0; i < system.locals.size(); ++i) {
      net::Channel* inbox = network_->Inbox(system.local_ids[i]);
      while (auto msg = inbox->TryPop()) {
        Status st;
        local_busy_us_[i] +=
            TimedUs([&] { return system.locals[i]->OnMessage(*msg); }, &st);
        DEMA_RETURN_NOT_OK(st);
        progress = true;
      }
    }
  }
  return Status::OK();
}

Status TieredSyncDriver::Run(uint64_t num_windows, DurationUs window_len_us,
                             DurationUs window_slide_us) {
  System& system = tiered_->system;
  local_busy_us_.assign(system.locals.size(), 0.0);
  root_busy_us_ = 0;
  system.root->SetResultCallback(
      [this](const WindowOutput& out) { outputs_.push_back(out); });

  for (uint64_t w = 0; w < num_windows; ++w) {
    TimestampUs start = static_cast<TimestampUs>(w) * window_len_us;
    for (auto& sensor : tiered_->sensors) {
      DEMA_RETURN_NOT_OK(sensor->PumpInterval(start, window_len_us));
    }
    DEMA_RETURN_NOT_OK(PumpMessages());
  }
  TimestampUs final_ts = static_cast<TimestampUs>(num_windows) * window_len_us;
  for (auto& sensor : tiered_->sensors) {
    DEMA_RETURN_NOT_OK(sensor->Finish(final_ts));
  }
  DEMA_RETURN_NOT_OK(PumpMessages());
  for (size_t i = 0; i < system.locals.size(); ++i) {
    Status st;
    local_busy_us_[i] +=
        TimedUs([&] { return system.locals[i]->OnFinish(final_ts); }, &st);
    DEMA_RETURN_NOT_OK(st);
  }
  DEMA_RETURN_NOT_OK(PumpMessages());

  stream::SlidingWindowAssigner assigner(
      stream::WindowSpec{window_len_us, window_slide_us});
  uint64_t expected = assigner.ClosedUpTo(final_ts);
  if (system.root->windows_emitted() != expected) {
    return Status::Internal(
        "root emitted " + std::to_string(system.root->windows_emitted()) +
        " windows, expected " + std::to_string(expected));
  }
  if (!system.root->idle()) {
    return Status::Internal("root still has pending windows after run");
  }
  return Status::OK();
}

uint64_t TieredSyncDriver::events_produced() const {
  uint64_t total = 0;
  for (const auto& sensor : tiered_->sensors) total += sensor->events_produced();
  return total;
}

double TieredSyncDriver::max_local_busy_seconds() const {
  double max_us = 0;
  for (double b : local_busy_us_) max_us = std::max(max_us, b);
  return max_us / 1e6;
}

Result<TieredRunMetrics> RunTiered(const TieredConfig& config,
                                   uint64_t num_windows) {
  RealClock clock;
  net::Network network(&clock);
  DEMA_ASSIGN_OR_RETURN(TieredSystem tiered,
                        BuildTieredSystem(config, &network, &clock, 0));
  TieredSyncDriver driver(&tiered, &network, &clock);
  auto wall_start = std::chrono::steady_clock::now();
  DEMA_RETURN_NOT_OK(driver.Run(num_windows, config.system.window_len_us,
                                config.system.window_slide_us));
  auto wall_end = std::chrono::steady_clock::now();

  TieredRunMetrics metrics;
  metrics.events_produced = driver.events_produced();
  metrics.run.events_ingested = metrics.events_produced;
  metrics.run.windows_emitted = tiered.system.root->windows_emitted();
  metrics.run.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  LatencyRecorder latency;
  for (const WindowOutput& out : driver.outputs()) latency.Record(out.latency_us);
  metrics.run.latency = latency.Summarize();
  auto total = network.TotalStats();
  metrics.run.network_total = total.counters;
  metrics.run.simulated_transfer_us = total.simulated_transfer_us;
  metrics.run.by_type = network.StatsByType();
  metrics.run.root_busy_seconds = driver.root_busy_seconds();
  metrics.run.max_local_busy_seconds = driver.max_local_busy_seconds();
  double bottleneck = std::max(metrics.run.root_busy_seconds,
                               metrics.run.max_local_busy_seconds);
  metrics.run.sim_throughput_eps =
      bottleneck > 0 ? static_cast<double>(metrics.events_produced) / bottleneck
                     : 0;
  metrics.run.bottleneck =
      metrics.run.root_busy_seconds >= metrics.run.max_local_busy_seconds
          ? "root"
          : "local";
  if (auto* dema_root =
          dynamic_cast<core::DemaRootNode*>(tiered.system.root.get())) {
    metrics.run.dema = dema_root->stats();
  }

  // Tier split: any endpoint above the local-id range is a sensor.
  NodeId max_local = static_cast<NodeId>(config.system.num_locals);
  for (const auto& [link, stats] : network.AllLinks()) {
    if (link.first > max_local || link.second > max_local) {
      metrics.sensor_tier += stats.counters;
    } else {
      metrics.aggregation_tier += stats.counters;
    }
  }
  return metrics;
}

}  // namespace dema::sim
