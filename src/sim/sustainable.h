#pragma once

#include "common/result.h"
#include "gen/distribution.h"
#include "sim/driver.h"
#include "sim/topology.h"

namespace dema::sim {

/// \brief Search parameters for the maximum-sustainable-throughput probe.
struct SustainableSearchOptions {
  /// Per-node offered event-rate search interval (events/s).
  double lo_rate = 10'000;
  double hi_rate = 16'000'000;
  /// Stop when the bracket shrinks below this relative width.
  double tolerance = 0.1;
  /// Windows per probe run (more = steadier busy-time measurements).
  uint64_t windows = 3;
  /// Seed base forwarded to the workload generators.
  uint64_t seed_base = 1000;
};

/// \brief Result of the sustainable-throughput search.
struct SustainableResult {
  /// Largest per-node offered rate the system kept up with.
  double per_node_rate_eps = 0;
  /// Aggregate sustainable rate (per-node rate x locals).
  double total_rate_eps = 0;
  /// Number of probe runs performed.
  int probes = 0;
};

/// \brief Finds the maximum sustainable throughput of a system — the paper's
/// headline throughput metric (after Karimov et al.): the highest offered
/// event rate the pipeline processes without falling behind.
///
/// Each probe runs the deterministic driver and checks the offered aggregate
/// rate against the simulated-parallel capacity (events / busiest-node busy
/// time); binary search brackets the crossover. Deterministic given seeds,
/// up to busy-time measurement noise.
Result<SustainableResult> FindSustainableThroughput(
    const SystemConfig& system_config, const gen::DistributionParams& distribution,
    SustainableSearchOptions options = SustainableSearchOptions());

}  // namespace dema::sim
