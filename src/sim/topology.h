#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "exec/executor.h"
#include "net/codec.h"
#include "net/network.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/node.h"
#include "stream/sorted_buffer.h"
#include "transport/transport.h"

namespace dema::sim {

/// \brief Which aggregation system a topology runs.
enum class SystemKind {
  /// Dema: synopsis identification + candidate calculation (this paper).
  kDema,
  /// Scotty-like centralized exact aggregation (all events to root, sort
  /// there).
  kCentralExact,
  /// Modified Desis: local sort, root k-way merge, all events transferred.
  kDesisMerge,
  /// t-digest baseline, sketched at the root from forwarded raw events.
  kTDigestCentral,
  /// t-digest extension: local sketches, root merges summaries.
  kTDigestDecentral,
  /// q-digest (Shrivastava et al.): decentralized sensor-network sketch over
  /// a bounded integer universe; the paper's second related-work comparator.
  kQDigest,
};

/// \brief Short display name, e.g. "Dema", "Scotty", "Desis", "Tdigest".
const char* SystemKindToString(SystemKind kind);

/// \brief Full configuration of a 1-root + N-local topology.
struct SystemConfig {
  SystemKind kind = SystemKind::kDema;
  /// Number of local (edge) nodes; node ids are root = 0, locals = 1..N.
  size_t num_locals = 2;
  /// Window lifespan.
  DurationUs window_len_us = kMicrosPerSecond;
  /// Slide step; 0 = tumbling (the paper's setting). Sliding windows are a
  /// Dema-only extension — the baselines reject a non-tumbling spec.
  DurationUs window_slide_us = 0;
  /// Quantiles answered per window.
  std::vector<double> quantiles = {0.5};

  // --- Dema knobs ---
  uint64_t gamma = 10'000;
  bool adaptive_gamma = false;
  /// With adaptive_gamma: optimize a separate γ per local node (the paper's
  /// future-work extension) instead of one global factor.
  bool per_node_gamma = false;
  bool naive_selection = false;  // ablation: window-cut off

  // --- fault tolerance (Dema root deadline machinery) ---
  /// Per-window progress deadline in root `Tick()` calls; 0 disables (legacy
  /// wait-forever behavior). Drivers tick at window boundaries (sim) or
  /// run-loop timeouts (TCP).
  uint64_t root_deadline_ticks = 0;
  /// Candidate-request retry budget per window before degrading.
  uint32_t root_max_retries = 3;

  // --- corruption defense (Dema root validation + quarantine) ---
  /// Rejected-payload strikes before a local is quarantined; 0 disables
  /// quarantine (rejections are still counted and dropped).
  uint32_t root_quarantine_strikes = 0;
  /// Emitted windows a quarantined local sits out before probation.
  uint64_t root_probation_windows = 8;
  /// Clean windows a probation local must contribute before re-admission.
  uint32_t root_probation_clean_windows = 2;

  /// How Dema local nodes keep windows sorted: sort-on-close (default,
  /// fastest) or the paper's incremental insertion.
  stream::SortMode sort_mode = stream::SortMode::kSortOnClose;

  // --- multi-tenant sharding (src/shard subsystem) ---
  /// Root shards for keyed (multi-tenant) runs. The single-root systems in
  /// this file ignore the value, but validation still rejects 0 with
  /// `InvalidArgument`: a zero shard count used to silently fall back to an
  /// unsharded topology in early drafts, which hid misconfigured `--shards`
  /// flags — fail fast instead (PR 2 quantile-validation convention).
  size_t shards = 1;
  /// Distinct tenant keys for keyed runs (ids 0..keys-1); same fail-fast
  /// rule as `shards`.
  uint64_t keys = 1;

  // --- parallel data plane (Dema local nodes) ---
  /// Executor worker threads for closed-window sort+slice. 0 (default) keeps
  /// the inline close path (everything on the ingest thread); >= 1 makes
  /// `BuildSystem` create a pool (owned by the returned `System`) shared by
  /// all Dema local nodes. Outputs are byte-identical either way.
  size_t workers = 0;
  /// Caller-owned executor for the local nodes; overrides `workers` when
  /// set. Must outlive the system. Used by process-per-node runners that
  /// build local logic without a `System` (e.g. `demactl serve`).
  exec::Executor* executor = nullptr;

  /// Wire encoding for raw-event payloads (candidate replies, forwarded
  /// batches). kCompact roughly halves event bytes at a small CPU cost.
  net::EventCodec wire_codec = net::EventCodec::kFixed;

  // --- observability ---
  /// Metrics sink shared by the built nodes (Dema records `dema.*` and
  /// `local.*` instruments into it). When null, each node owns a private
  /// registry. Must outlive the system when provided.
  obs::Registry* registry = nullptr;
  /// Optional per-window span recorder for the Dema root. Must outlive the
  /// system when provided.
  obs::TraceRecorder* tracer = nullptr;

  // --- baseline knobs ---
  size_t batch_size = 8192;
  double tdigest_compression = 100.0;
  /// q-digest value domain, universe resolution, and compression factor.
  double qdigest_lo = 0;
  double qdigest_hi = 1'000'000;
  uint32_t qdigest_bits = 20;
  uint64_t qdigest_k = 256;
};

/// \brief A fully wired topology: the root plus its local nodes, registered
/// on a network.
struct System {
  NodeId root_id = 0;
  std::vector<NodeId> local_ids;
  /// Worker pool shared by the local nodes when `SystemConfig::workers` > 0
  /// (null otherwise). Declared before the nodes so it outlives them during
  /// destruction.
  std::shared_ptr<exec::Executor> executor;
  std::unique_ptr<RootNodeLogic> root;
  std::vector<std::unique_ptr<LocalNodeLogic>> locals;
};

/// \brief Validates \p config (node counts, window spec, quantiles).
Status ValidateSystemConfig(const SystemConfig& config);

/// \brief Node ids of the configured local nodes (1..num_locals; root is 0).
std::vector<NodeId> LocalIds(const SystemConfig& config);

/// \brief Builds just the configured root logic on \p transport.
///
/// Transport-agnostic: \p transport may be the in-process `net::Network`
/// fabric or a `TcpTransport` in a root-only process. The caller owns inbox
/// registration (network fabric) or node hosting (TCP).
Result<std::unique_ptr<RootNodeLogic>> BuildRootLogic(
    const SystemConfig& config, transport::Transport* transport,
    const Clock* clock);

/// \brief Builds the configured local-node logic for node \p id (1-based)
/// on \p transport.
Result<std::unique_ptr<LocalNodeLogic>> BuildLocalLogic(
    const SystemConfig& config, NodeId id, transport::Transport* transport,
    const Clock* clock);

/// \brief Instantiates the configured system on \p network (registering all
/// node inboxes; the root's inbox gets \p root_inbox_capacity, locals are
/// unbounded to keep root->local control traffic deadlock-free).
Result<System> BuildSystem(const SystemConfig& config, net::Network* network,
                           const Clock* clock, size_t root_inbox_capacity = 0);

}  // namespace dema::sim
