#pragma once

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "gen/generator.h"
#include "net/codec.h"
#include "transport/transport.h"

namespace dema::sim {

/// \brief Configuration of one data-stream (sensor) node — the innermost
/// tier of the paper's Figure 1 topology.
struct StreamNodeOptions {
  /// This sensor's node id.
  NodeId id = 0;
  /// The local (edge) node this sensor reports to.
  NodeId parent = 0;
  /// Events per EventBatch message on the sensor -> edge link. Sensors are
  /// weak devices with small buffers; the default keeps framing overhead
  /// around 1% without batching whole windows.
  size_t batch_size = 256;
  /// The sensor's value process and pacing.
  gen::GeneratorConfig generator;
  /// Wire encoding for the sensor's event batches.
  net::EventCodec codec = net::EventCodec::kFixed;
};

/// \brief A data-stream node: generates raw sensor events and ships them to
/// its parent local node over the network (Section 2.3, tier (i)).
///
/// Events travel in small `EventBatch` messages; a `TimeAdvance` marker
/// follows each pumped interval so the edge can advance its watermark (the
/// minimum across its sensors). The driver pumps all stream nodes interval
/// by interval.
class StreamNode {
 public:
  /// Builds a stream node; fails on invalid generator configuration.
  static Result<std::unique_ptr<StreamNode>> Create(StreamNodeOptions options,
                                                    transport::Transport* transport);

  /// Generates every event with event time in [start, start + len), ships
  /// them in batches, and follows up with a TimeAdvance(start + len) marker.
  Status PumpInterval(TimestampUs start_us, DurationUs len_us);

  /// Ships the final TimeAdvance marker (end of stream).
  Status Finish(TimestampUs final_watermark_us);

  /// Events produced so far.
  uint64_t events_produced() const { return events_produced_; }

  /// This node's id.
  NodeId id() const { return options_.id; }

 private:
  StreamNode(StreamNodeOptions options, transport::Transport* transport,
             std::unique_ptr<gen::StreamGenerator> generator);

  Status SendBatch(std::vector<Event> events);
  Status SendTimeAdvance(TimestampUs watermark_us, bool final_marker);

  StreamNodeOptions options_;
  transport::Transport* transport_;
  std::unique_ptr<gen::StreamGenerator> generator_;
  uint64_t events_produced_ = 0;
};

}  // namespace dema::sim
