#include "sim/tcp_run.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/stats.h"
#include "dema/local_node.h"
#include "dema/root_node.h"
#include "net/serializer.h"
#include "stream/window.h"

namespace dema::sim {

namespace {

DurationUs ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

void AccumulateTraffic(const transport::LinkTrafficMap& links,
                       net::TrafficCounters* total) {
  for (const auto& [link, counters] : links) {
    (void)link;
    total->messages += counters.messages;
    total->bytes += counters.bytes;
    total->events += counters.events;
  }
}

void MergeByType(const std::map<net::MessageType, net::TrafficCounters>& in,
                 std::map<net::MessageType, net::TrafficCounters>* out) {
  for (const auto& [type, counters] : in) {
    net::TrafficCounters& slot = (*out)[type];
    slot.messages += counters.messages;
    slot.bytes += counters.bytes;
    slot.events += counters.events;
  }
}

/// Writes \p bytes to \p path via a temp file + rename, so a crash mid-write
/// never leaves a truncated checkpoint behind.
Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + tmp + ": " + std::strerror(errno));
  }
  size_t written = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  int close_rc = std::fclose(f);
  if (written != bytes.size() || close_rc != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + ": " + std::strerror(errno));
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Internal("read error on " + path);
  return bytes;
}

net::Message ShutdownMessage(NodeId src, NodeId dst) {
  net::Message m;
  m.type = net::MessageType::kShutdown;
  m.src = src;
  m.dst = dst;
  return m;
}

/// One-line child report for the forked-cluster pipe. Extended with the
/// session-resilience counters so the parent can both merge cluster-wide
/// accounting and assert that scheduled connection faults actually fired.
void WriteChildReport(int fd, const TcpLocalReport& report) {
  ::dprintf(fd,
            "ok events=%llu kills=%llu down=%llu redials=%llu replayed=%llu "
            "partial=%llu\n",
            static_cast<unsigned long long>(report.events_ingested),
            static_cast<unsigned long long>(report.conn_kills),
            static_cast<unsigned long long>(report.peer_down),
            static_cast<unsigned long long>(report.reconnects),
            static_cast<unsigned long long>(report.replayed_frames),
            static_cast<unsigned long long>(report.partial_frame_drops));
}

/// Run-owned observability state (mirrors the driver runners): when the
/// caller did not supply a registry or tracer, the run creates them and hands
/// ownership out via RunMetrics.
struct RunObs {
  std::shared_ptr<obs::Registry> registry;
  std::shared_ptr<obs::TraceRecorder> tracer;

  explicit RunObs(SystemConfig* config) {
    if (config->registry == nullptr) {
      registry = std::make_shared<obs::Registry>();
      config->registry = registry.get();
    }
    if (config->tracer == nullptr) {
      tracer = std::make_shared<obs::TraceRecorder>();
      config->tracer = tracer.get();
    }
  }
};

}  // namespace

Result<RunMetrics> RunTcpRoot(const SystemConfig& config,
                              uint64_t expected_windows,
                              const TcpRootOptions& options) {
  DEMA_RETURN_NOT_OK(ValidateSystemConfig(config));
  RealClock clock;
  SystemConfig cfg = config;
  RunObs run_obs(&cfg);

  transport::TcpTransportOptions topts;
  topts.listen_host = options.listen_host;
  topts.listen_port = options.listen_port;
  topts.adopted_listen_fd = options.adopted_listen_fd;
  topts.inbox_capacity = options.root_inbox_capacity;
  topts.outbox_capacity = options.outbox_capacity;
  topts.heartbeat_interval_us = options.session.heartbeat_interval_us;
  topts.heartbeat_misses = options.session.heartbeat_misses;
  topts.auto_reconnect = options.session.auto_reconnect;
  topts.retransmit_timeout_us = options.session.retransmit_timeout_us;
  topts.registry = cfg.registry;
  transport::TcpTransport transport(topts);
  DEMA_RETURN_NOT_OK(transport.AddLocalNode(0));
  DEMA_RETURN_NOT_OK(transport.Start());
  if (options.on_listening) options.on_listening(transport.bound_port());

  DEMA_ASSIGN_OR_RETURN(auto root, BuildRootLogic(cfg, &transport, &clock));

  LatencyRecorder latency;
  obs::Histogram* latency_hist =
      cfg.registry->GetHistogram("root.window_latency_us");
  uint64_t windows_done = 0;  // only touched by this (the root's) thread
  root->SetResultCallback([&](const WindowOutput& out) {
    latency.Record(out.latency_us);
    latency_hist->Record(
        out.latency_us < 0 ? 0 : static_cast<uint64_t>(out.latency_us));
    ++windows_done;
    if (options.on_result) options.on_result(out);
  });

  auto wall_start = std::chrono::steady_clock::now();
  net::Channel* inbox = transport.Inbox(0);
  Status run_status = Status::OK();
  while (windows_done < expected_windows) {
    if (ElapsedUs(wall_start) > options.timeout_us) {
      run_status = Status::Internal(
          "tcp root timed out with " + std::to_string(windows_done) + "/" +
          std::to_string(expected_windows) + " windows emitted");
      break;
    }
    auto msg = inbox->PopFor(MillisUs(2));
    if (!msg) {
      // Idle beat: with deadlines configured the root retries stalled
      // windows (e.g. requests that died with a crashed local) and
      // eventually degrades them; a no-op otherwise.
      Status st = root->Tick();
      if (!st.ok()) {
        run_status = st;
        break;
      }
      continue;
    }
    if (msg->type == net::MessageType::kShutdown) continue;
    Status st = root->OnMessage(*msg);
    if (!st.ok()) {
      run_status = st;
      break;
    }
  }
  auto wall_end = std::chrono::steady_clock::now();

  // Release the locals. Best effort: a local that never connected (or
  // already died) simply has no route.
  for (NodeId id : LocalIds(config)) {
    Status st = transport.Send(ShutdownMessage(0, id));
    (void)st;
  }
  // Flushes the shutdown broadcasts and settles all traffic counters.
  transport.Shutdown();
  DEMA_RETURN_NOT_OK(run_status);

  RunMetrics metrics;
  metrics.windows_emitted = windows_done;
  metrics.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  metrics.latency = latency.Summarize();
  metrics.latency_hist = latency_hist->Summarize();
  // Every link of the star topology terminates at the root, so received
  // (local->root) plus sent (root->local) socket bytes cover the cluster.
  AccumulateTraffic(transport.ReceivedTraffic(), &metrics.network_total);
  AccumulateTraffic(transport.LinkTraffic(), &metrics.network_total);
  MergeByType(transport.ReceivedByType(), &metrics.by_type);
  MergeByType(transport.TrafficByType(), &metrics.by_type);
  if (auto* dema_root = dynamic_cast<core::DemaRootNode*>(root.get())) {
    metrics.dema = dema_root->stats();
  }
  metrics.registry = run_obs.registry;
  metrics.tracer = run_obs.tracer;
  return metrics;
}

Result<TcpLocalReport> RunTcpLocal(const SystemConfig& config,
                                   const WorkloadConfig& workload, NodeId id,
                                   const TcpLocalOptions& options) {
  DEMA_RETURN_NOT_OK(ValidateSystemConfig(config));
  if (id == 0 || id > workload.generators.size()) {
    return Status::InvalidArgument("no generator for local node " +
                                   std::to_string(id));
  }
  RealClock clock;

  transport::TcpTransportOptions topts;
  topts.listen = false;  // pure client: replies arrive over the dialed conn
  topts.registry = config.registry;
  topts.seq_epoch = options.seq_epoch;
  topts.outbox_capacity = options.outbox_capacity;
  topts.heartbeat_interval_us = options.session.heartbeat_interval_us;
  topts.heartbeat_misses = options.session.heartbeat_misses;
  topts.auto_reconnect = options.session.auto_reconnect;
  topts.retransmit_timeout_us = options.session.retransmit_timeout_us;
  topts.kill_conn_schedule = options.kill_conn_frames;
  topts.write_stall_after_frames = options.write_stall_after_frames;
  topts.write_stall_us = options.write_stall_us;
  topts.corrupt_rate = options.corrupt_rate;
  topts.corrupt_seed = options.corrupt_seed;
  transport::TcpTransport transport(topts);
  DEMA_RETURN_NOT_OK(transport.AddLocalNode(id));
  DEMA_RETURN_NOT_OK(transport.AddPeer(0, options.root_host, options.root_port));
  DEMA_RETURN_NOT_OK(transport.Start());

  // Process-local worker pool for this node's closed-window sort+slice
  // (declared before the logic so it outlives the node at teardown).
  std::unique_ptr<exec::Executor> executor;
  SystemConfig local_config = config;
  if (config.executor == nullptr && config.workers > 0) {
    exec::ExecutorOptions exec_opts;
    exec_opts.workers = config.workers;
    exec_opts.registry = config.registry;
    executor = std::make_unique<exec::Executor>(exec_opts);
    local_config.executor = executor.get();
  }
  DEMA_ASSIGN_OR_RETURN(auto logic,
                        BuildLocalLogic(local_config, id, &transport, &clock));
  DEMA_ASSIGN_OR_RETURN(auto gen,
                        gen::StreamGenerator::Create(workload.generators[id - 1]));

  const bool uses_faults = !options.checkpoint_path.empty() ||
                           !options.restore_path.empty() ||
                           options.crash_at_window > 0;
  auto* dema_local = dynamic_cast<core::DemaLocalNode*>(logic.get());
  if (uses_faults && dema_local == nullptr) {
    return Status::InvalidArgument(
        "checkpoint/restore/crash options require the Dema protocol");
  }

  // Relaunch path: replace the blank node state with the checkpoint snapshot,
  // re-learn the slice factor from the root, and fast-forward the (fully
  // deterministic) generator past everything the previous life ingested.
  TimestampUs resume_cutoff_us = 0;
  if (!options.restore_path.empty()) {
    DEMA_ASSIGN_OR_RETURN(auto bytes, ReadFileBytes(options.restore_path));
    net::Reader reader(bytes);
    uint64_t cutoff_raw = 0;
    DEMA_RETURN_NOT_OK(reader.GetU64(&cutoff_raw));
    resume_cutoff_us = static_cast<TimestampUs>(cutoff_raw);
    DEMA_RETURN_NOT_OK(dema_local->Restore(&reader));
    DEMA_RETURN_NOT_OK(dema_local->ResyncGamma());
    while (gen->next_time_us() < resume_cutoff_us) (void)gen->Next();
  }

  net::Channel* inbox = transport.Inbox(id);
  stream::TumblingWindowAssigner assigner(workload.window_len_us);
  const TimestampUs end_time =
      static_cast<TimestampUs>(workload.num_windows) * workload.window_len_us;
  auto wall_start = std::chrono::steady_clock::now();
  bool shutdown_received = false;

  auto handle = [&](const net::Message& msg) -> Status {
    if (msg.type == net::MessageType::kShutdown) {
      shutdown_received = true;
      return Status::OK();
    }
    return logic->OnMessage(msg);
  };

  TcpLocalReport report;
  uint64_t count = 0;
  net::WindowId last_window = 0;
  Status run_status = Status::OK();
  while (gen->next_time_us() < end_time && !shutdown_received) {
    Event e = gen->Next();
    net::WindowId wid = assigner.AssignWindow(e.timestamp);
    if (wid != last_window) {
      run_status = logic->OnWatermark(e.timestamp);
      if (!run_status.ok()) break;
      last_window = wid;
      if (!options.checkpoint_path.empty()) {
        // Snapshot at the boundary, before any event of window `wid` is
        // ingested. The cutoff is the window start: a restored life skips
        // every regenerated event before it and re-feeds `e`, which the
        // restored watermark (== e.timestamp) accepts as on-time. In-flight
        // executor closes must land first — a snapshot taken mid-close would
        // silently drop those windows' events.
        run_status = dema_local->FlushPendingCloses();
        if (!run_status.ok()) break;
        net::Writer w;
        w.PutU64(static_cast<uint64_t>(wid) * workload.window_len_us);
        dema_local->Checkpoint(&w);
        run_status = WriteFileAtomic(options.checkpoint_path, w.buffer());
        if (!run_status.ok()) break;
      }
      if (options.crash_at_window > 0 && wid >= options.crash_at_window) {
        // Simulated hard crash: synopses already handed to the transport may
        // or may not reach the root (Shutdown flushes what it can); the
        // in-memory node state is simply gone.
        transport.Shutdown();
        ::_exit(kTcpCrashExitCode);
      }
    }
    run_status = logic->OnEvent(e);
    if (!run_status.ok()) break;
    ++count;
    if (count % options.watermark_every == 0) {
      run_status = logic->OnWatermark(e.timestamp);
      if (!run_status.ok()) break;
      while (auto msg = inbox->TryPop()) {
        run_status = handle(*msg);
        if (!run_status.ok()) break;
      }
      if (!run_status.ok()) break;
    }
  }
  // A restored life reports its lifetime total (the checkpoint carries the
  // previous life's count), so the cluster-wide sum stays comparable to a
  // fault-free run.
  report.events_ingested = (dema_local != nullptr && !options.restore_path.empty())
                               ? dema_local->events_ingested()
                               : count;
  if (run_status.ok() && !shutdown_received) {
    run_status = logic->OnFinish(end_time);
  }
  // Serve candidate requests until the root is satisfied and releases us.
  while (run_status.ok() && !shutdown_received) {
    if (ElapsedUs(wall_start) > options.timeout_us) {
      run_status = Status::Internal("tcp local " + std::to_string(id) +
                                    " timed out waiting for shutdown");
      break;
    }
    auto msg = inbox->PopFor(MillisUs(2));
    if (!msg) continue;
    run_status = handle(*msg);
  }
  transport.Shutdown();
  // An error after the shutdown marker is teardown noise, not a failure.
  if (!run_status.ok() && !shutdown_received) return run_status;

  report.sent_links = transport.LinkTraffic();
  report.sent_by_type = transport.TrafficByType();
  // Resilience accounting for the parent's cluster-wide merge. Read off the
  // transport's registry so it works both with a caller-provided registry
  // and the transport-owned fallback.
  obs::Registry* reg = transport.registry();
  report.conn_kills = reg->GetCounter("net.conn_kills{layer=inject}")->Value();
  report.peer_down = reg->GetCounter("net.peer_down")->Value();
  report.reconnects = reg->GetCounter("net.reconnects")->Value();
  report.replayed_frames = reg->GetCounter("net.replayed_frames")->Value();
  report.partial_frame_drops =
      reg->GetCounter("net.partial_frame_drops")->Value();
  return report;
}

Result<RunMetrics> RunTcpClusterForked(const SystemConfig& config,
                                       const WorkloadConfig& workload,
                                       const std::string& host, uint16_t port) {
  return RunTcpClusterForked(config, workload, TcpClusterFaultOptions{}, host,
                             port);
}

Result<RunMetrics> RunTcpClusterForked(const SystemConfig& config,
                                       const WorkloadConfig& workload,
                                       const TcpClusterFaultOptions& fault,
                                       const std::string& host, uint16_t port) {
  DEMA_RETURN_NOT_OK(ValidateSystemConfig(config));
  if (workload.generators.size() != config.num_locals) {
    return Status::InvalidArgument("generator count != local node count");
  }
  if (fault.crash_node > 0) {
    if (fault.crash_node > config.num_locals) {
      return Status::InvalidArgument("crash_node is not a local node");
    }
    if (fault.crash_at_window == 0 || fault.checkpoint_dir.empty()) {
      return Status::InvalidArgument(
          "a crash needs crash_at_window > 0 and a checkpoint_dir");
    }
    if (config.root_deadline_ticks == 0) {
      return Status::InvalidArgument(
          "crash recovery needs root_deadline_ticks > 0: the root must retry "
          "candidate requests that died with the crashed process");
    }
  }
  if ((!fault.conn_kill.empty() || fault.corrupt_rate > 0) &&
      fault.session.heartbeat_interval_us <= 0) {
    return Status::InvalidArgument(
        "connection chaos needs session.heartbeat_interval_us > 0: lost "
        "frames are recovered by the ack/retransmit machinery, which rides "
        "the heartbeat tick");
  }
  if (!fault.conn_kill.empty() && !fault.session.auto_reconnect) {
    return Status::InvalidArgument(
        "conn_kill chaos needs session.auto_reconnect: a severed local has "
        "no other way back to the root");
  }

  // Bind before forking: children dial a port guaranteed to be accepting,
  // and forking precedes any thread creation (fork + threads don't mix).
  DEMA_ASSIGN_OR_RETURN(int listen_fd, transport::BindListenSocket(host, port));
  DEMA_ASSIGN_OR_RETURN(uint16_t actual_port,
                        transport::ListenSocketPort(listen_fd));

  struct Child {
    pid_t pid = -1;
    int report_fd = -1;
  };
  std::vector<Child> children;
  for (size_t i = 0; i < config.num_locals; ++i) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      ::close(listen_fd);
      for (const Child& c : children) {
        ::close(c.report_fd);
        ::kill(c.pid, SIGKILL);
        ::waitpid(c.pid, nullptr, 0);
      }
      return Status::NetworkError(std::string("pipe failed: ") +
                                  std::strerror(errno));
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(listen_fd);
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      for (const Child& c : children) {
        ::close(c.report_fd);
        ::kill(c.pid, SIGKILL);
        ::waitpid(c.pid, nullptr, 0);
      }
      return Status::NetworkError(std::string("fork failed: ") +
                                  std::strerror(errno));
    }
    if (pid == 0) {
      // Child: run one local node and report back over the pipe.
      ::close(listen_fd);
      ::close(pipe_fds[0]);
      const NodeId node = static_cast<NodeId>(i + 1);
      if (node == fault.crash_node) {
        // Victim child: a still-single-threaded supervisor forks generation 1
        // (which checkpoints every boundary and `_exit`s at the scheduled
        // window), reaps it, then relaunches generation 2 in this process
        // from the checkpoint with a fresh sequence epoch.
        std::string ckpt =
            fault.checkpoint_dir + "/node" + std::to_string(node) + ".ckpt";
        pid_t gen1 = ::fork();
        if (gen1 < 0) {
          ::dprintf(pipe_fds[1], "error victim fork failed: %s\n",
                    std::strerror(errno));
          ::close(pipe_fds[1]);
          ::_exit(1);
        }
        if (gen1 == 0) {
          ::close(pipe_fds[1]);
          TcpLocalOptions lopts;
          lopts.root_host = host;
          lopts.root_port = actual_port;
          lopts.checkpoint_path = ckpt;
          lopts.crash_at_window = fault.crash_at_window;
          auto report = RunTcpLocal(config, workload, node, lopts);
          // Reaching here means the crash never fired (e.g. the schedule was
          // past the last window) — that is a test-setup failure.
          (void)report;
          ::_exit(1);
        }
        int wstatus = 0;
        ::waitpid(gen1, &wstatus, 0);
        if (!(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == kTcpCrashExitCode)) {
          ::dprintf(pipe_fds[1],
                    "error victim generation 1 exited %d instead of crashing "
                    "on schedule\n",
                    WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1);
          ::close(pipe_fds[1]);
          ::_exit(1);
        }
        TcpLocalOptions lopts;
        lopts.root_host = host;
        lopts.root_port = actual_port;
        lopts.restore_path = ckpt;
        lopts.seq_epoch = 1;
        lopts.session = fault.session;
        auto report = RunTcpLocal(config, workload, node, lopts);
        if (report.ok()) {
          // Lifetime total: the checkpoint carried generation 1's count.
          WriteChildReport(pipe_fds[1], *report);
        } else {
          ::dprintf(pipe_fds[1], "error %s\n",
                    report.status().ToString().c_str());
        }
        ::close(pipe_fds[1]);
        ::_exit(report.ok() ? 0 : 1);
      }
      TcpLocalOptions lopts;
      lopts.root_host = host;
      lopts.root_port = actual_port;
      lopts.session = fault.session;
      if (!fault.conn_kill.empty()) {
        // Salt by node id: each local severs its link at different points
        // in its own frame stream, so kills do not land in lockstep.
        lopts.kill_conn_frames = BuildKillSchedule(fault.conn_kill, node);
      }
      if (fault.corrupt_rate > 0) {
        lopts.corrupt_rate = fault.corrupt_rate;
        lopts.corrupt_seed =
            (fault.corrupt_seed == 0 ? 0x5EEDu : fault.corrupt_seed) + node;
      }
      lopts.write_stall_after_frames = fault.write_stall_after_frames;
      lopts.write_stall_us = fault.write_stall_us;
      auto report = RunTcpLocal(config, workload, node, lopts);
      if (report.ok()) {
        WriteChildReport(pipe_fds[1], *report);
      } else {
        ::dprintf(pipe_fds[1], "error %s\n",
                  report.status().ToString().c_str());
      }
      ::close(pipe_fds[1]);
      ::_exit(report.ok() ? 0 : 1);
    }
    ::close(pipe_fds[1]);
    children.push_back(Child{pid, pipe_fds[0]});
  }

  TcpRootOptions ropts;
  ropts.adopted_listen_fd = listen_fd;
  ropts.session = fault.session;
  ropts.on_result = fault.on_result;
  auto metrics = RunTcpRoot(config, workload.ExpectedWindows(), ropts);

  // Collect every child regardless of the root's outcome.
  uint64_t events_total = 0;
  uint64_t kills_total = 0, down_total = 0, redials_total = 0;
  uint64_t replayed_total = 0, partial_total = 0;
  Status child_status = Status::OK();
  for (const Child& c : children) {
    std::string text;
    char buf[256];
    ssize_t n;
    while ((n = ::read(c.report_fd, buf, sizeof(buf))) > 0) {
      text.append(buf, static_cast<size_t>(n));
    }
    ::close(c.report_fd);
    int wstatus = 0;
    ::waitpid(c.pid, &wstatus, 0);
    unsigned long long events = 0, kills = 0, down = 0, redials = 0,
                       replayed = 0, partial = 0;
    int matched = std::sscanf(
        text.c_str(),
        "ok events=%llu kills=%llu down=%llu redials=%llu replayed=%llu "
        "partial=%llu",
        &events, &kills, &down, &redials, &replayed, &partial);
    if (matched >= 1) {
      events_total += events;
      kills_total += kills;
      down_total += down;
      redials_total += redials;
      replayed_total += replayed;
      partial_total += partial;
    } else if (child_status.ok()) {
      child_status = Status::Internal(
          "local node process failed: " +
          (text.empty() ? std::string("no report (killed?)") : text));
    }
  }
  DEMA_RETURN_NOT_OK(child_status);
  DEMA_RETURN_NOT_OK(metrics.status());

  // Fold the children's resilience accounting into the run registry: the
  // root's own counters already live there, so after this merge the cluster
  // totals are observable from one place (`metrics.registry`).
  if (metrics->registry != nullptr) {
    obs::Registry* reg = metrics->registry.get();
    reg->GetCounter("net.conn_kills{layer=inject}")->Increment(kills_total);
    reg->GetCounter("net.peer_down")->Increment(down_total);
    reg->GetCounter("net.reconnects")->Increment(redials_total);
    reg->GetCounter("net.replayed_frames")->Increment(replayed_total);
    reg->GetCounter("net.partial_frame_drops")->Increment(partial_total);
  }

  metrics->events_ingested = events_total;
  metrics->throughput_eps =
      metrics->wall_seconds > 0
          ? static_cast<double>(events_total) / metrics->wall_seconds
          : 0;
  return std::move(metrics).MoveValueUnsafe();
}

Result<TcpConnChaosReport> RunTcpConnChaos(const SystemConfig& config,
                                           const WorkloadConfig& workload,
                                           const TcpClusterFaultOptions& fault,
                                           const std::string& host,
                                           uint16_t port) {
  if (fault.conn_kill.empty() && fault.corrupt_rate <= 0) {
    return Status::InvalidArgument(
        "conn-chaos run without connection faults: set conn_kill and/or "
        "corrupt_rate");
  }
  TcpConnChaosReport report;

  // --- faulted run: real processes, real sockets, scheduled severances ---
  TcpClusterFaultOptions f = fault;
  f.on_result = [&](const WindowOutput& out) {
    report.outputs.push_back(out);
    if (fault.on_result) fault.on_result(out);
  };
  SystemConfig tcp_config = config;
  tcp_config.registry = nullptr;  // own registry: children's counters merge
  tcp_config.tracer = nullptr;
  DEMA_ASSIGN_OR_RETURN(report.metrics, RunTcpClusterForked(
                                            tcp_config, workload, f, host,
                                            port));
  if (report.metrics.registry != nullptr) {
    obs::Registry* reg = report.metrics.registry.get();
    report.conn_kills =
        reg->GetCounter("net.conn_kills{layer=inject}")->Value();
    report.peer_down = reg->GetCounter("net.peer_down")->Value();
    report.reconnects = reg->GetCounter("net.reconnects")->Value();
    report.replayed_frames = reg->GetCounter("net.replayed_frames")->Value();
    report.partial_frame_drops =
        reg->GetCounter("net.partial_frame_drops")->Value();
  }

  // --- reference run: the deterministic in-process fabric, fault-free ---
  // Runs after the forked run on purpose: forking must precede thread
  // creation, and the reference run spins up worker threads.
  RealClock clock;
  SystemConfig ref_config = config;
  obs::Registry ref_registry;
  obs::TraceRecorder ref_tracer;
  ref_config.registry = &ref_registry;
  ref_config.tracer = &ref_tracer;
  net::Network network(&clock);
  DEMA_ASSIGN_OR_RETURN(auto system,
                        BuildSystem(ref_config, &network, &clock, 0));
  SyncDriver driver(&system, &network, &clock);
  DEMA_RETURN_NOT_OK(driver.Run(workload));
  report.reference = driver.outputs();

  // --- the contract ---
  auto violate = [&](const std::string& why) {
    if (report.violation.empty()) report.violation = why;
  };
  if (!fault.conn_kill.empty() && report.conn_kills == 0) {
    violate("conn-kill schedule never fired: the run proved nothing");
  }
  if (report.conn_kills > 0 && report.replayed_frames == 0) {
    violate("connections were severed but no frame was ever replayed");
  }
  if (report.outputs.size() != report.reference.size()) {
    violate("faulted run emitted " + std::to_string(report.outputs.size()) +
            " windows, reference " +
            std::to_string(report.reference.size()));
  }
  // Match windows by id, not emission order: an injected stall or severance
  // can delay one window's candidates past the next window's completion, so
  // the faulted root may emit out of order — that reordering is fine; the
  // *values* must still be exact.
  auto by_window = [](const WindowOutput& a, const WindowOutput& b) {
    return a.window_id < b.window_id;
  };
  std::sort(report.outputs.begin(), report.outputs.end(), by_window);
  std::sort(report.reference.begin(), report.reference.end(), by_window);
  size_t common = std::min(report.outputs.size(), report.reference.size());
  for (size_t i = 0; i < common; ++i) {
    const WindowOutput& got = report.outputs[i];
    const WindowOutput& want = report.reference[i];
    if (got.degraded) {
      ++report.degraded_windows;
      violate("window " + std::to_string(got.window_id) +
              " degraded (" + got.degrade_cause +
              ") despite session resilience");
      continue;
    }
    if (got.window_id != want.window_id || got.values != want.values ||
        got.global_size != want.global_size) {
      ++report.mismatched_windows;
      violate("window " + std::to_string(got.window_id) +
              " diverged from the fault-free reference");
    }
  }
  return report;
}

}  // namespace dema::sim
