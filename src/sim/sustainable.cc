#include "sim/sustainable.h"

namespace dema::sim {

namespace {

/// One probe: does the system keep up with `rate` events/s per node?
Result<bool> Sustains(const SystemConfig& config,
                      const gen::DistributionParams& distribution, double rate,
                      const SustainableSearchOptions& options, int probe) {
  WorkloadConfig load =
      MakeUniformWorkload(config.num_locals, options.windows, rate, distribution,
                          /*scale_rates=*/{},
                          /*seed_base=*/options.seed_base + probe * 131);
  DEMA_ASSIGN_OR_RETURN(RunMetrics metrics, RunSync(config, load));
  double offered = rate * static_cast<double>(config.num_locals);
  return metrics.sim_throughput_eps >= offered;
}

}  // namespace

Result<SustainableResult> FindSustainableThroughput(
    const SystemConfig& system_config, const gen::DistributionParams& distribution,
    SustainableSearchOptions options) {
  if (!(options.lo_rate > 0) || !(options.hi_rate > options.lo_rate)) {
    return Status::InvalidArgument("invalid search interval");
  }
  SustainableResult result;

  DEMA_ASSIGN_OR_RETURN(
      bool lo_ok, Sustains(system_config, distribution, options.lo_rate, options,
                           result.probes++));
  if (!lo_ok) {
    // Even the lower bound is too fast; report it as the (pessimistic) cap.
    result.per_node_rate_eps = options.lo_rate;
    result.total_rate_eps =
        options.lo_rate * static_cast<double>(system_config.num_locals);
    return result;
  }
  DEMA_ASSIGN_OR_RETURN(
      bool hi_ok, Sustains(system_config, distribution, options.hi_rate, options,
                           result.probes++));
  double lo = options.lo_rate, hi = options.hi_rate;
  if (hi_ok) {
    lo = hi;  // sustained everything we can offer
  } else {
    while ((hi - lo) / hi > options.tolerance) {
      double mid = (lo + hi) / 2;
      DEMA_ASSIGN_OR_RETURN(bool ok, Sustains(system_config, distribution, mid,
                                              options, result.probes++));
      if (ok) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }
  result.per_node_rate_eps = lo;
  result.total_rate_eps = lo * static_cast<double>(system_config.num_locals);
  return result;
}

}  // namespace dema::sim
