#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/status.h"
#include "net/message.h"

namespace dema::sim {

/// \brief One emitted global-window result (all queried quantiles).
struct WindowOutput {
  net::WindowId window_id = 0;
  /// Global window size l_G.
  uint64_t global_size = 0;
  /// Queried quantiles, parallel to `values`.
  std::vector<double> quantiles;
  /// Exact (or, for sketch systems, approximate) quantile values.
  std::vector<double> values;
  /// Latency from the last local-window close to result emission.
  DurationUs latency_us = 0;
  /// True when recovery was exhausted and the root emitted a best-effort
  /// result from the data it held instead of the exact quantile.
  bool degraded = false;
  /// Why the window degraded (e.g. "replies_lost"); empty for exact windows.
  std::string degrade_cause;
  /// Degraded windows only: upper bound on how many ranks each emitted value
  /// may be off by, relative to the events the root actually received.
  uint64_t rank_error_bound = 0;
};

/// \brief Sink receiving every global-window result at the root.
using ResultCallback = std::function<void(const WindowOutput&)>;

/// \brief Message handler shared by all simulated nodes.
class NodeLogic {
 public:
  virtual ~NodeLogic() = default;

  /// Handles one message from this node's inbox.
  virtual Status OnMessage(const net::Message& msg) = 0;
};

/// \brief Edge-side logic: ingests a colocated event stream and talks to the
/// root. Implemented by Dema's local node and every baseline's local side.
class LocalNodeLogic : public NodeLogic {
 public:
  /// Ingests one event from the colocated data-stream generator. Events of
  /// one node arrive in event-time order.
  virtual Status OnEvent(const Event& e) = 0;

  /// Advances the event-time watermark; closes and ships windows whose end
  /// passed. Never moves backwards.
  virtual Status OnWatermark(TimestampUs watermark_us) = 0;

  /// Ends the stream at \p final_watermark_us: every window up to that
  /// instant is closed and shipped (including empty ones, so the root can
  /// align all locals).
  virtual Status OnFinish(TimestampUs final_watermark_us) = 0;

  /// Blocks until every asynchronously closing window has shipped (no-op for
  /// nodes without a worker pool). The synchronous driver calls this after
  /// each watermark so a threaded run produces the exact message sequence of
  /// an inline run; real-time runners only need it before checkpoints.
  virtual Status Quiesce() { return Status::OK(); }
};

/// \brief Root-side logic: aggregates local contributions into global
/// results and reports completion to the driver.
class RootNodeLogic : public NodeLogic {
 public:
  /// Registers the sink for emitted window results.
  virtual void SetResultCallback(ResultCallback cb) = 0;

  /// Number of global windows emitted so far.
  virtual uint64_t windows_emitted() const = 0;

  /// True when no window is partially aggregated (all state resolved).
  virtual bool idle() const = 0;

  /// Deadline tick: drivers call this at deterministic points (sim window
  /// boundaries, run-loop timeouts) so the root can notice stalled windows,
  /// retry candidate requests, and eventually degrade instead of waiting
  /// forever. Default: no deadline machinery.
  virtual Status Tick() { return Status::OK(); }
};

}  // namespace dema::sim
