#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/driver.h"
#include "sim/topology.h"

namespace dema::sim {

/// \brief One scheduled node crash: the node goes down at the start of
/// `at_window` and restarts (from its checkpoint) `down_windows` window
/// boundaries later.
struct CrashEvent {
  NodeId node = 0;
  net::WindowId at_window = 0;
  uint64_t down_windows = 1;
};

/// \brief One scheduled directed-pair partition: both directions of the
/// a <-> b link are blocked at the start of `from_window` and healed at the
/// start of `until_window` (exclusive).
struct PartitionEvent {
  NodeId a = 0;
  NodeId b = 0;
  net::WindowId from_window = 0;
  net::WindowId until_window = 0;
};

/// \brief One scheduled field-tampering phase: the node's protocol payloads
/// are tampered (valid checksum — only the root's validation pass catches
/// them) from the start of `from_window` until the start of `until_window`.
struct TamperEvent {
  NodeId node = 0;
  net::WindowId from_window = 0;
  net::WindowId until_window = 0;
};

/// \brief A deterministic fault schedule for one chaos run: probabilistic
/// message faults (drop / duplicate / delay / corrupt, all driven by `seed`)
/// plus scheduled crashes, partitions, and tampering phases pinned to window
/// boundaries. The same plan over the same workload replays the same faults.
struct FaultPlan {
  /// Per-message silent-loss probability.
  double drop_prob = 0;
  /// Per-message duplicate-delivery probability.
  double duplicate_prob = 0;
  /// Upper bound on injected in-flight delay (0 disables; delayed messages
  /// are redelivered out of order).
  DurationUs delay_us_max = 0;
  /// Probability a message is delayed when `delay_us_max` > 0.
  double delay_prob = 0.25;
  /// Per-message frame byte-flip probability: the fabric re-runs the real
  /// CRC32C check and drops the corrupted frame exactly as the TCP reader
  /// would (`net.corrupted{layer=frame}`); the loss is then recovered by the
  /// root's retry/deadline machinery.
  double corrupt_prob = 0;
  /// Probability a tampering node's eligible payload is field-tampered.
  double tamper_prob = 1.0;
  /// Seed for every probabilistic fault draw.
  uint64_t seed = 1;
  std::vector<CrashEvent> crashes;
  std::vector<PartitionEvent> partitions;
  std::vector<TamperEvent> tampers;
  /// Root deadline machinery knobs (see `DemaRootNodeOptions`). The harness
  /// ticks the root once per window boundary.
  uint64_t deadline_ticks = 4;
  uint32_t max_retries = 3;
  /// Misbehaving-local quarantine knobs (see `DemaRootNodeOptions`). On by
  /// default in chaos runs: honest locals are never rejected, so the strike
  /// budget only ever fires on injected tampering.
  uint32_t quarantine_strikes = 3;
  uint64_t probation_windows = 2;
  uint32_t probation_clean_windows = 2;
};

/// \brief Parses a compact fault-schedule spec, e.g.
/// `drop=0.03,dup=0.05,corrupt=0.05,seed=7,crash=2@3+2,tamper=1@2..5`.
///
/// Keys: `drop`, `dup`, `delay-us`, `delay-prob`, `corrupt`, `tamper-prob`,
/// `seed`, `deadline`, `retries`, `strikes`, plus repeatable
/// `crash=NODE@WINDOW[+DOWN]`, `partition=A-B@FROM..UNTIL`, and
/// `tamper=NODE@FROM..UNTIL`. Unknown keys fail.
Result<FaultPlan> ParseFaultSchedule(const std::string& spec);

/// \brief A connection-level kill plan for the TCP transport's session
/// layer: \p kills socket severances spread deterministically over the
/// data-frame interval [`from_frame`, `until_frame`). Unlike the fabric
/// faults above this targets *connections*, not messages — every kill drops
/// the in-flight socket state and exercises heartbeat detection, redial, and
/// acked-frame replay.
struct ConnChaosPlan {
  uint64_t kills = 0;
  uint64_t from_frame = 0;
  uint64_t until_frame = 0;
  bool empty() const { return kills == 0; }
};

/// \brief Parses a conn-kill spec of the form `N@FROM..UNTIL`, e.g.
/// `3@10..200` = sever the connection 3 times, somewhere between the 10th
/// and 200th data frame written. `N@FROM` pins all kills at one point.
Result<ConnChaosPlan> ParseConnKillSpec(const std::string& spec);

/// \brief Expands a plan into a sorted cumulative-data-frame kill schedule
/// (the `TcpTransportOptions::kill_conn_schedule` format). \p salt
/// decorrelates the schedules of different nodes running the same plan, so a
/// cluster's kills do not land in lockstep; the same (plan, salt) always
/// yields the same schedule.
std::vector<uint64_t> BuildKillSchedule(const ConnChaosPlan& plan,
                                        uint64_t salt);

/// \brief Per-window outcome of a chaos run, checked against an oracle over
/// the events that were actually fed (a crashed node's events are lost at the
/// source, so they are not part of the ground truth).
struct ChaosWindowReport {
  net::WindowId window_id = 0;
  bool emitted = false;
  bool degraded = false;
  std::string degrade_cause;
  uint64_t rank_error_bound = 0;
  uint64_t global_size = 0;
  /// Emitted values, parallel to the configured quantiles.
  std::vector<double> values;
  /// Oracle values over the fed events (empty window -> empty).
  std::vector<double> oracle;
  /// Exact (non-degraded) windows only: emitted values equal the oracle.
  bool matches_oracle = false;
};

/// \brief Outcome of one chaos run.
struct ChaosReport {
  std::vector<ChaosWindowReport> windows;
  uint64_t exact_windows = 0;
  uint64_t degraded_windows = 0;
  uint64_t mismatched_windows = 0;
  uint64_t missing_windows = 0;
  bool root_idle = false;
  /// Fault-fabric accounting.
  uint64_t messages_dropped = 0;
  uint64_t duplicates_injected = 0;
  uint64_t messages_delayed = 0;
  /// Frames flipped (CRC-dropped) plus payloads field-tampered.
  uint64_t messages_corrupted = 0;
  uint64_t root_retries = 0;
  uint64_t restarts = 0;
  /// Corruption-defense accounting at the root.
  uint64_t rejected_payloads = 0;
  uint64_t quarantines = 0;
  uint64_t readmissions = 0;
  /// First invariant violation, empty when the run held the chaos contract:
  /// every window emitted exactly-matching the oracle OR explicitly degraded
  /// with a cause, and the root ended idle.
  std::string violation;

  bool Invariant() const { return violation.empty(); }
};

/// \brief Runs the Dema system (tumbling windows only) under \p plan,
/// replaying the seeded fault schedule deterministically, and checks every
/// window against the oracle. Crashed locals checkpoint at the boundary,
/// lose their inbox and in-memory state, and restart from the checkpoint
/// with a gamma re-sync.
Result<ChaosReport> RunChaos(const SystemConfig& system_config,
                             const WorkloadConfig& workload,
                             const FaultPlan& plan);

}  // namespace dema::sim
