#include "sim/tree.h"

namespace dema::sim {

Result<TreeSystem> BuildTreeSystem(const TreeConfig& config, net::Network* network,
                                   const Clock* clock) {
  if (config.num_relays == 0 || config.locals_per_relay == 0) {
    return Status::InvalidArgument("tree needs at least one relay and one leaf");
  }
  TreeSystem tree;
  tree.root_id = 0;
  DEMA_RETURN_NOT_OK(network->RegisterNode(tree.root_id, 0));

  NodeId next_leaf = static_cast<NodeId>(config.num_relays + 1);
  for (size_t r = 0; r < config.num_relays; ++r) {
    NodeId relay_id = static_cast<NodeId>(r + 1);
    tree.relay_ids.push_back(relay_id);
    DEMA_RETURN_NOT_OK(network->RegisterNode(relay_id, 0));

    std::vector<NodeId> children;
    for (size_t l = 0; l < config.locals_per_relay; ++l) {
      NodeId leaf_id = next_leaf++;
      children.push_back(leaf_id);
      tree.local_ids.push_back(leaf_id);
      DEMA_RETURN_NOT_OK(network->RegisterNode(leaf_id, 0));

      core::DemaLocalNodeOptions leaf_opts;
      leaf_opts.id = leaf_id;
      leaf_opts.root_id = relay_id;  // the leaf's "root" is its relay
      leaf_opts.window_len_us = config.window_len_us;
      leaf_opts.initial_gamma = config.gamma;
      leaf_opts.registry = config.registry;
      tree.locals.push_back(
          std::make_unique<core::DemaLocalNode>(leaf_opts, network, clock));
    }

    core::DemaRelayNodeOptions relay_opts;
    relay_opts.id = relay_id;
    relay_opts.parent = tree.root_id;
    relay_opts.children = children;
    tree.relays.push_back(
        std::make_unique<core::DemaRelayNode>(relay_opts, network, clock));
  }

  core::DemaRootNodeOptions root_opts;
  root_opts.id = tree.root_id;
  root_opts.locals = tree.relay_ids;  // the root's "locals" are the relays
  // A relay's combined batch interleaves its children's γ-cuts, which the
  // strict flat-topology rules would (correctly, but falsely here) reject;
  // keep only the structural validation rules.
  root_opts.strict_validation = false;
  root_opts.quantiles = config.quantiles;
  root_opts.initial_gamma = config.gamma;
  root_opts.registry = config.registry;
  root_opts.tracer = config.tracer;
  tree.root = std::make_unique<core::DemaRootNode>(root_opts, network, clock);
  DEMA_RETURN_NOT_OK(tree.root->init_status());
  return tree;
}

TreeSyncDriver::TreeSyncDriver(TreeSystem* tree, net::Network* network,
                               const Clock* clock)
    : tree_(tree), network_(network), clock_(clock) {
  (void)clock_;
}

Status TreeSyncDriver::PumpMessages() {
  bool progress = true;
  while (progress) {
    progress = false;
    while (auto msg = network_->Inbox(tree_->root_id)->TryPop()) {
      DEMA_RETURN_NOT_OK(tree_->root->OnMessage(*msg));
      progress = true;
    }
    for (size_t i = 0; i < tree_->relays.size(); ++i) {
      while (auto msg = network_->Inbox(tree_->relay_ids[i])->TryPop()) {
        DEMA_RETURN_NOT_OK(tree_->relays[i]->OnMessage(*msg));
        progress = true;
      }
    }
    for (size_t i = 0; i < tree_->locals.size(); ++i) {
      while (auto msg = network_->Inbox(tree_->local_ids[i])->TryPop()) {
        DEMA_RETURN_NOT_OK(tree_->locals[i]->OnMessage(*msg));
        progress = true;
      }
    }
  }
  return Status::OK();
}

Status TreeSyncDriver::Run(const WorkloadConfig& workload) {
  if (workload.generators.size() != tree_->locals.size()) {
    return Status::InvalidArgument("generator count != leaf count");
  }
  std::vector<std::unique_ptr<gen::StreamGenerator>> gens;
  for (const auto& cfg : workload.generators) {
    DEMA_ASSIGN_OR_RETURN(auto g, gen::StreamGenerator::Create(cfg));
    gens.push_back(std::move(g));
  }
  tree_->root->SetResultCallback(
      [this](const WindowOutput& out) { outputs_.push_back(out); });

  for (uint64_t w = 0; w < workload.num_windows; ++w) {
    TimestampUs start = static_cast<TimestampUs>(w) * workload.window_len_us;
    TimestampUs end = start + workload.window_len_us;
    for (size_t i = 0; i < gens.size(); ++i) {
      for (const Event& e : gens[i]->GenerateWindow(start, workload.window_len_us)) {
        DEMA_RETURN_NOT_OK(tree_->locals[i]->OnEvent(e));
        ++events_ingested_;
      }
      DEMA_RETURN_NOT_OK(tree_->locals[i]->OnWatermark(end));
    }
    DEMA_RETURN_NOT_OK(PumpMessages());
  }
  TimestampUs final_ts =
      static_cast<TimestampUs>(workload.num_windows) * workload.window_len_us;
  for (auto& leaf : tree_->locals) {
    DEMA_RETURN_NOT_OK(leaf->OnFinish(final_ts));
  }
  DEMA_RETURN_NOT_OK(PumpMessages());

  if (tree_->root->windows_emitted() != workload.num_windows) {
    return Status::Internal(
        "root emitted " + std::to_string(tree_->root->windows_emitted()) +
        " windows, expected " + std::to_string(workload.num_windows));
  }
  if (!tree_->root->idle()) {
    return Status::Internal("root still has pending windows");
  }
  for (const auto& relay : tree_->relays) {
    if (relay->pending_windows() != 0) {
      return Status::Internal("relay still has pending windows");
    }
  }
  return Status::OK();
}

}  // namespace dema::sim
