#include "sim/topology.h"

#include "baselines/central_root.h"
#include "baselines/forwarding_local.h"
#include "baselines/qdigest_agg.h"
#include "baselines/tdigest_agg.h"
#include "dema/local_node.h"
#include "dema/root_node.h"

namespace dema::sim {

const char* SystemKindToString(SystemKind kind) {
  switch (kind) {
    case SystemKind::kDema:
      return "Dema";
    case SystemKind::kCentralExact:
      return "Scotty";
    case SystemKind::kDesisMerge:
      return "Desis";
    case SystemKind::kTDigestCentral:
      return "Tdigest";
    case SystemKind::kTDigestDecentral:
      return "Tdigest-dec";
    case SystemKind::kQDigest:
      return "Qdigest";
  }
  return "?";
}

Status ValidateSystemConfig(const SystemConfig& config) {
  if (config.num_locals == 0) {
    return Status::InvalidArgument("need at least one local node");
  }
  if (config.shards == 0) {
    return Status::InvalidArgument(
        "shard count must be at least 1 (0 is not a silent fallback to an "
        "unsharded topology)");
  }
  if (config.keys == 0) {
    return Status::InvalidArgument("key count must be at least 1");
  }
  if (config.window_len_us <= 0) {
    return Status::InvalidArgument("window length must be positive");
  }
  if (config.quantiles.empty()) {
    return Status::InvalidArgument("need at least one quantile");
  }
  for (double q : config.quantiles) {
    if (!(q > 0.0) || q > 1.0) {
      return Status::InvalidArgument("quantile " + std::to_string(q) +
                                     " outside (0, 1]");
    }
  }
  stream::WindowSpec spec{config.window_len_us, config.window_slide_us};
  if (!spec.IsTumbling() && config.kind != SystemKind::kDema) {
    return Status::NotImplemented(
        "sliding windows are only supported by the Dema system");
  }
  return Status::OK();
}

std::vector<NodeId> LocalIds(const SystemConfig& config) {
  std::vector<NodeId> ids;
  ids.reserve(config.num_locals);
  for (size_t i = 0; i < config.num_locals; ++i) {
    ids.push_back(static_cast<NodeId>(i + 1));
  }
  return ids;
}

Result<std::unique_ptr<RootNodeLogic>> BuildRootLogic(
    const SystemConfig& config, transport::Transport* transport,
    const Clock* clock) {
  DEMA_RETURN_NOT_OK(ValidateSystemConfig(config));
  const NodeId root_id = 0;
  const std::vector<NodeId> locals = LocalIds(config);
  switch (config.kind) {
    case SystemKind::kDema: {
      core::DemaRootNodeOptions opts;
      opts.id = root_id;
      opts.locals = locals;
      opts.quantiles = config.quantiles;
      opts.initial_gamma = config.gamma;
      opts.adaptive_gamma = config.adaptive_gamma;
      opts.per_node_gamma = config.per_node_gamma;
      opts.use_naive_selection = config.naive_selection;
      opts.deadline_ticks = config.root_deadline_ticks;
      opts.max_retries = config.root_max_retries;
      opts.quarantine_strikes = config.root_quarantine_strikes;
      opts.probation_windows = config.root_probation_windows;
      opts.probation_clean_windows = config.root_probation_clean_windows;
      opts.registry = config.registry;
      opts.tracer = config.tracer;
      return std::unique_ptr<RootNodeLogic>(
          std::make_unique<core::DemaRootNode>(opts, transport, clock));
    }
    case SystemKind::kCentralExact:
    case SystemKind::kDesisMerge: {
      baselines::CollectingRootOptions opts;
      opts.id = root_id;
      opts.locals = locals;
      opts.quantiles = config.quantiles;
      if (config.kind == SystemKind::kCentralExact) {
        return std::unique_ptr<RootNodeLogic>(
            std::make_unique<baselines::CentralExactRootNode>(opts, transport,
                                                              clock));
      }
      return std::unique_ptr<RootNodeLogic>(
          std::make_unique<baselines::DesisMergeRootNode>(opts, transport,
                                                          clock));
    }
    case SystemKind::kTDigestCentral:
    case SystemKind::kTDigestDecentral: {
      baselines::TDigestOptions opts;
      opts.id = root_id;
      opts.root_id = root_id;
      opts.locals = locals;
      opts.quantiles = config.quantiles;
      opts.window_len_us = config.window_len_us;
      opts.compression = config.tdigest_compression;
      opts.mode = config.kind == SystemKind::kTDigestCentral
                      ? baselines::TDigestMode::kCentralized
                      : baselines::TDigestMode::kDecentralized;
      return std::unique_ptr<RootNodeLogic>(
          std::make_unique<baselines::TDigestRootNode>(opts, transport, clock));
    }
    case SystemKind::kQDigest: {
      baselines::QDigestOptions opts;
      opts.id = root_id;
      opts.root_id = root_id;
      opts.locals = locals;
      opts.quantiles = config.quantiles;
      opts.window_len_us = config.window_len_us;
      opts.domain_lo = config.qdigest_lo;
      opts.domain_hi = config.qdigest_hi;
      opts.universe_bits = config.qdigest_bits;
      opts.k = config.qdigest_k;
      return std::unique_ptr<RootNodeLogic>(
          std::make_unique<baselines::QDigestRootNode>(opts, transport, clock));
    }
  }
  return Status::InvalidArgument("unknown system kind");
}

Result<std::unique_ptr<LocalNodeLogic>> BuildLocalLogic(
    const SystemConfig& config, NodeId id, transport::Transport* transport,
    const Clock* clock) {
  DEMA_RETURN_NOT_OK(ValidateSystemConfig(config));
  const NodeId root_id = 0;
  if (id == root_id || id > config.num_locals) {
    return Status::InvalidArgument("local node id " + std::to_string(id) +
                                   " out of range 1.." +
                                   std::to_string(config.num_locals));
  }
  switch (config.kind) {
    case SystemKind::kDema: {
      core::DemaLocalNodeOptions opts;
      opts.id = id;
      opts.root_id = root_id;
      opts.window_len_us = config.window_len_us;
      opts.window_slide_us = config.window_slide_us;
      opts.initial_gamma = config.gamma;
      opts.sort_mode = config.sort_mode;
      opts.reply_codec = config.wire_codec;
      opts.registry = config.registry;
      opts.executor = config.executor;
      return std::unique_ptr<LocalNodeLogic>(
          std::make_unique<core::DemaLocalNode>(opts, transport, clock));
    }
    case SystemKind::kCentralExact:
    case SystemKind::kDesisMerge:
    case SystemKind::kTDigestCentral: {
      baselines::ForwardingLocalNodeOptions opts;
      opts.id = id;
      opts.root_id = root_id;
      opts.window_len_us = config.window_len_us;
      opts.batch_size = config.batch_size;
      opts.sort_locally = config.kind == SystemKind::kDesisMerge;
      opts.codec = config.wire_codec;
      return std::unique_ptr<LocalNodeLogic>(
          std::make_unique<baselines::ForwardingLocalNode>(opts, transport,
                                                           clock));
    }
    case SystemKind::kTDigestDecentral: {
      baselines::TDigestOptions opts;
      opts.id = id;
      opts.root_id = root_id;
      opts.locals = LocalIds(config);
      opts.quantiles = config.quantiles;
      opts.window_len_us = config.window_len_us;
      opts.compression = config.tdigest_compression;
      opts.mode = baselines::TDigestMode::kDecentralized;
      return std::unique_ptr<LocalNodeLogic>(
          std::make_unique<baselines::TDigestLocalNode>(opts, transport, clock));
    }
    case SystemKind::kQDigest: {
      baselines::QDigestOptions opts;
      opts.id = id;
      opts.root_id = root_id;
      opts.locals = LocalIds(config);
      opts.quantiles = config.quantiles;
      opts.window_len_us = config.window_len_us;
      opts.domain_lo = config.qdigest_lo;
      opts.domain_hi = config.qdigest_hi;
      opts.universe_bits = config.qdigest_bits;
      opts.k = config.qdigest_k;
      return std::unique_ptr<LocalNodeLogic>(
          std::make_unique<baselines::QDigestLocalNode>(opts, transport, clock));
    }
  }
  return Status::InvalidArgument("unknown system kind");
}

Result<System> BuildSystem(const SystemConfig& config, net::Network* network,
                           const Clock* clock, size_t root_inbox_capacity) {
  DEMA_RETURN_NOT_OK(ValidateSystemConfig(config));

  System system;
  system.root_id = 0;
  system.local_ids = LocalIds(config);
  DEMA_RETURN_NOT_OK(network->RegisterNode(system.root_id, root_inbox_capacity));
  for (NodeId id : system.local_ids) {
    DEMA_RETURN_NOT_OK(network->RegisterNode(id, /*inbox_capacity=*/0));
  }

  // One system-owned worker pool shared by every local node (the caller can
  // instead supply its own via config.executor, which wins).
  SystemConfig local_config = config;
  if (config.executor == nullptr && config.workers > 0) {
    exec::ExecutorOptions exec_opts;
    exec_opts.workers = config.workers;
    exec_opts.registry = config.registry;
    system.executor = std::make_shared<exec::Executor>(exec_opts);
    local_config.executor = system.executor.get();
  }

  DEMA_ASSIGN_OR_RETURN(system.root, BuildRootLogic(config, network, clock));
  for (NodeId id : system.local_ids) {
    DEMA_ASSIGN_OR_RETURN(auto local,
                          BuildLocalLogic(local_config, id, network, clock));
    system.locals.push_back(std::move(local));
  }
  return system;
}

}  // namespace dema::sim
