#include "sim/topology.h"

#include "baselines/central_root.h"
#include "baselines/forwarding_local.h"
#include "baselines/qdigest_agg.h"
#include "baselines/tdigest_agg.h"
#include "dema/local_node.h"
#include "dema/root_node.h"

namespace dema::sim {

const char* SystemKindToString(SystemKind kind) {
  switch (kind) {
    case SystemKind::kDema:
      return "Dema";
    case SystemKind::kCentralExact:
      return "Scotty";
    case SystemKind::kDesisMerge:
      return "Desis";
    case SystemKind::kTDigestCentral:
      return "Tdigest";
    case SystemKind::kTDigestDecentral:
      return "Tdigest-dec";
    case SystemKind::kQDigest:
      return "Qdigest";
  }
  return "?";
}

Result<System> BuildSystem(const SystemConfig& config, net::Network* network,
                           const Clock* clock, size_t root_inbox_capacity) {
  if (config.num_locals == 0) {
    return Status::InvalidArgument("need at least one local node");
  }
  if (config.window_len_us <= 0) {
    return Status::InvalidArgument("window length must be positive");
  }
  if (config.quantiles.empty()) {
    return Status::InvalidArgument("need at least one quantile");
  }
  stream::WindowSpec spec{config.window_len_us, config.window_slide_us};
  if (!spec.IsTumbling() && config.kind != SystemKind::kDema) {
    return Status::NotImplemented(
        "sliding windows are only supported by the Dema system");
  }

  System system;
  system.root_id = 0;
  for (size_t i = 0; i < config.num_locals; ++i) {
    system.local_ids.push_back(static_cast<NodeId>(i + 1));
  }
  DEMA_RETURN_NOT_OK(network->RegisterNode(system.root_id, root_inbox_capacity));
  for (NodeId id : system.local_ids) {
    DEMA_RETURN_NOT_OK(network->RegisterNode(id, /*inbox_capacity=*/0));
  }

  switch (config.kind) {
    case SystemKind::kDema: {
      core::DemaRootNodeOptions root_opts;
      root_opts.id = system.root_id;
      root_opts.locals = system.local_ids;
      root_opts.quantiles = config.quantiles;
      root_opts.initial_gamma = config.gamma;
      root_opts.adaptive_gamma = config.adaptive_gamma;
      root_opts.per_node_gamma = config.per_node_gamma;
      root_opts.use_naive_selection = config.naive_selection;
      system.root =
          std::make_unique<core::DemaRootNode>(root_opts, network, clock);
      for (NodeId id : system.local_ids) {
        core::DemaLocalNodeOptions opts;
        opts.id = id;
        opts.root_id = system.root_id;
        opts.window_len_us = config.window_len_us;
        opts.window_slide_us = config.window_slide_us;
        opts.initial_gamma = config.gamma;
        opts.sort_mode = config.sort_mode;
        opts.reply_codec = config.wire_codec;
        system.locals.push_back(
            std::make_unique<core::DemaLocalNode>(opts, network, clock));
      }
      break;
    }
    case SystemKind::kCentralExact:
    case SystemKind::kDesisMerge: {
      baselines::CollectingRootOptions root_opts;
      root_opts.id = system.root_id;
      root_opts.locals = system.local_ids;
      root_opts.quantiles = config.quantiles;
      if (config.kind == SystemKind::kCentralExact) {
        system.root = std::make_unique<baselines::CentralExactRootNode>(
            root_opts, network, clock);
      } else {
        system.root = std::make_unique<baselines::DesisMergeRootNode>(
            root_opts, network, clock);
      }
      for (NodeId id : system.local_ids) {
        baselines::ForwardingLocalNodeOptions opts;
        opts.id = id;
        opts.root_id = system.root_id;
        opts.window_len_us = config.window_len_us;
        opts.batch_size = config.batch_size;
        opts.sort_locally = config.kind == SystemKind::kDesisMerge;
        opts.codec = config.wire_codec;
        system.locals.push_back(
            std::make_unique<baselines::ForwardingLocalNode>(opts, network, clock));
      }
      break;
    }
    case SystemKind::kTDigestCentral:
    case SystemKind::kTDigestDecentral: {
      baselines::TDigestOptions opts;
      opts.root_id = system.root_id;
      opts.locals = system.local_ids;
      opts.quantiles = config.quantiles;
      opts.window_len_us = config.window_len_us;
      opts.compression = config.tdigest_compression;
      opts.mode = config.kind == SystemKind::kTDigestCentral
                      ? baselines::TDigestMode::kCentralized
                      : baselines::TDigestMode::kDecentralized;
      baselines::TDigestOptions root_opts = opts;
      root_opts.id = system.root_id;
      system.root =
          std::make_unique<baselines::TDigestRootNode>(root_opts, network, clock);
      for (NodeId id : system.local_ids) {
        if (config.kind == SystemKind::kTDigestCentral) {
          baselines::ForwardingLocalNodeOptions fwd;
          fwd.id = id;
          fwd.root_id = system.root_id;
          fwd.window_len_us = config.window_len_us;
          fwd.batch_size = config.batch_size;
          fwd.sort_locally = false;
          fwd.codec = config.wire_codec;
          system.locals.push_back(std::make_unique<baselines::ForwardingLocalNode>(
              fwd, network, clock));
        } else {
          baselines::TDigestOptions local_opts = opts;
          local_opts.id = id;
          system.locals.push_back(std::make_unique<baselines::TDigestLocalNode>(
              local_opts, network, clock));
        }
      }
      break;
    }
    case SystemKind::kQDigest: {
      baselines::QDigestOptions opts;
      opts.root_id = system.root_id;
      opts.locals = system.local_ids;
      opts.quantiles = config.quantiles;
      opts.window_len_us = config.window_len_us;
      opts.domain_lo = config.qdigest_lo;
      opts.domain_hi = config.qdigest_hi;
      opts.universe_bits = config.qdigest_bits;
      opts.k = config.qdigest_k;
      baselines::QDigestOptions root_opts = opts;
      root_opts.id = system.root_id;
      system.root =
          std::make_unique<baselines::QDigestRootNode>(root_opts, network, clock);
      for (NodeId id : system.local_ids) {
        baselines::QDigestOptions local_opts = opts;
        local_opts.id = id;
        system.locals.push_back(std::make_unique<baselines::QDigestLocalNode>(
            local_opts, network, clock));
      }
      break;
    }
  }
  return system;
}

}  // namespace dema::sim
