#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "gen/generator.h"
#include "net/network.h"
#include "sim/metrics.h"
#include "sim/node.h"
#include "sim/topology.h"
#include "stream/window.h"

namespace dema::sim {

/// \brief Per-local-node workload description for a run.
struct WorkloadConfig {
  /// Value distribution and pacing for each local node's generator; one entry
  /// per local node (entry i drives local_ids[i]).
  std::vector<gen::GeneratorConfig> generators;
  /// Number of window-lengths of event time to generate (for tumbling
  /// windows this is exactly the number of emitted windows; for sliding
  /// windows more windows close within the same horizon).
  uint64_t num_windows = 10;
  /// Window lifespan; must match the system's (the convenience runners copy
  /// it from the system config).
  DurationUs window_len_us = kMicrosPerSecond;
  /// Slide step; 0 = tumbling. Must match the system's.
  DurationUs window_slide_us = 0;
  /// Bounded out-of-order delivery: each event may arrive up to this much
  /// event time late (0 = perfectly ordered).
  DurationUs max_disorder_us = 0;
  /// Watermark hold-back. With allowed_lateness >= max_disorder no event is
  /// dropped and results stay exact; smaller values trade completeness for
  /// freshness (drops are counted by the window managers).
  DurationUs allowed_lateness_us = 0;

  /// Windows that fully close within the generated event-time horizon.
  uint64_t ExpectedWindows() const {
    stream::SlidingWindowAssigner assigner(
        stream::WindowSpec{window_len_us, window_slide_us});
    return assigner.ClosedUpTo(static_cast<TimestampUs>(num_windows) *
                               window_len_us);
  }
};

/// \brief Builds a homogeneous workload: every node runs the same
/// distribution with a distinct seed; node i's value scale is
/// \p scale_rates[i] (1.0 when the vector is shorter).
WorkloadConfig MakeUniformWorkload(size_t num_locals, uint64_t num_windows,
                                   double event_rate,
                                   const gen::DistributionParams& distribution,
                                   const std::vector<double>& scale_rates = {},
                                   uint64_t seed_base = 1000);

/// \brief Deterministic single-threaded driver (tests, accuracy experiments,
/// network-cost accounting).
///
/// Generates each window's events for every node, feeds them through the
/// node logic, then pumps messages until the system is quiescent. All
/// ordering is deterministic given the generator seeds.
class SyncDriver {
 public:
  /// Wires the driver; \p system nodes must be registered on \p network.
  SyncDriver(System* system, net::Network* network, const Clock* clock);

  /// Runs the whole workload; fails on the first node error.
  Status Run(const WorkloadConfig& workload);

  /// Outputs emitted by the root, in emission order.
  const std::vector<WindowOutput>& outputs() const { return outputs_; }

  /// When enabled before Run, keeps every generated event per window so
  /// tests can compute oracle quantiles.
  void set_record_events(bool record) { record_events_ = record; }
  /// Generated events per window id (only when recording was enabled).
  const std::vector<std::vector<Event>>& recorded_events() const {
    return recorded_;
  }

  /// Total events ingested.
  uint64_t events_ingested() const { return events_ingested_; }

  /// Busy seconds of local node \p i (work it performed on its own "CPU").
  double local_busy_seconds(size_t i) const { return local_busy_us_[i] / 1e6; }
  /// Busy seconds of the root node.
  double root_busy_seconds() const { return root_busy_us_ / 1e6; }
  /// Busy seconds of the busiest local node.
  double max_local_busy_seconds() const;

 private:
  /// Dispatches queued messages until every inbox is empty, charging each
  /// node's busy-time account.
  Status PumpMessages();
  /// Out-of-order mode (max_disorder_us > 0): chunked round-robin delivery
  /// with held-back watermarks.
  Status RunDisordered(const WorkloadConfig& workload);

  System* system_;
  net::Network* network_;
  const Clock* clock_;
  std::vector<WindowOutput> outputs_;
  std::vector<std::vector<Event>> recorded_;
  bool record_events_ = false;
  uint64_t events_ingested_ = 0;
  std::vector<double> local_busy_us_;
  double root_busy_us_ = 0;
};

/// \brief Options for the threaded driver.
struct ThreadedDriverOptions {
  /// Abort the run when the root has not finished within this wall time.
  DurationUs timeout_us = 120 * kMicrosPerSecond;
  /// Local nodes hand watermarks to the logic every this many events (window
  /// boundaries always force one).
  size_t watermark_every = 4096;
};

/// \brief Thread-per-node driver measuring throughput and latency.
///
/// Each local node runs its generator at full speed on its own thread
/// (backpressure from the root's bounded inbox throttles it to the
/// sustainable rate); the root runs on another thread. Wall-clock throughput
/// and close-to-emit latency come out in `RunMetrics`.
class ThreadedDriver {
 public:
  ThreadedDriver(System* system, net::Network* network, const Clock* clock,
                 ThreadedDriverOptions options = ThreadedDriverOptions());

  /// Runs the workload; fails on node errors or timeout.
  Result<RunMetrics> Run(const WorkloadConfig& workload);

 private:
  System* system_;
  net::Network* network_;
  const Clock* clock_;
  ThreadedDriverOptions options_;
};

/// \brief Convenience: builds the system + network, runs the threaded
/// driver, and returns the metrics (what most benches call).
Result<RunMetrics> RunThreaded(const SystemConfig& system_config,
                               const WorkloadConfig& workload,
                               size_t root_inbox_capacity = 1024);

/// \brief Convenience: builds the system + network and runs the synchronous
/// driver, returning metrics with network accounting (no meaningful wall
/// time). Used by network-cost experiments where determinism matters.
Result<RunMetrics> RunSync(const SystemConfig& system_config,
                           const WorkloadConfig& workload);

}  // namespace dema::sim
