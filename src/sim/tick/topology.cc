#include "sim/tick/topology.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

namespace dema::tick {

namespace {

/// splitmix64 finalizer: the deterministic hash behind ECMP path picks and
/// WAN latency spreads. Stable across platforms and runs.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t PairHash(NodeId src, NodeId dst) {
  return Mix((static_cast<uint64_t>(src) << 32) | dst);
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

Status BadSpec(const std::string& spec, const std::string& why) {
  return Status::InvalidArgument("bad topology spec '" + spec + "': " + why);
}

// Default per-tier link models. Access links match the flat fabric's 25 Gbit/s;
// the aggregation/core layers are faster (as real Clos fabrics are) and the
// WAN layer is slower and dominated by propagation delay.
LinkSpec AccessSpec(DurationUs latency_us) {
  return LinkSpec{25e9 / 8.0, latency_us};
}
LinkSpec AggSpec() { return LinkSpec{40e9 / 8.0, 10}; }
LinkSpec CoreSpec() { return LinkSpec{100e9 / 8.0, 5}; }
LinkSpec WanSpec(DurationUs latency_us) { return LinkSpec{10e9 / 8.0, latency_us}; }

}  // namespace

const char* LinkTierName(LinkTier tier) {
  switch (tier) {
    case LinkTier::kAccess:
      return "access";
    case LinkTier::kAgg:
      return "agg";
    case LinkTier::kCore:
      return "core";
    case LinkTier::kWan:
      return "wan";
  }
  return "unknown";
}

uint32_t Topology::AddLink(uint32_t a, uint32_t b, LinkTier tier,
                           const LinkSpec& spec) {
  uint32_t id = static_cast<uint32_t>(links_.size());
  links_.push_back(Link{a, b, tier, spec});
  link_ids_[{std::min(a, b), std::max(a, b)}] = id;
  return id;
}

uint32_t Topology::LinkBetween(uint32_t a, uint32_t b) const {
  return link_ids_.at({std::min(a, b), std::max(a, b)});
}

Result<std::shared_ptr<const Topology>> Topology::Build(const std::string& spec,
                                                        size_t num_endpoints) {
  if (num_endpoints < 2) {
    return BadSpec(spec, "need at least 2 endpoints (root + 1 local)");
  }
  // Split "kind:key=value,key=value".
  std::string kind = spec;
  std::string params;
  if (size_t colon = spec.find(':'); colon != std::string::npos) {
    kind = spec.substr(0, colon);
    params = spec.substr(colon + 1);
  }
  uint64_t fanout = 16;
  uint64_t k = 0;  // 0 = pick the smallest sufficient even k
  uint64_t regions = 4;
  uint64_t wan_latency_us = 5000;
  size_t start = 0;
  while (start < params.size()) {
    size_t end = params.find(',', start);
    if (end == std::string::npos) end = params.size();
    std::string token = params.substr(start, end - start);
    start = end + 1;
    if (token.empty()) continue;
    size_t eq = token.find('=');
    if (eq == std::string::npos) return BadSpec(spec, "expected key=value");
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    uint64_t v = 0;
    if (!ParseU64(value, &v) || v == 0) {
      return BadSpec(spec, "bad value for '" + key + "'");
    }
    if (key == "fanout") {
      if (kind != "tree") return BadSpec(spec, "'fanout' applies to tree only");
      fanout = v;
    } else if (key == "k") {
      if (kind != "fat-tree") return BadSpec(spec, "'k' applies to fat-tree only");
      if (v % 2 != 0) return BadSpec(spec, "fat-tree k must be even");
      k = v;
    } else if (key == "regions") {
      if (kind != "wan") return BadSpec(spec, "'regions' applies to wan only");
      regions = v;
    } else if (key == "wan-latency-us") {
      if (kind != "wan") {
        return BadSpec(spec, "'wan-latency-us' applies to wan only");
      }
      wan_latency_us = v;
    } else {
      return BadSpec(spec, "unknown key '" + key + "'");
    }
  }

  auto topo = std::shared_ptr<Topology>(new Topology());
  topo->num_endpoints_ = num_endpoints;
  const uint32_t E = static_cast<uint32_t>(num_endpoints);

  if (kind == "star") {
    topo->kind_ = Kind::kStar;
    topo->name_ = "star";
    const uint32_t hub = E;
    topo->num_switches_ = 1;
    topo->max_hops_ = 2;
    for (uint32_t v = 0; v < E; ++v) {
      topo->AddLink(v, hub, LinkTier::kAccess, AccessSpec(25));
    }
  } else if (kind == "tree") {
    topo->kind_ = Kind::kTree;
    topo->name_ = "tree:fanout=" + std::to_string(fanout);
    const uint32_t F = static_cast<uint32_t>(fanout);
    // Build switch levels bottom-up: endpoints group F-to-a-switch, then
    // switches group F-to-a-switch, until a single top switch remains.
    topo->parent_.resize(E);
    std::vector<uint32_t> level;
    for (uint32_t v = 0; v < E; ++v) level.push_back(v);
    uint32_t next_id = E;
    bool first_level = true;
    while (level.size() > 1) {
      uint32_t groups = static_cast<uint32_t>((level.size() + F - 1) / F);
      std::vector<uint32_t> next_level;
      for (uint32_t g = 0; g < groups; ++g) next_level.push_back(next_id + g);
      topo->parent_.resize(next_id + groups);
      for (size_t i = 0; i < level.size(); ++i) {
        uint32_t parent = next_level[i / F];
        topo->parent_[level[i]] = parent;
        LinkTier tier = first_level ? LinkTier::kAccess
                        : groups == 1 ? LinkTier::kCore
                                      : LinkTier::kAgg;
        LinkSpec spec = first_level ? AccessSpec(20)
                        : groups == 1 ? CoreSpec()
                                      : AggSpec();
        topo->AddLink(level[i], parent, tier, spec);
      }
      next_id += groups;
      level = std::move(next_level);
      first_level = false;
    }
    topo->parent_[level[0]] = level[0];  // top switch roots the tree
    topo->num_switches_ = next_id - E;
    // Depths: parents always have larger vertex ids, so one descending pass
    // resolves every chain.
    topo->depth_.assign(topo->parent_.size(), 0);
    for (uint32_t v = static_cast<uint32_t>(topo->parent_.size()); v-- > 0;) {
      if (topo->parent_[v] != v) topo->depth_[v] = topo->depth_[topo->parent_[v]] + 1;
    }
    topo->max_hops_ = 2 * topo->depth_[0];
  } else if (kind == "fat-tree") {
    topo->kind_ = Kind::kFatTree;
    if (k == 0) {
      k = 2;
      while (k * k * k / 4 < num_endpoints) k += 2;
    }
    if (k * k * k / 4 < num_endpoints) {
      return BadSpec(spec, "fat-tree k=" + std::to_string(k) + " supports only " +
                               std::to_string(k * k * k / 4) + " endpoints");
    }
    topo->name_ = "fat-tree:k=" + std::to_string(k);
    topo->k_ = static_cast<uint32_t>(k);
    const uint32_t K = topo->k_;
    const uint32_t half = K / 2;
    // Vertex layout after the endpoints: k*half edge switches, k*half agg
    // switches, then half*half core switches.
    const uint32_t edge0 = E;
    const uint32_t agg0 = E + K * half;
    const uint32_t core0 = E + 2 * K * half;
    topo->num_switches_ = 2 * K * half + half * half;
    topo->max_hops_ = 6;
    for (uint32_t h = 0; h < E; ++h) {
      topo->AddLink(h, edge0 + h / half, LinkTier::kAccess, AccessSpec(10));
    }
    for (uint32_t p = 0; p < K; ++p) {
      for (uint32_t i = 0; i < half; ++i) {
        for (uint32_t j = 0; j < half; ++j) {
          topo->AddLink(edge0 + p * half + i, agg0 + p * half + j,
                        LinkTier::kAgg, AggSpec());
        }
      }
      for (uint32_t j = 0; j < half; ++j) {
        for (uint32_t c = 0; c < half; ++c) {
          topo->AddLink(agg0 + p * half + j, core0 + j * half + c,
                        LinkTier::kCore, CoreSpec());
        }
      }
    }
  } else if (kind == "wan") {
    topo->kind_ = Kind::kWan;
    if (regions < 2) return BadSpec(spec, "wan needs at least 2 regions");
    topo->name_ = "wan:regions=" + std::to_string(regions) +
                  ",wan-latency-us=" + std::to_string(wan_latency_us);
    topo->regions_ = static_cast<uint32_t>(regions);
    const uint32_t R = topo->regions_;
    topo->num_switches_ = R;
    topo->max_hops_ = 3;
    for (uint32_t v = 0; v < E; ++v) {
      uint32_t region = v == 0 ? 0 : (v - 1) % R;
      topo->AddLink(v, E + region, LinkTier::kAccess, AccessSpec(20));
    }
    for (uint32_t a = 0; a < R; ++a) {
      for (uint32_t b = a + 1; b < R; ++b) {
        // Long-haul latency: base + a deterministic per-pair spread of up to
        // half the base, so regions are not equidistant.
        DurationUs latency = static_cast<DurationUs>(
            wan_latency_us +
            Mix((static_cast<uint64_t>(a) << 16) | b) % (wan_latency_us / 2 + 1));
        topo->AddLink(E + a, E + b, LinkTier::kWan, WanSpec(latency));
      }
    }
  } else {
    return BadSpec(spec, "unknown kind '" + kind +
                             "' (expected star, tree, fat-tree, or wan)");
  }
  return std::shared_ptr<const Topology>(topo);
}

Status Topology::Route(NodeId src, NodeId dst,
                       std::vector<uint32_t>* out) const {
  out->clear();
  if (src >= num_endpoints_ || dst >= num_endpoints_) {
    return Status::InvalidArgument("route endpoints out of range: " +
                                   std::to_string(src) + " -> " +
                                   std::to_string(dst));
  }
  if (src == dst) {
    return Status::InvalidArgument("route src == dst (" + std::to_string(src) +
                                   ")");
  }
  switch (kind_) {
    case Kind::kStar: {
      const uint32_t hub = static_cast<uint32_t>(num_endpoints_);
      out->push_back(LinkBetween(src, hub));
      out->push_back(LinkBetween(hub, dst));
      return Status::OK();
    }
    case Kind::kTree:
      return RouteTree(src, dst, out);
    case Kind::kFatTree:
      return RouteFatTree(src, dst, out);
    case Kind::kWan:
      return RouteWan(src, dst, out);
  }
  return Status::Internal("unreachable topology kind");
}

Status Topology::RouteTree(NodeId src, NodeId dst,
                           std::vector<uint32_t>* out) const {
  // Climb both sides to the lowest common ancestor; the route is src's
  // up-path followed by dst's down-path reversed.
  uint32_t a = src;
  uint32_t b = dst;
  std::vector<uint32_t> down;
  while (a != b) {
    if (depth_[a] >= depth_[b]) {
      out->push_back(LinkBetween(a, parent_[a]));
      a = parent_[a];
    } else {
      down.push_back(LinkBetween(b, parent_[b]));
      b = parent_[b];
    }
  }
  out->insert(out->end(), down.rbegin(), down.rend());
  return Status::OK();
}

Status Topology::RouteFatTree(NodeId src, NodeId dst,
                              std::vector<uint32_t>* out) const {
  const uint32_t E = static_cast<uint32_t>(num_endpoints_);
  const uint32_t half = k_ / 2;
  const uint32_t edge0 = E;
  const uint32_t agg0 = E + k_ * half;
  const uint32_t core0 = E + 2 * k_ * half;
  const uint32_t se = edge0 + src / half;
  const uint32_t de = edge0 + dst / half;
  out->push_back(LinkBetween(src, se));
  if (se == de) {
    out->push_back(LinkBetween(se, dst));
    return Status::OK();
  }
  // Deterministic ECMP: the (src, dst) hash picks the agg index (and the
  // core offset for cross-pod routes) once and forever.
  const uint64_t h = PairHash(src, dst);
  const uint32_t j = static_cast<uint32_t>(h % half);
  const uint32_t sp = (src / half) / half;
  const uint32_t dp = (dst / half) / half;
  if (sp == dp) {
    const uint32_t agg = agg0 + sp * half + j;
    out->push_back(LinkBetween(se, agg));
    out->push_back(LinkBetween(agg, de));
  } else {
    const uint32_t c = static_cast<uint32_t>((h >> 16) % half);
    const uint32_t core = core0 + j * half + c;
    const uint32_t sagg = agg0 + sp * half + j;
    const uint32_t dagg = agg0 + dp * half + j;
    out->push_back(LinkBetween(se, sagg));
    out->push_back(LinkBetween(sagg, core));
    out->push_back(LinkBetween(core, dagg));
    out->push_back(LinkBetween(dagg, de));
  }
  out->push_back(LinkBetween(de, dst));
  return Status::OK();
}

Status Topology::RouteWan(NodeId src, NodeId dst,
                          std::vector<uint32_t>* out) const {
  const uint32_t E = static_cast<uint32_t>(num_endpoints_);
  const uint32_t src_hub = E + (src == 0 ? 0 : (src - 1) % regions_);
  const uint32_t dst_hub = E + (dst == 0 ? 0 : (dst - 1) % regions_);
  out->push_back(LinkBetween(src, src_hub));
  if (src_hub != dst_hub) out->push_back(LinkBetween(src_hub, dst_hub));
  out->push_back(LinkBetween(dst_hub, dst));
  return Status::OK();
}

}  // namespace dema::tick
