#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace dema::tick {

/// \brief Central virtual-time event queue for discrete-event simulation.
///
/// A binary min-heap keyed by (due time, insertion sequence): entries with
/// equal due times pop in push order. That stable FIFO tie-break is the
/// determinism guarantee every simulation layer above relies on — two runs
/// that push the same entries in the same order pop them in the same order,
/// regardless of heap internals.
///
/// Not thread-safe; the owner (e.g. `net::Network`) serializes access under
/// its own lock. Header-only so the network fabric can embed one without a
/// link-time dependency on the sim layer.
template <typename T>
class TickQueue {
 public:
  /// Schedules \p value at virtual time \p due_us.
  void Push(uint64_t due_us, T value) {
    heap_.push_back(Entry{due_us, next_seq_++, std::move(value)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++pushed_;
    peak_size_ = std::max<uint64_t>(peak_size_, heap_.size());
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Due time of the earliest entry; queue must be non-empty.
  uint64_t NextDue() const { return heap_.front().due_us; }

  /// Pops the earliest entry (FIFO among equal due times).
  T Pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    ++popped_;
    return std::move(e.value);
  }

  /// Entries ever pushed / popped, and the high-water queue size.
  uint64_t pushed() const { return pushed_; }
  uint64_t popped() const { return popped_; }
  uint64_t peak_size() const { return peak_size_; }

 private:
  struct Entry {
    uint64_t due_us = 0;
    uint64_t seq = 0;
    T value;
  };
  /// std:: heap helpers build a max-heap; "less" here means "pops later".
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.due_us != b.due_us) return a.due_us > b.due_us;
      return a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  uint64_t next_seq_ = 0;
  uint64_t pushed_ = 0;
  uint64_t popped_ = 0;
  uint64_t peak_size_ = 0;
};

}  // namespace dema::tick
