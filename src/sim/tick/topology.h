#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/result.h"
#include "common/time.h"

namespace dema::tick {

/// \brief Which layer of the fabric a link belongs to; selects its default
/// bandwidth/latency model and labels the per-hop latency histograms
/// (`sim.hop_latency_us{tier=...}`).
enum class LinkTier : uint8_t {
  kAccess = 0,  ///< endpoint <-> first switch (edge / leaf / regional hub)
  kAgg = 1,     ///< aggregation layer inside a site
  kCore = 2,    ///< core / spine layer
  kWan = 3,     ///< inter-region long-haul
};

inline constexpr size_t kNumLinkTiers = 4;

/// Short label for a tier ("access", "agg", "core", "wan").
const char* LinkTierName(LinkTier tier);

/// \brief Bandwidth/latency model of one physical link.
struct LinkSpec {
  double bandwidth_bytes_per_sec = 25e9 / 8.0;
  DurationUs base_latency_us = 50;

  /// Virtual microseconds a message of \p bytes occupies this link
  /// (propagation + serialization), never less than 1 so event time always
  /// advances across a hop.
  uint64_t TransferTimeUs(uint64_t bytes) const {
    double us = static_cast<double>(base_latency_us) +
                static_cast<double>(bytes) / bandwidth_bytes_per_sec * 1e6;
    return us < 1.0 ? 1 : static_cast<uint64_t>(us);
  }
};

/// \brief One undirected link between two fabric vertices (endpoint or
/// switch). Both directions share the spec.
struct Link {
  uint32_t a = 0;
  uint32_t b = 0;
  LinkTier tier = LinkTier::kAccess;
  LinkSpec spec;
};

/// \brief A routed multi-hop network shape: endpoints (the registered node
/// ids 0..N) attached to an internal switch fabric, with per-link
/// bandwidth/latency models and deterministic routes.
///
/// Supported specs (options after ':' are comma-separated key=value):
///   - `star`                  one hub switch, every endpoint two hops away.
///   - `tree[:fanout=F]`       F-ary switch tree over the endpoints (def. 16).
///   - `fat-tree[:k=K]`        k-ary Clos fat-tree (k even, capacity k^3/4;
///                             the smallest sufficient k is chosen when
///                             omitted). Multi-path: the agg/core pick is a
///                             deterministic hash of (src, dst), so ECMP
///                             spreading never breaks run determinism.
///   - `wan[:regions=R,wan-latency-us=L]`
///                             R regional hubs full-meshed over long-haul
///                             links (def. 4 regions, ~L=5000us base with a
///                             deterministic per-pair spread); endpoints are
///                             assigned round-robin, endpoint 0 (the root)
///                             to region 0.
///
/// Switches are internal: they have no inbox and never appear as message
/// sources or destinations; they only add hop latency and (in the fabric's
/// event-driven mode) per-tier queueing observability.
class Topology {
 public:
  /// Builds a topology for endpoints 0..num_endpoints-1 from a spec string.
  static Result<std::shared_ptr<const Topology>> Build(const std::string& spec,
                                                       size_t num_endpoints);

  /// Canonical spec, e.g. "fat-tree:k=16".
  const std::string& name() const { return name_; }
  size_t num_endpoints() const { return num_endpoints_; }
  size_t num_switches() const { return num_switches_; }
  size_t num_links() const { return links_.size(); }
  const Link& link(uint32_t id) const { return links_[id]; }

  /// Appends the ordered link ids of the deterministic route from endpoint
  /// \p src to endpoint \p dst into \p out (cleared first). Fails when either
  /// id is not an endpoint or src == dst.
  Status Route(NodeId src, NodeId dst, std::vector<uint32_t>* out) const;

  /// Upper bound on hops of any route (2 for star, 6 for a fat-tree).
  size_t max_hops() const { return max_hops_; }

 private:
  enum class Kind { kStar, kTree, kFatTree, kWan };

  Topology() = default;

  /// Registers the undirected link a<->b, returning its id.
  uint32_t AddLink(uint32_t a, uint32_t b, LinkTier tier, const LinkSpec& spec);
  /// Link id between adjacent vertices (must exist).
  uint32_t LinkBetween(uint32_t a, uint32_t b) const;

  Status RouteTree(NodeId src, NodeId dst, std::vector<uint32_t>* out) const;
  Status RouteFatTree(NodeId src, NodeId dst, std::vector<uint32_t>* out) const;
  Status RouteWan(NodeId src, NodeId dst, std::vector<uint32_t>* out) const;

  Kind kind_ = Kind::kStar;
  std::string name_;
  size_t num_endpoints_ = 0;
  size_t num_switches_ = 0;
  size_t max_hops_ = 2;
  std::vector<Link> links_;
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> link_ids_;

  // tree: parent switch per vertex (endpoints first, then switches; the top
  // switch is its own parent), plus each vertex's depth (top = 0).
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> depth_;

  // fat-tree parameters.
  uint32_t k_ = 0;

  // wan: region per endpoint and hub vertex per region.
  uint32_t regions_ = 0;
};

}  // namespace dema::tick
