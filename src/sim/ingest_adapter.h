#pragma once

#include <map>
#include <memory>
#include <vector>

#include "net/message.h"
#include "sim/node.h"

namespace dema::sim {

/// \brief Turns any `LocalNodeLogic` into a network-fed edge node.
///
/// In the tiered topology (paper Figure 1), local nodes receive raw events
/// from their data-stream nodes over the network instead of from an
/// in-process generator. The adapter:
///
///  * unpacks `EventBatch` messages from registered stream-node children and
///    feeds each event to the wrapped logic's `OnEvent`;
///  * tracks each child's `TimeAdvance` progress and forwards the *minimum*
///    across children as the wrapped logic's watermark — the standard
///    multi-source watermark rule, which keeps windows correct even when
///    sensors drift apart in event time;
///  * passes every other message (candidate requests, γ updates, ...)
///    straight through to the wrapped logic.
///
/// Driver-side `OnEvent`/`OnWatermark` calls are forwarded unchanged, so an
/// adapted node still works in the flat (generator-fed) setup.
class IngestAdapter final : public LocalNodeLogic {
 public:
  /// Wraps \p inner; \p children are the stream-node ids feeding this edge.
  IngestAdapter(std::unique_ptr<LocalNodeLogic> inner,
                std::vector<NodeId> children);

  Status OnEvent(const Event& e) override { return inner_->OnEvent(e); }
  Status OnWatermark(TimestampUs watermark_us) override {
    return inner_->OnWatermark(watermark_us);
  }
  Status OnFinish(TimestampUs final_watermark_us) override;
  Status OnMessage(const net::Message& msg) override;

  /// Events ingested from stream-node batches.
  uint64_t events_ingested() const { return events_ingested_; }
  /// The wrapped logic (tests).
  LocalNodeLogic* inner() { return inner_.get(); }

 private:
  /// Minimum watermark across children (0 until every child reported).
  TimestampUs MinChildWatermark() const;

  std::unique_ptr<LocalNodeLogic> inner_;
  std::map<NodeId, TimestampUs> child_watermarks_;
  size_t children_finished_ = 0;
  uint64_t events_ingested_ = 0;
};

}  // namespace dema::sim
