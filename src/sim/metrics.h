#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/stats.h"
#include "dema/root_node.h"
#include "net/network.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace dema::sim {

/// \brief Everything a benchmark harness needs from one run.
struct RunMetrics {
  /// Total events ingested across all local nodes.
  uint64_t events_ingested = 0;
  /// Global windows emitted by the root.
  uint64_t windows_emitted = 0;
  /// Wall-clock run duration (first event to last result).
  double wall_seconds = 0;
  /// events_ingested / wall_seconds.
  double throughput_eps = 0;
  /// Window-result latency summary (local close -> root emit), from the
  /// exact per-sample recorder.
  LatencyRecorder::Summary latency;
  /// The same distribution from the registry histogram
  /// `root.window_latency_us` — the instrument the observability layer
  /// exports, surfaced here so bench figures report what the system records.
  obs::Histogram::Summary latency_hist;
  /// Wire traffic summed over all links.
  net::TrafficCounters network_total;
  /// Modelled transfer time over all links.
  double simulated_transfer_us = 0;
  /// Traffic broken down by message type.
  std::map<net::MessageType, net::TrafficCounters> by_type;
  /// Dema-only algorithm counters (zeroes for baselines).
  core::DemaRootStats dema;

  // --- simulated-parallel model (filled by RunSync) ---
  //
  // The synchronous driver executes every node on one OS thread but measures
  // each node's busy time separately. In a real deployment each node is its
  // own machine, so the pipeline's sustainable rate is bounded by the
  // busiest node: sim_throughput_eps = events / max(node busy time). This is
  // the throughput metric the figure harnesses report (the paper's cluster
  // has one machine per node; this box has one core total).
  /// events / busiest-node busy seconds; 0 when not measured.
  double sim_throughput_eps = 0;
  /// Root node busy seconds.
  double root_busy_seconds = 0;
  /// Busiest local node's busy seconds.
  double max_local_busy_seconds = 0;
  /// "root" or "local": which tier bounds the pipeline.
  const char* bottleneck = "";

  // --- observability handles ---
  //
  // The run's metrics registry and per-window trace recorder, kept alive for
  // post-run export (`demactl --metrics-out`, `obs::ObsToJson`). Null when
  // the caller supplied its own registry via `SystemConfig::registry`.
  std::shared_ptr<obs::Registry> registry;
  std::shared_ptr<obs::TraceRecorder> tracer;
};

/// \brief Renders the metrics as a compact JSON object (machine-readable
/// output for `demactl --json` and tooling).
std::string RunMetricsToJson(const RunMetrics& metrics);

}  // namespace dema::sim
