#include "sim/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "gen/disorder.h"
#include "stream/window.h"

namespace dema::sim {

WorkloadConfig MakeUniformWorkload(size_t num_locals, uint64_t num_windows,
                                   double event_rate,
                                   const gen::DistributionParams& distribution,
                                   const std::vector<double>& scale_rates,
                                   uint64_t seed_base) {
  WorkloadConfig workload;
  workload.num_windows = num_windows;
  for (size_t i = 0; i < num_locals; ++i) {
    gen::GeneratorConfig cfg;
    cfg.node = static_cast<NodeId>(i + 1);
    cfg.seed = seed_base + i * 7919;  // distinct streams per node
    cfg.distribution = distribution;
    cfg.event_rate = event_rate;
    cfg.scale_rate = i < scale_rates.size() ? scale_rates[i] : 1.0;
    workload.generators.push_back(cfg);
  }
  return workload;
}

// ---------------------------------------------------------------------------
// SyncDriver
// ---------------------------------------------------------------------------

SyncDriver::SyncDriver(System* system, net::Network* network, const Clock* clock)
    : system_(system), network_(network), clock_(clock) {
  (void)clock_;
}

namespace {
/// Microseconds spent in \p fn, measured on the monotonic clock.
template <typename Fn>
double TimedUs(Fn&& fn, Status* st) {
  auto start = std::chrono::steady_clock::now();
  *st = fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count();
}
}  // namespace

Status SyncDriver::PumpMessages() {
  bool progress = true;
  while (progress) {
    progress = false;
    net::Channel* root_inbox = network_->Inbox(system_->root_id);
    while (auto msg = root_inbox->TryPop()) {
      Status st;
      root_busy_us_ += TimedUs([&] { return system_->root->OnMessage(*msg); }, &st);
      DEMA_RETURN_NOT_OK(st);
      progress = true;
    }
    for (size_t i = 0; i < system_->locals.size(); ++i) {
      net::Channel* inbox = network_->Inbox(system_->local_ids[i]);
      while (auto msg = inbox->TryPop()) {
        Status st;
        local_busy_us_[i] +=
            TimedUs([&] { return system_->locals[i]->OnMessage(*msg); }, &st);
        DEMA_RETURN_NOT_OK(st);
        progress = true;
      }
    }
    if (!progress) {
      if (network_->pending_events() > 0) {
        // Event-driven delivery: every inbox drained, so advance virtual
        // time to the next tick and process its due hop events.
        progress = network_->AdvanceEvents() > 0;
      } else if (network_->delayed_in_flight() > 0) {
        // Every inbox drained but the fabric still holds delayed messages:
        // quiescence means the delay has "elapsed", so release them.
        progress = network_->FlushDelayed() > 0;
      }
    }
  }
  return Status::OK();
}

double SyncDriver::max_local_busy_seconds() const {
  double max_us = 0;
  for (double b : local_busy_us_) max_us = std::max(max_us, b);
  return max_us / 1e6;
}

Status SyncDriver::Run(const WorkloadConfig& workload) {
  if (workload.generators.size() != system_->locals.size()) {
    return Status::InvalidArgument("generator count != local node count");
  }
  if (workload.max_disorder_us > 0) return RunDisordered(workload);
  std::vector<std::unique_ptr<gen::StreamGenerator>> gens;
  for (const auto& cfg : workload.generators) {
    DEMA_ASSIGN_OR_RETURN(auto g, gen::StreamGenerator::Create(cfg));
    gens.push_back(std::move(g));
  }
  system_->root->SetResultCallback(
      [this](const WindowOutput& out) { outputs_.push_back(out); });

  if (record_events_) recorded_.assign(workload.num_windows, {});
  local_busy_us_.assign(system_->locals.size(), 0.0);
  root_busy_us_ = 0;

  for (uint64_t w = 0; w < workload.num_windows; ++w) {
    TimestampUs start = static_cast<TimestampUs>(w) * workload.window_len_us;
    TimestampUs end = start + workload.window_len_us;
    for (size_t i = 0; i < gens.size(); ++i) {
      std::vector<Event> events =
          gens[i]->GenerateWindow(start, workload.window_len_us);
      Status st;
      local_busy_us_[i] += TimedUs(
          [&]() -> Status {
            for (const Event& e : events) {
              DEMA_RETURN_NOT_OK(system_->locals[i]->OnEvent(e));
            }
            return Status::OK();
          },
          &st);
      DEMA_RETURN_NOT_OK(st);
      events_ingested_ += events.size();
      if (record_events_) {
        auto& rec = recorded_[w];
        rec.insert(rec.end(), events.begin(), events.end());
      }
    }
    for (size_t i = 0; i < system_->locals.size(); ++i) {
      Status st;
      local_busy_us_[i] +=
          TimedUs([&] { return system_->locals[i]->OnWatermark(end); }, &st);
      DEMA_RETURN_NOT_OK(st);
    }
    // Outside TimedUs: waiting for the worker pool is driver synchronization
    // (keeps threaded message sequences identical to inline runs), not node
    // busy time — a real ingest thread keeps ingesting while the pool sorts.
    for (size_t i = 0; i < system_->locals.size(); ++i) {
      DEMA_RETURN_NOT_OK(system_->locals[i]->Quiesce());
    }
    DEMA_RETURN_NOT_OK(PumpMessages());
  }
  TimestampUs final_ts =
      static_cast<TimestampUs>(workload.num_windows) * workload.window_len_us;
  for (size_t i = 0; i < system_->locals.size(); ++i) {
    Status st;
    local_busy_us_[i] +=
        TimedUs([&] { return system_->locals[i]->OnFinish(final_ts); }, &st);
    DEMA_RETURN_NOT_OK(st);
  }
  DEMA_RETURN_NOT_OK(PumpMessages());

  if (system_->root->windows_emitted() != workload.ExpectedWindows()) {
    return Status::Internal(
        "root emitted " + std::to_string(system_->root->windows_emitted()) +
        " windows, expected " + std::to_string(workload.ExpectedWindows()));
  }
  if (!system_->root->idle()) {
    return Status::Internal("root still has pending windows after run");
  }
  return Status::OK();
}

Status SyncDriver::RunDisordered(const WorkloadConfig& workload) {
  // Bounded-disorder mode: every node's stream is shuffled within
  // max_disorder_us of event time and watermarks are held back by the
  // allowed lateness. Chunked round-robin processing keeps nodes loosely in
  // step, as concurrent execution would.
  const TimestampUs horizon =
      static_cast<TimestampUs>(workload.num_windows) * workload.window_len_us;
  system_->root->SetResultCallback(
      [this](const WindowOutput& out) { outputs_.push_back(out); });
  local_busy_us_.assign(system_->locals.size(), 0.0);
  root_busy_us_ = 0;
  if (record_events_) recorded_.assign(workload.num_windows, {});

  std::vector<std::vector<Event>> streams;
  for (size_t i = 0; i < workload.generators.size(); ++i) {
    gen::DisorderedSource::Options opts;
    opts.max_disorder_us = workload.max_disorder_us;
    opts.seed = workload.generators[i].seed + 77'777;
    DEMA_ASSIGN_OR_RETURN(
        auto source, gen::DisorderedSource::Create(workload.generators[i], opts));
    streams.push_back(source->DeliverAll(horizon));
    if (record_events_) {
      for (const Event& e : streams.back()) {
        recorded_[static_cast<size_t>(e.timestamp / workload.window_len_us)]
            .push_back(e);
      }
    }
  }

  constexpr size_t kChunk = 512;
  std::vector<size_t> pos(streams.size(), 0);
  std::vector<TimestampUs> max_ts(streams.size(), 0);
  bool remaining = true;
  while (remaining) {
    remaining = false;
    for (size_t i = 0; i < streams.size(); ++i) {
      size_t end = std::min(streams[i].size(), pos[i] + kChunk);
      if (pos[i] >= end) continue;
      remaining = true;
      Status st;
      local_busy_us_[i] += TimedUs(
          [&]() -> Status {
            for (; pos[i] < end; ++pos[i]) {
              const Event& e = streams[i][pos[i]];
              max_ts[i] = std::max(max_ts[i], e.timestamp);
              DEMA_RETURN_NOT_OK(system_->locals[i]->OnEvent(e));
            }
            TimestampUs held_back =
                max_ts[i] > workload.allowed_lateness_us
                    ? max_ts[i] - workload.allowed_lateness_us
                    : 0;
            return system_->locals[i]->OnWatermark(held_back);
          },
          &st);
      DEMA_RETURN_NOT_OK(st);
      events_ingested_ += end > 0 ? 0 : 0;
    }
    DEMA_RETURN_NOT_OK(PumpMessages());
  }
  for (const auto& stream : streams) events_ingested_ += stream.size();

  for (size_t i = 0; i < system_->locals.size(); ++i) {
    Status st;
    local_busy_us_[i] +=
        TimedUs([&] { return system_->locals[i]->OnFinish(horizon); }, &st);
    DEMA_RETURN_NOT_OK(st);
  }
  DEMA_RETURN_NOT_OK(PumpMessages());

  if (system_->root->windows_emitted() != workload.ExpectedWindows()) {
    return Status::Internal(
        "root emitted " + std::to_string(system_->root->windows_emitted()) +
        " windows, expected " + std::to_string(workload.ExpectedWindows()));
  }
  if (!system_->root->idle()) {
    return Status::Internal("root still has pending windows after run");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ThreadedDriver
// ---------------------------------------------------------------------------

ThreadedDriver::ThreadedDriver(System* system, net::Network* network,
                               const Clock* clock, ThreadedDriverOptions options)
    : system_(system), network_(network), clock_(clock), options_(options) {}

Result<RunMetrics> ThreadedDriver::Run(const WorkloadConfig& workload) {
  if (workload.generators.size() != system_->locals.size()) {
    return Status::InvalidArgument("generator count != local node count");
  }
  if (network_->delivery_mode() == net::Network::DeliveryMode::kEvent) {
    return Status::InvalidArgument(
        "event-driven delivery needs a single-threaded driver to advance "
        "virtual time deterministically");
  }

  struct Shared {
    std::atomic<bool> stop{false};
    std::atomic<bool> root_done{false};
    std::atomic<uint64_t> windows_done{0};
    std::atomic<uint64_t> events_ingested{0};
    std::mutex error_mu;
    Status first_error;
    LatencyRecorder latency;
  } shared;

  auto report_error = [&](const Status& st) {
    {
      std::lock_guard<std::mutex> lock(shared.error_mu);
      if (shared.first_error.ok()) shared.first_error = st;
    }
    shared.stop.store(true);
    network_->CloseAll();
  };

  const uint64_t num_windows = workload.ExpectedWindows();
  obs::Histogram* latency_hist =
      network_->registry()->GetHistogram("root.window_latency_us");
  system_->root->SetResultCallback([&](const WindowOutput& out) {
    shared.latency.Record(out.latency_us);
    latency_hist->Record(
        out.latency_us < 0 ? 0 : static_cast<uint64_t>(out.latency_us));
    shared.windows_done.fetch_add(1);
  });

  auto wall_start = std::chrono::steady_clock::now();

  std::thread root_thread([&] {
    net::Channel* inbox = network_->Inbox(system_->root_id);
    while (!shared.stop.load(std::memory_order_relaxed)) {
      if (shared.windows_done.load(std::memory_order_relaxed) >= num_windows) {
        shared.root_done.store(true);
        return;
      }
      auto msg = inbox->PopFor(MillisUs(2));
      if (!msg) {
        // Idle beat: release any delayed fabric messages and let the root's
        // deadline machinery inspect stalled windows (no-op by default).
        network_->FlushDelayed();
        Status tick = system_->root->Tick();
        if (!tick.ok()) {
          report_error(tick);
          return;
        }
        continue;
      }
      Status st = system_->root->OnMessage(*msg);
      if (!st.ok()) {
        report_error(st);
        return;
      }
    }
    shared.root_done.store(true);
  });

  std::vector<std::thread> local_threads;
  for (size_t i = 0; i < system_->locals.size(); ++i) {
    local_threads.emplace_back([&, i] {
      auto gen_result = gen::StreamGenerator::Create(workload.generators[i]);
      if (!gen_result.ok()) {
        report_error(gen_result.status());
        return;
      }
      auto gen = std::move(gen_result).MoveValueUnsafe();
      LocalNodeLogic* logic = system_->locals[i].get();
      net::Channel* inbox = network_->Inbox(system_->local_ids[i]);
      stream::TumblingWindowAssigner assigner(workload.window_len_us);
      TimestampUs end_time =
          static_cast<TimestampUs>(workload.num_windows) * workload.window_len_us;

      auto fail_unless_shutdown = [&](const Status& st) {
        // Errors caused by the driver tearing the network down are benign.
        if (st.ok() || shared.stop.load() || shared.root_done.load()) return true;
        report_error(st);
        return false;
      };

      uint64_t count = 0;
      net::WindowId last_window = 0;
      while (gen->next_time_us() < end_time) {
        if (shared.stop.load(std::memory_order_relaxed) ||
            shared.root_done.load(std::memory_order_relaxed)) {
          return;  // aborted or root already satisfied
        }
        Event e = gen->Next();
        net::WindowId wid = assigner.AssignWindow(e.timestamp);
        if (wid != last_window) {
          if (!fail_unless_shutdown(logic->OnWatermark(e.timestamp))) return;
          last_window = wid;
        }
        if (!fail_unless_shutdown(logic->OnEvent(e))) return;
        ++count;
        if (count % options_.watermark_every == 0) {
          if (!fail_unless_shutdown(logic->OnWatermark(e.timestamp))) return;
          while (auto msg = inbox->TryPop()) {
            if (!fail_unless_shutdown(logic->OnMessage(*msg))) return;
          }
        }
      }
      shared.events_ingested.fetch_add(count);
      if (!fail_unless_shutdown(logic->OnFinish(end_time))) return;
      // Keep serving candidate requests until the root has everything.
      while (!shared.stop.load(std::memory_order_relaxed) &&
             !shared.root_done.load(std::memory_order_relaxed)) {
        auto msg = inbox->PopFor(MillisUs(2));
        if (!msg) continue;
        if (!fail_unless_shutdown(logic->OnMessage(*msg))) return;
      }
    });
  }

  // Watchdog: wall-clock timeout.
  TimestampUs deadline_us = options_.timeout_us;
  while (!shared.root_done.load() && !shared.stop.load()) {
    auto elapsed = std::chrono::steady_clock::now() - wall_start;
    if (std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count() >
        deadline_us) {
      report_error(Status::Internal(
          "threaded run timed out with " +
          std::to_string(shared.windows_done.load()) + "/" +
          std::to_string(num_windows) + " windows emitted"));
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  root_thread.join();
  auto wall_end = std::chrono::steady_clock::now();
  // Unblock any local stuck in a bounded Push, then collect the threads.
  shared.stop.store(true);
  network_->CloseAll();
  for (auto& t : local_threads) t.join();

  {
    std::lock_guard<std::mutex> lock(shared.error_mu);
    if (!shared.first_error.ok()) return shared.first_error;
  }

  RunMetrics metrics;
  metrics.events_ingested = shared.events_ingested.load();
  metrics.windows_emitted = shared.windows_done.load();
  metrics.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  metrics.throughput_eps =
      metrics.wall_seconds > 0
          ? static_cast<double>(metrics.events_ingested) / metrics.wall_seconds
          : 0;
  metrics.latency = shared.latency.Summarize();
  metrics.latency_hist = latency_hist->Summarize();
  auto total = network_->TotalStats();
  metrics.network_total = total.counters;
  metrics.simulated_transfer_us = total.simulated_transfer_us;
  metrics.by_type = network_->StatsByType();
  if (auto* dema_root = dynamic_cast<core::DemaRootNode*>(system_->root.get())) {
    metrics.dema = dema_root->stats();
  }
  return metrics;
}

// ---------------------------------------------------------------------------
// Convenience runners
// ---------------------------------------------------------------------------

namespace {
/// Run-owned observability state: when the caller did not supply a registry
/// or tracer, the run creates them and hands ownership out via RunMetrics so
/// callers can export after the system itself is gone.
struct RunObs {
  std::shared_ptr<obs::Registry> registry;
  std::shared_ptr<obs::TraceRecorder> tracer;

  /// Fills any null observability slots of \p config with run-owned sinks.
  explicit RunObs(SystemConfig* config) {
    if (config->registry == nullptr) {
      registry = std::make_shared<obs::Registry>();
      config->registry = registry.get();
    }
    if (config->tracer == nullptr) {
      tracer = std::make_shared<obs::TraceRecorder>();
      config->tracer = tracer.get();
    }
  }
};
}  // namespace

Result<RunMetrics> RunThreaded(const SystemConfig& system_config,
                               const WorkloadConfig& workload,
                               size_t root_inbox_capacity) {
  RealClock clock;
  SystemConfig config = system_config;
  RunObs run_obs(&config);
  net::Network::Options net_options;
  net_options.registry = config.registry;
  net::Network network(&clock, net_options);
  DEMA_ASSIGN_OR_RETURN(
      System system, BuildSystem(config, &network, &clock,
                                 root_inbox_capacity));
  WorkloadConfig load = workload;
  load.window_len_us = config.window_len_us;
  load.window_slide_us = config.window_slide_us;
  ThreadedDriver driver(&system, &network, &clock);
  DEMA_ASSIGN_OR_RETURN(RunMetrics metrics, driver.Run(load));
  metrics.registry = run_obs.registry;
  metrics.tracer = run_obs.tracer;
  return metrics;
}

Result<RunMetrics> RunSync(const SystemConfig& system_config,
                           const WorkloadConfig& workload) {
  RealClock clock;
  SystemConfig config = system_config;
  RunObs run_obs(&config);
  net::Network::Options net_options;
  net_options.registry = config.registry;
  net::Network network(&clock, net_options);
  DEMA_ASSIGN_OR_RETURN(System system,
                        BuildSystem(config, &network, &clock,
                                    /*root_inbox_capacity=*/0));
  WorkloadConfig load = workload;
  load.window_len_us = config.window_len_us;
  load.window_slide_us = config.window_slide_us;
  SyncDriver driver(&system, &network, &clock);
  auto wall_start = std::chrono::steady_clock::now();
  DEMA_RETURN_NOT_OK(driver.Run(load));
  auto wall_end = std::chrono::steady_clock::now();

  RunMetrics metrics;
  metrics.events_ingested = driver.events_ingested();
  metrics.windows_emitted = system.root->windows_emitted();
  metrics.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  metrics.throughput_eps =
      metrics.wall_seconds > 0
          ? static_cast<double>(metrics.events_ingested) / metrics.wall_seconds
          : 0;
  LatencyRecorder latency;
  obs::Histogram* latency_hist =
      config.registry->GetHistogram("root.window_latency_us");
  for (const WindowOutput& out : driver.outputs()) {
    latency.Record(out.latency_us);
    latency_hist->Record(
        out.latency_us < 0 ? 0 : static_cast<uint64_t>(out.latency_us));
  }
  metrics.latency = latency.Summarize();
  metrics.latency_hist = latency_hist->Summarize();
  auto total = network.TotalStats();
  metrics.network_total = total.counters;
  metrics.simulated_transfer_us = total.simulated_transfer_us;
  metrics.by_type = network.StatsByType();
  if (auto* dema_root = dynamic_cast<core::DemaRootNode*>(system.root.get())) {
    metrics.dema = dema_root->stats();
  }
  metrics.root_busy_seconds = driver.root_busy_seconds();
  metrics.max_local_busy_seconds = driver.max_local_busy_seconds();
  double bottleneck_seconds =
      std::max(metrics.root_busy_seconds, metrics.max_local_busy_seconds);
  metrics.sim_throughput_eps =
      bottleneck_seconds > 0
          ? static_cast<double>(metrics.events_ingested) / bottleneck_seconds
          : 0;
  metrics.bottleneck =
      metrics.root_busy_seconds >= metrics.max_local_busy_seconds ? "root"
                                                                  : "local";
  metrics.registry = run_obs.registry;
  metrics.tracer = run_obs.tracer;
  return metrics;
}

}  // namespace dema::sim
