#include "sim/scenario.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "dema/root_node.h"
#include "gen/generator.h"
#include "stream/quantile.h"

namespace dema::sim {

namespace {

/// Microseconds spent in \p fn, measured on the monotonic clock.
template <typename Fn>
double TimedUs(Fn&& fn, Status* st) {
  auto start = std::chrono::steady_clock::now();
  *st = fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count();
}

}  // namespace

Result<ScenarioReport> RunScenario(const SystemConfig& system_config,
                                   const WorkloadConfig& workload,
                                   const ScenarioOptions& options) {
  stream::WindowSpec spec{system_config.window_len_us,
                          system_config.window_slide_us};
  if (!spec.IsTumbling()) {
    return Status::InvalidArgument("scenarios support only tumbling windows");
  }
  if (workload.generators.size() != system_config.num_locals) {
    return Status::InvalidArgument("generator count != local node count");
  }
  const FaultPlan& plan = options.faults;
  if (!plan.crashes.empty() || !plan.partitions.empty() ||
      !plan.tampers.empty()) {
    return Status::InvalidArgument(
        "scenarios take only probabilistic faults (drop/dup/delay/corrupt); "
        "scheduled crashes, partitions, and tampers belong to RunChaos");
  }
  const bool faulty = plan.drop_prob > 0 || plan.duplicate_prob > 0 ||
                      plan.delay_us_max > 0 || plan.corrupt_prob > 0;
  if (faulty && system_config.kind != SystemKind::kDema) {
    return Status::InvalidArgument(
        "faulty scenarios support only the Dema system");
  }
  if (faulty && plan.deadline_ticks == 0) {
    return Status::InvalidArgument(
        "faulty scenarios need deadline_ticks > 0 (recovery depends on the "
        "root's deadline machinery)");
  }

  RealClock clock;
  obs::Registry registry;
  SystemConfig config = system_config;
  config.registry = &registry;
  if (faulty) {
    config.root_deadline_ticks = plan.deadline_ticks;
    config.root_max_retries = plan.max_retries;
    config.root_quarantine_strikes = plan.quarantine_strikes;
    config.root_probation_windows = plan.probation_windows;
    config.root_probation_clean_windows = plan.probation_clean_windows;
  }

  net::Network::Options net_options;
  net_options.registry = &registry;
  net_options.delivery = net::Network::DeliveryMode::kEvent;
  net_options.drop_prob = plan.drop_prob;
  net_options.duplicate_prob = plan.duplicate_prob;
  net_options.delay_us_max = plan.delay_us_max;
  net_options.delay_prob = plan.delay_prob;
  net_options.corrupt_prob = plan.corrupt_prob;
  net_options.fault_seed = plan.seed;
  ScenarioReport report;
  if (options.topology != "flat") {
    DEMA_ASSIGN_OR_RETURN(
        net_options.topology,
        tick::Topology::Build(options.topology, config.num_locals + 1));
    report.topology = net_options.topology->name();
  } else {
    report.topology = "flat";
  }
  report.num_locals = config.num_locals;
  net::Network network(&clock, net_options);

  DEMA_ASSIGN_OR_RETURN(System system, BuildSystem(config, &network, &clock,
                                                   /*root_inbox_capacity=*/0));

  std::vector<std::unique_ptr<gen::StreamGenerator>> gens;
  for (const auto& cfg : workload.generators) {
    DEMA_ASSIGN_OR_RETURN(auto g, gen::StreamGenerator::Create(cfg));
    gens.push_back(std::move(g));
  }

  system.root->SetResultCallback([&report](const WindowOutput& out) {
    report.outputs.push_back(out);
  });

  const uint64_t num_windows = workload.num_windows;
  const DurationUs window_len = config.window_len_us;
  std::vector<std::vector<double>> fed(num_windows);
  std::vector<double> local_busy_us(system.locals.size(), 0.0);
  double root_busy_us = 0;

  // Single-threaded pump to quiescence: drain every inbox, then advance the
  // tick queue by one virtual instant, until both are empty.
  auto pump_all = [&]() -> Status {
    bool progress = true;
    while (progress) {
      progress = false;
      net::Channel* root_inbox = network.Inbox(system.root_id);
      while (auto msg = root_inbox->TryPop()) {
        Status st;
        root_busy_us +=
            TimedUs([&] { return system.root->OnMessage(*msg); }, &st);
        DEMA_RETURN_NOT_OK(st);
        progress = true;
      }
      for (size_t i = 0; i < system.locals.size(); ++i) {
        net::Channel* inbox = network.Inbox(system.local_ids[i]);
        while (auto msg = inbox->TryPop()) {
          Status st;
          local_busy_us[i] +=
              TimedUs([&] { return system.locals[i]->OnMessage(*msg); }, &st);
          DEMA_RETURN_NOT_OK(st);
          progress = true;
        }
      }
      if (!progress && network.pending_events() > 0) {
        progress = network.AdvanceEvents() > 0;
      }
    }
    return Status::OK();
  };

  auto wall_start = std::chrono::steady_clock::now();
  for (uint64_t w = 0; w < num_windows; ++w) {
    TimestampUs start = static_cast<TimestampUs>(w) * window_len;
    TimestampUs end = start + window_len;
    for (size_t i = 0; i < gens.size(); ++i) {
      std::vector<Event> events = gens[i]->GenerateWindow(start, window_len);
      Status st;
      local_busy_us[i] += TimedUs(
          [&]() -> Status {
            for (const Event& e : events) {
              DEMA_RETURN_NOT_OK(system.locals[i]->OnEvent(e));
            }
            return Status::OK();
          },
          &st);
      DEMA_RETURN_NOT_OK(st);
      report.events_ingested += events.size();
      if (options.check_oracle) {
        for (const Event& e : events) fed[w].push_back(e.value);
      }
    }
    for (size_t i = 0; i < system.locals.size(); ++i) {
      Status st;
      local_busy_us[i] +=
          TimedUs([&] { return system.locals[i]->OnWatermark(end); }, &st);
      DEMA_RETURN_NOT_OK(st);
    }
    for (size_t i = 0; i < system.locals.size(); ++i) {
      DEMA_RETURN_NOT_OK(system.locals[i]->Quiesce());
    }
    DEMA_RETURN_NOT_OK(pump_all());
    DEMA_RETURN_NOT_OK(system.root->Tick());
    DEMA_RETURN_NOT_OK(pump_all());
  }

  TimestampUs final_ts = static_cast<TimestampUs>(num_windows) * window_len;
  for (size_t i = 0; i < system.locals.size(); ++i) {
    Status st;
    local_busy_us[i] +=
        TimedUs([&] { return system.locals[i]->OnFinish(final_ts); }, &st);
    DEMA_RETURN_NOT_OK(st);
  }
  auto* dema_root = dynamic_cast<core::DemaRootNode*>(system.root.get());
  if (dema_root != nullptr && num_windows > 0) {
    dema_root->NoteWindowHorizon(num_windows - 1);
  }

  // Drain: tick until the retry/degrade budget of every pending window is
  // provably exhausted (same bound as the chaos harness).
  const uint64_t max_drain_ticks =
      plan.deadline_ticks *
          (uint64_t{2} << std::min<uint32_t>(plan.max_retries, 32)) +
      plan.deadline_ticks + 64;
  for (uint64_t i = 0; i < max_drain_ticks; ++i) {
    DEMA_RETURN_NOT_OK(pump_all());
    if (system.root->idle() && network.pending_events() == 0) break;
    DEMA_RETURN_NOT_OK(system.root->Tick());
  }
  auto wall_end = std::chrono::steady_clock::now();
  report.root_idle = system.root->idle();

  // Verdict per window against the oracle over the fed events — the same
  // ground truth a flat-topology run is checked against, so "exact" here
  // means "matches the flat-topology oracle".
  std::map<net::WindowId, const WindowOutput*> by_window;
  for (const WindowOutput& out : report.outputs) {
    by_window.emplace(out.window_id, &out);
  }
  for (uint64_t w = 0; w < num_windows; ++w) {
    auto it = by_window.find(w);
    if (it == by_window.end()) {
      ++report.missing_windows;
      if (report.violation.empty()) {
        report.violation = "window " + std::to_string(w) + " was never emitted";
      }
      continue;
    }
    const WindowOutput& out = *it->second;
    if (out.degraded) {
      ++report.degraded_windows;
      if (out.degrade_cause.empty() && report.violation.empty()) {
        report.violation =
            "window " + std::to_string(w) + " degraded without a cause";
      }
      continue;
    }
    if (!options.check_oracle) {
      ++report.exact_windows;
      continue;
    }
    bool matches = out.global_size == fed[w].size();
    if (matches && !fed[w].empty()) {
      for (size_t qi = 0; qi < config.quantiles.size() && matches; ++qi) {
        DEMA_ASSIGN_OR_RETURN(
            double oracle,
            stream::ExactQuantileValues(fed[w], config.quantiles[qi]));
        matches = qi < out.values.size() && out.values[qi] == oracle;
      }
    }
    if (matches) {
      ++report.exact_windows;
    } else {
      ++report.mismatched_windows;
      if (report.violation.empty()) {
        report.violation = "window " + std::to_string(w) +
                           " emitted as exact but mismatches the oracle";
      }
    }
  }
  if (!report.root_idle && report.violation.empty()) {
    report.violation = "root still has pending windows after the drain";
  }

  report.messages_dropped = network.messages_dropped();
  report.duplicates_injected = network.duplicates_injected();
  report.messages_delayed = network.messages_delayed();
  report.messages_corrupted = network.messages_corrupted();
  report.event_queue_peak = network.event_queue_peak();
  report.virtual_time_us = network.virtual_now_us();
  auto total = network.TotalStats();
  report.network_total = total.counters;
  report.simulated_transfer_us = total.simulated_transfer_us;
  report.counters = registry.CounterValues();
  if (auto tick_it = report.counters.find("sim.ticks");
      tick_it != report.counters.end()) {
    report.sim_ticks = tick_it->second;
  }
  if (auto ev_it = report.counters.find("sim.events");
      ev_it != report.counters.end()) {
    report.sim_events = ev_it->second;
  }

  report.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  report.throughput_eps =
      report.wall_seconds > 0
          ? static_cast<double>(report.events_ingested) / report.wall_seconds
          : 0;
  report.root_busy_seconds = root_busy_us / 1e6;
  double max_local_us = 0;
  for (double b : local_busy_us) max_local_us = std::max(max_local_us, b);
  report.max_local_busy_seconds = max_local_us / 1e6;
  double bottleneck_seconds =
      std::max(report.root_busy_seconds, report.max_local_busy_seconds);
  report.sim_throughput_eps =
      bottleneck_seconds > 0
          ? static_cast<double>(report.events_ingested) / bottleneck_seconds
          : 0;
  return report;
}

std::string DescribeScenarioDiff(const ScenarioReport& a,
                                 const ScenarioReport& b) {
  std::ostringstream out;
  auto field = [&out](const char* name, uint64_t va, uint64_t vb) {
    if (va != vb) {
      out << name << ": " << va << " vs " << vb;
      return false;
    }
    return true;
  };
  if (a.topology != b.topology) {
    return "topology: " + a.topology + " vs " + b.topology;
  }
  if (a.outputs.size() != b.outputs.size()) {
    out << "output count: " << a.outputs.size() << " vs " << b.outputs.size();
    return out.str();
  }
  for (size_t i = 0; i < a.outputs.size(); ++i) {
    const WindowOutput& x = a.outputs[i];
    const WindowOutput& y = b.outputs[i];
    if (x.window_id != y.window_id || x.global_size != y.global_size ||
        x.degraded != y.degraded || x.degrade_cause != y.degrade_cause ||
        x.rank_error_bound != y.rank_error_bound || x.values != y.values) {
      out << "output " << i << " (window " << x.window_id << ") differs";
      return out.str();
    }
  }
  if (!field("exact_windows", a.exact_windows, b.exact_windows) ||
      !field("degraded_windows", a.degraded_windows, b.degraded_windows) ||
      !field("mismatched_windows", a.mismatched_windows,
             b.mismatched_windows) ||
      !field("missing_windows", a.missing_windows, b.missing_windows) ||
      !field("sim_ticks", a.sim_ticks, b.sim_ticks) ||
      !field("sim_events", a.sim_events, b.sim_events) ||
      !field("event_queue_peak", a.event_queue_peak, b.event_queue_peak) ||
      !field("virtual_time_us", a.virtual_time_us, b.virtual_time_us) ||
      !field("messages_dropped", a.messages_dropped, b.messages_dropped) ||
      !field("duplicates_injected", a.duplicates_injected,
             b.duplicates_injected) ||
      !field("messages_delayed", a.messages_delayed, b.messages_delayed) ||
      !field("messages_corrupted", a.messages_corrupted,
             b.messages_corrupted)) {
    return out.str();
  }
  if (a.counters != b.counters) {
    for (const auto& [name, value] : a.counters) {
      auto it = b.counters.find(name);
      if (it == b.counters.end()) return "counter " + name + " missing in b";
      if (it->second != value) {
        out << "counter " << name << ": " << value << " vs " << it->second;
        return out.str();
      }
    }
    return "counter set differs";
  }
  return "";
}

}  // namespace dema::sim
