#include "sim/stream_node.h"

#include <algorithm>

namespace dema::sim {

StreamNode::StreamNode(StreamNodeOptions options, transport::Transport* transport,
                       std::unique_ptr<gen::StreamGenerator> generator)
    : options_(options), transport_(transport), generator_(std::move(generator)) {
  if (options_.batch_size == 0) options_.batch_size = 1;
}

Result<std::unique_ptr<StreamNode>> StreamNode::Create(StreamNodeOptions options,
                                                       transport::Transport* transport) {
  options.generator.node = options.id;  // events carry the sensor's identity
  DEMA_ASSIGN_OR_RETURN(auto generator,
                        gen::StreamGenerator::Create(options.generator));
  return std::unique_ptr<StreamNode>(
      new StreamNode(options, transport, std::move(generator)));
}

Status StreamNode::SendBatch(std::vector<Event> events) {
  if (events.empty()) return Status::OK();
  net::EventBatch batch;
  batch.sorted = false;  // raw sensor order = event-time order, not value order
  batch.codec = options_.codec;
  batch.events = std::move(events);
  return transport_->Send(net::MakeMessage(net::MessageType::kEventBatch,
                                         options_.id, options_.parent, batch));
}

Status StreamNode::SendTimeAdvance(TimestampUs watermark_us, bool final_marker) {
  net::TimeAdvance advance;
  advance.watermark_us = watermark_us;
  advance.final_marker = final_marker;
  return transport_->Send(net::MakeMessage(net::MessageType::kTimeAdvance,
                                         options_.id, options_.parent, advance));
}

Status StreamNode::PumpInterval(TimestampUs start_us, DurationUs len_us) {
  std::vector<Event> events = generator_->GenerateWindow(start_us, len_us);
  events_produced_ += events.size();
  for (size_t begin = 0; begin < events.size(); begin += options_.batch_size) {
    size_t end = std::min(events.size(), begin + options_.batch_size);
    DEMA_RETURN_NOT_OK(SendBatch(
        std::vector<Event>(events.begin() + begin, events.begin() + end)));
  }
  return SendTimeAdvance(start_us + len_us, /*final_marker=*/false);
}

Status StreamNode::Finish(TimestampUs final_watermark_us) {
  return SendTimeAdvance(final_watermark_us, /*final_marker=*/true);
}

}  // namespace dema::sim
