#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "dema/local_node.h"
#include "dema/relay_node.h"
#include "dema/root_node.h"
#include "net/network.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/driver.h"

namespace dema::sim {

/// \brief Configuration of a hierarchical (root -> relays -> locals) Dema
/// deployment.
struct TreeConfig {
  /// Relays directly under the root.
  size_t num_relays = 2;
  /// Leaf local nodes under each relay.
  size_t locals_per_relay = 3;
  DurationUs window_len_us = kMicrosPerSecond;
  std::vector<double> quantiles = {0.5};
  uint64_t gamma = 1'000;
  /// Shared metrics registry for the top root and the leaf locals (relays
  /// keep private registries: their inner root halves would otherwise write
  /// the same unscoped `dema.*` names as the real root). Null: each node
  /// owns its own.
  obs::Registry* registry = nullptr;
  /// Span sink for the top root's window traces. Null: spans are dropped.
  obs::TraceRecorder* tracer = nullptr;
};

/// \brief A built aggregation tree. Node ids: root = 0, relays = 1..R,
/// leaf locals = R+1 .. R+R*L (relay-major).
struct TreeSystem {
  NodeId root_id = 0;
  std::unique_ptr<core::DemaRootNode> root;
  std::vector<NodeId> relay_ids;
  std::vector<std::unique_ptr<core::DemaRelayNode>> relays;
  std::vector<NodeId> local_ids;
  std::vector<std::unique_ptr<core::DemaLocalNode>> locals;
};

/// \brief Builds the two-level tree on \p network. The root sees the relays
/// as its "local nodes"; each relay aggregates its leaves — Dema's protocol
/// composes through the middle tier unchanged.
Result<TreeSystem> BuildTreeSystem(const TreeConfig& config, net::Network* network,
                                   const Clock* clock);

/// \brief Deterministic driver for tree topologies: feeds leaf locals from
/// generators and pumps every tier until quiescent.
class TreeSyncDriver {
 public:
  TreeSyncDriver(TreeSystem* tree, net::Network* network, const Clock* clock);

  /// Runs the workload (one generator per leaf, leaf order).
  Status Run(const WorkloadConfig& workload);

  /// Outputs emitted by the root, in emission order.
  const std::vector<WindowOutput>& outputs() const { return outputs_; }
  /// Total events ingested across leaves.
  uint64_t events_ingested() const { return events_ingested_; }

 private:
  Status PumpMessages();

  TreeSystem* tree_;
  net::Network* network_;
  const Clock* clock_;
  std::vector<WindowOutput> outputs_;
  uint64_t events_ingested_ = 0;
};

}  // namespace dema::sim
