#include "sim/chaos.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>

#include "common/rng.h"
#include "dema/local_node.h"
#include "dema/root_node.h"
#include "gen/generator.h"
#include "net/serializer.h"
#include "stream/quantile.h"

namespace dema::sim {

namespace {

std::vector<std::string> SplitList(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseF64(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

Status BadSpec(const std::string& token, const char* why) {
  return Status::InvalidArgument("bad fault-schedule entry '" + token + "': " +
                                 why);
}

/// `NODE@WINDOW[+DOWN]`, e.g. `2@3+2` = node 2 crashes at window 3 for 2
/// windows.
Status ParseCrash(const std::string& token, const std::string& value,
                  CrashEvent* out) {
  size_t at = value.find('@');
  if (at == std::string::npos) return BadSpec(token, "expected NODE@WINDOW");
  uint64_t node = 0;
  if (!ParseU64(value.substr(0, at), &node)) return BadSpec(token, "bad node");
  std::string rest = value.substr(at + 1);
  size_t plus = rest.find('+');
  uint64_t window = 0, down = 1;
  if (!ParseU64(plus == std::string::npos ? rest : rest.substr(0, plus),
                &window)) {
    return BadSpec(token, "bad window");
  }
  if (plus != std::string::npos &&
      (!ParseU64(rest.substr(plus + 1), &down) || down == 0)) {
    return BadSpec(token, "bad down-window count");
  }
  out->node = static_cast<NodeId>(node);
  out->at_window = window;
  out->down_windows = down;
  return Status::OK();
}

/// `A-B@FROM..UNTIL`, e.g. `1-0@2..4` = link 1<->2 blocked for windows 2, 3.
Status ParsePartition(const std::string& token, const std::string& value,
                      PartitionEvent* out) {
  size_t dash = value.find('-');
  size_t at = value.find('@');
  if (dash == std::string::npos || at == std::string::npos || dash > at) {
    return BadSpec(token, "expected A-B@FROM..UNTIL");
  }
  uint64_t a = 0, b = 0;
  if (!ParseU64(value.substr(0, dash), &a) ||
      !ParseU64(value.substr(dash + 1, at - dash - 1), &b)) {
    return BadSpec(token, "bad node pair");
  }
  std::string range = value.substr(at + 1);
  size_t dots = range.find("..");
  if (dots == std::string::npos) return BadSpec(token, "expected FROM..UNTIL");
  uint64_t from = 0, until = 0;
  if (!ParseU64(range.substr(0, dots), &from) ||
      !ParseU64(range.substr(dots + 2), &until) || until <= from) {
    return BadSpec(token, "bad window range");
  }
  out->a = static_cast<NodeId>(a);
  out->b = static_cast<NodeId>(b);
  out->from_window = from;
  out->until_window = until;
  return Status::OK();
}

}  // namespace

Result<FaultPlan> ParseFaultSchedule(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& token : SplitList(spec, ',')) {
    if (token.empty()) continue;
    size_t eq = token.find('=');
    if (eq == std::string::npos) return BadSpec(token, "expected key=value");
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "drop" || key == "dup" || key == "delay-prob" ||
        key == "corrupt" || key == "tamper-prob") {
      double p = 0;
      if (!ParseF64(value, &p) || p < 0 || p >= 1) {
        return BadSpec(token, "probability must be in [0, 1)");
      }
      if (key == "drop") {
        plan.drop_prob = p;
      } else if (key == "dup") {
        plan.duplicate_prob = p;
      } else if (key == "corrupt") {
        plan.corrupt_prob = p;
      } else if (key == "tamper-prob") {
        plan.tamper_prob = p;
      } else {
        plan.delay_prob = p;
      }
    } else if (key == "delay-us") {
      uint64_t us = 0;
      if (!ParseU64(value, &us)) return BadSpec(token, "bad microseconds");
      plan.delay_us_max = static_cast<DurationUs>(us);
    } else if (key == "seed") {
      if (!ParseU64(value, &plan.seed)) return BadSpec(token, "bad seed");
    } else if (key == "deadline") {
      if (!ParseU64(value, &plan.deadline_ticks)) {
        return BadSpec(token, "bad tick count");
      }
    } else if (key == "retries") {
      uint64_t r = 0;
      if (!ParseU64(value, &r) || r > UINT32_MAX) {
        return BadSpec(token, "bad retry count");
      }
      plan.max_retries = static_cast<uint32_t>(r);
    } else if (key == "strikes") {
      uint64_t k = 0;
      if (!ParseU64(value, &k) || k > UINT32_MAX) {
        return BadSpec(token, "bad strike count");
      }
      plan.quarantine_strikes = static_cast<uint32_t>(k);
    } else if (key == "tamper") {
      // Same shape as a partition range: `NODE@FROM..UNTIL`.
      size_t at = value.find('@');
      if (at == std::string::npos) {
        return BadSpec(token, "expected NODE@FROM..UNTIL");
      }
      uint64_t node = 0;
      if (!ParseU64(value.substr(0, at), &node)) {
        return BadSpec(token, "bad node");
      }
      std::string range = value.substr(at + 1);
      size_t dots = range.find("..");
      uint64_t from = 0, until = 0;
      if (dots == std::string::npos || !ParseU64(range.substr(0, dots), &from) ||
          !ParseU64(range.substr(dots + 2), &until) || until <= from) {
        return BadSpec(token, "bad window range");
      }
      TamperEvent tamper;
      tamper.node = static_cast<NodeId>(node);
      tamper.from_window = from;
      tamper.until_window = until;
      plan.tampers.push_back(tamper);
    } else if (key == "crash") {
      CrashEvent crash;
      DEMA_RETURN_NOT_OK(ParseCrash(token, value, &crash));
      plan.crashes.push_back(crash);
    } else if (key == "partition") {
      PartitionEvent part;
      DEMA_RETURN_NOT_OK(ParsePartition(token, value, &part));
      plan.partitions.push_back(part);
    } else {
      return BadSpec(token, "unknown key");
    }
  }
  return plan;
}

Result<ConnChaosPlan> ParseConnKillSpec(const std::string& spec) {
  ConnChaosPlan plan;
  if (spec.empty()) return plan;
  size_t at = spec.find('@');
  if (at == std::string::npos) {
    return Status::InvalidArgument("bad conn-kill spec '" + spec +
                                   "': expected N@FROM..UNTIL");
  }
  uint64_t kills = 0;
  if (!ParseU64(spec.substr(0, at), &kills) || kills == 0) {
    return Status::InvalidArgument("bad conn-kill spec '" + spec +
                                   "': kill count must be a positive integer");
  }
  std::string range = spec.substr(at + 1);
  size_t dots = range.find("..");
  uint64_t from = 0, until = 0;
  if (dots == std::string::npos) {
    if (!ParseU64(range, &from)) {
      return Status::InvalidArgument("bad conn-kill spec '" + spec +
                                     "': bad frame index");
    }
    until = from + 1;
  } else if (!ParseU64(range.substr(0, dots), &from) ||
             !ParseU64(range.substr(dots + 2), &until) || until <= from) {
    return Status::InvalidArgument("bad conn-kill spec '" + spec +
                                   "': bad frame range (need FROM < UNTIL)");
  }
  plan.kills = kills;
  plan.from_frame = from;
  plan.until_frame = until;
  return plan;
}

std::vector<uint64_t> BuildKillSchedule(const ConnChaosPlan& plan,
                                        uint64_t salt) {
  std::vector<uint64_t> schedule;
  if (plan.empty()) return schedule;
  // Deterministic spread: draw each kill point uniformly over the frame
  // range from an rng keyed on (range, salt). Duplicate draws collapse to
  // one kill per frame index (the transport fires at most one kill per
  // written frame anyway), so the schedule length may be < plan.kills on
  // tiny ranges — the caller asked for "about N kills in this interval".
  Rng rng(0x9E3779B97F4A7C15ull ^ (salt * 0xBF58476D1CE4E5B9ull) ^
          (plan.from_frame << 32) ^ plan.until_frame);
  schedule.reserve(plan.kills);
  for (uint64_t i = 0; i < plan.kills; ++i) {
    schedule.push_back(static_cast<uint64_t>(rng.UniformInt(
        static_cast<int64_t>(plan.from_frame),
        static_cast<int64_t>(plan.until_frame - 1))));
  }
  std::sort(schedule.begin(), schedule.end());
  schedule.erase(std::unique(schedule.begin(), schedule.end()),
                 schedule.end());
  return schedule;
}

namespace {

/// Chaos-run state per local slot.
struct LocalSlot {
  bool down = false;
  /// Checkpoint blob taken when the node crashed.
  std::vector<uint8_t> checkpoint;
};

}  // namespace

Result<ChaosReport> RunChaos(const SystemConfig& system_config,
                             const WorkloadConfig& workload,
                             const FaultPlan& plan) {
  if (system_config.kind != SystemKind::kDema) {
    return Status::InvalidArgument("chaos runs support only the Dema system");
  }
  stream::WindowSpec spec{system_config.window_len_us,
                          system_config.window_slide_us};
  if (!spec.IsTumbling()) {
    return Status::InvalidArgument("chaos runs support only tumbling windows");
  }
  if (workload.generators.size() != system_config.num_locals) {
    return Status::InvalidArgument("generator count != local node count");
  }
  if (plan.deadline_ticks == 0) {
    return Status::InvalidArgument(
        "chaos runs need deadline_ticks > 0 (the no-stall invariant depends "
        "on the root's deadline machinery)");
  }
  for (const CrashEvent& crash : plan.crashes) {
    if (crash.node == 0 || crash.node > system_config.num_locals) {
      return Status::InvalidArgument("crash schedule names unknown node " +
                                     std::to_string(crash.node));
    }
  }
  for (const TamperEvent& tamper : plan.tampers) {
    if (tamper.node == 0 || tamper.node > system_config.num_locals) {
      return Status::InvalidArgument("tamper schedule names unknown node " +
                                     std::to_string(tamper.node));
    }
  }
  if (!plan.tampers.empty() && plan.quarantine_strikes == 0) {
    return Status::InvalidArgument(
        "tamper schedule needs quarantine (strikes > 0): without it a "
        "tampering local stalls every window into its retry budget");
  }

  RealClock clock;
  obs::Registry registry;
  SystemConfig config = system_config;
  config.registry = &registry;
  config.root_deadline_ticks = plan.deadline_ticks;
  config.root_max_retries = plan.max_retries;
  config.root_quarantine_strikes = plan.quarantine_strikes;
  config.root_probation_windows = plan.probation_windows;
  config.root_probation_clean_windows = plan.probation_clean_windows;

  net::Network::Options net_options;
  net_options.registry = &registry;
  net_options.drop_prob = plan.drop_prob;
  net_options.duplicate_prob = plan.duplicate_prob;
  net_options.delay_us_max = plan.delay_us_max;
  net_options.delay_prob = plan.delay_prob;
  net_options.corrupt_prob = plan.corrupt_prob;
  net_options.tamper_prob = plan.tamper_prob;
  net_options.fault_seed = plan.seed;
  net::Network network(&clock, net_options);

  DEMA_ASSIGN_OR_RETURN(System system, BuildSystem(config, &network, &clock,
                                                   /*root_inbox_capacity=*/0));
  auto* root = dynamic_cast<core::DemaRootNode*>(system.root.get());
  if (root == nullptr) {
    return Status::Internal("chaos run requires the Dema root node");
  }

  std::vector<std::unique_ptr<gen::StreamGenerator>> gens;
  for (const auto& cfg : workload.generators) {
    DEMA_ASSIGN_OR_RETURN(auto g, gen::StreamGenerator::Create(cfg));
    gens.push_back(std::move(g));
  }

  std::map<net::WindowId, WindowOutput> outputs;
  system.root->SetResultCallback([&outputs](const WindowOutput& out) {
    outputs.emplace(out.window_id, out);
  });

  ChaosReport report;
  std::vector<LocalSlot> slots(system.locals.size());
  const uint64_t num_windows = workload.num_windows;
  const DurationUs window_len = config.window_len_us;
  /// Ground truth: values actually fed per window (a crashed node's events
  /// are lost at the source and excluded).
  std::vector<std::vector<double>> fed(num_windows);

  // Single-threaded pump to quiescence: root first, then locals, releasing
  // delayed fabric messages only once every inbox drained (quiescence means
  // the injected delay has "elapsed").
  auto pump_all = [&]() -> Status {
    bool progress = true;
    while (progress) {
      progress = false;
      net::Channel* root_inbox = network.Inbox(system.root_id);
      while (auto msg = root_inbox->TryPop()) {
        DEMA_RETURN_NOT_OK(system.root->OnMessage(*msg));
        progress = true;
      }
      for (size_t i = 0; i < system.locals.size(); ++i) {
        if (slots[i].down) continue;
        net::Channel* inbox = network.Inbox(system.local_ids[i]);
        while (auto msg = inbox->TryPop()) {
          DEMA_RETURN_NOT_OK(system.locals[i]->OnMessage(*msg));
          progress = true;
        }
      }
      if (!progress && network.delayed_in_flight() > 0) {
        progress = network.FlushDelayed() > 0;
      }
    }
    return Status::OK();
  };

  auto restart_local = [&](size_t slot_index) -> Status {
    NodeId id = system.local_ids[slot_index];
    DEMA_ASSIGN_OR_RETURN(auto logic,
                          BuildLocalLogic(config, id, &network, &clock));
    auto* local = dynamic_cast<core::DemaLocalNode*>(logic.get());
    if (local == nullptr) {
      return Status::Internal("chaos restart requires Dema local nodes");
    }
    net::Reader r(slots[slot_index].checkpoint);
    DEMA_RETURN_NOT_OK(local->Restore(&r));
    system.locals[slot_index] = std::move(logic);
    slots[slot_index].down = false;
    network.SetNodeDown(id, false);
    // Best effort on a faulty fabric: a lost sync costs gamma freshness,
    // never correctness.
    DEMA_RETURN_NOT_OK(local->ResyncGamma());
    ++report.restarts;
    return Status::OK();
  };

  auto crash_local = [&](size_t slot_index) -> Status {
    NodeId id = system.local_ids[slot_index];
    auto* local = dynamic_cast<core::DemaLocalNode*>(
        system.locals[slot_index].get());
    if (local == nullptr) {
      return Status::Internal("chaos crash requires Dema local nodes");
    }
    // The "device" persisted its last checkpoint before dying; in-memory
    // state and queued inbox messages are lost.
    net::Writer w;
    local->Checkpoint(&w);
    slots[slot_index].checkpoint = w.TakeBuffer();
    system.locals[slot_index].reset();
    slots[slot_index].down = true;
    network.SetNodeDown(id, true);
    net::Channel* inbox = network.Inbox(id);
    while (inbox->TryPop()) {
    }
    return Status::OK();
  };

  for (uint64_t w = 0; w < num_windows; ++w) {
    // Boundary schedule: heal partitions, restart recovered nodes, then
    // apply new crashes and partitions for this window.
    for (const PartitionEvent& part : plan.partitions) {
      if (part.until_window == w) {
        network.Heal(part.a, part.b);
        network.Heal(part.b, part.a);
      }
    }
    for (const CrashEvent& crash : plan.crashes) {
      size_t slot_index = static_cast<size_t>(crash.node) - 1;
      if (crash.at_window + crash.down_windows == w && slots[slot_index].down) {
        DEMA_RETURN_NOT_OK(restart_local(slot_index));
      }
    }
    for (const CrashEvent& crash : plan.crashes) {
      size_t slot_index = static_cast<size_t>(crash.node) - 1;
      if (crash.at_window == w && !slots[slot_index].down) {
        DEMA_RETURN_NOT_OK(crash_local(slot_index));
      }
    }
    for (const PartitionEvent& part : plan.partitions) {
      if (part.from_window == w) {
        network.Partition(part.a, part.b);
        network.Partition(part.b, part.a);
      }
    }
    for (const TamperEvent& tamper : plan.tampers) {
      if (tamper.until_window == w) network.SetNodeTamper(tamper.node, false);
      if (tamper.from_window == w) network.SetNodeTamper(tamper.node, true);
    }

    TimestampUs start = static_cast<TimestampUs>(w) * window_len;
    TimestampUs end = start + window_len;
    for (size_t i = 0; i < gens.size(); ++i) {
      // Generate for every node — a down node's stream is lost, not paused —
      // so the per-node event sequences stay identical across plans.
      std::vector<Event> events = gens[i]->GenerateWindow(start, window_len);
      if (slots[i].down) continue;
      for (const Event& e : events) {
        DEMA_RETURN_NOT_OK(system.locals[i]->OnEvent(e));
        fed[w].push_back(e.value);
      }
    }
    for (size_t i = 0; i < system.locals.size(); ++i) {
      if (slots[i].down) continue;
      DEMA_RETURN_NOT_OK(system.locals[i]->OnWatermark(end));
    }
    DEMA_RETURN_NOT_OK(pump_all());
    DEMA_RETURN_NOT_OK(system.root->Tick());
    DEMA_RETURN_NOT_OK(pump_all());
  }

  TimestampUs final_ts = static_cast<TimestampUs>(num_windows) * window_len;
  for (size_t i = 0; i < system.locals.size(); ++i) {
    if (slots[i].down) continue;
    DEMA_RETURN_NOT_OK(system.locals[i]->OnFinish(final_ts));
  }
  if (num_windows > 0) root->NoteWindowHorizon(num_windows - 1);

  // Drain: tick until the retry/degrade budget of every pending window is
  // provably exhausted. The bound covers the full exponential backoff.
  const uint64_t max_drain_ticks =
      plan.deadline_ticks * (uint64_t{2} << std::min<uint32_t>(plan.max_retries, 32)) +
      plan.deadline_ticks + 64;
  for (uint64_t i = 0; i < max_drain_ticks; ++i) {
    DEMA_RETURN_NOT_OK(pump_all());
    if (system.root->idle() && network.delayed_in_flight() == 0) break;
    DEMA_RETURN_NOT_OK(system.root->Tick());
  }
  report.root_idle = system.root->idle();

  // Verdict per window, against the oracle over fed events.
  for (uint64_t w = 0; w < num_windows; ++w) {
    ChaosWindowReport wr;
    wr.window_id = w;
    for (double q : config.quantiles) {
      if (fed[w].empty()) break;
      DEMA_ASSIGN_OR_RETURN(double oracle,
                            stream::ExactQuantileValues(fed[w], q));
      wr.oracle.push_back(oracle);
    }
    auto it = outputs.find(w);
    if (it == outputs.end()) {
      ++report.missing_windows;
      if (report.violation.empty()) {
        report.violation = "window " + std::to_string(w) + " was never emitted";
      }
      report.windows.push_back(std::move(wr));
      continue;
    }
    const WindowOutput& out = it->second;
    wr.emitted = true;
    wr.degraded = out.degraded;
    wr.degrade_cause = out.degrade_cause;
    wr.rank_error_bound = out.rank_error_bound;
    wr.global_size = out.global_size;
    wr.values = out.values;
    if (out.degraded) {
      ++report.degraded_windows;
      if (out.degrade_cause.empty() && report.violation.empty()) {
        report.violation =
            "window " + std::to_string(w) + " degraded without a cause";
      }
    } else {
      wr.matches_oracle = out.global_size == fed[w].size() &&
                          out.values.size() == wr.oracle.size();
      if (wr.matches_oracle) {
        for (size_t qi = 0; qi < wr.oracle.size(); ++qi) {
          if (out.values[qi] != wr.oracle[qi]) {
            wr.matches_oracle = false;
            break;
          }
        }
      }
      if (fed[w].empty()) {
        // Empty window: exact means "emitted empty".
        wr.matches_oracle = out.global_size == 0;
      }
      if (wr.matches_oracle) {
        ++report.exact_windows;
      } else {
        ++report.mismatched_windows;
        if (report.violation.empty()) {
          report.violation = "window " + std::to_string(w) +
                             " emitted as exact but mismatches the oracle";
        }
      }
    }
    report.windows.push_back(std::move(wr));
  }
  if (!report.root_idle && report.violation.empty()) {
    report.violation = "root still has pending windows after the drain";
  }

  report.messages_dropped = network.messages_dropped();
  report.duplicates_injected = network.duplicates_injected();
  report.messages_delayed = network.messages_delayed();
  report.messages_corrupted = network.messages_corrupted();
  const core::DemaRootStats root_stats = root->stats();
  report.root_retries = root_stats.retries;
  report.rejected_payloads = root_stats.rejected_payloads;
  report.quarantines = root_stats.quarantines;
  report.readmissions = root_stats.readmissions;
  return report;
}

}  // namespace dema::sim
