#include "transport/frame.h"

#include "common/crc32c.h"
#include "net/codec.h"
#include "net/serializer.h"

namespace dema::transport {

bool IsKnownMessageType(uint16_t raw) {
  switch (static_cast<net::MessageType>(raw)) {
    case net::MessageType::kEventBatch:
    case net::MessageType::kWindowEnd:
    case net::MessageType::kSynopsisBatch:
    case net::MessageType::kCandidateRequest:
    case net::MessageType::kCandidateReply:
    case net::MessageType::kGammaUpdate:
    case net::MessageType::kResult:
    case net::MessageType::kSketchSummary:
    case net::MessageType::kShutdown:
    case net::MessageType::kTimeAdvance:
    case net::MessageType::kGammaSyncRequest:
    case net::MessageType::kShardSynopsisBatch:
    case net::MessageType::kShardCandidateRequest:
    case net::MessageType::kShardCandidateReply:
    case net::MessageType::kShardGammaUpdate:
    case net::MessageType::kShardQuery:
    case net::MessageType::kShardQueryReply:
    case net::MessageType::kHeartbeat:
    case net::MessageType::kAck:
      return true;
  }
  return false;
}

void EncodeFrame(const net::Message& m, std::vector<uint8_t>* out) {
  net::Writer w;
  w.PutU16(static_cast<uint16_t>(m.type));
  w.PutU32(m.src);
  w.PutU32(m.dst);
  w.PutU32(m.seq);
  w.PutU32(static_cast<uint32_t>(m.payload_size()));
  static_assert(sizeof(NodeId) == sizeof(uint32_t),
                "frame header encodes NodeId as u32; widen the fields and "
                "kEnvelopeWireBytes together");
  const std::vector<uint8_t>& header = w.buffer();
  const uint8_t* payload = m.payload_data();
  const size_t payload_size = m.payload_size();
  const uint32_t crc =
      ComputeFrameCrc(header.data(), header.size(), payload, payload_size);
  out->reserve(out->size() + header.size() + payload_size +
               kFrameTrailerBytes);
  out->insert(out->end(), header.begin(), header.end());
  out->insert(out->end(), payload, payload + payload_size);
  net::Writer trailer;
  trailer.PutU32(crc);
  out->insert(out->end(), trailer.buffer().begin(), trailer.buffer().end());
}

uint32_t ComputeFrameCrc(const uint8_t* header, size_t header_size,
                         const uint8_t* payload, size_t payload_size) {
  uint32_t crc = ExtendCrc32c(0, header, header_size);
  return ExtendCrc32c(crc, payload, payload_size);
}

Status VerifyFrameCrc(const uint8_t* header, size_t header_size,
                      const uint8_t* payload, size_t payload_size,
                      const uint8_t* trailer) {
  const uint32_t want = ComputeFrameCrc(header, header_size, payload,
                                        payload_size);
  net::Reader r(trailer, kFrameTrailerBytes);
  uint32_t got = 0;
  DEMA_RETURN_NOT_OK(r.GetU32(&got));
  if (got != want) {
    return Status::SerializationError(
        "frame checksum mismatch (expected " + std::to_string(want) +
        ", trailer carries " + std::to_string(got) + ")");
  }
  return Status::OK();
}

Status DecodeFrameHeader(const uint8_t* data, size_t size, uint32_t max_payload,
                         FrameHeader* out) {
  net::Reader r(data, size);
  uint16_t raw_type = 0;
  DEMA_RETURN_NOT_OK(r.GetU16(&raw_type));
  DEMA_RETURN_NOT_OK(r.GetU32(&out->src));
  DEMA_RETURN_NOT_OK(r.GetU32(&out->dst));
  DEMA_RETURN_NOT_OK(r.GetU32(&out->seq));
  DEMA_RETURN_NOT_OK(r.GetU32(&out->payload_size));
  if (!IsKnownMessageType(raw_type)) {
    return Status::SerializationError("frame with unknown message type " +
                                      std::to_string(raw_type));
  }
  if (out->payload_size > max_payload) {
    return Status::SerializationError(
        "frame payload of " + std::to_string(out->payload_size) +
        " bytes exceeds limit of " + std::to_string(max_payload));
  }
  out->type = static_cast<net::MessageType>(raw_type);
  return Status::OK();
}

Result<uint64_t> PeekEventCount(net::MessageType type, net::ByteSpan payload) {
  net::Reader r(payload);
  switch (type) {
    case net::MessageType::kEventBatch:
      // u64 window_id, u8 sorted, u8 last_batch, then the event stream.
      DEMA_RETURN_NOT_OK(r.Skip(sizeof(uint64_t) + 2));
      break;
    case net::MessageType::kCandidateReply:
      // u64 window_id, u32 node, then the event stream.
      DEMA_RETURN_NOT_OK(r.Skip(sizeof(uint64_t) + sizeof(uint32_t)));
      break;
    default:
      return uint64_t{0};
  }
  // Walk the encoded stream instead of trusting the declared count: the
  // count is attacker-controlled, buffers downstream are sized by it, and a
  // lying count must fail here, at the edge. `ForEachEncodedValue` errors
  // when the stream holds fewer events than declared; leftover bytes mean it
  // held more.
  uint64_t count = 0;
  DEMA_RETURN_NOT_OK(net::ForEachEncodedValue(&r, [](double) {}, &count));
  if (r.remaining() != 0) {
    return Status::SerializationError(
        "event stream declares " + std::to_string(count) + " events but " +
        std::to_string(r.remaining()) + " payload bytes follow them");
  }
  return count;
}

void EncodeHello(const std::vector<NodeId>& nodes, std::vector<uint8_t>* out) {
  net::Writer w;
  w.PutU32(kHelloMagic);
  w.PutU32(kProtocolVersion);
  w.PutU32(static_cast<uint32_t>(nodes.size()));
  for (NodeId id : nodes) w.PutU32(id);
  const std::vector<uint8_t>& bytes = w.buffer();
  out->insert(out->end(), bytes.begin(), bytes.end());
}

Result<uint32_t> DecodeHelloPrefix(const uint8_t* data, size_t size) {
  net::Reader r(data, size);
  uint32_t magic = 0, version = 0, count = 0;
  DEMA_RETURN_NOT_OK(r.GetU32(&magic));
  DEMA_RETURN_NOT_OK(r.GetU32(&version));
  DEMA_RETURN_NOT_OK(r.GetU32(&count));
  if (magic != kHelloMagic) {
    return Status::SerializationError("connection preamble has bad magic");
  }
  // A v1 dialer's node count lands in the version slot (its hello had no
  // version field), so incompatible peers fail here with a version message
  // instead of desynchronizing the frame stream on a missing CRC trailer.
  if (version != kProtocolVersion) {
    return Status::SerializationError(
        "peer speaks protocol version " + std::to_string(version) +
        ", this node requires version " + std::to_string(kProtocolVersion));
  }
  if (count > kMaxHelloNodes) {
    return Status::SerializationError("hello announces too many nodes");
  }
  return count;
}

Result<std::vector<NodeId>> DecodeHelloNodes(const uint8_t* data, size_t size,
                                             uint32_t count) {
  net::Reader r(data, size);
  std::vector<NodeId> nodes;
  nodes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    NodeId id = 0;
    DEMA_RETURN_NOT_OK(r.GetU32(&id));
    nodes.push_back(id);
  }
  return nodes;
}

}  // namespace dema::transport
