#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/time.h"
#include "net/channel.h"
#include "net/message.h"
#include "net/traffic_instruments.h"
#include "obs/registry.h"
#include "transport/epoll_transport.h"
#include "transport/frame.h"
#include "transport/transport.h"

namespace dema::transport {

/// \brief Creates a bound, listening TCP socket on host:port (port 0 binds
/// an ephemeral port). Used directly by callers that must bind before
/// forking and hand the socket to a transport via `adopted_listen_fd`.
Result<int> BindListenSocket(const std::string& host, uint16_t port);

/// \brief Port a bound socket listens on (resolves ephemeral binds).
Result<uint16_t> ListenSocketPort(int fd);

/// \brief Configuration of a `TcpTransport`.
struct TcpTransportOptions {
  /// Interface to bind the listener to.
  std::string listen_host = "127.0.0.1";
  /// Listener port; 0 binds an ephemeral port (read it via `bound_port()`).
  uint16_t listen_port = 0;
  /// Whether `Start` opens a listener at all. Pure clients (edge nodes that
  /// only dial the root and receive replies over the same connection) set
  /// this to false and need no reachable address.
  bool listen = true;
  /// An already-bound, already-listening socket to adopt instead of binding
  /// a new one (used by the forked-cluster runner, which binds before
  /// forking so children can dial a known port race-free). -1 = bind.
  int adopted_listen_fd = -1;
  /// Capacity of hosted inboxes in messages; 0 = unbounded.
  size_t inbox_capacity = 0;
  /// Per-connection outbox bound in messages; 0 = unbounded. A full outbox
  /// means the peer is not keeping up: `Send` counts `net.outbox_full` and
  /// then blocks until space frees (`outbox_block`, the default — classic
  /// backpressure) or fails with `NetworkError` so the caller sees the stall
  /// (`outbox_block = false`). Either way memory stays bounded.
  size_t outbox_capacity = 1024;
  /// Whether `Send` blocks (true) or fails (false) on a full outbox.
  bool outbox_block = true;
  /// Connection attempts before a dial fails (the peer may start later).
  int connect_attempts = 30;
  /// First retry delay; doubles per attempt up to the cap below. The actual
  /// sleep is jittered uniformly in [delay/2, delay] so a whole cluster
  /// reconnecting to a restarted root does not thundering-herd it.
  DurationUs connect_backoff_initial_us = MillisUs(10);
  /// Retry delay cap.
  DurationUs connect_backoff_max_us = MillisUs(1000);
  /// Seed for the dial-backoff jitter draw; 0 derives one from the pid so
  /// forked processes naturally de-synchronize.
  uint64_t dial_jitter_seed = 0;
  /// Sequence-number epoch, occupying the top 8 bits of every stamped
  /// `Message::seq`. A restarted process must use a fresh epoch so its new
  /// 1-based stream does not collide with its previous life's numbers inside
  /// receivers' dedup windows.
  uint32_t seq_epoch = 0;
  /// Dial-phase socket timeout and the per-connection grace period the
  /// shutdown drain grants a stalled peer before abandoning its queued
  /// frames (reset on write progress).
  DurationUs io_timeout_us = MillisUs(200);
  /// Backoff before re-arming the listener after a hard accept error
  /// (EMFILE and friends): the listener leaves the epoll set for this long
  /// so a level-triggered ready listener cannot spin the loop.
  DurationUs accept_backoff_us = MillisUs(10);
  /// Testing hook: treat the first N accepted connections as hard accept
  /// failures (close them and run the error/backoff path) to prove the
  /// listener survives; 0 disables.
  int inject_accept_failures = 0;
  /// Largest accepted frame payload (corrupt length-prefix defence).
  uint32_t max_frame_payload = 64u << 20;
  /// Size of the arena blocks receive buffers are carved from. Payloads are
  /// delivered as views into these blocks (zero-copy); a block is freed when
  /// the loop has moved past it and no delivered message references it.
  size_t recv_block_bytes = 256u << 10;
  /// Fault injection: probability per outbound frame of flipping one random
  /// byte after the length-prefix header (payload or CRC trailer) before it
  /// hits the socket, exercising the receiver's checksum path end to end.
  /// Flips stay clear of the header so framing survives and the receiver
  /// drops the one corrupt frame instead of the connection. 0 disables.
  double corrupt_rate = 0;
  /// Seed for the corruption injector; 0 derives one from the pid.
  uint64_t corrupt_seed = 0;

  // --- session resilience (heartbeats, redial, acked replay) ----------------

  /// Idle-connection heartbeat period. Every interval without traffic the
  /// loop sends a `kHeartbeat` ping (the peer echoes a pong, feeding the
  /// per-peer RTT gauge `net.peer_rtt_us{peer=}`); `heartbeat_misses`
  /// intervals with *no* inbound bytes at all declare the peer dead
  /// (`net.peer_down`) and kill the connection — triggering redial for
  /// configured peers. 0 disables heartbeats and dead-peer detection.
  DurationUs heartbeat_interval_us = 0;
  /// Silent heartbeat intervals before a peer is declared dead.
  int heartbeat_misses = 3;
  /// Redial configured peers in the background when their connection dies
  /// outside shutdown, using the same jittered exponential backoff as the
  /// first dial, and replay retained frames on the fresh session.
  bool auto_reconnect = false;
  /// Sent-but-unacked frames older than this are retransmitted on the next
  /// heartbeat tick (recovers frames the receiver's CRC check discarded —
  /// dedup swallows the duplicates when the original did arrive). Only
  /// meaningful with heartbeats on; 0 derives 4 * heartbeat_interval_us.
  DurationUs retransmit_timeout_us = 0;
  /// Bound on retained frames per destination session (written-but-unacked
  /// plus salvaged-from-dead-connections). At the bound the loop stops
  /// pulling from that session's outbox, so the existing outbox bound
  /// backpressures `Send` — retention memory cannot grow without limit.
  /// 0 derives from outbox_capacity (or stays unbounded when that is 0).
  size_t retain_capacity = 0;
  /// Chaos injector: kill the connection carrying the Nth, then the Mth, ...
  /// *data* frame written by this transport (cumulative count across
  /// connections, sorted ascending). The kill severs a live socket exactly
  /// as a mid-window network failure would — counted in
  /// `net.conn_kills{layer=inject}` — and session resilience must recover.
  std::vector<uint64_t> kill_conn_schedule;
  /// Chaos injector: after this many data frames written, pause all writes
  /// on the carrying connection for `write_stall_us` (backpressure builds,
  /// heartbeats still flow on other connections). 0 disables.
  uint64_t write_stall_after_frames = 0;
  /// Duration of the injected write stall.
  DurationUs write_stall_us = 0;
  /// Metrics sink for the `transport.sent.*` / `transport.recv.*`
  /// instruments. When null, the transport owns a private registry
  /// (reachable via `registry()`). Must outlive the transport when provided.
  obs::Registry* registry = nullptr;
};

/// \brief POSIX TCP implementation of `Transport` on a single epoll loop.
///
/// One instance per OS process. It hosts the inboxes of this process's nodes
/// (`AddLocalNode`), listens for inbound connections (`Start`), and dials
/// configured peers (`AddPeer`) lazily on first send, with bounded retry and
/// exponential backoff so processes may start in any order.
///
/// Wire format: every message travels as one `EncodeFrame` frame, so the
/// bytes written per message equal `Message::WireBytes()` — the measured
/// per-link counters (`LinkTraffic`) are directly comparable to the
/// in-process fabric's simulated accounting.
///
/// Connections are bidirectional. A dialer opens with a hello preamble
/// announcing its hosted node ids; the acceptor uses those to route replies
/// back over the same connection. In a star topology only the edge processes
/// therefore need the root's address, never the reverse.
///
/// Threads: ONE I/O thread multiplexing every connection and the listener
/// through an `EpollLoop` (non-blocking sockets, level-triggered). `Send`
/// enqueues to the destination connection's bounded outbox and wakes the
/// loop; the loop encodes queued frames and writes them with a single
/// `writev` per connection per pass, so many small frames (synopses, gamma
/// broadcasts, keyed envelopes) coalesce into one syscall. Received bytes
/// land in shared arena blocks and payloads are delivered as zero-copy views
/// into them (`Message::SetPayloadView`); only a partial frame straddling a
/// block boundary is ever copied. Node run loops are identical to the
/// simulation's.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpTransportOptions options = TcpTransportOptions());
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Hosts node \p id on this transport (creates its inbox). Fails on
  /// duplicates. Call before `Start` so hello preambles announce the id.
  Status AddLocalNode(NodeId id);

  /// Registers the dial address for remote node \p id. The connection is
  /// established lazily on the first send to \p id.
  Status AddPeer(NodeId id, const std::string& host, uint16_t port);

  /// Starts the I/O loop and opens the listener (unless configured off).
  Status Start();

  /// Port the listener is bound to (useful with an ephemeral `listen_port`).
  uint16_t bound_port() const;

  Status Send(net::Message m) override;
  net::Channel* Inbox(NodeId id) override;

  /// Traffic sent by this process, per directed link, measured from the
  /// bytes actually written to sockets (loopback sends to hosted nodes are
  /// charged their `WireBytes` equivalent for cross-transport parity).
  LinkTrafficMap LinkTraffic() const override;
  std::map<net::MessageType, net::TrafficCounters> TrafficByType() const override;

  /// Traffic received from remote peers, per directed link, measured from
  /// bytes read off sockets. Event counts are reconstructed from the
  /// payloads of event-carrying message types.
  LinkTrafficMap ReceivedTraffic() const;

  /// Received traffic broken down by message type.
  std::map<net::MessageType, net::TrafficCounters> ReceivedByType() const;

  /// The registry this transport records into (the options-provided one, or
  /// the transport's own private registry).
  obs::Registry* registry() const { return registry_; }

  /// Flushes outbound queues (bounded by a per-connection grace period),
  /// closes the listener and every connection, joins the I/O thread, and
  /// closes hosted inboxes. Idempotent.
  void Shutdown() override;

  /// Kills the I/O loop as if its thread had crashed (test hook for the
  /// Send-must-not-hang-forever regression; the transport object survives
  /// but no further I/O happens until `Shutdown`).
  void StopLoopForTest();

 private:
  struct Session;

  /// One live socket. The fd/dead fields are shared with `Send`; all other
  /// state belongs to the loop thread.
  struct Conn {
    int fd = -1;
    std::atomic<bool> dead{false};

    // --- loop-thread-only from here -----------------------------------------
    bool expect_hello = false;
    /// Destinations currently routed over this connection (each has a
    /// Session whose outbox the loop drains into this socket).
    std::vector<NodeId> dsts;
    /// Last instant any bytes arrived (heartbeat liveness input).
    TimestampUs last_recv_us = 0;
    /// Last instant a heartbeat ping left (rate-limits idle pings).
    TimestampUs last_ping_us = 0;
    /// A `kShutdown` frame passed through (either direction): a subsequent
    /// close is an orderly end-of-stream, not a peer failure.
    bool saw_shutdown = false;
    /// Chaos: writes are paused until this instant (0 = no stall).
    TimestampUs stall_until_us = 0;
    /// Set once the loop has the fd in its epoll set (frames queued before
    /// then wait in the outbox; the fd may still be blocking).
    bool registered = false;
    /// EPOLLOUT currently armed (a write hit EAGAIN).
    bool want_write = false;
    /// Shutdown drain finished for this conn (SHUT_WR sent or abandoned).
    bool flushed = false;

    /// Receive arena: the block being filled, the first unparsed byte, and
    /// the first unfilled byte. Blocks are shared with delivered messages
    /// (payload views), so parsed bytes are never overwritten — a full block
    /// is replaced, carrying at most one partial frame forward by copy.
    std::shared_ptr<std::vector<uint8_t>> rblock;
    size_t rpos = 0;
    size_t rend = 0;

    /// An encoded frame waiting on the socket, with the metadata needed to
    /// charge the sent-traffic instruments once it is fully written.
    struct PendingFrame {
      std::vector<uint8_t> bytes;
      NodeId src = 0;
      NodeId dst = 0;
      net::MessageType type = net::MessageType::kShutdown;
      uint64_t event_count = 0;
      uint32_t seq = 0;
      /// Transport control (heartbeat/ack): not charged to the link-traffic
      /// instruments, never retained, invisible to byte-parity accounting.
      bool control = false;
      /// Retain a copy in the session's unacked window once fully written
      /// (false for replayed copies — the original retained entry stands).
      bool retain = true;
      /// Chaos: the corruption injector's one-byte flip applied to `bytes`
      /// (mask 0 = none). Undone before the frame is retained or salvaged:
      /// the flip models damage on the wire, not in the sender's memory, so
      /// a retransmit must carry the pristine encoding — a baked-in flip
      /// would make the frame unrecoverable no matter how often it replays.
      size_t corrupt_at = 0;
      uint8_t corrupt_mask = 0;
      /// Owning session for retention/salvage (null for control frames).
      Session* session = nullptr;
    };
    std::deque<PendingFrame> wq;
    /// Total encoded bytes queued in `wq` (high-water check).
    size_t wq_bytes = 0;
    /// Bytes of `wq.front()` already written (partial writev progress).
    size_t wq_head_off = 0;
    /// Shutdown drain: abandon this conn when no write progress happens
    /// before the deadline (reset on progress).
    TimestampUs drain_deadline_us = 0;
  };

  /// A frame retained after being written, awaiting the peer's cumulative
  /// ack; replayed verbatim on session resume or retransmit timeout.
  struct RetainedFrame {
    std::vector<uint8_t> bytes;
    NodeId src = 0;
    NodeId dst = 0;
    net::MessageType type = net::MessageType::kShutdown;
    uint64_t event_count = 0;
    uint32_t seq = 0;
    TimestampUs written_at_us = 0;
  };

  /// \brief Per-destination send state, decoupled from any one socket.
  ///
  /// Connections die; sessions survive them. A session owns the bounded
  /// outbox `Send` pushes into, the window of written-but-unacked frames
  /// (replayed onto the next connection, where the receiver's dedup swallows
  /// any duplicates), and frames salvaged encoded-but-unwritten from a dead
  /// connection's write queue (replayed exactly once, so they still count as
  /// first deliveries). The map entry is created under `mu_`; the deques are
  /// loop-thread-only.
  struct Session {
    NodeId dst = 0;
    /// Outbound queue; the loop drains it into the routed conn's frames.
    std::unique_ptr<net::Channel> outbox;
    /// True once a kShutdown to this destination entered the outbox: the
    /// stream is ending by design, so a subsequent connection close is
    /// orderly and must not trigger peer-down accounting or redial.
    std::atomic<bool> closing{false};
    /// A background redial for this destination is queued or in flight
    /// (loop thread sets, redial thread clears) — dedups kill cascades.
    std::atomic<bool> redial_pending{false};

    // --- loop-thread-only from here -----------------------------------------
    /// Written frames awaiting the peer's cumulative ack, oldest first.
    std::deque<RetainedFrame> unacked;
    /// Frames salvaged (encoded, unwritten) from a dead connection's write
    /// queue; replayed ahead of fresh outbox traffic on the next conn.
    std::deque<RetainedFrame> salvaged;

    size_t retained() const { return unacked.size() + salvaged.size(); }
  };

  /// \brief Per-(src, dst) receive stream: cumulative-ack and dedup state.
  ///
  /// `cum` is the highest contiguously received serial (RFC 1982 order
  /// within the epoch in its top byte); `ooo` holds serials received ahead
  /// of it. A frame at or below `cum` or in `ooo` is a retransmit duplicate:
  /// dropped before the inbox and excluded from recv accounting (parity),
  /// but re-acked so the sender stops replaying it.
  struct RecvStream {
    uint32_t cum = 0;
    bool seen_any = false;
    std::set<uint32_t> ooo;
    /// Stream progressed (or re-saw a duplicate) since the last ack flush.
    bool ack_dirty = false;
  };

  /// Stamps the next per-(src, dst) sequence number (epoch in the top 8
  /// bits, a 1-based 24-bit counter below) — the same keying the in-process
  /// fabric uses, so retained-frame replay of one stream never perturbs
  /// another stream's dedup window.
  uint32_t NextSeqFor(NodeId src, NodeId dst);
  /// Route to \p dst: an existing live connection, else a lazy dial of the
  /// configured peer address.
  Result<Conn*> ConnFor(NodeId dst);
  /// Connects to host:port with bounded retry + exponential backoff and
  /// writes the hello preamble. Returns the connected fd.
  Result<int> DialWithRetry(const std::string& host, uint16_t port);
  /// Wraps \p fd in a Conn and posts its registration to the loop (mu_
  /// held). \p dsts are the destinations this connection will carry (known
  /// for dialed conns; an acceptor learns them from the hello instead).
  Conn* AdoptLocked(int fd, bool expect_hello, std::vector<NodeId> dsts);
  /// Session for \p dst, created on first use (mu_ held).
  Session* SessionForLocked(NodeId dst);
  /// Starts the loop thread on first use (Start, or a pure client's first
  /// dial). Idempotent; safe from any thread.
  Status EnsureLoopStarted();
  /// Queues a background redial of configured peer \p dst (any thread).
  /// No-op while draining, when redial is off, or when one is in flight.
  void RequestRedial(NodeId dst);
  /// Background thread: dials queued peers with the usual backoff, adopts
  /// the fresh connection, and re-registers the route.
  void RedialThreadMain();
  /// Effective retransmit timeout / retention bound (derived defaults).
  DurationUs RetransmitTimeoutUs() const;
  size_t RetainCapacity() const;

  // --- loop-thread handlers -------------------------------------------------
  void RegisterConn(Conn* conn);
  void OnAcceptReady();
  void OnAcceptError(int err);
  void OnConnEvent(Conn* conn, uint32_t events);
  void ReadReady(Conn* conn);
  /// Parses every complete frame in the read window; returns false when the
  /// conn was killed (protocol error).
  bool ParseFrames(Conn* conn);
  /// Handles a transport-control frame (heartbeat ping/pong, cumulative
  /// ack); never reaches an inbox.
  void HandleControlFrame(Conn* conn, const FrameHeader& h,
                          const uint8_t* payload);
  /// Dedup gate: true when (src, dst, seq) is a first delivery; duplicates
  /// are counted, re-acked, and dropped by the caller.
  bool AcceptSeq(NodeId src, NodeId dst, uint32_t seq);
  /// Sends one coalesced kAck frame covering every dirty stream this
  /// connection carries (called after each read pass that made progress).
  void FlushAcks(Conn* conn);
  /// Drops \p session's acked retained frames per a received cumulative ack.
  void ApplyAck(NodeId src, NodeId dst, uint32_t cum_seq);
  /// Enqueues a control frame (heartbeat/ack) directly onto \p conn's write
  /// queue, bypassing outboxes, retention, and traffic accounting.
  void QueueControlFrame(Conn* conn, net::Message m);
  /// Heartbeat timer body: ping idle conns, declare silent peers dead,
  /// retransmit overdue unacked frames; reschedules itself.
  void HeartbeatTick();
  /// Replays \p session's retained frames (unacked copies first, then the
  /// salvaged queue) onto \p conn after a route (re)bind.
  void ReplaySession(Session* session, Conn* conn);
  /// Makes room for at least \p hint more unread bytes, moving a partial
  /// frame into a fresh arena block when the current one is full.
  void EnsureReadCapacity(Conn* conn, size_t hint);
  /// Moves outbox messages into encoded pending frames (up to the in-flight
  /// high-water mark) and attempts a writev pass.
  void DrainOutboxes();
  void DrainConnOutbox(Conn* conn);
  void TryWrite(Conn* conn);
  void KillConn(Conn* conn);
  /// Shutdown (loop side): stop reading, flush every outbox, half-close.
  void BeginDrain();
  void CheckDrainDone();

  TcpTransportOptions options_;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;
  /// Registry-backed per-link / per-type counters: bytes written to sockets
  /// (plus loopback `WireBytes` equivalents) and bytes read off sockets.
  net::TrafficInstruments sent_;
  net::TrafficInstruments recv_;
  std::atomic<bool> stopped_{false};

  EpollLoop loop_;
  std::thread loop_thread_;
  /// Loop-thread-only shutdown state.
  bool draining_ = false;
  int accept_failures_to_inject_ = 0;

  mutable std::mutex mu_;  // guards everything below
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  bool started_ = false;
  bool loop_started_ = false;
  std::map<NodeId, std::unique_ptr<net::Channel>> inboxes_;
  struct Peer {
    std::string host;
    uint16_t port;
  };
  std::map<NodeId, Peer> peers_;
  /// Live route per remote node: configured (dialed) or learned (hello).
  std::map<NodeId, Conn*> routes_;
  std::vector<std::unique_ptr<Conn>> conns_;
  /// Per-destination send sessions (entries created under mu_, owned here;
  /// the deques inside are loop-thread-only).
  std::map<NodeId, std::unique_ptr<Session>> sessions_;
  /// Per-(src, dst) sequence counters, keyed src << 32 | dst (guarded by
  /// mu_) — mirrors the in-process fabric's stamping.
  std::map<uint64_t, uint32_t> next_seq_;
  /// Per-(src, dst) receive streams, keyed src << 32 | dst
  /// (loop-thread-only).
  std::map<uint64_t, RecvStream> recv_streams_;

  /// Background redial machinery (guarded by redial_mu_).
  std::mutex redial_mu_;
  std::condition_variable redial_cv_;
  std::deque<NodeId> redial_queue_;
  bool redial_stop_ = false;
  bool redial_started_ = false;
  std::thread redial_thread_;

  /// Loop-thread-only chaos state: cumulative data frames fully written,
  /// and the next pending index into the sorted kill schedule.
  uint64_t data_frames_written_ = 0;
  size_t kill_schedule_idx_ = 0;
  bool write_stall_armed_ = false;
  /// Dial-backoff jitter draw (own mutex: dialing happens outside mu_).
  std::mutex jitter_mu_;
  Rng jitter_rng_;
  /// Corruption-injector draws (loop thread only; mutex kept for safety).
  std::mutex corrupt_mu_;
  Rng corrupt_rng_;
  /// Frames corrupted: injected on send (`layer=inject`) and detected +
  /// dropped on receive (`layer=tcp`).
  obs::Counter* c_corrupted_total_;
  obs::Counter* c_corrupted_inject_;
  obs::Counter* c_corrupted_recv_;
  /// Hard accept errors survived (satellite: the listener never dies).
  obs::Counter* c_accept_errors_;
  /// Sends that found their connection's outbox full (backpressure events).
  obs::Counter* c_outbox_full_;
  /// Peers declared dead (heartbeat silence or unexpected connection loss).
  obs::Counter* c_peer_down_;
  /// Successful background reconnects to configured peers.
  obs::Counter* c_reconnects_;
  /// Retained frames replayed (session resume + retransmit timeouts).
  obs::Counter* c_replayed_;
  /// Duplicate frames the receive-side dedup swallowed.
  obs::Counter* c_dup_dropped_;
  /// Partial frames lost to a peer closing mid-frame (previously silent).
  obs::Counter* c_partial_frame_drops_;
  /// Heartbeat / ack control frames sent (parity-excluded traffic).
  obs::Counter* c_heartbeats_;
  obs::Counter* c_acks_;
  /// Connections severed by the chaos injector.
  obs::Counter* c_conn_kills_;
};

}  // namespace dema::transport
