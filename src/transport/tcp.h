#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/time.h"
#include "net/channel.h"
#include "net/message.h"
#include "net/traffic_instruments.h"
#include "obs/registry.h"
#include "transport/epoll_transport.h"
#include "transport/frame.h"
#include "transport/transport.h"

namespace dema::transport {

/// \brief Creates a bound, listening TCP socket on host:port (port 0 binds
/// an ephemeral port). Used directly by callers that must bind before
/// forking and hand the socket to a transport via `adopted_listen_fd`.
Result<int> BindListenSocket(const std::string& host, uint16_t port);

/// \brief Port a bound socket listens on (resolves ephemeral binds).
Result<uint16_t> ListenSocketPort(int fd);

/// \brief Configuration of a `TcpTransport`.
struct TcpTransportOptions {
  /// Interface to bind the listener to.
  std::string listen_host = "127.0.0.1";
  /// Listener port; 0 binds an ephemeral port (read it via `bound_port()`).
  uint16_t listen_port = 0;
  /// Whether `Start` opens a listener at all. Pure clients (edge nodes that
  /// only dial the root and receive replies over the same connection) set
  /// this to false and need no reachable address.
  bool listen = true;
  /// An already-bound, already-listening socket to adopt instead of binding
  /// a new one (used by the forked-cluster runner, which binds before
  /// forking so children can dial a known port race-free). -1 = bind.
  int adopted_listen_fd = -1;
  /// Capacity of hosted inboxes in messages; 0 = unbounded.
  size_t inbox_capacity = 0;
  /// Per-connection outbox bound in messages; 0 = unbounded. A full outbox
  /// means the peer is not keeping up: `Send` counts `net.outbox_full` and
  /// then blocks until space frees (`outbox_block`, the default — classic
  /// backpressure) or fails with `NetworkError` so the caller sees the stall
  /// (`outbox_block = false`). Either way memory stays bounded.
  size_t outbox_capacity = 1024;
  /// Whether `Send` blocks (true) or fails (false) on a full outbox.
  bool outbox_block = true;
  /// Connection attempts before a dial fails (the peer may start later).
  int connect_attempts = 30;
  /// First retry delay; doubles per attempt up to the cap below. The actual
  /// sleep is jittered uniformly in [delay/2, delay] so a whole cluster
  /// reconnecting to a restarted root does not thundering-herd it.
  DurationUs connect_backoff_initial_us = MillisUs(10);
  /// Retry delay cap.
  DurationUs connect_backoff_max_us = MillisUs(1000);
  /// Seed for the dial-backoff jitter draw; 0 derives one from the pid so
  /// forked processes naturally de-synchronize.
  uint64_t dial_jitter_seed = 0;
  /// Sequence-number epoch, occupying the top 8 bits of every stamped
  /// `Message::seq`. A restarted process must use a fresh epoch so its new
  /// 1-based stream does not collide with its previous life's numbers inside
  /// receivers' dedup windows.
  uint32_t seq_epoch = 0;
  /// Dial-phase socket timeout and the per-connection grace period the
  /// shutdown drain grants a stalled peer before abandoning its queued
  /// frames (reset on write progress).
  DurationUs io_timeout_us = MillisUs(200);
  /// Backoff before re-arming the listener after a hard accept error
  /// (EMFILE and friends): the listener leaves the epoll set for this long
  /// so a level-triggered ready listener cannot spin the loop.
  DurationUs accept_backoff_us = MillisUs(10);
  /// Testing hook: treat the first N accepted connections as hard accept
  /// failures (close them and run the error/backoff path) to prove the
  /// listener survives; 0 disables.
  int inject_accept_failures = 0;
  /// Largest accepted frame payload (corrupt length-prefix defence).
  uint32_t max_frame_payload = 64u << 20;
  /// Size of the arena blocks receive buffers are carved from. Payloads are
  /// delivered as views into these blocks (zero-copy); a block is freed when
  /// the loop has moved past it and no delivered message references it.
  size_t recv_block_bytes = 256u << 10;
  /// Fault injection: probability per outbound frame of flipping one random
  /// byte after the length-prefix header (payload or CRC trailer) before it
  /// hits the socket, exercising the receiver's checksum path end to end.
  /// Flips stay clear of the header so framing survives and the receiver
  /// drops the one corrupt frame instead of the connection. 0 disables.
  double corrupt_rate = 0;
  /// Seed for the corruption injector; 0 derives one from the pid.
  uint64_t corrupt_seed = 0;
  /// Metrics sink for the `transport.sent.*` / `transport.recv.*`
  /// instruments. When null, the transport owns a private registry
  /// (reachable via `registry()`). Must outlive the transport when provided.
  obs::Registry* registry = nullptr;
};

/// \brief POSIX TCP implementation of `Transport` on a single epoll loop.
///
/// One instance per OS process. It hosts the inboxes of this process's nodes
/// (`AddLocalNode`), listens for inbound connections (`Start`), and dials
/// configured peers (`AddPeer`) lazily on first send, with bounded retry and
/// exponential backoff so processes may start in any order.
///
/// Wire format: every message travels as one `EncodeFrame` frame, so the
/// bytes written per message equal `Message::WireBytes()` — the measured
/// per-link counters (`LinkTraffic`) are directly comparable to the
/// in-process fabric's simulated accounting.
///
/// Connections are bidirectional. A dialer opens with a hello preamble
/// announcing its hosted node ids; the acceptor uses those to route replies
/// back over the same connection. In a star topology only the edge processes
/// therefore need the root's address, never the reverse.
///
/// Threads: ONE I/O thread multiplexing every connection and the listener
/// through an `EpollLoop` (non-blocking sockets, level-triggered). `Send`
/// enqueues to the destination connection's bounded outbox and wakes the
/// loop; the loop encodes queued frames and writes them with a single
/// `writev` per connection per pass, so many small frames (synopses, gamma
/// broadcasts, keyed envelopes) coalesce into one syscall. Received bytes
/// land in shared arena blocks and payloads are delivered as zero-copy views
/// into them (`Message::SetPayloadView`); only a partial frame straddling a
/// block boundary is ever copied. Node run loops are identical to the
/// simulation's.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpTransportOptions options = TcpTransportOptions());
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Hosts node \p id on this transport (creates its inbox). Fails on
  /// duplicates. Call before `Start` so hello preambles announce the id.
  Status AddLocalNode(NodeId id);

  /// Registers the dial address for remote node \p id. The connection is
  /// established lazily on the first send to \p id.
  Status AddPeer(NodeId id, const std::string& host, uint16_t port);

  /// Starts the I/O loop and opens the listener (unless configured off).
  Status Start();

  /// Port the listener is bound to (useful with an ephemeral `listen_port`).
  uint16_t bound_port() const;

  Status Send(net::Message m) override;
  net::Channel* Inbox(NodeId id) override;

  /// Traffic sent by this process, per directed link, measured from the
  /// bytes actually written to sockets (loopback sends to hosted nodes are
  /// charged their `WireBytes` equivalent for cross-transport parity).
  LinkTrafficMap LinkTraffic() const override;
  std::map<net::MessageType, net::TrafficCounters> TrafficByType() const override;

  /// Traffic received from remote peers, per directed link, measured from
  /// bytes read off sockets. Event counts are reconstructed from the
  /// payloads of event-carrying message types.
  LinkTrafficMap ReceivedTraffic() const;

  /// Received traffic broken down by message type.
  std::map<net::MessageType, net::TrafficCounters> ReceivedByType() const;

  /// The registry this transport records into (the options-provided one, or
  /// the transport's own private registry).
  obs::Registry* registry() const { return registry_; }

  /// Flushes outbound queues (bounded by a per-connection grace period),
  /// closes the listener and every connection, joins the I/O thread, and
  /// closes hosted inboxes. Idempotent.
  void Shutdown() override;

 private:
  /// One live socket. The fd/outbox/dead fields are shared with `Send`; all
  /// other state belongs to the loop thread.
  struct Conn {
    int fd = -1;
    /// Outbound queue; the loop drains it into encoded frames.
    std::unique_ptr<net::Channel> outbox;
    std::atomic<bool> dead{false};

    // --- loop-thread-only from here -----------------------------------------
    bool expect_hello = false;
    /// Set once the loop has the fd in its epoll set (frames queued before
    /// then wait in the outbox; the fd may still be blocking).
    bool registered = false;
    /// EPOLLOUT currently armed (a write hit EAGAIN).
    bool want_write = false;
    /// Shutdown drain finished for this conn (SHUT_WR sent or abandoned).
    bool flushed = false;

    /// Receive arena: the block being filled, the first unparsed byte, and
    /// the first unfilled byte. Blocks are shared with delivered messages
    /// (payload views), so parsed bytes are never overwritten — a full block
    /// is replaced, carrying at most one partial frame forward by copy.
    std::shared_ptr<std::vector<uint8_t>> rblock;
    size_t rpos = 0;
    size_t rend = 0;

    /// An encoded frame waiting on the socket, with the metadata needed to
    /// charge the sent-traffic instruments once it is fully written.
    struct PendingFrame {
      std::vector<uint8_t> bytes;
      NodeId src = 0;
      NodeId dst = 0;
      net::MessageType type = net::MessageType::kShutdown;
      uint64_t event_count = 0;
    };
    std::deque<PendingFrame> wq;
    /// Total encoded bytes queued in `wq` (high-water check).
    size_t wq_bytes = 0;
    /// Bytes of `wq.front()` already written (partial writev progress).
    size_t wq_head_off = 0;
    /// Shutdown drain: abandon this conn when no write progress happens
    /// before the deadline (reset on progress).
    TimestampUs drain_deadline_us = 0;
  };

  /// Stamps the next per-destination sequence number (epoch in the top 8
  /// bits, a 1-based 24-bit counter below).
  uint32_t NextSeqFor(NodeId dst);
  /// Route to \p dst: an existing live connection, else a lazy dial of the
  /// configured peer address.
  Result<Conn*> ConnFor(NodeId dst);
  /// Connects to host:port with bounded retry + exponential backoff and
  /// writes the hello preamble. Returns the connected fd.
  Result<int> DialWithRetry(const std::string& host, uint16_t port);
  /// Wraps \p fd in a Conn and posts its registration to the loop (mu_ held).
  Conn* AdoptLocked(int fd, bool expect_hello);
  /// Starts the loop thread on first use (Start, or a pure client's first
  /// dial). Idempotent; safe from any thread.
  Status EnsureLoopStarted();

  // --- loop-thread handlers -------------------------------------------------
  void RegisterConn(Conn* conn);
  void OnAcceptReady();
  void OnAcceptError(int err);
  void OnConnEvent(Conn* conn, uint32_t events);
  void ReadReady(Conn* conn);
  /// Parses every complete frame in the read window; returns false when the
  /// conn was killed (protocol error).
  bool ParseFrames(Conn* conn);
  /// Makes room for at least \p hint more unread bytes, moving a partial
  /// frame into a fresh arena block when the current one is full.
  void EnsureReadCapacity(Conn* conn, size_t hint);
  /// Moves outbox messages into encoded pending frames (up to the in-flight
  /// high-water mark) and attempts a writev pass.
  void DrainOutboxes();
  void DrainConnOutbox(Conn* conn);
  void TryWrite(Conn* conn);
  void KillConn(Conn* conn);
  /// Shutdown (loop side): stop reading, flush every outbox, half-close.
  void BeginDrain();
  void CheckDrainDone();

  TcpTransportOptions options_;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;
  /// Registry-backed per-link / per-type counters: bytes written to sockets
  /// (plus loopback `WireBytes` equivalents) and bytes read off sockets.
  net::TrafficInstruments sent_;
  net::TrafficInstruments recv_;
  std::atomic<bool> stopped_{false};

  EpollLoop loop_;
  std::thread loop_thread_;
  /// Loop-thread-only shutdown state.
  bool draining_ = false;
  int accept_failures_to_inject_ = 0;

  mutable std::mutex mu_;  // guards everything below
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  bool started_ = false;
  bool loop_started_ = false;
  std::map<NodeId, std::unique_ptr<net::Channel>> inboxes_;
  struct Peer {
    std::string host;
    uint16_t port;
  };
  std::map<NodeId, Peer> peers_;
  /// Live route per remote node: configured (dialed) or learned (hello).
  std::map<NodeId, Conn*> routes_;
  std::vector<std::unique_ptr<Conn>> conns_;
  /// Per-destination sequence counters (guarded by mu_).
  std::map<NodeId, uint32_t> next_seq_;
  /// Dial-backoff jitter draw (own mutex: dialing happens outside mu_).
  std::mutex jitter_mu_;
  Rng jitter_rng_;
  /// Corruption-injector draws (loop thread only; mutex kept for safety).
  std::mutex corrupt_mu_;
  Rng corrupt_rng_;
  /// Frames corrupted: injected on send (`layer=inject`) and detected +
  /// dropped on receive (`layer=tcp`).
  obs::Counter* c_corrupted_total_;
  obs::Counter* c_corrupted_inject_;
  obs::Counter* c_corrupted_recv_;
  /// Hard accept errors survived (satellite: the listener never dies).
  obs::Counter* c_accept_errors_;
  /// Sends that found their connection's outbox full (backpressure events).
  obs::Counter* c_outbox_full_;
};

}  // namespace dema::transport
