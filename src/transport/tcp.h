#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/time.h"
#include "net/channel.h"
#include "net/message.h"
#include "net/traffic_instruments.h"
#include "obs/registry.h"
#include "transport/frame.h"
#include "transport/transport.h"

namespace dema::transport {

/// \brief Creates a bound, listening TCP socket on host:port (port 0 binds
/// an ephemeral port). Used directly by callers that must bind before
/// forking and hand the socket to a transport via `adopted_listen_fd`.
Result<int> BindListenSocket(const std::string& host, uint16_t port);

/// \brief Port a bound socket listens on (resolves ephemeral binds).
Result<uint16_t> ListenSocketPort(int fd);

/// \brief Configuration of a `TcpTransport`.
struct TcpTransportOptions {
  /// Interface to bind the listener to.
  std::string listen_host = "127.0.0.1";
  /// Listener port; 0 binds an ephemeral port (read it via `bound_port()`).
  uint16_t listen_port = 0;
  /// Whether `Start` opens a listener at all. Pure clients (edge nodes that
  /// only dial the root and receive replies over the same connection) set
  /// this to false and need no reachable address.
  bool listen = true;
  /// An already-bound, already-listening socket to adopt instead of binding
  /// a new one (used by the forked-cluster runner, which binds before
  /// forking so children can dial a known port race-free). -1 = bind.
  int adopted_listen_fd = -1;
  /// Capacity of hosted inboxes in messages; 0 = unbounded.
  size_t inbox_capacity = 0;
  /// Connection attempts before a dial fails (the peer may start later).
  int connect_attempts = 30;
  /// First retry delay; doubles per attempt up to the cap below. The actual
  /// sleep is jittered uniformly in [delay/2, delay] so a whole cluster
  /// reconnecting to a restarted root does not thundering-herd it.
  DurationUs connect_backoff_initial_us = MillisUs(10);
  /// Retry delay cap.
  DurationUs connect_backoff_max_us = MillisUs(1000);
  /// Seed for the dial-backoff jitter draw; 0 derives one from the pid so
  /// forked processes naturally de-synchronize.
  uint64_t dial_jitter_seed = 0;
  /// Sequence-number epoch, occupying the top 8 bits of every stamped
  /// `Message::seq`. A restarted process must use a fresh epoch so its new
  /// 1-based stream does not collide with its previous life's numbers inside
  /// receivers' dedup windows.
  uint32_t seq_epoch = 0;
  /// Socket send/receive timeout. Blocked I/O wakes at this granularity to
  /// notice shutdown; it is not a hard deadline on a transfer.
  DurationUs io_timeout_us = MillisUs(200);
  /// Largest accepted frame payload (corrupt length-prefix defence).
  uint32_t max_frame_payload = 64u << 20;
  /// Fault injection: probability per outbound frame of flipping one random
  /// byte after the length-prefix header (payload or CRC trailer) before it
  /// hits the socket, exercising the receiver's checksum path end to end.
  /// Flips stay clear of the header so framing survives and the receiver
  /// drops the one corrupt frame instead of the connection. 0 disables.
  double corrupt_rate = 0;
  /// Seed for the corruption injector; 0 derives one from the pid.
  uint64_t corrupt_seed = 0;
  /// Metrics sink for the `transport.sent.*` / `transport.recv.*`
  /// instruments. When null, the transport owns a private registry
  /// (reachable via `registry()`). Must outlive the transport when provided.
  obs::Registry* registry = nullptr;
};

/// \brief POSIX TCP implementation of `Transport`.
///
/// One instance per OS process. It hosts the inboxes of this process's nodes
/// (`AddLocalNode`), listens for inbound connections (`Start`), and dials
/// configured peers (`AddPeer`) lazily on first send, with bounded retry and
/// exponential backoff so processes may start in any order.
///
/// Wire format: every message travels as one `EncodeFrame` frame, so the
/// bytes written per message equal `Message::WireBytes()` — the measured
/// per-link counters (`LinkTraffic`) are directly comparable to the
/// in-process fabric's simulated accounting.
///
/// Connections are bidirectional. A dialer opens with a hello preamble
/// announcing its hosted node ids; the acceptor uses those to route replies
/// back over the same connection. In a star topology only the edge processes
/// therefore need the root's address, never the reverse.
///
/// Threads: one acceptor, plus one reader and one writer per connection.
/// `Send` enqueues to the connection's outbox and never blocks on the
/// socket; readers push received messages straight into the hosted inbox
/// `Channel`s, so node run loops are identical to the simulation's.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpTransportOptions options = TcpTransportOptions());
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Hosts node \p id on this transport (creates its inbox). Fails on
  /// duplicates. Call before `Start` so hello preambles announce the id.
  Status AddLocalNode(NodeId id);

  /// Registers the dial address for remote node \p id. The connection is
  /// established lazily on the first send to \p id.
  Status AddPeer(NodeId id, const std::string& host, uint16_t port);

  /// Opens the listener (unless configured off) and starts the acceptor.
  Status Start();

  /// Port the listener is bound to (useful with an ephemeral `listen_port`).
  uint16_t bound_port() const;

  Status Send(net::Message m) override;
  net::Channel* Inbox(NodeId id) override;

  /// Traffic sent by this process, per directed link, measured from the
  /// bytes actually written to sockets (loopback sends to hosted nodes are
  /// charged their `WireBytes` equivalent for cross-transport parity).
  LinkTrafficMap LinkTraffic() const override;
  std::map<net::MessageType, net::TrafficCounters> TrafficByType() const override;

  /// Traffic received from remote peers, per directed link, measured from
  /// bytes read off sockets. Event counts are reconstructed from the
  /// payloads of event-carrying message types.
  LinkTrafficMap ReceivedTraffic() const;

  /// Received traffic broken down by message type.
  std::map<net::MessageType, net::TrafficCounters> ReceivedByType() const;

  /// The registry this transport records into (the options-provided one, or
  /// the transport's own private registry).
  obs::Registry* registry() const { return registry_; }

  /// Flushes outbound queues, closes the listener and every connection,
  /// joins all I/O threads, and closes hosted inboxes. Idempotent.
  void Shutdown() override;

 private:
  /// One live socket with its I/O threads.
  struct Conn {
    int fd = -1;
    /// Outbound queue; the writer thread drains it onto the socket.
    std::unique_ptr<net::Channel> outbox;
    std::thread reader;
    std::thread writer;
    std::atomic<bool> dead{false};
  };

  /// Stamps the next per-destination sequence number (epoch in the top 8
  /// bits, a 1-based 24-bit counter below).
  uint32_t NextSeqFor(NodeId dst);
  /// Route to \p dst: an existing live connection, else a lazy dial of the
  /// configured peer address.
  Result<Conn*> ConnFor(NodeId dst);
  /// Connects to host:port with bounded retry + exponential backoff and
  /// writes the hello preamble. Returns the connected fd.
  Result<int> DialWithRetry(const std::string& host, uint16_t port);
  /// Wraps \p fd in a Conn with reader/writer threads (mu_ held).
  Conn* AdoptLocked(int fd, bool expect_hello);
  void AcceptLoop();
  void ReaderLoop(Conn* c, bool expect_hello);
  void WriterLoop(Conn* c);
  TcpTransportOptions options_;
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;
  /// Registry-backed per-link / per-type counters: bytes written to sockets
  /// (plus loopback `WireBytes` equivalents) and bytes read off sockets.
  net::TrafficInstruments sent_;
  net::TrafficInstruments recv_;
  std::atomic<bool> stopped_{false};

  mutable std::mutex mu_;  // guards everything below
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  bool started_ = false;
  std::thread accept_thread_;
  std::map<NodeId, std::unique_ptr<net::Channel>> inboxes_;
  struct Peer {
    std::string host;
    uint16_t port;
  };
  std::map<NodeId, Peer> peers_;
  /// Live route per remote node: configured (dialed) or learned (hello).
  std::map<NodeId, Conn*> routes_;
  std::vector<std::unique_ptr<Conn>> conns_;
  /// Per-destination sequence counters (guarded by mu_).
  std::map<NodeId, uint32_t> next_seq_;
  /// Dial-backoff jitter draw (own mutex: dialing happens outside mu_).
  std::mutex jitter_mu_;
  Rng jitter_rng_;
  /// Corruption-injector draws (own mutex: shared by all writer threads).
  std::mutex corrupt_mu_;
  Rng corrupt_rng_;
  /// Frames corrupted: injected on send (`layer=inject`) and detected +
  /// dropped on receive (`layer=tcp`).
  obs::Counter* c_corrupted_total_;
  obs::Counter* c_corrupted_inject_;
  obs::Counter* c_corrupted_recv_;
};

}  // namespace dema::transport
