#pragma once

#include <map>
#include <utility>

#include "common/status.h"
#include "net/channel.h"
#include "net/message.h"

namespace dema::transport {

/// Per-link traffic totals, keyed by the directed (src, dst) pair.
using LinkTrafficMap =
    std::map<std::pair<NodeId, NodeId>, net::TrafficCounters>;

/// \brief Abstract message transport between nodes.
///
/// Node logic (local, relay, root, stream sources) is written against this
/// interface only, so the same binary runs unchanged over the in-process
/// simulation fabric (`net::Network`) or real sockets (`TcpTransport`). A
/// transport owns the inboxes of the nodes it hosts; `Send` routes a framed
/// message to its destination — a local inbox push for hosted nodes, a wire
/// transfer for remote ones.
///
/// Contract shared by all implementations:
///  - `Send` is safe from any thread and may block under backpressure.
///  - Messages between one (src, dst) pair are delivered in send order.
///  - Per-link counters charge exactly `Message::WireBytes()` per message,
///    so network-cost numbers are comparable across transports.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Delivers \p m to `m.dst`. Fails when no route to the destination exists
  /// or the transport is shut down.
  virtual Status Send(net::Message m) = 0;

  /// The inbox of a node hosted by this transport, or nullptr when \p id is
  /// not hosted here. The pointer stays valid until `Shutdown`.
  virtual net::Channel* Inbox(NodeId id) = 0;

  /// Traffic sent by this transport, per directed link.
  virtual LinkTrafficMap LinkTraffic() const = 0;

  /// Traffic sent by this transport, broken down by message type.
  virtual std::map<net::MessageType, net::TrafficCounters> TrafficByType()
      const = 0;

  /// Stops all delivery and closes every hosted inbox (consumers drain,
  /// producers fail). Idempotent.
  virtual void Shutdown() = 0;
};

}  // namespace dema::transport
