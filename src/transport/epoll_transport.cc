#include "transport/epoll_transport.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.h"

namespace dema::transport {

namespace {
// One epoll_wait services at most this many ready fds per pass; the rest
// stay ready (level-triggered) and land in the next pass.
constexpr int kMaxEvents = 64;
// Upper bound on a single epoll_wait sleep so a loop with no timers still
// notices Stop() promptly even if the wake write is lost to a race.
constexpr int kMaxWaitMs = 100;
}  // namespace

EpollLoop::~EpollLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

Status EpollLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::NetworkError(std::string("epoll_create1 failed: ") +
                                std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return Status::NetworkError(std::string("eventfd failed: ") +
                                std::strerror(errno));
  }
  return Add(wake_fd_, EPOLLIN, [this](uint32_t) { DrainWakeFd(); });
}

TimestampUs EpollLoop::NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void EpollLoop::Run() {
  while (!stopping()) {
    epoll_event events[kMaxEvents];
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, NextTimeoutMs());
    if (n < 0 && errno != EINTR) {
      DEMA_LOG(Warn) << "epoll_wait failed: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n && !stopping(); ++i) {
      auto it = callbacks_.find(events[i].data.fd);
      // A callback earlier in this pass may have Remove()d a later fd.
      if (it == callbacks_.end()) continue;
      it->second(events[i].events);
    }
    RunPostedTasks();
    RunExpiredTimers();
    if (tick_ && !stopping()) tick_();
  }
  // Final drain: tasks posted between the last pass and Stop() still run
  // (Shutdown relies on its posted work executing).
  RunPostedTasks();
  finished_.store(true, std::memory_order_release);
}

void EpollLoop::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  Wake();
}

void EpollLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  Wake();
}

void EpollLoop::Wake() {
  uint64_t one = 1;
  // Failure (full counter) still leaves the eventfd readable: wake works.
  [[maybe_unused]] ssize_t r = ::write(wake_fd_, &one, sizeof(one));
}

Status EpollLoop::Add(int fd, uint32_t events, FdCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::NetworkError(std::string("epoll_ctl(ADD) failed: ") +
                                std::strerror(errno));
  }
  callbacks_[fd] = std::move(cb);
  return Status::OK();
}

Status EpollLoop::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::NetworkError(std::string("epoll_ctl(MOD) failed: ") +
                                std::strerror(errno));
  }
  return Status::OK();
}

void EpollLoop::Remove(int fd) {
  if (callbacks_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EpollLoop::PostDelayed(DurationUs delay_us, std::function<void()> fn) {
  timers_.push(Timer{NowUs() + delay_us, next_timer_id_++, std::move(fn)});
}

void EpollLoop::DrainWakeFd() {
  uint64_t count;
  while (::read(wake_fd_, &count, sizeof(count)) > 0) {
  }
}

int EpollLoop::NextTimeoutMs() const {
  if (timers_.empty()) return kMaxWaitMs;
  TimestampUs now = NowUs();
  if (timers_.top().deadline_us <= now) return 0;
  auto ms = (timers_.top().deadline_us - now + 999) / 1000;
  return static_cast<int>(std::min<TimestampUs>(ms, kMaxWaitMs));
}

void EpollLoop::RunExpiredTimers() {
  TimestampUs now = NowUs();
  while (!timers_.empty() && timers_.top().deadline_us <= now && !stopping()) {
    auto fn = std::move(const_cast<Timer&>(timers_.top()).fn);
    timers_.pop();
    fn();
  }
}

void EpollLoop::RunPostedTasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    tasks.swap(posted_);
  }
  for (auto& fn : tasks) fn();
}

}  // namespace dema::transport
