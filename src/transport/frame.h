#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "net/message.h"

namespace dema::transport {

/// \brief Wire framing for the TCP transport (protocol version 3).
///
/// A frame is the simulated envelope split around the payload:
///
///   u16 type | u32 src | u32 dst | u32 seq | u32 payload_size |
///   payload bytes | u32 crc32c
///
/// The CRC32C trailer covers header + payload, so bit flips anywhere in the
/// frame are detected before the payload reaches a decoder. Header + trailer
/// together equal `net::kEnvelopeWireBytes`, so a frame still occupies
/// exactly `Message::WireBytes()` bytes on the socket — the TCP transport's
/// measured per-link byte counters stay directly comparable to the
/// in-process fabric's accounting (and to the paper's Fig. 6 numbers).
/// The fixed header doubles as the length prefix: a receiver reads
/// `kFrameHeaderBytes`, validates, reads `payload_size` more bytes, then the
/// trailer.
inline constexpr size_t kFrameTrailerBytes = sizeof(uint32_t);
inline constexpr size_t kFrameHeaderBytes =
    net::kEnvelopeWireBytes - kFrameTrailerBytes;

/// \brief Decoded frame header (the envelope fields).
struct FrameHeader {
  net::MessageType type = net::MessageType::kShutdown;
  NodeId src = 0;
  NodeId dst = 0;
  uint32_t seq = 0;
  uint32_t payload_size = 0;
};

/// True when \p raw is a defined `MessageType` value.
bool IsKnownMessageType(uint16_t raw);

/// \brief Appends the frame for \p m (header + payload + CRC trailer) to
/// \p out.
///
/// Exactly `m.WireBytes()` bytes are appended.
void EncodeFrame(const net::Message& m, std::vector<uint8_t>* out);

/// \brief CRC32C over a frame's header and payload (the trailer's expected
/// value). The regions may be discontiguous, as on the receive path.
uint32_t ComputeFrameCrc(const uint8_t* header, size_t header_size,
                         const uint8_t* payload, size_t payload_size);

/// \brief Checks a received frame's CRC trailer against header + payload.
///
/// \p trailer points at the `kFrameTrailerBytes` checksum bytes. Fails with
/// `SerializationError` on a mismatch — the caller drops the frame (framing
/// is intact; the connection survives) and counts it in `net.corrupted`.
Status VerifyFrameCrc(const uint8_t* header, size_t header_size,
                      const uint8_t* payload, size_t payload_size,
                      const uint8_t* trailer);

/// \brief Parses and validates a frame header from \p data.
///
/// Fails on short buffers, unknown message types, and payload sizes above
/// \p max_payload (protocol-error defence: a corrupt length prefix must not
/// drive a huge allocation).
Status DecodeFrameHeader(const uint8_t* data, size_t size, uint32_t max_payload,
                         FrameHeader* out);

/// \brief Recovers the raw-event count metadata of a received message.
///
/// `Message::event_count` is sender-side metadata and not part of the wire
/// format, so a receiver reconstructs it by peeking the payload of the two
/// event-carrying message types (EventBatch, CandidateReply). The declared
/// count is cross-checked against the actual encoded event stream — a
/// mismatch (count lies about the bytes that follow) fails the decode
/// rather than poisoning downstream accounting. Returns 0 for every other
/// type; fails only on a corrupt event-carrying payload.
Result<uint64_t> PeekEventCount(net::MessageType type, net::ByteSpan payload);

// --- connection handshake ----------------------------------------------------

/// First bytes on every dialed connection: magic, protocol version, then the
/// dialer's hosted node ids (u32 magic | u32 version | u32 count |
/// count * u32 id). The acceptor uses the ids to route replies back over the
/// same connection, so only one side of a star topology needs configured
/// addresses. Version mismatches are rejected at accept time, before any
/// frame is parsed — a v1 peer (no version field, no CRC trailers) fails
/// cleanly here instead of desynchronizing the frame stream.
inline constexpr uint32_t kHelloMagic = 0x44454D41;  // "DEMA"

/// Wire protocol version. v1: 18-byte envelope, no checksum, 2-field hello.
/// v2: CRC32C frame trailer, 3-field hello with version negotiation.
/// v3: session resilience — kHeartbeat/kAck control frames, cumulative
/// per-(src,dst) acks, and sender-side retained-frame replay across
/// reconnects (a v2 peer would reject the new frame types mid-stream, so
/// the handshake keeps versions strict).
inline constexpr uint32_t kProtocolVersion = 3;

/// Upper bound on hello node counts (defence against corrupt preambles).
inline constexpr uint32_t kMaxHelloNodes = 1u << 16;

/// \brief Appends the hello preamble announcing \p nodes to \p out.
void EncodeHello(const std::vector<NodeId>& nodes, std::vector<uint8_t>* out);

/// Bytes of the fixed hello prefix (magic + version + count).
inline constexpr size_t kHelloPrefixBytes = 3 * sizeof(uint32_t);

/// \brief Parses the fixed hello prefix; returns the announced node count.
Result<uint32_t> DecodeHelloPrefix(const uint8_t* data, size_t size);

/// \brief Parses \p count node ids following the hello prefix.
Result<std::vector<NodeId>> DecodeHelloNodes(const uint8_t* data, size_t size,
                                             uint32_t count);

}  // namespace dema::transport
