#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "net/message.h"

namespace dema::transport {

/// \brief Wire framing for the TCP transport.
///
/// A frame is exactly the simulated envelope followed by the payload:
///
///   u16 type | u32 src | u32 dst | u32 seq | u32 payload_size | payload bytes
///
/// so a frame occupies `Message::WireBytes()` bytes on the socket — the TCP
/// transport's measured per-link byte counters are directly comparable to
/// the in-process fabric's accounting (and to the paper's Fig. 6 numbers).
/// The fixed header doubles as the length prefix: a receiver reads
/// `kFrameHeaderBytes`, validates, then reads `payload_size` more bytes.
inline constexpr size_t kFrameHeaderBytes = net::kEnvelopeWireBytes;

/// \brief Decoded frame header (the envelope fields).
struct FrameHeader {
  net::MessageType type = net::MessageType::kShutdown;
  NodeId src = 0;
  NodeId dst = 0;
  uint32_t seq = 0;
  uint32_t payload_size = 0;
};

/// True when \p raw is a defined `MessageType` value.
bool IsKnownMessageType(uint16_t raw);

/// \brief Appends the frame for \p m (header + payload) to \p out.
///
/// Exactly `m.WireBytes()` bytes are appended.
void EncodeFrame(const net::Message& m, std::vector<uint8_t>* out);

/// \brief Parses and validates a frame header from \p data.
///
/// Fails on short buffers, unknown message types, and payload sizes above
/// \p max_payload (protocol-error defence: a corrupt length prefix must not
/// drive a huge allocation).
Status DecodeFrameHeader(const uint8_t* data, size_t size, uint32_t max_payload,
                         FrameHeader* out);

/// \brief Recovers the raw-event count metadata of a received message.
///
/// `Message::event_count` is sender-side metadata and not part of the wire
/// format, so a receiver reconstructs it by peeking the payload of the two
/// event-carrying message types (EventBatch, CandidateReply). Returns 0 for
/// every other type; fails only on a corrupt event-carrying payload.
Result<uint64_t> PeekEventCount(net::MessageType type,
                                const std::vector<uint8_t>& payload);

// --- connection handshake ----------------------------------------------------

/// First bytes on every dialed connection: magic, then the dialer's hosted
/// node ids (u32 magic | u32 count | count * u32 id). The acceptor uses the
/// ids to route replies back over the same connection, so only one side of a
/// star topology needs configured addresses.
inline constexpr uint32_t kHelloMagic = 0x44454D41;  // "DEMA"

/// Upper bound on hello node counts (defence against corrupt preambles).
inline constexpr uint32_t kMaxHelloNodes = 1u << 16;

/// \brief Appends the hello preamble announcing \p nodes to \p out.
void EncodeHello(const std::vector<NodeId>& nodes, std::vector<uint8_t>* out);

/// Bytes of the fixed hello prefix (magic + count).
inline constexpr size_t kHelloPrefixBytes = 2 * sizeof(uint32_t);

/// \brief Parses the fixed hello prefix; returns the announced node count.
Result<uint32_t> DecodeHelloPrefix(const uint8_t* data, size_t size);

/// \brief Parses \p count node ids following the hello prefix.
Result<std::vector<NodeId>> DecodeHelloNodes(const uint8_t* data, size_t size,
                                             uint32_t count);

}  // namespace dema::transport
