#include "transport/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.h"

namespace dema::transport {

namespace {

/// Encoded bytes a connection keeps in flight before the loop stops pulling
/// from its outbox (the outbox bound then backpressures `Send`).
constexpr size_t kWriteHighWater = 1u << 20;
/// Bytes one connection may read per loop pass before yielding (fairness;
/// level-triggered epoll re-delivers the remainder immediately).
constexpr size_t kReadBudget = 1u << 20;
/// Frames per writev call (well under IOV_MAX everywhere).
constexpr size_t kMaxIov = 64;

/// Applies the per-socket options every data connection uses: small-message
/// latency (no Nagle) and bounded blocking for the synchronous dial phase.
void ConfigureSocket(int fd, DurationUs io_timeout_us) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv;
  tv.tv_sec = io_timeout_us / kMicrosPerSecond;
  tv.tv_usec = io_timeout_us % kMicrosPerSecond;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::NetworkError(std::string("fcntl(O_NONBLOCK) failed: ") +
                                std::strerror(errno));
  }
  return Status::OK();
}

bool IsWouldBlock(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == EINTR;
}

/// Key of the (src, dst) sequence/ack stream — the same keying the
/// in-process fabric stamps with.
uint64_t StreamKey(NodeId src, NodeId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

/// RFC 1982 serial comparison (seq numbers wrap; a 2^31 window orders them).
bool SerialGt(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) > 0;
}

/// Slice `Send` waits per outbox-space poll, so a blocked sender notices
/// shutdown and a dead I/O loop promptly instead of waiting forever.
constexpr DurationUs kSendPollSliceUs = MillisUs(10);

/// Writes exactly \p n bytes on a (still blocking) dial-phase socket,
/// retrying timeout ticks until stopped.
Status WriteFull(int fd, const uint8_t* buf, size_t n,
                 const std::atomic<bool>& stop) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && IsWouldBlock(errno)) {
      if (stop.load(std::memory_order_relaxed)) {
        return Status::NetworkError("transport stopped mid-send");
      }
      continue;
    }
    return Status::NetworkError(std::string("send failed: ") +
                                std::strerror(errno));
  }
  return Status::OK();
}

/// Resolves host:port to an IPv4 socket address.
Status Resolve(const std::string& host, uint16_t port, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1) {
    return Status::OK();
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    return Status::NetworkError("cannot resolve host " + host + ": " +
                                ::gai_strerror(rc));
  }
  out->sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return Status::OK();
}

}  // namespace

Result<int> BindListenSocket(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::NetworkError(std::string("socket failed: ") +
                                std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  Status st = Resolve(host, port, &addr);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::NetworkError("bind to " + host + ":" + std::to_string(port) +
                                " failed: " + std::strerror(errno));
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    ::close(fd);
    return Status::NetworkError(std::string("listen failed: ") +
                                std::strerror(errno));
  }
  return fd;
}

Result<uint16_t> ListenSocketPort(int fd) {
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Status::NetworkError(std::string("getsockname failed: ") +
                                std::strerror(errno));
  }
  return ntohs(bound.sin_port);
}

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(std::move(options)),
      owned_registry_(options_.registry == nullptr ? new obs::Registry()
                                                   : nullptr),
      registry_(options_.registry == nullptr ? owned_registry_.get()
                                             : options_.registry),
      sent_(registry_, "transport.sent"),
      recv_(registry_, "transport.recv"),
      accept_failures_to_inject_(options_.inject_accept_failures),
      jitter_rng_(options_.dial_jitter_seed != 0
                      ? options_.dial_jitter_seed
                      : static_cast<uint64_t>(::getpid()) * 2654435761u + 1),
      corrupt_rng_(options_.corrupt_seed != 0
                       ? options_.corrupt_seed
                       : static_cast<uint64_t>(::getpid()) * 0x9E3779B9u + 3),
      c_corrupted_total_(registry_->GetCounter("net.corrupted")),
      c_corrupted_inject_(registry_->GetCounter("net.corrupted{layer=inject}")),
      c_corrupted_recv_(registry_->GetCounter("net.corrupted{layer=tcp}")),
      c_accept_errors_(registry_->GetCounter("net.accept_errors")),
      c_outbox_full_(registry_->GetCounter("net.outbox_full")),
      c_peer_down_(registry_->GetCounter("net.peer_down")),
      c_reconnects_(registry_->GetCounter("net.reconnects")),
      c_replayed_(registry_->GetCounter("net.replayed_frames")),
      c_dup_dropped_(registry_->GetCounter("net.dup_frames_dropped")),
      c_partial_frame_drops_(
          registry_->GetCounter("net.partial_frame_drops")),
      c_heartbeats_(registry_->GetCounter("net.heartbeats")),
      c_acks_(registry_->GetCounter("net.acks")),
      c_conn_kills_(registry_->GetCounter("net.conn_kills{layer=inject}")) {
  std::sort(options_.kill_conn_schedule.begin(),
            options_.kill_conn_schedule.end());
}

TcpTransport::~TcpTransport() { Shutdown(); }

Status TcpTransport::AddLocalNode(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = inboxes_.emplace(
      id, std::make_unique<net::Channel>(options_.inbox_capacity));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("node " + std::to_string(id) +
                                 " already hosted on this transport");
  }
  return Status::OK();
}

Status TcpTransport::AddPeer(NodeId id, const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = peers_.emplace(id, Peer{host, port});
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("peer " + std::to_string(id) +
                                 " already configured");
  }
  return Status::OK();
}

Status TcpTransport::EnsureLoopStarted() {
  std::lock_guard<std::mutex> lock(mu_);
  if (loop_started_) return Status::OK();
  DEMA_RETURN_NOT_OK(loop_.Init());
  // Every Send wakes the loop; the tick moves outbox messages to sockets.
  loop_.SetTickHandler([this] { DrainOutboxes(); });
  loop_thread_ = std::thread([this] { loop_.Run(); });
  loop_started_ = true;
  if (options_.heartbeat_interval_us > 0) {
    // Self-rescheduling liveness timer: half-interval granularity keeps
    // ping spacing and miss detection within one interval of exact.
    loop_.Post([this] {
      loop_.PostDelayed(options_.heartbeat_interval_us / 2 + 1,
                        [this] { HeartbeatTick(); });
    });
  }
  return Status::OK();
}

void TcpTransport::StopLoopForTest() {
  loop_.Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
}

void TcpTransport::RequestRedial(NodeId dst) {
  if (!options_.auto_reconnect || stopped_.load(std::memory_order_relaxed)) {
    return;
  }
  Session* session = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (peers_.find(dst) == peers_.end()) return;  // nothing to dial
    auto sit = sessions_.find(dst);
    if (sit == sessions_.end()) return;  // nothing queued or retained
    session = sit->second.get();
  }
  if (session->closing.load(std::memory_order_relaxed)) return;
  if (session->redial_pending.exchange(true)) return;  // one in flight
  {
    std::lock_guard<std::mutex> lock(redial_mu_);
    if (redial_stop_) {
      session->redial_pending.store(false);
      return;
    }
    redial_queue_.push_back(dst);
    if (!redial_started_) {
      redial_started_ = true;
      redial_thread_ = std::thread([this] { RedialThreadMain(); });
    }
  }
  redial_cv_.notify_one();
}

void TcpTransport::RedialThreadMain() {
  while (true) {
    NodeId dst = 0;
    {
      std::unique_lock<std::mutex> lock(redial_mu_);
      redial_cv_.wait(lock,
                      [&] { return redial_stop_ || !redial_queue_.empty(); });
      if (redial_stop_) return;
      dst = redial_queue_.front();
      redial_queue_.pop_front();
    }
    Peer peer;
    Session* session = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto pit = peers_.find(dst);
      auto sit = sessions_.find(dst);
      if (pit == peers_.end() || sit == sessions_.end()) continue;
      peer = pit->second;
      session = sit->second.get();
    }
    auto fd = DialWithRetry(peer.host, peer.port);
    // Clear the dedup flag before adopting: if the fresh connection dies
    // instantly, its KillConn may queue the next round immediately.
    session->redial_pending.store(false);
    if (!fd.ok()) {
      DEMA_LOG(Warn) << "redial of node " << dst
                     << " gave up: " << fd.status();
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_.load()) {
        ::close(*fd);
        return;
      }
      auto rit = routes_.find(dst);
      if (rit != routes_.end() && !rit->second->dead.load()) {
        ::close(*fd);  // a racing sync dial won; use its route
        continue;
      }
      Conn* conn = AdoptLocked(*fd, /*expect_hello=*/false, {dst});
      routes_[dst] = conn;
    }
    c_reconnects_->Increment();
    loop_.Wake();
  }
}

Status TcpTransport::Start() {
  DEMA_RETURN_NOT_OK(EnsureLoopStarted());
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Status::InvalidArgument("transport already started");
  started_ = true;
  if (options_.adopted_listen_fd >= 0) {
    listen_fd_ = options_.adopted_listen_fd;
  } else if (options_.listen) {
    DEMA_ASSIGN_OR_RETURN(
        listen_fd_, BindListenSocket(options_.listen_host, options_.listen_port));
  } else {
    return Status::OK();  // pure client: no listener
  }

  // Read back the bound port (the configured one may have been ephemeral).
  DEMA_ASSIGN_OR_RETURN(bound_port_, ListenSocketPort(listen_fd_));
  DEMA_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
  const int lfd = listen_fd_;
  loop_.Post([this, lfd] {
    Status st = loop_.Add(lfd, EPOLLIN, [this](uint32_t) { OnAcceptReady(); });
    if (!st.ok()) DEMA_LOG(Warn) << "listener registration failed: " << st;
  });
  return Status::OK();
}

uint16_t TcpTransport::bound_port() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bound_port_;
}

net::Channel* TcpTransport::Inbox(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inboxes_.find(id);
  return it == inboxes_.end() ? nullptr : it->second.get();
}

uint32_t TcpTransport::NextSeqFor(NodeId src, NodeId dst) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t n = ++next_seq_[StreamKey(src, dst)];
  return (options_.seq_epoch << 24) | (n & 0x00FFFFFFu);
}

TcpTransport::Session* TcpTransport::SessionForLocked(NodeId dst) {
  auto it = sessions_.find(dst);
  if (it != sessions_.end()) return it->second.get();
  auto owned = std::make_unique<Session>();
  owned->dst = dst;
  owned->outbox = std::make_unique<net::Channel>(options_.outbox_capacity);
  Session* session = owned.get();
  sessions_.emplace(dst, std::move(owned));
  return session;
}

DurationUs TcpTransport::RetransmitTimeoutUs() const {
  if (options_.retransmit_timeout_us > 0) return options_.retransmit_timeout_us;
  return options_.heartbeat_interval_us * 4;
}

size_t TcpTransport::RetainCapacity() const {
  if (options_.retain_capacity > 0) return options_.retain_capacity;
  // Default: as much retained as queueable, so retention roughly doubles a
  // destination's memory bound instead of multiplying it.
  return options_.outbox_capacity;
}

Status TcpTransport::Send(net::Message m) {
  if (stopped_.load(std::memory_order_relaxed)) {
    return Status::NetworkError("transport is shut down");
  }
  m.seq = NextSeqFor(m.src, m.dst);
  net::Channel* local = Inbox(m.dst);
  if (local != nullptr) {
    // Loopback to a node hosted in this process: no socket involved; charge
    // the frame-equivalent bytes so accounting matches other transports.
    sent_.Charge(m.src, m.dst, m.type, m.WireBytes(), m.event_count);
    if (!local->Push(std::move(m))) {
      return Status::NetworkError("inbox of destination node closed");
    }
    return Status::OK();
  }

  const NodeId dst = m.dst;
  Session* session = nullptr;
  bool route_live = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto rit = routes_.find(dst);
    route_live = rit != routes_.end() &&
                 !rit->second->dead.load(std::memory_order_relaxed);
    auto sit = sessions_.find(dst);
    if (sit != sessions_.end()) {
      session = sit->second.get();
    } else if (route_live) {
      // Hello-learned route (we are the acceptor replying): the session is
      // created on first reply.
      session = SessionForLocked(dst);
    } else if (peers_.find(dst) == peers_.end()) {
      return Status::NotFound("no route to node " + std::to_string(dst) +
                              " (no connection and no configured peer)");
    }
  }
  if (session != nullptr && !route_live && options_.auto_reconnect) {
    // The connection died under an existing session: queue a background
    // redial (deduped) and let the message wait in the outbox meanwhile.
    RequestRedial(dst);
  } else if (!route_live) {
    // First send to a configured peer — or a dead route without background
    // redial: dial synchronously with bounded retry, as the pre-session
    // transport did, so a missing listener surfaces here.
    DEMA_ASSIGN_OR_RETURN(Conn * conn, ConnFor(dst));
    (void)conn;
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_.load()) return Status::NetworkError("transport is shut down");
    session = SessionForLocked(dst);
  }
  if (m.type == net::MessageType::kShutdown) {
    // The stream is ending by design: a close that follows is orderly, not
    // a peer failure, and must not trigger redial.
    session->closing.store(true, std::memory_order_relaxed);
  }

  // Bounded-slice push: classic backpressure against a full outbox, but
  // shutdown-aware — a `Send` blocked here fails fast when `Shutdown`
  // begins or the I/O loop is no longer alive to drain the queue, instead
  // of waiting forever on space that can never free.
  bool counted_full = false;
  while (true) {
    net::Channel::PushResult r =
        session->outbox->PushFor(&m, options_.outbox_block ? kSendPollSliceUs
                                                           : DurationUs{0});
    if (r == net::Channel::PushResult::kPushed) break;
    if (r == net::Channel::PushResult::kClosed) {
      return Status::NetworkError("connection to destination closed");
    }
    if (!counted_full) {
      c_outbox_full_->Increment();
      counted_full = true;
    }
    if (!options_.outbox_block) {
      return Status::NetworkError("outbox to node " + std::to_string(dst) +
                                  " is full (" +
                                  std::to_string(options_.outbox_capacity) +
                                  " messages queued)");
    }
    if (stopped_.load(std::memory_order_relaxed)) {
      return Status::NetworkError(
          "transport shut down while a send waited for outbox space");
    }
    if (loop_.finished()) {
      return Status::NetworkError(
          "transport I/O loop exited while a send waited for outbox space "
          "(frames to node " + std::to_string(dst) + " can no longer drain)");
    }
    // The route may have died while we waited: with nothing draining the
    // outbox, space would never free. Make sure a connection is coming —
    // background redial when enabled, else a synchronous dial whose failure
    // surfaces here instead of as an eternal block.
    bool live;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto rit = routes_.find(dst);
      live = rit != routes_.end() &&
             !rit->second->dead.load(std::memory_order_relaxed);
    }
    if (!live) {
      if (options_.auto_reconnect) {
        RequestRedial(dst);
      } else {
        auto conn = ConnFor(dst);
        if (!conn.ok()) return conn.status();
      }
    }
  }
  loop_.Wake();
  return Status::OK();
}

Result<TcpTransport::Conn*> TcpTransport::ConnFor(NodeId dst) {
  Peer peer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto rit = routes_.find(dst);
    if (rit != routes_.end() && !rit->second->dead.load()) return rit->second;
    auto pit = peers_.find(dst);
    if (pit == peers_.end()) {
      return Status::NotFound("no route to node " + std::to_string(dst) +
                              " (no connection and no configured peer)");
    }
    peer = pit->second;
  }
  DEMA_RETURN_NOT_OK(EnsureLoopStarted());
  // Dial outside the lock: connect retries can take a while.
  DEMA_ASSIGN_OR_RETURN(int fd, DialWithRetry(peer.host, peer.port));
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_.load()) {
    ::close(fd);  // dial completed after Shutdown reaped the conn table
    return Status::NetworkError("transport is shut down");
  }
  auto rit = routes_.find(dst);
  if (rit != routes_.end() && !rit->second->dead.load()) {
    ::close(fd);  // lost a dial race; use the established route
    return rit->second;
  }
  Conn* conn = AdoptLocked(fd, /*expect_hello=*/false, {dst});
  routes_[dst] = conn;
  return conn;
}

Result<int> TcpTransport::DialWithRetry(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  DEMA_RETURN_NOT_OK(Resolve(host, port, &addr));
  std::vector<uint8_t> hello;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<NodeId> hosted;
    hosted.reserve(inboxes_.size());
    for (const auto& [id, inbox] : inboxes_) {
      (void)inbox;
      hosted.push_back(id);
    }
    EncodeHello(hosted, &hello);
  }

  DurationUs backoff = options_.connect_backoff_initial_us;
  Status last = Status::NetworkError("no connect attempt made");
  for (int attempt = 0; attempt < options_.connect_attempts; ++attempt) {
    if (stopped_.load()) return Status::NetworkError("transport is shut down");
    if (attempt > 0) {
      // Jitter the sleep so many dialers retrying against one freshly
      // restarted acceptor spread out instead of arriving in lockstep.
      DurationUs sleep_us = backoff;
      {
        std::lock_guard<std::mutex> lock(jitter_mu_);
        sleep_us = static_cast<DurationUs>(jitter_rng_.Uniform(
            static_cast<double>(backoff) / 2, static_cast<double>(backoff)));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      backoff = std::min<DurationUs>(backoff * 2, options_.connect_backoff_max_us);
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      last = Status::NetworkError(std::string("socket failed: ") +
                                  std::strerror(errno));
      continue;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      last = Status::NetworkError("connect to " + host + ":" +
                                  std::to_string(port) +
                                  " failed: " + std::strerror(errno));
      ::close(fd);
      continue;
    }
    ConfigureSocket(fd, options_.io_timeout_us);
    Status st = WriteFull(fd, hello.data(), hello.size(), stopped_);
    if (!st.ok()) {
      ::close(fd);
      last = st;
      continue;
    }
    return fd;
  }
  return last;
}

TcpTransport::Conn* TcpTransport::AdoptLocked(int fd, bool expect_hello,
                                              std::vector<NodeId> dsts) {
  auto owned = std::make_unique<Conn>();
  Conn* conn = owned.get();
  conn->fd = fd;
  conn->expect_hello = expect_hello;
  // Written before the registration task is posted, so loop-thread reads of
  // `dsts` are ordered after this store.
  conn->dsts = std::move(dsts);
  conns_.push_back(std::move(owned));
  loop_.Post([this, conn] { RegisterConn(conn); });
  return conn;
}

// --- loop-thread side --------------------------------------------------------

void TcpTransport::RegisterConn(Conn* conn) {
  if (draining_ || loop_.stopping()) {
    KillConn(conn);
    return;
  }
  Status st = SetNonBlocking(conn->fd);
  if (st.ok()) {
    st = loop_.Add(conn->fd, EPOLLIN,
                   [this, conn](uint32_t ev) { OnConnEvent(conn, ev); });
  }
  if (!st.ok()) {
    DEMA_LOG(Warn) << "connection registration failed: " << st;
    KillConn(conn);
    return;
  }
  conn->registered = true;
  conn->last_recv_us = EpollLoop::NowUs();
  // A (re)dialed connection resumes its destinations' sessions: retained
  // frames replay ahead of fresh outbox traffic, preserving stream order.
  std::vector<Session*> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (NodeId dst : conn->dsts) {
      auto sit = sessions_.find(dst);
      if (sit != sessions_.end()) sessions.push_back(sit->second.get());
    }
  }
  for (Session* s : sessions) ReplaySession(s, conn);
}

void TcpTransport::OnAcceptReady() {
  while (!draining_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK) return;  // backlog drained
      if (err == EINTR || err == ECONNABORTED || err == EPROTO) {
        continue;  // that one connection is gone; the listener is fine
      }
      OnAcceptError(err);
      return;
    }
    if (accept_failures_to_inject_ > 0) {
      // Test hook: pretend accept hit a transient hard error (EMFILE-style)
      // so the resilience path — count, back off, survive — is exercised
      // deterministically.
      --accept_failures_to_inject_;
      ::close(fd);
      OnAcceptError(EMFILE);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    AdoptLocked(fd, /*expect_hello=*/true, {});
  }
}

void TcpTransport::OnAcceptError(int err) {
  // The pre-loop transport returned here, killing accept forever — one
  // transient EMFILE and the process was deaf. Count it, pull the listener
  // out of the epoll set (a ready listener would spin a level-triggered
  // loop), and re-arm after a backoff. The listener never dies.
  DEMA_LOG(Warn) << "accept failed (will retry): " << std::strerror(err);
  c_accept_errors_->Increment();
  loop_.Remove(listen_fd_);
  loop_.PostDelayed(options_.accept_backoff_us, [this] {
    if (draining_ || loop_.stopping()) return;
    Status st =
        loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) { OnAcceptReady(); });
    if (!st.ok()) DEMA_LOG(Warn) << "listener re-arm failed: " << st;
  });
}

void TcpTransport::OnConnEvent(Conn* conn, uint32_t events) {
  if (conn->dead.load(std::memory_order_relaxed)) return;
  if (events & EPOLLOUT) TryWrite(conn);
  if (events & EPOLLIN) {
    ReadReady(conn);
  } else if (events & (EPOLLHUP | EPOLLERR)) {
    // No readable data to drain first: the connection is gone.
    KillConn(conn);
  }
}

void TcpTransport::ReadReady(Conn* conn) {
  size_t budget = kReadBudget;
  while (budget > 0 && !conn->dead.load(std::memory_order_relaxed)) {
    EnsureReadCapacity(conn, kFrameHeaderBytes);
    uint8_t* dst = conn->rblock->data() + conn->rend;
    size_t room = conn->rblock->size() - conn->rend;
    ssize_t n = ::recv(conn->fd, dst, std::min(room, budget), 0);
    if (n > 0) {
      conn->rend += static_cast<size_t>(n);
      budget -= static_cast<size_t>(n);
      conn->last_recv_us = EpollLoop::NowUs();
      if (!ParseFrames(conn)) return;
      continue;
    }
    if (n == 0) {
      // Peer closed; a partial inbound frame is counted by KillConn
      // (`net.partial_frame_drops`) instead of vanishing silently.
      KillConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    DEMA_LOG(Warn) << "connection read error: " << std::strerror(errno);
    KillConn(conn);
    return;
  }
  // Acknowledge every stream this pass progressed in one coalesced frame.
  if (!conn->dead.load(std::memory_order_relaxed)) FlushAcks(conn);
}

void TcpTransport::EnsureReadCapacity(Conn* conn, size_t hint) {
  if (conn->rblock == nullptr) {
    conn->rblock = std::make_shared<std::vector<uint8_t>>(
        std::max(options_.recv_block_bytes, hint));
    conn->rpos = conn->rend = 0;
    return;
  }
  if (conn->rend < conn->rblock->size()) return;  // room to fill
  // Block full. Parsed bytes may be pinned by delivered payload views, so
  // the block is never rewound in place — a fresh block takes over, with the
  // unparsed tail (at most one partial frame) copied to its front. This is
  // the only copy on the receive path.
  size_t tail = conn->rend - conn->rpos;
  size_t want = std::max(tail + hint, tail * 2);
  if (!conn->expect_hello && tail >= kFrameHeaderBytes) {
    // The partial frame's header is already here: size the fresh block to
    // hold the whole frame so an oversized payload moves exactly once.
    FrameHeader h;
    if (DecodeFrameHeader(conn->rblock->data() + conn->rpos, kFrameHeaderBytes,
                          options_.max_frame_payload, &h)
            .ok()) {
      want = kFrameHeaderBytes + h.payload_size + kFrameTrailerBytes;
    }
  }
  auto fresh = std::make_shared<std::vector<uint8_t>>(
      std::max(options_.recv_block_bytes, want));
  std::memcpy(fresh->data(), conn->rblock->data() + conn->rpos, tail);
  conn->rblock = std::move(fresh);
  conn->rpos = 0;
  conn->rend = tail;
}

bool TcpTransport::ParseFrames(Conn* conn) {
  while (true) {
    const uint8_t* base = conn->rblock->data();
    size_t avail = conn->rend - conn->rpos;

    if (conn->expect_hello) {
      if (avail < kHelloPrefixBytes) return true;
      auto count = DecodeHelloPrefix(base + conn->rpos, kHelloPrefixBytes);
      if (!count.ok()) {
        DEMA_LOG(Warn) << "dropping connection: " << count.status();
        // FIN now so the rejected peer (e.g. a version-1 dialer) sees the
        // rejection immediately instead of hanging until our Shutdown();
        // Shutdown() still owns the close, so the fd is reaped exactly once.
        ::shutdown(conn->fd, SHUT_RDWR);
        KillConn(conn);
        return false;
      }
      size_t ids_bytes = *count * sizeof(uint32_t);
      if (avail < kHelloPrefixBytes + ids_bytes) {
        EnsureReadCapacity(conn, kHelloPrefixBytes + ids_bytes - avail);
        return true;
      }
      auto ids = DecodeHelloNodes(base + conn->rpos + kHelloPrefixBytes,
                                  ids_bytes, *count);
      if (!ids.ok()) {
        DEMA_LOG(Warn) << "dropping connection: " << ids.status();
        ::shutdown(conn->fd, SHUT_RDWR);
        KillConn(conn);
        return false;
      }
      std::vector<Session*> resumed;
      {
        std::lock_guard<std::mutex> lock(mu_);
        // Replies to the dialer's nodes travel back over this connection.
        // A reconnecting dialer re-announces the same ids: the route
        // rebinds from its dead predecessor and the session resumes.
        for (NodeId id : *ids) {
          routes_[id] = conn;
          conn->dsts.push_back(id);
          auto sit = sessions_.find(id);
          if (sit != sessions_.end()) resumed.push_back(sit->second.get());
        }
      }
      conn->rpos += kHelloPrefixBytes + ids_bytes;
      conn->expect_hello = false;
      for (Session* s : resumed) ReplaySession(s, conn);
      continue;
    }

    if (avail < kFrameHeaderBytes) return true;
    FrameHeader h;
    Status st = DecodeFrameHeader(base + conn->rpos, kFrameHeaderBytes,
                                  options_.max_frame_payload, &h);
    if (!st.ok()) {
      DEMA_LOG(Warn) << "dropping connection on bad frame: " << st;
      KillConn(conn);
      return false;
    }
    const size_t frame_total =
        kFrameHeaderBytes + h.payload_size + kFrameTrailerBytes;
    if (avail < frame_total) {
      EnsureReadCapacity(conn, frame_total - avail);
      return true;
    }

    const uint8_t* header = base + conn->rpos;
    const uint8_t* payload = header + kFrameHeaderBytes;
    const uint8_t* trailer = payload + h.payload_size;
    // The checksum guards the decoded header too, so verify before acting on
    // anything but the payload length (which framing already consumed). A
    // mismatch drops this frame only: framing is intact, the connection
    // survives, and the sender's retry machinery recovers the message.
    st = VerifyFrameCrc(header, kFrameHeaderBytes, payload, h.payload_size,
                        trailer);
    if (!st.ok()) {
      DEMA_LOG(Warn) << "dropping corrupt frame: " << st;
      c_corrupted_total_->Increment();
      c_corrupted_recv_->Increment();
      conn->rpos += frame_total;
      continue;
    }

    if (h.type == net::MessageType::kHeartbeat ||
        h.type == net::MessageType::kAck) {
      // Transport control: consumed here, never delivered, never charged to
      // the link-traffic instruments (byte parity with the fabric).
      HandleControlFrame(conn, h, payload);
      conn->rpos += frame_total;
      if (conn->dead.load(std::memory_order_relaxed)) return false;
      continue;
    }

    if (!AcceptSeq(h.src, h.dst, h.seq)) {
      // Retransmit duplicate (the original arrived): swallowed before the
      // inbox and before recv accounting, but re-acked below so the sender
      // stops replaying it.
      c_dup_dropped_->Increment();
      conn->rpos += frame_total;
      continue;
    }

    if (h.type == net::MessageType::kShutdown) conn->saw_shutdown = true;

    net::Message m;
    m.type = h.type;
    m.src = h.src;
    m.dst = h.dst;
    m.seq = h.seq;
    // Zero-copy delivery: the payload stays in the arena block, pinned by
    // the message for as long as any consumer holds it.
    m.SetPayloadView(conn->rblock, payload, h.payload_size);
    // Reconstruct the event-count metadata (sender-side only, not framed).
    auto events = PeekEventCount(h.type, m.payload_bytes());
    m.event_count = events.ok() ? *events : 0;
    recv_.Charge(h.src, h.dst, h.type, frame_total, m.event_count);
    conn->rpos += frame_total;

    net::Channel* inbox = Inbox(h.dst);
    if (inbox == nullptr) {
      DEMA_LOG(Warn) << "dropping frame for non-hosted node " << h.dst;
      continue;
    }
    inbox->Push(std::move(m));
  }
}

void TcpTransport::HandleControlFrame(Conn* conn, const FrameHeader& h,
                                      const uint8_t* payload) {
  net::Reader r(payload, h.payload_size);
  if (h.type == net::MessageType::kHeartbeat) {
    auto hb = net::Heartbeat::Deserialize(&r);
    if (!hb.ok()) {
      DEMA_LOG(Warn) << "dropping malformed heartbeat: " << hb.status();
      return;
    }
    if (hb->kind == net::Heartbeat::Kind::kPing) {
      // Echo the probe instant back so the pinger reads RTT off its own
      // monotonic clock; no shared clock needed.
      net::Heartbeat pong;
      pong.kind = net::Heartbeat::Kind::kPong;
      pong.probe_time_us = hb->probe_time_us;
      QueueControlFrame(conn, net::MakeMessage(net::MessageType::kHeartbeat,
                                               h.dst, h.src, pong));
      TryWrite(conn);
    } else if (!conn->dsts.empty()) {
      TimestampUs rtt = EpollLoop::NowUs() - hb->probe_time_us;
      registry_
          ->GetGauge("net.peer_rtt_us{peer=" +
                     std::to_string(conn->dsts.front()) + "}")
          ->Set(static_cast<int64_t>(rtt));
    }
    return;
  }
  auto ack = net::CumulativeAck::Deserialize(&r);
  if (!ack.ok()) {
    DEMA_LOG(Warn) << "dropping malformed ack: " << ack.status();
    return;
  }
  for (const auto& e : ack->entries) ApplyAck(e.src, e.dst, e.cum_seq);
}

bool TcpTransport::AcceptSeq(NodeId src, NodeId dst, uint32_t seq) {
  if (seq == 0) return true;  // unsequenced control
  RecvStream& s = recv_streams_[StreamKey(src, dst)];
  if (s.seen_any && (s.cum >> 24) != (seq >> 24)) {
    // New epoch: the sender restarted with fresh 1-based numbering. Its old
    // life's window is meaningless now — reset rather than mis-dedup.
    s = RecvStream{};
  }
  if (!s.seen_any) {
    s.seen_any = true;
    // "Nothing received yet in this epoch": counter zero, so a first frame
    // arriving out of order (e.g. seq 3 before retransmitted 1 and 2) opens
    // a gap instead of silently discarding the stream's start.
    s.cum = seq & 0xFF000000u;
  }
  s.ack_dirty = true;
  if (!SerialGt(seq, s.cum)) return false;  // at or below cum: duplicate
  if (seq == s.cum + 1) {
    s.cum = seq;
    // Absorb any out-of-order successors that became contiguous.
    auto it = s.ooo.begin();
    while (it != s.ooo.end() && *it == s.cum + 1) {
      s.cum = *it;
      it = s.ooo.erase(it);
    }
    return true;
  }
  if (s.ooo.count(seq) > 0) return false;  // duplicate of a gap frame
  if (s.ooo.size() >= kMaxHelloNodes) s.ooo.clear();  // corrupt-seq defence
  s.ooo.insert(seq);
  return true;
}

void TcpTransport::FlushAcks(Conn* conn) {
  // Every dirty stream belongs to this pass (acks flush at the end of each
  // connection's read pass, so flags never leak across connections).
  net::CumulativeAck ack;
  for (auto& [key, s] : recv_streams_) {
    if (!s.ack_dirty) continue;
    s.ack_dirty = false;
    if ((s.cum & 0x00FFFFFFu) == 0) continue;  // nothing contiguous yet
    net::CumulativeAck::Entry e;
    e.src = static_cast<NodeId>(key >> 32);
    e.dst = static_cast<NodeId>(key & 0xFFFFFFFFu);
    e.cum_seq = s.cum;
    ack.entries.push_back(e);
  }
  if (ack.entries.empty()) return;
  QueueControlFrame(conn,
                    net::MakeMessage(net::MessageType::kAck, 0, 0, ack));
  TryWrite(conn);
}

void TcpTransport::ApplyAck(NodeId src, NodeId dst, uint32_t cum_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  auto sit = sessions_.find(dst);
  if (sit == sessions_.end()) return;
  Session* session = sit->second.get();
  auto acked = [&](const RetainedFrame& f) {
    return f.src == src && f.dst == dst && (f.seq >> 24) == (cum_seq >> 24) &&
           !SerialGt(f.seq, cum_seq);
  };
  auto& q = session->unacked;
  q.erase(std::remove_if(q.begin(), q.end(), acked), q.end());
}

void TcpTransport::QueueControlFrame(Conn* conn, net::Message m) {
  if (conn->dead.load(std::memory_order_relaxed)) return;
  (m.type == net::MessageType::kHeartbeat ? c_heartbeats_ : c_acks_)
      ->Increment();
  Conn::PendingFrame f;
  f.src = m.src;
  f.dst = m.dst;
  f.type = m.type;
  f.control = true;
  f.retain = false;
  EncodeFrame(m, &f.bytes);
  conn->wq_bytes += f.bytes.size();
  conn->wq.push_back(std::move(f));
}

void TcpTransport::HeartbeatTick() {
  if (draining_ || loop_.stopping()) return;
  const DurationUs interval = options_.heartbeat_interval_us;
  const TimestampUs now = EpollLoop::NowUs();
  std::vector<Conn*> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.reserve(conns_.size());
    for (const auto& c : conns_) conns.push_back(c.get());
  }
  for (Conn* c : conns) {
    if (!c->registered || c->dead.load(std::memory_order_relaxed) ||
        c->expect_hello) {
      continue;
    }
    if (now - c->last_recv_us >=
        static_cast<TimestampUs>(options_.heartbeat_misses) * interval) {
      // N whole intervals of silence — not even a pong. The peer is gone;
      // KillConn does the peer-down accounting and queues the redial.
      KillConn(c);
      continue;
    }
    if (now - c->last_recv_us >= interval && now - c->last_ping_us >= interval) {
      net::Heartbeat ping;
      ping.probe_time_us = now;
      c->last_ping_us = now;
      QueueControlFrame(c, net::MakeMessage(net::MessageType::kHeartbeat, 0, 0,
                                            ping));
      TryWrite(c);
    }
  }

  // Retransmit overdue unacked frames (recovers frames the receiver's CRC
  // check dropped: no connection death, no ack progress, just loss).
  const DurationUs rto = RetransmitTimeoutUs();
  std::vector<std::pair<Session*, Conn*>> overdue;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [dst, session] : sessions_) {
      if (session->unacked.empty()) continue;
      if (now - session->unacked.front().written_at_us < rto) continue;
      auto rit = routes_.find(dst);
      if (rit == routes_.end() || rit->second->dead.load() ||
          !rit->second->registered) {
        continue;  // no live conn; replay happens at rebind instead
      }
      overdue.emplace_back(session.get(), rit->second);
    }
  }
  for (auto& [session, conn] : overdue) {
    for (RetainedFrame& rf : session->unacked) {
      Conn::PendingFrame f;
      f.bytes = rf.bytes;  // copy: the retained original stays until acked
      f.src = rf.src;
      f.dst = rf.dst;
      f.type = rf.type;
      f.event_count = rf.event_count;
      f.seq = rf.seq;
      f.control = true;  // already charged once; replay is accounting-free
      f.retain = false;
      conn->wq_bytes += f.bytes.size();
      conn->wq.push_back(std::move(f));
      rf.written_at_us = now;
      c_replayed_->Increment();
    }
    TryWrite(conn);
  }

  loop_.PostDelayed(interval / 2 + 1, [this] { HeartbeatTick(); });
}

void TcpTransport::ReplaySession(Session* session, Conn* conn) {
  if (conn->dead.load(std::memory_order_relaxed)) return;
  const TimestampUs now = EpollLoop::NowUs();
  // Written-but-unacked first (oldest sequence numbers; copies — the
  // retained originals stand until the peer acks them), then the salvaged
  // encoded-never-written queue (moved: their first write is still their
  // first delivery), and only then fresh outbox traffic. Per-stream order
  // is preserved exactly.
  for (RetainedFrame& rf : session->unacked) {
    Conn::PendingFrame f;
    f.bytes = rf.bytes;
    f.src = rf.src;
    f.dst = rf.dst;
    f.type = rf.type;
    f.event_count = rf.event_count;
    f.seq = rf.seq;
    f.control = true;  // charged when first written; don't double-count
    f.retain = false;
    conn->wq_bytes += f.bytes.size();
    conn->wq.push_back(std::move(f));
    rf.written_at_us = now;
    c_replayed_->Increment();
  }
  while (!session->salvaged.empty()) {
    RetainedFrame rf = std::move(session->salvaged.front());
    session->salvaged.pop_front();
    Conn::PendingFrame f;
    f.bytes = std::move(rf.bytes);
    f.src = rf.src;
    f.dst = rf.dst;
    f.type = rf.type;
    f.event_count = rf.event_count;
    f.seq = rf.seq;
    f.control = false;
    f.retain = true;
    f.session = session;
    conn->wq_bytes += f.bytes.size();
    conn->wq.push_back(std::move(f));
  }
  if (!conn->wq.empty() && conn->registered) TryWrite(conn);
}

void TcpTransport::DrainOutboxes() {
  std::vector<Conn*> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.reserve(conns_.size());
    for (const auto& c : conns_) conns.push_back(c.get());
  }
  for (Conn* c : conns) {
    if (c->registered && !c->dead.load(std::memory_order_relaxed) &&
        !c->flushed) {
      DrainConnOutbox(c);
    }
  }
}

void TcpTransport::DrainConnOutbox(Conn* conn) {
  std::vector<Session*> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.reserve(conn->dsts.size());
    for (NodeId dst : conn->dsts) {
      auto sit = sessions_.find(dst);
      if (sit != sessions_.end()) sessions.push_back(sit->second.get());
    }
  }
  const size_t retain_cap = RetainCapacity();
  for (Session* session : sessions) {
    // Encode queued messages into per-frame buffers up to the in-flight
    // high-water mark; past it the bounded outbox backpressures Send. During
    // the shutdown drain the cap is lifted — the outbox is closed, its
    // content is all that remains, and it must reach the write queue to be
    // flushed.
    while (draining_ || conn->wq_bytes < kWriteHighWater) {
      if (!draining_ && retain_cap > 0 && session->retained() >= retain_cap) {
        // Retention window full: an unresponsive peer must not turn the
        // replay buffer into unbounded memory. Leaving messages in the
        // bounded outbox backpressures Send exactly like a slow peer.
        break;
      }
      auto m = session->outbox->TryPop();
      if (!m) break;
      if (m->type == net::MessageType::kShutdown) conn->saw_shutdown = true;
      Conn::PendingFrame f;
      f.src = m->src;
      f.dst = m->dst;
      f.type = m->type;
      f.event_count = m->event_count;
      f.seq = m->seq;
      f.session = session;
      EncodeFrame(*m, &f.bytes);
      if (options_.corrupt_rate > 0 && f.bytes.size() > kFrameHeaderBytes) {
        std::lock_guard<std::mutex> lock(corrupt_mu_);
        if (corrupt_rng_.Bernoulli(options_.corrupt_rate)) {
          // Flip one byte past the header (payload or CRC region) so the
          // receiver's framing survives and its checksum does the catching.
          f.corrupt_at = static_cast<size_t>(corrupt_rng_.UniformInt(
              static_cast<int64_t>(kFrameHeaderBytes),
              static_cast<int64_t>(f.bytes.size() - 1)));
          f.corrupt_mask =
              static_cast<uint8_t>(corrupt_rng_.UniformInt(1, 255));
          f.bytes[f.corrupt_at] ^= f.corrupt_mask;
          c_corrupted_total_->Increment();
          c_corrupted_inject_->Increment();
        }
      }
      conn->wq_bytes += f.bytes.size();
      conn->wq.push_back(std::move(f));
    }
  }
  if (!conn->wq.empty()) TryWrite(conn);
}

void TcpTransport::TryWrite(Conn* conn) {
  if (conn->stall_until_us != 0) {
    // Chaos write stall: the socket stays open but nothing leaves it;
    // backpressure builds exactly as on a congested link. A delayed task
    // resumes the write when the stall expires.
    if (EpollLoop::NowUs() < conn->stall_until_us) return;
    conn->stall_until_us = 0;
  }
  while (!conn->wq.empty()) {
    // Scatter-gather: one writev covers up to kMaxIov queued frames, so a
    // burst of small synopsis/gamma/keyed frames costs one syscall.
    iovec iov[kMaxIov];
    size_t niov = 0;
    for (const auto& f : conn->wq) {
      if (niov == kMaxIov) break;
      size_t off = (niov == 0) ? conn->wq_head_off : 0;
      iov[niov].iov_base = const_cast<uint8_t*>(f.bytes.data() + off);
      iov[niov].iov_len = f.bytes.size() - off;
      ++niov;
    }
    // sendmsg rather than writev: MSG_NOSIGNAL turns a peer-closed (or
    // chaos-severed) socket into a plain EPIPE instead of a fatal SIGPIPE.
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = niov;
    ssize_t n = ::sendmsg(conn->fd, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->want_write) {
          conn->want_write = true;
          loop_.Modify(conn->fd, EPOLLIN | EPOLLOUT);
        }
        return;
      }
      if (errno == EINTR) continue;
      DEMA_LOG(Warn) << "connection write error: " << std::strerror(errno);
      KillConn(conn);
      return;
    }
    size_t written = static_cast<size_t>(n);
    if (draining_) {
      // Progress: the stalled-peer grace period restarts.
      conn->drain_deadline_us = EpollLoop::NowUs() + options_.io_timeout_us;
    }
    while (written > 0) {
      Conn::PendingFrame& f = conn->wq.front();
      size_t rest = f.bytes.size() - conn->wq_head_off;
      if (written < rest) {
        conn->wq_head_off += written;
        written = 0;
        break;
      }
      // Frame fully on the socket: charge it (same point the per-connection
      // writer thread used to). Control frames (heartbeats, acks, replays)
      // are excluded — the link-traffic instruments must match the fabric's
      // accounting byte for byte, and a replayed frame was charged when it
      // first hit a socket.
      written -= rest;
      conn->wq_bytes -= f.bytes.size();
      bool kill_now = false;
      if (!f.control) {
        sent_.Charge(f.src, f.dst, f.type, f.bytes.size(), f.event_count);
        if (f.retain && f.session != nullptr) {
          // Retain the written frame until the peer's cumulative ack frees
          // it; a session resume or retransmit timeout replays it. Undo any
          // injected flip first — the wire carried the damage, the retained
          // copy must not, or no number of retransmits could ever recover.
          if (f.corrupt_mask != 0) f.bytes[f.corrupt_at] ^= f.corrupt_mask;
          RetainedFrame rf;
          rf.bytes = std::move(f.bytes);
          rf.src = f.src;
          rf.dst = f.dst;
          rf.type = f.type;
          rf.event_count = f.event_count;
          rf.seq = f.seq;
          rf.written_at_us = EpollLoop::NowUs();
          f.session->unacked.push_back(std::move(rf));
        }
        ++data_frames_written_;
        if (!draining_ &&
            kill_schedule_idx_ < options_.kill_conn_schedule.size() &&
            data_frames_written_ >=
                options_.kill_conn_schedule[kill_schedule_idx_]) {
          // Chaos: sever the live socket right after this data frame, as a
          // mid-window network failure would. Session resilience must make
          // this invisible to the protocol's results.
          ++kill_schedule_idx_;
          c_conn_kills_->Increment();
          kill_now = true;
        }
        if (!draining_ && !write_stall_armed_ &&
            options_.write_stall_after_frames > 0 &&
            data_frames_written_ >= options_.write_stall_after_frames) {
          write_stall_armed_ = true;
          conn->stall_until_us =
              EpollLoop::NowUs() + options_.write_stall_us;
          loop_.PostDelayed(options_.write_stall_us + 1, [this, conn] {
            if (!conn->dead.load(std::memory_order_relaxed)) TryWrite(conn);
          });
        }
      }
      conn->wq_head_off = 0;
      conn->wq.pop_front();
      if (kill_now) {
        KillConn(conn);
        return;
      }
      if (conn->stall_until_us != 0) return;  // stall starts after this frame
    }
  }
  if (conn->want_write) {
    conn->want_write = false;
    loop_.Modify(conn->fd, draining_ ? 0 : EPOLLIN);
  }
  if (draining_ && conn->wq.empty() && !conn->flushed) {
    // Every session routed here must be closed and drained before the
    // half-close announces end-of-stream.
    bool drained = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (NodeId dst : conn->dsts) {
        auto sit = sessions_.find(dst);
        if (sit == sessions_.end()) continue;
        net::Channel* outbox = sit->second->outbox.get();
        if (!outbox->closed() || outbox->size() != 0) {
          drained = false;
          break;
        }
      }
    }
    if (drained) {
      ::shutdown(conn->fd, SHUT_WR);
      conn->flushed = true;
    }
  }
}

void TcpTransport::KillConn(Conn* conn) {
  if (conn->dead.exchange(true)) return;
  loop_.Remove(conn->fd);
  // Sever for real — the peer must observe the FIN (its own liveness and
  // reconnect machinery depends on it) even though the fd itself stays
  // parked until Shutdown reaps it: Send-side threads may still hold the
  // Conn*, and fd reuse while such pointers exist is worse than a parked
  // descriptor.
  ::shutdown(conn->fd, SHUT_RDWR);
  if (!conn->expect_hello && conn->rblock != nullptr &&
      conn->rend > conn->rpos) {
    // The peer died mid-frame. The old transport dropped these bytes
    // silently; now the loss is visible next to the link metrics.
    c_partial_frame_drops_->Increment();
  }
  // Salvage encoded-but-unwritten data frames into their sessions: they
  // replay on the next connection, still as first deliveries. Control
  // frames and replay copies die with the socket (their retained originals
  // stand). A partially written head frame is salvaged whole — the
  // receiver discards its partial bytes, so replay delivers it intact.
  for (auto& f : conn->wq) {
    if (f.control || !f.retain || f.session == nullptr) continue;
    // Undo any injected flip (see TryWrite's retention): replays must carry
    // the pristine encoding, not the wire damage.
    if (f.corrupt_mask != 0) f.bytes[f.corrupt_at] ^= f.corrupt_mask;
    RetainedFrame rf;
    rf.bytes = std::move(f.bytes);
    rf.src = f.src;
    rf.dst = f.dst;
    rf.type = f.type;
    rf.event_count = f.event_count;
    rf.seq = f.seq;
    f.session->salvaged.push_back(std::move(rf));
  }
  conn->wq.clear();
  conn->wq_bytes = 0;
  conn->wq_head_off = 0;
  conn->want_write = false;

  // Orderly teardown (shutdown drain, a kShutdown either way, or every
  // routed session closing) is not a peer failure: no peer-down accounting
  // and no redial. Everything else is.
  bool all_closing = !conn->dsts.empty();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (NodeId dst : conn->dsts) {
      auto sit = sessions_.find(dst);
      if (sit == sessions_.end() ||
          !sit->second->closing.load(std::memory_order_relaxed)) {
        all_closing = false;
        break;
      }
    }
  }
  const bool clean = draining_ || conn->saw_shutdown || all_closing;
  if (!clean && !conn->dsts.empty()) {
    c_peer_down_->Increment();
    if (options_.auto_reconnect && !stopped_.load(std::memory_order_relaxed)) {
      for (NodeId dst : conn->dsts) RequestRedial(dst);
    }
  }
}

void TcpTransport::BeginDrain() {
  draining_ = true;
  if (listen_fd_ >= 0) loop_.Remove(listen_fd_);
  std::vector<Conn*> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.reserve(conns_.size());
    for (const auto& c : conns_) conns.push_back(c.get());
  }
  TimestampUs deadline = EpollLoop::NowUs() + options_.io_timeout_us;
  for (Conn* c : conns) {
    if (c->dead.load(std::memory_order_relaxed)) continue;
    c->drain_deadline_us = deadline;
    if (c->registered) {
      // Stop delivering inbound frames (the old reader threads exited at the
      // stop flag); keep the write side open to flush.
      loop_.Modify(c->fd, c->want_write ? EPOLLOUT : 0);
      DrainConnOutbox(c);
      if (!c->flushed) TryWrite(c);
    } else {
      KillConn(c);
    }
  }
  CheckDrainDone();
}

void TcpTransport::CheckDrainDone() {
  std::vector<Conn*> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.reserve(conns_.size());
    for (const auto& c : conns_) conns.push_back(c.get());
  }
  bool pending = false;
  TimestampUs now = EpollLoop::NowUs();
  for (Conn* c : conns) {
    if (c->dead.load(std::memory_order_relaxed) || c->flushed) continue;
    DrainConnOutbox(c);
    if (c->flushed) continue;
    if (now >= c->drain_deadline_us) {
      // No write progress for a whole grace period: the peer is stuck or
      // gone. Abandon its remaining frames (best-effort flush, as before).
      KillConn(c);
      continue;
    }
    pending = true;
  }
  if (!pending) {
    loop_.Stop();
    return;
  }
  loop_.PostDelayed(options_.io_timeout_us / 4 + 1, [this] { CheckDrainDone(); });
}

transport::LinkTrafficMap TcpTransport::LinkTraffic() const {
  return sent_.Links();
}

std::map<net::MessageType, net::TrafficCounters> TcpTransport::TrafficByType()
    const {
  return sent_.ByType();
}

transport::LinkTrafficMap TcpTransport::ReceivedTraffic() const {
  return recv_.Links();
}

std::map<net::MessageType, net::TrafficCounters> TcpTransport::ReceivedByType()
    const {
  return recv_.ByType();
}

void TcpTransport::Shutdown() {
  if (stopped_.exchange(true)) return;

  // Stop the redialer before draining: a reconnect adopted mid-shutdown
  // would race the conn-table reap.
  {
    std::lock_guard<std::mutex> lock(redial_mu_);
    redial_stop_ = true;
  }
  redial_cv_.notify_all();
  if (redial_thread_.joinable()) redial_thread_.join();

  bool loop_started;
  {
    std::lock_guard<std::mutex> lock(mu_);
    loop_started = loop_started_;
    // Close outboxes first: blocked senders unblock, and the loop's drain
    // sees a fixed amount of work per session.
    for (const auto& [dst, session] : sessions_) session->outbox->Close();
  }

  if (loop_started) {
    loop_.Post([this] { BeginDrain(); });
    if (loop_thread_.joinable()) loop_thread_.join();
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (const auto& c : conns_) {
    if (c->fd >= 0) {
      ::close(c->fd);
      c->fd = -1;
    }
  }
  for (auto& [id, inbox] : inboxes_) {
    (void)id;
    inbox->Close();
  }
}

}  // namespace dema::transport
