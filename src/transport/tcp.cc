#include "transport/tcp.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.h"

namespace dema::transport {

namespace {

/// Applies the per-socket options every data connection uses: small-message
/// latency (no Nagle) and bounded blocking so I/O threads notice shutdown.
void ConfigureSocket(int fd, DurationUs io_timeout_us) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv;
  tv.tv_sec = io_timeout_us / kMicrosPerSecond;
  tv.tv_usec = io_timeout_us % kMicrosPerSecond;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool IsWouldBlock(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == EINTR;
}

/// Reads exactly \p n bytes. Returns OK with *clean_eof=true when the peer
/// closed before the first byte (a frame boundary) or the transport stopped;
/// a close mid-buffer is an error.
Status ReadFull(int fd, uint8_t* buf, size_t n, const std::atomic<bool>& stop,
                bool* clean_eof) {
  *clean_eof = false;
  size_t got = 0;
  while (got < n) {
    if (stop.load(std::memory_order_relaxed)) {
      *clean_eof = true;
      return Status::OK();
    }
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::NetworkError("connection closed mid-frame");
    }
    if (IsWouldBlock(errno)) continue;  // timeout tick: re-check stop
    return Status::NetworkError(std::string("recv failed: ") +
                                std::strerror(errno));
  }
  return Status::OK();
}

/// Writes exactly \p n bytes (retrying timeout ticks until stopped).
Status WriteFull(int fd, const uint8_t* buf, size_t n,
                 const std::atomic<bool>& stop) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && IsWouldBlock(errno)) {
      if (stop.load(std::memory_order_relaxed)) {
        return Status::NetworkError("transport stopped mid-send");
      }
      continue;
    }
    return Status::NetworkError(std::string("send failed: ") +
                                std::strerror(errno));
  }
  return Status::OK();
}

/// Resolves host:port to an IPv4 socket address.
Status Resolve(const std::string& host, uint16_t port, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1) {
    return Status::OK();
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    return Status::NetworkError("cannot resolve host " + host + ": " +
                                ::gai_strerror(rc));
  }
  out->sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return Status::OK();
}

}  // namespace

Result<int> BindListenSocket(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::NetworkError(std::string("socket failed: ") +
                                std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  Status st = Resolve(host, port, &addr);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::NetworkError("bind to " + host + ":" + std::to_string(port) +
                                " failed: " + std::strerror(errno));
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    ::close(fd);
    return Status::NetworkError(std::string("listen failed: ") +
                                std::strerror(errno));
  }
  return fd;
}

Result<uint16_t> ListenSocketPort(int fd) {
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Status::NetworkError(std::string("getsockname failed: ") +
                                std::strerror(errno));
  }
  return ntohs(bound.sin_port);
}

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(std::move(options)),
      owned_registry_(options_.registry == nullptr ? new obs::Registry()
                                                   : nullptr),
      registry_(options_.registry == nullptr ? owned_registry_.get()
                                             : options_.registry),
      sent_(registry_, "transport.sent"),
      recv_(registry_, "transport.recv"),
      jitter_rng_(options_.dial_jitter_seed != 0
                      ? options_.dial_jitter_seed
                      : static_cast<uint64_t>(::getpid()) * 2654435761u + 1),
      corrupt_rng_(options_.corrupt_seed != 0
                       ? options_.corrupt_seed
                       : static_cast<uint64_t>(::getpid()) * 0x9E3779B9u + 3),
      c_corrupted_total_(registry_->GetCounter("net.corrupted")),
      c_corrupted_inject_(registry_->GetCounter("net.corrupted{layer=inject}")),
      c_corrupted_recv_(registry_->GetCounter("net.corrupted{layer=tcp}")) {}

TcpTransport::~TcpTransport() { Shutdown(); }

Status TcpTransport::AddLocalNode(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = inboxes_.emplace(
      id, std::make_unique<net::Channel>(options_.inbox_capacity));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("node " + std::to_string(id) +
                                 " already hosted on this transport");
  }
  return Status::OK();
}

Status TcpTransport::AddPeer(NodeId id, const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = peers_.emplace(id, Peer{host, port});
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("peer " + std::to_string(id) +
                                 " already configured");
  }
  return Status::OK();
}

Status TcpTransport::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Status::InvalidArgument("transport already started");
  started_ = true;
  if (options_.adopted_listen_fd >= 0) {
    listen_fd_ = options_.adopted_listen_fd;
  } else if (options_.listen) {
    DEMA_ASSIGN_OR_RETURN(
        listen_fd_, BindListenSocket(options_.listen_host, options_.listen_port));
  } else {
    return Status::OK();  // pure client: no listener, no acceptor
  }

  // Read back the bound port (the configured one may have been ephemeral).
  DEMA_ASSIGN_OR_RETURN(bound_port_, ListenSocketPort(listen_fd_));
  // A receive timeout on the listener makes accept() wake periodically so
  // the acceptor notices shutdown even if the close/shutdown race is lost.
  ConfigureSocket(listen_fd_, options_.io_timeout_us);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

uint16_t TcpTransport::bound_port() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bound_port_;
}

net::Channel* TcpTransport::Inbox(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inboxes_.find(id);
  return it == inboxes_.end() ? nullptr : it->second.get();
}

uint32_t TcpTransport::NextSeqFor(NodeId dst) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t n = ++next_seq_[dst];
  return (options_.seq_epoch << 24) | (n & 0x00FFFFFFu);
}

Status TcpTransport::Send(net::Message m) {
  if (stopped_.load(std::memory_order_relaxed)) {
    return Status::NetworkError("transport is shut down");
  }
  m.seq = NextSeqFor(m.dst);
  net::Channel* local = Inbox(m.dst);
  if (local != nullptr) {
    // Loopback to a node hosted in this process: no socket involved; charge
    // the frame-equivalent bytes so accounting matches other transports.
    sent_.Charge(m.src, m.dst, m.type, m.WireBytes(), m.event_count);
    if (!local->Push(std::move(m))) {
      return Status::NetworkError("inbox of destination node closed");
    }
    return Status::OK();
  }
  DEMA_ASSIGN_OR_RETURN(Conn * conn, ConnFor(m.dst));
  if (!conn->outbox->Push(std::move(m))) {
    return Status::NetworkError("connection to destination closed");
  }
  return Status::OK();
}

Result<TcpTransport::Conn*> TcpTransport::ConnFor(NodeId dst) {
  Peer peer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto rit = routes_.find(dst);
    if (rit != routes_.end() && !rit->second->dead.load()) return rit->second;
    auto pit = peers_.find(dst);
    if (pit == peers_.end()) {
      return Status::NotFound("no route to node " + std::to_string(dst) +
                              " (no connection and no configured peer)");
    }
    peer = pit->second;
  }
  // Dial outside the lock: connect retries can take a while.
  DEMA_ASSIGN_OR_RETURN(int fd, DialWithRetry(peer.host, peer.port));
  std::lock_guard<std::mutex> lock(mu_);
  auto rit = routes_.find(dst);
  if (rit != routes_.end() && !rit->second->dead.load()) {
    ::close(fd);  // lost a dial race; use the established route
    return rit->second;
  }
  Conn* conn = AdoptLocked(fd, /*expect_hello=*/false);
  routes_[dst] = conn;
  return conn;
}

Result<int> TcpTransport::DialWithRetry(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  DEMA_RETURN_NOT_OK(Resolve(host, port, &addr));
  std::vector<uint8_t> hello;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<NodeId> hosted;
    hosted.reserve(inboxes_.size());
    for (const auto& [id, inbox] : inboxes_) {
      (void)inbox;
      hosted.push_back(id);
    }
    EncodeHello(hosted, &hello);
  }

  DurationUs backoff = options_.connect_backoff_initial_us;
  Status last = Status::NetworkError("no connect attempt made");
  for (int attempt = 0; attempt < options_.connect_attempts; ++attempt) {
    if (stopped_.load()) return Status::NetworkError("transport is shut down");
    if (attempt > 0) {
      // Jitter the sleep so many dialers retrying against one freshly
      // restarted acceptor spread out instead of arriving in lockstep.
      DurationUs sleep_us = backoff;
      {
        std::lock_guard<std::mutex> lock(jitter_mu_);
        sleep_us = static_cast<DurationUs>(jitter_rng_.Uniform(
            static_cast<double>(backoff) / 2, static_cast<double>(backoff)));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      backoff = std::min<DurationUs>(backoff * 2, options_.connect_backoff_max_us);
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      last = Status::NetworkError(std::string("socket failed: ") +
                                  std::strerror(errno));
      continue;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      last = Status::NetworkError("connect to " + host + ":" +
                                  std::to_string(port) +
                                  " failed: " + std::strerror(errno));
      ::close(fd);
      continue;
    }
    ConfigureSocket(fd, options_.io_timeout_us);
    Status st = WriteFull(fd, hello.data(), hello.size(), stopped_);
    if (!st.ok()) {
      ::close(fd);
      last = st;
      continue;
    }
    return fd;
  }
  return last;
}

TcpTransport::Conn* TcpTransport::AdoptLocked(int fd, bool expect_hello) {
  auto owned = std::make_unique<Conn>();
  Conn* conn = owned.get();
  conn->fd = fd;
  conn->outbox = std::make_unique<net::Channel>(/*capacity=*/0);
  conns_.push_back(std::move(owned));
  conn->reader = std::thread([this, conn, expect_hello] {
    ReaderLoop(conn, expect_hello);
  });
  conn->writer = std::thread([this, conn] { WriterLoop(conn); });
  return conn;
}

void TcpTransport::AcceptLoop() {
  while (!stopped_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopped_.load()) return;
      if (IsWouldBlock(errno)) continue;  // listener timeout tick
      DEMA_LOG(Warn) << "accept failed: " << std::strerror(errno);
      return;
    }
    ConfigureSocket(fd, options_.io_timeout_us);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_.load()) {
      ::close(fd);
      return;
    }
    AdoptLocked(fd, /*expect_hello=*/true);
  }
}

void TcpTransport::ReaderLoop(Conn* conn, bool expect_hello) {
  bool eof = false;
  if (expect_hello) {
    uint8_t prefix[kHelloPrefixBytes];
    Status st = ReadFull(conn->fd, prefix, sizeof(prefix), stopped_, &eof);
    if (!st.ok() || eof) {
      conn->dead.store(true);
      return;
    }
    auto count = DecodeHelloPrefix(prefix, sizeof(prefix));
    if (!count.ok()) {
      DEMA_LOG(Warn) << "dropping connection: " << count.status();
      conn->dead.store(true);
      // FIN now so the rejected peer (e.g. a version-1 dialer) sees the
      // rejection immediately instead of hanging until our Shutdown();
      // Shutdown() still owns the close, so the fd is reaped exactly once.
      ::shutdown(conn->fd, SHUT_RDWR);
      return;
    }
    std::vector<uint8_t> ids_buf(*count * sizeof(uint32_t));
    st = ReadFull(conn->fd, ids_buf.data(), ids_buf.size(), stopped_, &eof);
    if (!st.ok() || eof) {
      conn->dead.store(true);
      return;
    }
    auto ids = DecodeHelloNodes(ids_buf.data(), ids_buf.size(), *count);
    if (!ids.ok()) {
      DEMA_LOG(Warn) << "dropping connection: " << ids.status();
      conn->dead.store(true);
      ::shutdown(conn->fd, SHUT_RDWR);
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    // Replies to the dialer's nodes travel back over this connection.
    for (NodeId id : *ids) routes_[id] = conn;
  }

  std::vector<uint8_t> header(kFrameHeaderBytes);
  while (!stopped_.load(std::memory_order_relaxed)) {
    Status st = ReadFull(conn->fd, header.data(), header.size(), stopped_, &eof);
    if (!st.ok()) {
      DEMA_LOG(Warn) << "connection read error: " << st;
      conn->dead.store(true);
      return;
    }
    if (eof) {
      conn->dead.store(true);
      return;
    }
    FrameHeader h;
    st = DecodeFrameHeader(header.data(), header.size(),
                           options_.max_frame_payload, &h);
    if (!st.ok()) {
      DEMA_LOG(Warn) << "dropping connection on bad frame: " << st;
      conn->dead.store(true);
      return;
    }
    net::Message m;
    m.type = h.type;
    m.src = h.src;
    m.dst = h.dst;
    m.seq = h.seq;
    m.payload.resize(h.payload_size);
    st = ReadFull(conn->fd, m.payload.data(), h.payload_size, stopped_, &eof);
    if (!st.ok() || (eof && h.payload_size > 0)) {
      DEMA_LOG(Warn) << "connection closed mid-frame";
      conn->dead.store(true);
      return;
    }
    uint8_t trailer[kFrameTrailerBytes];
    st = ReadFull(conn->fd, trailer, sizeof(trailer), stopped_, &eof);
    if (!st.ok() || eof) {
      DEMA_LOG(Warn) << "connection closed mid-frame";
      conn->dead.store(true);
      return;
    }
    // The checksum guards the decoded header too, so verify before acting on
    // anything but the payload length (which framing already consumed). A
    // mismatch drops this frame only: framing is intact, the connection
    // survives, and the sender's retry machinery recovers the message.
    st = VerifyFrameCrc(header.data(), header.size(), m.payload.data(),
                        m.payload.size(), trailer);
    if (!st.ok()) {
      DEMA_LOG(Warn) << "dropping corrupt frame: " << st;
      c_corrupted_total_->Increment();
      c_corrupted_recv_->Increment();
      continue;
    }
    // Reconstruct the event-count metadata (sender-side only, not framed).
    auto events = PeekEventCount(h.type, m.payload);
    m.event_count = events.ok() ? *events : 0;
    recv_.Charge(h.src, h.dst, h.type,
                 kFrameHeaderBytes + h.payload_size + kFrameTrailerBytes,
                 m.event_count);
    net::Channel* inbox = Inbox(h.dst);
    if (inbox == nullptr) {
      DEMA_LOG(Warn) << "dropping frame for non-hosted node " << h.dst;
      continue;
    }
    inbox->Push(std::move(m));
  }
}

void TcpTransport::WriterLoop(Conn* conn) {
  std::vector<uint8_t> buf;
  while (auto m = conn->outbox->Pop()) {
    buf.clear();
    EncodeFrame(*m, &buf);
    if (options_.corrupt_rate > 0 && buf.size() > kFrameHeaderBytes) {
      std::lock_guard<std::mutex> lock(corrupt_mu_);
      if (corrupt_rng_.Bernoulli(options_.corrupt_rate)) {
        // Flip one byte past the header (payload or CRC region) so the
        // receiver's framing survives and its checksum does the catching.
        const size_t at = static_cast<size_t>(corrupt_rng_.UniformInt(
            static_cast<int64_t>(kFrameHeaderBytes),
            static_cast<int64_t>(buf.size() - 1)));
        buf[at] ^= static_cast<uint8_t>(corrupt_rng_.UniformInt(1, 255));
        c_corrupted_total_->Increment();
        c_corrupted_inject_->Increment();
      }
    }
    Status st = WriteFull(conn->fd, buf.data(), buf.size(), stopped_);
    if (!st.ok()) {
      DEMA_LOG(Warn) << "connection write error: " << st;
      conn->dead.store(true);
      conn->outbox->Close();
      while (conn->outbox->Pop()) {
      }  // discard what can no longer be sent
      return;
    }
    sent_.Charge(m->src, m->dst, m->type, buf.size(), m->event_count);
  }
  // Outbox closed and fully drained: announce end-of-stream to the peer.
  ::shutdown(conn->fd, SHUT_WR);
}

transport::LinkTrafficMap TcpTransport::LinkTraffic() const {
  return sent_.Links();
}

std::map<net::MessageType, net::TrafficCounters> TcpTransport::TrafficByType()
    const {
  return sent_.ByType();
}

transport::LinkTrafficMap TcpTransport::ReceivedTraffic() const {
  return recv_.Links();
}

std::map<net::MessageType, net::TrafficCounters> TcpTransport::ReceivedByType()
    const {
  return recv_.ByType();
}

void TcpTransport::Shutdown() {
  if (stopped_.exchange(true)) return;

  // Unblock and collect the acceptor first so no new connections appear.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<Conn*> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    conns.reserve(conns_.size());
    for (const auto& c : conns_) conns.push_back(c.get());
  }
  // Writers drain their outboxes (flushing e.g. the final kShutdown
  // messages), then half-close; readers wake on their timeout tick or EOF.
  for (Conn* c : conns) c->outbox->Close();
  for (Conn* c : conns) {
    if (c->writer.joinable()) c->writer.join();
  }
  for (Conn* c : conns) ::shutdown(c->fd, SHUT_RD);
  for (Conn* c : conns) {
    if (c->reader.joinable()) c->reader.join();
  }
  for (Conn* c : conns) ::close(c->fd);

  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, inbox] : inboxes_) {
    (void)id;
    inbox->Close();
  }
}

}  // namespace dema::transport
