#include "transport/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.h"

namespace dema::transport {

namespace {

/// Encoded bytes a connection keeps in flight before the loop stops pulling
/// from its outbox (the outbox bound then backpressures `Send`).
constexpr size_t kWriteHighWater = 1u << 20;
/// Bytes one connection may read per loop pass before yielding (fairness;
/// level-triggered epoll re-delivers the remainder immediately).
constexpr size_t kReadBudget = 1u << 20;
/// Frames per writev call (well under IOV_MAX everywhere).
constexpr size_t kMaxIov = 64;

/// Applies the per-socket options every data connection uses: small-message
/// latency (no Nagle) and bounded blocking for the synchronous dial phase.
void ConfigureSocket(int fd, DurationUs io_timeout_us) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv;
  tv.tv_sec = io_timeout_us / kMicrosPerSecond;
  tv.tv_usec = io_timeout_us % kMicrosPerSecond;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::NetworkError(std::string("fcntl(O_NONBLOCK) failed: ") +
                                std::strerror(errno));
  }
  return Status::OK();
}

bool IsWouldBlock(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == EINTR;
}

/// Writes exactly \p n bytes on a (still blocking) dial-phase socket,
/// retrying timeout ticks until stopped.
Status WriteFull(int fd, const uint8_t* buf, size_t n,
                 const std::atomic<bool>& stop) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && IsWouldBlock(errno)) {
      if (stop.load(std::memory_order_relaxed)) {
        return Status::NetworkError("transport stopped mid-send");
      }
      continue;
    }
    return Status::NetworkError(std::string("send failed: ") +
                                std::strerror(errno));
  }
  return Status::OK();
}

/// Resolves host:port to an IPv4 socket address.
Status Resolve(const std::string& host, uint16_t port, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1) {
    return Status::OK();
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    return Status::NetworkError("cannot resolve host " + host + ": " +
                                ::gai_strerror(rc));
  }
  out->sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return Status::OK();
}

}  // namespace

Result<int> BindListenSocket(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::NetworkError(std::string("socket failed: ") +
                                std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  Status st = Resolve(host, port, &addr);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::NetworkError("bind to " + host + ":" + std::to_string(port) +
                                " failed: " + std::strerror(errno));
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    ::close(fd);
    return Status::NetworkError(std::string("listen failed: ") +
                                std::strerror(errno));
  }
  return fd;
}

Result<uint16_t> ListenSocketPort(int fd) {
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Status::NetworkError(std::string("getsockname failed: ") +
                                std::strerror(errno));
  }
  return ntohs(bound.sin_port);
}

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(std::move(options)),
      owned_registry_(options_.registry == nullptr ? new obs::Registry()
                                                   : nullptr),
      registry_(options_.registry == nullptr ? owned_registry_.get()
                                             : options_.registry),
      sent_(registry_, "transport.sent"),
      recv_(registry_, "transport.recv"),
      accept_failures_to_inject_(options_.inject_accept_failures),
      jitter_rng_(options_.dial_jitter_seed != 0
                      ? options_.dial_jitter_seed
                      : static_cast<uint64_t>(::getpid()) * 2654435761u + 1),
      corrupt_rng_(options_.corrupt_seed != 0
                       ? options_.corrupt_seed
                       : static_cast<uint64_t>(::getpid()) * 0x9E3779B9u + 3),
      c_corrupted_total_(registry_->GetCounter("net.corrupted")),
      c_corrupted_inject_(registry_->GetCounter("net.corrupted{layer=inject}")),
      c_corrupted_recv_(registry_->GetCounter("net.corrupted{layer=tcp}")),
      c_accept_errors_(registry_->GetCounter("net.accept_errors")),
      c_outbox_full_(registry_->GetCounter("net.outbox_full")) {}

TcpTransport::~TcpTransport() { Shutdown(); }

Status TcpTransport::AddLocalNode(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = inboxes_.emplace(
      id, std::make_unique<net::Channel>(options_.inbox_capacity));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("node " + std::to_string(id) +
                                 " already hosted on this transport");
  }
  return Status::OK();
}

Status TcpTransport::AddPeer(NodeId id, const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = peers_.emplace(id, Peer{host, port});
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("peer " + std::to_string(id) +
                                 " already configured");
  }
  return Status::OK();
}

Status TcpTransport::EnsureLoopStarted() {
  std::lock_guard<std::mutex> lock(mu_);
  if (loop_started_) return Status::OK();
  DEMA_RETURN_NOT_OK(loop_.Init());
  // Every Send wakes the loop; the tick moves outbox messages to sockets.
  loop_.SetTickHandler([this] { DrainOutboxes(); });
  loop_thread_ = std::thread([this] { loop_.Run(); });
  loop_started_ = true;
  return Status::OK();
}

Status TcpTransport::Start() {
  DEMA_RETURN_NOT_OK(EnsureLoopStarted());
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return Status::InvalidArgument("transport already started");
  started_ = true;
  if (options_.adopted_listen_fd >= 0) {
    listen_fd_ = options_.adopted_listen_fd;
  } else if (options_.listen) {
    DEMA_ASSIGN_OR_RETURN(
        listen_fd_, BindListenSocket(options_.listen_host, options_.listen_port));
  } else {
    return Status::OK();  // pure client: no listener
  }

  // Read back the bound port (the configured one may have been ephemeral).
  DEMA_ASSIGN_OR_RETURN(bound_port_, ListenSocketPort(listen_fd_));
  DEMA_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
  const int lfd = listen_fd_;
  loop_.Post([this, lfd] {
    Status st = loop_.Add(lfd, EPOLLIN, [this](uint32_t) { OnAcceptReady(); });
    if (!st.ok()) DEMA_LOG(Warn) << "listener registration failed: " << st;
  });
  return Status::OK();
}

uint16_t TcpTransport::bound_port() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bound_port_;
}

net::Channel* TcpTransport::Inbox(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inboxes_.find(id);
  return it == inboxes_.end() ? nullptr : it->second.get();
}

uint32_t TcpTransport::NextSeqFor(NodeId dst) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t n = ++next_seq_[dst];
  return (options_.seq_epoch << 24) | (n & 0x00FFFFFFu);
}

Status TcpTransport::Send(net::Message m) {
  if (stopped_.load(std::memory_order_relaxed)) {
    return Status::NetworkError("transport is shut down");
  }
  m.seq = NextSeqFor(m.dst);
  net::Channel* local = Inbox(m.dst);
  if (local != nullptr) {
    // Loopback to a node hosted in this process: no socket involved; charge
    // the frame-equivalent bytes so accounting matches other transports.
    sent_.Charge(m.src, m.dst, m.type, m.WireBytes(), m.event_count);
    if (!local->Push(std::move(m))) {
      return Status::NetworkError("inbox of destination node closed");
    }
    return Status::OK();
  }
  DEMA_ASSIGN_OR_RETURN(Conn * conn, ConnFor(m.dst));
  if (options_.outbox_capacity > 0 &&
      conn->outbox->size() >= options_.outbox_capacity) {
    // Full: the peer (or the loop) is not draining fast enough. Surface the
    // stall, then apply backpressure or fail — never grow without bound.
    // (The check races benignly with the loop's drain: a stale observation
    // only mis-times the counter, never the queue bound itself, which
    // `Channel::Push` enforces by blocking.)
    c_outbox_full_->Increment();
    if (!options_.outbox_block) {
      return Status::NetworkError("outbox to node " + std::to_string(m.dst) +
                                  " is full (" +
                                  std::to_string(options_.outbox_capacity) +
                                  " messages queued)");
    }
  }
  if (!conn->outbox->Push(std::move(m))) {
    return Status::NetworkError("connection to destination closed");
  }
  loop_.Wake();
  return Status::OK();
}

Result<TcpTransport::Conn*> TcpTransport::ConnFor(NodeId dst) {
  Peer peer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto rit = routes_.find(dst);
    if (rit != routes_.end() && !rit->second->dead.load()) return rit->second;
    auto pit = peers_.find(dst);
    if (pit == peers_.end()) {
      return Status::NotFound("no route to node " + std::to_string(dst) +
                              " (no connection and no configured peer)");
    }
    peer = pit->second;
  }
  DEMA_RETURN_NOT_OK(EnsureLoopStarted());
  // Dial outside the lock: connect retries can take a while.
  DEMA_ASSIGN_OR_RETURN(int fd, DialWithRetry(peer.host, peer.port));
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_.load()) {
    ::close(fd);  // dial completed after Shutdown reaped the conn table
    return Status::NetworkError("transport is shut down");
  }
  auto rit = routes_.find(dst);
  if (rit != routes_.end() && !rit->second->dead.load()) {
    ::close(fd);  // lost a dial race; use the established route
    return rit->second;
  }
  Conn* conn = AdoptLocked(fd, /*expect_hello=*/false);
  routes_[dst] = conn;
  return conn;
}

Result<int> TcpTransport::DialWithRetry(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  DEMA_RETURN_NOT_OK(Resolve(host, port, &addr));
  std::vector<uint8_t> hello;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<NodeId> hosted;
    hosted.reserve(inboxes_.size());
    for (const auto& [id, inbox] : inboxes_) {
      (void)inbox;
      hosted.push_back(id);
    }
    EncodeHello(hosted, &hello);
  }

  DurationUs backoff = options_.connect_backoff_initial_us;
  Status last = Status::NetworkError("no connect attempt made");
  for (int attempt = 0; attempt < options_.connect_attempts; ++attempt) {
    if (stopped_.load()) return Status::NetworkError("transport is shut down");
    if (attempt > 0) {
      // Jitter the sleep so many dialers retrying against one freshly
      // restarted acceptor spread out instead of arriving in lockstep.
      DurationUs sleep_us = backoff;
      {
        std::lock_guard<std::mutex> lock(jitter_mu_);
        sleep_us = static_cast<DurationUs>(jitter_rng_.Uniform(
            static_cast<double>(backoff) / 2, static_cast<double>(backoff)));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      backoff = std::min<DurationUs>(backoff * 2, options_.connect_backoff_max_us);
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      last = Status::NetworkError(std::string("socket failed: ") +
                                  std::strerror(errno));
      continue;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      last = Status::NetworkError("connect to " + host + ":" +
                                  std::to_string(port) +
                                  " failed: " + std::strerror(errno));
      ::close(fd);
      continue;
    }
    ConfigureSocket(fd, options_.io_timeout_us);
    Status st = WriteFull(fd, hello.data(), hello.size(), stopped_);
    if (!st.ok()) {
      ::close(fd);
      last = st;
      continue;
    }
    return fd;
  }
  return last;
}

TcpTransport::Conn* TcpTransport::AdoptLocked(int fd, bool expect_hello) {
  auto owned = std::make_unique<Conn>();
  Conn* conn = owned.get();
  conn->fd = fd;
  conn->outbox = std::make_unique<net::Channel>(options_.outbox_capacity);
  conn->expect_hello = expect_hello;
  conns_.push_back(std::move(owned));
  loop_.Post([this, conn] { RegisterConn(conn); });
  return conn;
}

// --- loop-thread side --------------------------------------------------------

void TcpTransport::RegisterConn(Conn* conn) {
  if (draining_ || loop_.stopping()) {
    KillConn(conn);
    return;
  }
  Status st = SetNonBlocking(conn->fd);
  if (st.ok()) {
    st = loop_.Add(conn->fd, EPOLLIN,
                   [this, conn](uint32_t ev) { OnConnEvent(conn, ev); });
  }
  if (!st.ok()) {
    DEMA_LOG(Warn) << "connection registration failed: " << st;
    KillConn(conn);
    return;
  }
  conn->registered = true;
}

void TcpTransport::OnAcceptReady() {
  while (!draining_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK) return;  // backlog drained
      if (err == EINTR || err == ECONNABORTED || err == EPROTO) {
        continue;  // that one connection is gone; the listener is fine
      }
      OnAcceptError(err);
      return;
    }
    if (accept_failures_to_inject_ > 0) {
      // Test hook: pretend accept hit a transient hard error (EMFILE-style)
      // so the resilience path — count, back off, survive — is exercised
      // deterministically.
      --accept_failures_to_inject_;
      ::close(fd);
      OnAcceptError(EMFILE);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    AdoptLocked(fd, /*expect_hello=*/true);
  }
}

void TcpTransport::OnAcceptError(int err) {
  // The pre-loop transport returned here, killing accept forever — one
  // transient EMFILE and the process was deaf. Count it, pull the listener
  // out of the epoll set (a ready listener would spin a level-triggered
  // loop), and re-arm after a backoff. The listener never dies.
  DEMA_LOG(Warn) << "accept failed (will retry): " << std::strerror(err);
  c_accept_errors_->Increment();
  loop_.Remove(listen_fd_);
  loop_.PostDelayed(options_.accept_backoff_us, [this] {
    if (draining_ || loop_.stopping()) return;
    Status st =
        loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) { OnAcceptReady(); });
    if (!st.ok()) DEMA_LOG(Warn) << "listener re-arm failed: " << st;
  });
}

void TcpTransport::OnConnEvent(Conn* conn, uint32_t events) {
  if (conn->dead.load(std::memory_order_relaxed)) return;
  if (events & EPOLLOUT) TryWrite(conn);
  if (events & EPOLLIN) {
    ReadReady(conn);
  } else if (events & (EPOLLHUP | EPOLLERR)) {
    // No readable data to drain first: the connection is gone.
    KillConn(conn);
  }
}

void TcpTransport::ReadReady(Conn* conn) {
  size_t budget = kReadBudget;
  while (budget > 0 && !conn->dead.load(std::memory_order_relaxed)) {
    EnsureReadCapacity(conn, kFrameHeaderBytes);
    uint8_t* dst = conn->rblock->data() + conn->rend;
    size_t room = conn->rblock->size() - conn->rend;
    ssize_t n = ::recv(conn->fd, dst, std::min(room, budget), 0);
    if (n > 0) {
      conn->rend += static_cast<size_t>(n);
      budget -= static_cast<size_t>(n);
      if (!ParseFrames(conn)) return;
      continue;
    }
    if (n == 0) {
      // Peer closed. Mid-frame data is simply dropped (same as the old
      // transport's "connection closed mid-frame" path).
      KillConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    DEMA_LOG(Warn) << "connection read error: " << std::strerror(errno);
    KillConn(conn);
    return;
  }
}

void TcpTransport::EnsureReadCapacity(Conn* conn, size_t hint) {
  if (conn->rblock == nullptr) {
    conn->rblock = std::make_shared<std::vector<uint8_t>>(
        std::max(options_.recv_block_bytes, hint));
    conn->rpos = conn->rend = 0;
    return;
  }
  if (conn->rend < conn->rblock->size()) return;  // room to fill
  // Block full. Parsed bytes may be pinned by delivered payload views, so
  // the block is never rewound in place — a fresh block takes over, with the
  // unparsed tail (at most one partial frame) copied to its front. This is
  // the only copy on the receive path.
  size_t tail = conn->rend - conn->rpos;
  size_t want = std::max(tail + hint, tail * 2);
  if (!conn->expect_hello && tail >= kFrameHeaderBytes) {
    // The partial frame's header is already here: size the fresh block to
    // hold the whole frame so an oversized payload moves exactly once.
    FrameHeader h;
    if (DecodeFrameHeader(conn->rblock->data() + conn->rpos, kFrameHeaderBytes,
                          options_.max_frame_payload, &h)
            .ok()) {
      want = kFrameHeaderBytes + h.payload_size + kFrameTrailerBytes;
    }
  }
  auto fresh = std::make_shared<std::vector<uint8_t>>(
      std::max(options_.recv_block_bytes, want));
  std::memcpy(fresh->data(), conn->rblock->data() + conn->rpos, tail);
  conn->rblock = std::move(fresh);
  conn->rpos = 0;
  conn->rend = tail;
}

bool TcpTransport::ParseFrames(Conn* conn) {
  while (true) {
    const uint8_t* base = conn->rblock->data();
    size_t avail = conn->rend - conn->rpos;

    if (conn->expect_hello) {
      if (avail < kHelloPrefixBytes) return true;
      auto count = DecodeHelloPrefix(base + conn->rpos, kHelloPrefixBytes);
      if (!count.ok()) {
        DEMA_LOG(Warn) << "dropping connection: " << count.status();
        // FIN now so the rejected peer (e.g. a version-1 dialer) sees the
        // rejection immediately instead of hanging until our Shutdown();
        // Shutdown() still owns the close, so the fd is reaped exactly once.
        ::shutdown(conn->fd, SHUT_RDWR);
        KillConn(conn);
        return false;
      }
      size_t ids_bytes = *count * sizeof(uint32_t);
      if (avail < kHelloPrefixBytes + ids_bytes) {
        EnsureReadCapacity(conn, kHelloPrefixBytes + ids_bytes - avail);
        return true;
      }
      auto ids = DecodeHelloNodes(base + conn->rpos + kHelloPrefixBytes,
                                  ids_bytes, *count);
      if (!ids.ok()) {
        DEMA_LOG(Warn) << "dropping connection: " << ids.status();
        ::shutdown(conn->fd, SHUT_RDWR);
        KillConn(conn);
        return false;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        // Replies to the dialer's nodes travel back over this connection.
        for (NodeId id : *ids) routes_[id] = conn;
      }
      conn->rpos += kHelloPrefixBytes + ids_bytes;
      conn->expect_hello = false;
      continue;
    }

    if (avail < kFrameHeaderBytes) return true;
    FrameHeader h;
    Status st = DecodeFrameHeader(base + conn->rpos, kFrameHeaderBytes,
                                  options_.max_frame_payload, &h);
    if (!st.ok()) {
      DEMA_LOG(Warn) << "dropping connection on bad frame: " << st;
      KillConn(conn);
      return false;
    }
    const size_t frame_total =
        kFrameHeaderBytes + h.payload_size + kFrameTrailerBytes;
    if (avail < frame_total) {
      EnsureReadCapacity(conn, frame_total - avail);
      return true;
    }

    const uint8_t* header = base + conn->rpos;
    const uint8_t* payload = header + kFrameHeaderBytes;
    const uint8_t* trailer = payload + h.payload_size;
    // The checksum guards the decoded header too, so verify before acting on
    // anything but the payload length (which framing already consumed). A
    // mismatch drops this frame only: framing is intact, the connection
    // survives, and the sender's retry machinery recovers the message.
    st = VerifyFrameCrc(header, kFrameHeaderBytes, payload, h.payload_size,
                        trailer);
    if (!st.ok()) {
      DEMA_LOG(Warn) << "dropping corrupt frame: " << st;
      c_corrupted_total_->Increment();
      c_corrupted_recv_->Increment();
      conn->rpos += frame_total;
      continue;
    }

    net::Message m;
    m.type = h.type;
    m.src = h.src;
    m.dst = h.dst;
    m.seq = h.seq;
    // Zero-copy delivery: the payload stays in the arena block, pinned by
    // the message for as long as any consumer holds it.
    m.SetPayloadView(conn->rblock, payload, h.payload_size);
    // Reconstruct the event-count metadata (sender-side only, not framed).
    auto events = PeekEventCount(h.type, m.payload_bytes());
    m.event_count = events.ok() ? *events : 0;
    recv_.Charge(h.src, h.dst, h.type, frame_total, m.event_count);
    conn->rpos += frame_total;

    net::Channel* inbox = Inbox(h.dst);
    if (inbox == nullptr) {
      DEMA_LOG(Warn) << "dropping frame for non-hosted node " << h.dst;
      continue;
    }
    inbox->Push(std::move(m));
  }
}

void TcpTransport::DrainOutboxes() {
  std::vector<Conn*> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.reserve(conns_.size());
    for (const auto& c : conns_) conns.push_back(c.get());
  }
  for (Conn* c : conns) {
    if (c->registered && !c->dead.load(std::memory_order_relaxed) &&
        !c->flushed) {
      DrainConnOutbox(c);
    }
  }
}

void TcpTransport::DrainConnOutbox(Conn* conn) {
  // Encode queued messages into per-frame buffers up to the in-flight
  // high-water mark; past it the bounded outbox backpressures Send. During
  // the shutdown drain the cap is lifted — the outbox is closed, its content
  // is all that remains, and it must reach the write queue to be flushed.
  while (draining_ || conn->wq_bytes < kWriteHighWater) {
    auto m = conn->outbox->TryPop();
    if (!m) break;
    Conn::PendingFrame f;
    f.src = m->src;
    f.dst = m->dst;
    f.type = m->type;
    f.event_count = m->event_count;
    EncodeFrame(*m, &f.bytes);
    if (options_.corrupt_rate > 0 && f.bytes.size() > kFrameHeaderBytes) {
      std::lock_guard<std::mutex> lock(corrupt_mu_);
      if (corrupt_rng_.Bernoulli(options_.corrupt_rate)) {
        // Flip one byte past the header (payload or CRC region) so the
        // receiver's framing survives and its checksum does the catching.
        const size_t at = static_cast<size_t>(corrupt_rng_.UniformInt(
            static_cast<int64_t>(kFrameHeaderBytes),
            static_cast<int64_t>(f.bytes.size() - 1)));
        f.bytes[at] ^= static_cast<uint8_t>(corrupt_rng_.UniformInt(1, 255));
        c_corrupted_total_->Increment();
        c_corrupted_inject_->Increment();
      }
    }
    conn->wq_bytes += f.bytes.size();
    conn->wq.push_back(std::move(f));
  }
  if (!conn->wq.empty()) TryWrite(conn);
}

void TcpTransport::TryWrite(Conn* conn) {
  while (!conn->wq.empty()) {
    // Scatter-gather: one writev covers up to kMaxIov queued frames, so a
    // burst of small synopsis/gamma/keyed frames costs one syscall.
    iovec iov[kMaxIov];
    size_t niov = 0;
    for (const auto& f : conn->wq) {
      if (niov == kMaxIov) break;
      size_t off = (niov == 0) ? conn->wq_head_off : 0;
      iov[niov].iov_base = const_cast<uint8_t*>(f.bytes.data() + off);
      iov[niov].iov_len = f.bytes.size() - off;
      ++niov;
    }
    ssize_t n = ::writev(conn->fd, iov, static_cast<int>(niov));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->want_write) {
          conn->want_write = true;
          loop_.Modify(conn->fd, EPOLLIN | EPOLLOUT);
        }
        return;
      }
      if (errno == EINTR) continue;
      DEMA_LOG(Warn) << "connection write error: " << std::strerror(errno);
      KillConn(conn);
      return;
    }
    size_t written = static_cast<size_t>(n);
    if (draining_) {
      // Progress: the stalled-peer grace period restarts.
      conn->drain_deadline_us = EpollLoop::NowUs() + options_.io_timeout_us;
    }
    while (written > 0) {
      Conn::PendingFrame& f = conn->wq.front();
      size_t rest = f.bytes.size() - conn->wq_head_off;
      if (written < rest) {
        conn->wq_head_off += written;
        written = 0;
        break;
      }
      // Frame fully on the socket: charge it (same point the per-connection
      // writer thread used to).
      written -= rest;
      conn->wq_bytes -= f.bytes.size();
      sent_.Charge(f.src, f.dst, f.type, f.bytes.size(), f.event_count);
      conn->wq_head_off = 0;
      conn->wq.pop_front();
    }
  }
  if (conn->want_write) {
    conn->want_write = false;
    loop_.Modify(conn->fd, draining_ ? 0 : EPOLLIN);
  }
  if (draining_ && conn->outbox->closed() && conn->outbox->size() == 0 &&
      conn->wq.empty() && !conn->flushed) {
    // Outbox drained and every frame written: announce end-of-stream.
    ::shutdown(conn->fd, SHUT_WR);
    conn->flushed = true;
  }
}

void TcpTransport::KillConn(Conn* conn) {
  if (conn->dead.exchange(true)) return;
  loop_.Remove(conn->fd);
  conn->outbox->Close();
  while (conn->outbox->TryPop()) {
  }  // discard what can no longer be sent
  conn->wq.clear();
  conn->wq_bytes = 0;
  conn->wq_head_off = 0;
  conn->want_write = false;
  // The fd stays open until Shutdown reaps it: Send-side threads may still
  // hold the Conn*, and fd reuse while registered pointers exist is worse
  // than a parked descriptor.
}

void TcpTransport::BeginDrain() {
  draining_ = true;
  if (listen_fd_ >= 0) loop_.Remove(listen_fd_);
  std::vector<Conn*> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.reserve(conns_.size());
    for (const auto& c : conns_) conns.push_back(c.get());
  }
  TimestampUs deadline = EpollLoop::NowUs() + options_.io_timeout_us;
  for (Conn* c : conns) {
    if (c->dead.load(std::memory_order_relaxed)) continue;
    c->drain_deadline_us = deadline;
    if (c->registered) {
      // Stop delivering inbound frames (the old reader threads exited at the
      // stop flag); keep the write side open to flush.
      loop_.Modify(c->fd, c->want_write ? EPOLLOUT : 0);
      DrainConnOutbox(c);
      if (!c->flushed) TryWrite(c);
    } else {
      KillConn(c);
    }
  }
  CheckDrainDone();
}

void TcpTransport::CheckDrainDone() {
  std::vector<Conn*> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.reserve(conns_.size());
    for (const auto& c : conns_) conns.push_back(c.get());
  }
  bool pending = false;
  TimestampUs now = EpollLoop::NowUs();
  for (Conn* c : conns) {
    if (c->dead.load(std::memory_order_relaxed) || c->flushed) continue;
    DrainConnOutbox(c);
    if (c->flushed) continue;
    if (now >= c->drain_deadline_us) {
      // No write progress for a whole grace period: the peer is stuck or
      // gone. Abandon its remaining frames (best-effort flush, as before).
      KillConn(c);
      continue;
    }
    pending = true;
  }
  if (!pending) {
    loop_.Stop();
    return;
  }
  loop_.PostDelayed(options_.io_timeout_us / 4 + 1, [this] { CheckDrainDone(); });
}

transport::LinkTrafficMap TcpTransport::LinkTraffic() const {
  return sent_.Links();
}

std::map<net::MessageType, net::TrafficCounters> TcpTransport::TrafficByType()
    const {
  return sent_.ByType();
}

transport::LinkTrafficMap TcpTransport::ReceivedTraffic() const {
  return recv_.Links();
}

std::map<net::MessageType, net::TrafficCounters> TcpTransport::ReceivedByType()
    const {
  return recv_.ByType();
}

void TcpTransport::Shutdown() {
  if (stopped_.exchange(true)) return;

  bool loop_started;
  {
    std::lock_guard<std::mutex> lock(mu_);
    loop_started = loop_started_;
    // Close outboxes first: blocked senders unblock, and the loop's drain
    // sees a fixed amount of work per connection.
    for (const auto& c : conns_) c->outbox->Close();
  }

  if (loop_started) {
    loop_.Post([this] { BeginDrain(); });
    if (loop_thread_.joinable()) loop_thread_.join();
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (const auto& c : conns_) {
    if (c->fd >= 0) {
      ::close(c->fd);
      c->fd = -1;
    }
  }
  for (auto& [id, inbox] : inboxes_) {
    (void)id;
    inbox->Close();
  }
}

}  // namespace dema::transport
