#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace dema::transport {

/// \brief Minimal epoll reactor: one thread multiplexing many fds.
///
/// The transport's entire I/O — accepting, reading, writing, timers — runs
/// on the single thread that calls `Run()`. Everything registered here
/// (callbacks, timers, fd interest) is therefore loop-thread-only state and
/// needs no locking; the two thread-safe entry points are `Post` (hand a
/// task to the loop from any thread, waking it via an eventfd) and `Stop`.
///
/// Level-triggered semantics: a callback that does not drain its fd is
/// invoked again on the next `epoll_wait`. Callbacks receive the raw
/// `EPOLLIN`/`EPOLLOUT`/`EPOLLHUP`/`EPOLLERR` bits.
class EpollLoop {
 public:
  using FdCallback = std::function<void(uint32_t events)>;

  EpollLoop() = default;
  ~EpollLoop();

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// Creates the epoll instance and the wake eventfd. Call once, before Run.
  Status Init();

  /// Runs the event loop on the calling thread until `Stop()`.
  void Run();

  /// Signals the loop to exit after the current iteration (thread-safe).
  void Stop();

  /// True once `Stop()` was called (loop may still be finishing a pass).
  bool stopping() const { return stop_.load(std::memory_order_relaxed); }

  /// True once `Run()` has returned — the loop thread is done (or died) and
  /// will never service another task. Producers blocked on loop-consumed
  /// queues (e.g. `TcpTransport::Send` under backpressure) use this to fail
  /// fast instead of waiting on a drain that can no longer happen.
  bool finished() const { return finished_.load(std::memory_order_acquire); }

  /// Sets a handler the loop invokes once per pass, after fd events and
  /// posted tasks. Call before `Run()` starts (not thread-safe). Producers
  /// that enqueue work the tick consumes pair it with `Wake()`.
  void SetTickHandler(std::function<void()> fn) { tick_ = std::move(fn); }

  /// Queues \p fn to run on the loop thread and wakes the loop
  /// (thread-safe). Tasks run in post order, after fd events.
  void Post(std::function<void()> fn);

  /// Wakes the loop without queuing work (thread-safe) — used by producers
  /// after enqueuing to a structure the loop polls, e.g. a conn outbox.
  void Wake();

  // --- loop-thread-only -----------------------------------------------------

  /// Registers \p fd with the given EPOLL* interest bits.
  Status Add(int fd, uint32_t events, FdCallback cb);

  /// Changes the interest bits of a registered fd.
  Status Modify(int fd, uint32_t events);

  /// Deregisters \p fd (does not close it). Safe to call for an
  /// unregistered fd.
  void Remove(int fd);

  /// Runs \p fn on the loop thread after \p delay_us. Timers fire in
  /// deadline order between fd-event passes.
  void PostDelayed(DurationUs delay_us, std::function<void()> fn);

  /// Monotonic clock the timer queue runs on (microseconds).
  static TimestampUs NowUs();

 private:
  void DrainWakeFd();
  /// Milliseconds until the next timer fires (bounded), for epoll_wait.
  int NextTimeoutMs() const;
  void RunExpiredTimers();
  void RunPostedTasks();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> finished_{false};
  std::map<int, FdCallback> callbacks_;
  std::function<void()> tick_;

  struct Timer {
    TimestampUs deadline_us;
    uint64_t id;  // insertion order: stable tiebreak for equal deadlines
    std::function<void()> fn;
    bool operator>(const Timer& o) const {
      return deadline_us != o.deadline_us ? deadline_us > o.deadline_us
                                          : id > o.id;
    }
  };
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  uint64_t next_timer_id_ = 0;

  std::mutex post_mu_;  // guards posted_ (the cross-thread handoff)
  std::vector<std::function<void()>> posted_;
};

}  // namespace dema::transport
