#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/event.h"
#include "common/result.h"
#include "common/rng.h"
#include "gen/distribution.h"

namespace dema::gen {

/// \brief Configuration of one data-stream node's generator.
///
/// Mirrors the paper's generator (Section 4, "Generators"): each local node
/// hosts a generator instance replaying DEBS-2013-like sensor values, with
/// two user knobs — `scale_rate` (multiplies values, controlling how much
/// value ranges of different nodes overlap) and `event_rate` (events per
/// second of event time, controlling local window sizes).
struct GeneratorConfig {
  /// Node id stamped into produced events.
  NodeId node = 0;
  /// Deterministic seed; different nodes should use different seeds, which
  /// stands in for "replaying the dataset from different positions".
  uint64_t seed = 42;
  /// Value process.
  DistributionParams distribution;
  /// Multiplies every value (the paper's scale rate).
  double scale_rate = 1.0;
  /// Events per second of event time (the paper's event rate).
  double event_rate = 100000.0;
  /// Event time of the first event.
  TimestampUs start_time_us = 0;
  /// Relative jitter on inter-event gaps in [0, 1); 0 = perfectly paced.
  double time_jitter = 0.0;
};

/// \brief Deterministic event source for one data-stream node.
///
/// Produces events whose event times advance at `event_rate` and whose values
/// follow the configured distribution scaled by `scale_rate`. Sequence
/// numbers increase monotonically, so events from one generator are unique
/// under the global event order.
class StreamGenerator {
 public:
  /// Builds a generator; fails on invalid configuration.
  static Result<std::unique_ptr<StreamGenerator>> Create(GeneratorConfig config);

  /// Produces the next event.
  Event Next();

  /// Produces the next \p n events, appended to \p out.
  void NextBatch(size_t n, std::vector<Event>* out);

  /// Produces every event with event time in [window_start, window_start +
  /// window_len) — i.e. one local window's worth. The generator's internal
  /// event time must not have passed window_start yet.
  std::vector<Event> GenerateWindow(TimestampUs window_start_us,
                                    DurationUs window_len_us);

  /// Event time of the next event to be produced.
  TimestampUs next_time_us() const { return next_time_us_; }

  /// This generator's configuration.
  const GeneratorConfig& config() const { return config_; }

 private:
  StreamGenerator(GeneratorConfig config,
                  std::unique_ptr<ValueDistribution> distribution);

  GeneratorConfig config_;
  std::unique_ptr<ValueDistribution> distribution_;
  Rng rng_;
  TimestampUs next_time_us_;
  double gap_us_;
  uint32_t next_seq_ = 0;
};

}  // namespace dema::gen
