#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/event.h"
#include "common/result.h"

namespace dema::gen {

/// \brief Replays events from a CSV file (DEBS-2013-style dumps).
///
/// Each line is `value,timestamp_us` (an optional third column is ignored,
/// matching exports that include the original sensor id). Lines starting
/// with '#' and blank lines are skipped. The replayer stamps the configured
/// node id and fresh sequence numbers, applies `scale_rate` to values, and —
/// like the paper's generators — can start "from a different position" via
/// `start_offset`, wrapping around the file.
class CsvReplaySource {
 public:
  struct Options {
    NodeId node = 0;
    double scale_rate = 1.0;
    /// Row index to start replay from (wraps around).
    size_t start_offset = 0;
    /// When true, timestamps are rebased so the first replayed event starts
    /// at `rebase_start_us` and original inter-event gaps are preserved.
    bool rebase_time = true;
    TimestampUs rebase_start_us = 0;
  };

  /// Loads the whole file; fails on I/O or parse errors (with line numbers).
  static Result<CsvReplaySource> Open(const std::string& path, Options options);

  /// Parses CSV content from a string (testing / in-memory datasets).
  static Result<CsvReplaySource> FromString(const std::string& content,
                                            Options options);

  /// Produces the next event, wrapping around the dataset; each wrap
  /// continues the rebased timeline so event time keeps increasing.
  Event Next();

  /// Number of rows loaded.
  size_t size() const { return values_.size(); }

 private:
  CsvReplaySource(std::vector<double> values, std::vector<TimestampUs> times,
                  Options options);

  std::vector<double> values_;
  std::vector<TimestampUs> times_;
  Options options_;
  size_t pos_;
  uint32_t next_seq_ = 0;
  /// Accumulated timeline offset applied on wrap-around.
  TimestampUs wrap_offset_us_ = 0;
  TimestampUs dataset_span_us_ = 0;
};

}  // namespace dema::gen
