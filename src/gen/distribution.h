#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace dema::gen {

/// \brief Shape of the value process a data-stream node emits.
enum class DistributionKind {
  /// Uniform in [lo, hi).
  kUniform,
  /// Normal(mean, stddev).
  kNormal,
  /// Exponential with rate lambda, shifted by lo.
  kExponential,
  /// Zipf-distributed ranks mapped onto [lo, hi): heavy head at lo.
  kZipf,
  /// Bounded random walk mimicking the DEBS 2013 soccer sensor values:
  /// physical quantities evolving smoothly with occasional kicks.
  kSensorWalk,
};

/// \brief Parses a kind from its lower-case name ("uniform", "normal",
/// "exponential", "zipf", "sensorwalk").
Result<DistributionKind> DistributionKindFromString(const std::string& name);

/// \brief Returns the lower-case name of a kind.
const char* DistributionKindToString(DistributionKind kind);

/// \brief Parameter bundle for any distribution kind.
///
/// Unused fields are ignored by kinds that do not need them, so a single
/// struct can describe every generator configuration in experiment sweeps.
struct DistributionParams {
  DistributionKind kind = DistributionKind::kSensorWalk;
  /// Lower bound of the value range (uniform/zipf/exponential shift/walk).
  double lo = 0.0;
  /// Upper bound of the value range (uniform/zipf/walk).
  double hi = 1000.0;
  /// Mean for kNormal.
  double mean = 500.0;
  /// Standard deviation for kNormal; step size for kSensorWalk.
  double stddev = 150.0;
  /// Rate for kExponential.
  double lambda = 0.01;
  /// Skew exponent for kZipf (> 0).
  double zipf_s = 1.1;
  /// Number of distinct ranks for kZipf.
  uint32_t zipf_n = 10000;
  /// Probability of a large jump per draw for kSensorWalk.
  double kick_prob = 0.001;
};

/// \brief A stream of values drawn from a configured distribution.
///
/// Implementations are stateful (the sensor walk carries position) and
/// deterministic given the seed of the `Rng` passed to each draw.
class ValueDistribution {
 public:
  virtual ~ValueDistribution() = default;

  /// Draws the next value.
  virtual double Next(Rng* rng) = 0;

  /// The parameters this instance was built from.
  virtual const DistributionParams& params() const = 0;

  /// Builds a distribution; fails on invalid parameters (e.g. hi <= lo).
  static Result<std::unique_ptr<ValueDistribution>> Create(
      const DistributionParams& params);
};

}  // namespace dema::gen
